// Package repro is a Go reproduction of Li & Golab, "Detectable
// Sequential Specifications for Recoverable Shared Objects" (DISC 2021;
// brief announcement at PODC 2021).
//
// The repository implements, from scratch, everything the paper describes
// or depends on, over a simulated persistent-memory device (real Optane
// hardware and flush intrinsics are not expressible in Go — see
// DESIGN.md for the substitution):
//
//   - internal/spec: the DSS formalism — sequential specifications and
//     the detectable transformation D⟨T⟩ of Figure 1.
//   - internal/core: the DSS queue of Section 3 (Figures 3, 4, 6), with
//     both the centralized and the independent recovery variants.
//   - internal/pmem, internal/ebr: the persistent-memory substrate —
//     word-addressed heap, volatile-cache simulation, deterministic
//     crash injection, pools, and epoch-based reclamation.
//   - internal/queue: the baselines — MS queue, durable queue, and the
//     detectable log queue of Friedman et al.
//   - internal/pmwcas, internal/cwe: Wang et al.'s persistent multi-word
//     CAS and the General/Fast CASWithEffect queues built on it.
//   - internal/check: a crash-aware linearizability checker (plus a
//     polynomial queue-violation detector) used to verify Theorem 1
//     mechanically.
//   - internal/universal: the recoverable universal construction the
//     paper sketches in Section 2.2.
//   - internal/stack: the DSS transformation applied to a second
//     structure (a detectable Treiber-style stack).
//   - internal/nested: the queue over abstract base objects — Section
//     2.2's application-managed nesting claim, executable.
//   - internal/nrl: an NRL+-style detectable CAS, the paper's main
//     comparison point.
//   - internal/mp: the DSS over message passing (property D2).
//   - internal/systematic: preemption-bounded systematic scheduling
//     (stateless model checking) over the heap's step gate.
//   - internal/harness: the evaluation driver that regenerates Figure 5.
//
// The benchmarks in bench_test.go regenerate every figure of the paper's
// evaluation section; cmd/dssbench does the same from the command line,
// cmd/crashsweep runs the exhaustive detectability verification, and
// examples/ contains runnable applications of the public API.
package repro
