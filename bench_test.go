package repro

// Benchmark harness for the paper's evaluation section. Each figure panel
// has one benchmark whose sub-benchmarks are the figure's series crossed
// with the thread axis; the reported Mops/s metric is the paper's y-axis
// (millions of enqueue+dequeue operations per second, alternating pairs on
// a queue seeded with 16 nodes).
//
//	go test -bench 'Fig5a' -benchmem .
//	go test -bench 'Fig5b' -benchmem .
//	go test -bench 'Ablation' .
//
// Absolute numbers depend on the simulated device parameters (flush
// latency, access delay — see DESIGN.md); the comparisons within one
// figure are the reproduction target.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/pmem"
	"repro/internal/pmwcas"
	"repro/internal/stack"
)

// Calibrated device parameters (see EXPERIMENTS.md).
const (
	benchFlushLatency = 300 * time.Nanosecond
	benchAccessDelay  = 100
)

var benchThreads = []int{1, 2, 4, 8, 20}

// runPairs drives b.N operations (as enqueue/dequeue pairs) across
// `threads` goroutines against one queue configuration and reports Mops/s.
func runPairs(b *testing.B, impl harness.Impl, threads int) {
	b.Helper()
	q, _, err := harness.Build(impl, harness.BuildConfig{
		Threads:      threads,
		FlushLatency: benchFlushLatency,
		AccessDelay:  benchAccessDelay,
	})
	if err != nil {
		b.Fatalf("build %s: %v", impl, err)
	}
	for i := 0; i < 16; i++ {
		if err := q.Enqueue(0, uint64(1000+i)); err != nil {
			b.Fatalf("seed: %v", err)
		}
	}
	pairs := b.N/(2*threads) + 1
	b.ResetTimer()
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			v := uint64(tid + 1)
			for i := 0; i < pairs; i++ {
				_ = q.Enqueue(tid, v)
				q.Dequeue(tid)
				v++
			}
		}(tid)
	}
	wg.Wait()
	b.StopTimer()
	total := float64(pairs * 2 * threads)
	b.ReportMetric(total/b.Elapsed().Seconds()/1e6, "Mops/s")
}

// BenchmarkFig5a regenerates Figure 5a: different levels of detectability
// and persistence (MS queue vs non-detectable vs detectable DSS queue).
func BenchmarkFig5a(b *testing.B) {
	for _, impl := range harness.Impls5a() {
		for _, th := range benchThreads {
			b.Run(fmt.Sprintf("%s/threads=%d", impl, th), func(b *testing.B) {
				runPairs(b, impl, th)
			})
		}
	}
}

// BenchmarkFig5b regenerates Figure 5b: different detectable queue
// implementations (DSS vs log queue vs Fast/General CASWithEffect).
func BenchmarkFig5b(b *testing.B) {
	for _, impl := range harness.Impls5b() {
		for _, th := range benchThreads {
			b.Run(fmt.Sprintf("%s/threads=%d", impl, th), func(b *testing.B) {
				runPairs(b, impl, th)
			})
		}
	}
}

// BenchmarkAblationFlushLatency sweeps the simulated CLWB+SFENCE cost for
// the detectable DSS queue: the knob behind every persistence ratio in
// Figure 5 (DESIGN.md, substitution table).
func BenchmarkAblationFlushLatency(b *testing.B) {
	for _, lat := range []time.Duration{0, 100 * time.Nanosecond, 300 * time.Nanosecond, 1000 * time.Nanosecond} {
		b.Run(fmt.Sprintf("flush=%v", lat), func(b *testing.B) {
			q, _, err := harness.Build(harness.DSSDetectable, harness.BuildConfig{
				Threads: 1, FlushLatency: lat, AccessDelay: benchAccessDelay,
			})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < 16; i++ {
				_ = q.Enqueue(0, uint64(i))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = q.Enqueue(0, uint64(i))
				q.Dequeue(0)
			}
		})
	}
}

// BenchmarkAblationDetectabilityOnDemand exercises the DSS's unique
// ability to request detectability per operation (Section 1, contribution
// 3): a workload where only a fraction of the pairs are detectable.
func BenchmarkAblationDetectabilityOnDemand(b *testing.B) {
	for _, pct := range []int{0, 25, 50, 75, 100} {
		b.Run(fmt.Sprintf("detectable=%d%%", pct), func(b *testing.B) {
			h, err := pmem.New(pmem.Config{
				Words: 1 << 16, Mode: pmem.Direct,
				FlushLatency: benchFlushLatency, AccessDelay: benchAccessDelay,
			})
			if err != nil {
				b.Fatal(err)
			}
			q, err := core.New(h, 0, core.Config{Threads: 1, NodesPerThread: 256, ExtraNodes: 8})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < 16; i++ {
				_ = q.Enqueue(0, uint64(1000+i))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i%100 < pct {
					_ = q.PrepEnqueue(0, uint64(i))
					q.ExecEnqueue(0)
					q.PrepDequeue(0)
					q.ExecDequeue(0)
				} else {
					_ = q.Enqueue(0, uint64(i))
					q.Dequeue(0)
				}
			}
		})
	}
}

// BenchmarkAblationRecovery measures one crash/recovery cycle of the
// centralized procedure (Figure 6) as a function of surviving queue
// length. The measured unit includes the simulated reboot (Heap.Crash),
// which is proportional to the arena size; the growth across sub-
// benchmarks isolates the recovery scan's linear dependence on queue
// length.
func BenchmarkAblationRecovery(b *testing.B) {
	for _, length := range []int{16, 256, 4096} {
		b.Run(fmt.Sprintf("queue=%d", length), func(b *testing.B) {
			words := 1<<14 + length*4*pmem.WordsPerLine
			h, err := pmem.New(pmem.Config{Words: words, Mode: pmem.Tracked})
			if err != nil {
				b.Fatal(err)
			}
			q, err := core.New(h, 0, core.Config{Threads: 4, NodesPerThread: length/2 + 64, ExtraNodes: 8})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < length; i++ {
				// Spread across threads: free lists are owner-local.
				if err := q.Enqueue(i%4, uint64(i)); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h.CrashNow()
				h.Crash(pmem.DropAll{})
				q.Recover()
			}
		})
	}
}

// BenchmarkAblationResolve measures the resolve operation itself — the
// paper's O(1) detection path.
func BenchmarkAblationResolve(b *testing.B) {
	h, err := pmem.New(pmem.Config{Words: 1 << 16, Mode: pmem.Direct})
	if err != nil {
		b.Fatal(err)
	}
	q, err := core.New(h, 0, core.Config{Threads: 1, NodesPerThread: 64, ExtraNodes: 8})
	if err != nil {
		b.Fatal(err)
	}
	_ = q.PrepEnqueue(0, 7)
	q.ExecEnqueue(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := q.Resolve(0); res.Op != core.OpEnqueue {
			b.Fatal("bad resolution")
		}
	}
}

// BenchmarkAblationPMwCASWidth measures PMwCAS cost against the number of
// words per operation — why the paper's CASWithEffect queues trail the
// specialized DSS queue.
func BenchmarkAblationPMwCASWidth(b *testing.B) {
	for _, k := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("words=%d", k), func(b *testing.B) {
			h, err := pmem.New(pmem.Config{
				Words: 1 << 16, Mode: pmem.Direct,
				FlushLatency: benchFlushLatency, AccessDelay: benchAccessDelay,
			})
			if err != nil {
				b.Fatal(err)
			}
			p, err := pmwcas.New(h, 0, 1, 8)
			if err != nil {
				b.Fatal(err)
			}
			region := h.MustAlloc(8 * pmem.WordsPerLine)
			entries := make([]pmwcas.Entry, k)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := 0; j < k; j++ {
					entries[j] = pmwcas.Entry{
						Addr: region + pmem.Addr(j*pmem.WordsPerLine),
						Old:  uint64(i), New: uint64(i + 1),
					}
				}
				if ok, err := p.Apply(0, entries); err != nil || !ok {
					b.Fatalf("apply %d: (%v,%v)", i, ok, err)
				}
			}
		})
	}
}

// BenchmarkExtensionDSSStack measures this repository's DSS-stack
// extension with and without detectability, mirroring Figure 5a's
// comparison on the second structure.
func BenchmarkExtensionDSSStack(b *testing.B) {
	for _, detect := range []bool{false, true} {
		name := "plain"
		if detect {
			name = "detectable"
		}
		b.Run(name, func(b *testing.B) {
			h, err := pmem.New(pmem.Config{
				Words: 1 << 16, Mode: pmem.Direct,
				FlushLatency: benchFlushLatency, AccessDelay: benchAccessDelay,
			})
			if err != nil {
				b.Fatal(err)
			}
			s, err := stack.New(h, 0, stack.Config{Threads: 1, NodesPerThread: 256, ExtraNodes: 8})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if detect {
					_ = s.PrepPush(0, uint64(i))
					s.ExecPush(0)
					s.PrepPop(0)
					s.ExecPop(0)
				} else {
					_ = s.Push(0, uint64(i))
					s.Pop(0)
				}
			}
		})
	}
}

// BenchmarkAblationRecoveryVariant compares the two recovery styles of
// Section 3.3 — centralized (Figure 6) versus per-thread independent.
func BenchmarkAblationRecoveryVariant(b *testing.B) {
	prepare := func(b *testing.B) (*core.Queue, *pmem.Heap) {
		b.Helper()
		h, err := pmem.New(pmem.Config{Words: 1 << 16, Mode: pmem.Tracked})
		if err != nil {
			b.Fatal(err)
		}
		q, err := core.New(h, 0, core.Config{Threads: 4, NodesPerThread: 256, ExtraNodes: 8})
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 128; i++ {
			if err := q.Enqueue(0, uint64(i)); err != nil {
				b.Fatal(err)
			}
		}
		return q, h
	}
	b.Run("centralized", func(b *testing.B) {
		q, h := prepare(b)
		for i := 0; i < b.N; i++ {
			h.CrashNow()
			h.Crash(pmem.DropAll{})
			q.Recover()
		}
	})
	b.Run("independent", func(b *testing.B) {
		q, h := prepare(b)
		for i := 0; i < b.N; i++ {
			h.CrashNow()
			h.Crash(pmem.DropAll{})
			q.ResetVolatile()
			for tid := 0; tid < 4; tid++ {
				q.RecoverLocal(tid)
			}
		}
	})
}
