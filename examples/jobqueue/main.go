// Jobqueue: exactly-once job processing across crashes.
//
// This is the workload the paper's introduction motivates: an application
// that must know, after a power failure, whether its in-flight operation
// took effect — "a thread that completes an operation on a shared object
// and then crashes may have difficulty determining whether this operation
// took effect". Here a pool of workers consumes jobs from a detectable
// DSS queue; the run is interrupted by repeated simulated power failures,
// and detectability (resolve) is what lets every job be processed exactly
// once — no job lost, none run twice — without any write-ahead log.
//
//	go run ./examples/jobqueue
package main

import (
	"fmt"
	"log"
	"sync"

	"repro/internal/core"
	"repro/internal/pmem"
)

const (
	workers = 3
	jobs    = 40
)

func main() {
	heap, err := pmem.New(pmem.Config{Words: 1 << 17, Mode: pmem.Tracked})
	if err != nil {
		log.Fatal(err)
	}
	q, err := core.New(heap, 0, core.Config{
		Threads:        workers,
		NodesPerThread: 64,
		ExtraNodes:     8,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Producer: enqueue all jobs up front (job IDs 1..jobs).
	for id := uint64(1); id <= jobs; id++ {
		if err := q.Enqueue(0, id); err != nil {
			log.Fatal(err)
		}
	}

	// processed is the application's durable side effect; in a real
	// system it would live in persistent memory too. Exactly-once means
	// every job ID lands here exactly once.
	processed := make(map[uint64]int)
	var mu sync.Mutex
	record := func(id uint64) {
		mu.Lock()
		processed[id]++
		mu.Unlock()
	}

	crashSeed := int64(1)
	for epoch := 0; ; epoch++ {
		// Arm a crash partway into this epoch; later epochs get longer
		// fuses so the run eventually completes.
		heap.ArmCrash(uint64(100 * (epoch + 1)))

		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				pmem.RunToCrash(func() {
					for {
						q.PrepDequeue(w)
						id, ok := q.ExecDequeue(w)
						if !ok {
							return // queue drained
						}
						record(id) // the job's effect
					}
				})
			}(w)
		}
		wg.Wait()

		if !heap.Crashed() {
			break // all workers saw the queue empty without a crash
		}

		// Power failure: resolve each worker's interrupted dequeue. If it
		// took effect but the worker died before recording the job, the
		// job ID is recovered from the resolution — this is the paper's
		// detectability in action.
		fmt.Printf("epoch %d: crash! ", epoch)
		heap.Crash(pmem.NewRandomFates(crashSeed))
		crashSeed++
		q.Recover()
		recovered := 0
		for w := 0; w < workers; w++ {
			res := q.Resolve(w)
			if res.Op == core.OpDequeue && res.Executed && !res.Empty {
				mu.Lock()
				already := processed[res.Val] > 0
				mu.Unlock()
				if !already {
					record(res.Val)
					recovered++
				}
			}
		}
		fmt.Printf("recovered %d in-flight job(s) from resolutions\n", recovered)
	}

	// Audit: exactly once, every job.
	missing, duplicated := 0, 0
	for id := uint64(1); id <= jobs; id++ {
		switch processed[id] {
		case 0:
			missing++
		case 1:
		default:
			duplicated++
		}
	}
	fmt.Printf("\n%d jobs: %d missing, %d duplicated — exactly-once %s\n",
		jobs, missing, duplicated, verdict(missing == 0 && duplicated == 0))
}

func verdict(ok bool) string {
	if ok {
		return "HELD"
	}
	return "VIOLATED"
}
