// Quickstart: the DSS queue in five minutes.
//
// This example walks the public API end to end: build a simulated
// persistent heap, create the detectable queue, run detectable and plain
// operations, cut the power mid-operation, recover, and resolve.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/pmem"
)

func main() {
	// A simulated persistent-memory device in Tracked mode: it maintains
	// a persisted view under the volatile cache and can inject crashes.
	heap, err := pmem.New(pmem.Config{Words: 1 << 16, Mode: pmem.Tracked})
	if err != nil {
		log.Fatal(err)
	}

	// The DSS queue of the paper's Section 3, for 2 threads.
	q, err := core.New(heap, 0, core.Config{
		Threads:        2,
		NodesPerThread: 64,
		ExtraNodes:     8,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Non-detectable operations (Axiom 4): ordinary queue semantics.
	for v := uint64(1); v <= 3; v++ {
		if err := q.Enqueue(0, v); err != nil {
			log.Fatal(err)
		}
	}
	v, _ := q.Dequeue(0)
	fmt.Printf("plain dequeue -> %d\n", v)

	// Detectable operations (Axioms 1-2): declare intent, then execute.
	if err := q.PrepEnqueue(0, 42); err != nil {
		log.Fatal(err)
	}
	q.ExecEnqueue(0)
	fmt.Printf("detectable enqueue(42) resolved as: %s\n", q.Resolve(0).Resp())

	// Now cut the power in the middle of a detectable dequeue. ArmCrash
	// fires after the given number of primitive memory steps; the crash
	// unwinds the worker via a sentinel panic that RunToCrash absorbs.
	heap.ArmCrash(6)
	crashed := pmem.RunToCrash(func() {
		q.PrepDequeue(0)
		q.ExecDequeue(0)
	})
	fmt.Printf("crashed mid-dequeue: %v\n", crashed)

	// The crash adversary decides the fate of un-flushed cache lines;
	// then the centralized recovery procedure (Figure 6) repairs the
	// structure.
	heap.Crash(pmem.DropAll{})
	q.Recover()

	// Resolve (Axiom 3) tells this thread exactly what happened to the
	// operation the crash interrupted.
	res := q.Resolve(0)
	fmt.Printf("after recovery, resolve() = %s\n", res.Resp())
	switch {
	case res.Op == core.OpDequeue && res.Executed:
		fmt.Printf("the dequeue took effect and returned %d — no retry\n", res.Val)
	case res.Op == core.OpDequeue:
		fmt.Println("the dequeue did not take effect — safe to retry exactly once")
		if got, ok := q.ExecDequeue(0); ok {
			fmt.Printf("retried dequeue -> %d\n", got)
		}
	}

	// The rest of the queue survived the crash.
	fmt.Print("surviving contents: ")
	for {
		v, ok := q.Dequeue(0)
		if !ok {
			break
		}
		fmt.Printf("%d ", v)
	}
	fmt.Println()
}
