// Ledger: detectable objects beyond queues, via the universal
// construction.
//
// Section 2.2 of the paper notes that a wait-free recoverable D⟨T⟩ for
// any sequential type T follows from Herlihy's universal construction.
// This example uses that construction (internal/universal) to build a
// detectable bank account — a counter object — and applies a batch of
// deposits under repeated power failures. The resolve operation gives the
// exactly-once retry rule: after each crash the depositor asks the object
// whether its last deposit landed, retrying only if it did not.
//
//	go run ./examples/ledger
package main

import (
	"fmt"
	"log"

	"repro/internal/pmem"
	"repro/internal/spec"
	"repro/internal/universal"
)

const deposits = 25

func main() {
	heap, err := pmem.New(pmem.Config{Words: 1 << 17, Mode: pmem.Tracked})
	if err != nil {
		log.Fatal(err)
	}
	// A detectable counter: each inc() is one 1-coin deposit. The op
	// table registers the operations this object supports.
	account, err := universal.New(heap, 0, 1, 4096, spec.NewCounter(),
		[]spec.Op{spec.Inc(), spec.Read()})
	if err != nil {
		log.Fatal(err)
	}

	crashes := 0
	next := 0 // index of the next deposit to make
	var pendingTag uint64

	for next < deposits {
		// Arm a crash at a pseudo-random point and run deposits until it
		// fires (or the batch completes).
		heap.ArmCrash(uint64(37 + 61*crashes))
		pmem.RunToCrash(func() {
			for next < deposits {
				// The auxiliary Tag argument (Section 2.1's closing
				// remark) distinguishes repeated inc() operations.
				op := spec.Inc()
				op.Tag = uint64(next + 1)
				pendingTag = op.Tag
				if err := account.Prep(0, op); err != nil {
					log.Fatal(err)
				}
				if _, err := account.Exec(0); err != nil {
					log.Fatal(err)
				}
				next++
			}
		})
		if !heap.Crashed() {
			break
		}
		crashes++
		heap.Crash(pmem.NewRandomFates(int64(crashes)))
		account.Recover()

		// Detectability: did the in-flight deposit land?
		res := account.Resolve(0)
		switch {
		case !res.HasOp:
			// Not even prepared; re-run the deposit with the same tag.
			fmt.Printf("crash %d: deposit #%d not prepared, rerunning\n", crashes, pendingTag)
		case res.POp.Tag == pendingTag && res.Inner == spec.None:
			// Prepared but did not take effect: the prepared op is still
			// enabled, execute it exactly once.
			fmt.Printf("crash %d: deposit #%d prepared but not applied, executing\n", crashes, res.POp.Tag)
			if _, err := account.Exec(0); err != nil {
				log.Fatal(err)
			}
			next = int(pendingTag)
		case res.POp.Tag == pendingTag:
			fmt.Printf("crash %d: deposit #%d already applied, not retrying\n", crashes, res.POp.Tag)
			next = int(pendingTag)
		default:
			// The crash hit between deposits; the last prepared one is an
			// older, completed deposit.
			fmt.Printf("crash %d: between deposits (last resolved: #%d)\n", crashes, res.POp.Tag)
		}
	}

	balance, err := account.Invoke(0, spec.Read())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbalance after %d deposits and %d crashes: %s (want %d) — exactly-once %s\n",
		deposits, crashes, balance, deposits, verdict(balance == spec.ValResp(deposits)))
}

func verdict(ok bool) string {
	if ok {
		return "HELD"
	}
	return "VIOLATED"
}
