// Dssregister: the four executions of the paper's Figure 2, live.
//
// Figure 2 illustrates the DSS of a read/write register with four
// executions that differ in where the crash lands relative to
// prep-write(1) and exec-write(1). This example reproduces each case with
// real crash injection on the simulated heap (using the universal
// construction's detectable register) and prints the resolve outcome,
// which always falls within the set the figure permits.
//
//	go run ./examples/dssregister
package main

import (
	"fmt"
	"log"

	"repro/internal/pmem"
	"repro/internal/spec"
	"repro/internal/universal"
)

func newRegister() (*universal.Object, *pmem.Heap) {
	heap, err := pmem.New(pmem.Config{Words: 1 << 15, Mode: pmem.Tracked})
	if err != nil {
		log.Fatal(err)
	}
	reg, err := universal.New(heap, 0, 1, 128, spec.NewRegister(0),
		[]spec.Op{spec.Read(), spec.Write(0)})
	if err != nil {
		log.Fatal(err)
	}
	return reg, heap
}

func main() {
	fmt.Println("Figure 2: executions of a detectable read/write register (initially 0)")

	// (a) prep; exec; crash after exec; resolve -> (write(1), OK).
	{
		reg, heap := newRegister()
		if err := reg.Prep(0, spec.Write(1)); err != nil {
			log.Fatal(err)
		}
		if _, err := reg.Exec(0); err != nil {
			log.Fatal(err)
		}
		heap.CrashNow()
		heap.Crash(pmem.DropAll{})
		reg.Recover()
		report("(a) crash after exec-write(1)   ", reg)
	}

	// (b) crash during exec: resolve -> (write(1), ⊥) or (write(1), OK).
	{
		reg, heap := newRegister()
		if err := reg.Prep(0, spec.Write(1)); err != nil {
			log.Fatal(err)
		}
		heap.ArmCrash(4) // lands inside exec-write(1)
		pmem.RunToCrash(func() {
			_, _ = reg.Exec(0)
		})
		heap.Crash(pmem.NewRandomFates(3))
		reg.Recover()
		report("(b) crash during exec-write(1)  ", reg)
	}

	// (c) crash before exec: resolve -> (write(1), ⊥).
	{
		reg, heap := newRegister()
		if err := reg.Prep(0, spec.Write(1)); err != nil {
			log.Fatal(err)
		}
		heap.CrashNow()
		heap.Crash(pmem.DropAll{})
		reg.Recover()
		report("(c) crash before exec-write(1)  ", reg)
	}

	// (d) crash during prep: resolve -> (⊥, ⊥) or (write(1), ⊥).
	{
		reg, heap := newRegister()
		heap.ArmCrash(8) // lands inside prep-write(1)
		pmem.RunToCrash(func() {
			_ = reg.Prep(0, spec.Write(1))
		})
		heap.Crash(pmem.DropAll{})
		reg.Recover()
		report("(d) crash during prep-write(1)  ", reg)
	}
}

func report(label string, reg *universal.Object) {
	res := reg.Resolve(0)
	val, err := reg.Invoke(0, spec.Read())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s resolve() = %-18s register = %s\n", label, res, val)
}
