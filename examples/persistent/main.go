//go:build linux

// Persistent: the DSS queue surviving real process exits.
//
// The other examples simulate crashes inside one process; this one uses
// the file-backed heap (mmap + msync), so the queue — and the
// detectability state — live in a file and survive actual process
// restarts and kills. Each invocation attaches to the existing queue,
// runs recovery, reports what the previous invocation left behind, and
// performs one command:
//
//	go run ./examples/persistent -file /tmp/inbox.pmem add 42
//	go run ./examples/persistent -file /tmp/inbox.pmem add 43
//	go run ./examples/persistent -file /tmp/inbox.pmem take
//	go run ./examples/persistent -file /tmp/inbox.pmem status
//
// Kill an invocation at any point (or pull the plug, on a machine with
// real persistent storage semantics) and the next run's resolve tells you
// whether the interrupted operation took effect.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"

	"repro/internal/core"
	"repro/internal/pmem"
)

func main() {
	file := flag.String("file", "/tmp/dss-inbox.pmem", "backing file for the persistent heap")
	flag.Parse()
	if err := run(*file, flag.Args()); err != nil {
		log.Fatal(err)
	}
}

func run(path string, args []string) error {
	heap, closeHeap, err := pmem.OpenFile(path, 1<<15)
	if err != nil {
		return err
	}
	defer func() {
		if err := closeHeap(); err != nil {
			log.Printf("close: %v", err)
		}
	}()

	// Attach to the queue if this file already holds one; build otherwise.
	q, err := core.Attach(heap, 0)
	if err != nil {
		q, err = core.New(heap, 0, core.Config{Threads: 1, NodesPerThread: 64, ExtraNodes: 8})
		if err != nil {
			return err
		}
		fmt.Printf("created a fresh inbox in %s\n", path)
	} else {
		q.Recover()
		// Detectability across process lifetimes: what did the previous
		// invocation leave pending?
		res := q.Resolve(0)
		switch {
		case res.Op == core.OpEnqueue && !res.Executed:
			fmt.Printf("note: previous add(%d) did not take effect; re-applying it now\n", res.Arg)
			q.ExecEnqueue(0)
		case res.Op == core.OpDequeue && res.Executed && !res.Empty:
			fmt.Printf("note: previous take consumed %d (recovered from the resolution)\n", res.Val)
		}
	}

	if len(args) == 0 {
		args = []string{"status"}
	}
	switch args[0] {
	case "add":
		if len(args) < 2 {
			return fmt.Errorf("usage: add <number>")
		}
		v, err := strconv.ParseUint(args[1], 10, 64)
		if err != nil {
			return fmt.Errorf("bad value %q: %w", args[1], err)
		}
		if err := q.PrepEnqueue(0, v); err != nil {
			return err
		}
		q.ExecEnqueue(0)
		fmt.Printf("added %d\n", v)
	case "take":
		q.PrepDequeue(0)
		if v, ok := q.ExecDequeue(0); ok {
			fmt.Printf("took %d\n", v)
		} else {
			fmt.Println("inbox is empty")
		}
	case "status":
		res := q.Resolve(0)
		fmt.Printf("last detectable operation: %s\n", res.Resp())
		fmt.Printf("free nodes: %d\n", q.FreeNodes())
	default:
		fmt.Fprintf(os.Stderr, "unknown command %q (use add/take/status)\n", args[0])
		os.Exit(2)
	}
	return heap.SyncErr()
}
