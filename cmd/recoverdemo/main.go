// Command recoverdemo walks through a crash/recovery cycle of the DSS
// queue step by step, printing what the application sees: the detectable
// operations before the crash, the resolve outcomes after recovery, and
// the exactly-once retry decision the resolutions enable.
//
// Usage:
//
//	recoverdemo -threads 3 -crash-step 120 -seed 7
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"

	"repro/internal/core"
	"repro/internal/pmem"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "recoverdemo: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	threads := flag.Int("threads", 3, "worker threads")
	crashStep := flag.Uint64("crash-step", 150, "primitive memory step at which power is cut")
	seed := flag.Int64("seed", 7, "dirty-line adversary seed")
	flag.Parse()

	h, err := pmem.New(pmem.Config{Words: 1 << 16, Mode: pmem.Tracked})
	if err != nil {
		return err
	}
	q, err := core.New(h, 0, core.Config{Threads: *threads, NodesPerThread: 64, ExtraNodes: 8})
	if err != nil {
		return err
	}

	fmt.Printf("== phase 1: %d threads run detectable enqueue/dequeue pairs\n", *threads)
	fmt.Printf("   (simulated power loss armed at memory step %d)\n\n", *crashStep)
	h.ArmCrash(*crashStep)

	type opLog struct {
		lines []string
	}
	logs := make([]opLog, *threads)
	var wg sync.WaitGroup
	for tid := 0; tid < *threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			pmem.RunToCrash(func() {
				for i := 0; ; i++ {
					v := uint64(tid+1)*1000 + uint64(i)
					if err := q.PrepEnqueue(tid, v); err != nil {
						return
					}
					q.ExecEnqueue(tid)
					logs[tid].lines = append(logs[tid].lines, fmt.Sprintf("enqueued %d", v))
					q.PrepDequeue(tid)
					if got, ok := q.ExecDequeue(tid); ok {
						logs[tid].lines = append(logs[tid].lines, fmt.Sprintf("dequeued %d", got))
					} else {
						logs[tid].lines = append(logs[tid].lines, "dequeued EMPTY")
					}
				}
			})
		}(tid)
	}
	wg.Wait()

	for tid := 0; tid < *threads; tid++ {
		fmt.Printf("thread %d completed %d operations before the crash; last few:\n", tid, len(logs[tid].lines))
		tail := logs[tid].lines
		if len(tail) > 3 {
			tail = tail[len(tail)-3:]
		}
		for _, l := range tail {
			fmt.Printf("    %s\n", l)
		}
	}

	fmt.Printf("\n== phase 2: crash — un-flushed cache lines resolved by adversary (seed %d)\n", *seed)
	before := h.DirtyLines()
	h.Crash(pmem.NewRandomFates(*seed))
	fmt.Printf("   %d dirty lines at the crash; persisted image survives\n", before)

	fmt.Printf("\n== phase 3: centralized recovery (Figure 6) runs single-threaded\n")
	q.Recover()
	fmt.Printf("   head/tail repaired, X entries completed, %d nodes back on free lists\n\n", q.FreeNodes())

	fmt.Printf("== phase 4: each thread resolves its interrupted operation\n")
	for tid := 0; tid < *threads; tid++ {
		res := q.Resolve(tid)
		fmt.Printf("thread %d: resolve() = %s\n", tid, res.Resp())
		switch {
		case res.Op == core.OpEnqueue && !res.Executed:
			fmt.Printf("    -> enqueue(%d) did NOT take effect; retrying exactly once\n", res.Arg)
			q.ExecEnqueue(tid)
		case res.Op == core.OpEnqueue && res.Executed:
			fmt.Printf("    -> enqueue(%d) took effect; no retry needed\n", res.Arg)
		case res.Op == core.OpDequeue && res.Executed && !res.Empty:
			fmt.Printf("    -> dequeue returned %d before the crash; value recovered without re-execution\n", res.Val)
		case res.Op == core.OpDequeue && res.Executed && res.Empty:
			fmt.Printf("    -> dequeue observed an empty queue\n")
		case res.Op == core.OpDequeue:
			fmt.Printf("    -> dequeue did not take effect; application may retry\n")
		default:
			fmt.Printf("    -> no detectable operation was pending\n")
		}
	}

	fmt.Printf("\n== phase 5: surviving queue contents (FIFO order)\n")
	var rest []uint64
	for {
		v, ok := q.Dequeue(0)
		if !ok {
			break
		}
		rest = append(rest, v)
	}
	fmt.Printf("   %v\n", rest)
	return nil
}
