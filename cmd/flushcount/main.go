// Command flushcount reports the persistence-instruction footprint of
// every queue configuration: throughput, flushes and fences per
// operation at one thread. This is the mechanism table behind Figure 5 —
// the paper attributes each ordering in its evaluation to flush counts
// and allocation traffic, and this tool makes those counts observable.
//
// The measurement runs through the instrumented harness
// (harness.RunWallMetrics), so detectable configurations additionally
// report the mean prep and exec phase latencies the observability layer
// records; plain configurations leave those columns blank. The
// flushes/op and fences/op columns are the report's derived
// flushes_per_op / fences_per_op fields; for the flat-combining
// configurations the elided/op column counts the fences the batch layer
// absorbed per operation.
//
// Usage:
//
//	flushcount [-duration 200ms]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/harness"
)

func main() {
	duration := flag.Duration("duration", 200*time.Millisecond, "measurement duration per configuration")
	flag.Parse()

	fmt.Printf("%-24s %12s %14s %14s %14s %14s %14s\n",
		"configuration", "Mops/s", "flushes/op", "fences/op", "elided/op", "prep mean(ns)", "exec mean(ns)")
	for _, impl := range harness.AllImpls() {
		rep, err := harness.RunWallMetrics(harness.RunConfig{
			Impl: impl, Threads: 1, Duration: *duration,
			FlushLatency: 300 * time.Nanosecond, AccessDelay: 100,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "flushcount: %s: %v\n", impl, err)
			os.Exit(1)
		}
		prep, exec := phaseMeans(rep)
		elided := "-"
		if rep.Heap.FencesElided > 0 {
			elided = fmt.Sprintf("%.2f", float64(rep.Heap.FencesElided)/float64(rep.Ops))
		}
		fmt.Printf("%-24s %12.3f %14.2f %14.2f %14s %14s %14s\n",
			impl, rep.Mops, rep.FlushesPerOp, rep.FencesPerOp, elided, prep, exec)
	}
}

// phaseMeans pulls the mean prep and exec latencies out of the obs
// export, summing across op kinds. Configurations that don't route
// through the observability layer (the plain queues) report no phases.
func phaseMeans(rep harness.MetricsReport) (prep, exec string) {
	var pSum, pCnt, eSum, eCnt uint64
	for _, ph := range rep.Obs.Phases {
		switch ph.Phase {
		case "prep":
			pSum += ph.Sum
			pCnt += ph.Count
		case "exec":
			eSum += ph.Sum
			eCnt += ph.Count
		}
	}
	prep, exec = "-", "-"
	if pCnt > 0 {
		prep = fmt.Sprintf("%.1f", float64(pSum)/float64(pCnt))
	}
	if eCnt > 0 {
		exec = fmt.Sprintf("%.1f", float64(eSum)/float64(eCnt))
	}
	return prep, exec
}
