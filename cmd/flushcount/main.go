// Command flushcount reports the persistence-instruction footprint of
// every queue configuration: throughput and flushes per operation at one
// thread. This is the mechanism table behind Figure 5 — the paper
// attributes each ordering in its evaluation to flush counts and
// allocation traffic, and this tool makes those counts observable.
//
// Usage:
//
//	flushcount [-duration 200ms]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/harness"
)

func main() {
	duration := flag.Duration("duration", 200*time.Millisecond, "measurement duration per configuration")
	flag.Parse()

	fmt.Printf("%-24s %12s %14s\n", "configuration", "Mops/s", "flushes/op")
	for _, impl := range harness.AllImpls() {
		p, err := harness.RunThroughput(harness.RunConfig{
			Impl: impl, Threads: 1, Duration: *duration,
			FlushLatency: 300 * time.Nanosecond, AccessDelay: 100,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "flushcount: %s: %v\n", impl, err)
			os.Exit(1)
		}
		fmt.Printf("%-24s %12.3f %14.2f\n", impl, p.Mops, float64(p.Flushes)/float64(p.Ops))
	}
}
