package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"repro/internal/livemon"
	"repro/internal/obs"
)

// The live subcommands attach a strictly read-only livemon.Monitor to
// the shared-memory segments of a running dssproc storm:
//
//	dssmon live DIR            # top-like refreshing table
//	dssmon live -once DIR      # one sample, plain output
//	dssmon serve -addr :9120 DIR   # Prometheus text + JSON over HTTP
//	dssmon serve -once DIR         # print one validated exposition
//
// DIR is the storm's working directory (dssproc -dir): every seg* file
// in it is opened read-only, so the monitor can never perturb the
// deployment it watches.

// monFlags are the SLO-threshold flags the live subcommands share; they
// feed the per-server obs.SLOTracker verdicts.
type monFlags struct {
	recoverySLO *time.Duration
	stall       *time.Duration
	execP99     *time.Duration
}

func addMonFlags(fs *flag.FlagSet) monFlags {
	return monFlags{
		recoverySLO: fs.Duration("recovery-slo", 250*time.Millisecond,
			"recovery windows running longer than this are verdict 'violating' (0 disables)"),
		stall: fs.Duration("stall", 400*time.Millisecond,
			"serving heartbeats frozen longer than this are verdict 'stalled' (0 disables)"),
		execP99: fs.Duration("exec-p99", 0,
			"windowed exec p99 above this is verdict 'violating' (0 disables)"),
	}
}

func (f monFlags) config() livemon.Config {
	return livemon.Config{SLO: obs.SLOConfig{
		RecoveryMaxNS: uint64(*f.recoverySLO),
		StallNS:       uint64(*f.stall),
		ExecP99MaxNS:  float64(*f.execP99),
	}}
}

// openMonitor resolves the positional storm directory and attaches.
func openMonitor(fs *flag.FlagSet, cfg livemon.Config) (*livemon.Monitor, error) {
	dir := "."
	switch fs.NArg() {
	case 0:
	case 1:
		dir = fs.Arg(0)
	default:
		return nil, fmt.Errorf("expected at most one storm directory, got %d args", fs.NArg())
	}
	return livemon.Open(dir, cfg)
}

// runLive renders a refreshing top-like table of the deployment until
// interrupted (or once, with -once).
func runLive(args []string) error {
	fs := flag.NewFlagSet("live", flag.ExitOnError)
	interval := fs.Duration("interval", 500*time.Millisecond, "refresh interval")
	once := fs.Bool("once", false, "render one sample and exit")
	count := fs.Int("n", 0, "exit after this many refreshes (0 = until interrupted)")
	mf := addMonFlags(fs)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: dssmon live [flags] [storm-dir]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	mon, err := openMonitor(fs, mf.config())
	if err != nil {
		return err
	}
	defer mon.Close()

	if *once {
		fmt.Print(livemon.RenderTable(mon.Sample()))
		return nil
	}
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	tick := time.NewTicker(*interval)
	defer tick.Stop()
	for n := 0; ; n++ {
		// Home the cursor and clear below rather than clearing the whole
		// screen, so each refresh repaints without flicker.
		fmt.Print("\x1b[H\x1b[2J" + livemon.RenderTable(mon.Sample()))
		if *count > 0 && n+1 >= *count {
			return nil
		}
		select {
		case <-stop:
			return nil
		case <-tick.C:
		}
	}
}

// runServe exposes the deployment over HTTP: Prometheus text exposition
// at /metrics, the Status document as JSON at /status. With -once it
// prints a single exposition to stdout after self-validating it — the
// CI smoke path, no listener needed.
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:9120", "HTTP listen address")
	once := fs.Bool("once", false, "print one validated Prometheus exposition to stdout and exit")
	mf := addMonFlags(fs)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: dssmon serve [flags] [storm-dir]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	mon, err := openMonitor(fs, mf.config())
	if err != nil {
		return err
	}
	defer mon.Close()

	if *once {
		prom := livemon.RenderProm(mon.Sample())
		if probs := livemon.ValidateProm(prom); len(probs) > 0 {
			for _, p := range probs {
				fmt.Fprintf(os.Stderr, "exposition invalid: %s\n", p)
			}
			return fmt.Errorf("%d exposition problems", len(probs))
		}
		fmt.Print(prom)
		return nil
	}

	// The monitor is single-threaded by contract; one mutex serializes
	// the HTTP handlers over it.
	var mu sync.Mutex
	sample := func() livemon.Status {
		mu.Lock()
		defer mu.Unlock()
		return mon.Sample()
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		fmt.Fprint(w, livemon.RenderProm(sample()))
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(sample())
	})
	fmt.Fprintf(os.Stderr, "dssmon serve: listening on %s (/metrics, /status)\n", *addr)
	return http.ListenAndServe(*addr, mux)
}
