// Command dssmon reads the observability documents the benchmarks and
// the soaks emit — dss-metrics/1 reports (dssbench -metrics), bare
// dss-obs/1 exports, dss-timeline/1 recovery timelines (dsssoak
// -timeline), dss-cluster-timeline/1 per-server-lane cluster timelines
// (dsssoak -cluster -timeline), dss-procs/1 multi-process storm reports
// (dssproc / dsssoak -procs), dss-proc-timeline/1 process-storm side
// records (dssproc -timeline), dss-slo/1 streaming-percentile figures
// (dssbench -slo), and the flat benchmark Reports the figures write
// (BENCH_fig5a.json, BENCH_sharded.json, BENCH_register.json,
// BENCH_hmap.json, ... — identified by their "figure" field) — and
// renders, validates, or diffs them. Two subcommands leave the
// document world and attach a strictly read-only monitor to the
// shared-memory segments of a LIVE dssproc deployment instead: `dssmon
// live` (top-like refreshing status table) and `dssmon serve`
// (Prometheus text exposition + JSON over HTTP); see live.go.
//
// Usage:
//
//	dssmon BENCH_metrics.json                 # pretty-print one document
//	dssmon -check BENCH_metrics.json ...      # validate; nonzero exit on problems
//	dssmon -check BENCH_hmap.json             # includes the figure's acceptance rule
//	dssmon -diff old.json new.json            # per-counter / per-phase deltas
//	dssmon live /path/to/storm-dir            # watch a running storm
//	dssmon serve -addr :9120 /path/to/dir     # export it to Prometheus
//
// -check is the machine gate behind `make metrics-smoke`, `make
// register-smoke`, `make hmap-smoke` and `make slo-smoke`: it
// re-derives every internal consistency rule (schema tags, bucket sums
// vs counts, timeline crash/recovery accounting) and exits nonzero
// listing each violation. For benchmark Reports it also enforces the
// figure's headline claim: the hmap figure must show >2x throughput
// scaling from one shard to eight at its largest thread count, the
// register and combine figures must show a >=3x fences-per-op
// reduction under combining, and the dss-slo/1 figure's exec-phase
// p50/p99/p999 must be strictly increasing — the property the
// log-linear quantile interpolation exists to provide.
//
// -diff refuses to compare documents of different schemas (loudly —
// the schema names are in the error) and diffs metrics, obs and slo
// documents; timelines are event logs, not aggregates, and are
// rejected.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/procharness"
)

func main() {
	// Subcommands attach to a LIVE deployment; the flag modes below read
	// document files.
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "live":
			if err := runLive(os.Args[2:]); err != nil {
				fmt.Fprintf(os.Stderr, "dssmon live: %v\n", err)
				os.Exit(1)
			}
			return
		case "serve":
			if err := runServe(os.Args[2:]); err != nil {
				fmt.Fprintf(os.Stderr, "dssmon serve: %v\n", err)
				os.Exit(1)
			}
			return
		}
	}
	check := flag.Bool("check", false, "validate each file; exit nonzero listing every problem")
	diff := flag.Bool("diff", false, "diff two metrics documents (old new): counter and phase deltas")
	flag.Parse()
	if err := run(*check, *diff, flag.Args()); err != nil {
		fmt.Fprintf(os.Stderr, "dssmon: %v\n", err)
		os.Exit(1)
	}
}

func run(check, diff bool, files []string) error {
	switch {
	case diff:
		if len(files) != 2 {
			return fmt.Errorf("-diff needs exactly two files (old new)")
		}
		return diffFiles(files[0], files[1])
	case check:
		if len(files) == 0 {
			return fmt.Errorf("-check needs at least one file")
		}
		bad := 0
		for _, f := range files {
			probs, err := checkFile(f)
			if err != nil {
				return err
			}
			for _, p := range probs {
				fmt.Fprintf(os.Stderr, "%s: %s\n", f, p)
			}
			if len(probs) > 0 {
				bad++
			} else {
				fmt.Printf("%s: ok\n", f)
			}
		}
		if bad > 0 {
			return fmt.Errorf("%d of %d files failed validation", bad, len(files))
		}
		return nil
	default:
		if len(files) == 0 {
			return fmt.Errorf("usage: dssmon [-check|-diff] FILE...")
		}
		for _, f := range files {
			if err := show(f); err != nil {
				return err
			}
		}
		return nil
	}
}

// document is one parsed file plus its detected schema. Benchmark
// Reports carry no schema tag; they are recognized by their "figure"
// field and get the synthetic schema "bench/<figure>".
type document struct {
	schema   string
	metrics  harness.MetricsReport
	export   obs.Export
	timeline obs.RecoveryTimeline
	cluster  obs.ClusterTimeline
	procs    procharness.StormReport
	procTL   procharness.StormSide
	slo      harness.SLOReport
	bench    harness.Report
	isBench  bool
}

func load(path string) (document, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return document{}, err
	}
	var peek struct {
		Schema string `json:"schema"`
		Figure string `json:"figure"`
	}
	if err := json.Unmarshal(b, &peek); err != nil {
		return document{}, fmt.Errorf("%s: %w", path, err)
	}
	d := document{schema: peek.Schema}
	switch peek.Schema {
	case harness.MetricsSchema:
		err = json.Unmarshal(b, &d.metrics)
		d.export = d.metrics.Obs
	case obs.ExportSchema:
		err = json.Unmarshal(b, &d.export)
	case obs.TimelineSchema:
		err = json.Unmarshal(b, &d.timeline)
	case obs.ClusterTimelineSchema:
		err = json.Unmarshal(b, &d.cluster)
	case procharness.ReportSchema:
		err = json.Unmarshal(b, &d.procs)
	case procharness.TimelineSchema:
		err = json.Unmarshal(b, &d.procTL)
	case harness.SLOSchema:
		err = json.Unmarshal(b, &d.slo)
	case "":
		if peek.Figure == "" {
			return document{}, fmt.Errorf("%s: neither a schema tag nor a benchmark figure field", path)
		}
		err = json.Unmarshal(b, &d.bench)
		d.schema = "bench/" + peek.Figure
		d.isBench = true
	default:
		return document{}, fmt.Errorf("%s: unknown schema %q", path, peek.Schema)
	}
	if err != nil {
		return document{}, fmt.Errorf("%s: %w", path, err)
	}
	return d, nil
}

func show(path string) error {
	d, err := load(path)
	if err != nil {
		return err
	}
	fmt.Printf("== %s (%s)\n", path, d.schema)
	switch d.schema {
	case harness.MetricsSchema:
		m := d.metrics
		fmt.Printf("%s  threads=%d", m.Impl, m.Threads)
		if m.Shards > 0 {
			fmt.Printf("  shards=%d", m.Shards)
		}
		fmt.Printf("  mode=%s  %.3f Mops (%d ops)\n", m.Mode, m.Mops, m.Ops)
		if m.Ops > 0 {
			fmt.Printf("heap/op: %.2f loads, %.2f stores, %.2f CASes, %.2f flushes, %.2f fences\n",
				perOp(m.Heap.Loads, m.Ops), perOp(m.Heap.Stores, m.Ops), perOp(m.Heap.CASes, m.Ops),
				perOp(m.Heap.Flushes, m.Ops), perOp(m.Heap.Fences, m.Ops))
			fmt.Printf("per-op (reported): %.4f flushes_per_op, %.4f fences_per_op",
				m.FlushesPerOp, m.FencesPerOp)
			if m.Heap.FencesElided > 0 {
				fmt.Printf("  (%d fences elided by batching)", m.Heap.FencesElided)
			}
			fmt.Println()
		}
		fmt.Print(d.export.FormatTable())
	case obs.ExportSchema:
		fmt.Print(d.export.FormatTable())
	case obs.TimelineSchema:
		showTimeline(d.timeline)
	case obs.ClusterTimelineSchema:
		showClusterTimeline(d.cluster)
	case procharness.ReportSchema:
		showProcs(d.procs)
	case procharness.TimelineSchema:
		showProcTimeline(d.procTL)
	case harness.SLOSchema:
		fmt.Printf("seed %d, %d clients x %d ops, %d virtual us\n",
			d.slo.Seed, d.slo.Clients, d.slo.OpsPerClient, d.slo.VirtualUS)
		fmt.Print(d.slo.FormatTable())
	default:
		if d.isBench {
			showBench(d.bench)
		}
	}
	return nil
}

// showBench renders a flat benchmark Report: the workload line, then one
// row per thread count with every series' Mops and fences/op.
func showBench(r harness.Report) {
	fmt.Printf("workload: %s\n", r.Workload)
	if r.Config.Note != "" {
		fmt.Printf("note: %s\n", r.Config.Note)
	}
	fmt.Printf("%-8s", "threads")
	for _, s := range r.Series {
		fmt.Printf(" %16s %9s", s.Impl, "fences/op")
	}
	fmt.Println()
	rows := 0
	for _, s := range r.Series {
		if len(s.Points) > rows {
			rows = len(s.Points)
		}
	}
	for i := 0; i < rows; i++ {
		printedThreads := false
		for _, s := range r.Series {
			if i >= len(s.Points) {
				fmt.Printf(" %16s %9s", "-", "-")
				continue
			}
			p := s.Points[i]
			if !printedThreads {
				fmt.Printf("%-8d", p.Threads)
				printedThreads = true
			}
			fo := 0.0
			if p.Ops > 0 {
				fo = float64(p.Fences) / float64(p.Ops)
			}
			fmt.Printf(" %16.3f %9.2f", p.Mops, fo)
		}
		fmt.Println()
	}
}

func perOp(n, ops uint64) float64 { return float64(n) / float64(ops) }

func showTimeline(tl obs.RecoveryTimeline) {
	fmt.Printf("%d crashes, %d recoveries (unit %s; sources: %d)\n",
		tl.Crashes, tl.Recoveries, tl.Unit, len(tl.Sources))
	kinds := make([]string, 0, len(tl.EventCounts))
	for k := range tl.EventCounts {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	fmt.Print("events:")
	for _, k := range kinds {
		fmt.Printf(" %s=%d", k, tl.EventCounts[k])
	}
	fmt.Println()
	if len(tl.Cycles) > 0 {
		fmt.Printf("%-6s %14s %14s %14s %6s %8s %12s\n",
			"cycle", "crash", "recover_begin", "recover_end", "gen", "downs", "gen_changes")
		for i, c := range tl.Cycles {
			fmt.Printf("%-6d %14d %14d %14d %6d %8d %12d\n",
				i, c.Crash, c.RecoverBegin, c.RecoverEnd, c.Gen, c.ClientDowns, c.ClientGenChanges)
		}
	}
}

func showClusterTimeline(tl obs.ClusterTimeline) {
	fmt.Printf("%d servers: %d crashes, %d recoveries (unit %s; sources: %d)\n",
		tl.Servers, tl.Crashes, tl.Recoveries, tl.Unit, len(tl.Sources))
	fmt.Printf("overlap: max %d down at once, %d all-down windows, %d crashes during another server's recovery\n",
		tl.MaxConcurrentDown, tl.AllDownWindows, tl.CrashesDuringRecovery)
	kinds := make([]string, 0, len(tl.EventCounts))
	for k := range tl.EventCounts {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	fmt.Print("events:")
	for _, k := range kinds {
		fmt.Printf(" %s=%d", k, tl.EventCounts[k])
	}
	fmt.Println()
	for _, lane := range tl.Lanes {
		fmt.Printf("server %d: %d crashes, %d recoveries\n", lane.Server, lane.Crashes, lane.Recoveries)
		if len(lane.Cycles) == 0 {
			continue
		}
		fmt.Printf("  %-6s %14s %14s %14s %6s %8s %12s\n",
			"cycle", "crash", "recover_begin", "recover_end", "gen", "downs", "gen_changes")
		for i, c := range lane.Cycles {
			fmt.Printf("  %-6d %14d %14d %14d %6d %8d %12d\n",
				i, c.Crash, c.RecoverBegin, c.RecoverEnd, c.Gen, c.ClientDowns, c.ClientGenChanges)
		}
	}
}

func checkFile(path string) ([]string, error) {
	d, err := load(path)
	if err != nil {
		return nil, err
	}
	switch d.schema {
	case harness.MetricsSchema:
		probs := d.export.Validate()
		m := d.metrics
		if m.Mode != "virtual" && m.Mode != "wall" {
			probs = append(probs, fmt.Sprintf("unknown mode %q", m.Mode))
		}
		if m.Threads < 1 {
			probs = append(probs, fmt.Sprintf("threads %d out of range", m.Threads))
		}
		if m.Ops == 0 {
			probs = append(probs, "zero ops measured")
		}
		// The derived per-op fields must agree with the raw counters they
		// are derived from — a report whose flushes_per_op disagrees with
		// heap.flushes/ops was assembled by hand or by a buggy writer.
		if m.Ops > 0 {
			if want := float64(m.Heap.Flushes) / float64(m.Ops); m.FlushesPerOp != want {
				probs = append(probs, fmt.Sprintf("flushes_per_op %v disagrees with heap.flushes/ops = %v",
					m.FlushesPerOp, want))
			}
			if want := float64(m.Heap.Fences) / float64(m.Ops); m.FencesPerOp != want {
				probs = append(probs, fmt.Sprintf("fences_per_op %v disagrees with heap.fences/ops = %v",
					m.FencesPerOp, want))
			}
		}
		return probs, nil
	case obs.ExportSchema:
		return d.export.Validate(), nil
	case obs.TimelineSchema:
		return checkTimeline(d.timeline), nil
	case obs.ClusterTimelineSchema:
		return checkClusterTimeline(d.cluster), nil
	case procharness.ReportSchema:
		return checkProcs(d.procs), nil
	case procharness.TimelineSchema:
		return checkProcTimeline(d.procTL), nil
	case harness.SLOSchema:
		return checkSLO(d.slo), nil
	}
	if d.isBench {
		return checkBench(d.bench), nil
	}
	return nil, nil
}

// checkBench validates a flat benchmark Report: structural consistency
// for every figure, plus the figure's own headline acceptance rule.
func checkBench(r harness.Report) []string {
	var probs []string
	bad := func(format string, args ...any) {
		probs = append(probs, fmt.Sprintf(format, args...))
	}
	if len(r.Series) == 0 {
		bad("no series")
		return probs
	}
	// Every series must cover the same strictly-increasing thread axis
	// with positive measurements.
	axis := threadAxis(r.Series[0])
	for _, s := range r.Series {
		if len(s.Points) == 0 {
			bad("series %s: no points", s.Impl)
			continue
		}
		got := threadAxis(s)
		if fmt.Sprint(got) != fmt.Sprint(axis) {
			bad("series %s: thread axis %v disagrees with %s's %v", s.Impl, got, r.Series[0].Impl, axis)
		}
		for i, p := range s.Points {
			if i > 0 && p.Threads <= s.Points[i-1].Threads {
				bad("series %s: thread axis not strictly increasing at point %d", s.Impl, i)
			}
			if p.Mops <= 0 {
				bad("series %s @%d threads: nonpositive throughput %v", s.Impl, p.Threads, p.Mops)
			}
			if p.Ops == 0 {
				bad("series %s @%d threads: zero ops", s.Impl, p.Threads)
			}
		}
	}
	if len(r.Config.Threads) > 0 && fmt.Sprint(r.Config.Threads) != fmt.Sprint(axis) {
		bad("config threads %v disagree with measured axis %v", r.Config.Threads, axis)
	}
	// Figure-specific acceptance rules: the headline claim each committed
	// figure exists to pin.
	switch r.Figure {
	case "hmap":
		one, oneOK := lastPoint(r, "sharded-hmap/1")
		eight, eightOK := lastPoint(r, "sharded-hmap/8")
		if !oneOK || !eightOK {
			bad("hmap figure needs sharded-hmap/1 and sharded-hmap/8 series for its 1 -> 8 shard scaling rule")
		} else if one.Mops > 0 && eight.Mops/one.Mops <= 2 {
			bad("hmap scaling rule: sharded-hmap/8 at %d threads is %.3f Mops, only %.2fx sharded-hmap/1's %.3f (need >2x)",
				eight.Threads, eight.Mops, eight.Mops/one.Mops, one.Mops)
		}
	case "register":
		probs = append(probs, checkFenceReduction(r, "dss-register", "combined-register")...)
	case "combine":
		probs = append(probs, checkFenceReduction(r, "dss-detectable", "combined-dss")...)
	}
	return probs
}

// checkFenceReduction enforces the combining figures' claim: at the
// largest thread count the combined series spends at most a third of the
// baseline's fences per operation.
func checkFenceReduction(r harness.Report, base, combined string) []string {
	var probs []string
	b, bOK := lastPoint(r, base)
	c, cOK := lastPoint(r, combined)
	if !bOK || !cOK {
		return []string{fmt.Sprintf("%s figure needs %s and %s series for its fence amortization rule",
			r.Figure, base, combined)}
	}
	if b.Ops == 0 || c.Ops == 0 {
		return nil // already reported by the structural pass
	}
	bf := float64(b.Fences) / float64(b.Ops)
	cf := float64(c.Fences) / float64(c.Ops)
	if cf*3 > bf {
		probs = append(probs, fmt.Sprintf(
			"fence amortization rule: %s spends %.2f fences/op at %d threads vs %s's %.2f (need >=3x reduction)",
			combined, cf, c.Threads, base, bf))
	}
	return probs
}

func threadAxis(s harness.ReportSeries) []int {
	out := make([]int, 0, len(s.Points))
	for _, p := range s.Points {
		out = append(out, p.Threads)
	}
	return out
}

func lastPoint(r harness.Report, impl string) (harness.ReportPoint, bool) {
	for _, s := range r.Series {
		if s.Impl == impl && len(s.Points) > 0 {
			return s.Points[len(s.Points)-1], true
		}
	}
	return harness.ReportPoint{}, false
}

func checkTimeline(tl obs.RecoveryTimeline) []string {
	var probs []string
	if tl.Unit != "ns" && tl.Unit != "steps" && tl.Unit != "virtual_ns" {
		probs = append(probs, fmt.Sprintf("unknown unit %q", tl.Unit))
	}
	if got := uint64(len(tl.Cycles)); got != tl.Crashes {
		probs = append(probs, fmt.Sprintf("%d cycles recorded but %d crashes counted", got, tl.Crashes))
	}
	if tl.EventCounts[obs.EvCrash.String()] != tl.Crashes {
		probs = append(probs, fmt.Sprintf("event_counts says %d crashes, header says %d",
			tl.EventCounts[obs.EvCrash.String()], tl.Crashes))
	}
	if tl.EventCounts[obs.EvRecoverEnd.String()] != tl.Recoveries {
		probs = append(probs, fmt.Sprintf("event_counts says %d recoveries, header says %d",
			tl.EventCounts[obs.EvRecoverEnd.String()], tl.Recoveries))
	}
	if tl.Recoveries > tl.Crashes {
		probs = append(probs, fmt.Sprintf("%d recoveries exceed %d crashes", tl.Recoveries, tl.Crashes))
	}
	for i, c := range tl.Cycles {
		if c.RecoverEnd != 0 && c.RecoverEnd < c.Crash {
			probs = append(probs, fmt.Sprintf("cycle %d: recovery ended at %d, before its crash at %d", i, c.RecoverEnd, c.Crash))
		}
	}
	return probs
}

func checkClusterTimeline(tl obs.ClusterTimeline) []string {
	var probs []string
	if tl.Unit != "ns" && tl.Unit != "steps" && tl.Unit != "virtual_ns" {
		probs = append(probs, fmt.Sprintf("unknown unit %q", tl.Unit))
	}
	if tl.Servers < 1 {
		probs = append(probs, fmt.Sprintf("%d servers", tl.Servers))
	}
	if len(tl.Lanes) != tl.Servers {
		probs = append(probs, fmt.Sprintf("%d lanes for %d servers", len(tl.Lanes), tl.Servers))
	}
	var laneCrashes, laneRecoveries uint64
	for _, lane := range tl.Lanes {
		laneCrashes += lane.Crashes
		laneRecoveries += lane.Recoveries
		if got := uint64(len(lane.Cycles)); got != lane.Crashes {
			probs = append(probs, fmt.Sprintf("server %d: %d cycles recorded but %d crashes counted",
				lane.Server, got, lane.Crashes))
		}
		for i, c := range lane.Cycles {
			if c.RecoverEnd != 0 && c.RecoverEnd < c.Crash {
				probs = append(probs, fmt.Sprintf("server %d cycle %d: recovery ended at %d, before its crash at %d",
					lane.Server, i, c.RecoverEnd, c.Crash))
			}
		}
	}
	if laneCrashes != tl.Crashes {
		probs = append(probs, fmt.Sprintf("lanes total %d crashes, header says %d", laneCrashes, tl.Crashes))
	}
	if laneRecoveries != tl.Recoveries {
		probs = append(probs, fmt.Sprintf("lanes total %d recoveries, header says %d", laneRecoveries, tl.Recoveries))
	}
	if tl.EventCounts[obs.EvCrash.String()] != tl.Crashes {
		probs = append(probs, fmt.Sprintf("event_counts says %d crashes, header says %d",
			tl.EventCounts[obs.EvCrash.String()], tl.Crashes))
	}
	if tl.EventCounts[obs.EvRecoverEnd.String()] != tl.Recoveries {
		probs = append(probs, fmt.Sprintf("event_counts says %d recoveries, header says %d",
			tl.EventCounts[obs.EvRecoverEnd.String()], tl.Recoveries))
	}
	if tl.Recoveries > tl.Crashes {
		probs = append(probs, fmt.Sprintf("%d recoveries exceed %d crashes", tl.Recoveries, tl.Crashes))
	}
	if tl.Crashes > 0 && (tl.MaxConcurrentDown < 1 || tl.MaxConcurrentDown > tl.Servers) {
		probs = append(probs, fmt.Sprintf("max_concurrent_down %d out of range [1, %d]",
			tl.MaxConcurrentDown, tl.Servers))
	}
	if uint64(tl.AllDownWindows) > tl.Crashes {
		probs = append(probs, fmt.Sprintf("%d all-down windows exceed %d crashes", tl.AllDownWindows, tl.Crashes))
	}
	if tl.CrashesDuringRecovery > tl.Crashes {
		probs = append(probs, fmt.Sprintf("%d crashes during recovery exceed %d crashes total",
			tl.CrashesDuringRecovery, tl.Crashes))
	}
	return probs
}

func diffFiles(oldPath, newPath string) error {
	a, err := load(oldPath)
	if err != nil {
		return err
	}
	b, err := load(newPath)
	if err != nil {
		return err
	}
	// Diffing across schemas would silently compare unrelated fields
	// (e.g. a metrics report against an slo figure, both of which carry
	// phase tables) — fail loudly with both names instead.
	if a.schema != b.schema {
		return fmt.Errorf("schema mismatch: %s is %q, %s is %q — -diff compares documents of one schema",
			oldPath, a.schema, newPath, b.schema)
	}
	switch a.schema {
	case obs.TimelineSchema, obs.ClusterTimelineSchema:
		return fmt.Errorf("-diff compares metrics/obs/slo documents, not timelines")
	case harness.SLOSchema:
		diffSLO(a.slo, b.slo)
		return nil
	case harness.MetricsSchema:
		fmt.Printf("mops: %.3f -> %.3f (%+.1f%%)\n", a.metrics.Mops, b.metrics.Mops,
			pct(a.metrics.Mops, b.metrics.Mops))
		fmt.Printf("ops:  %d -> %d\n", a.metrics.Ops, b.metrics.Ops)
	}
	diffCounters(a.export.Counters, b.export.Counters)
	diffPhases(a.export, b.export)
	return nil
}

// diffSLO prints per-phase count and tail-latency deltas between two
// dss-slo/1 figures, then the recovery-accounting deltas.
func diffSLO(a, b harness.SLOReport) {
	type key struct{ phase, kind string }
	am := map[key]obs.PhaseSLO{}
	for _, p := range a.Phases {
		am[key{p.Phase, p.Kind}] = p
	}
	printed := false
	for _, pb := range b.Phases {
		pa := am[key{pb.Phase, pb.Kind}]
		if pa == pb {
			continue
		}
		if !printed {
			fmt.Printf("%-10s %-8s %12s %16s %14s\n", "phase", "kind", "count Δ", "p50", "p99")
			printed = true
		}
		fmt.Printf("%-10s %-8s %+12d %7.1f->%-7.1f %6.1f->%-6.1f\n",
			pb.Phase, pb.Kind, int64(pb.Count)-int64(pa.Count), pa.P50, pb.P50, pa.P99, pb.P99)
	}
	ra, rb := a.Recovery, b.Recovery
	if ra != rb {
		fmt.Printf("recovery: crashes %d->%d, outage p99 %.1f->%.1f, total down %d->%d\n",
			ra.Crashes, rb.Crashes, ra.OutageP99, rb.OutageP99, ra.TotalDownNS, rb.TotalDownNS)
	}
}

func pct(a, b float64) float64 {
	if a == 0 {
		return 0
	}
	return (b - a) / a * 100
}

func diffCounters(a, b map[string]uint64) {
	names := map[string]bool{}
	for k := range a {
		names[k] = true
	}
	for k := range b {
		names[k] = true
	}
	keys := make([]string, 0, len(names))
	for k := range names {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	printed := false
	for _, k := range keys {
		if a[k] == b[k] {
			continue
		}
		if !printed {
			fmt.Println("counters:")
			printed = true
		}
		fmt.Printf("  %-20s %12d -> %-12d (%+d)\n", k, a[k], b[k], int64(b[k])-int64(a[k]))
	}
}

func diffPhases(a, b obs.Export) {
	type key struct{ phase, kind string }
	am := map[key]obs.PhaseExport{}
	for _, p := range a.Phases {
		am[key{p.Phase, p.Kind}] = p
	}
	bm := map[key]obs.PhaseExport{}
	var order []key
	for _, p := range b.Phases {
		bm[key{p.Phase, p.Kind}] = p
		order = append(order, key{p.Phase, p.Kind})
	}
	for _, p := range a.Phases {
		k := key{p.Phase, p.Kind}
		if _, ok := bm[k]; !ok {
			order = append(order, k)
		}
	}
	printed := false
	for _, k := range order {
		pa, pb := am[k], bm[k]
		if pa.Count == pb.Count && pa.Sum == pb.Sum {
			continue
		}
		if !printed {
			fmt.Printf("%-10s %-8s %12s %16s %14s\n", "phase", "kind", "count Δ", "mean", "p99")
			printed = true
		}
		fmt.Printf("%-10s %-8s %+12d %7.1f->%-7.1f %6.1f->%-6.1f\n",
			k.phase, k.kind, int64(pb.Count)-int64(pa.Count), pa.Mean, pb.Mean, pa.P99, pb.P99)
	}
}

// showProcs renders a multi-process storm report.
func showProcs(r procharness.StormReport) {
	fmt.Println(r)
	fmt.Printf("processes: %d servers x (1 + %d clients) + drains; shards/server=%d, ring slots=%d\n",
		r.Servers, r.ClientsPerServer, r.ShardsPerServer, r.RingSlots)
	fmt.Printf("kills: %d total", r.Kills)
	for s, k := range r.KillsPerServer {
		fmt.Printf("  server%d=%d", s, k)
	}
	fmt.Printf("\n       %d during recovery, %d blackouts, %d by the hang detector\n",
		r.KillsDuringRecovery, r.Blackouts, r.WedgeKills)
	fmt.Printf("heap:  %d dirty attaches, final generations %s, %d clean shutdowns\n",
		r.DirtyAttaches, fmtProcGens(r.FinalGenerations), r.CleanShutdowns)
	for _, v := range r.Violations {
		fmt.Printf("VIOLATION: %s\n", v)
	}
}

func fmtProcGens(gens []uint64) string {
	out := "["
	for i, g := range gens {
		if i > 0 {
			out += ","
		}
		out += fmt.Sprintf("%d", g)
	}
	return out + "]"
}

// showProcTimeline renders the wall-clock side record of a process
// storm.
func showProcTimeline(sd procharness.StormSide) {
	fmt.Printf("wall %d ms, %d events\n", sd.WallMS, len(sd.Events))
	fmt.Printf("client retry totals: %d attempts, %d retries, %d resolves, %d timeouts, %d downs, %d gen changes, %d hangs\n",
		sd.Attempts, sd.Retries, sd.Resolves, sd.Timeouts, sd.Downs, sd.GenChanges, sd.Hangs)
	counts := map[string]int{}
	for _, e := range sd.Events {
		counts[e.Kind]++
	}
	kinds := make([]string, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	fmt.Print("events:")
	for _, k := range kinds {
		fmt.Printf(" %s=%d", k, counts[k])
	}
	fmt.Println()
}

// checkProcs re-derives the structural invariants a passing
// multi-process storm must satisfy: the kill breakdown sums, every kill
// left a dirty attach, every restart advanced its server's generation
// line by exactly one, and conservation closed.
func checkProcs(r procharness.StormReport) []string {
	var probs []string
	bad := func(format string, args ...any) {
		probs = append(probs, fmt.Sprintf(format, args...))
	}
	if len(r.KillsPerServer) != r.Servers || len(r.FinalGenerations) != r.Servers {
		bad("per-server arrays sized %d/%d for %d servers",
			len(r.KillsPerServer), len(r.FinalGenerations), r.Servers)
		return probs
	}
	sum := 0
	for _, k := range r.KillsPerServer {
		sum += k
	}
	if sum != r.Kills {
		bad("kills_per_server sums to %d, kills says %d", sum, r.Kills)
	}
	if r.KillsDuringRecovery+r.WedgeKills > r.Kills {
		bad("breakdown (%d recovery + %d wedge) exceeds %d kills total",
			r.KillsDuringRecovery, r.WedgeKills, r.Kills)
	}
	if r.DirtyAttaches != r.Kills {
		bad("%d dirty attaches for %d kills — a kill that left no dirty marker (or vice versa)",
			r.DirtyAttaches, r.Kills)
	}
	for s, g := range r.FinalGenerations {
		if want := uint64(1 + r.KillsPerServer[s]); g != want {
			bad("server %d: final generation %d, want %d (1 + %d kills)", s, g, want, r.KillsPerServer[s])
		}
	}
	if r.Clients != r.Servers*r.ClientsPerServer {
		bad("%d clients for %d servers x %d", r.Clients, r.Servers, r.ClientsPerServer)
	}
	if want := uint64(r.Clients * r.OpsPerClient); r.Ops != want {
		bad("%d workload ops, want %d (%d clients x %d)", r.Ops, want, r.Clients, r.OpsPerClient)
	}
	if want := r.Clients * r.OpsPerClient / 2; r.ValuesEnqueued != want {
		bad("%d values enqueued, workload defines %d", r.ValuesEnqueued, want)
	}
	if r.ValuesDequeued != r.ValuesEnqueued {
		bad("%d values dequeued but %d enqueued — conservation did not close",
			r.ValuesDequeued, r.ValuesEnqueued)
	}
	if r.CleanShutdowns != r.Servers {
		bad("%d of %d servers shut down cleanly", r.CleanShutdowns, r.Servers)
	}
	for _, v := range r.Violations {
		bad("violation: %s", v)
	}
	return probs
}

// checkProcTimeline sanity-checks the side record: every event kind is
// known and the kill events match the retry evidence (a storm with
// kills but no client-observed generation change never really exercised
// the clients).
func checkProcTimeline(sd procharness.StormSide) []string {
	var probs []string
	known := map[string]bool{
		"spawn": true, "serving": true, "recovering": true, "kill": true,
		"kill-recovery": true, "wedge": true, "wedge-kill": true,
		"blackout": true, "drain": true, "term": true,
		// Supervisor-side SLO verdict transitions (obs.Health names).
		"slo-healthy": true, "slo-recovering": true, "slo-violating": true,
		"slo-stalled": true, "slo-down": true, "slo-stopped": true,
	}
	kills := 0
	for i, e := range sd.Events {
		if !known[e.Kind] {
			probs = append(probs, fmt.Sprintf("event %d: unknown kind %q", i, e.Kind))
		}
		switch e.Kind {
		case "kill", "kill-recovery", "wedge-kill":
			kills++
		}
	}
	if kills > 0 && sd.GenChanges == 0 {
		probs = append(probs, fmt.Sprintf("%d kills in the timeline but no client observed a generation change", kills))
	}
	return probs
}

// checkSLO validates a dss-slo/1 figure: structural consistency, monotone
// interpolated quantiles on every phase row with STRICT increase for the
// exec phase (the figure exists to prove log-linear interpolation keeps
// tail quantiles distinct — the raw log₂ bucket bound would collapse p99
// and p999 to one power of two), and recovery accounting that closes.
func checkSLO(r harness.SLOReport) []string {
	var probs []string
	bad := func(format string, args ...any) {
		probs = append(probs, fmt.Sprintf(format, args...))
	}
	switch r.Unit {
	case "ns", "steps", "virtual_ns":
	default:
		bad("unknown unit %q", r.Unit)
	}
	if len(r.Phases) == 0 {
		bad("no phase rows")
	}
	sawExec := false
	for _, p := range r.Phases {
		if p.Count == 0 {
			bad("phase %s/%s: zero count", p.Phase, p.Kind)
		}
		if p.P50 > p.P99 || p.P99 > p.P999 {
			bad("phase %s/%s: quantiles not monotone (p50 %.1f, p99 %.1f, p999 %.1f)",
				p.Phase, p.Kind, p.P50, p.P99, p.P999)
		}
		if p.Phase == "exec" {
			sawExec = true
			if !(p.P50 < p.P99 && p.P99 < p.P999) {
				bad("phase exec/%s: quantiles not strictly increasing (p50 %v, p99 %v, p999 %v) — interpolation collapsed",
					p.Kind, p.P50, p.P99, p.P999)
			}
		}
	}
	if !sawExec {
		bad("no exec-phase row")
	}
	rec := r.Recovery
	if rec.Recoveries > rec.Crashes {
		bad("%d recoveries exceed %d crashes", rec.Recoveries, rec.Crashes)
	}
	if rec.MaxOutageNS > rec.TotalDownNS {
		bad("max outage %d exceeds total down time %d", rec.MaxOutageNS, rec.TotalDownNS)
	}
	if rec.OutageP50 > rec.OutageP99 || rec.OutageP99 > rec.OutageP999 {
		bad("outage quantiles not monotone (p50 %.1f, p99 %.1f, p999 %.1f)",
			rec.OutageP50, rec.OutageP99, rec.OutageP999)
	}
	if rec.Crashes > 0 && rec.GenChanges == 0 {
		bad("%d crashes but no client observed a generation change", rec.Crashes)
	}
	return probs
}
