// Command crashsweep exhaustively verifies the DSS queue's detectability
// guarantee (Theorem 1): it injects a simulated system-wide crash at every
// primitive memory step of a detectable workload, under every dirty-line
// adversary, recovers, and checks the complete history — including the
// post-crash resolve — against the formal D⟨queue⟩ specification under
// strict linearizability.
//
// Usage:
//
//	crashsweep -pairs 2 -seed 42
//	crashsweep -impl fast-caswitheffect
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/harness"
)

func main() {
	pairs := flag.Int("pairs", 2, "detectable enqueue/dequeue pairs in the swept workload")
	seed := flag.Int64("seed", 1, "seed for the random dirty-line adversaries")
	impl := flag.String("impl", string(harness.DSSDetectable),
		"queue to sweep: dss-detectable, fast-caswitheffect, or general-caswitheffect")
	flag.Parse()

	report := harness.CrashSweepImpl(harness.Impl(*impl), harness.CrashSweepConfig{
		Pairs: *pairs,
		Seed:  *seed,
	})
	fmt.Println(report)
	if !report.OK() {
		for _, f := range report.Failures {
			fmt.Fprintln(os.Stderr, f)
		}
		os.Exit(1)
	}
}
