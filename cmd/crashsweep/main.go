// Command crashsweep exhaustively verifies the DSS queue's detectability
// guarantee (Theorem 1): it injects a simulated system-wide crash at every
// primitive memory step of a detectable workload, under every dirty-line
// adversary, recovers, and checks the complete history — including the
// post-crash resolve — against the formal D⟨queue⟩ specification under
// strict linearizability.
//
// Usage:
//
//	crashsweep -pairs 2 -seed 42
//	crashsweep -impl fast-caswitheffect
//	crashsweep -impl combined-dss
//	crashsweep -bias 0.1,0.9
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/harness"
)

// parseBiases splits a comma-separated list of survival probabilities.
func parseBiases(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	var out []float64
	for _, f := range strings.Split(s, ",") {
		p, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, fmt.Errorf("bad bias %q: %v", f, err)
		}
		if p < 0 || p > 1 {
			return nil, fmt.Errorf("bias %v outside [0,1]", p)
		}
		out = append(out, p)
	}
	return out, nil
}

func main() {
	pairs := flag.Int("pairs", 2, "detectable enqueue/dequeue pairs in the swept workload")
	seed := flag.Int64("seed", 1, "seed for the random dirty-line adversaries")
	impl := flag.String("impl", string(harness.DSSDetectable),
		"object to sweep: dss-detectable, dss-stack, sharded-dss, sharded-stack, combined-dss, sharded+combined, fast-caswitheffect, or general-caswitheffect")
	bias := flag.String("bias", "",
		"comma-separated per-line survival probabilities; each adds a BiasedFates adversary to the suite")
	flag.Parse()

	biases, err := parseBiases(*bias)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	report := harness.CrashSweepImpl(harness.Impl(*impl), harness.CrashSweepConfig{
		Pairs:  *pairs,
		Seed:   *seed,
		Biases: biases,
	})
	fmt.Println(report)
	if !report.OK() {
		for _, f := range report.Failures {
			fmt.Fprintln(os.Stderr, f)
		}
		os.Exit(1)
	}
}
