// Command dssproc runs the multi-process crash storm: real OS
// processes — one supervisor, N servers each owning an mmap'd heap
// file, and client processes driving them over shared-memory rings —
// with SIGKILL as the crash adversary. The supervisor delivers a seeded
// schedule of kills (including kills landed inside recovery windows),
// whole-cluster blackouts, and wedge injections caught by the heartbeat
// hang detector; restarted servers re-attach to the same heap file and
// recover, and the clients ride every outage with the production
// resolve-before-retry discipline. Afterwards each structure is drained
// to EMPTY and the merged client-observed history is checked for
// exactly-once execution and FIFO/LIFO order.
//
// The report contains only seed-derived counts (kills, dirty attaches,
// generations, conservation totals) — no wall-clock measurements — so a
// passing run is byte-identical across repeats and machines, and
// BENCH_procs.json is committed and diffable. -timeline writes the
// wall-clock side record (supervisor event log + client retry
// aggregates), which is never compared.
//
// Usage:
//
//	dssproc -seed 1                      # the committed configuration
//	dssproc -seed 1 -repeat 2            # prove report determinism
//	dssproc -servers 2 -clients 4 -ops 150 -kills 10 -rkills 2 -blackouts 1 -wedges 2
//	dssproc -probe                       # exit 0 iff this platform can run storms
//
// Exit status: 0 on a passing storm, 1 on violations or a storm error,
// 3 from -probe on a platform without shared-memory segment support.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/procharness"
	"repro/internal/shm"
)

func marshal(v any) []byte {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return append(b, '\n')
}

func main() {
	// If the supervisor exec'd this binary as a server or client role,
	// take it over before flag parsing.
	procharness.MaybeRole()

	seed := flag.Int64("seed", 1, "seed for the fault schedule and client retry jitter")
	object := flag.String("object", "queue", "detectable object the servers host: queue or stack")
	servers := flag.Int("servers", 2, "server processes, each with its own heap file and segment")
	clients := flag.Int("clients", 4, "workload client processes per server")
	ops := flag.Int("ops", 150, "operations per client (alternating insert/remove, even)")
	kills := flag.Int("kills", 10, "direct SIGKILLs per server")
	rkills := flag.Int("rkills", 2, "kill-during-recovery sequences per server (two kills each)")
	blackouts := flag.Int("blackouts", 1, "whole-cluster outages (every server killed at once)")
	wedges := flag.Int("wedges", 2, "hang injections caught by the heartbeat detector")
	slots := flag.Int("slots", 128, "ring slots per direction per client")
	holdMS := flag.Int("hold-ms", 400, "recovery-window hold (ms) for kill-during-recovery restarts")
	sloMS := flag.Int("slo-ms", 250, "recovery-duration SLO (ms) the supervisor's trackers record slo-* verdict transitions against")
	dir := flag.String("dir", "", "working directory, kept afterwards (default: temp, removed)")
	jsonPath := flag.String("json", "", "also write the JSON report to this file")
	timelinePath := flag.String("timeline", "", "write the wall-clock side record (events + retry totals) to this file")
	repeat := flag.Int("repeat", 1, "run this many times and fail unless all reports are byte-identical")
	probe := flag.Bool("probe", false, "report platform support: exit 0 if storms can run here, 3 otherwise")
	flag.Parse()

	if *probe {
		if shm.Supported() {
			os.Exit(0)
		}
		fmt.Fprintln(os.Stderr, "dssproc: shared-memory segments unsupported on this platform")
		os.Exit(3)
	}

	base := procharness.StormConfig{
		Seed:                   *seed,
		Object:                 *object,
		Servers:                *servers,
		ClientsPerServer:       *clients,
		OpsPerClient:           *ops,
		KillsPerServer:         *kills,
		RecoveryKillsPerServer: *rkills,
		Blackouts:              *blackouts,
		Wedges:                 *wedges,
		RingSlots:              *slots,
		RecoveryHoldMS:         *holdMS,
		RecoverySLOMS:          *sloMS,
	}

	var first []byte
	var rep procharness.StormReport
	var side procharness.StormSide
	for i := 0; i < *repeat; i++ {
		cfg := base
		if *dir != "" {
			// Each repeat needs a virgin heap: reuse of run 1's files would
			// turn run 2's first attach dirty and skew every count.
			cfg.Dir = *dir
			if *repeat > 1 {
				cfg.Dir = fmt.Sprintf("%s.run%d", *dir, i+1)
			}
			cfg.KeepDir = true
		}
		r, sd, err := procharness.RunStorm(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		b := marshal(r)
		if i == 0 {
			first, rep, side = b, r, sd
		} else if !bytes.Equal(b, first) {
			fmt.Fprintf(os.Stderr, "dssproc: run %d report diverged from run 1 — the storm counts are not deterministic\n", i+1)
			os.Exit(1)
		}
	}

	os.Stdout.Write(first)
	fmt.Println(rep)
	if *jsonPath != "" {
		if err := os.WriteFile(*jsonPath, first, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *timelinePath != "" {
		if err := os.WriteFile(*timelinePath, marshal(side), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if !rep.OK() {
		for _, v := range rep.Violations {
			fmt.Fprintln(os.Stderr, v)
		}
		os.Exit(1)
	}

	// Every scheduled fault must actually have fired, in its scheduled
	// shape — a storm that quietly under-delivered proves nothing.
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "dssproc: "+format+"\n", args...)
		os.Exit(1)
	}
	switch {
	case rep.Kills != base.ExpectedKills():
		fail("%d kills delivered, schedule owed %d", rep.Kills, base.ExpectedKills())
	case rep.KillsDuringRecovery != *servers**rkills:
		fail("%d kills landed during recovery, schedule owed %d", rep.KillsDuringRecovery, *servers**rkills)
	case rep.Blackouts != *blackouts || rep.WedgeKills != *wedges:
		fail("blackouts/wedges %d/%d fired, schedule owed %d/%d",
			rep.Blackouts, rep.WedgeKills, *blackouts, *wedges)
	case rep.CleanShutdowns != *servers:
		fail("only %d of %d servers shut down cleanly", rep.CleanShutdowns, *servers)
	case rep.ValuesEnqueued != *servers**clients**ops/2:
		fail("%d values enqueued, workload defines %d", rep.ValuesEnqueued, *servers**clients**ops/2)
	}
}
