// Command dssbench regenerates the paper's evaluation figures (Section 4,
// Figure 5) on the simulated persistent-memory heap.
//
// Usage:
//
//	dssbench -figure 5a -threads 1,2,4,8,12,16,20 -duration 500ms
//	dssbench -figure 5b -csv > fig5b.csv
//	dssbench -figure 5a -json BENCH_fig5a.json
//	dssbench -figure sharded -shards 2,4,8 -pairs 200 -json BENCH_sharded.json
//	dssbench -figure sharded -object stack -json BENCH_sharded_stack.json
//	dssbench -figure combine -json BENCH_combine.json
//	dssbench -impls ms-queue,dss-detectable -duration 1s
//
// Each series prints millions of operations per second (enqueues plus
// dequeues), following the paper's workload: a queue seeded with 16
// nodes, every thread running alternating enqueue/dequeue pairs. With
// -json, a machine-readable harness.Report is also written to the given
// path, forming the benchmark trajectory future revisions regress against.
//
// -metrics PATH additionally instruments the figure's largest point with
// the observability layer (internal/obs) and writes a dss-metrics/1
// report: per-phase latency histograms, op counters, per-shard counters,
// and heap primitive-op deltas. For -figure sharded the instrumented run
// is virtual and the report is deterministic (committable as
// BENCH_metrics.json); for wall-clock figures it instruments the last
// series at the largest thread count.
//
// -figure sharded measures the sharded composition against the
// dss-detectable baseline in deterministic virtual time (internal/vtime)
// rather than wall clock: each point runs a fixed -pairs workload per
// thread and reports ops divided by the simulated makespan, so the
// committed numbers are host-independent. -duration, -repeats and -flush
// do not apply there; the virtual cost model is the vtime calibration
// (100 ns accesses, 300 ns persists).
//
// -slo PATH runs the observed crash-storm soak (the committed
// BENCH_soak.json configuration) and writes the dss-slo/1 streaming-
// percentile figure: per-phase interpolated p50/p99/p999 on the DES
// virtual clock plus crash/recovery outage accounting. Deterministic
// for a fixed -slo-seed, so BENCH_slo.json is committed and CI
// byte-compares regeneration.
//
// -figure combine measures the flat-combining publication layer
// (internal/combine) against the dss-detectable baseline, also in
// virtual time. The payload is the fences column: combining batches the
// persists of every operation a combiner pass collects under a single
// SFENCE drain, so fences/op falls as batches widen with the thread
// count (the committed BENCH_combine.json pins a >=3x reduction at 20
// threads). With -metrics the instrumented point is combined-dss at the
// largest thread count.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/harness"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "dssbench: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	figure := flag.String("figure", "5a", "figure to regenerate: 5a, 5b, sharded, combine, or custom (with -impls)")
	implList := flag.String("impls", "", "comma-separated implementations (overrides -figure)")
	threadList := flag.String("threads", "1,2,4,8,12,16,20", "comma-separated thread counts")
	duration := flag.Duration("duration", 300*time.Millisecond, "measurement duration per point (paper: 30s)")
	repeats := flag.Int("repeats", 1, "runs averaged per point (paper: 10)")
	flush := flag.Duration("flush", 200*time.Nanosecond, "simulated CLWB+SFENCE latency")
	csv := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	jsonPath := flag.String("json", "", "also write a machine-readable report to this path (e.g. BENCH_fig5a.json)")
	shardList := flag.String("shards", "2,4,8", "comma-separated shard counts (-figure sharded only)")
	pairs := flag.Int("pairs", 200, "insert/remove pairs per thread (-figure sharded only)")
	object := flag.String("object", "queue", "detectable type the sharded figure measures: queue or stack (-figure sharded only)")
	keys := flag.Int("keys", 64, "key-space size of the hmap workload (-figure hmap only)")
	metricsPath := flag.String("metrics", "", "write an instrumented dss-metrics/1 report for the figure's largest point to this path")
	sloPath := flag.String("slo", "", "write the deterministic dss-slo/1 streaming-percentile figure to this path and exit (committable as BENCH_slo.json)")
	sloSeed := flag.Int64("slo-seed", 1, "soak seed of the -slo figure (1 matches the committed BENCH_soak.json configuration)")
	flag.Parse()

	if *sloPath != "" {
		// The SLO figure stands alone: one observed crash-storm soak in the
		// committed BENCH_soak.json configuration, distilled into per-phase
		// interpolated percentiles and recovery accounting on the DES
		// virtual clock. Deterministic, so the output is committable.
		fmt.Fprintf(os.Stderr, "dss-slo/1 figure: observed crash-storm soak, seed %d\n", *sloSeed)
		rep, err := harness.RunSLO(harness.SoakConfig{Seed: *sloSeed})
		if err != nil {
			return err
		}
		fmt.Print(rep.FormatTable())
		out, err := rep.FormatJSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*sloPath, []byte(out), 0o644); err != nil {
			return fmt.Errorf("write %s: %w", *sloPath, err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *sloPath)
		return nil
	}

	threads, err := parseInts(*threadList)
	if err != nil {
		return fmt.Errorf("bad -threads: %w", err)
	}

	if *figure == "sharded" && *implList == "" {
		shards, err := parseInts(*shardList)
		if err != nil {
			return fmt.Errorf("bad -shards: %w", err)
		}
		// The sharded figure runs in virtual time with the vtime
		// calibration (100 ns accesses, 300 ns persists); -flush,
		// -duration and -repeats configure wall-clock sweeps only.
		scfg := harness.ShardedSweepConfig{
			Object:         *object,
			Threads:        threads,
			ShardCounts:    shards,
			PairsPerThread: *pairs,
		}
		fmt.Fprintf(os.Stderr, "virtual-time %s shard sweep: %d shard counts x %d thread counts, %d pairs/thread\n",
			*object, len(shards), len(threads), *pairs)
		series, err := harness.FigureSharded(scfg)
		if err != nil {
			return err
		}
		if *csv {
			fmt.Print(harness.FormatCSV(series))
		} else {
			fmt.Print(harness.FormatTable(series))
		}
		if *jsonPath != "" {
			out, err := json.MarshalIndent(harness.BuildShardedReport(scfg, series), "", "  ")
			if err != nil {
				return fmt.Errorf("marshal report: %w", err)
			}
			if err := os.WriteFile(*jsonPath, append(out, '\n'), 0o644); err != nil {
				return fmt.Errorf("write %s: %w", *jsonPath, err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonPath)
		}
		if *metricsPath != "" {
			// Instrument the figure's largest point. The run is virtual, so
			// the written report is deterministic and committable.
			impl := harness.ShardedDSS
			if *object == "stack" {
				impl = harness.ShardedStack
			}
			rep, err := harness.RunVirtualMetrics(harness.VirtualRunConfig{
				Impl:           impl,
				Threads:        maxInt(threads),
				Shards:         maxInt(shards),
				PairsPerThread: *pairs,
			})
			if err != nil {
				return err
			}
			if err := writeMetrics(*metricsPath, rep); err != nil {
				return err
			}
		}
		return nil
	}
	if (*figure == "register" || *figure == "hmap") && *implList == "" {
		// The keyed figures also run in virtual time: the register against
		// the combining front over it (a single cell cannot shard), and
		// the hash map against its key-hash-routed sharded compositions.
		shards, err := parseInts(*shardList)
		if err != nil {
			return fmt.Errorf("bad -shards: %w", err)
		}
		kcfg := harness.KeyedSweepConfig{
			Object:       *figure,
			Threads:      threads,
			ShardCounts:  shards,
			OpsPerThread: *pairs,
			Keys:         *keys,
		}
		if *threadList == "1,2,4,8,12,16,20" {
			kcfg.Threads = nil // flag untouched: take the keyed default (up to 32)
		}
		if *shardList == "2,4,8" {
			kcfg.ShardCounts = nil // flag untouched: include the single-shard baseline
		}
		fmt.Fprintf(os.Stderr, "virtual-time %s sweep: %d thread counts, %d ops/thread\n",
			*figure, len(threads), *pairs)
		series, err := harness.FigureKeyed(kcfg)
		if err != nil {
			return err
		}
		if *csv {
			fmt.Print(harness.FormatCSV(series))
		} else {
			fmt.Print(harness.FormatTable(series))
		}
		if *jsonPath != "" {
			out, err := json.MarshalIndent(harness.BuildKeyedReport(kcfg, series), "", "  ")
			if err != nil {
				return fmt.Errorf("marshal report: %w", err)
			}
			if err := os.WriteFile(*jsonPath, append(out, '\n'), 0o644); err != nil {
				return fmt.Errorf("write %s: %w", *jsonPath, err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonPath)
		}
		return nil
	}
	if *figure == "combine" && *implList == "" {
		// The combine figure also runs in virtual time: the detectable
		// baseline against the flat-combining front and its sharded
		// composition, with the fences column as the payload.
		shards, err := parseInts(*shardList)
		if err != nil {
			return fmt.Errorf("bad -shards: %w", err)
		}
		ccfg := harness.CombineSweepConfig{
			Threads:        threads,
			Shards:         maxInt(shards),
			PairsPerThread: *pairs,
		}
		if *shardList == "2,4,8" {
			ccfg.Shards = 0 // flag untouched: take the figure's default
		}
		fmt.Fprintf(os.Stderr, "virtual-time combine sweep: %d thread counts, %d pairs/thread\n",
			len(threads), *pairs)
		series, err := harness.FigureCombine(ccfg)
		if err != nil {
			return err
		}
		if *csv {
			fmt.Print(harness.FormatCSV(series))
		} else {
			fmt.Print(harness.FormatTable(series))
		}
		if *jsonPath != "" {
			out, err := json.MarshalIndent(harness.BuildCombineReport(ccfg, series), "", "  ")
			if err != nil {
				return fmt.Errorf("marshal report: %w", err)
			}
			if err := os.WriteFile(*jsonPath, append(out, '\n'), 0o644); err != nil {
				return fmt.Errorf("write %s: %w", *jsonPath, err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonPath)
		}
		if *metricsPath != "" {
			rep, err := harness.RunVirtualMetrics(harness.VirtualRunConfig{
				Impl:           harness.CombinedDSS,
				Threads:        maxInt(threads),
				PairsPerThread: *pairs,
			})
			if err != nil {
				return err
			}
			if err := writeMetrics(*metricsPath, rep); err != nil {
				return err
			}
		}
		return nil
	}
	cfg := harness.SweepConfig{
		Threads:      threads,
		Duration:     *duration,
		Repeats:      *repeats,
		FlushLatency: *flush,
	}

	var impls []harness.Impl
	switch {
	case *implList != "":
		for _, s := range strings.Split(*implList, ",") {
			impls = append(impls, harness.Impl(strings.TrimSpace(s)))
		}
	case *figure == "5a":
		impls = harness.Impls5a()
	case *figure == "5b":
		impls = harness.Impls5b()
	default:
		return fmt.Errorf("unknown figure %q (use 5a, 5b, sharded, combine, or -impls)", *figure)
	}

	fmt.Fprintf(os.Stderr, "sweeping %d series x %d thread counts, %v per point (flush latency %v)\n",
		len(impls), len(threads), *duration, *flush)
	series, err := harness.Sweep(impls, cfg)
	if err != nil {
		return err
	}
	if *csv {
		fmt.Print(harness.FormatCSV(series))
	} else {
		fmt.Print(harness.FormatTable(series))
	}
	if *jsonPath != "" {
		out, err := harness.FormatJSON("fig"+*figure, cfg, series)
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, []byte(out), 0o644); err != nil {
			return fmt.Errorf("write %s: %w", *jsonPath, err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonPath)
	}
	if *metricsPath != "" {
		// Instrument the sweep's last series at its largest thread count.
		// Wall-clock numbers vary run to run; the phase split is the
		// signal, so this report is informative but not committable.
		rep, err := harness.RunWallMetrics(harness.RunConfig{
			Impl:         impls[len(impls)-1],
			Threads:      maxInt(threads),
			Duration:     *duration,
			FlushLatency: *flush,
		})
		if err != nil {
			return err
		}
		if err := writeMetrics(*metricsPath, rep); err != nil {
			return err
		}
	}
	return nil
}

func writeMetrics(path string, rep harness.MetricsReport) error {
	out, err := rep.FormatJSON()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
		return fmt.Errorf("write %s: %w", path, err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	return nil
}

func maxInt(xs []int) int {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		if n < 1 {
			return nil, fmt.Errorf("thread count %d out of range", n)
		}
		out = append(out, n)
	}
	return out, nil
}
