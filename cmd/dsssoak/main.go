// Command dsssoak runs the deterministic crash-storm soak: concurrent
// retrying clients drive a message-passing DSS object server (queue by
// default, stack with -object stack) through a lossy, duplicating,
// delaying network while the server crashes and recovers under rotating
// dirty-line adversaries. The full client-observed history is verified
// for exactly-once execution and the object's sequential invariants, and
// the run's counters are emitted as a JSON report that is bit-identical
// for a given seed.
//
// Usage:
//
//	dsssoak -seed 1 -clients 8 -ops 50 -crashes 40
//	dsssoak -seed 1 -json BENCH_soak.json
//	dsssoak -seed 1 -object stack
//	dsssoak -seed 1 -repeat 3        # prove determinism: byte-compare runs
//
// Exit status is nonzero if any violation is found, if the crash target
// is badly missed, or if -repeat runs diverge.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/harness"
)

func marshal(rep harness.SoakReport) ([]byte, error) {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

func main() {
	seed := flag.Int64("seed", 1, "seed for the entire run (network, crashes, adversaries, jitter)")
	clients := flag.Int("clients", 8, "concurrent retrying clients")
	ops := flag.Int("ops", 50, "operations per client (alternating insert/remove)")
	object := flag.String("object", "queue", "detectable object the server hosts: queue or stack")
	crashes := flag.Int("crashes", 40, "target crash/restart cycles")
	minCrashes := flag.Int("min-crashes", 25, "fail if fewer crash cycles actually fired (0 disables)")
	jsonPath := flag.String("json", "", "also write the JSON report to this file")
	repeat := flag.Int("repeat", 1, "run this many times and fail unless all reports are byte-identical")
	flag.Parse()

	cfg := harness.SoakConfig{
		Seed:         *seed,
		Clients:      *clients,
		OpsPerClient: *ops,
		Crashes:      *crashes,
		Object:       *object,
	}

	var first []byte
	var rep harness.SoakReport
	for i := 0; i < *repeat; i++ {
		r, err := harness.RunSoak(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		b, err := marshal(r)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if i == 0 {
			first, rep = b, r
		} else if !bytes.Equal(b, first) {
			fmt.Fprintf(os.Stderr, "dsssoak: run %d diverged from run 1 — soak is not deterministic\n", i+1)
			os.Exit(1)
		}
	}

	os.Stdout.Write(first)
	fmt.Println(rep)
	if *jsonPath != "" {
		if err := os.WriteFile(*jsonPath, first, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if !rep.OK() {
		for _, v := range rep.Violations {
			fmt.Fprintln(os.Stderr, v)
		}
		os.Exit(1)
	}
	if *minCrashes > 0 && rep.Crashes < *minCrashes {
		fmt.Fprintf(os.Stderr, "dsssoak: only %d crash cycles fired (want >= %d); raise -ops or lower crash steps\n",
			rep.Crashes, *minCrashes)
		os.Exit(1)
	}
}
