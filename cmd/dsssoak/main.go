// Command dsssoak runs the deterministic crash-storm soak: concurrent
// retrying clients drive a message-passing DSS object server (queue by
// default; stack, the swap/CAS register, or the keyed hash map with
// -object) through a lossy, duplicating, delaying network while the
// server crashes and recovers under rotating dirty-line adversaries.
// The full client-observed history is verified for exactly-once
// execution and the object's sequential invariants — conservation and
// LIFO/FIFO order for the queue and stack, displacement-chain
// linearizability for the register and map (a keyed Zipf workload) —
// and the run's counters are emitted as a JSON report that is
// bit-identical for a given seed.
//
// The run is always observed (the sinks ride the simulation's virtual
// clock, so observation costs the report nothing): after the storm a
// per-phase latency table is printed to stderr, and -timeline writes the
// merged cross-process recovery timeline, whose crash count must match
// the report's exactly.
//
// Usage:
//
//	dsssoak -seed 1 -clients 8 -ops 50 -crashes 40
//	dsssoak -seed 1 -json BENCH_soak.json -timeline BENCH_soak_timeline.json
//	dsssoak -seed 1 -object stack
//	dsssoak -seed 1 -object register # swap/CAS register, write/read/swap/cas mix
//	dsssoak -seed 1 -object hmap     # keyed hash map, Zipf put/get/del/mcas mix
//	dsssoak -seed 1 -combined        # serve the object behind the combining front
//	dsssoak -seed 1 -repeat 3        # prove determinism: byte-compare runs
//
// -cluster switches to the multi-server cluster storm: N shard-servers
// with independent, OVERLAPPING crash schedules plus scheduled
// cluster-wide blackouts, driven by cluster clients routing through
// persisted cursors. The report is a cluster-soak document and -timeline
// writes a dss-cluster-timeline/1 file with one crash→recover lane per
// server:
//
//	dsssoak -cluster -seed 1 -json BENCH_cluster_soak.json -timeline BENCH_cluster_timeline.json
//	dsssoak -cluster -servers 4 -shards-per-server 2 -server-crashes 10 -blackouts 2
//
// -procs leaves the simulator entirely: it runs the multi-process crash
// storm (real server and client OS processes over shared-memory rings
// and an mmap'd heap file, SIGKILL as the crash adversary) in the
// committed dssproc configuration. dsssoak re-execs itself for the
// server and client roles; the full process-level knobs live on the
// dedicated dssproc command:
//
//	dsssoak -procs -seed 1 -repeat 2
//
// Exit status is nonzero if any violation is found, if the crash target
// is badly missed, if the timeline disagrees with the report, or if
// -repeat runs diverge.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/harness"
	"repro/internal/procharness"
)

func marshal(v any) ([]byte, error) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

func main() {
	// A storm supervisor may have exec'd this binary as a server or
	// client role; if so, MaybeRole takes the process over here.
	procharness.MaybeRole()

	seed := flag.Int64("seed", 1, "seed for the entire run (network, crashes, adversaries, jitter)")
	clients := flag.Int("clients", 8, "concurrent retrying clients")
	ops := flag.Int("ops", 50, "operations per client (alternating insert/remove)")
	object := flag.String("object", "queue", "detectable object the server hosts: queue, stack, register, or hmap")
	combined := flag.Bool("combined", false,
		"host the object behind the flat-combining front (combine.Wire, persisted tags)")
	crashes := flag.Int("crashes", 40, "target crash/restart cycles")
	minCrashes := flag.Int("min-crashes", 25, "fail if fewer crash cycles actually fired (0 disables)")
	jsonPath := flag.String("json", "", "also write the JSON report to this file")
	timelinePath := flag.String("timeline", "", "write the merged recovery-timeline JSON to this file")
	fullEvents := flag.Bool("events", false, "keep the full merged event trace in the timeline file")
	repeat := flag.Int("repeat", 1, "run this many times and fail unless all reports are byte-identical")
	cluster := flag.Bool("cluster", false,
		"run the multi-server cluster storm instead of the single-server soak")
	procs := flag.Bool("procs", false,
		"run the multi-process crash storm (real processes, SIGKILL adversary) in the committed dssproc configuration")
	servers := flag.Int("servers", 4, "shard-servers in the cluster (-cluster only)")
	shardsPer := flag.Int("shards-per-server", 2, "shards behind each server (-cluster only)")
	serverCrashes := flag.Int("server-crashes", 10, "per-server crash budget (-cluster only)")
	blackouts := flag.Int("blackouts", 2, "scheduled cluster-wide power losses (-cluster only)")
	flag.Parse()

	if *procs {
		runProcs(*seed, *object, *repeat, *jsonPath)
		return
	}
	if *cluster {
		if *combined {
			fmt.Fprintln(os.Stderr, "dsssoak: -combined applies to the single-server soak only")
			os.Exit(1)
		}
		runCluster(harness.ClusterSoakConfig{
			Object:           *object,
			Seed:             *seed,
			Servers:          *servers,
			ShardsPerServer:  *shardsPer,
			Clients:          *clients,
			OpsPerClient:     *ops,
			CrashesPerServer: *serverCrashes,
			Blackouts:        *blackouts,
		}, *minCrashes, *jsonPath, *timelinePath, *fullEvents, *repeat)
		return
	}

	cfg := harness.SoakConfig{
		Seed:         *seed,
		Clients:      *clients,
		OpsPerClient: *ops,
		Crashes:      *crashes,
		Object:       *object,
		Combined:     *combined,
	}

	var first, firstTL []byte
	var rep harness.SoakReport
	var obsn harness.SoakObservation
	for i := 0; i < *repeat; i++ {
		r, ob, err := harness.RunSoakObserved(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		b, err := marshal(r)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		tl := ob.Timeline
		if !*fullEvents {
			tl.Events = nil
		}
		tb, err := marshal(tl)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if i == 0 {
			first, firstTL, rep, obsn = b, tb, r, ob
		} else if !bytes.Equal(b, first) {
			fmt.Fprintf(os.Stderr, "dsssoak: run %d diverged from run 1 — soak is not deterministic\n", i+1)
			os.Exit(1)
		} else if !bytes.Equal(tb, firstTL) {
			fmt.Fprintf(os.Stderr, "dsssoak: run %d timeline diverged from run 1 — observation is not deterministic\n", i+1)
			os.Exit(1)
		}
	}

	os.Stdout.Write(first)
	fmt.Println(rep)
	fmt.Fprintf(os.Stderr, "\npost-storm phase latencies (client round trips + server recovery):\n%s",
		obsn.Merged.Export("virtual_ns").FormatTable())
	if *jsonPath != "" {
		if err := os.WriteFile(*jsonPath, first, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *timelinePath != "" {
		if err := os.WriteFile(*timelinePath, firstTL, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if !rep.OK() {
		for _, v := range rep.Violations {
			fmt.Fprintln(os.Stderr, v)
		}
		os.Exit(1)
	}
	if got := obsn.Timeline.Crashes; got != uint64(rep.Crashes) {
		fmt.Fprintf(os.Stderr, "dsssoak: timeline records %d crashes, report says %d — trace and report disagree\n",
			got, rep.Crashes)
		os.Exit(1)
	}
	if *minCrashes > 0 && rep.Crashes < *minCrashes {
		fmt.Fprintf(os.Stderr, "dsssoak: only %d crash cycles fired (want >= %d); raise -ops or lower crash steps\n",
			rep.Crashes, *minCrashes)
		os.Exit(1)
	}
}

// runCluster is main's -cluster arm: the same repeat/byte-compare,
// report/timeline emission, and trace-vs-report cross-checks, for the
// multi-server storm. Beyond the crash count, the cluster run also
// requires the storm to have actually overlapped: every scheduled
// blackout fired and at least one crash landed inside another server's
// recovery window.
func runCluster(cfg harness.ClusterSoakConfig, minCrashes int, jsonPath, timelinePath string, fullEvents bool, repeat int) {
	var first, firstTL []byte
	var rep harness.ClusterSoakReport
	var obsn harness.ClusterSoakObservation
	for i := 0; i < repeat; i++ {
		r, ob, err := harness.RunClusterSoakObserved(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		b, err := marshal(r)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		tl := ob.Timeline
		if !fullEvents {
			tl.Events = nil
		}
		tb, err := marshal(tl)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if i == 0 {
			first, firstTL, rep, obsn = b, tb, r, ob
		} else if !bytes.Equal(b, first) {
			fmt.Fprintf(os.Stderr, "dsssoak: cluster run %d diverged from run 1 — storm is not deterministic\n", i+1)
			os.Exit(1)
		} else if !bytes.Equal(tb, firstTL) {
			fmt.Fprintf(os.Stderr, "dsssoak: cluster run %d timeline diverged from run 1 — observation is not deterministic\n", i+1)
			os.Exit(1)
		}
	}

	os.Stdout.Write(first)
	fmt.Println(rep)
	fmt.Fprintf(os.Stderr, "\npost-storm phase latencies (all clients + all servers):\n%s",
		obsn.Merged.Export("virtual_ns").FormatTable())
	if jsonPath != "" {
		if err := os.WriteFile(jsonPath, first, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if timelinePath != "" {
		if err := os.WriteFile(timelinePath, firstTL, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if !rep.OK() {
		for _, v := range rep.Violations {
			fmt.Fprintln(os.Stderr, v)
		}
		os.Exit(1)
	}
	tl := obsn.Timeline
	switch {
	case int(tl.Crashes) != rep.Crashes:
		fmt.Fprintf(os.Stderr, "dsssoak: timeline records %d crashes, report says %d — trace and report disagree\n",
			tl.Crashes, rep.Crashes)
		os.Exit(1)
	case tl.MaxConcurrentDown != rep.MaxConcurrentDown,
		tl.AllDownWindows != rep.AllDownWindows,
		tl.CrashesDuringRecovery != rep.CrashesDuringRecovery:
		fmt.Fprintf(os.Stderr, "dsssoak: timeline overlap metrics (%d down, %d blackout windows, %d during recovery) disagree with the report (%d, %d, %d)\n",
			tl.MaxConcurrentDown, tl.AllDownWindows, tl.CrashesDuringRecovery,
			rep.MaxConcurrentDown, rep.AllDownWindows, rep.CrashesDuringRecovery)
		os.Exit(1)
	}
	if minCrashes > 0 && rep.Crashes < minCrashes {
		fmt.Fprintf(os.Stderr, "dsssoak: only %d cluster crash cycles fired (want >= %d)\n", rep.Crashes, minCrashes)
		os.Exit(1)
	}
	if rep.Blackouts != rep.TargetBlackouts {
		fmt.Fprintf(os.Stderr, "dsssoak: only %d of %d scheduled blackouts fired before the workload ended\n",
			rep.Blackouts, rep.TargetBlackouts)
		os.Exit(1)
	}
	if rep.TargetBlackouts > 0 && rep.CrashesDuringRecovery == 0 {
		fmt.Fprintln(os.Stderr, "dsssoak: no crash landed inside another server's recovery window — the storm never overlapped")
		os.Exit(1)
	}
}

// runProcs is main's -procs arm: the multi-process crash storm in the
// committed dssproc configuration (2 servers, 4 client processes each,
// 150 ops/client, 10 kills + 2 kill-during-recovery sequences per
// server, 1 blackout, 2 wedges), with the same repeat/byte-compare
// discipline as the simulated storms. The report carries only
// seed-derived counts, so repeats must be byte-identical.
func runProcs(seed int64, object string, repeat int, jsonPath string) {
	if !procharness.StormSupported() {
		fmt.Fprintln(os.Stderr, "dsssoak: multi-process storms unsupported on this platform")
		os.Exit(1)
	}
	cfg := procharness.StormConfig{
		Seed:                   seed,
		Object:                 object,
		Servers:                2,
		ClientsPerServer:       4,
		OpsPerClient:           150,
		KillsPerServer:         10,
		RecoveryKillsPerServer: 2,
		Blackouts:              1,
		Wedges:                 2,
	}
	var first []byte
	var rep procharness.StormReport
	for i := 0; i < repeat; i++ {
		r, _, err := procharness.RunStorm(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		b, err := marshal(r)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if i == 0 {
			first, rep = b, r
		} else if !bytes.Equal(b, first) {
			fmt.Fprintf(os.Stderr, "dsssoak: procs run %d diverged from run 1 — the storm counts are not deterministic\n", i+1)
			os.Exit(1)
		}
	}
	os.Stdout.Write(first)
	fmt.Println(rep)
	if jsonPath != "" {
		if err := os.WriteFile(jsonPath, first, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if !rep.OK() {
		for _, v := range rep.Violations {
			fmt.Fprintln(os.Stderr, v)
		}
		os.Exit(1)
	}
	if rep.Kills != cfg.ExpectedKills() {
		fmt.Fprintf(os.Stderr, "dsssoak: %d kills delivered, schedule owed %d\n", rep.Kills, cfg.ExpectedKills())
		os.Exit(1)
	}
}
