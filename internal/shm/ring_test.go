package shm

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func newTestRing(t *testing.T, slots int) *Ring {
	t.Helper()
	return NewRing(make([]uint64, RingWords(slots, FrameSlotWords)), slots, FrameSlotWords)
}

func TestRingRoundTripAcrossLaps(t *testing.T) {
	r := newTestRing(t, 4)
	p, c := r.Producer(), r.Consumer()
	buf := make([]uint64, 3)
	for n := uint64(0); n < 25; n++ { // 6+ laps of a 4-slot ring
		if !p.TrySend([]uint64{n, n * 2, n * 3}) {
			t.Fatalf("frame %d: ring unexpectedly full", n)
		}
		if !c.TryRecv(buf) {
			t.Fatalf("frame %d: not received", n)
		}
		if buf[0] != n || buf[1] != n*2 || buf[2] != n*3 {
			t.Fatalf("frame %d: got %v", n, buf)
		}
	}
	if c.TryRecv(buf) {
		t.Fatal("received a frame that was never sent")
	}
}

func TestRingFullAndDrain(t *testing.T) {
	r := newTestRing(t, 3)
	p, c := r.Producer(), r.Consumer()
	for n := 0; n < 3; n++ {
		if !p.TrySend([]uint64{uint64(n)}) {
			t.Fatalf("frame %d rejected before the ring was full", n)
		}
	}
	if p.TrySend([]uint64{99}) {
		t.Fatal("send succeeded on a full ring")
	}
	buf := make([]uint64, 1)
	if !c.TryRecv(buf) || buf[0] != 0 {
		t.Fatalf("drain: got %v", buf)
	}
	if !p.TrySend([]uint64{3}) {
		t.Fatal("send failed after the consumer freed a slot")
	}
}

// TestTornFrameNeverSurfaced mirrors the moveRoute torn-line sweep
// (DESIGN.md §14) for the seqlock slot protocol: the producer's store
// sequence is replayed one store at a time, and after every strict
// prefix — the states a SIGKILL can freeze the slot in — the consumer
// must report no frame. Only the final header store publishes.
func TestTornFrameNeverSurfaced(t *testing.T) {
	payload := []uint64{111, 222, 333}
	// The stores TrySend performs for frame 0, in order.
	type store struct{ word, val uint64 }
	stores := []store{{0, hdrWriting(0)}}
	for i, v := range payload {
		stores = append(stores, store{uint64(1 + i), v})
	}
	for i := len(payload); i < FrameSlotWords-1; i++ {
		stores = append(stores, store{uint64(1 + i), 0})
	}
	stores = append(stores, store{0, hdrComplete(0)})

	buf := make([]uint64, len(payload))
	for cut := 0; cut <= len(stores); cut++ {
		r := newTestRing(t, 2)
		// Pre-fill the slot with stale garbage: the torn state a restarted
		// producer's slot really holds is the previous life's bytes, not
		// zeros.
		s := r.slot(0)
		for i := range s {
			s[i] = 0xdead_beef_0000_0000 | uint64(i)
		}
		for _, st := range stores[:cut] {
			atomic.StoreUint64(&s[st.word], st.val)
		}
		c := r.Consumer()
		got := c.Peek(buf)
		if cut < len(stores) {
			if got {
				t.Fatalf("cut after %d/%d stores: torn frame surfaced as %v", cut, len(stores), buf)
			}
		} else {
			if !got {
				t.Fatalf("complete frame not surfaced")
			}
			for i, v := range payload {
				if buf[i] != v {
					t.Fatalf("payload[%d] = %d, want %d", i, buf[i], v)
				}
			}
		}
	}
}

// TestTornFrameRewrittenByRestart is the recovery half of the torn-frame
// story: a producer killed mid-frame leaves an odd header; the restarted
// producer adopts the same frame number, rewrites the slot from scratch,
// and the consumer sees exactly the second version.
func TestTornFrameRewrittenByRestart(t *testing.T) {
	r := newTestRing(t, 2)
	// First life: die after the header and half the payload.
	s := r.slot(0)
	atomic.StoreUint64(&s[0], hdrWriting(0))
	atomic.StoreUint64(&s[1], 13)
	c := r.Consumer()
	if c.Peek(make([]uint64, 2)) {
		t.Fatal("half-written frame surfaced")
	}
	// Second life: a fresh Producer over the same words.
	p := r.Producer()
	if !p.TrySend([]uint64{77, 88}) {
		t.Fatal("restarted producer could not send")
	}
	buf := make([]uint64, 2)
	if !c.TryRecv(buf) || buf[0] != 77 || buf[1] != 88 {
		t.Fatalf("got %v, want [77 88]", buf)
	}
}

// TestProducerAdoptsConsumedHead covers the kill window between
// completing a frame and publishing tail: the consumer (which trusts
// slot headers, not tail) consumed the frame, so the restarted producer
// must clamp its cursor up to head or it would rewrite frame 0 while the
// consumer waits for frame 1.
func TestProducerAdoptsConsumedHead(t *testing.T) {
	r := newTestRing(t, 4)
	// Frame 0 completed by hand, tail never advanced (the kill window).
	s := r.slot(0)
	atomic.StoreUint64(&s[0], hdrWriting(0))
	atomic.StoreUint64(&s[1], 42)
	atomic.StoreUint64(&s[0], hdrComplete(0))

	c := r.Consumer()
	buf := make([]uint64, 1)
	if !c.TryRecv(buf) || buf[0] != 42 {
		t.Fatalf("pre-crash frame: got %v", buf)
	}

	p := r.Producer() // restarted producer
	if !p.TrySend([]uint64{43}) {
		t.Fatal("send failed")
	}
	if !c.TryRecv(buf) || buf[0] != 43 {
		t.Fatalf("post-restart frame: got %v, want [43]", buf)
	}
}

// TestConsumerRestartResumesAtHead: a consumer killed between frames
// resumes at the published head, and a consumer killed between Peek and
// Advance re-reads the same frame (redelivery, the server's choice).
func TestConsumerRestartResumesAtHead(t *testing.T) {
	r := newTestRing(t, 4)
	p := r.Producer()
	for n := uint64(0); n < 3; n++ {
		p.TrySend([]uint64{n + 100})
	}
	buf := make([]uint64, 1)
	c := r.Consumer()
	if !c.Peek(buf) || buf[0] != 100 {
		t.Fatalf("got %v", buf)
	}
	// Killed before Advance: a new consumer re-reads frame 0.
	c2 := r.Consumer()
	if !c2.TryRecv(buf) || buf[0] != 100 {
		t.Fatalf("redelivery: got %v, want [100]", buf)
	}
	// Killed after Advance: a new consumer starts at frame 1.
	c3 := r.Consumer()
	if !c3.TryRecv(buf) || buf[0] != 101 {
		t.Fatalf("resume: got %v, want [101]", buf)
	}
}

func TestRingConcurrentStress(t *testing.T) {
	r := newTestRing(t, 8)
	const frames = 20000
	done := make(chan error, 1)
	go func() {
		c := r.Consumer()
		buf := make([]uint64, 1)
		for n := uint64(0); n < frames; {
			if c.TryRecv(buf) {
				if buf[0] != n {
					done <- fmt.Errorf("frame %d carried %d", n, buf[0])
					return
				}
				n++
			} else {
				runtime.Gosched()
			}
		}
		done <- nil
	}()
	p := r.Producer()
	for n := uint64(0); n < frames; {
		if p.TrySend([]uint64{n}) {
			n++
		} else {
			runtime.Gosched()
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
