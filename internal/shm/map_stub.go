//go:build !linux

package shm

import (
	"fmt"
	"runtime"
)

// Supported reports whether this platform can back segments with shared
// file mappings.
func Supported() bool { return false }

// CreateSeg is unavailable without shared file mappings; the in-memory
// segment (NewMemSeg) and all ring/transport protocols still work.
func CreateSeg(path string, l Layout) (*Seg, error) {
	return nil, fmt.Errorf("shm: file-backed segments are not supported on %s", runtime.GOOS)
}

// OpenSeg is unavailable without shared file mappings.
func OpenSeg(path string) (*Seg, error) {
	return nil, fmt.Errorf("shm: file-backed segments are not supported on %s", runtime.GOOS)
}

// OpenSegRO is unavailable without shared file mappings.
func OpenSegRO(path string) (*Seg, error) {
	return nil, fmt.Errorf("shm: file-backed segments are not supported on %s", runtime.GOOS)
}
