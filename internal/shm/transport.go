package shm

import (
	"errors"
	"runtime"
	"time"

	"repro/internal/dss"
	"repro/internal/mp"
	"repro/internal/spec"
)

// Frame encodings. Both ends of a segment serve the same dss.Type, so
// operations travel as (container kind, arg, tag) and are re-expanded
// through the type's SpecOp/FromSpec translation — spec.Op's symbolic
// name never crosses the process boundary.
//
// Request frame (client → server), payload words:
//
//	0 kind   1 client   2 gen   3 seq   4 opKind   5 opArg   6 opTag
//	7 opKey
//
// Reply frame (server → client), payload words:
//
//	0 echoSeq   1 gen   2 errCode   3 errGen   4 respKind   5 respV
//	6 hasOp   7 pOpKind   8 pOpArg   9 pOpTag   10 inner   11 innerVal
//	12 pOpKey   13 respV2   14 innerVal2
//
// echoSeq names the request the reply answers; a client polling for its
// current attempt discards replies echoing earlier sequence numbers
// (answers to attempts it already timed out). Both frames fit
// FrameSlotWords-1 payload words.

// Error codes a reply frame can carry.
const (
	errNone uint64 = iota
	errDown
	errDownStale
	errSuperseded
	errTimeout
	errRemote
)

// ErrRemote is a reply whose server-side error has no wire class of its
// own (a malformed operation, a spec-level failure). It is definite: the
// request did not take effect, and resending it cannot succeed.
var ErrRemote = errors.New("shm: server rejected the request")

const (
	reqFrameWords   = 8
	replyFrameWords = 15
)

// encodeReq lowers m into a request frame.
func encodeReq(dst []uint64, m mp.Msg, typ dss.Type) {
	dst[0] = uint64(m.Kind)
	dst[1] = uint64(m.Client)
	dst[2] = m.Gen
	dst[3] = m.Seq
	dst[4], dst[5], dst[6], dst[7] = 0, 0, 0, 0
	if m.Op.Sym != "" {
		if dop, ok := typ.FromSpec(m.Op); ok {
			dst[4] = uint64(dop.Kind)
			dst[5] = dop.Arg
			dst[6] = m.Op.Tag
			dst[7] = dop.Key
		}
	}
}

// decodeReq raises a request frame back into a Msg.
func decodeReq(src []uint64, typ dss.Type) mp.Msg {
	m := mp.Msg{
		Kind:   mp.ReqKind(src[0]),
		Client: int(src[1]),
		Gen:    src[2],
		Seq:    src[3],
	}
	if k := dss.Kind(src[4]); k != dss.None {
		m.Op = typ.SpecOp(dss.Op{Kind: k, Arg: src[5], Key: src[7]})
		m.Op.Tag = src[6]
	}
	return m
}

// encodeReply lowers rep (answering request sequence seq) into a reply
// frame.
func encodeReply(dst []uint64, seq uint64, rep mp.Reply, typ dss.Type) {
	for i := range dst[:replyFrameWords] {
		dst[i] = 0
	}
	dst[0] = seq
	dst[1] = rep.Gen
	switch {
	case rep.Err == nil:
	case errors.Is(rep.Err, mp.ErrServerDown):
		dst[2] = errDown
		var de *mp.DownError
		if errors.As(rep.Err, &de) {
			dst[3] = de.Gen
			if de.Stale {
				dst[2] = errDownStale
			}
		}
	case errors.Is(rep.Err, mp.ErrSuperseded):
		dst[2] = errSuperseded
	case errors.Is(rep.Err, mp.ErrTimeout):
		dst[2] = errTimeout
	default:
		dst[2] = errRemote
	}
	r := rep.Resp
	dst[4] = uint64(r.Kind)
	dst[5] = r.V
	if r.HasOp {
		if dop, ok := typ.FromSpec(r.POp); ok {
			dst[6] = 1
			dst[7] = uint64(dop.Kind)
			dst[8] = dop.Arg
			dst[9] = r.POp.Tag
			dst[12] = dop.Key
		}
	}
	dst[10] = uint64(r.Inner)
	dst[11] = r.InnerVal
	dst[13] = r.V2
	dst[14] = r.InnerVal2
}

// decodeReply raises a reply frame; echo is the request sequence it
// answers.
func decodeReply(src []uint64, typ dss.Type) (rep mp.Reply, echo uint64) {
	echo = src[0]
	rep.Gen = src[1]
	switch src[2] {
	case errNone:
	case errDown:
		rep.Err = &mp.DownError{Gen: src[3]}
	case errDownStale:
		rep.Err = &mp.DownError{Gen: src[3], Stale: true}
	case errSuperseded:
		rep.Err = mp.ErrSuperseded
	case errTimeout:
		rep.Err = mp.ErrTimeout
	default:
		rep.Err = ErrRemote
	}
	rep.Resp = spec.Resp{
		Kind:      spec.RespKind(src[4]),
		V:         src[5],
		V2:        src[13],
		Inner:     spec.RespKind(src[10]),
		InnerVal:  src[11],
		InnerVal2: src[14],
	}
	if src[6] != 0 {
		rep.Resp.HasOp = true
		rep.Resp.POp = typ.SpecOp(dss.Op{Kind: dss.Kind(src[7]), Arg: src[8], Key: src[12]})
		rep.Resp.POp.Tag = src[9]
	}
	return rep, echo
}

// ClientConn is one client process's side of its ring pair: an
// mp.Transport whose RoundTrip publishes the request frame and polls the
// reply ring until a reply echoing this request's sequence number
// arrives or the deadline passes. A silent server — killed, not erroring
// — therefore surfaces as ErrTimeout, the ambiguous outcome the retry
// discipline already settles via resolve.
//
// Requests must carry strictly increasing nonzero Seq (mp.RetryClient's
// contract); replies echoing older sequences are drained and discarded.
// A ClientConn serves one process and is not safe for concurrent use.
type ClientConn struct {
	seg *Seg
	typ dss.Type
	req *Producer
	rep *Consumer

	// Timeout bounds one RoundTrip (default 150ms); Poll is the sleep
	// between reply-ring sweeps once the initial spin is exhausted
	// (default 100µs).
	Timeout time.Duration
	Poll    time.Duration
}

// NewClientConn attaches the transport for ring pair id, serving typ.
func NewClientConn(seg *Seg, id int, typ dss.Type) *ClientConn {
	return &ClientConn{
		seg:     seg,
		typ:     typ,
		req:     seg.ReqRing(id).Producer(),
		rep:     seg.RepRing(id).Consumer(),
		Timeout: 150 * time.Millisecond,
		Poll:    100 * time.Microsecond,
	}
}

// RoundTrip implements mp.Transport over the ring pair.
func (c *ClientConn) RoundTrip(m mp.Msg) mp.Reply {
	deadline := time.Now().Add(c.Timeout)
	var frame [FrameSlotWords - 1]uint64
	encodeReq(frame[:reqFrameWords], m, c.typ)
	// A full request ring means a long-dead server with a backlog of
	// retries; the frame is simply not sent, which is indistinguishable
	// from a lost request and settles the same way.
	for !c.req.TrySend(frame[:reqFrameWords]) {
		if !c.pause(deadline, 1<<30) {
			return mp.Reply{Err: mp.ErrTimeout}
		}
	}
	var rbuf [FrameSlotWords - 1]uint64
	for spin := 0; ; spin++ {
		if c.rep.TryRecv(rbuf[:replyFrameWords]) {
			rep, echo := decodeReply(rbuf[:replyFrameWords], c.typ)
			if echo == m.Seq {
				return rep
			}
			continue // an answer to an attempt we already gave up on
		}
		if !c.pause(deadline, spin) {
			return mp.Reply{Err: mp.ErrTimeout}
		}
	}
}

// pause yields (briefly spinning, then sleeping Poll) and reports false
// once deadline has passed.
func (c *ClientConn) pause(deadline time.Time, spin int) bool {
	if time.Now().After(deadline) {
		return false
	}
	if spin < 64 {
		runtime.Gosched()
	} else {
		time.Sleep(c.Poll)
	}
	return true
}

// ServerConn is the server process's side of every ring pair in a
// segment. The serve loop calls Sweep with the engine's Apply; a request
// frame is consumed (head advanced) only after its reply is published,
// so a kill anywhere in between redelivers the request to the next
// generation — where the gen fence rejects it and the client resolves.
type ServerConn struct {
	seg *Seg
	typ dss.Type
	req []*Consumer
	rep []*Producer
}

// NewServerConn attaches the server side of every ring pair.
func NewServerConn(seg *Seg, typ dss.Type) *ServerConn {
	l := seg.Layout()
	s := &ServerConn{seg: seg, typ: typ}
	for i := 0; i < l.Clients; i++ {
		s.req = append(s.req, seg.ReqRing(i).Consumer())
		s.rep = append(s.rep, seg.RepRing(i).Producer())
	}
	return s
}

// Sweep serves at most one pending request per client ring and returns
// the number served (0 means the loop should back off briefly).
func (s *ServerConn) Sweep(apply func(mp.Msg) mp.Reply) int {
	served := 0
	var buf [FrameSlotWords - 1]uint64
	for i := range s.req {
		if !s.req[i].Peek(buf[:reqFrameWords]) {
			continue
		}
		m := decodeReq(buf[:reqFrameWords], s.typ)
		rep := apply(m)
		var out [FrameSlotWords - 1]uint64
		encodeReply(out[:replyFrameWords], m.Seq, rep, s.typ)
		// The reply ring can only be full if the client stopped consuming
		// for a whole ring of frames; after a bounded wait the reply is
		// dropped — to the client that is a lost reply, already handled.
		for tries := 0; !s.rep[i].TrySend(out[:replyFrameWords]); tries++ {
			if tries > 1000 {
				break
			}
			time.Sleep(100 * time.Microsecond)
		}
		s.req[i].Advance()
		served++
	}
	return served
}
