//go:build linux

package shm

import (
	"fmt"
	"os"
	"syscall"
	"unsafe"
)

// Supported reports whether this platform can back segments with shared
// file mappings (tooling uses it to skip the process storm gracefully
// elsewhere).
func Supported() bool { return true }

// mapWords maps size words of f shared with the given protection.
func mapWords(f *os.File, words, prot int) ([]uint64, func() error, error) {
	raw, err := syscall.Mmap(int(f.Fd()), 0, words*8, prot, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, fmt.Errorf("shm: mmap: %w", err)
	}
	w := unsafe.Slice((*uint64)(unsafe.Pointer(&raw[0])), words)
	return w, func() error { return syscall.Munmap(raw) }, nil
}

// CreateSeg creates (truncating any previous content) and formats a
// segment file. The supervisor creates segments before spawning the
// processes that open them.
func CreateSeg(path string, l Layout) (*Seg, error) {
	if err := l.validate(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("shm: create %s: %w", path, err)
	}
	if err := f.Truncate(int64(l.Words() * 8)); err != nil {
		f.Close()
		return nil, fmt.Errorf("shm: truncate: %w", err)
	}
	w, unmap, err := mapWords(f, l.Words(), syscall.PROT_READ|syscall.PROT_WRITE)
	if err != nil {
		f.Close()
		return nil, err
	}
	s, err := InitSeg(w, l)
	if err != nil {
		unmap()
		f.Close()
		return nil, err
	}
	s.closeFn = func() error {
		if err := unmap(); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	return s, nil
}

// OpenSeg maps an existing segment file and validates its header. Server
// and client processes open the segment their supervisor created.
func OpenSeg(path string) (*Seg, error) {
	return openSeg(path, os.O_RDWR, syscall.PROT_READ|syscall.PROT_WRITE)
}

// OpenSegRO maps an existing segment file read-only: the live monitor's
// attach mode. A read-only view can sample status lines, telemetry
// slots, and ring headers but never perturb the running deployment —
// calling a mutating method on it faults instead of corrupting the
// segment.
func OpenSegRO(path string) (*Seg, error) {
	return openSeg(path, os.O_RDONLY, syscall.PROT_READ)
}

func openSeg(path string, flag, prot int) (*Seg, error) {
	f, err := os.OpenFile(path, flag, 0)
	if err != nil {
		return nil, fmt.Errorf("shm: open %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("shm: stat: %w", err)
	}
	words := int(st.Size() / 8)
	if words < clientLinesWord {
		f.Close()
		return nil, fmt.Errorf("shm: %s too small (%d bytes) for a segment", path, st.Size())
	}
	w, unmap, err := mapWords(f, words, prot)
	if err != nil {
		f.Close()
		return nil, err
	}
	s, err := ViewSeg(w)
	if err != nil {
		unmap()
		f.Close()
		return nil, err
	}
	s.closeFn = func() error {
		if err := unmap(); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	return s, nil
}
