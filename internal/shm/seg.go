package shm

import (
	"fmt"
	"sync/atomic"
)

// Segment format. One segment serves one server process and its client
// processes: a header line, a global ticket-clock line, a server status
// line, one status line per client, then one request/reply ring pair per
// client. All offsets are in words; every region is line-aligned.
//
//	line 0          magic, version, clients, slots, slotWords, telemWords
//	line 1          ticket clock (word 0)
//	line 2          server status
//	line 3..3+C-1   client status, one line per client
//	then per client: request ring, reply ring
//	then, when telemWords > 0: one telemetry slot per process (server
//	first, then each client) — a seqlock header word plus telemWords
//	payload words, line-aligned (the live metrics plane; see
//	TelemetrySlot)
const (
	// segMagic spells "DSSSEG/1" and guards against viewing a foreign or
	// half-created mapping as a segment (it is stored last on format).
	segMagic   = 0x4453_5353_4547_2f31
	segVersion = 2

	hdrMagicWord     = 0
	hdrVersionWord   = 1
	hdrClientsWord   = 2
	hdrSlotsWord     = 3
	hdrSlotWordsWord = 4
	hdrTelemWord     = 5

	clockWord = 1 * wordsPerLine

	serverLineWord = 2 * wordsPerLine
	svHeartbeat    = 0
	svState        = 1
	svGen          = 2
	svOps          = 3
	svPid          = 4
	svDirty        = 5
	svWedge        = 6
	svStateNS      = 7

	clientLinesWord = 3 * wordsPerLine
	clHeartbeat     = 0
	clOps           = 1
	clPid           = 2
	clDone          = 3
)

// Server states published in the status page, in lifecycle order. The
// supervisor's hang detector applies only to StateServing: a server whose
// heartbeat stalls while serving is declared hung and killed.
const (
	StateInit uint64 = iota
	StateAttaching
	StateRecovering
	StateServing
	StateStopped
)

// Layout is a segment's geometry.
type Layout struct {
	// Clients is the number of ring pairs (and client status lines).
	Clients int
	// Slots is the frame capacity of each ring; it bounds how many
	// retries can queue up while a server is down.
	Slots int
	// SlotWords is the per-frame slot size (1 header word + payload),
	// a multiple of wordsPerLine. FrameSlotWords fits the transport's
	// request and reply frames.
	SlotWords int
	// TelemWords is the telemetry payload capacity per process slot in
	// words (obs.EncodedSnapshotWords for the live metrics plane); 0
	// omits the telemetry region entirely, preserving the pre-telemetry
	// geometry.
	TelemWords int
}

// FrameSlotWords is the slot size the mp transport frames need: two
// cache lines (1 header word + 15 payload words).
const FrameSlotWords = 2 * wordsPerLine

// Words returns the total segment size in words.
func (l Layout) Words() int {
	return l.telemBase() + (1+l.Clients)*l.telemSlotWords()
}

// telemBase is the word offset of the telemetry region (the pre-v2
// segment end).
func (l Layout) telemBase() int {
	return clientLinesWord + l.Clients*wordsPerLine +
		2*l.Clients*RingWords(l.Slots, l.SlotWords)
}

// telemSlotWords is the line-aligned stride of one telemetry slot
// (header word + payload), 0 when the region is omitted.
func (l Layout) telemSlotWords() int {
	if l.TelemWords <= 0 {
		return 0
	}
	n := 1 + l.TelemWords
	if r := n % wordsPerLine; r != 0 {
		n += wordsPerLine - r
	}
	return n
}

func (l Layout) validate() error {
	if l.Clients < 1 || l.Slots < 2 || l.SlotWords < 2 || l.SlotWords%wordsPerLine != 0 || l.TelemWords < 0 {
		return fmt.Errorf("shm: bad segment layout %+v", l)
	}
	return nil
}

// Seg is a view of a segment over shared words. Any number of processes
// may hold views; the rings' SPSC discipline and the status page's
// single-writer-per-word discipline are the concurrency contract.
type Seg struct {
	w       []uint64
	l       Layout
	closeFn func() error
}

// InitSeg formats a segment over w (which must be zeroed, as fresh file
// pages are) and returns its view. The magic is stored last, so a racing
// ViewSeg of a half-formatted segment fails cleanly rather than reading
// garbage geometry.
func InitSeg(w []uint64, l Layout) (*Seg, error) {
	if err := l.validate(); err != nil {
		return nil, err
	}
	if len(w) < l.Words() {
		return nil, fmt.Errorf("shm: segment needs %d words, have %d", l.Words(), len(w))
	}
	atomic.StoreUint64(&w[hdrVersionWord], segVersion)
	atomic.StoreUint64(&w[hdrClientsWord], uint64(l.Clients))
	atomic.StoreUint64(&w[hdrSlotsWord], uint64(l.Slots))
	atomic.StoreUint64(&w[hdrSlotWordsWord], uint64(l.SlotWords))
	atomic.StoreUint64(&w[hdrTelemWord], uint64(l.TelemWords))
	atomic.StoreUint64(&w[hdrMagicWord], segMagic)
	return &Seg{w: w, l: l}, nil
}

// ViewSeg views an already-formatted segment over w, validating its
// header.
func ViewSeg(w []uint64) (*Seg, error) {
	if len(w) < clientLinesWord {
		return nil, fmt.Errorf("shm: mapping too small for a segment header")
	}
	if m := atomic.LoadUint64(&w[hdrMagicWord]); m != segMagic {
		return nil, fmt.Errorf("shm: bad segment magic %#x (want %#x)", m, uint64(segMagic))
	}
	if v := atomic.LoadUint64(&w[hdrVersionWord]); v != segVersion {
		return nil, fmt.Errorf("shm: segment version %d (want %d)", v, segVersion)
	}
	l := Layout{
		Clients:    int(atomic.LoadUint64(&w[hdrClientsWord])),
		Slots:      int(atomic.LoadUint64(&w[hdrSlotsWord])),
		SlotWords:  int(atomic.LoadUint64(&w[hdrSlotWordsWord])),
		TelemWords: int(atomic.LoadUint64(&w[hdrTelemWord])),
	}
	if err := l.validate(); err != nil {
		return nil, err
	}
	if len(w) < l.Words() {
		return nil, fmt.Errorf("shm: segment header names %d words, mapping holds %d", l.Words(), len(w))
	}
	return &Seg{w: w, l: l}, nil
}

// NewMemSeg formats a segment over a private heap slice — the in-process
// harness for tests, which exercises every protocol without a file.
func NewMemSeg(l Layout) *Seg {
	s, err := InitSeg(make([]uint64, l.Words()), l)
	if err != nil {
		panic(err)
	}
	return s
}

// Layout returns the segment's geometry.
func (s *Seg) Layout() Layout { return s.l }

// Close releases the segment's mapping, if it owns one.
func (s *Seg) Close() error {
	if s.closeFn == nil {
		return nil
	}
	fn := s.closeFn
	s.closeFn = nil
	return fn()
}

// Ticket draws the next value of the segment's global clock: a fetch-add
// counter every process shares, giving the storm's history checker
// real-time invocation/return ordinals that are valid across processes
// (two Ticket calls by any two processes are totally ordered, and the
// order respects real time).
func (s *Seg) Ticket() int64 {
	return int64(atomic.AddUint64(&s.w[clockWord], 1))
}

// ringBase returns the word offset of client i's pair region.
func (s *Seg) ringBase(i int) int {
	if i < 0 || i >= s.l.Clients {
		panic("shm: client index out of range")
	}
	return clientLinesWord + s.l.Clients*wordsPerLine +
		2*i*RingWords(s.l.Slots, s.l.SlotWords)
}

// ReqRing is client i's request ring (client produces, server consumes).
func (s *Seg) ReqRing(i int) *Ring {
	return NewRing(s.w[s.ringBase(i):], s.l.Slots, s.l.SlotWords)
}

// RepRing is client i's reply ring (server produces, client consumes).
func (s *Seg) RepRing(i int) *Ring {
	base := s.ringBase(i) + RingWords(s.l.Slots, s.l.SlotWords)
	return NewRing(s.w[base:], s.l.Slots, s.l.SlotWords)
}

// ServerStatus is the server's status line: heartbeat, lifecycle state,
// generation, ops applied, pid, dirty-attach count, and the supervisor's
// wedge-request word (a fault-injection knob: a wedged server stops
// heartbeating so the hang detector can be exercised for real).
type ServerStatus struct{ w []uint64 }

// Server returns the segment's server status line.
func (s *Seg) Server() ServerStatus {
	return ServerStatus{w: s.w[serverLineWord : serverLineWord+wordsPerLine]}
}

// Beat increments the heartbeat; Heartbeat reads it.
func (st ServerStatus) Beat()             { atomic.AddUint64(&st.w[svHeartbeat], 1) }
func (st ServerStatus) Heartbeat() uint64 { return atomic.LoadUint64(&st.w[svHeartbeat]) }

// SetState publishes the lifecycle state; State reads it.
func (st ServerStatus) SetState(v uint64) { atomic.StoreUint64(&st.w[svState], v) }
func (st ServerStatus) State() uint64     { return atomic.LoadUint64(&st.w[svState]) }

// SetStateAt publishes the lifecycle state together with the wall-clock
// nanosecond it changed, so a sparse sampler (the live monitor, the SLO
// tracker) sees exact transition edges instead of its own poll times.
// The timestamp is stored first: a reader pairing the two words sees
// either the old pair or a state with an at-or-earlier timestamp, never
// a state with a stale future edge.
func (st ServerStatus) SetStateAt(v, ns uint64) {
	atomic.StoreUint64(&st.w[svStateNS], ns)
	atomic.StoreUint64(&st.w[svState], v)
}

// StateChangedNS reads the wall-clock nanosecond of the last transition
// published with SetStateAt (0 when the server uses bare SetState).
func (st ServerStatus) StateChangedNS() uint64 { return atomic.LoadUint64(&st.w[svStateNS]) }

// SetGen publishes the serving generation; Gen reads it.
func (st ServerStatus) SetGen(v uint64) { atomic.StoreUint64(&st.w[svGen], v) }
func (st ServerStatus) Gen() uint64     { return atomic.LoadUint64(&st.w[svGen]) }

// AddOps counts applied requests; Ops reads the total.
func (st ServerStatus) AddOps(n uint64) { atomic.AddUint64(&st.w[svOps], n) }
func (st ServerStatus) Ops() uint64     { return atomic.LoadUint64(&st.w[svOps]) }

// SetPID publishes the serving process id; PID reads it.
func (st ServerStatus) SetPID(pid int) { atomic.StoreUint64(&st.w[svPid], uint64(pid)) }
func (st ServerStatus) PID() int       { return int(atomic.LoadUint64(&st.w[svPid])) }

// IncDirty counts attaches that found the heap's dirty-shutdown marker
// set (the previous owner was killed); Dirty reads the total. The count
// lives in the segment, so it survives the counting process.
func (st ServerStatus) IncDirty()     { atomic.AddUint64(&st.w[svDirty], 1) }
func (st ServerStatus) Dirty() uint64 { return atomic.LoadUint64(&st.w[svDirty]) }

// RequestWedge asks the server to stop heartbeating (hang injection);
// WedgeRequested is polled by the server's serve loop.
func (st ServerStatus) RequestWedge()        { atomic.StoreUint64(&st.w[svWedge], 1) }
func (st ServerStatus) WedgeRequested() bool { return atomic.LoadUint64(&st.w[svWedge]) != 0 }

// ClearWedge retracts a wedge request. The supervisor clears the word
// after killing the wedged incarnation so its replacement serves
// normally instead of wedging straight away.
func (st ServerStatus) ClearWedge() { atomic.StoreUint64(&st.w[svWedge], 0) }

// ClientStatus is one client's status line: heartbeat, completed ops
// (the supervisor's schedule triggers key off these), pid, and the done
// flag.
type ClientStatus struct{ w []uint64 }

// Client returns client i's status line.
func (s *Seg) Client(i int) ClientStatus {
	if i < 0 || i >= s.l.Clients {
		panic("shm: client index out of range")
	}
	base := clientLinesWord + i*wordsPerLine
	return ClientStatus{w: s.w[base : base+wordsPerLine]}
}

// Beat increments the heartbeat; Heartbeat reads it.
func (st ClientStatus) Beat()             { atomic.AddUint64(&st.w[clHeartbeat], 1) }
func (st ClientStatus) Heartbeat() uint64 { return atomic.LoadUint64(&st.w[clHeartbeat]) }

// SetOps publishes the number of completed operations; Ops reads it.
func (st ClientStatus) SetOps(n uint64) { atomic.StoreUint64(&st.w[clOps], n) }
func (st ClientStatus) Ops() uint64     { return atomic.LoadUint64(&st.w[clOps]) }

// SetPID publishes the client process id; PID reads it.
func (st ClientStatus) SetPID(pid int) { atomic.StoreUint64(&st.w[clPid], uint64(pid)) }
func (st ClientStatus) PID() int       { return int(atomic.LoadUint64(&st.w[clPid])) }

// SetDone marks the client's workload complete; Done reads the flag.
func (st ClientStatus) SetDone()   { atomic.StoreUint64(&st.w[clDone], 1) }
func (st ClientStatus) Done() bool { return atomic.LoadUint64(&st.w[clDone]) != 0 }
