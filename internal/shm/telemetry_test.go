package shm

import (
	"sync"
	"sync/atomic"
	"testing"
)

func telemTestSeg(t *testing.T, telemWords int) *Seg {
	t.Helper()
	return NewMemSeg(Layout{Clients: 2, Slots: 4, SlotWords: FrameSlotWords, TelemWords: telemWords})
}

func TestTelemetrySlotRoundTrip(t *testing.T) {
	s := telemTestSeg(t, 5)
	if !s.HasTelemetry() || s.TelemWords() != 5 {
		t.Fatalf("telemetry geometry: has=%v words=%d", s.HasTelemetry(), s.TelemWords())
	}

	slot := s.ServerTelemetry()
	buf := make([]uint64, 5)
	if _, ok := slot.Read(buf); ok {
		t.Fatal("read succeeded on a never-published slot")
	}

	p := slot.Publisher()
	p.Publish([]uint64{1, 2, 3, 4, 5})
	seq, ok := slot.Read(buf)
	if !ok || seq != 1 {
		t.Fatalf("read: ok=%v seq=%d", ok, seq)
	}
	if buf[0] != 1 || buf[4] != 5 {
		t.Fatalf("payload: %v", buf)
	}

	// A shorter publish zero-fills the stale tail.
	p.Publish([]uint64{9})
	if seq, ok = slot.Read(buf); !ok || seq != 2 {
		t.Fatalf("read 2: ok=%v seq=%d", ok, seq)
	}
	if buf[0] != 9 || buf[1] != 0 || buf[4] != 0 {
		t.Fatalf("stale tail leaked: %v", buf)
	}

	// Client slots are distinct from the server's and each other's.
	c0 := s.ClientTelemetry(0).Publisher()
	c0.Publish([]uint64{70})
	if _, ok := s.ClientTelemetry(1).Read(buf); ok {
		t.Fatal("client 1 read client 0's publish")
	}
	if seq, ok = s.ClientTelemetry(0).Read(buf); !ok || buf[0] != 70 {
		t.Fatalf("client 0 read: ok=%v buf=%v", ok, buf)
	}

	// A segment without a telemetry region reports so and costs nothing.
	bare := telemTestSeg(t, 0)
	if bare.HasTelemetry() || bare.ServerTelemetry() != nil {
		t.Fatal("bare segment grew a telemetry region")
	}
	if bare.Layout().Words() != (Layout{Clients: 2, Slots: 4, SlotWords: FrameSlotWords}).Words() {
		t.Fatal("TelemWords=0 changed the segment geometry")
	}
}

// TestTelemetryTornPublishNeverSurfaced replays the publisher's store
// sequence one store at a time — every state a SIGKILL can freeze the
// slot in — and after each strict prefix the reader must either see the
// previous complete frame intact or no frame at all, never a mix of old
// and new words. It then proves the respawn path: a new Publisher
// adopting the frozen slot republishes under the same frame number and
// the reader converges on the new payload with an advancing sequence.
func TestTelemetryTornPublishNeverSurfaced(t *testing.T) {
	const words = 4
	oldPay := []uint64{11, 12, 13, 14}
	newPay := []uint64{21, 22, 23, 24}

	// The stores Publish performs for frame 1 (after frame 0 completed),
	// in order: header to writing, payload words, header to complete.
	type store struct{ word, val uint64 }
	var stores []store
	stores = append(stores, store{0, hdrWriting(1)})
	for i, v := range newPay {
		stores = append(stores, store{uint64(1 + i), v})
	}
	stores = append(stores, store{0, hdrComplete(1)})

	for prefix := 0; prefix <= len(stores); prefix++ {
		s := telemTestSeg(t, words)
		slot := s.ServerTelemetry()
		slot.Publisher().Publish(oldPay) // frame 0 completes

		for _, st := range stores[:prefix] {
			atomic.StoreUint64(&slot.w[st.word], st.val)
		}

		buf := make([]uint64, words)
		seq, ok := slot.Read(buf)
		switch {
		case prefix == 0:
			if !ok || seq != 1 || buf[0] != 11 {
				t.Fatalf("prefix 0: lost the old frame: ok=%v seq=%d buf=%v", ok, seq, buf)
			}
		case prefix < len(stores):
			// Mid-publish: the odd header must suppress the frame.
			if ok {
				t.Fatalf("prefix %d/%d: torn frame surfaced: seq=%d buf=%v", prefix, len(stores), seq, buf)
			}
		default:
			if !ok || seq != 2 || buf[0] != 21 || buf[3] != 24 {
				t.Fatalf("complete publish unreadable: ok=%v seq=%d buf=%v", ok, seq, buf)
			}
		}

		// Respawn from this frozen state: the adopted publisher must
		// produce a frame the reader accepts, at or after the frozen
		// frame number.
		p := slot.Publisher()
		p.Publish([]uint64{31, 32, 33, 34})
		seq2, ok := slot.Read(buf)
		if !ok || buf[0] != 31 || buf[3] != 34 {
			t.Fatalf("prefix %d: respawned publish unreadable: ok=%v buf=%v", prefix, ok, buf)
		}
		if seq2 < seq {
			t.Fatalf("prefix %d: frame ordinal went backwards: %d -> %d", prefix, seq, seq2)
		}
	}
}

// TestTelemetryPublisherReaderRace hammers one slot from a publisher
// goroutine while a reader samples it: every successful read must
// decode to a single publish's payload (all words from one frame), and
// the observed frame ordinals must be non-decreasing.
func TestTelemetryPublisherReaderRace(t *testing.T) {
	const words = 8
	s := telemTestSeg(t, words)
	slot := s.ServerTelemetry()

	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		p := slot.Publisher()
		pay := make([]uint64, words)
		for v := uint64(1); v <= 5000 || !stop.Load(); v++ {
			for i := range pay {
				pay[i] = v
			}
			p.Publish(pay)
		}
	}()

	buf := make([]uint64, words)
	var lastSeq uint64
	reads := 0
	for reads < 20000 {
		seq, ok := slot.Read(buf)
		if !ok {
			continue
		}
		reads++
		for i := 1; i < words; i++ {
			if buf[i] != buf[0] {
				t.Fatalf("mixed frame surfaced: %v (seq %d)", buf, seq)
			}
		}
		if seq < lastSeq {
			t.Fatalf("frame ordinal went backwards: %d -> %d", lastSeq, seq)
		}
		lastSeq = seq
	}
	stop.Store(true)
	wg.Wait()
}
