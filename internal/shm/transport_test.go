package shm

import (
	"errors"
	"testing"
	"time"

	"repro/internal/dss"
	"repro/internal/mp"
	"repro/internal/spec"
)

func testSeg() *Seg {
	return NewMemSeg(Layout{Clients: 2, Slots: 8, SlotWords: FrameSlotWords})
}

func TestReqFrameRoundTrip(t *testing.T) {
	typ := dss.QueueType
	msgs := []mp.Msg{
		{Kind: mp.ReqPrep, Client: 1, Gen: 3, Seq: 17, Op: func() spec.Op {
			op := spec.Enqueue(42)
			op.Tag = 9
			return op
		}()},
		{Kind: mp.ReqPrep, Client: 0, Gen: 1, Seq: 2, Op: spec.Dequeue()},
		{Kind: mp.ReqExec, Client: 1, Gen: 3, Seq: 18},
		{Kind: mp.ReqResolve, Client: 0, Gen: 0, Seq: 1},
		{Kind: mp.ReqInvoke, Client: 1, Gen: 2, Seq: 5, Op: spec.Enqueue(7)},
	}
	var buf [reqFrameWords]uint64
	for _, m := range msgs {
		encodeReq(buf[:], m, typ)
		got := decodeReq(buf[:], typ)
		if got.Kind != m.Kind || got.Client != m.Client || got.Gen != m.Gen || got.Seq != m.Seq {
			t.Fatalf("envelope: got %+v, want %+v", got, m)
		}
		if got.Op.Sym != m.Op.Sym || got.Op.Arg != m.Op.Arg || got.Op.Tag != m.Op.Tag {
			t.Fatalf("op: got %+v, want %+v", got.Op, m.Op)
		}
	}
}

// TestKeyedFrameRoundTrip proves the widened frames carry the two-word
// keyed contract: a keyed op's second word (put's value, mcas's packed
// pair) survives the request frame via the type's Key/Arg lowering, and
// two-word responses (V2, InnerVal2) plus keyed resolved ops (pOpKey)
// survive the reply frame.
func TestKeyedFrameRoundTrip(t *testing.T) {
	typ := dss.MapType
	msgs := []mp.Msg{
		{Kind: mp.ReqPrep, Client: 1, Gen: 3, Seq: 17, Op: func() spec.Op {
			op := spec.Put(7, 4200)
			op.Tag = 9
			return op
		}()},
		{Kind: mp.ReqPrep, Client: 0, Gen: 1, Seq: 2, Op: spec.Get(12)},
		{Kind: mp.ReqInvoke, Client: 1, Gen: 2, Seq: 5, Op: spec.Del(3)},
		{Kind: mp.ReqPrep, Client: 0, Gen: 2, Seq: 6, Op: spec.MCAS(8, 100, 200)},
	}
	var buf [reqFrameWords]uint64
	for _, m := range msgs {
		encodeReq(buf[:], m, typ)
		got := decodeReq(buf[:], typ)
		if got.Kind != m.Kind || got.Client != m.Client || got.Gen != m.Gen || got.Seq != m.Seq {
			t.Fatalf("envelope: got %+v, want %+v", got, m)
		}
		if got.Op.Sym != m.Op.Sym || got.Op.Arg != m.Op.Arg ||
			got.Op.Arg2 != m.Op.Arg2 || got.Op.Tag != m.Op.Tag {
			t.Fatalf("op: got %+v, want %+v", got.Op, m.Op)
		}
	}

	mcasOp := spec.MCAS(8, 100, 200)
	mcasOp.Tag = 31
	reps := []mp.Reply{
		{Resp: spec.ValResp2(1, 100), Gen: 4},
		{Resp: spec.ValResp2(0, 1<<40), Gen: 4},
		{Resp: spec.PairResp(true, mcasOp, spec.ValResp2(0, 77)), Gen: 2},
		{Resp: spec.PairResp(true, spec.Put(9, 900), spec.AckResp()), Gen: 2},
	}
	var rbuf [replyFrameWords]uint64
	for i, rep := range reps {
		encodeReply(rbuf[:], uint64(200+i), rep, typ)
		got, echo := decodeReply(rbuf[:], typ)
		if echo != uint64(200+i) {
			t.Fatalf("reply %d: echo %d", i, echo)
		}
		if got.Err != nil {
			t.Fatalf("reply %d: unexpected error %v", i, got.Err)
		}
		if got.Resp != rep.Resp {
			t.Fatalf("reply %d: resp %+v, want %+v", i, got.Resp, rep.Resp)
		}
	}
}

func TestReplyFrameRoundTrip(t *testing.T) {
	typ := dss.StackType
	pushOp := spec.Push(5)
	pushOp.Tag = 31
	reps := []mp.Reply{
		{Resp: spec.AckResp(), Gen: 4},
		{Resp: spec.ValResp(1 << 40), Gen: 4},
		{Resp: spec.EmptyResp(), Gen: 9},
		{Resp: spec.PairResp(true, pushOp, spec.AckResp()), Gen: 2},
		{Resp: spec.PairResp(false, spec.Op{}, spec.BottomResp()), Gen: 2},
		{Gen: 5, Err: &mp.DownError{Gen: 5}},
		{Gen: 6, Err: &mp.DownError{Gen: 6, Stale: true}},
		{Gen: 7, Err: mp.ErrSuperseded},
		{Gen: 7, Err: errors.New("anything else")},
	}
	var buf [replyFrameWords]uint64
	for i, rep := range reps {
		encodeReply(buf[:], uint64(100+i), rep, typ)
		got, echo := decodeReply(buf[:], typ)
		if echo != uint64(100+i) {
			t.Fatalf("reply %d: echo %d", i, echo)
		}
		if got.Gen != rep.Gen {
			t.Fatalf("reply %d: gen %d, want %d", i, got.Gen, rep.Gen)
		}
		switch {
		case rep.Err == nil:
			if got.Err != nil {
				t.Fatalf("reply %d: unexpected error %v", i, got.Err)
			}
			if got.Resp != rep.Resp {
				t.Fatalf("reply %d: resp %+v, want %+v", i, got.Resp, rep.Resp)
			}
		case errors.Is(rep.Err, mp.ErrServerDown):
			var want, have *mp.DownError
			if !errors.As(rep.Err, &want) || !errors.As(got.Err, &have) ||
				want.Gen != have.Gen || want.Stale != have.Stale {
				t.Fatalf("reply %d: down error %v, want %v", i, got.Err, rep.Err)
			}
		case errors.Is(rep.Err, mp.ErrSuperseded):
			if !errors.Is(got.Err, mp.ErrSuperseded) {
				t.Fatalf("reply %d: %v, want superseded", i, got.Err)
			}
		default:
			if !errors.Is(got.Err, ErrRemote) {
				t.Fatalf("reply %d: %v, want ErrRemote", i, got.Err)
			}
			if mp.Retryable(got.Err) {
				t.Fatalf("reply %d: ErrRemote must be definite", i)
			}
		}
	}
}

// serveInline pumps the server side until stop is closed.
func serveInline(s *ServerConn, apply func(mp.Msg) mp.Reply, stop chan struct{}) {
	for {
		select {
		case <-stop:
			return
		default:
		}
		if s.Sweep(apply) == 0 {
			time.Sleep(20 * time.Microsecond)
		}
	}
}

func TestClientConnRoundTrip(t *testing.T) {
	seg := testSeg()
	typ := dss.QueueType
	srv := NewServerConn(seg, typ)
	stop := make(chan struct{})
	defer close(stop)
	go serveInline(srv, func(m mp.Msg) mp.Reply {
		return mp.Reply{Resp: spec.ValResp(m.Op.Arg + 1), Gen: m.Gen}
	}, stop)

	c := NewClientConn(seg, 0, typ)
	c.Timeout = time.Second
	for seq := uint64(1); seq <= 10; seq++ {
		rep := c.RoundTrip(mp.Msg{Kind: mp.ReqInvoke, Gen: 2, Seq: seq, Op: spec.Enqueue(seq * 10)})
		if rep.Err != nil {
			t.Fatal(rep.Err)
		}
		if rep.Resp.V != seq*10+1 {
			t.Fatalf("seq %d: got %d", seq, rep.Resp.V)
		}
	}
}

func TestClientConnTimesOutOnSilentServer(t *testing.T) {
	seg := testSeg()
	c := NewClientConn(seg, 0, dss.QueueType)
	c.Timeout = 30 * time.Millisecond
	start := time.Now()
	rep := c.RoundTrip(mp.Msg{Kind: mp.ReqResolve, Seq: 1})
	if !errors.Is(rep.Err, mp.ErrTimeout) {
		t.Fatalf("got %v, want ErrTimeout", rep.Err)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("timeout took %v", el)
	}
}

// TestClientConnDiscardsStaleEcho: replies answering earlier attempts
// (the client already timed out on them) must be drained, not returned.
func TestClientConnDiscardsStaleEcho(t *testing.T) {
	seg := testSeg()
	typ := dss.QueueType
	// Pre-publish a reply echoing seq 1 — the lost answer to a previous
	// attempt.
	var stale [replyFrameWords]uint64
	encodeReply(stale[:], 1, mp.Reply{Resp: spec.ValResp(666), Gen: 1}, typ)
	seg.RepRing(0).Producer().TrySend(stale[:])

	srv := NewServerConn(seg, typ)
	stop := make(chan struct{})
	defer close(stop)
	go serveInline(srv, func(m mp.Msg) mp.Reply {
		return mp.Reply{Resp: spec.ValResp(m.Seq), Gen: 1}
	}, stop)

	c := NewClientConn(seg, 0, typ)
	c.Timeout = time.Second
	rep := c.RoundTrip(mp.Msg{Kind: mp.ReqResolve, Seq: 2})
	if rep.Err != nil {
		t.Fatal(rep.Err)
	}
	if rep.Resp.V != 2 {
		t.Fatalf("got %d — the stale echo leaked through", rep.Resp.V)
	}
}

// TestServerConnRedelivery: the server consumes a request only after
// replying, so a server "killed" after Peek re-serves the same request
// on restart — the generation fence upstream makes that harmless.
func TestServerConnRedelivery(t *testing.T) {
	seg := testSeg()
	typ := dss.QueueType
	var req [reqFrameWords]uint64
	encodeReq(req[:], mp.Msg{Kind: mp.ReqExec, Client: 0, Gen: 1, Seq: 4}, typ)
	seg.ReqRing(0).Producer().TrySend(req[:])

	// First life: sees the request, dies before Advance (we just drop the
	// conn without advancing by making apply panic-free and not sweeping).
	first := NewServerConn(seg, typ)
	var buf [reqFrameWords]uint64
	if !first.req[0].Peek(buf[:]) {
		t.Fatal("request not visible")
	}

	// Second life: a fresh ServerConn must see the same request.
	second := NewServerConn(seg, typ)
	served := second.Sweep(func(m mp.Msg) mp.Reply {
		if m.Seq != 4 {
			t.Fatalf("redelivered seq %d, want 4", m.Seq)
		}
		return mp.Reply{Gen: 2, Err: &mp.DownError{Gen: 2, Stale: true}}
	})
	if served != 1 {
		t.Fatalf("served %d, want 1", served)
	}
	rep, echo := mustRecvReply(t, seg, 0, typ)
	if echo != 4 || !errors.Is(rep.Err, mp.ErrServerDown) {
		t.Fatalf("echo %d err %v", echo, rep.Err)
	}
}

func mustRecvReply(t *testing.T, seg *Seg, id int, typ dss.Type) (mp.Reply, uint64) {
	t.Helper()
	var buf [replyFrameWords]uint64
	if !seg.RepRing(id).Consumer().TryRecv(buf[:]) {
		t.Fatal("no reply published")
	}
	rep, echo := decodeReply(buf[:], typ)
	return rep, echo
}

// TestRetryClientOverRings drives the real retry discipline end to end
// over a ring pair against a real engine — in-process, but through the
// exact frames the multi-process deployment uses.
func TestRetryClientOverRings(t *testing.T) {
	seg := testSeg()
	typ := dss.QueueType
	eng, err := mp.NewEngine(mp.EngineConfig{
		Clients:  2,
		Capacity: 64,
		Init:     spec.NewQueue(),
		Ops:      []spec.Op{spec.Enqueue(0), spec.Dequeue()},
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.NewGeneration()
	srv := NewServerConn(seg, typ)
	stop := make(chan struct{})
	defer close(stop)
	go serveInline(srv, eng.Apply, stop)

	conn := NewClientConn(seg, 0, typ)
	conn.Timeout = time.Second
	rc := mp.NewRetryClient(conn, 0, mp.RetryPolicy{Seed: 7})
	for v := uint64(1); v <= 5; v++ {
		if _, err := rc.Do(spec.Enqueue(v)); err != nil {
			t.Fatal(err)
		}
	}
	for v := uint64(1); v <= 5; v++ {
		resp, err := rc.Do(spec.Dequeue())
		if err != nil {
			t.Fatal(err)
		}
		if resp.Kind != spec.Val || resp.V != v {
			t.Fatalf("dequeue %d: got %v", v, resp)
		}
	}
	resp, err := rc.Do(spec.Dequeue())
	if err != nil {
		t.Fatal(err)
	}
	if resp.Kind != spec.Empty {
		t.Fatalf("drained queue returned %v", resp)
	}
}
