package shm

import "sync/atomic"

// Telemetry slots: the live metrics plane. Each process owns one slot
// in the segment's telemetry region (server first, then one per
// client) and periodically publishes its flattened obs snapshot into
// it. The slot reuses the ring frames' seqlock discipline — header
// hdrWriting(n) stored before the payload, hdrComplete(n) after — so a
// reader either sees a complete frame or no frame, and a publisher
// SIGKILLed between the two header stores leaves the slot ignorable
// (odd header) rather than torn. There is no ordering handshake beyond
// the header word: publishes are wait-free (a fixed number of atomic
// stores, no loops, no fences beyond the stores themselves) and the
// single-writer-per-slot discipline makes the odd/even protocol
// sufficient.
//
// A respawned process re-adopts its slot by reading the header and
// continuing the frame numbering, so a reader's "new frame" detection
// (the returned sequence number) keeps advancing across the publisher
// being killed and restarted.

// TelemetrySlot is a view of one process's telemetry slot.
type TelemetrySlot struct {
	w []uint64 // header word + payload capacity
}

// HasTelemetry reports whether the segment was formatted with a
// telemetry region.
func (s *Seg) HasTelemetry() bool { return s.l.telemSlotWords() > 0 }

// TelemWords reports the per-slot payload capacity in words.
func (s *Seg) TelemWords() int { return s.l.TelemWords }

func (s *Seg) telemSlot(i int) *TelemetrySlot {
	stride := s.l.telemSlotWords()
	if stride == 0 {
		return nil
	}
	base := s.l.telemBase() + i*stride
	return &TelemetrySlot{w: s.w[base : base+stride]}
}

// ServerTelemetry returns the server's telemetry slot (nil when the
// segment has no telemetry region).
func (s *Seg) ServerTelemetry() *TelemetrySlot { return s.telemSlot(0) }

// ClientTelemetry returns client i's telemetry slot (nil when the
// segment has no telemetry region).
func (s *Seg) ClientTelemetry(i int) *TelemetrySlot {
	if i < 0 || i >= s.l.Clients {
		panic("shm: client index out of range")
	}
	return s.telemSlot(1 + i)
}

// TelemetryPublisher is the slot owner's publishing handle.
type TelemetryPublisher struct {
	slot *TelemetrySlot
	next uint64 // frame number of the next publish
}

// Publisher builds the owning process's publishing handle, adopting the
// frame numbering already in the slot: a fresh slot starts at frame 0,
// a slot whose previous owner was killed after completing frame n
// continues at n+1, and one killed mid-publish of frame n rewrites
// frame n (its odd header was never readable anyway).
func (s *TelemetrySlot) Publisher() *TelemetryPublisher {
	p := &TelemetryPublisher{slot: s}
	switch h := atomic.LoadUint64(&s.w[0]); {
	case h == 0:
		p.next = 0
	case h&1 == 1: // hdrWriting(n) = 2n+1
		p.next = (h - 1) / 2
	default: // hdrComplete(n) = 2n+2
		p.next = h / 2
	}
	return p
}

// Publish stores one snapshot frame. payload longer than the slot's
// capacity is truncated (a geometry mismatch the reader detects by
// length); shorter payloads zero-fill, so stale tail words from a
// larger earlier frame never leak into a decode.
func (p *TelemetryPublisher) Publish(payload []uint64) {
	w := p.slot.w
	atomic.StoreUint64(&w[0], hdrWriting(p.next))
	n := len(w) - 1
	if len(payload) < n {
		n = len(payload)
	}
	for i := 0; i < n; i++ {
		atomic.StoreUint64(&w[1+i], payload[i])
	}
	for i := n; i < len(w)-1; i++ {
		atomic.StoreUint64(&w[1+i], 0)
	}
	atomic.StoreUint64(&w[0], hdrComplete(p.next))
	p.next++
}

// Read copies the latest complete frame into buf (which should be the
// slot's payload capacity long) and returns its 1-based frame ordinal.
// ok is false when no frame has ever completed or the copy raced a
// concurrent publish — the caller keeps its previous frame and retries
// on its next sampling tick, so readers never block publishers.
func (s *TelemetrySlot) Read(buf []uint64) (seq uint64, ok bool) {
	h1 := atomic.LoadUint64(&s.w[0])
	if h1 == 0 || h1&1 == 1 {
		return 0, false
	}
	n := len(s.w) - 1
	if len(buf) < n {
		n = len(buf)
	}
	for i := 0; i < n; i++ {
		buf[i] = atomic.LoadUint64(&s.w[1+i])
	}
	if atomic.LoadUint64(&s.w[0]) != h1 {
		return 0, false
	}
	return h1 / 2, true
}
