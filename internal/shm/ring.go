// Package shm is the process-separation layer: single-producer
// single-consumer message rings over words that two OS processes share
// (a memory-mapped file), a segment format that packs one ring pair per
// client next to a supervisor-readable status page, and an mp.Transport
// over a ring pair so RetryClients in one process can drive an Engine in
// another.
//
// The crash adversary here is the operating system — kill -9, not a
// simulated cache — so every protocol in this package must tolerate a
// writer vanishing between any two stores:
//
//   - Slot headers are seqlock-style: a frame's header goes odd (writing)
//     before any payload word is stored and even (complete, carrying the
//     frame number) only after all of them. A reader accepts a frame only
//     when it observes the exact completion value before AND after copying
//     the payload, so a torn frame — a writer killed mid-store — is never
//     surfaced, only ignored until the restarted writer rewrites it.
//   - Cursors (tail, head) live on their own cache lines in the shared
//     words, so a restarted producer or consumer adopts them instead of
//     starting over. A producer killed after completing a frame but
//     before publishing tail is healed on attach: tail is clamped up to
//     head, because a consumer can only have consumed complete frames.
//
// Rings carry no persistence obligations: the segment file is
// coordination memory, never msynced, and a lost machine loses it —
// exactly like the network. Durability lives in the pmem heap file; the
// generation fence (mp.Msg.Gen) rejects requests that a ring redelivers
// across a server restart.
package shm

import "sync/atomic"

// wordsPerLine is the cache-line geometry the segment is padded to,
// matching pmem.WordsPerLine (8 words x 8 bytes = 64-byte lines).
const wordsPerLine = 8

// Ring header geometry: the producer cursor (tail) and consumer cursor
// (head) each own a full cache line so the two sides never false-share.
const (
	ringTailWord = 0
	ringHeadWord = wordsPerLine
	ringHdrWords = 2 * wordsPerLine
)

// Ring is an SPSC frame ring over caller-provided shared words. The
// zero-filled state is a valid empty ring, so formatting a fresh segment
// is just zeroing. Ring itself is a view: any number of processes may
// construct one over the same words, but at most one live Producer and
// one live Consumer may use it at a time (enforced by the process
// harness, which runs one server and one client per pair).
type Ring struct {
	w         []uint64
	slots     int
	slotWords int
}

// RingWords returns the shared words a ring with the given geometry
// occupies.
func RingWords(slots, slotWords int) int {
	return ringHdrWords + slots*slotWords
}

// NewRing views a ring with the given geometry over w, which must hold at
// least RingWords(slots, slotWords) words. slotWords is 1 header word
// plus the frame payload, padded by the caller to a line multiple.
func NewRing(w []uint64, slots, slotWords int) *Ring {
	if slots < 1 || slotWords < 2 || len(w) < RingWords(slots, slotWords) {
		panic("shm: bad ring geometry")
	}
	return &Ring{w: w[:RingWords(slots, slotWords)], slots: slots, slotWords: slotWords}
}

// PayloadWords is the frame capacity of each slot.
func (r *Ring) PayloadWords() int { return r.slotWords - 1 }

// slot returns the slot words (header first) for frame number n.
func (r *Ring) slot(n uint64) []uint64 {
	i := int(n % uint64(r.slots))
	base := ringHdrWords + i*r.slotWords
	return r.w[base : base+r.slotWords]
}

// hdrComplete is the seqlock completion value of frame n: even, unique
// per frame number, never zero (zero is the virgin slot).
func hdrComplete(n uint64) uint64 { return 2*n + 2 }

// hdrWriting is the seqlock in-progress value of frame n: odd, so a
// reader can never mistake it for any frame's completion.
func hdrWriting(n uint64) uint64 { return 2*n + 1 }

// Producer is the sending side of a ring. Obtain one per process via
// Ring.Producer; the constructor adopts the shared cursors, healing the
// kill-after-complete-before-publish window.
type Producer struct {
	r    *Ring
	next uint64
}

// Producer attaches the (single) producer, adopting the shared tail. If
// the previous producer was killed after completing a frame that the
// consumer already consumed but before publishing tail, head is ahead of
// tail; the consumed prefix is certainly complete, so tail is clamped up.
func (r *Ring) Producer() *Producer {
	t := atomic.LoadUint64(&r.w[ringTailWord])
	if h := atomic.LoadUint64(&r.w[ringHeadWord]); h > t {
		t = h
		atomic.StoreUint64(&r.w[ringTailWord], t)
	}
	return &Producer{r: r, next: t}
}

// TrySend publishes payload as the next frame; it reports false when the
// ring is full. The store order is the whole crash story: header odd,
// payload, header even-and-numbered. A SIGKILL between any two of those
// stores leaves a header that never matches the frame's completion value,
// which the consumer skips until a restarted producer — who adopts the
// same frame number — rewrites the slot from scratch.
func (p *Producer) TrySend(payload []uint64) bool {
	if len(payload) > p.r.PayloadWords() {
		panic("shm: frame exceeds slot payload")
	}
	head := atomic.LoadUint64(&p.r.w[ringHeadWord])
	if p.next >= head+uint64(p.r.slots) {
		return false
	}
	s := p.r.slot(p.next)
	atomic.StoreUint64(&s[0], hdrWriting(p.next))
	for i, v := range payload {
		atomic.StoreUint64(&s[1+i], v)
	}
	for i := len(payload); i < p.r.PayloadWords(); i++ {
		atomic.StoreUint64(&s[1+i], 0)
	}
	atomic.StoreUint64(&s[0], hdrComplete(p.next))
	p.next++
	atomic.StoreUint64(&p.r.w[ringTailWord], p.next)
	return true
}

// Consumer is the receiving side of a ring; obtain one per process via
// Ring.Consumer, which adopts the shared head cursor.
type Consumer struct {
	r    *Ring
	next uint64
}

// Consumer attaches the (single) consumer at the shared head.
func (r *Ring) Consumer() *Consumer {
	return &Consumer{r: r, next: atomic.LoadUint64(&r.w[ringHeadWord])}
}

// Peek copies the next frame's payload into buf and reports whether a
// complete frame was available. It does not advance: callers that must
// not lose a request across their own crash window (the server) call
// Advance only after fully handling the frame, accepting redelivery —
// which the generation fence makes harmless — over loss.
//
// The header is checked before and after the copy against the exact
// completion value of this frame number; an in-progress (odd), stale, or
// torn frame is reported as not-available, never surfaced.
func (c *Consumer) Peek(buf []uint64) bool {
	s := c.r.slot(c.next)
	want := hdrComplete(c.next)
	if atomic.LoadUint64(&s[0]) != want {
		return false
	}
	n := len(buf)
	if n > c.r.PayloadWords() {
		n = c.r.PayloadWords()
	}
	for i := 0; i < n; i++ {
		buf[i] = atomic.LoadUint64(&s[1+i])
	}
	return atomic.LoadUint64(&s[0]) == want
}

// Advance consumes the frame Peek last reported, publishing the new head.
func (c *Consumer) Advance() {
	c.next++
	atomic.StoreUint64(&c.r.w[ringHeadWord], c.next)
}

// TryRecv is Peek+Advance for callers (the client side) whose frames are
// idempotent to lose after reading.
func (c *Consumer) TryRecv(buf []uint64) bool {
	if !c.Peek(buf) {
		return false
	}
	c.Advance()
	return true
}
