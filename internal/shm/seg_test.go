package shm

import (
	"os"
	"path/filepath"
	"testing"
)

func TestSegLayoutAndStatus(t *testing.T) {
	l := Layout{Clients: 3, Slots: 4, SlotWords: FrameSlotWords}
	s := NewMemSeg(l)
	if got := s.Layout(); got != l {
		t.Fatalf("layout %+v, want %+v", got, l)
	}

	sv := s.Server()
	sv.SetState(StateServing)
	sv.SetGen(7)
	sv.SetPID(1234)
	sv.Beat()
	sv.IncDirty()
	if sv.State() != StateServing || sv.Gen() != 7 || sv.PID() != 1234 ||
		sv.Heartbeat() != 1 || sv.Dirty() != 1 {
		t.Fatal("server status round trip failed")
	}
	if sv.WedgeRequested() {
		t.Fatal("wedge requested on a fresh segment")
	}
	sv.RequestWedge()
	if !sv.WedgeRequested() {
		t.Fatal("wedge request lost")
	}

	for i := 0; i < l.Clients; i++ {
		cl := s.Client(i)
		cl.SetOps(uint64(10 * (i + 1)))
		cl.SetPID(100 + i)
		cl.Beat()
		if i == 2 {
			cl.SetDone()
		}
	}
	for i := 0; i < l.Clients; i++ {
		cl := s.Client(i)
		if cl.Ops() != uint64(10*(i+1)) || cl.PID() != 100+i || cl.Heartbeat() != 1 {
			t.Fatalf("client %d status round trip failed", i)
		}
		if cl.Done() != (i == 2) {
			t.Fatalf("client %d done flag wrong", i)
		}
	}
}

// TestSegRegionsDisjoint floods every ring with distinct frames and
// checks nothing bled into a neighboring ring or a status line.
func TestSegRegionsDisjoint(t *testing.T) {
	l := Layout{Clients: 3, Slots: 2, SlotWords: FrameSlotWords}
	s := NewMemSeg(l)
	for i := 0; i < l.Clients; i++ {
		pq := s.ReqRing(i).Producer()
		pr := s.RepRing(i).Producer()
		for n := uint64(0); n < uint64(l.Slots); n++ {
			if !pq.TrySend([]uint64{uint64(i)<<32 | n, 1}) ||
				!pr.TrySend([]uint64{uint64(i)<<32 | n, 2}) {
				t.Fatalf("ring %d frame %d rejected", i, n)
			}
		}
	}
	buf := make([]uint64, 2)
	for i := 0; i < l.Clients; i++ {
		cq := s.ReqRing(i).Consumer()
		cr := s.RepRing(i).Consumer()
		for n := uint64(0); n < uint64(l.Slots); n++ {
			if !cq.TryRecv(buf) || buf[0] != uint64(i)<<32|n || buf[1] != 1 {
				t.Fatalf("req ring %d frame %d corrupted: %v", i, n, buf)
			}
			if !cr.TryRecv(buf) || buf[0] != uint64(i)<<32|n || buf[1] != 2 {
				t.Fatalf("rep ring %d frame %d corrupted: %v", i, n, buf)
			}
		}
	}
	if s.Server().Heartbeat() != 0 || s.Server().Ops() != 0 {
		t.Fatal("ring traffic bled into the server status line")
	}
	for i := 0; i < l.Clients; i++ {
		if s.Client(i).Ops() != 0 {
			t.Fatalf("ring traffic bled into client %d status", i)
		}
	}
}

func TestSegTicketMonotonic(t *testing.T) {
	s := NewMemSeg(Layout{Clients: 1, Slots: 2, SlotWords: FrameSlotWords})
	last := int64(0)
	for i := 0; i < 100; i++ {
		tk := s.Ticket()
		if tk <= last {
			t.Fatalf("ticket %d after %d", tk, last)
		}
		last = tk
	}
}

func TestSegViewValidation(t *testing.T) {
	if _, err := ViewSeg(make([]uint64, 8)); err == nil {
		t.Fatal("tiny mapping accepted")
	}
	w := make([]uint64, 4096)
	if _, err := ViewSeg(w); err == nil {
		t.Fatal("zeroed mapping accepted as a segment")
	}
	l := Layout{Clients: 1, Slots: 2, SlotWords: FrameSlotWords}
	if _, err := InitSeg(w, l); err != nil {
		t.Fatal(err)
	}
	if _, err := ViewSeg(w); err != nil {
		t.Fatalf("valid segment rejected: %v", err)
	}
	// A header that names more words than the mapping holds is rejected.
	short := make([]uint64, clientLinesWord)
	copy(short, w[:clientLinesWord])
	if _, err := ViewSeg(short); err == nil {
		t.Fatal("truncated segment accepted")
	}
}

func TestSegFileBacked(t *testing.T) {
	if !Supported() {
		t.Skip("file-backed segments unsupported on this platform")
	}
	path := filepath.Join(t.TempDir(), "seg")
	l := Layout{Clients: 2, Slots: 4, SlotWords: FrameSlotWords}
	s, err := CreateSeg(path, l)
	if err != nil {
		t.Fatal(err)
	}
	// A second view of the same file (what another process would map)
	// sees the first view's writes.
	s2, err := OpenSeg(path)
	if err != nil {
		t.Fatal(err)
	}
	s.Server().SetGen(5)
	if got := s2.Server().Gen(); got != 5 {
		t.Fatalf("second mapping sees gen %d, want 5", got)
	}
	p := s.ReqRing(1).Producer()
	if !p.TrySend([]uint64{9, 8, 7}) {
		t.Fatal("send failed")
	}
	buf := make([]uint64, 3)
	if !s2.ReqRing(1).Consumer().TryRecv(buf) || buf[0] != 9 {
		t.Fatalf("cross-mapping frame: got %v", buf)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("segment file vanished: %v", err)
	}
}
