package vtime

import (
	"testing"
	"time"

	"repro/internal/pmem"
)

func newHeap(t *testing.T) *pmem.Heap {
	t.Helper()
	h, err := pmem.New(pmem.Config{Words: 1 << 12, Mode: pmem.Tracked})
	if err != nil {
		t.Fatalf("pmem.New: %v", err)
	}
	return h
}

// persistLoop makes a worker that performs rounds of store+persist on its
// own cache line — the shape of an uncontended detectable operation.
func persistLoop(h *pmem.Heap, line pmem.Addr, rounds int) func() {
	return func() {
		for r := 0; r < rounds; r++ {
			h.Store(line, uint64(r+1))
			h.Persist(line)
		}
	}
}

// TestSingleWorkerCharges checks the cost model arithmetic end to end:
// one worker, known step sequence, exact expected virtual time.
func TestSingleWorkerCharges(t *testing.T) {
	h := newHeap(t)
	base, err := h.Alloc(pmem.WordsPerLine)
	if err != nil {
		t.Fatal(err)
	}
	costs := Costs{AccessNS: 100, FlushNS: 300}
	rounds := 10
	elapsed := Run(h, costs, []func(){persistLoop(h, base, rounds)})
	// Per round: Store (100) + Persist = Flush (300/4=75) + Fence (300-75=225).
	want := time.Duration(rounds * (100 + 75 + 225))
	if elapsed != want {
		t.Fatalf("elapsed = %v, want %v", elapsed, want)
	}
}

// TestStallsOverlap is the reason this package exists: two workers doing
// independent persists must take the same virtual time as one, because
// their stalls overlap on separate simulated cores — even though the host
// executes them serially.
func TestStallsOverlap(t *testing.T) {
	h := newHeap(t)
	costs := Costs{AccessNS: 100, FlushNS: 300}
	rounds := 50

	lineA, err := h.Alloc(pmem.WordsPerLine)
	if err != nil {
		t.Fatal(err)
	}
	one := Run(h, costs, []func(){persistLoop(h, lineA, rounds)})

	lines := make([]pmem.Addr, 4)
	for i := range lines {
		lines[i], err = h.Alloc(pmem.WordsPerLine)
		if err != nil {
			t.Fatal(err)
		}
	}
	workers := make([]func(), len(lines))
	for i, ln := range lines {
		workers[i] = persistLoop(h, ln, rounds)
	}
	four := Run(h, costs, workers)

	if four != one {
		t.Fatalf("4 independent workers took %v, 1 worker took %v; want equal (perfect overlap)", four, one)
	}
}

// TestDeterministic runs a contended workload (all workers CAS the same
// line) repeatedly and requires bit-identical virtual elapsed times.
func TestDeterministic(t *testing.T) {
	run := func() time.Duration {
		h := newHeap(t)
		line, err := h.Alloc(pmem.WordsPerLine)
		if err != nil {
			t.Fatal(err)
		}
		workers := make([]func(), 3)
		for i := range workers {
			workers[i] = func() {
				for r := 0; r < 20; r++ {
					for {
						old := h.Load(line)
						if h.CompareAndSwap(line, old, old+1) {
							break
						}
					}
					h.Persist(line)
				}
			}
		}
		return Run(h, DefaultCosts(), workers)
	}
	first := run()
	for i := 0; i < 3; i++ {
		if got := run(); got != first {
			t.Fatalf("run %d: elapsed %v != first run %v", i+1, got, first)
		}
	}
	if first == 0 {
		t.Fatal("contended run reported zero elapsed time")
	}
}

// TestContentionCosts checks that shared-line CAS traffic is slower in
// virtual time than the same work spread across private lines — the
// signal the sharded benchmark relies on.
func TestContentionCosts(t *testing.T) {
	costs := DefaultCosts()
	rounds := 30
	n := 4

	mkWorkers := func(h *pmem.Heap, lineFor func(i int) pmem.Addr) []func() {
		workers := make([]func(), n)
		for i := range workers {
			line := lineFor(i)
			workers[i] = func() {
				for r := 0; r < rounds; r++ {
					for {
						old := h.Load(line)
						if h.CompareAndSwap(line, old, old+1) {
							break
						}
					}
					h.Persist(line)
				}
			}
		}
		return workers
	}

	hShared := newHeap(t)
	shared, err := hShared.Alloc(pmem.WordsPerLine)
	if err != nil {
		t.Fatal(err)
	}
	sharedElapsed := Run(hShared, costs, mkWorkers(hShared, func(int) pmem.Addr { return shared }))

	hPriv := newHeap(t)
	priv := make([]pmem.Addr, n)
	for i := range priv {
		priv[i], err = hPriv.Alloc(pmem.WordsPerLine)
		if err != nil {
			t.Fatal(err)
		}
	}
	privElapsed := Run(hPriv, costs, mkWorkers(hPriv, func(i int) pmem.Addr { return priv[i] }))

	if sharedElapsed <= privElapsed {
		t.Fatalf("shared-line run %v not slower than private-line run %v", sharedElapsed, privElapsed)
	}
}

// TestUnregisteredGoroutinesPassThrough ensures setup/drain code running
// outside Run is unaffected by a leftover gate (Run removes it), and that
// heap use by the test goroutine during a Run... cannot happen here, but
// at minimum the heap is usable after Run returns.
func TestUnregisteredGoroutinesPassThrough(t *testing.T) {
	h := newHeap(t)
	line, err := h.Alloc(pmem.WordsPerLine)
	if err != nil {
		t.Fatal(err)
	}
	Run(h, DefaultCosts(), []func(){func() { h.Store(line, 7) }})
	if got := h.Load(line); got != 7 {
		t.Fatalf("post-run Load = %d, want 7", got)
	}
	h.Store(line, 8)
	if got := h.Load(line); got != 8 {
		t.Fatalf("post-run Store/Load = %d, want 8", got)
	}
}
