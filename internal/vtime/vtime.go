// Package vtime measures throughput on a simulated multi-core machine.
//
// The paper's evaluation runs up to 20 hardware threads; this repository's
// CI hosts often have a single CPU. Wall-clock benchmarking on such a host
// serializes every thread's simulated stall (flush latency, access delay),
// so the numbers can never show the one thing Figure 5a is about: curves
// flattening against a shared head/tail bottleneck while per-thread costs
// overlap across cores. PR 1 removed the simulator's own contention; this
// package removes the host's.
//
// It does so with a conservative discrete-event simulation in virtual
// time. Worker goroutines run one at a time under the heap's Tracked-mode
// step gate (the same hook the systematic model checker uses); each
// primitive memory step charges its modeled latency to the calling
// worker's virtual clock, and the scheduler always resumes the worker
// whose clock is smallest. Steps therefore interleave exactly as they
// would on a machine where every simulated core advances at the modeled
// speed: stalls on distinct cores overlap, while true serialization —
// CAS retries, helping chains on a shared cache line — emerges from the
// data structure itself, not from the host's core count.
//
// Because scheduling depends only on the cost model and the workers'
// behavior (ties break by worker index), a vtime run is deterministic:
// the same build measures the same virtual throughput on any host. That
// is what makes committed benchmark-trajectory files (BENCH_sharded.json)
// regressable across machines.
package vtime

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/goid"
	"repro/internal/pmem"
)

// Costs is the per-step latency model, mirroring the Direct-mode cost
// model of pmem.Config: a base cost per memory operation and a persist
// cost split between CLWB issue and SFENCE drain (see pmem.Config's
// FlushLatency) so that batched flushes under one fence coalesce.
type Costs struct {
	// AccessNS is the modeled latency of one Load, Store, or CAS.
	AccessNS int64
	// FlushNS is the modeled latency of one full persist (CLWB+SFENCE).
	// A flush (CLWB issue) charges a quarter of it, a fence (SFENCE
	// drain) the rest, matching pmem's flushIssueDenom split.
	FlushNS int64
}

// DefaultCosts mirrors the calibration used by the Direct-mode figures:
// a 300 ns Optane persist and a 100 ns base memory operation.
func DefaultCosts() Costs { return Costs{AccessNS: 100, FlushNS: 300} }

// cost returns the virtual-ns charge for one step of the given kind.
func (c Costs) cost(kind pmem.StepKind) int64 {
	switch kind {
	case pmem.StepFlush:
		return c.FlushNS / 4
	case pmem.StepFence:
		return c.FlushNS - c.FlushNS/4
	default:
		return c.AccessNS
	}
}

// sched coordinates the workers: exactly one runs at a time; the rest are
// parked either at a step gate (about to take a memory step) or finished.
type sched struct {
	costs Costs

	mu  sync.Mutex
	ids map[uint64]int

	clock   []int64 // per-worker virtual ns
	pending []int64 // cost of the step the worker is parked at

	parkedCh chan int
	doneCh   chan int
	resume   []chan struct{}
}

// Run executes the workers to completion under min-virtual-clock
// scheduling on h (which must be in Tracked mode and quiescent) and
// returns the simulated elapsed time: the largest worker clock, i.e. the
// makespan of the run on a machine with one core per worker.
//
// Only primitive memory steps advance virtual time; Go-level computation
// between steps is charged nothing, exactly as Direct mode charges
// nothing for it. Run installs and removes the step gate itself.
func Run(h *pmem.Heap, costs Costs, workers []func()) time.Duration {
	if h.Mode() != pmem.Tracked {
		panic("vtime: Run requires a Tracked-mode heap")
	}
	if costs.AccessNS <= 0 || costs.FlushNS < 0 {
		// A zero-cost access would let a retry loop spin without its
		// clock advancing, starving every other worker forever.
		panic(fmt.Sprintf("vtime: costs must be positive, got %+v", costs))
	}
	if len(workers) == 0 {
		return 0
	}
	s := &sched{
		costs:    costs,
		ids:      map[uint64]int{},
		clock:    make([]int64, len(workers)),
		pending:  make([]int64, len(workers)),
		parkedCh: make(chan int),
		doneCh:   make(chan int),
		resume:   make([]chan struct{}, len(workers)),
	}
	for i := range workers {
		s.resume[i] = make(chan struct{})
	}
	h.SetStepGate(s.gate)
	defer h.SetStepGate(nil)

	live := make([]bool, len(workers))
	for i, w := range workers {
		live[i] = true
		go func(i int, w func()) {
			s.mu.Lock()
			s.ids[goid.ID()] = i
			s.mu.Unlock()
			// Park before the first instruction so startup is
			// deterministic: every worker begins from the same point.
			s.parkedCh <- i
			<-s.resume[i]
			defer func() { s.doneCh <- i }()
			w()
		}(i, w)
	}
	for range workers {
		<-s.parkedCh
	}

	remaining := len(workers)
	for remaining > 0 {
		// Resume the live worker with the smallest virtual clock; ties
		// break by index, keeping the schedule fully deterministic.
		next := -1
		for i := range workers {
			if live[i] && (next < 0 || s.clock[i] < s.clock[next]) {
				next = i
			}
		}
		// Charge the step the worker is about to take. (The initial
		// park has pending 0.)
		s.clock[next] += s.pending[next]
		s.pending[next] = 0
		s.resume[next] <- struct{}{}
		select {
		case idx := <-s.parkedCh:
			if idx != next {
				panic("vtime: a non-scheduled worker took a step")
			}
		case idx := <-s.doneCh:
			if idx != next {
				panic("vtime: a non-scheduled worker finished")
			}
			live[idx] = false
			remaining--
		}
	}

	var makespan int64
	for _, c := range s.clock {
		if c > makespan {
			makespan = c
		}
	}
	return time.Duration(makespan)
}

// gate is the heap hook: a registered worker records the cost of the step
// it is about to take and parks until the scheduler picks it; goroutines
// the scheduler does not know (setup, draining) pass through untouched.
func (s *sched) gate(kind pmem.StepKind) {
	s.mu.Lock()
	idx, ok := s.ids[goid.ID()]
	s.mu.Unlock()
	if !ok {
		return
	}
	s.pending[idx] = s.costs.cost(kind)
	s.parkedCh <- idx
	<-s.resume[idx]
}
