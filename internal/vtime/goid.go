package vtime

import (
	"bytes"
	"fmt"
	"runtime"
	"strconv"
)

// goid returns the current goroutine's id, parsed from the runtime stack
// header — the same device internal/systematic uses: the scheduler must
// map gate calls back to registered workers and the runtime offers no
// cheaper identity. runtime.Stack truncates at the buffer size, so the id
// is accepted only when the following "[state]:" token was captured too,
// growing the buffer until the header is known to be complete.
func goid() uint64 {
	buf := make([]byte, 64)
	for {
		n := runtime.Stack(buf, false)
		fields := bytes.Fields(buf[:n])
		if len(fields) >= 3 && bytes.Equal(fields[0], []byte("goroutine")) {
			id, err := strconv.ParseUint(string(fields[1]), 10, 64)
			if err == nil {
				return id
			}
		}
		if n < len(buf) {
			panic(fmt.Sprintf("vtime: cannot parse goroutine id from %q", buf[:n]))
		}
		buf = make([]byte, 2*len(buf))
	}
}
