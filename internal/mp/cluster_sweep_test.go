package mp

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/dss"
	"repro/internal/pmem"
	"repro/internal/spec"
)

// sweepPolicy keeps the failed-attempt loops short: the sweeps crash a
// server permanently mid-operation, and the client must give up fast.
func sweepPolicy(seed int64) RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 6,
		BackoffBase: 10 * time.Microsecond,
		BackoffMax:  50 * time.Microsecond,
		Seed:        seed,
	}
}

// drainCluster empties every shard of every server directly, returning
// the multiset of drained values (fails the test on duplicates).
func drainCluster(t *testing.T, cl *Cluster) map[uint64]bool {
	t.Helper()
	got := map[uint64]bool{}
	for s := 0; s < cl.Servers(); s++ {
		f := cl.Front(s)
		for j := 0; j < f.Shards(); j++ {
			for {
				resp, err := f.Shard(j).Invoke(0, dss.Op{Kind: dss.Remove})
				if err != nil {
					t.Fatalf("server %d shard %d: drain: %v", s, j, err)
				}
				if resp.Kind != dss.Val {
					break
				}
				if got[resp.Val] {
					t.Fatalf("server %d shard %d: value %d drained twice (resurrected)", s, j, resp.Val)
				}
				got[resp.Val] = true
			}
		}
	}
	return got
}

// TestClusterServerCrashPointSweep crashes server 0 at EVERY heap step of
// a claimed operation's server-side path — prep persist, per-shard scan
// hops (with their cursor moves and cross-shard prep abandonment), exec,
// recovery — while server 1 stays live, under both the drop-everything
// and keep-everything adversaries. After each crash the server restarts,
// a fresh client handle settles the claimed tag, and the DSS trichotomy
// must hold exactly: absent (the operation never happened and the drain
// proves it), prepped (Complete finishes it exactly once), or executed
// (the recorded response is recovered). Conservation over the drain
// doubles as the never-resurrected check for abandoned preps: a
// withdrawn prep that re-executed would surface as a duplicated or
// invented value. The sweep runs to exhaustion — every k up to the full
// step count of the uncrashed run — for an insert target and a remove
// target, and must observe all three settlements.
func TestClusterServerCrashPointSweep(t *testing.T) {
	const primes = 4
	advs := []struct {
		name string
		adv  pmem.Adversary
	}{
		{"DropAll", pmem.DropAll{}},
		{"KeepAll", pmem.KeepAll{}},
	}
	outcomes := map[settlement]int{}
	for _, target := range []string{"insert", "remove"} {
		for _, av := range advs {
			for k := uint64(1); ; k++ {
				name := fmt.Sprintf("%s/%s/step%d", target, av.name, k)
				done := false
				t.Run(name, func(t *testing.T) {
					cl := newTestCluster(t, dss.QueueType, 2, 2, 1)
					cc := NewClusterClient(cl, 0, sweepPolicy(int64(k)))
					// Prime both servers (insert round-robin alternates), so a
					// remove target finds values and the insert round-robin is
					// back on server 0 for the target.
					for v := uint64(1); v <= primes; v++ {
						if _, err := cc.Do(insertSpec(dss.QueueType, v)); err != nil {
							t.Fatalf("prime insert %d: %v", v, err)
						}
					}
					h0 := cl.Server(0).Heap()
					h0.ArmCrash(k)
					var op spec.Op
					if target == "insert" {
						op = insertSpec(dss.QueueType, 100)
					} else {
						op = removeSpec(dss.QueueType)
					}
					resp, err := cc.Do(op)
					if !h0.Crashed() {
						// k exceeds the operation's server-0 step count: the
						// sweep is exhausted for this configuration.
						h0.ArmCrash(0)
						if err != nil {
							t.Fatalf("uncrashed run failed: %v", err)
						}
						done = true
						want := map[uint64]bool{}
						for v := uint64(1); v <= primes; v++ {
							want[v] = true
						}
						if target == "insert" {
							want[100] = true
						} else {
							if resp.Kind != spec.Val || !want[resp.V] {
								t.Fatalf("remove returned %s", resp)
							}
							delete(want, resp.V)
						}
						got := drainCluster(t, cl)
						assertSameValues(t, got, want)
						return
					}
					if err == nil {
						t.Fatalf("Do succeeded with server 0 crashed at step %d", k)
					}
					if err := cl.Server(0).Restart(av.adv); err != nil {
						t.Fatalf("restart: %v", err)
					}

					// A fresh handle over the persisted cursor settles the
					// claimed tag: the trichotomy, observed before Complete
					// collapses "prepped" into "executed".
					cc2 := NewClusterClient(cl, 0, sweepPolicy(int64(k)+7))
					route := cc2.Route()
					if route < 0 {
						t.Fatalf("no persisted route after a claimed operation")
					}
					tag := cl.ClientHeap().Load(cl.cursorAddr(0) + ccTag)
					if tag != primes+1 {
						t.Fatalf("persisted tag %d, want %d", tag, primes+1)
					}
					st, _, _, err := cc2.Inner(route).settle(tag)
					if err != nil {
						t.Fatalf("settle: %v", err)
					}
					outcomes[st]++

					cop, resp, completed, err := cc2.Complete()
					if err != nil {
						t.Fatalf("Complete: %v", err)
					}
					if (st == settledAbsent) == completed {
						t.Fatalf("settle said %v but Complete reported completed=%v", st, completed)
					}
					want := map[uint64]bool{}
					for v := uint64(1); v <= primes; v++ {
						want[v] = true
					}
					if completed {
						if cop.Tag != tag {
							t.Fatalf("Complete resolved tag %d, want %d", cop.Tag, tag)
						}
						if target == "insert" {
							if resp.Kind != spec.Ack {
								t.Fatalf("completed insert responded %s", resp)
							}
							want[100] = true
						} else {
							if resp.Kind != spec.Val || !want[resp.V] {
								t.Fatalf("completed remove responded %s", resp)
							}
							delete(want, resp.V)
						}
					}
					got := drainCluster(t, cl)
					assertSameValues(t, got, want)
				})
				if done || t.Failed() {
					break
				}
			}
		}
	}
	for _, st := range []settlement{settledAbsent, settledPrepped, settledExecuted} {
		if outcomes[st] == 0 {
			t.Errorf("sweep never observed settlement %v (vacuous trichotomy)", st)
		}
	}
	t.Logf("settlements observed: absent=%d prepped=%d executed=%d",
		outcomes[settledAbsent], outcomes[settledPrepped], outcomes[settledExecuted])
}

func assertSameValues(t *testing.T, got, want map[uint64]bool) {
	t.Helper()
	for v := range want {
		if !got[v] {
			t.Errorf("value %d lost (inserted, never drained or removed)", v)
		}
	}
	for v := range got {
		if !want[v] {
			t.Errorf("value %d invented or executed twice", v)
		}
	}
}

// TestClusterClientCursorCrashPointSweep crashes the CLIENT at every heap
// step of the routing-cursor claim — the tag store, the route store, the
// round-robin store, the line persist, and every per-hop claim of a
// remove scan — then blacks out the whole system (every server's machine
// dies too), restarts the servers, and recovers through a fresh client
// handle. Under both adversaries the adopted cursor must be coherent:
// either the claim never persisted (the cursor still names the previous
// operation, whose settled outcome Complete re-reports, and the target
// operation is provably absent from the drain) or it persisted whole
// (tag and route share a cache line), in which case Complete applies the
// trichotomy to the target. The tag-first store order inside the claim
// makes every volatile interleaving safe, and this sweep is the
// exhaustive witness.
func TestClusterClientCursorCrashPointSweep(t *testing.T) {
	const primes = 4
	advs := []struct {
		name string
		adv  pmem.Adversary
	}{
		{"DropAll", pmem.DropAll{}},
		{"KeepAll", pmem.KeepAll{}},
	}
	sawLost, sawClaimed := false, false
	for _, av := range advs {
		for k := uint64(1); ; k++ {
			done := false
			t.Run(fmt.Sprintf("insert/%s/step%d", av.name, k), func(t *testing.T) {
				cl := newTestCluster(t, dss.QueueType, 2, 2, 1)
				cc := NewClusterClient(cl, 0, sweepPolicy(int64(k)))
				for v := uint64(1); v <= primes; v++ {
					if _, err := cc.Do(insertSpec(dss.QueueType, v)); err != nil {
						t.Fatalf("prime insert %d: %v", v, err)
					}
				}
				ch := cl.ClientHeap()
				ch.ArmCrash(k)
				var doErr error
				crashed := pmem.RunToCrash(func() {
					_, doErr = cc.Do(insertSpec(dss.QueueType, 100))
				})
				if !crashed {
					ch.ArmCrash(0)
					if doErr != nil {
						t.Fatalf("uncrashed run failed: %v", doErr)
					}
					done = true
					return
				}
				// Full-system blackout: the client machine died mid-claim and
				// takes every server with it.
				cl.StopAll()
				for s := 0; s < cl.Servers(); s++ {
					cl.Server(s).Heap().CrashNow()
				}
				for s := 0; s < cl.Servers(); s++ {
					if err := cl.Server(s).Restart(pmem.KeepAll{}); err != nil {
						t.Fatalf("restart server %d: %v", s, err)
					}
				}
				ch.Crash(av.adv)

				cc2 := NewClusterClient(cl, 0, sweepPolicy(int64(k)+7))
				tag := ch.Load(cl.cursorAddr(0) + ccTag)
				op, resp, completed, err := cc2.Complete()
				if err != nil {
					t.Fatalf("Complete: %v", err)
				}
				want := map[uint64]bool{}
				for v := uint64(1); v <= primes; v++ {
					want[v] = true
				}
				switch tag {
				case primes: // the claim line never persisted: cursor names prime #4
					sawLost = true
					if !completed {
						t.Fatalf("previous operation (tag %d) should settle executed", tag)
					}
					if op.Tag != primes || resp.Kind != spec.Ack {
						t.Fatalf("Complete re-reported (%s, %s), want prime insert", op, resp)
					}
					// The target never happened; re-issuing under a fresh tag
					// must be safe and exactly-once.
					if _, err := cc2.Do(insertSpec(dss.QueueType, 100)); err != nil {
						t.Fatalf("re-issue: %v", err)
					}
					want[100] = true
				case primes + 1: // the claim persisted whole
					sawClaimed = true
					if completed {
						// The claim persisted, but the client died before any
						// message left the machine: the prep cannot have landed.
						t.Fatalf("target completed (op %s resp %s) though its prep was never sent", op, resp)
					}
				default:
					t.Fatalf("adopted cursor tag %d: torn claim (want %d or %d)", tag, primes, primes+1)
				}
				got := drainCluster(t, cl)
				assertSameValues(t, got, want)
			})
			if done || t.Failed() {
				break
			}
		}
	}
	if !sawLost || !sawClaimed {
		t.Errorf("sweep vacuous: lost-claim=%v persisted-claim=%v", sawLost, sawClaimed)
	}

	// Remove over an EMPTY cluster: the scan claims every server in turn,
	// so the client can die on a mid-scan hop claim. Complete must then
	// resume the interrupted scan (the claimed hop settles executed-EMPTY)
	// and still report a full-cycle EMPTY.
	sawResumed := false
	for _, av := range advs {
		for k := uint64(1); ; k++ {
			done := false
			t.Run(fmt.Sprintf("remove-empty/%s/step%d", av.name, k), func(t *testing.T) {
				cl := newTestCluster(t, dss.QueueType, 2, 2, 1)
				cc := NewClusterClient(cl, 0, sweepPolicy(int64(k)))
				ch := cl.ClientHeap()
				ch.ArmCrash(k)
				var doErr error
				var resp spec.Resp
				crashed := pmem.RunToCrash(func() {
					resp, doErr = cc.Do(removeSpec(dss.QueueType))
				})
				if !crashed {
					ch.ArmCrash(0)
					if doErr != nil || resp.Kind != spec.Empty {
						t.Fatalf("uncrashed empty remove = (%s, %v)", resp, doErr)
					}
					done = true
					return
				}
				cl.StopAll()
				for s := 0; s < cl.Servers(); s++ {
					cl.Server(s).Heap().CrashNow()
				}
				for s := 0; s < cl.Servers(); s++ {
					if err := cl.Server(s).Restart(pmem.KeepAll{}); err != nil {
						t.Fatalf("restart server %d: %v", s, err)
					}
				}
				ch.Crash(av.adv)
				cc2 := NewClusterClient(cl, 0, sweepPolicy(int64(k)+7))
				op, cresp, completed, err := cc2.Complete()
				if err != nil {
					t.Fatalf("Complete: %v", err)
				}
				if completed {
					sawResumed = true
					if cresp.Kind != spec.Empty {
						t.Fatalf("resumed scan on an empty cluster returned %s", cresp)
					}
					if dop, ok := dss.QueueType.FromSpec(op); !ok || dop.Kind != dss.Remove {
						t.Fatalf("resumed op %s is not a remove", op)
					}
				}
				if got := drainCluster(t, cl); len(got) != 0 {
					t.Fatalf("empty cluster drained %d values", len(got))
				}
			})
			if done || t.Failed() {
				break
			}
		}
	}
	if !sawResumed {
		t.Errorf("sweep vacuous: no mid-scan hop claim was interrupted and resumed")
	}
}
