package mp

import (
	"testing"

	"repro/internal/dss"
	"repro/internal/pmem"
	"repro/internal/spec"
)

// newWireEngine builds an engine serving a concrete detectable object of
// typ through dss.NewWire instead of the universal construction — the
// EngineConfig.NewObject hook the object-generic refactor added.
func newWireEngine(t *testing.T, typ dss.Type, clients int) *Engine {
	t.Helper()
	e, err := NewEngine(EngineConfig{
		Clients:  clients,
		Capacity: 256,
		Words:    1 << 16,
		NewObject: func(h *pmem.Heap, n int) (Object, error) {
			obj, err := typ.New(h, 0, dss.Config{
				Threads: n, NodesPerThread: 64, ExtraNodes: 8, Descriptors: 8,
			})
			if err != nil {
				return nil, err
			}
			return dss.NewWire(typ, obj, n), nil
		},
	})
	if err != nil {
		t.Fatalf("NewEngine(%s wire): %v", typ.Name, err)
	}
	e.NewGeneration()
	return e
}

// wireTypes are the object types the engine tests serve through the wire
// adapter: one FIFO, one LIFO.
func wireTypes() []dss.Type { return []dss.Type{dss.QueueType, dss.StackType} }

// TestEngineServesWireObject drives detectable pairs against a
// Wire-served object and checks responses and resolutions in the spec
// vocabulary the protocol speaks.
func TestEngineServesWireObject(t *testing.T) {
	for _, typ := range wireTypes() {
		typ := typ
		t.Run(typ.Name, func(t *testing.T) {
			e := newWireEngine(t, typ, 2)
			ins := typ.SpecOp(dss.Op{Kind: dss.Insert, Arg: 7})
			rem := typ.SpecOp(dss.Op{Kind: dss.Remove})

			if rep := e.Apply(Msg{Kind: ReqPrep, Client: 0, Op: ins}); rep.Err != nil {
				t.Fatalf("prep insert: %v", rep.Err)
			}
			if rep := e.Apply(Msg{Kind: ReqResolve, Client: 0}); rep.Resp != spec.PairResp(true, ins, spec.BottomResp()) {
				t.Fatalf("resolve before exec = %s", rep.Resp)
			}
			if rep := e.Apply(Msg{Kind: ReqExec, Client: 0}); rep.Err != nil || rep.Resp != spec.AckResp() {
				t.Fatalf("exec insert = %s, %v", rep.Resp, rep.Err)
			}
			if rep := e.Apply(Msg{Kind: ReqPrep, Client: 1, Op: rem}); rep.Err != nil {
				t.Fatalf("prep remove: %v", rep.Err)
			}
			if rep := e.Apply(Msg{Kind: ReqExec, Client: 1}); rep.Err != nil || rep.Resp != spec.ValResp(7) {
				t.Fatalf("exec remove = %s, %v", rep.Resp, rep.Err)
			}
			if rep := e.Apply(Msg{Kind: ReqResolve, Client: 1}); rep.Resp != spec.PairResp(true, rem, spec.ValResp(7)) {
				t.Fatalf("resolve after exec = %s", rep.Resp)
			}
			// Non-detectable drain path.
			if rep := e.Apply(Msg{Kind: ReqInvoke, Client: 0, Op: rem}); rep.Err != nil || rep.Resp != spec.EmptyResp() {
				t.Fatalf("invoke remove on empty = %s, %v", rep.Resp, rep.Err)
			}
			// Foreign vocabulary is rejected at the wire.
			foreign := spec.Push(1)
			if typ.Name == "stack" {
				foreign = spec.Enqueue(1)
			}
			if rep := e.Apply(Msg{Kind: ReqInvoke, Client: 0, Op: foreign}); rep.Err == nil {
				t.Fatalf("%s wire accepted %s", typ.Name, foreign)
			}
		})
	}
}

// TestEngineWireCrashRecovery sweeps crash points over a detectable
// insert/remove pair served through the wire: after RecoverImage and a
// new generation, the client's resolve plus a full drain must tell a
// story consistent with exactly-once execution.
func TestEngineWireCrashRecovery(t *testing.T) {
	for _, typ := range wireTypes() {
		typ := typ
		t.Run(typ.Name, func(t *testing.T) {
			ins := typ.SpecOp(dss.Op{Kind: dss.Insert, Arg: 7})
			rem := typ.SpecOp(dss.Op{Kind: dss.Remove})
			swept := 0
			for step := uint64(1); ; step++ {
				e := newWireEngine(t, typ, 1)
				gen := e.Gen()
				phase := 0
				e.Heap().ArmCrash(step)
				pmem.RunToCrash(func() {
					if rep := e.Apply(Msg{Kind: ReqPrep, Client: 0, Gen: gen, Op: ins}); rep.Err != nil {
						t.Errorf("step %d: prep insert: %v", step, rep.Err)
						return
					}
					phase = 1
					if rep := e.Apply(Msg{Kind: ReqExec, Client: 0, Gen: gen}); rep.Err != nil {
						t.Errorf("step %d: exec insert: %v", step, rep.Err)
						return
					}
					phase = 2
					if rep := e.Apply(Msg{Kind: ReqPrep, Client: 0, Gen: gen, Op: rem}); rep.Err != nil {
						t.Errorf("step %d: prep remove: %v", step, rep.Err)
						return
					}
					phase = 3
					if rep := e.Apply(Msg{Kind: ReqExec, Client: 0, Gen: gen}); rep.Err != nil {
						t.Errorf("step %d: exec remove: %v", step, rep.Err)
						return
					}
					phase = 4
				})
				if !e.Heap().Crashed() {
					if swept == 0 {
						t.Fatal("workload completed before the first crash point")
					}
					break
				}
				swept++
				e.RecoverImage(pmem.DropAll{})
				e.NewGeneration()

				// A pre-crash message must be fenced out.
				if rep := e.Apply(Msg{Kind: ReqExec, Client: 0, Gen: gen}); rep.Err == nil {
					t.Fatalf("step %d: stale-generation request applied", step)
				}

				res := e.Apply(Msg{Kind: ReqResolve, Client: 0}).Resp
				inserted := phase >= 2 || res == spec.PairResp(true, ins, spec.AckResp())
				removed := phase >= 4 || res == spec.PairResp(true, rem, spec.ValResp(7))

				var drained []uint64
				for {
					rep := e.Apply(Msg{Kind: ReqInvoke, Client: 0, Op: rem})
					if rep.Err != nil {
						t.Fatalf("step %d: drain: %v", step, rep.Err)
					}
					if rep.Resp.Kind != spec.Val {
						break
					}
					drained = append(drained, rep.Resp.V)
				}
				want := 0
				if inserted && !removed {
					want = 1
				}
				if len(drained) != want || (want == 1 && drained[0] != 7) {
					t.Fatalf("step %d: drained %v (phase %d, resolve %s, inserted=%v removed=%v)",
						step, drained, phase, res, inserted, removed)
				}
				if removed && !inserted {
					t.Fatalf("step %d: remove effective but insert is not (resolve %s)", step, res)
				}
			}
			if swept == 0 {
				t.Fatalf("%s: no crash points swept", typ.Name)
			}
		})
	}
}
