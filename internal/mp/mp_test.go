package mp

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/pmem"
	"repro/internal/spec"
)

func newRegisterServer(t *testing.T, clients int) *Server {
	t.Helper()
	s, err := NewServer(clients, 1024, spec.NewRegister(0),
		[]spec.Op{spec.Read(), spec.Write(0)})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	return s
}

func newCounterServer(t *testing.T, clients int) *Server {
	t.Helper()
	s, err := NewServer(clients, 4096, spec.NewCounter(),
		[]spec.Op{spec.Inc(), spec.Read()})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestMessagePassingBasicOps(t *testing.T) {
	s := newRegisterServer(t, 2)
	defer s.Stop()
	c0, c1 := NewClient(s, 0), NewClient(s, 1)
	if r, err := c0.Invoke(spec.Read()); err != nil || r != spec.ValResp(0) {
		t.Fatalf("read = (%v,%v)", r, err)
	}
	if _, err := c0.Invoke(spec.Write(7)); err != nil {
		t.Fatal(err)
	}
	if r, _ := c1.Invoke(spec.Read()); r != spec.ValResp(7) {
		t.Fatalf("read by other client = %v", r)
	}
}

func TestMessagePassingDetectableLifecycle(t *testing.T) {
	s := newRegisterServer(t, 1)
	defer s.Stop()
	c := NewClient(s, 0)
	if err := c.Prep(spec.Write(5)); err != nil {
		t.Fatal(err)
	}
	if r, err := c.Resolve(); err != nil || r != spec.PairResp(true, spec.Write(5), spec.BottomResp()) {
		t.Fatalf("resolve after prep = (%v,%v)", r, err)
	}
	if r, err := c.Exec(); err != nil || r != spec.AckResp() {
		t.Fatalf("exec = (%v,%v)", r, err)
	}
	if r, _ := c.Resolve(); r != spec.PairResp(true, spec.Write(5), spec.AckResp()) {
		t.Fatalf("resolve after exec = %v", r)
	}
}

func TestServerLifecycleErrors(t *testing.T) {
	s := newRegisterServer(t, 1)
	if err := s.Start(); err == nil {
		t.Fatal("double Start accepted")
	}
	if err := s.Restart(pmem.DropAll{}); err == nil {
		t.Fatal("Restart of running server accepted")
	}
	s.Stop()
	s.Stop() // idempotent
	c := NewClient(s, 0)
	if _, err := c.Invoke(spec.Read()); !errors.Is(err, ErrServerDown) {
		t.Fatalf("request to stopped server = %v, want ErrServerDown", err)
	}
	if err := s.Restart(pmem.DropAll{}); err != nil {
		t.Fatalf("Restart after stop: %v", err)
	}
	defer s.Stop()
	if _, err := c.Invoke(spec.Read()); err != nil {
		t.Fatalf("request after restart: %v", err)
	}
}

// TestFigure2OverMessagePassing reproduces the paper's Figure 2 cases
// with the crash landing inside the *server* while the client's request
// is in flight — the same DSS outcomes, transported over messages.
func TestFigure2OverMessagePassing(t *testing.T) {
	for _, adv := range []pmem.Adversary{pmem.DropAll{}, pmem.KeepAll{}, pmem.NewRandomFates(5)} {
		for step := uint64(1); ; step++ {
			s := newRegisterServer(t, 1)
			c := NewClient(s, 0)
			s.Heap().ArmCrash(step)
			_, done := func() (bool, bool) {
				if err := c.Prep(spec.Write(1)); err != nil {
					return false, false
				}
				if _, err := c.Exec(); err != nil {
					return false, false
				}
				return true, true
			}()
			if !s.Heap().Crashed() {
				s.Stop()
				if !done {
					t.Fatalf("step %d: no crash but requests failed", step)
				}
				break
			}
			if err := s.Restart(adv); err != nil {
				t.Fatalf("step %d: restart: %v", step, err)
			}
			r, err := c.Resolve()
			if err != nil {
				t.Fatalf("step %d: resolve after restart: %v", step, err)
			}
			val, err := c.Invoke(spec.Read())
			if err != nil {
				t.Fatal(err)
			}
			legal := map[spec.Resp]bool{
				spec.PairResp(false, spec.Op{}, spec.BottomResp()):    true,
				spec.PairResp(true, spec.Write(1), spec.BottomResp()): true,
				spec.PairResp(true, spec.Write(1), spec.AckResp()):    true,
			}
			if !legal[r] {
				t.Fatalf("step %d: illegal resolve %v", step, r)
			}
			executed := r == spec.PairResp(true, spec.Write(1), spec.AckResp())
			if executed != (val == spec.ValResp(1)) {
				t.Fatalf("step %d: resolve %v inconsistent with register %v", step, r, val)
			}
			s.Stop()
		}
	}
}

// TestExactlyOnceDepositsOverMessages is the ledger example over the
// wire: a client retries deposits across repeated server crashes, using
// resolve to decide, and the final balance is exact.
func TestExactlyOnceDepositsOverMessages(t *testing.T) {
	const deposits = 15
	s := newCounterServer(t, 1)
	defer s.Stop()
	c := NewClient(s, 0)
	crashes := 0
	for d := 1; d <= deposits; {
		op := spec.Inc()
		op.Tag = uint64(d)
		s.Heap().ArmCrash(uint64(23 + 17*crashes))
		err := c.Prep(op)
		if err == nil {
			_, err = c.Exec()
		}
		if err == nil {
			s.Heap().ArmCrash(0) // disarm between deposits
			d++
			continue
		}
		if !errors.Is(err, ErrServerDown) {
			t.Fatalf("deposit %d: %v", d, err)
		}
		crashes++
		if err := s.Restart(pmem.NewRandomFates(int64(crashes))); err != nil {
			t.Fatal(err)
		}
		r, err := c.Resolve()
		if err != nil {
			t.Fatal(err)
		}
		// Deposit d landed iff the resolution names tag d as executed.
		if r.HasOp && r.POp.Tag == uint64(d) && r.Inner != spec.None {
			d++
		}
	}
	if crashes == 0 {
		t.Fatal("test exercised no crashes; arm points too large")
	}
	bal, err := c.Invoke(spec.Read())
	if err != nil {
		t.Fatal(err)
	}
	if bal != spec.ValResp(deposits) {
		t.Fatalf("balance = %v after %d crashes, want %d", bal, crashes, deposits)
	}
}

func TestConcurrentClients(t *testing.T) {
	const clients = 4
	const each = 25
	s := newCounterServer(t, clients)
	defer s.Stop()
	var wg sync.WaitGroup
	for id := 0; id < clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := NewClient(s, id)
			for i := 0; i < each; i++ {
				if _, err := c.Invoke(spec.Inc()); err != nil {
					t.Errorf("client %d: %v", id, err)
					return
				}
			}
		}(id)
	}
	wg.Wait()
	c := NewClient(s, 0)
	if bal, _ := c.Invoke(spec.Read()); bal != spec.ValResp(clients*each) {
		t.Fatalf("counter = %v, want %d", bal, clients*each)
	}
}
