package mp

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/pmem"
	"repro/internal/spec"
)

// TestConcurrentClientsAcrossCrashes hammers the server with several
// clients performing detectable increments while the server crashes
// repeatedly; every client applies the exactly-once retry rule through
// resolve, and the final balance must be exact. This is the
// message-passing analogue of the shared-memory conservation stress
// tests.
func TestConcurrentClientsAcrossCrashes(t *testing.T) {
	const (
		clients     = 3
		perClient   = 10
		maxRestarts = 200
	)
	s := newCounterServer(t, clients)
	defer s.Stop()

	var restartMu sync.Mutex
	restarts := 0
	// restartServer brings the server back after a crash; many clients
	// may observe ErrServerDown concurrently, only one restart runs.
	restartServer := func() error {
		restartMu.Lock()
		defer restartMu.Unlock()
		if !s.Heap().Crashed() {
			return nil // another client already restarted it
		}
		restarts++
		if restarts > maxRestarts {
			return errors.New("too many restarts")
		}
		if err := s.Restart(pmem.NewRandomFates(int64(restarts))); err != nil {
			return err
		}
		// Re-arm a crash so later operations keep failing over.
		if restarts < maxRestarts/2 {
			s.Heap().ArmCrash(uint64(150 + 70*restarts))
		}
		return nil
	}
	s.Heap().ArmCrash(100)

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for id := 0; id < clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := NewClient(s, id)
			for d := 1; d <= perClient; {
				op := spec.Inc()
				op.Tag = uint64(d)
				err := c.Prep(op)
				if err == nil {
					_, err = c.Exec()
				}
				if err == nil {
					d++
					continue
				}
				if !errors.Is(err, ErrServerDown) {
					errs <- err
					return
				}
				if err := restartServer(); err != nil {
					errs <- err
					return
				}
				// Exactly-once: ask the recovered object what happened to
				// deposit d before retrying.
				r, err := c.Resolve()
				if err != nil {
					continue // raced into another crash; retry the loop
				}
				if r.HasOp && r.POp.Tag == uint64(d) && r.Inner != spec.None {
					d++ // it landed before the crash
				}
			}
		}(id)
	}
	// Bound the wait with a deadline: if a client loses a wakeup the test
	// fails with a message instead of hanging the whole suite.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("stress timed out: a client is stuck")
	}
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Disarm and read the final balance.
	s.Heap().ArmCrash(0)
	if s.Heap().Crashed() {
		if err := restartServer(); err != nil {
			t.Fatal(err)
		}
	}
	c := NewClient(s, 0)
	bal, err := c.Invoke(spec.Read())
	if err != nil {
		t.Fatal(err)
	}
	if bal != spec.ValResp(clients*perClient) {
		t.Fatalf("balance = %v after %d restarts, want %d", bal, restarts, clients*perClient)
	}
	if restarts == 0 {
		t.Fatal("stress exercised no crashes")
	}
}
