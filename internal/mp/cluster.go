package mp

import (
	"fmt"
	"time"

	"repro/internal/dss"
	"repro/internal/pmem"
	"repro/internal/sharded"
	"repro/internal/spec"
)

// This file scales the message-passing DSS service from one server to a
// cluster: N shard-servers, each owning an independent sharded front of
// detectable objects behind its OWN Engine — its own persistent heap, its
// own generation fence, its own per-client at-most-once reply cache, and
// its own crash/recovery lifecycle — fronted by a cluster-aware client
// that routes operations through a PERSISTED per-client routing cursor.
// The composition argument is the sharded front's, applied once more one
// level up: every operation lands on exactly one server, that server's
// history is strictly linearizable w.r.t. D⟨T⟩ per shard (Theorem 1
// applies per shard unchanged), and the client's persisted cursor names
// the server holding its most recent claimed operation, so a restart
// resolves through exactly one server's resolve. Globally the cluster is
// k-relaxed (per-shard FIFO/LIFO, cross-shard overtaking bounded by the
// in-flight window) — but detectability, and with it exactly-once
// execution, is NOT relaxed.
//
// Client cursor protocol (claim-before-prep). The client's cursor line
// packs route, round-robin hints, and the operation tag into one cache
// line, persisted ONCE per routing step, BEFORE the prep is sent:
//
//	store tag; store route = s+1; store rr hint; persist  — the "claim"
//	prep/exec on server s via the per-server RetryClient discipline
//
// This inverts the server-side sharded front's X-before-cursor order
// (which each server still uses internally, unchanged), and it is the
// tag that makes the inversion safe: the cursor may name a server whose
// prep never landed, but then that server's resolve reports an operation
// with a DIFFERENT tag (or none), which classifies the claimed operation
// as "never happened" — a legal outcome for an operation whose Do had
// not returned. Because tag and route share one cache line and the crash
// adversary settles whole lines, recovery can never observe a new tag
// married to a stale route or vice versa. And because the tag is durable
// BEFORE any prep can land, a restarted client (which resumes its tag
// counter from the cursor) can never reuse a tag that a dangling prep on
// some server still carries — the confusion that volatile tags would
// allow. Claimed-but-unsent tags are simply burned.
//
// Per-server generations. Each inner RetryClient pins the generation of
// its own server, so the resolve-before-retry discipline runs per server
// generation: a client can straddle servers in different crash epochs —
// one mid-recovery, one ten generations ahead — and every ambiguous
// outcome is settled against exactly the server (and the generation
// fence) that owns the operation.
type ClusterConfig struct {
	// Servers is the number of independent shard-servers.
	Servers int
	// ShardsPerServer is each server's sharded-front width.
	ShardsPerServer int
	// Clients is the number of client identities (0..Clients-1), shared
	// by every server (client c is process c on every server's front).
	Clients int
	// Type is the detectable object type every shard hosts
	// (dss.QueueType by default).
	Type dss.Type
	// NodesPerThread and ExtraNodes size each shard's node pools (passed
	// to the sharded front unchanged).
	NodesPerThread int
	ExtraNodes     int
	// Words sizes each server's persistent heap (default 1<<18, the
	// single-server default).
	Words int
}

func (c *ClusterConfig) defaults() {
	if c.Servers <= 0 {
		c.Servers = 2
	}
	if c.ShardsPerServer <= 0 {
		c.ShardsPerServer = 2
	}
	if c.Clients <= 0 {
		c.Clients = 1
	}
	if c.Type.Name == "" {
		c.Type = dss.QueueType
	}
	if c.NodesPerThread <= 0 {
		c.NodesPerThread = 128
	}
	if c.ExtraNodes <= 0 {
		c.ExtraNodes = 2*c.Clients + 8
	}
	if c.Words <= 0 {
		c.Words = 1 << 18
	}
}

// Client cursor line layout (one cache line per client in the cluster's
// client-side heap). Mirrors the sharded front's cursor, one level up:
// the route names a server instead of a shard, and word 3 carries the
// claimed operation's tag (see the package comment for why they share a
// line).
const (
	ccRoute = 0 // 0 = no claimed op; s+1 = claimed on server s
	ccInsRR = 1 // next server for an insert (round-robin hint)
	ccRemRR = 2 // next server for a remove scan (round-robin hint)
	ccTag   = 3 // tag of the claimed operation
)

// Cluster is N independent shard-servers plus the client-side persistent
// routing state. Servers share nothing: each has its own heap, engine,
// generation fence, and reply cache, and crashes/recovers independently.
type Cluster struct {
	cfg    ClusterConfig
	typ    dss.Type
	srvs   []*Server
	fronts []*sharded.Front

	// ch holds the per-client routing cursors: client-side persistent
	// state (the paper's X[p] analogue for routing), one line per client.
	ch      *pmem.Heap
	curBase pmem.Addr
}

// NewCluster builds the cluster: cfg.Servers engines, each hosting a
// sharded.Wire over a cfg.ShardsPerServer-way front of cfg.Type objects,
// plus the client-side cursor heap. Servers are built but not started;
// call Start on each (or StartAll) before serving.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	cfg.defaults()
	cl := &Cluster{cfg: cfg, typ: cfg.Type}
	for i := 0; i < cfg.Servers; i++ {
		var front *sharded.Front
		srv, err := NewServerWith(EngineConfig{
			Clients:  cfg.Clients,
			Capacity: 1, // unused: the object and heap size are explicit
			Words:    cfg.Words,
			NewObject: func(h *pmem.Heap, clients int) (Object, error) {
				f, err := sharded.New(h, 0, cfg.Type, sharded.Config{
					Shards:         cfg.ShardsPerServer,
					Threads:        clients,
					NodesPerThread: cfg.NodesPerThread,
					ExtraNodes:     cfg.ExtraNodes,
				})
				if err != nil {
					return nil, err
				}
				front = f
				return sharded.NewWire(cfg.Type, f), nil
			},
		})
		if err != nil {
			return nil, fmt.Errorf("mp: cluster server %d: %w", i, err)
		}
		cl.srvs = append(cl.srvs, srv)
		cl.fronts = append(cl.fronts, front)
	}
	ch, err := pmem.New(pmem.Config{
		Words: 1<<10 + cfg.Clients*pmem.WordsPerLine,
		Mode:  pmem.Tracked,
	})
	if err != nil {
		return nil, fmt.Errorf("mp: cluster client heap: %w", err)
	}
	curBase, err := ch.Alloc(cfg.Clients * pmem.WordsPerLine)
	if err != nil {
		return nil, fmt.Errorf("mp: cluster cursors: %w", err)
	}
	// Spread the initial round-robin hints so a uniform client population
	// starts uniformly distributed over servers.
	for id := 0; id < cfg.Clients; id++ {
		cur := curBase + pmem.Addr(id*pmem.WordsPerLine)
		ch.Store(cur+ccRoute, 0)
		ch.Store(cur+ccInsRR, uint64(id%cfg.Servers))
		ch.Store(cur+ccRemRR, uint64(id%cfg.Servers))
		ch.Store(cur+ccTag, 0)
	}
	ch.PersistRange(curBase, cfg.Clients*pmem.WordsPerLine)
	ch.SetRoot(0, curBase)
	cl.ch = ch
	cl.curBase = curBase
	return cl, nil
}

// Servers reports the server count.
func (cl *Cluster) Servers() int { return len(cl.srvs) }

// Clients reports the client-identity count the cluster was built for.
func (cl *Cluster) Clients() int { return cl.cfg.Clients }

// Server returns the i'th shard-server.
func (cl *Cluster) Server(i int) *Server { return cl.srvs[i] }

// Front returns the i'th server's sharded front (test and drain access).
func (cl *Cluster) Front(i int) *sharded.Front { return cl.fronts[i] }

// Type reports the hosted object type.
func (cl *Cluster) Type() dss.Type { return cl.typ }

// ClientHeap exposes the client-side cursor heap so tests can arm
// client-crash points.
func (cl *Cluster) ClientHeap() *pmem.Heap { return cl.ch }

// StartAll starts every server (each under its own fresh generation).
func (cl *Cluster) StartAll() error {
	for i, s := range cl.srvs {
		if err := s.Start(); err != nil {
			return fmt.Errorf("mp: cluster server %d: %w", i, err)
		}
	}
	return nil
}

// StopAll stops every running server cleanly.
func (cl *Cluster) StopAll() {
	for _, s := range cl.srvs {
		s.Stop()
	}
}

// cursorAddr returns client id's cursor line.
func (cl *Cluster) cursorAddr(id int) pmem.Addr {
	return cl.curBase + pmem.Addr(id*pmem.WordsPerLine)
}

// ClusterClient is the cluster-aware production client: one RetryClient
// per server (each pinning that server's generation and settling
// ambiguity against it alone) behind the persisted routing cursor. Like
// RetryClient it owns its identity: not safe for concurrent use, at most
// one per client id.
type ClusterClient struct {
	id    int
	cl    *Cluster
	h     *pmem.Heap
	cur   pmem.Addr
	ts    []Transport
	pol   RetryPolicy
	inner []*RetryClient

	// tag is the client's volatile tag counter. Every claim persists the
	// tag before any prep can land, so Recover resumes it from the cursor
	// and no tag is ever reused — even across a full-system crash.
	tag uint64
	ops uint64
}

// NewClusterClient binds identity id to the cluster over the servers' own
// in-process transports.
func NewClusterClient(cl *Cluster, id int, pol RetryPolicy) *ClusterClient {
	ts := make([]Transport, cl.Servers())
	for i, s := range cl.srvs {
		ts[i] = s
	}
	return NewClusterClientOver(cl, id, pol, ts)
}

// NewClusterClientOver binds identity id to the cluster over one explicit
// transport per server (fault injectors, simulated networks). Each inner
// per-server client derives its jitter seed from pol.Seed and the server
// index, so a fixed policy seed yields a deterministic client.
func NewClusterClientOver(cl *Cluster, id int, pol RetryPolicy, ts []Transport) *ClusterClient {
	if len(ts) != cl.Servers() {
		panic(fmt.Sprintf("mp: %d transports for %d servers", len(ts), cl.Servers()))
	}
	c := &ClusterClient{
		id: id, cl: cl, h: cl.ch, cur: cl.cursorAddr(id),
		ts: ts, pol: pol,
	}
	c.rebuildInner()
	// A fresh handle over existing persistent state (a client restart)
	// must resume the tag counter past every claimed tag.
	c.tag = c.h.Load(c.cur + ccTag)
	return c
}

// rebuildInner (re)creates the per-server RetryClients: fresh volatile
// connection state (generation pins, sequence numbers), same identity.
func (c *ClusterClient) rebuildInner() {
	c.inner = make([]*RetryClient, len(c.ts))
	for s, t := range c.ts {
		pol := c.pol
		pol.Seed = c.pol.Seed + int64(s)
		c.inner[s] = NewRetryClient(t, c.id, pol)
	}
}

// Inner returns the per-server RetryClient for server s (stats and
// observability wiring).
func (c *ClusterClient) Inner(s int) *RetryClient { return c.inner[s] }

// SetSleep replaces the backoff sleeper of every inner client.
func (c *ClusterClient) SetSleep(f func(d time.Duration)) {
	for _, rc := range c.inner {
		rc.SetSleep(f)
	}
}

// Stats sums the per-server clients' counters; Ops counts cluster-level
// Do calls (each may fan out to several servers during a remove scan).
func (c *ClusterClient) Stats() RetryStats {
	var st RetryStats
	for _, rc := range c.inner {
		s := rc.Stats()
		st.Attempts += s.Attempts
		st.Retries += s.Retries
		st.Resolves += s.Resolves
		st.Timeouts += s.Timeouts
		st.Downs += s.Downs
		st.GenChanges += s.GenChanges
	}
	st.Ops = c.ops
	return st
}

// Route reports the server the persisted cursor names, or -1 (test and
// recovery-audit access).
func (c *ClusterClient) Route() int {
	return int(c.h.Load(c.cur+ccRoute)) - 1
}

// claim persists the routing decision for one hop — tag, route, and the
// round-robin hint, in one cursor-line persist — BEFORE the prep is sent
// (see the package comment for the crash argument).
func (c *ClusterClient) claim(s int, tag uint64, rr pmem.Addr) {
	c.h.Store(c.cur+ccTag, tag)
	c.h.Store(c.cur+ccRoute, uint64(s+1))
	c.h.Store(c.cur+rr, uint64((s+1)%len(c.inner)))
	c.h.Persist(c.cur)
}

// doOn runs one claimed hop: persist the claim, then drive the op through
// server s's exactly-once discipline.
func (c *ClusterClient) doOn(s int, op spec.Op, rr pmem.Addr) (spec.Resp, error) {
	c.claim(s, op.Tag, rr)
	return c.inner[s].DoTagged(op)
}

// Do applies op as a detectable operation exactly once across the
// cluster. Key-routed types go to the server their key hashes to (exact
// composition — every key has one home server, found or absent there
// alone). For container types, inserts go to the next server in the
// insert round-robin; removes scan servers from the remove round-robin
// cursor, returning EMPTY only after a full cycle of per-server EMPTYs
// (each itself a full scan of that server's shards) — the relaxed
// emptiness of the composition, one level up.
func (c *ClusterClient) Do(op spec.Op) (spec.Resp, error) {
	dop, ok := c.cl.typ.FromSpec(op)
	if !ok {
		return spec.Resp{}, fmt.Errorf("mp: %s is not a %s operation", op, c.cl.typ.Name)
	}
	c.ops++
	c.tag++
	op.Tag = c.tag
	n := len(c.inner)
	if c.cl.typ.KeyRouted {
		// Key-routed types name disjoint sub-objects by key, so the server
		// is content-addressed — the same KeyShard hash the per-server
		// sharded front uses, applied one level up. No scan exists: the
		// routed server is the sole authority for the key, including its
		// absence. The round-robin hint word is updated but never consulted.
		return c.doOn(sharded.KeyShard(dop.Key, n), op, ccInsRR)
	}
	if dop.Kind != dss.Remove {
		s := int(c.h.Load(c.cur+ccInsRR)) % n
		return c.doOn(s, op, ccInsRR)
	}
	s := int(c.h.Load(c.cur+ccRemRR)) % n
	for i := 0; i < n; i++ {
		resp, err := c.doOn(s, op, ccRemRR)
		if err != nil {
			return spec.Resp{}, err
		}
		if resp.Kind != spec.Empty {
			return resp, nil
		}
		s = (s + 1) % n
	}
	return spec.Resp{Kind: spec.Empty}, nil
}

// Recover rebuilds the client's volatile state after a full-system crash
// (every server restarted, the client process lost its memory): fresh
// per-server connections and the tag counter resumed from the persisted
// cursor. It must not be used after a client-only restart while servers
// kept running — the servers' reply caches would then reject the fresh
// sequence numbers as superseded; restart the servers (new generations)
// alongside, as a real power loss would.
func (c *ClusterClient) Recover() {
	c.rebuildInner()
	c.tag = c.h.Load(c.cur + ccTag)
}

// Complete settles the operation the persisted cursor claims, finishing
// it exactly-once if it is pending: the recovery-time half of the DSS
// discipline, used after Recover. It reports (op, resp, true) when the
// claimed operation had taken or now takes effect — op is the resolved
// operation, resp its recovered or freshly executed response — and
// (zero, zero, false) when the claim's prep never landed anywhere, i.e.
// the operation never happened and may be re-issued under a fresh tag.
//
// A pending remove that settles EMPTY on its claimed server resumes the
// cluster scan from the next server (with the same burned tag — each
// server sees a given tag at most once), so the EMPTY it ultimately
// reports still covers a full server cycle.
func (c *ClusterClient) Complete() (spec.Op, spec.Resp, bool, error) {
	r := int(c.h.Load(c.cur + ccRoute))
	if r == 0 {
		return spec.Op{}, spec.Resp{}, false, nil
	}
	s := r - 1
	tag := c.h.Load(c.cur + ccTag)
	st, op, resp, err := c.inner[s].settle(tag)
	if err != nil {
		return spec.Op{}, spec.Resp{}, false, err
	}
	switch st {
	case settledAbsent:
		return spec.Op{}, spec.Resp{}, false, nil
	case settledPrepped:
		// Re-prepping an unexecuted operation replaces it with an
		// identical prep (no effect is lost — prepped ops have none), and
		// the discipline then executes it exactly once.
		resp, err = c.inner[s].DoTagged(op)
		if err != nil {
			return spec.Op{}, spec.Resp{}, false, err
		}
	}
	dop, ok := c.cl.typ.FromSpec(op)
	if ok && dop.Kind == dss.Remove && resp.Kind == spec.Empty {
		// The claimed hop observed its server empty; the interrupted scan
		// continues over the remaining servers.
		n := len(c.inner)
		next := (s + 1) % n
		for i := 0; i < n-1; i++ {
			hop, err := c.doOn(next, op, ccRemRR)
			if err != nil {
				return spec.Op{}, spec.Resp{}, false, err
			}
			if hop.Kind != spec.Empty {
				return op, hop, true, nil
			}
			next = (next + 1) % n
		}
		return op, spec.Resp{Kind: spec.Empty}, true, nil
	}
	return op, resp, true, nil
}
