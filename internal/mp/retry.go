package mp

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/obs"
	"repro/internal/spec"
)

// RetryPolicy bounds a RetryClient's persistence.
type RetryPolicy struct {
	// MaxAttempts bounds the attempts per phase of one operation (prep,
	// exec, and each resolve loop). Default 64.
	MaxAttempts int
	// BackoffBase is the first backoff; successive backoffs double up to
	// BackoffMax, with seeded half-to-full jitter. Defaults 100µs / 10ms.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Seed makes the jitter deterministic.
	Seed int64
	// AttemptTimeout, when positive, bounds each individual RoundTrip
	// call: if the Transport has not returned by then, the attempt is
	// abandoned and treated as ErrTimeout (ambiguous — resolve before
	// retrying, exactly like a timed-out reply). This is the liveness
	// guard the multi-process deployment needs: a SIGKILL'd server is
	// silent, not erroring, and without a per-attempt deadline a
	// Transport that blocks forever would wedge the client with it.
	// Transports with their own internal deadline (the in-process
	// channel transport, the shm ring transport) can leave it zero;
	// the abandoned call's goroutine is left to finish on its own, so
	// the Transport must tolerate a late, discarded completion.
	AttemptTimeout time.Duration
}

func (p *RetryPolicy) defaults() {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 64
	}
	if p.BackoffBase <= 0 {
		p.BackoffBase = 100 * time.Microsecond
	}
	if p.BackoffMax <= 0 {
		p.BackoffMax = 10 * time.Millisecond
	}
}

// RetryStats counts a RetryClient's transport-visible work.
type RetryStats struct {
	// Ops is the number of Do calls; Attempts the round trips sent.
	Ops      uint64
	Attempts uint64
	// Retries counts backoff-then-retry rounds across all phases.
	Retries uint64
	// Resolves counts resolve round trips sent to settle an ambiguous
	// prep/exec outcome (reconnection probes included).
	Resolves uint64
	// Timeouts and Downs classify the ambiguous errors observed.
	Timeouts uint64
	Downs    uint64
	// GenChanges counts adopted server generation changes — crashes (or
	// stops) this client observed and survived.
	GenChanges uint64
	// Hangs counts attempts abandoned by AttemptTimeout: the transport
	// itself never returned, as distinct from Timeouts, which counts
	// transports that returned ErrTimeout replies. A nonzero Hangs means
	// a server went silent mid-call (killed), not merely slow.
	Hangs uint64
}

// RetryClient wraps a Transport with the production client discipline:
// per-request sequence numbers, generation pinning, capped exponential
// backoff with seeded jitter, and — the DSS-specific part — settlement of
// every ambiguous prep/exec outcome via resolve after reconnecting, never
// by blind re-execution. Together with the server's generation fence and
// at-most-once reply cache this makes every Do exactly-once, no matter
// how the transport and the server's crashes conspire:
//
//   - A lost request, lost reply, timeout, or crash surfaces as an
//     ambiguous error (Retryable). The client then asks resolve what
//     happened to the operation it tagged: executed (take the recorded
//     response), prepared-but-not-executed (exec is safe — exec of an
//     already-complete prep is a no-op returning the recorded response),
//     or absent (the prep never landed; re-prepping is safe).
//   - A duplicated request is answered from the server's reply cache
//     (same generation) or rejected by the generation fence (the copy
//     outlived a crash), so it can never re-execute the operation.
//   - A delayed straggler older than an applied request is discarded
//     (ErrSuperseded), so settled history never changes under it.
//
// A RetryClient owns its identity: it is not safe for concurrent use, and
// at most one RetryClient per client id may talk to a server (the
// at-most-once cache is per id).
type RetryClient struct {
	id    int
	t     Transport
	pol   RetryPolicy
	rng   *rand.Rand
	sleep func(time.Duration)

	gen   uint64
	seq   uint64
	tag   uint64
	stats RetryStats

	// obs, when non-nil, times every round trip per request kind and
	// mirrors the RetryStats classification into named counters and trace
	// events (EvRetry, EvDown, EvGenChange).
	obs *obs.Sink
	// kindOf, when non-nil, attributes op-carrying round trips (prep,
	// exec, invoke) to an operation kind, so the sink's per-phase
	// histograms split by what the operation was rather than pooling
	// everything under KindNone.
	kindOf func(spec.Op) obs.OpKind
}

// NewRetryClient binds identity id to t under the given policy.
func NewRetryClient(t Transport, id int, pol RetryPolicy) *RetryClient {
	pol.defaults()
	return &RetryClient{
		id:    id,
		t:     t,
		pol:   pol,
		rng:   rand.New(rand.NewSource(pol.Seed)),
		sleep: time.Sleep,
	}
}

// SetSleep replaces the backoff sleeper (virtual-time harnesses).
func (c *RetryClient) SetSleep(f func(time.Duration)) { c.sleep = f }

// SetObs attaches an observability sink (nil to remove). A RetryClient is
// single-threaded, so install it before the first Do.
func (c *RetryClient) SetObs(s *obs.Sink) { c.obs = s }

// SetOpKind installs the op-kind attribution hook (nil to remove):
// dss-backed callers pass a translation through dss.Type.FromSpec and
// dss.KindOf so round-trip latency is recorded per operation kind.
func (c *RetryClient) SetOpKind(fn func(spec.Op) obs.OpKind) { c.kindOf = fn }

// phaseOf maps a request kind to the DSS phase its latency belongs to.
func phaseOf(kind ReqKind) obs.Phase {
	switch kind {
	case ReqPrep:
		return obs.PhasePrep
	case ReqResolve:
		return obs.PhaseResolve
	default: // ReqExec, ReqInvoke both apply the operation
		return obs.PhaseExec
	}
}

// Stats returns the client's counters so far.
func (c *RetryClient) Stats() RetryStats { return c.stats }

// Gen returns the last server generation this client observed.
func (c *RetryClient) Gen() uint64 { return c.gen }

// roundTrip sends one sequenced, generation-pinned request and folds the
// reply's generation and error class into the client's state.
func (c *RetryClient) roundTrip(kind ReqKind, op spec.Op) Reply {
	c.seq++
	c.stats.Attempts++
	if kind == ReqResolve {
		c.obs.Add(obs.CtrResolves, 1)
	}
	k := obs.KindNone
	if c.kindOf != nil && kind != ReqResolve {
		k = c.kindOf(op)
	}
	start := c.obs.Now()
	rep := c.dispatch(Msg{Kind: kind, Client: c.id, Gen: c.gen, Seq: c.seq, Op: op})
	c.obs.ObserveSince(phaseOf(kind), k, start)
	if rep.Gen != 0 && rep.Gen != c.gen {
		if c.gen != 0 {
			c.stats.GenChanges++
			c.obs.Add(obs.CtrGenChanges, 1)
			c.obs.Event(obs.EvGenChange, c.id, rep.Gen)
		}
		c.gen = rep.Gen
	}
	switch {
	case errors.Is(rep.Err, ErrTimeout):
		c.stats.Timeouts++
		c.obs.Add(obs.CtrTimeouts, 1)
	case errors.Is(rep.Err, ErrServerDown):
		c.stats.Downs++
		c.obs.Add(obs.CtrDowns, 1)
		c.obs.Event(obs.EvDown, c.id, 0)
	}
	return rep
}

// dispatch performs one transport call, racing it against the
// per-attempt deadline when the policy sets one. The deadline path runs
// the call in its own goroutine; on expiry the reply is abandoned (the
// goroutine drains into a buffered channel and dies) and the attempt is
// classified as a hang — ambiguous, like any timeout, so the caller's
// resolve discipline settles it. With AttemptTimeout zero the call is
// made inline, preserving the deterministic single-threaded behavior the
// DES harnesses rely on.
func (c *RetryClient) dispatch(m Msg) Reply {
	if c.pol.AttemptTimeout <= 0 {
		return c.t.RoundTrip(m)
	}
	ch := make(chan Reply, 1)
	go func() { ch <- c.t.RoundTrip(m) }()
	timer := time.NewTimer(c.pol.AttemptTimeout)
	defer timer.Stop()
	select {
	case rep := <-ch:
		return rep
	case <-timer.C:
		c.stats.Hangs++
		return Reply{Err: ErrTimeout}
	}
}

// backoff sleeps the capped exponential delay for the given retry round
// (1-based), with half-to-full jitter.
func (c *RetryClient) backoff(round int) {
	// Every backoff call is preceded by a stats.Retries increment at its
	// call site, so counting here keeps the sink 1:1 with RetryStats.
	c.obs.Add(obs.CtrRetries, 1)
	c.obs.Event(obs.EvRetry, c.id, uint64(round))
	d := c.pol.BackoffBase
	for i := 1; i < round && d < c.pol.BackoffMax; i++ {
		d *= 2
	}
	if d > c.pol.BackoffMax {
		d = c.pol.BackoffMax
	}
	d = d/2 + time.Duration(c.rng.Int63n(int64(d/2)+1))
	c.sleep(d)
}

// connect ensures the client knows the server's current generation before
// it sends anything whose duplication across a crash would be dangerous.
// The probe is a resolve: read-only, safe to repeat, and it doubles as the
// reconnection step of the DSS discipline.
func (c *RetryClient) connect() error {
	for round := 0; c.gen == 0; round++ {
		if round >= c.pol.MaxAttempts {
			return fmt.Errorf("mp: could not reach server after %d attempts: %w", round, ErrTimeout)
		}
		if round > 0 {
			c.stats.Retries++
			c.backoff(round)
		}
		c.stats.Resolves++
		c.roundTrip(ReqResolve, spec.Op{})
	}
	return nil
}

// settlement classifies what resolve revealed about a tagged operation.
type settlement int

const (
	settledAbsent   settlement = iota // the prep never landed; re-prep
	settledPrepped                    // prep landed, exec still needed
	settledExecuted                   // op took effect; response recovered
)

// settle resolves an ambiguous prep/exec outcome for the operation tagged
// tag. Resolve itself is retried through downtime (it is read-only, so
// blind repetition is safe); the classification then drives Do. The
// resolved operation rides along for callers (ClusterClient.Complete)
// that must reconstruct a pending operation after a client restart.
func (c *RetryClient) settle(tag uint64) (settlement, spec.Op, spec.Resp, error) {
	for round := 0; round < c.pol.MaxAttempts; round++ {
		if round > 0 {
			c.stats.Retries++
			c.backoff(round)
		}
		c.stats.Resolves++
		rep := c.roundTrip(ReqResolve, spec.Op{})
		if rep.Err != nil {
			if Retryable(rep.Err) {
				continue
			}
			return settledAbsent, spec.Op{}, spec.Resp{}, rep.Err
		}
		r := rep.Resp
		if r.Kind != spec.Pair {
			return settledAbsent, spec.Op{}, spec.Resp{}, fmt.Errorf("mp: resolve returned %s", r)
		}
		switch {
		case !r.HasOp || r.POp.Tag != tag:
			return settledAbsent, spec.Op{}, spec.Resp{}, nil
		case r.Inner == spec.None:
			return settledPrepped, r.POp, spec.Resp{}, nil
		default:
			return settledExecuted, r.POp, spec.Resp{Kind: r.Inner, V: r.InnerVal, V2: r.InnerVal2}, nil
		}
	}
	return settledAbsent, spec.Op{}, spec.Resp{}, fmt.Errorf("mp: resolve unsettled after %d attempts: %w", c.pol.MaxAttempts, ErrTimeout)
}

// Do applies op as a detectable operation exactly once and returns its
// response. The operation's Tag is overwritten with a client-unique value
// (Section 2.1's auxiliary argument) so resolve can identify it across
// crashes and retries.
func (c *RetryClient) Do(op spec.Op) (spec.Resp, error) {
	c.tag++
	op.Tag = c.tag
	return c.DoTagged(op)
}

// DoTagged is Do for an operation whose Tag the caller has already made
// unique (and, for cross-crash safety, durable): the cluster client
// persists its tags in the routing cursor before calling in here, so a
// client restart can never reuse a tag a dangling prep still carries.
// The body is the exactly-once discipline Do always ran; Do merely tags.
func (c *RetryClient) DoTagged(op spec.Op) (spec.Resp, error) {
	c.stats.Ops++
	if err := c.connect(); err != nil {
		return spec.Resp{}, err
	}
	prepped := false
	for round := 0; round < c.pol.MaxAttempts; round++ {
		if round > 0 {
			c.stats.Retries++
			c.backoff(round)
		}
		if !prepped {
			rep := c.roundTrip(ReqPrep, op)
			switch {
			case rep.Err == nil:
				prepped = true
			case Retryable(rep.Err):
				st, _, resp, err := c.settle(op.Tag)
				if err != nil {
					return spec.Resp{}, err
				}
				switch st {
				case settledExecuted:
					return resp, nil
				case settledPrepped:
					prepped = true
				}
			default:
				return spec.Resp{}, rep.Err
			}
		}
		if !prepped {
			continue
		}
		rep := c.roundTrip(ReqExec, spec.Op{})
		if rep.Err == nil {
			return rep.Resp, nil
		}
		if !Retryable(rep.Err) {
			return spec.Resp{}, rep.Err
		}
		st, _, resp, err := c.settle(op.Tag)
		if err != nil {
			return spec.Resp{}, err
		}
		switch st {
		case settledExecuted:
			return resp, nil
		case settledPrepped:
			// Exec again next round; exec of an already-complete prep is a
			// no-op returning the recorded response, so this cannot double
			// apply.
		case settledAbsent:
			// The crash took the prep with it (it was never acknowledged
			// durable to us in this generation, or recovery dropped an
			// unlinked record): start over.
			prepped = false
		}
	}
	return spec.Resp{}, fmt.Errorf("mp: %s unsettled after %d attempts: %w", op, c.pol.MaxAttempts, ErrTimeout)
}

// Enqueue, Dequeue and friends are not provided: RetryClient is
// object-agnostic. Compose with spec constructors, e.g.
// rc.Do(spec.Enqueue(v)) or rc.Do(spec.Inc()).
