package mp

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/check"
	"repro/internal/dss"
	"repro/internal/pmem"
	"repro/internal/spec"
)

// clusterTypes lists the object types the cluster conformance suites run
// over: the cluster must be correct for FIFO and LIFO shards alike.
func clusterTypes() []dss.Type { return []dss.Type{dss.QueueType, dss.StackType} }

func insertSpec(typ dss.Type, v uint64) spec.Op {
	return typ.SpecOp(dss.Op{Kind: dss.Insert, Arg: v})
}

func removeSpec(typ dss.Type) spec.Op {
	return typ.SpecOp(dss.Op{Kind: dss.Remove})
}

func newTestCluster(t *testing.T, typ dss.Type, servers, shardsPer, clients int) *Cluster {
	t.Helper()
	cl, err := NewCluster(ClusterConfig{
		Servers: servers, ShardsPerServer: shardsPer, Clients: clients,
		Type: typ, NodesPerThread: 64, ExtraNodes: 16,
	})
	if err != nil {
		t.Fatalf("NewCluster(%s): %v", typ.Name, err)
	}
	if err := cl.StartAll(); err != nil {
		t.Fatalf("StartAll: %v", err)
	}
	t.Cleanup(cl.StopAll)
	return cl
}

// lockstepTracer runs one D⟨T⟩ model per shard of ONE server in lockstep
// with the real front, exactly like the sharded package's conformance
// oracle but installed on every server of a cluster. Tracer callbacks
// fire on the server's serve goroutine, so failures are recorded and
// reported from the test goroutine.
type lockstepTracer struct {
	mu      sync.Mutex
	server  int
	models  []spec.State
	pending map[int]struct {
		shard int
		op    spec.Op
	}
	errs []string
}

func newLockstepTracer(typ dss.Type, server, shards, threads int) *lockstepTracer {
	lt := &lockstepTracer{server: server, pending: map[int]struct {
		shard int
		op    spec.Op
	}{}}
	for i := 0; i < shards; i++ {
		lt.models = append(lt.models, spec.Detectable(typ.Model(), threads))
	}
	return lt
}

func (lt *lockstepTracer) OpBegin(shard, tid int, op spec.Op) {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	lt.pending[tid] = struct {
		shard int
		op    spec.Op
	}{shard, op}
}

func (lt *lockstepTracer) OpEnd(shard, tid int, resp spec.Resp) {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	p, ok := lt.pending[tid]
	if !ok || p.shard != shard {
		lt.errs = append(lt.errs, fmt.Sprintf(
			"server %d: OpEnd(shard %d, tid %d) without matching OpBegin", lt.server, shard, tid))
		return
	}
	delete(lt.pending, tid)
	next, want, enabled := lt.models[shard].Apply(p.op, tid)
	if !enabled {
		lt.errs = append(lt.errs, fmt.Sprintf(
			"server %d shard %d: %s by tid %d not enabled in the model", lt.server, shard, p.op, tid))
		return
	}
	if want != resp {
		lt.errs = append(lt.errs, fmt.Sprintf(
			"server %d shard %d: %s by tid %d responded %s, model says %s",
			lt.server, shard, p.op, tid, resp, want))
		return
	}
	lt.models[shard] = next
}

// applyBase applies a base (non-detectable) op to one shard model; used
// by the drain.
func (lt *lockstepTracer) applyBase(shard int, op spec.Op) (spec.Resp, bool) {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	next, resp, enabled := lt.models[shard].Apply(op, 0)
	if !enabled {
		return spec.Resp{}, false
	}
	lt.models[shard] = next
	return resp, true
}

func (lt *lockstepTracer) failures() []string {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	return append([]string(nil), lt.errs...)
}

// TestClusterSequentialConformance drives a random sequential stream of
// cluster operations from several client identities through a 3-server
// cluster with per-(server,shard) D⟨T⟩ models in lockstep, plus a
// cluster-level multiset oracle: every removed value was inserted and
// still outstanding, and EMPTY appears only when the whole cluster is
// empty (a sequential remove scans every server). Then every shard is
// drained against its model. Runs once per object type.
func TestClusterSequentialConformance(t *testing.T) {
	const (
		servers   = 3
		shardsPer = 2
		clients   = 2
		steps     = 300
	)
	for _, typ := range clusterTypes() {
		typ := typ
		t.Run(typ.Name, func(t *testing.T) {
			cl := newTestCluster(t, typ, servers, shardsPer, clients)
			tracers := make([]*lockstepTracer, servers)
			for s := 0; s < servers; s++ {
				tracers[s] = newLockstepTracer(typ, s, shardsPer, clients)
				cl.Front(s).SetTracer(tracers[s])
			}
			ccs := make([]*ClusterClient, clients)
			for id := 0; id < clients; id++ {
				ccs[id] = NewClusterClient(cl, id, RetryPolicy{Seed: int64(1000 + id)})
			}

			outstanding := map[uint64]bool{}
			rng := rand.New(rand.NewSource(20260808))
			next := uint64(1)
			for i := 0; i < steps; i++ {
				cc := ccs[rng.Intn(clients)]
				if rng.Intn(5) < 3 {
					v := next
					next++
					resp, err := cc.Do(insertSpec(typ, v))
					if err != nil {
						t.Fatalf("step %d: insert %d: %v", i, v, err)
					}
					if resp.Kind != spec.Ack {
						t.Fatalf("step %d: insert %d responded %s", i, v, resp)
					}
					outstanding[v] = true
				} else {
					resp, err := cc.Do(removeSpec(typ))
					if err != nil {
						t.Fatalf("step %d: remove: %v", i, err)
					}
					switch resp.Kind {
					case spec.Val:
						if !outstanding[resp.V] {
							t.Fatalf("step %d: remove returned %d: not outstanding", i, resp.V)
						}
						delete(outstanding, resp.V)
					case spec.Empty:
						if len(outstanding) != 0 {
							t.Fatalf("step %d: EMPTY with %d outstanding values (sequential scan covers every server)",
								i, len(outstanding))
						}
					default:
						t.Fatalf("step %d: remove responded %s", i, resp)
					}
				}
				if cc.Route() < 0 {
					t.Fatalf("step %d: client has no persisted route after an operation", i)
				}
			}
			for s := range tracers {
				for _, f := range tracers[s].failures() {
					t.Error(f)
				}
			}
			if t.Failed() {
				t.FailNow()
			}

			// Drain every shard of every server against its model.
			base := removeSpec(typ)
			for s := 0; s < servers; s++ {
				cl.Front(s).SetTracer(nil)
				for j := 0; j < shardsPer; j++ {
					for {
						resp, err := cl.Front(s).Shard(j).Invoke(0, dss.Op{Kind: dss.Remove})
						if err != nil {
							t.Fatalf("server %d shard %d: drain: %v", s, j, err)
						}
						want, enabled := tracers[s].applyBase(j, base)
						if !enabled {
							t.Fatalf("server %d shard %d: model rejected a drain remove", s, j)
						}
						if resp.Kind != dss.Val {
							if want.Kind != spec.Empty {
								t.Fatalf("server %d shard %d: object empty but model holds %s", s, j, want)
							}
							break
						}
						if want.Kind != spec.Val || want.V != resp.Val {
							t.Fatalf("server %d shard %d: drained %d, model says %s", s, j, resp.Val, want)
						}
						if !outstanding[resp.Val] {
							t.Fatalf("server %d shard %d: drained %d: not outstanding", s, j, resp.Val)
						}
						delete(outstanding, resp.Val)
					}
				}
			}
			if len(outstanding) != 0 {
				t.Fatalf("%d values lost after drain", len(outstanding))
			}
		})
	}
}

// clusterRecorderTracer fans one server's shard-level operations out to
// per-shard check.Recorders.
type clusterRecorderTracer struct {
	recs []*check.Recorder
}

func (r *clusterRecorderTracer) OpBegin(shard, tid int, op spec.Op) { r.recs[shard].Begin(tid, op) }
func (r *clusterRecorderTracer) OpEnd(shard, tid int, resp spec.Resp) {
	r.recs[shard].End(tid, resp)
}

// TestClusterConcurrentCrashConformance: concurrent cluster clients drive
// detectable pairs through a 2-server cluster while both servers crash
// and recover repeatedly under random-fates adversaries; a monitor
// restarts whichever server dies. Afterwards every (server,shard) history
// — recorded by per-server tracers, with in-flight operations marked
// crashed at each crash — must be strictly linearizable w.r.t. D⟨T⟩, and
// the cluster-level value conservation must be exact: every inserted
// value is removed exactly once (by a client or the drain), nothing is
// invented, nothing is lost. This is the cluster analogue of the sharded
// package's per-shard crash conformance, with the engine's generation
// fence and the clients' resolve-before-retry discipline in the loop.
func TestClusterConcurrentCrashConformance(t *testing.T) {
	const (
		servers     = 2
		shardsPer   = 2
		clients     = 3
		pairs       = 3
		maxRestarts = 60
	)
	for _, typ := range clusterTypes() {
		typ := typ
		t.Run(typ.Name, func(t *testing.T) {
			cl := newTestCluster(t, typ, servers, shardsPer, clients)
			recs := make([][]*check.Recorder, servers)
			for s := 0; s < servers; s++ {
				recs[s] = make([]*check.Recorder, shardsPer)
				for j := range recs[s] {
					recs[s][j] = check.NewRecorder()
				}
				cl.Front(s).SetTracer(&clusterRecorderTracer{recs: recs[s]})
			}
			for s := 0; s < servers; s++ {
				cl.Server(s).Heap().ArmCrash(uint64(120 + 60*s))
			}

			// The monitor restarts crashed servers until the restart budget
			// is spent, then lets them run to completion crash-free.
			stop := make(chan struct{})
			var monWG sync.WaitGroup
			monWG.Add(1)
			go func() {
				defer monWG.Done()
				restarts := 0
				for {
					select {
					case <-stop:
						return
					case <-time.After(200 * time.Microsecond):
					}
					for s := 0; s < servers; s++ {
						srv := cl.Server(s)
						if !srv.Heap().Crashed() {
							continue
						}
						// In-flight shard ops died with the machine.
						for _, r := range recs[s] {
							r.CrashAll()
						}
						restarts++
						adv := pmem.NewRandomFates(int64(100*s + restarts))
						if err := srv.Restart(adv); err != nil {
							// The serve goroutine may not have marked the
							// server down yet; retry on the next tick.
							restarts--
							continue
						}
						if restarts < maxRestarts {
							srv.Heap().ArmCrash(uint64(100 + 50*restarts))
						}
					}
				}
			}()

			var wg sync.WaitGroup
			errs := make(chan error, clients)
			var insMu sync.Mutex
			inserted := map[uint64]bool{}
			removed := map[uint64]bool{}
			for id := 0; id < clients; id++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					cc := NewClusterClient(cl, id, RetryPolicy{
						MaxAttempts: 4096,
						BackoffBase: 50 * time.Microsecond,
						BackoffMax:  500 * time.Microsecond,
						Seed:        int64(7000 + id),
					})
					for p := 0; p < pairs; p++ {
						v := uint64(1000*(id+1) + p)
						resp, err := cc.Do(insertSpec(typ, v))
						if err != nil {
							errs <- fmt.Errorf("client %d: insert %d: %w", id, v, err)
							return
						}
						if resp.Kind != spec.Ack {
							errs <- fmt.Errorf("client %d: insert %d responded %s", id, v, resp)
							return
						}
						insMu.Lock()
						inserted[v] = true
						insMu.Unlock()
						resp, err = cc.Do(removeSpec(typ))
						if err != nil {
							errs <- fmt.Errorf("client %d: remove: %w", id, err)
							return
						}
						if resp.Kind == spec.Val {
							insMu.Lock()
							if removed[resp.V] {
								errs <- fmt.Errorf("client %d: value %d removed twice", id, resp.V)
								insMu.Unlock()
								return
							}
							removed[resp.V] = true
							insMu.Unlock()
						}
					}
				}(id)
			}
			done := make(chan struct{})
			go func() { wg.Wait(); close(done) }()
			select {
			case <-done:
			case <-time.After(60 * time.Second):
				t.Fatal("cluster stress timed out: a client is stuck")
			}
			close(stop)
			monWG.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}

			// Quiesce: bring every server up crash-free for the drain.
			for s := 0; s < servers; s++ {
				srv := cl.Server(s)
				srv.Heap().ArmCrash(0)
				if srv.Heap().Crashed() {
					for _, r := range recs[s] {
						r.CrashAll()
					}
					if err := srv.Restart(pmem.KeepAll{}); err != nil {
						t.Fatalf("final restart of server %d: %v", s, err)
					}
				}
			}

			// Drain every shard into its history and the conservation set.
			base := removeSpec(typ)
			for s := 0; s < servers; s++ {
				cl.Front(s).SetTracer(nil)
				for j := 0; j < shardsPer; j++ {
					for {
						recs[s][j].Begin(0, base)
						resp, err := cl.Front(s).Shard(j).Invoke(0, dss.Op{Kind: dss.Remove})
						if err != nil {
							t.Fatalf("server %d shard %d: drain: %v", s, j, err)
						}
						if resp.Kind == dss.Val {
							recs[s][j].End(0, spec.ValResp(resp.Val))
							if removed[resp.Val] {
								t.Fatalf("server %d shard %d: drained %d, already removed by a client", s, j, resp.Val)
							}
							removed[resp.Val] = true
						} else {
							recs[s][j].End(0, spec.EmptyResp())
							break
						}
					}
				}
			}

			// Exactly-once conservation across the cluster.
			for v := range inserted {
				if !removed[v] {
					t.Errorf("inserted value %d was never removed (lost)", v)
				}
			}
			for v := range removed {
				if !inserted[v] {
					t.Errorf("removed value %d was never inserted (invented)", v)
				}
			}

			// Per-(server,shard) strict linearizability w.r.t. D⟨T⟩.
			for s := 0; s < servers; s++ {
				for j := 0; j < shardsPer; j++ {
					hist := recs[s][j].History()
					d := spec.Detectable(typ.Model(), clients)
					if r := check.StrictlyLinearizable(d, hist); !r.OK {
						t.Fatalf("server %d shard %d history not strictly linearizable:\n%s",
							s, j, check.FormatHistory(hist))
					}
				}
			}
		})
	}
}

// TestClusterClientRecoverComplete exercises the full-system crash path:
// clients run until a blackout kills every server mid-flight, then the
// servers restart, fresh client handles Recover and Complete the pending
// operation, and the DSS trichotomy holds — the pending operation either
// never happened (absent) or is finished exactly once.
func TestClusterClientRecoverComplete(t *testing.T) {
	for _, typ := range clusterTypes() {
		typ := typ
		t.Run(typ.Name, func(t *testing.T) {
			cl := newTestCluster(t, typ, 2, 2, 1)
			cc := NewClusterClient(cl, 0, RetryPolicy{Seed: 42})
			for v := uint64(1); v <= 4; v++ {
				if _, err := cc.Do(insertSpec(typ, v)); err != nil {
					t.Fatalf("insert %d: %v", v, err)
				}
			}

			// Blackout: both machines lose power at once. CrashNow marks the
			// heaps crashed; the serve loops die on their next request, so
			// stop them first (durable state is already fixed).
			cl.StopAll()
			for s := 0; s < cl.Servers(); s++ {
				h := cl.Server(s).Heap()
				h.CrashNow()
				if !h.Crashed() {
					t.Fatalf("server %d: CrashNow did not crash", s)
				}
			}
			for s := 0; s < cl.Servers(); s++ {
				if err := cl.Server(s).Restart(pmem.KeepAll{}); err != nil {
					t.Fatalf("restart server %d: %v", s, err)
				}
			}

			// A fresh client handle over the surviving cursor: the last
			// insert completed before the blackout, so Complete must report
			// it executed with its recorded response.
			cc2 := NewClusterClient(cl, 0, RetryPolicy{Seed: 43})
			op, resp, completed, err := cc2.Complete()
			if err != nil {
				t.Fatalf("Complete: %v", err)
			}
			if !completed {
				t.Fatalf("Complete reported absent for an executed insert")
			}
			if op.Tag != 4 {
				t.Fatalf("Complete resolved tag %d, want 4", op.Tag)
			}
			if resp.Kind != spec.Ack {
				t.Fatalf("Complete resolved %s for an insert", resp)
			}

			// The tag counter resumed past every claimed tag: new operations
			// get fresh tags and the multiset drains exactly.
			got := map[uint64]bool{}
			for i := 0; i < 4; i++ {
				resp, err := cc2.Do(removeSpec(typ))
				if err != nil {
					t.Fatalf("remove %d: %v", i, err)
				}
				if resp.Kind != spec.Val || got[resp.V] {
					t.Fatalf("remove %d: %s (duplicate or empty)", i, resp)
				}
				got[resp.V] = true
			}
			if resp, err := cc2.Do(removeSpec(typ)); err != nil || resp.Kind != spec.Empty {
				t.Fatalf("final remove = (%s, %v), want EMPTY", resp, err)
			}
		})
	}
}

// TestClusterInsertsSpreadAcrossServers pins the routing cursor's
// round-robin behaviour: a client's inserts land on every server, and the
// persisted route always names the server of the latest operation.
func TestClusterInsertsSpreadAcrossServers(t *testing.T) {
	cl := newTestCluster(t, dss.QueueType, 3, 1, 1)
	cc := NewClusterClient(cl, 0, RetryPolicy{Seed: 1})
	seen := map[int]bool{}
	for v := uint64(1); v <= 9; v++ {
		if _, err := cc.Do(insertSpec(dss.QueueType, v)); err != nil {
			t.Fatalf("insert %d: %v", v, err)
		}
		r := cc.Route()
		if r < 0 || r >= 3 {
			t.Fatalf("route %d out of range", r)
		}
		seen[r] = true
	}
	if len(seen) != 3 {
		t.Fatalf("9 inserts touched %d of 3 servers", len(seen))
	}
	var errs []error
	for s := 0; s < 3; s++ {
		st := cc.Inner(s).Stats()
		if st.Ops != 3 {
			errs = append(errs, fmt.Errorf("server %d served %d inserts, want 3", s, st.Ops))
		}
	}
	if err := errors.Join(errs...); err != nil {
		t.Fatal(err)
	}
}
