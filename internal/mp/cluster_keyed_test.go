package mp

import (
	"math/rand"
	"testing"

	"repro/internal/dss"
	"repro/internal/pmem"
	"repro/internal/sharded"
	"repro/internal/spec"
)

// TestClusterKeyedRoutePlacement pins the cluster-level key routing: for
// a KeyRouted type every operation on key k must land on (and the
// persisted cursor must name) server KeyShard(k, servers), and within
// that server the sharded front places it on KeyShard(k, shards) — two
// levels of content addressing, no round-robin anywhere.
func TestClusterKeyedRoutePlacement(t *testing.T) {
	const (
		servers   = 3
		shardsPer = 2
	)
	cl := newTestCluster(t, dss.MapType, servers, shardsPer, 1)
	cc := NewClusterClient(cl, 0, RetryPolicy{Seed: 7})
	for key := uint64(1); key <= 24; key++ {
		resp, err := cc.Do(spec.Put(key, key*10))
		if err != nil {
			t.Fatalf("put(%d): %v", key, err)
		}
		if resp.Kind != spec.Ack {
			t.Fatalf("put(%d) responded %s", key, resp)
		}
		if got, want := cc.Route(), sharded.KeyShard(key, servers); got != want {
			t.Fatalf("key %d routed to server %d, want KeyShard = %d", key, got, want)
		}
	}
	// Every key must live on its hash server's hash shard and nowhere else.
	for key := uint64(1); key <= 24; key++ {
		home := sharded.KeyShard(key, servers)
		for s := 0; s < servers; s++ {
			for j := 0; j < shardsPer; j++ {
				resp, err := cl.Front(s).Shard(j).Invoke(0, dss.Op{Kind: dss.Get, Key: key})
				if err != nil {
					t.Fatal(err)
				}
				if s == home && j == sharded.KeyShard(key, shardsPer) {
					if resp.Kind != dss.Val || resp.Val != key*10 {
						t.Fatalf("key %d missing from server %d shard %d: %+v", key, s, j, resp)
					}
				} else if resp.Kind == dss.Val {
					t.Fatalf("key %d leaked onto server %d shard %d", key, s, j)
				}
			}
		}
	}
}

// TestClusterKeyedSequentialConformance drives a random sequential
// stream of keyed map operations from several client identities through
// the cluster against ONE global sequential map oracle. For container
// types the cluster is only k-relaxed, so no such oracle exists; for a
// key-routed type the composition is exact — every key has one home
// server — and the whole cluster must be indistinguishable from a single
// sequential hash map.
func TestClusterKeyedSequentialConformance(t *testing.T) {
	const (
		servers   = 3
		shardsPer = 2
		clients   = 2
		steps     = 400
	)
	cl := newTestCluster(t, dss.MapType, servers, shardsPer, clients)
	ccs := make([]*ClusterClient, clients)
	for id := 0; id < clients; id++ {
		ccs[id] = NewClusterClient(cl, id, RetryPolicy{Seed: int64(500 + id)})
	}

	oracle := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(20260808))
	next := uint64(1000)
	for i := 0; i < steps; i++ {
		cc := ccs[rng.Intn(clients)]
		key := uint64(rng.Intn(12) + 1)
		var (
			op   spec.Op
			want spec.Resp
		)
		switch rng.Intn(4) {
		case 0:
			next++
			op = spec.Put(key, next)
			want = spec.AckResp()
			oracle[key] = next
		case 1:
			op = spec.Get(key)
			if v, ok := oracle[key]; ok {
				want = spec.ValResp(v)
			} else {
				want = spec.EmptyResp()
			}
		case 2:
			op = spec.Del(key)
			if v, ok := oracle[key]; ok {
				want = spec.ValResp(v)
				delete(oracle, key)
			} else {
				want = spec.EmptyResp()
			}
		default:
			next++
			exp := uint64(0)
			if v, ok := oracle[key]; ok && rng.Intn(2) == 0 {
				exp = v // hit
			} else {
				exp = next + 1_000_000_000 // guaranteed miss
			}
			op = spec.MCAS(key, exp, next)
			switch v, ok := oracle[key]; {
			case !ok:
				want = spec.ValResp2(0, 0)
			case v != exp:
				want = spec.ValResp2(0, v)
			default:
				want = spec.ValResp2(1, exp)
				oracle[key] = next
			}
		}
		resp, err := cc.Do(op)
		if err != nil {
			t.Fatalf("step %d: %s: %v", i, op, err)
		}
		if resp != want {
			t.Fatalf("step %d: %s responded %s, oracle says %s", i, op, resp, want)
		}
		if got, wantR := cc.Route(), sharded.KeyShard(key, servers); got != wantR {
			t.Fatalf("step %d: key %d routed to server %d, want %d", i, key, got, wantR)
		}
	}

	// Final audit: every key in (and out of) the oracle, through a fresh
	// client identity's key-routed gets.
	for key := uint64(1); key <= 12; key++ {
		resp, err := ccs[0].Do(spec.Get(key))
		if err != nil {
			t.Fatalf("audit get(%d): %v", key, err)
		}
		if v, ok := oracle[key]; ok {
			if resp != spec.ValResp(v) {
				t.Fatalf("audit: key %d = %s, oracle says %d", key, resp, v)
			}
		} else if resp.Kind != spec.Empty {
			t.Fatalf("audit: key %d = %s, oracle says absent", key, resp)
		}
	}
}

// TestClusterKeyedRecoverComplete exercises the full-system blackout for
// the keyed cluster: a client's puts straddle servers by key hash, every
// server loses power at once, the servers restart, and a fresh client
// handle must Complete the claimed operation exactly once — then resume
// with fresh tags and observe every put's effect intact on its home
// server.
func TestClusterKeyedRecoverComplete(t *testing.T) {
	cl := newTestCluster(t, dss.MapType, 2, 2, 1)
	cc := NewClusterClient(cl, 0, RetryPolicy{Seed: 42})
	for key := uint64(1); key <= 6; key++ {
		if _, err := cc.Do(spec.Put(key, key*100)); err != nil {
			t.Fatalf("put(%d): %v", key, err)
		}
	}

	cl.StopAll()
	for s := 0; s < cl.Servers(); s++ {
		h := cl.Server(s).Heap()
		h.CrashNow()
		if !h.Crashed() {
			t.Fatalf("server %d: CrashNow did not crash", s)
		}
	}
	for s := 0; s < cl.Servers(); s++ {
		if err := cl.Server(s).Restart(pmem.KeepAll{}); err != nil {
			t.Fatalf("restart server %d: %v", s, err)
		}
	}

	cc2 := NewClusterClient(cl, 0, RetryPolicy{Seed: 43})
	op, resp, completed, err := cc2.Complete()
	if err != nil {
		t.Fatalf("Complete: %v", err)
	}
	if !completed {
		t.Fatal("Complete reported absent for an executed put")
	}
	if op.Sym != "put" || op.Arg != 6 || op.Arg2 != 600 {
		t.Fatalf("Complete resolved %s, want put(6,600)", op)
	}
	if resp.Kind != spec.Ack {
		t.Fatalf("Complete resolved %s for a put", resp)
	}

	// Post-recovery: every key answers from its home server, two-word ops
	// included, under fresh tags.
	for key := uint64(1); key <= 6; key++ {
		resp, err := cc2.Do(spec.Get(key))
		if err != nil {
			t.Fatalf("get(%d): %v", key, err)
		}
		if resp != spec.ValResp(key*100) {
			t.Fatalf("get(%d) = %s, want %d", key, resp, key*100)
		}
	}
	if resp, err := cc2.Do(spec.MCAS(3, 300, 301)); err != nil || resp != spec.ValResp2(1, 300) {
		t.Fatalf("mcas(3: 300→301) = (%s, %v), want (1, 300)", resp, err)
	}
	if resp, err := cc2.Do(spec.Del(3)); err != nil || resp != spec.ValResp(301) {
		t.Fatalf("del(3) = (%s, %v), want 301", resp, err)
	}
}
