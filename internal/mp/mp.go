// Package mp demonstrates the paper's portability property (D2): "the
// definition should be independent of any particular model of
// computation". Section 2 argues the DSS is compatible with message
// passing as well as shared memory; this package makes that concrete.
//
// A Server process owns a detectable object (any D⟨T⟩ from the universal
// construction) whose state lives in simulated persistent memory. Clients
// never touch memory: they interact purely by request/reply messages —
// prep, exec, resolve, and plain invocations travel over channels. The
// server can crash mid-operation (the heap's crash injection fires while
// a request is being applied); after a restart, clients reconnect under
// the same identity and use resolve, exactly as shared-memory threads
// would. The DSS axioms are the same; only the transport changed.
package mp

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/pmem"
	"repro/internal/spec"
	"repro/internal/universal"
)

// ErrServerDown is returned to a client whose request hit a crashed (or
// stopped) server. The client's recourse is the DSS's: wait for the
// restart and resolve.
var ErrServerDown = errors.New("mp: server down")

// reqKind enumerates the message types of the object protocol.
type reqKind int

const (
	reqPrep reqKind = iota + 1
	reqExec
	reqResolve
	reqInvoke
)

type request struct {
	kind   reqKind
	client int
	op     spec.Op
	reply  chan reply
}

type reply struct {
	resp spec.Resp
	err  error
}

// Server owns the detectable object and serializes access to it. It
// plays the role of the shared memory multiprocessor: the object's
// durable state survives its crashes.
//
// Liveness protocol: each Start creates a generation with a request
// channel and a `down` signal channel. The request channel is never
// closed (closing a channel with concurrent senders is a race); instead,
// crashing or stopping closes `down`, which unblocks every sender and the
// serve loop.
type Server struct {
	h   *pmem.Heap
	obj *universal.Object

	mu      sync.Mutex
	up      bool
	req     chan request
	down    chan struct{}
	stopped chan struct{}
}

// NewServer builds a server whose object has the given initial state and
// operation table, for clients 0..clients-1.
func NewServer(clients, capacity int, init spec.State, ops []spec.Op) (*Server, error) {
	h, err := pmem.New(pmem.Config{Words: 1 << 18, Mode: pmem.Tracked})
	if err != nil {
		return nil, err
	}
	obj, err := universal.New(h, 0, clients, capacity, init, ops)
	if err != nil {
		return nil, err
	}
	return &Server{h: h, obj: obj}, nil
}

// Heap exposes the server's heap so tests can arm crashes.
func (s *Server) Heap() *pmem.Heap { return s.h }

// Start begins (or resumes) serving. It is an error to start a running
// server.
func (s *Server) Start() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.up {
		return fmt.Errorf("mp: server already running")
	}
	s.req = make(chan request)
	s.down = make(chan struct{})
	s.stopped = make(chan struct{})
	s.up = true
	go s.serve(s.req, s.down, s.stopped)
	return nil
}

// serve processes requests until a crash fires or `down` closes. A crash
// mid-request abandons the request (its reply never comes with a value —
// the client gets ErrServerDown), mirroring a machine losing power while
// an operation is in flight.
func (s *Server) serve(req chan request, down, stopped chan struct{}) {
	defer close(stopped)
	for {
		var r request
		select {
		case r = <-req:
		case <-down:
			return
		}
		crashed := pmem.RunToCrash(func() {
			var out spec.Resp
			var err error
			switch r.kind {
			case reqPrep:
				err = s.obj.Prep(r.client, r.op)
			case reqExec:
				out, err = s.obj.Exec(r.client)
			case reqResolve:
				out = s.obj.Resolve(r.client)
			case reqInvoke:
				out, err = s.obj.Invoke(r.client, r.op)
			default:
				err = fmt.Errorf("mp: unknown request kind %d", int(r.kind))
			}
			r.reply <- reply{resp: out, err: err}
		})
		if crashed {
			// The machine is gone: fail the in-flight client and every
			// queued one; Restart() brings it back.
			r.reply <- reply{err: ErrServerDown}
			s.markDown()
			return
		}
	}
}

// markDown transitions the server to the crashed state: closing `down`
// unblocks every pending and future sender of this generation with
// ErrServerDown.
func (s *Server) markDown() {
	s.mu.Lock()
	if !s.up {
		s.mu.Unlock()
		return
	}
	s.up = false
	down := s.down
	s.req = nil
	s.mu.Unlock()
	close(down)
}

// Stop shuts the server down cleanly (no crash; durable state is intact).
func (s *Server) Stop() {
	s.mu.Lock()
	stopped := s.stopped
	s.mu.Unlock()
	s.markDown()
	if stopped != nil {
		<-stopped
	}
}

// Restart completes a crash: the heap's surviving image is adopted (the
// caller chooses the adversary), the object recovers, and serving
// resumes.
func (s *Server) Restart(adv pmem.Adversary) error {
	s.mu.Lock()
	if s.up {
		s.mu.Unlock()
		return fmt.Errorf("mp: restart of a running server")
	}
	s.mu.Unlock()
	if s.h.Crashed() {
		s.h.Crash(adv)
	}
	s.obj.Recover()
	return s.Start()
}

// send delivers one request, translating a dead server into ErrServerDown.
func (s *Server) send(r request) reply {
	s.mu.Lock()
	req := s.req
	down := s.down
	up := s.up
	s.mu.Unlock()
	if !up || req == nil {
		return reply{err: ErrServerDown}
	}
	r.reply = make(chan reply, 1)
	select {
	case req <- r:
	case <-down:
		return reply{err: ErrServerDown}
	}
	select {
	case out := <-r.reply:
		return out
	case <-down:
		// The server died while our request was in flight. The reply
		// channel is buffered, so a reply racing with the crash is
		// preferred if present.
		select {
		case out := <-r.reply:
			return out
		default:
			return reply{err: ErrServerDown}
		}
	}
}

// Client is a process identity interacting with the object purely through
// messages. Identities survive crashes (the paper's standing assumption).
type Client struct {
	id int
	s  *Server
}

// NewClient binds identity id to the server.
func NewClient(s *Server, id int) *Client { return &Client{id: id, s: s} }

// Prep declares a detectable operation (Axiom 1) over the wire.
func (c *Client) Prep(op spec.Op) error {
	r := c.s.send(request{kind: reqPrep, client: c.id, op: op})
	return r.err
}

// Exec applies the prepared operation (Axiom 2) over the wire.
func (c *Client) Exec() (spec.Resp, error) {
	r := c.s.send(request{kind: reqExec, client: c.id})
	return r.resp, r.err
}

// Resolve asks the object for (A[p], R[p]) (Axiom 3) over the wire.
func (c *Client) Resolve() (spec.Resp, error) {
	r := c.s.send(request{kind: reqResolve, client: c.id})
	return r.resp, r.err
}

// Invoke applies op non-detectably (Axiom 4) over the wire.
func (c *Client) Invoke(op spec.Op) (spec.Resp, error) {
	r := c.s.send(request{kind: reqInvoke, client: c.id, op: op})
	return r.resp, r.err
}
