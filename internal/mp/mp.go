// Package mp demonstrates the paper's portability property (D2): "the
// definition should be independent of any particular model of
// computation". Section 2 argues the DSS is compatible with message
// passing as well as shared memory; this package makes that concrete.
//
// A Server process owns a detectable object (any D⟨T⟩ from the universal
// construction) whose state lives in simulated persistent memory. Clients
// never touch memory: they interact purely by request/reply messages —
// prep, exec, resolve, and plain invocations travel over a Transport. The
// server can crash mid-operation (the heap's crash injection fires while
// a request is being applied); after a restart, clients reconnect under
// the same identity and use resolve, exactly as shared-memory threads
// would. The DSS axioms are the same; only the transport changed.
//
// The package layers as a real service would:
//
//   - Engine: the transport-independent core — object, generation
//     counter, at-most-once reply cache (engine.go).
//   - Server: Engine behind an in-process channel transport with a serve
//     goroutine; it implements Transport (this file).
//   - FaultyTransport: a deterministic, seeded adversary that drops,
//     duplicates, and delays messages (transport.go).
//   - Client: the thin request/reply wrapper over any Transport; callers
//     handle crashes themselves (this file).
//   - RetryClient: the production-shaped client — timeouts, capped
//     exponential backoff, and the resolve-before-retry discipline that
//     keeps every detectable operation exactly-once (retry.go).
package mp

import (
	"fmt"
	"sync"

	"repro/internal/pmem"
	"repro/internal/spec"
)

// request pairs a message with its reply channel inside the in-process
// channel transport.
type request struct {
	m     Msg
	reply chan Reply
}

// Server owns the detectable object and serializes access to it. It
// plays the role of the shared memory multiprocessor: the object's
// durable state survives its crashes.
//
// Liveness protocol: each Start creates a generation with a request
// channel and a `down` signal channel. The request channel is never
// closed (closing a channel with concurrent senders is a race); instead,
// crashing or stopping closes `down`, which unblocks every sender and the
// serve loop. The server is marked down *before* the in-flight client is
// failed, so a client that observes ErrServerDown can immediately call
// Restart without racing the dying serve goroutine.
type Server struct {
	eng *Engine

	mu      sync.Mutex
	up      bool
	req     chan request
	down    chan struct{}
	stopped chan struct{}
}

// NewServer builds a server whose object has the given initial state and
// operation table, for clients 0..clients-1.
func NewServer(clients, capacity int, init spec.State, ops []spec.Op) (*Server, error) {
	eng, err := NewEngine(EngineConfig{
		Clients: clients, Capacity: capacity, Words: 1 << 18,
		Init: init, Ops: ops,
	})
	if err != nil {
		return nil, err
	}
	return &Server{eng: eng}, nil
}

// NewServerWith builds a server around an arbitrary engine configuration
// (a NewObject hook, explicit heap sizing, ...). NewServer remains the
// universal-construction shorthand.
func NewServerWith(cfg EngineConfig) (*Server, error) {
	eng, err := NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	return &Server{eng: eng}, nil
}

// Heap exposes the server's heap so tests can arm crashes.
func (s *Server) Heap() *pmem.Heap { return s.eng.Heap() }

// Engine exposes the transport-independent core, for harnesses that
// bypass the channel transport.
func (s *Server) Engine() *Engine { return s.eng }

// Gen returns the server's current generation: the number of Starts so
// far. Safe from any goroutine.
func (s *Server) Gen() uint64 { return s.eng.Gen() }

// Start begins (or resumes) serving under a fresh generation. It is an
// error to start a running server.
func (s *Server) Start() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.up {
		return fmt.Errorf("mp: server already running")
	}
	s.eng.NewGeneration()
	s.req = make(chan request)
	s.down = make(chan struct{})
	s.stopped = make(chan struct{})
	s.up = true
	go s.serve(s.req, s.down, s.stopped)
	return nil
}

// serve processes requests until a crash fires or `down` closes. A crash
// mid-request abandons the request (its reply never comes with a value —
// the client gets ErrServerDown), mirroring a machine losing power while
// an operation is in flight.
func (s *Server) serve(req chan request, down, stopped chan struct{}) {
	defer close(stopped)
	for {
		var r request
		select {
		case r = <-req:
		case <-down:
			return
		}
		crashed := pmem.RunToCrash(func() {
			r.reply <- s.eng.Apply(r.m)
		})
		if crashed {
			// The machine is gone: mark the server down first (so the
			// failed client can restart it without racing this goroutine),
			// then fail the in-flight request; `down` fails every queued
			// one. Restart() brings it back.
			s.markDown()
			r.reply <- Reply{Gen: s.eng.Gen(), Err: &DownError{Gen: s.eng.Gen()}}
			return
		}
	}
}

// markDown transitions the server to the crashed state: closing `down`
// unblocks every pending and future sender of this generation with
// ErrServerDown.
func (s *Server) markDown() {
	s.mu.Lock()
	if !s.up {
		s.mu.Unlock()
		return
	}
	s.up = false
	down := s.down
	s.req = nil
	s.mu.Unlock()
	close(down)
}

// Stop shuts the server down cleanly (no crash; durable state is intact).
func (s *Server) Stop() {
	s.mu.Lock()
	stopped := s.stopped
	s.mu.Unlock()
	s.markDown()
	if stopped != nil {
		<-stopped
	}
}

// Restart completes a crash: the heap's surviving image is adopted (the
// caller chooses the adversary), the object recovers, and serving
// resumes under a new generation.
func (s *Server) Restart(adv pmem.Adversary) error {
	s.mu.Lock()
	if s.up {
		s.mu.Unlock()
		return fmt.Errorf("mp: restart of a running server")
	}
	s.mu.Unlock()
	s.eng.RecoverImage(adv)
	return s.Start()
}

// RoundTrip delivers one request over the in-process channel transport,
// translating a dead server into ErrServerDown. It implements Transport;
// the channels themselves are perfect, so faults come only from crashes
// (or from a FaultyTransport wrapped around the server).
func (s *Server) RoundTrip(m Msg) Reply {
	s.mu.Lock()
	req := s.req
	down := s.down
	up := s.up
	s.mu.Unlock()
	if !up || req == nil {
		return Reply{Gen: s.eng.Gen(), Err: &DownError{Gen: s.eng.Gen()}}
	}
	r := request{m: m, reply: make(chan Reply, 1)}
	select {
	case req <- r:
	case <-down:
		return Reply{Gen: s.eng.Gen(), Err: &DownError{Gen: s.eng.Gen()}}
	}
	select {
	case out := <-r.reply:
		return out
	case <-down:
		// The server died while our request was in flight. The reply
		// channel is buffered, so a reply racing with the crash is
		// preferred if present.
		select {
		case out := <-r.reply:
			return out
		default:
			return Reply{Gen: s.eng.Gen(), Err: &DownError{Gen: s.eng.Gen()}}
		}
	}
}

var _ Transport = (*Server)(nil)

// Client is a process identity interacting with the object purely through
// messages. Identities survive crashes (the paper's standing assumption).
//
// Client is the thin wrapper: it sends each call once, with no sequence
// numbers and no generation pinning (Msg.Gen = Msg.Seq = 0), and reports
// transport errors to the caller, who owns the retry/resolve logic. Over
// a faulty transport, use RetryClient instead — a duplicated non-idempotent
// request from a bare Client executes twice by design.
type Client struct {
	id int
	t  Transport
}

// NewClient binds identity id to the server over its in-process transport.
func NewClient(s *Server, id int) *Client { return &Client{id: id, t: s} }

// NewClientOver binds identity id to an arbitrary transport.
func NewClientOver(t Transport, id int) *Client { return &Client{id: id, t: t} }

// Prep declares a detectable operation (Axiom 1) over the wire.
func (c *Client) Prep(op spec.Op) error {
	r := c.t.RoundTrip(Msg{Kind: ReqPrep, Client: c.id, Op: op})
	return r.Err
}

// Exec applies the prepared operation (Axiom 2) over the wire.
func (c *Client) Exec() (spec.Resp, error) {
	r := c.t.RoundTrip(Msg{Kind: ReqExec, Client: c.id})
	return r.Resp, r.Err
}

// Resolve asks the object for (A[p], R[p]) (Axiom 3) over the wire.
func (c *Client) Resolve() (spec.Resp, error) {
	r := c.t.RoundTrip(Msg{Kind: ReqResolve, Client: c.id})
	return r.Resp, r.Err
}

// Invoke applies op non-detectably (Axiom 4) over the wire.
func (c *Client) Invoke(op spec.Op) (spec.Resp, error) {
	r := c.t.RoundTrip(Msg{Kind: ReqInvoke, Client: c.id, Op: op})
	return r.Resp, r.Err
}
