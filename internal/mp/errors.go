package mp

import "errors"

// The error vocabulary of the message-passing layer splits into two
// classes, and the split is the whole point:
//
//   - Ambiguous errors (ErrServerDown, ErrTimeout): the request's outcome
//     is UNKNOWN. The request may have been lost before it reached the
//     server (not executed), or the server may have executed it and the
//     reply was lost. The only correct continuation for a detectable
//     operation is the DSS's: reconnect and Resolve, then decide. Blindly
//     re-sending a prep or exec after one of these errors risks executing
//     the operation twice. Retryable reports this class.
//
//   - Definite errors (ErrSuperseded, spec-level failures such as
//     universal.ErrNoRecords, malformed requests): the outcome is known —
//     the request did not and will not take effect — and re-sending the
//     identical request cannot succeed either.
var (
	// ErrServerDown is returned to a client whose request hit a crashed
	// (or stopped) server, or whose connection names a generation the
	// server has moved past. The outcome of the request is unknown: it may
	// have executed just before the crash. Resolve after reconnecting.
	// Errors of this kind are *DownError values carrying the server's
	// generation; errors.Is(err, ErrServerDown) matches them.
	ErrServerDown = errors.New("mp: server down")

	// ErrTimeout is returned by a Transport when no reply arrived within
	// the transport's deadline. Like ErrServerDown it is ambiguous: the
	// request, the reply, or the server itself may have been lost.
	ErrTimeout = errors.New("mp: request timed out")

	// ErrSuperseded is returned for a request that is older than one the
	// server has already applied for the same client in this generation —
	// a delayed or duplicated message arriving after the client moved on.
	// It is definite: the stale request was discarded without executing.
	ErrSuperseded = errors.New("mp: request superseded by a newer one")
)

// DownError is the concrete type behind ErrServerDown: it carries the
// server's generation so that clients can distinguish "the server is down
// right now" (wait, reconnect, resolve) from "my connection is stale — the
// server crashed and recovered while I wasn't looking" (adopt the new
// generation and resolve immediately; there is nothing to wait for).
type DownError struct {
	// Gen is the server's current generation: the number of Starts the
	// server has performed, 0 if it never started. Every successful Start
	// (including each Restart) begins a new generation, so a generation
	// change is proof that a crash or stop intervened.
	Gen uint64
	// Stale is true when the server is up but the request named an older
	// generation. The connection the request traveled on predates the most
	// recent crash; any in-flight state the client assumed (an
	// acknowledged prep, say) must be re-derived via resolve.
	Stale bool
}

// Error implements error.
func (e *DownError) Error() string {
	if e.Stale {
		return "mp: server restarted (stale generation; current gen " + utoa(e.Gen) + ")"
	}
	return "mp: server down (gen " + utoa(e.Gen) + ")"
}

// Is makes errors.Is(err, ErrServerDown) match every DownError.
func (e *DownError) Is(target error) bool { return target == ErrServerDown }

// utoa is strconv.FormatUint without the import, for the two error paths.
func utoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// Retryable reports whether err is an ambiguous transport error: the
// outcome of the request is unknown, and the correct continuation is to
// reconnect and Resolve — never to blindly re-send a prep or exec.
// RetryClient applies exactly this discipline; hand-rolled clients must
// do the same to keep detectable operations exactly-once.
func Retryable(err error) bool {
	return errors.Is(err, ErrServerDown) || errors.Is(err, ErrTimeout)
}
