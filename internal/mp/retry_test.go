package mp

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/pmem"
	"repro/internal/spec"
)

// dropExecReply lets the first exec execute at the server but loses its
// reply — the classic "did my operation happen?" ambiguity.
type dropExecReply struct {
	inner   Transport
	mu      sync.Mutex
	dropped bool
}

func (d *dropExecReply) RoundTrip(m Msg) Reply {
	rep := d.inner.RoundTrip(m)
	d.mu.Lock()
	defer d.mu.Unlock()
	if m.Kind == ReqExec && !d.dropped {
		d.dropped = true
		return Reply{Err: ErrTimeout}
	}
	return rep
}

// TestRetryClientRecoversLostExecReply pins the settle(executed) path: the
// exec takes effect but its reply is lost; the client must recover the
// recorded response via resolve and must not execute again.
func TestRetryClientRecoversLostExecReply(t *testing.T) {
	s := newCounterServer(t, 1)
	defer s.Stop()
	rc := NewRetryClient(&dropExecReply{inner: s}, 0, RetryPolicy{BackoffBase: time.Microsecond})

	resp, err := rc.Do(spec.Inc())
	if err != nil {
		t.Fatal(err)
	}
	if resp != spec.ValResp(0) {
		t.Fatalf("recovered response = %v, want the recorded Val(0)", resp)
	}
	if st := rc.Stats(); st.Resolves == 0 || st.Timeouts == 0 {
		t.Fatalf("ambiguity was never settled via resolve: %+v", st)
	}
	if r, err := rc.Do(spec.Read()); err != nil || r != spec.ValResp(1) {
		t.Fatalf("counter = (%v, %v) after lost-reply inc, want exactly 1", r, err)
	}
}

// TestRetryClientAdoptsNewGeneration pins the generation discipline: a
// clean stop + restart invalidates the client's pinned generation; the
// next operation sees a stale DownError, adopts the new generation, and
// completes without help.
func TestRetryClientAdoptsNewGeneration(t *testing.T) {
	s := newCounterServer(t, 1)
	defer s.Stop()
	rc := NewRetryClient(s, 0, RetryPolicy{BackoffBase: time.Microsecond})

	if _, err := rc.Do(spec.Inc()); err != nil {
		t.Fatal(err)
	}
	gen := rc.Gen()
	s.Stop()
	if err := s.Restart(pmem.KeepAll{}); err != nil {
		t.Fatal(err)
	}
	if _, err := rc.Do(spec.Inc()); err != nil {
		t.Fatal(err)
	}
	if rc.Gen() <= gen {
		t.Fatalf("client still pinned to generation %d after restart", rc.Gen())
	}
	if st := rc.Stats(); st.GenChanges == 0 {
		t.Fatalf("generation change not observed: %+v", st)
	}
	if r, err := rc.Do(spec.Read()); err != nil || r != spec.ValResp(2) {
		t.Fatalf("counter = (%v, %v) across restart, want exactly 2", r, err)
	}
}

// TestRetryClientGivesUpWhenServerNeverUp pins bounded persistence: a
// client of a never-started server fails with a retryable error instead
// of spinning forever.
func TestRetryClientGivesUpWhenServerNeverUp(t *testing.T) {
	s, err := NewServer(1, 64, spec.NewCounter(), []spec.Op{spec.Inc(), spec.Read()})
	if err != nil {
		t.Fatal(err)
	}
	rc := NewRetryClient(s, 0, RetryPolicy{MaxAttempts: 3, BackoffBase: time.Microsecond})
	if _, err := rc.Do(spec.Inc()); err == nil {
		t.Fatal("Do succeeded against a server that never started")
	} else if !Retryable(err) {
		t.Fatalf("terminal error %v should still be classified retryable (ambiguous)", err)
	}
}

// TestRetryClientExactlyOnceUnderCrashStorm is the wall-clock sibling of
// the harness soak (which is deterministic but single-threaded): real
// goroutines, a really faulty transport, and a supervisor crashing and
// restarting the server, with the race detector watching. Exactly-once
// shows up twice: the fetch-and-increment responses across all clients
// must be distinct (a double execution would skip a value), and the final
// balance must be exact.
func TestRetryClientExactlyOnceUnderCrashStorm(t *testing.T) {
	const (
		clients   = 4
		perClient = 12
	)
	s := newCounterServer(t, clients)
	defer s.Stop()
	ft := NewFaultyTransport(s, FaultConfig{
		Seed:        5,
		DropRequest: 0.03, DropReply: 0.03, Duplicate: 0.05,
		Delay: 0.10, MaxDelay: 50 * time.Microsecond,
	})
	s.Heap().ArmCrash(150)

	// The supervisor plays the machine's power supply and boot firmware:
	// it watches for crashes, restarts under a rotating adversary, and
	// re-arms the next crash for a bounded number of cycles.
	stopSupervisor := make(chan struct{})
	supervisorDone := make(chan struct{})
	restarts := 0
	advs := pmem.Adversaries(5)
	go func() {
		defer close(supervisorDone)
		for {
			select {
			case <-stopSupervisor:
				return
			case <-time.After(100 * time.Microsecond):
			}
			if !s.Heap().Crashed() {
				continue
			}
			restarts++
			if err := s.Restart(advs[restarts%len(advs)]); err != nil {
				t.Errorf("restart %d: %v", restarts, err)
				return
			}
			if restarts < 25 {
				s.Heap().ArmCrash(uint64(100 + 60*restarts))
			}
		}
	}()

	var wg sync.WaitGroup
	values := make(chan uint64, clients*perClient)
	errs := make(chan error, clients)
	for id := 0; id < clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rc := NewRetryClient(ft, id, RetryPolicy{
				MaxAttempts: 4096,
				BackoffBase: 20 * time.Microsecond,
				BackoffMax:  500 * time.Microsecond,
				Seed:        int64(id),
			})
			for i := 0; i < perClient; i++ {
				resp, err := rc.Do(spec.Inc())
				if err != nil {
					errs <- err
					return
				}
				if resp.Kind != spec.Val {
					errs <- errors.New("inc returned " + resp.String())
					return
				}
				values <- resp.V
			}
		}(id)
	}

	// Bound the whole storm with a deadline so a lost wakeup fails the
	// test with diagnostics instead of hanging the suite.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("crash storm timed out: a client is stuck")
	}
	close(stopSupervisor)
	<-supervisorDone
	close(values)
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	seen := map[uint64]bool{}
	for v := range values {
		if seen[v] {
			t.Fatalf("fetch-and-increment returned %d twice: an increment executed twice", v)
		}
		seen[v] = true
	}
	if len(seen) != clients*perClient {
		t.Fatalf("saw %d distinct responses, want %d", len(seen), clients*perClient)
	}

	s.Heap().ArmCrash(0)
	if s.Heap().Crashed() {
		if err := s.Restart(pmem.KeepAll{}); err != nil {
			t.Fatal(err)
		}
	}
	c := NewClient(s, 0)
	bal, err := c.Invoke(spec.Read())
	if err != nil {
		t.Fatal(err)
	}
	if bal != spec.ValResp(clients*perClient) {
		t.Fatalf("balance = %v after %d restarts, want exactly %d", bal, restarts, clients*perClient)
	}
	if restarts == 0 {
		t.Fatal("storm exercised no crashes")
	}
}
