package mp

import (
	"fmt"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/pmem"
	"repro/internal/spec"
	"repro/internal/universal"
)

// ReqKind enumerates the message types of the object protocol.
type ReqKind int

const (
	// ReqPrep declares a detectable operation (Axiom 1).
	ReqPrep ReqKind = iota + 1
	// ReqExec applies the prepared operation (Axiom 2).
	ReqExec
	// ReqResolve asks for (A[p], R[p]) (Axiom 3).
	ReqResolve
	// ReqInvoke applies an operation non-detectably (Axiom 4).
	ReqInvoke
)

// String names the request kind for diagnostics.
func (k ReqKind) String() string {
	switch k {
	case ReqPrep:
		return "prep"
	case ReqExec:
		return "exec"
	case ReqResolve:
		return "resolve"
	case ReqInvoke:
		return "invoke"
	default:
		return fmt.Sprintf("ReqKind(%d)", int(k))
	}
}

// Msg is one request as it travels over a Transport.
//
// Gen and Seq implement the connection discipline that keeps detectable
// operations exactly-once over a transport that may duplicate or delay
// messages arbitrarily:
//
//   - Gen is the server generation the client believes it is talking to.
//     A nonzero Gen that does not match the server's current generation is
//     rejected with a stale DownError — messages from before a crash can
//     never be applied after it, exactly as a TCP connection dies with the
//     peer. Gen 0 means "any generation" (used by the plain Client, whose
//     callers manage crashes themselves).
//
//   - Seq is a per-client sequence number, strictly increasing over the
//     requests a client sends. Within one generation the server applies a
//     request only if its Seq exceeds the last applied one: an exact
//     repeat returns the memoized reply (at-most-once execution under
//     duplication), an older Seq is discarded with ErrSuperseded (a
//     delayed straggler the client has already given up on). Seq 0 opts
//     out of deduplication.
type Msg struct {
	Kind   ReqKind
	Client int
	Gen    uint64
	Seq    uint64
	Op     spec.Op
}

// Reply is the server's answer to one Msg. Gen echoes the generation that
// produced the reply (0 when the transport itself failed the request), so
// clients learn about restarts even from successful replies.
type Reply struct {
	Resp spec.Resp
	Gen  uint64
	Err  error
}

// Transport carries one request to the serving process and returns its
// reply. Implementations are free to lose, duplicate, delay, or reorder
// the underlying messages; RoundTrip must nevertheless eventually return,
// surfacing a lost request or reply as ErrTimeout and an unreachable
// server as ErrServerDown. Callers must treat both as ambiguous outcomes
// (see Retryable).
//
// A Transport must be safe for concurrent use by multiple clients.
type Transport interface {
	RoundTrip(m Msg) Reply
}

// Object is what an Engine serves: the runtime DSS contract in the spec
// vocabulary the wire protocol speaks — the paper's four axioms as
// methods, plus the recovery procedure. universal.Object satisfies it
// directly; any dss.Object does through dss.NewWire. The engine never
// names a concrete structure.
type Object interface {
	// Prep declares a detectable operation for the client (Axiom 1).
	Prep(client int, op spec.Op) error
	// Exec applies the client's prepared operation (Axiom 2).
	Exec(client int) (spec.Resp, error)
	// Resolve reports (A[p], R[p]) (Axiom 3). Total and idempotent.
	Resolve(client int) spec.Resp
	// Invoke applies op non-detectably (Axiom 4).
	Invoke(client int, op spec.Op) (spec.Resp, error)
	// Recover is the object's single-threaded post-crash procedure.
	Recover()
}

// EngineConfig sizes an Engine.
type EngineConfig struct {
	// Clients is the number of process identities (0..Clients-1).
	Clients int
	// Capacity bounds the total number of operations over the object's
	// lifetime (the universal construction's log is append-only).
	Capacity int
	// Words sizes the simulated persistent heap; 0 derives a size from
	// Capacity.
	Words int
	// Init and Ops define the hosted object: its initial abstract state
	// and operation table, served through the universal construction.
	Init spec.State
	Ops  []spec.Op
	// NewObject, when non-nil, overrides the universal-construction
	// default: it receives the engine's heap (root slots from 0 up are
	// the object's to claim) and returns the served object — e.g. a
	// dss.Wire over a concrete detectable structure. Init and Ops are
	// ignored in that case.
	NewObject func(h *pmem.Heap, clients int) (Object, error)
	// Heap, when non-nil, is an already-open heap the engine serves on
	// instead of building a fresh simulated one — a file-backed
	// pmem.OpenFile heap in the multi-process deployment, where the OS
	// (kill -9), not the simulator, is the crash adversary. Words is
	// ignored and the caller owns the heap's lifetime.
	Heap *pmem.Heap
}

// Engine is the transport-independent core of a DSS server: the
// detectable object on its persistent heap, the generation counter, and
// the per-client at-most-once reply cache. Server wraps an Engine with a
// channel transport and a serve goroutine; deterministic harnesses (the
// crash-storm soak) drive an Engine directly, one request at a time.
//
// Engine methods are not synchronized: exactly one goroutine may call
// Apply / NewGeneration / RecoverImage at a time (the serve goroutine, or
// the harness's event loop). Gen alone is safe to read concurrently.
type Engine struct {
	h   *pmem.Heap
	obj Object
	gen atomic.Uint64

	// lastSeq and lastReply implement at-most-once execution per client
	// within a generation. They are volatile by design: a crash loses
	// them, and the generation fence guarantees no request from before the
	// crash can be applied after it.
	lastSeq   []uint64
	lastReply []Reply

	// obs, when non-nil, counts the fence/cache outcomes of Apply and
	// times the recovery procedure. Recording never touches the heap.
	obs *obs.Sink
	// kindOf, when non-nil, attributes applied requests to an operation
	// kind and switches on server-side phase timing in Apply. kindHint
	// carries each client's prepared kind from prep to exec, volatile by
	// design like the reply cache — a crash loses it, and the generation
	// fence keeps pre-crash requests out anyway.
	kindOf   func(spec.Op) obs.OpKind
	kindHint []obs.OpKind
}

// NewEngine builds an engine hosting an object with the given initial
// state and operation table. The engine starts at generation 0 ("never
// started"); call NewGeneration before applying requests.
func NewEngine(cfg EngineConfig) (*Engine, error) {
	if cfg.Clients <= 0 {
		return nil, fmt.Errorf("mp: need at least one client, got %d", cfg.Clients)
	}
	if cfg.Capacity <= 0 {
		return nil, fmt.Errorf("mp: capacity must be positive, got %d", cfg.Capacity)
	}
	h := cfg.Heap
	if h == nil {
		words := cfg.Words
		if words == 0 {
			// Metadata + one line per record, with headroom for pool
			// bookkeeping and the root directory.
			words = 1<<14 + 2*(cfg.Capacity+4*cfg.Clients)*pmem.WordsPerLine
		}
		var err error
		h, err = pmem.New(pmem.Config{Words: words, Mode: pmem.Tracked})
		if err != nil {
			return nil, err
		}
	}
	var obj Object
	var err error
	if cfg.NewObject != nil {
		obj, err = cfg.NewObject(h, cfg.Clients)
	} else {
		obj, err = universal.New(h, 0, cfg.Clients, cfg.Capacity, cfg.Init, cfg.Ops)
	}
	if err != nil {
		return nil, err
	}
	return &Engine{
		h:         h,
		obj:       obj,
		lastSeq:   make([]uint64, cfg.Clients),
		lastReply: make([]Reply, cfg.Clients),
	}, nil
}

// Heap exposes the engine's heap so harnesses can arm crashes.
func (e *Engine) Heap() *pmem.Heap { return e.h }

// SetObs attaches an observability sink (nil to remove). Call it from the
// goroutine that drives the engine, before applying requests.
func (e *Engine) SetObs(s *obs.Sink) { e.obs = s }

// SetOpKind installs the op-kind attribution hook (nil to remove) and,
// with it, server-side phase timing: every applied prep/exec/invoke is
// observed into the sink's (phase, kind) histograms. Harnesses that
// already time at the object layer (dss.Observe) leave it unset, so they
// pay nothing and count nothing twice.
func (e *Engine) SetOpKind(fn func(spec.Op) obs.OpKind) {
	e.kindOf = fn
	if fn != nil && e.kindHint == nil {
		e.kindHint = make([]obs.OpKind, len(e.lastSeq))
	}
}

// Gen returns the current generation (safe from any goroutine).
func (e *Engine) Gen() uint64 { return e.gen.Load() }

// NewGeneration begins a new serving generation: the counter advances and
// the volatile at-most-once state resets. It is called by Server.Start
// and by harnesses after RecoverImage.
func (e *Engine) NewGeneration() uint64 {
	for i := range e.lastSeq {
		e.lastSeq[i] = 0
		e.lastReply[i] = Reply{}
	}
	for i := range e.kindHint {
		e.kindHint[i] = obs.KindNone
	}
	gen := e.gen.Add(1)
	// Recovery is complete once a new serving generation is installed; the
	// event's Arg carries that generation so timeline reconstruction can
	// name the cycle (gen 1 is the initial start, not a recovery).
	if gen > 1 {
		e.obs.Event(obs.EvRecoverEnd, -1, gen)
	}
	return gen
}

// RestoreGeneration installs gen as the engine's current generation
// without touching the reply cache. A freshly-exec'd server process uses
// it to resume the generation line its predecessors established (the
// supervisor, who witnessed every restart, passes the count): the
// process then calls NewGeneration, so every incarnation serves a
// strictly higher generation and the fence rejects ring-redelivered
// requests from any earlier life.
func (e *Engine) RestoreGeneration(gen uint64) { e.gen.Store(gen) }

// RecoverImage completes a simulated crash: the heap's surviving image is
// adopted under the given adversary and the object's recovery procedure
// runs. The caller must start a new generation before applying requests.
func (e *Engine) RecoverImage(adv pmem.Adversary) {
	start := e.obs.Now()
	e.obs.Event(obs.EvRecoverBegin, -1, e.gen.Load())
	if e.h.Crashed() {
		e.h.Crash(adv)
	}
	e.obj.Recover()
	e.obs.ObserveSince(obs.PhaseRecover, obs.KindNone, start)
}

// Apply executes one request against the object and returns its reply.
// It enforces the generation fence and the per-client at-most-once
// discipline described on Msg. It does not absorb simulated crashes; the
// caller wraps it in pmem.RunToCrash and handles the unwound state.
func (e *Engine) Apply(m Msg) Reply {
	gen := e.gen.Load()
	if m.Gen != 0 && m.Gen != gen {
		e.obs.Add(obs.CtrGenFenceTrips, 1)
		return Reply{Gen: gen, Err: &DownError{Gen: gen, Stale: true}}
	}
	if m.Client < 0 || m.Client >= len(e.lastSeq) {
		return Reply{Gen: gen, Err: fmt.Errorf("mp: client %d out of range [0,%d)", m.Client, len(e.lastSeq))}
	}
	if m.Seq != 0 {
		switch last := e.lastSeq[m.Client]; {
		case m.Seq == last:
			e.obs.Add(obs.CtrReplyCacheHits, 1)
			return e.lastReply[m.Client]
		case m.Seq < last:
			e.obs.Add(obs.CtrSuperseded, 1)
			return Reply{Gen: gen, Err: ErrSuperseded}
		}
		e.obs.Add(obs.CtrReplyCacheMisses, 1)
	}
	var k obs.OpKind
	var start uint64
	if e.kindOf != nil {
		switch m.Kind {
		case ReqPrep, ReqInvoke:
			k = e.kindOf(m.Op)
		case ReqExec:
			k = e.kindHint[m.Client]
		}
		start = e.obs.Now()
	}
	var out spec.Resp
	var err error
	switch m.Kind {
	case ReqPrep:
		err = e.obj.Prep(m.Client, m.Op)
	case ReqExec:
		out, err = e.obj.Exec(m.Client)
	case ReqResolve:
		out = e.obj.Resolve(m.Client)
	case ReqInvoke:
		out, err = e.obj.Invoke(m.Client, m.Op)
	default:
		err = fmt.Errorf("mp: unknown request kind %d", int(m.Kind))
	}
	if e.kindOf != nil {
		e.obs.ObserveSince(phaseOf(m.Kind), k, start)
		if m.Kind == ReqPrep && err == nil {
			e.kindHint[m.Client] = k
		}
	}
	rep := Reply{Resp: out, Gen: gen, Err: err}
	if m.Seq != 0 {
		e.lastSeq[m.Client] = m.Seq
		e.lastReply[m.Client] = rep
	}
	return rep
}
