package mp

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/spec"
)

// silentTransport never replies: the transport-level failure mode a
// SIGKILL'd server produces. calls counts arrivals; release, when
// closed, lets the blocked goroutines die.
type silentTransport struct {
	calls   atomic.Int64
	release chan struct{}
}

func (s *silentTransport) RoundTrip(m Msg) Reply {
	s.calls.Add(1)
	<-s.release
	return Reply{Err: ErrTimeout}
}

// TestAttemptTimeoutUnwedgesSilentServer: without a per-attempt deadline
// a never-replying transport would block Do forever; with one, every
// attempt is cut off, classified as a hang (not a reply timeout), and Do
// fails with the ambiguous-timeout error after MaxAttempts.
func TestAttemptTimeoutUnwedgesSilentServer(t *testing.T) {
	st := &silentTransport{release: make(chan struct{})}
	defer close(st.release)
	rc := NewRetryClient(st, 0, RetryPolicy{
		MaxAttempts:    3,
		AttemptTimeout: 5 * time.Millisecond,
		BackoffBase:    time.Microsecond,
		BackoffMax:     2 * time.Microsecond,
		Seed:           1,
	})
	done := make(chan error, 1)
	go func() {
		_, err := rc.Do(spec.Enqueue(1))
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrTimeout) {
			t.Fatalf("Do returned %v, want ErrTimeout", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Do wedged on a silent transport despite AttemptTimeout")
	}
	stats := rc.Stats()
	if stats.Hangs == 0 {
		t.Fatal("no attempt was classified as a hang")
	}
	// Hangs are transport-level: the transport never produced a reply, so
	// every abandoned attempt is a hang and none is a reply timeout...
	// except that roundTrip also counts the synthesized ErrTimeout reply
	// in Timeouts — the classification callers see. The distinct signal
	// is Hangs > 0.
	if got := st.calls.Load(); got == 0 {
		t.Fatal("transport never called")
	}
}

// TestAttemptTimeoutSparesLiveServer: a transport that replies within
// the deadline is unaffected — no hangs, normal replies.
func TestAttemptTimeoutSparesLiveServer(t *testing.T) {
	eng, err := NewEngine(EngineConfig{
		Clients:  1,
		Capacity: 16,
		Init:     spec.NewQueue(),
		Ops:      []spec.Op{spec.Enqueue(0), spec.Dequeue()},
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.NewGeneration()
	rc := NewRetryClient(engineTransport{eng}, 0, RetryPolicy{
		AttemptTimeout: time.Second,
		Seed:           1,
	})
	if _, err := rc.Do(spec.Enqueue(9)); err != nil {
		t.Fatal(err)
	}
	resp, err := rc.Do(spec.Dequeue())
	if err != nil {
		t.Fatal(err)
	}
	if resp.Kind != spec.Val || resp.V != 9 {
		t.Fatalf("got %v", resp)
	}
	if rc.Stats().Hangs != 0 {
		t.Fatalf("live server produced %d hangs", rc.Stats().Hangs)
	}
}

// engineTransport applies requests directly to an engine (single
// goroutine; the deadline path's goroutine is the only caller at a time
// because RetryClient is single-threaded and abandoned calls only occur
// when the engine blocks, which it never does here).
type engineTransport struct{ eng *Engine }

func (t engineTransport) RoundTrip(m Msg) Reply { return t.eng.Apply(m) }

// TestRestoreGeneration: a restored engine serves gen restore+1 after
// NewGeneration and fences requests pinned to earlier generations.
func TestRestoreGeneration(t *testing.T) {
	eng, err := NewEngine(EngineConfig{
		Clients:  1,
		Capacity: 16,
		Init:     spec.NewQueue(),
		Ops:      []spec.Op{spec.Enqueue(0), spec.Dequeue()},
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.RestoreGeneration(6)
	if gen := eng.NewGeneration(); gen != 7 {
		t.Fatalf("generation %d after restore(6)+new, want 7", gen)
	}
	rep := eng.Apply(Msg{Kind: ReqResolve, Client: 0, Gen: 3, Seq: 1})
	var de *DownError
	if !errors.As(rep.Err, &de) || !de.Stale || de.Gen != 7 {
		t.Fatalf("stale-generation request got %v, want stale DownError{Gen:7}", rep.Err)
	}
}
