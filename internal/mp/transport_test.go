package mp

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/spec"
)

// scriptedTransport records every message it carries and answers with a
// canned reply, so fault-schedule tests can observe exactly what got
// through.
type scriptedTransport struct {
	calls []Msg
	rep   Reply
}

func (s *scriptedTransport) RoundTrip(m Msg) Reply {
	s.calls = append(s.calls, m)
	return s.rep
}

// TestFaultyTransportDeterministic pins the seeded fault schedule: two
// transports with the same seed, driven by the same request sequence,
// inject exactly the same faults.
func TestFaultyTransportDeterministic(t *testing.T) {
	cfg := FaultConfig{
		Seed:        7,
		DropRequest: 0.2, DropReply: 0.2, Duplicate: 0.2,
		Delay: 0.3, MaxDelay: time.Microsecond,
	}
	run := func() (FaultStats, []error, int) {
		inner := &scriptedTransport{rep: Reply{Gen: 1}}
		ft := NewFaultyTransport(inner, cfg)
		ft.SetSleep(func(time.Duration) {})
		var errs []error
		for i := 0; i < 200; i++ {
			errs = append(errs, ft.RoundTrip(Msg{Kind: ReqResolve, Seq: uint64(i + 1)}).Err)
		}
		return ft.Stats(), errs, len(inner.calls)
	}
	s1, e1, n1 := run()
	s2, e2, n2 := run()
	if s1 != s2 || n1 != n2 {
		t.Fatalf("same seed diverged: %+v (%d delivered) vs %+v (%d delivered)", s1, n1, s2, n2)
	}
	for i := range e1 {
		if !errors.Is(e1[i], e2[i]) && e1[i] != e2[i] {
			t.Fatalf("call %d: outcome diverged: %v vs %v", i, e1[i], e2[i])
		}
	}
	if s1.DroppedRequests == 0 || s1.DroppedReplies == 0 || s1.Duplicates == 0 || s1.Delays == 0 {
		t.Fatalf("fault mix incomplete over 200 requests: %+v", s1)
	}
	// Every fault class shows up in the delivery count: drops reduce it,
	// duplicates raise it.
	want := 200 - int(s1.DroppedRequests) + int(s1.Duplicates)
	if n1 != want {
		t.Fatalf("inner saw %d requests, want %d", n1, want)
	}
}

// TestFaultyTransportLostMessagesAreTimeouts pins the error surface: both
// a dropped request and a dropped reply look like ErrTimeout to the
// caller (retryable, ambiguous) — the caller cannot and must not tell
// them apart.
func TestFaultyTransportLostMessagesAreTimeouts(t *testing.T) {
	for _, cfg := range []FaultConfig{
		{Seed: 1, DropRequest: 1},
		{Seed: 1, DropReply: 1},
	} {
		inner := &scriptedTransport{rep: Reply{Gen: 1}}
		ft := NewFaultyTransport(inner, cfg)
		rep := ft.RoundTrip(Msg{Kind: ReqResolve})
		if !errors.Is(rep.Err, ErrTimeout) {
			t.Fatalf("%+v: err = %v, want ErrTimeout", cfg, rep.Err)
		}
		if !Retryable(rep.Err) {
			t.Fatalf("%+v: timeout must be retryable", cfg)
		}
	}
}

// newCounterEngine builds a started engine hosting a counter.
func newCounterEngine(t *testing.T, clients int) *Engine {
	t.Helper()
	eng, err := NewEngine(EngineConfig{
		Clients: clients, Capacity: 1024,
		Init: spec.NewCounter(), Ops: []spec.Op{spec.Inc(), spec.Read()},
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.NewGeneration()
	return eng
}

// TestEngineAtMostOnce pins the sequence-number discipline: a duplicated
// request is answered from the reply cache without re-executing, and a
// stale (superseded) request is discarded.
func TestEngineAtMostOnce(t *testing.T) {
	eng := newCounterEngine(t, 1)
	gen := eng.Gen()

	prep := Msg{Kind: ReqPrep, Client: 0, Gen: gen, Seq: 1, Op: spec.Inc()}
	if rep := eng.Apply(prep); rep.Err != nil {
		t.Fatal(rep.Err)
	}
	exec := Msg{Kind: ReqExec, Client: 0, Gen: gen, Seq: 2}
	first := eng.Apply(exec)
	if first.Err != nil || first.Resp != spec.ValResp(0) {
		t.Fatalf("exec = %+v", first)
	}
	// The network delivers the exec a second time: same reply, no second
	// increment.
	if dup := eng.Apply(exec); dup != first {
		t.Fatalf("duplicate exec = %+v, want memoized %+v", dup, first)
	}
	// A delayed straggler (the prep again) is older than the applied exec:
	// discarded, not re-executed.
	if late := eng.Apply(prep); !errors.Is(late.Err, ErrSuperseded) {
		t.Fatalf("late duplicate prep err = %v, want ErrSuperseded", late.Err)
	}
	if r := eng.Apply(Msg{Kind: ReqInvoke, Client: 0, Op: spec.Read()}); r.Resp != spec.ValResp(1) {
		t.Fatalf("counter = %v after duplicated exec, want 1", r.Resp)
	}
}

// TestEngineGenerationFence pins the cross-crash guarantee: a message
// pinned to an old generation is rejected with a stale DownError and
// never applied, no matter its sequence number.
func TestEngineGenerationFence(t *testing.T) {
	eng := newCounterEngine(t, 1)
	old := eng.Gen()
	eng.NewGeneration()

	rep := eng.Apply(Msg{Kind: ReqExec, Client: 0, Gen: old, Seq: 9})
	var de *DownError
	if !errors.As(rep.Err, &de) || !de.Stale {
		t.Fatalf("stale-generation err = %v, want stale DownError", rep.Err)
	}
	if de.Gen != eng.Gen() {
		t.Fatalf("DownError.Gen = %d, want current generation %d", de.Gen, eng.Gen())
	}
	if !errors.Is(rep.Err, ErrServerDown) {
		t.Fatal("stale DownError must match ErrServerDown")
	}
	// Gen 0 opts out of the fence (plain Client compatibility).
	if r := eng.Apply(Msg{Kind: ReqInvoke, Client: 0, Op: spec.Read()}); r.Err != nil {
		t.Fatalf("gen-0 invoke rejected: %v", r.Err)
	}
	// The new generation starts a fresh sequence space: seq 1 is accepted
	// even though seq 9 was seen (and rejected) above.
	if r := eng.Apply(Msg{Kind: ReqResolve, Client: 0, Gen: eng.Gen(), Seq: 1}); r.Err != nil {
		t.Fatalf("fresh-generation seq 1 rejected: %v", r.Err)
	}
}

// TestRetryableClassification pins which errors permit (and require) the
// resolve-before-retry discipline.
func TestRetryableClassification(t *testing.T) {
	for _, tc := range []struct {
		err  error
		want bool
	}{
		{ErrServerDown, true},
		{ErrTimeout, true},
		{&DownError{Gen: 3}, true},
		{&DownError{Gen: 3, Stale: true}, true},
		{fmt.Errorf("wrapped: %w", ErrTimeout), true},
		{ErrSuperseded, false},
		{errors.New("mp: something else"), false},
		{nil, false},
	} {
		if got := Retryable(tc.err); got != tc.want {
			t.Errorf("Retryable(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}

// TestServerDownCarriesGeneration pins the flakiness fix's observable
// half: ErrServerDown from a live server object reports the generation,
// so clients can tell "down right now" from "I am talking to the past".
func TestServerDownCarriesGeneration(t *testing.T) {
	s, err := NewServer(1, 64, spec.NewCounter(), []spec.Op{spec.Inc(), spec.Read()})
	if err != nil {
		t.Fatal(err)
	}
	// Never started: down with generation 0.
	rep := s.RoundTrip(Msg{Kind: ReqResolve, Client: 0})
	var de *DownError
	if !errors.As(rep.Err, &de) || de.Gen != 0 {
		t.Fatalf("unstarted server reply = %+v, want DownError gen 0", rep)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	if got := s.Gen(); got != 1 {
		t.Fatalf("generation after first Start = %d, want 1", got)
	}
	if rep := s.RoundTrip(Msg{Kind: ReqResolve, Client: 0}); rep.Err != nil || rep.Gen != 1 {
		t.Fatalf("reply = %+v, want gen 1", rep)
	}
}
