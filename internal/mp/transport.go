package mp

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// FaultConfig parameterizes a FaultyTransport. Probabilities are
// independent per request; a zero config is a perfect wire.
type FaultConfig struct {
	// Seed makes the fault schedule deterministic: the same seed draws the
	// same sequence of fates (assignment to requests then depends only on
	// arrival order, which deterministic drivers also fix).
	Seed int64
	// DropRequest is the probability the request is lost before reaching
	// the server. Outcome: not executed; the caller sees ErrTimeout.
	DropRequest float64
	// DropReply is the probability the reply is lost on the way back.
	// Outcome: executed; the caller still sees ErrTimeout — the ambiguity
	// the resolve discipline exists for.
	DropReply float64
	// Duplicate is the probability the request is delivered twice. The
	// server's at-most-once cache makes the copy harmless for sequenced
	// requests; unsequenced (Seq 0) non-idempotent requests execute twice,
	// which is exactly why bare Clients must not ride a faulty wire.
	Duplicate float64
	// Delay is the probability a request is held for up to MaxDelay before
	// delivery, simulating congestion and — across concurrent clients —
	// reordering.
	Delay    float64
	MaxDelay time.Duration
}

// FaultStats counts the faults a FaultyTransport has injected.
type FaultStats struct {
	Requests        uint64
	DroppedRequests uint64
	DroppedReplies  uint64
	Duplicates      uint64
	Delays          uint64
}

// FaultyTransport wraps a Transport with a deterministic, seeded message
// adversary: requests are dropped, duplicated, and delayed; replies are
// dropped. Lost messages surface as ErrTimeout after the fact — the
// caller cannot tell a lost request from a lost reply, by design.
//
// Safe for concurrent use; fate draws serialize on an internal mutex.
type FaultyTransport struct {
	inner Transport
	cfg   FaultConfig

	mu  sync.Mutex
	rng *rand.Rand
	// sleep is swappable so virtual-time harnesses can serve delays from
	// a simulated clock.
	sleep func(time.Duration)

	requests   atomic.Uint64
	droppedReq atomic.Uint64
	droppedRep atomic.Uint64
	duplicates atomic.Uint64
	delays     atomic.Uint64
}

// NewFaultyTransport wraps inner with the given fault schedule.
func NewFaultyTransport(inner Transport, cfg FaultConfig) *FaultyTransport {
	return &FaultyTransport{
		inner: inner,
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		sleep: time.Sleep,
	}
}

// SetSleep replaces the delay implementation (virtual-time harnesses).
func (t *FaultyTransport) SetSleep(f func(time.Duration)) { t.sleep = f }

// Stats returns the fault counters so far.
func (t *FaultyTransport) Stats() FaultStats {
	return FaultStats{
		Requests:        t.requests.Load(),
		DroppedRequests: t.droppedReq.Load(),
		DroppedReplies:  t.droppedRep.Load(),
		Duplicates:      t.duplicates.Load(),
		Delays:          t.delays.Load(),
	}
}

// fate is one request's drawn schedule.
type fate struct {
	dropReq bool
	dropRep bool
	dup     bool
	delay   time.Duration
}

// draw rolls the dice for one request under the mutex, keeping the rng's
// sequence deterministic.
func (t *FaultyTransport) draw() fate {
	t.mu.Lock()
	defer t.mu.Unlock()
	var f fate
	f.dropReq = t.rng.Float64() < t.cfg.DropRequest
	f.dup = t.rng.Float64() < t.cfg.Duplicate
	f.dropRep = t.rng.Float64() < t.cfg.DropReply
	if t.rng.Float64() < t.cfg.Delay && t.cfg.MaxDelay > 0 {
		f.delay = time.Duration(t.rng.Int63n(int64(t.cfg.MaxDelay))) + 1
	}
	return f
}

// RoundTrip implements Transport.
func (t *FaultyTransport) RoundTrip(m Msg) Reply {
	t.requests.Add(1)
	f := t.draw()
	if f.delay > 0 {
		t.delays.Add(1)
		t.sleep(f.delay)
	}
	if f.dropReq {
		t.droppedReq.Add(1)
		return Reply{Err: ErrTimeout}
	}
	rep := t.inner.RoundTrip(m)
	if f.dup {
		// The network delivered a second copy. For sequenced requests the
		// server's reply cache answers it; the client sees whichever copy
		// produced a reply.
		t.duplicates.Add(1)
		if rep2 := t.inner.RoundTrip(m); rep.Err != nil && rep2.Err == nil {
			rep = rep2
		}
	}
	if f.dropRep {
		t.droppedRep.Add(1)
		return Reply{Err: ErrTimeout}
	}
	return rep
}

var _ Transport = (*FaultyTransport)(nil)
