package pmwcas

import (
	"sync"
	"testing"

	"repro/internal/pmem"
)

func newProvider(t *testing.T, threads int) (*PMwCAS, *pmem.Heap, pmem.Addr) {
	t.Helper()
	h, err := pmem.New(pmem.Config{Words: 1 << 16, Mode: pmem.Tracked})
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(h, 0, threads, 16)
	if err != nil {
		t.Fatal(err)
	}
	// A small region of target words, one per line to mirror real layouts.
	region := h.MustAlloc(16 * pmem.WordsPerLine)
	return p, h, region
}

func word(region pmem.Addr, i int) pmem.Addr {
	return region + pmem.Addr(i*pmem.WordsPerLine)
}

func TestNewValidation(t *testing.T) {
	h, _ := pmem.New(pmem.Config{Words: 1 << 12, Mode: pmem.Tracked})
	if _, err := New(h, 0, 0, 1); err == nil {
		t.Fatal("accepted zero threads")
	}
	if _, err := New(h, 0, 1, 0); err == nil {
		t.Fatal("accepted zero descriptors")
	}
}

func TestApplyValidation(t *testing.T) {
	p, _, region := newProvider(t, 1)
	if _, err := p.Apply(0, nil); err == nil {
		t.Fatal("accepted empty entry list")
	}
	tooMany := make([]Entry, MaxEntries+1)
	for i := range tooMany {
		tooMany[i] = Entry{Addr: word(region, i)}
	}
	if _, err := p.Apply(0, tooMany); err == nil {
		t.Fatal("accepted too many entries")
	}
	if _, err := p.Apply(0, []Entry{{Addr: word(region, 0), New: DirtyFlag}}); err == nil {
		t.Fatal("accepted value colliding with flag bits")
	}
}

func TestSingleWordApply(t *testing.T) {
	p, h, region := newProvider(t, 1)
	a := word(region, 0)
	ok, err := p.Apply(0, []Entry{{Addr: a, Old: 0, New: 7}})
	if err != nil || !ok {
		t.Fatalf("Apply = (%v,%v)", ok, err)
	}
	if got := p.Read(0, a); got != 7 {
		t.Fatalf("Read = %d, want 7", got)
	}
	// The value must be persisted after Apply. The dirty bit may remain in
	// the persisted image — clearing it is a cache-only optimization; any
	// post-crash reader flushes and clears it before use.
	if got := payload(h.PersistedLoad(a)); got != 7 {
		t.Fatalf("persisted payload = %#x, want 7", got)
	}
}

func TestApplyFailsOnMismatch(t *testing.T) {
	p, _, region := newProvider(t, 1)
	a, b := word(region, 0), word(region, 1)
	if ok, _ := p.Apply(0, []Entry{{Addr: a, Old: 0, New: 1}}); !ok {
		t.Fatal("setup apply failed")
	}
	ok, err := p.Apply(0, []Entry{
		{Addr: a, Old: 99, New: 2}, // mismatch
		{Addr: b, Old: 0, New: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("Apply succeeded despite mismatch")
	}
	if got := p.Read(0, a); got != 1 {
		t.Fatalf("a = %d after failed apply, want 1", got)
	}
	if got := p.Read(0, b); got != 0 {
		t.Fatalf("b = %d after failed apply, want untouched 0", got)
	}
}

func TestMultiWordAtomicity(t *testing.T) {
	p, _, region := newProvider(t, 1)
	words := []pmem.Addr{word(region, 0), word(region, 1), word(region, 2)}
	entries := make([]Entry, len(words))
	for i, a := range words {
		entries[i] = Entry{Addr: a, Old: 0, New: uint64(i + 10)}
	}
	if ok, err := p.Apply(0, entries); err != nil || !ok {
		t.Fatalf("Apply = (%v,%v)", ok, err)
	}
	for i, a := range words {
		if got := p.Read(0, a); got != uint64(i+10) {
			t.Fatalf("word %d = %d, want %d", i, got, i+10)
		}
	}
}

func TestCompareOnlyEntry(t *testing.T) {
	p, _, region := newProvider(t, 1)
	a, b := word(region, 0), word(region, 1)
	// Old == New makes a pure guard.
	ok, err := p.Apply(0, []Entry{
		{Addr: a, Old: 0, New: 0},
		{Addr: b, Old: 0, New: 5},
	})
	if err != nil || !ok {
		t.Fatalf("guarded apply = (%v,%v)", ok, err)
	}
	if got := p.Read(0, a); got != 0 {
		t.Fatalf("guard word changed to %d", got)
	}
	if got := p.Read(0, b); got != 5 {
		t.Fatalf("b = %d, want 5", got)
	}
}

func TestPrivateEntrySkipsValidation(t *testing.T) {
	p, _, region := newProvider(t, 1)
	a, x := word(region, 0), word(region, 1)
	// Private entry's Old is not validated; the shared entry decides.
	ok, err := p.Apply(0, []Entry{
		{Addr: a, Old: 0, New: 1},
		{Addr: x, Old: 12345, New: 42, Private: true},
	})
	if err != nil || !ok {
		t.Fatalf("Apply = (%v,%v)", ok, err)
	}
	if got := p.Read(0, x); got != 42 {
		t.Fatalf("private word = %d, want 42", got)
	}
}

func TestPrivateEntryUntouchedOnFailure(t *testing.T) {
	p, _, region := newProvider(t, 1)
	a, x := word(region, 0), word(region, 1)
	ok, err := p.Apply(0, []Entry{
		{Addr: a, Old: 777, New: 1}, // fails
		{Addr: x, Old: 0, New: 42, Private: true},
	})
	if err != nil || ok {
		t.Fatalf("Apply = (%v,%v), want clean failure", ok, err)
	}
	if got := p.Read(0, x); got != 0 {
		t.Fatalf("private word = %d after failure, want 0", got)
	}
}

func TestCASWord(t *testing.T) {
	p, h, region := newProvider(t, 1)
	a := word(region, 0)
	if !p.CASWord(0, a, 0, 9) {
		t.Fatal("CASWord failed from 0")
	}
	if p.CASWord(0, a, 0, 10) {
		t.Fatal("CASWord succeeded with stale old")
	}
	if got := payload(h.PersistedLoad(a)); got != 9 {
		t.Fatalf("persisted payload = %d, want 9", got)
	}
}

func TestDescriptorsRecycle(t *testing.T) {
	p, _, region := newProvider(t, 1)
	a := word(region, 0)
	// Far more operations than pool descriptors: must recycle.
	for i := uint64(0); i < 2000; i++ {
		ok, err := p.Apply(0, []Entry{{Addr: a, Old: i, New: i + 1}})
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		if !ok {
			t.Fatalf("op %d failed", i)
		}
	}
	if got := p.Read(0, a); got != 2000 {
		t.Fatalf("final value = %d, want 2000", got)
	}
}

func TestConcurrentCounterNoLostUpdates(t *testing.T) {
	const threads = 4
	const opsEach = 400
	p, _, region := newProvider(t, threads)
	a := word(region, 0)
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for done := 0; done < opsEach; {
				cur := p.Read(tid, a)
				ok, err := p.Apply(tid, []Entry{{Addr: a, Old: cur, New: cur + 1}})
				if err != nil {
					t.Errorf("apply: %v", err)
					return
				}
				if ok {
					done++
				}
			}
		}(tid)
	}
	wg.Wait()
	if got := p.Read(0, a); got != threads*opsEach {
		t.Fatalf("counter = %d, want %d", got, threads*opsEach)
	}
}

func TestConcurrentTwoWordSwapInvariant(t *testing.T) {
	// Two words whose sum is invariant under 2-word PMwCAS transfers.
	const threads = 4
	p, _, region := newProvider(t, threads)
	a, b := word(region, 0), word(region, 1)
	if ok, _ := p.Apply(0, []Entry{{Addr: a, Old: 0, New: 1000}}); !ok {
		t.Fatal("setup failed")
	}
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for done := 0; done < 200; {
				va := p.Read(tid, a)
				vb := p.Read(tid, b)
				if va == 0 {
					va, vb = vb, va
					a, b = b, a
				}
				if va == 0 {
					continue
				}
				ok, err := p.Apply(tid, []Entry{
					{Addr: a, Old: va, New: va - 1},
					{Addr: b, Old: vb, New: vb + 1},
				})
				if err != nil {
					t.Errorf("apply: %v", err)
					return
				}
				if ok {
					done++
				}
			}
		}(tid)
	}
	wg.Wait()
	if sum := p.Read(0, a) + p.Read(0, b); sum != 1000 {
		t.Fatalf("sum = %d, want invariant 1000", sum)
	}
}

func TestCrashSweepSingleApply(t *testing.T) {
	// Crash at every primitive step of one 2-word PMwCAS under every
	// adversary: after recovery both words must reflect all-or-nothing.
	for _, adv := range pmem.Adversaries(17) {
		for step := uint64(1); ; step++ {
			h, err := pmem.New(pmem.Config{Words: 1 << 14, Mode: pmem.Tracked})
			if err != nil {
				t.Fatal(err)
			}
			p, err := New(h, 0, 1, 4)
			if err != nil {
				t.Fatal(err)
			}
			region := h.MustAlloc(4 * pmem.WordsPerLine)
			a, b := region, region+pmem.WordsPerLine
			h.ArmCrash(step)
			crashed := pmem.RunToCrash(func() {
				_, _ = p.Apply(0, []Entry{
					{Addr: a, Old: 0, New: 11},
					{Addr: b, Old: 0, New: 22},
				})
			})
			if !crashed {
				break
			}
			h.Crash(adv)
			p.Recover()
			va, vb := p.Read(0, a), p.Read(0, b)
			allNothing := (va == 0 && vb == 0) || (va == 11 && vb == 22)
			if !allNothing {
				t.Fatalf("step %d: torn multi-word CAS: a=%d b=%d", step, va, vb)
			}
		}
	}
}

func TestCrashSweepPrivateEntryAtomicity(t *testing.T) {
	// A shared word and a private word must still change all-or-nothing
	// across crashes (the Fast CASWithEffect guarantee).
	for _, adv := range pmem.Adversaries(29) {
		for step := uint64(1); ; step++ {
			h, err := pmem.New(pmem.Config{Words: 1 << 14, Mode: pmem.Tracked})
			if err != nil {
				t.Fatal(err)
			}
			p, err := New(h, 0, 1, 4)
			if err != nil {
				t.Fatal(err)
			}
			region := h.MustAlloc(4 * pmem.WordsPerLine)
			a, x := region, region+pmem.WordsPerLine
			h.ArmCrash(step)
			crashed := pmem.RunToCrash(func() {
				_, _ = p.Apply(0, []Entry{
					{Addr: a, Old: 0, New: 5},
					{Addr: x, Old: 0, New: 6, Private: true},
				})
			})
			if !crashed {
				break
			}
			h.Crash(adv)
			p.Recover()
			va, vx := p.Read(0, a), p.Read(0, x)
			allNothing := (va == 0 && vx == 0) || (va == 5 && vx == 6)
			if !allNothing {
				t.Fatalf("step %d: torn private entry: a=%d x=%d", step, va, vx)
			}
		}
	}
}

func TestRecoverIdempotent(t *testing.T) {
	h, _ := pmem.New(pmem.Config{Words: 1 << 14, Mode: pmem.Tracked})
	p, err := New(h, 0, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	region := h.MustAlloc(2 * pmem.WordsPerLine)
	a := region
	h.ArmCrash(40)
	pmem.RunToCrash(func() {
		_, _ = p.Apply(0, []Entry{{Addr: a, Old: 0, New: 3}})
	})
	h.Crash(pmem.DropAll{})
	p.Recover()
	v1 := p.Read(0, a)
	h.CrashNow()
	h.Crash(pmem.DropAll{})
	p.Recover()
	if v2 := p.Read(0, a); v2 != v1 {
		t.Fatalf("second recovery changed outcome: %d -> %d", v1, v2)
	}
}

func TestApplyUsableAfterRecovery(t *testing.T) {
	h, _ := pmem.New(pmem.Config{Words: 1 << 14, Mode: pmem.Tracked})
	p, err := New(h, 0, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	region := h.MustAlloc(2 * pmem.WordsPerLine)
	a := region
	h.ArmCrash(25)
	pmem.RunToCrash(func() {
		_, _ = p.Apply(0, []Entry{{Addr: a, Old: 0, New: 3}})
	})
	h.Crash(pmem.NewRandomFates(5))
	p.Recover()
	base := p.Read(0, a)
	ok, err := p.Apply(0, []Entry{{Addr: a, Old: base, New: base + 100}})
	if err != nil || !ok {
		t.Fatalf("post-recovery Apply = (%v,%v)", ok, err)
	}
	if got := p.Read(0, a); got != base+100 {
		t.Fatalf("post-recovery value = %d, want %d", got, base+100)
	}
}
