package pmwcas

import (
	"testing"

	"repro/internal/pmem"
)

// FuzzCrashAtomicity lets the fuzzer pick the width of a PMwCAS, the
// crash point, and the adversary seed, then checks the all-or-nothing
// guarantee across recovery.
//
// Run with: go test -fuzz FuzzCrashAtomicity ./internal/pmwcas
func FuzzCrashAtomicity(f *testing.F) {
	f.Add(uint8(2), uint16(5), int64(1), false)
	f.Add(uint8(4), uint16(40), int64(2), true)
	f.Add(uint8(1), uint16(90), int64(3), false)
	f.Fuzz(func(t *testing.T, width uint8, crashStep uint16, seed int64, private bool) {
		k := int(width)
		if k < 1 || k > MaxEntries || crashStep == 0 {
			t.Skip()
		}
		h, err := pmem.New(pmem.Config{Words: 1 << 14, Mode: pmem.Tracked})
		if err != nil {
			t.Fatal(err)
		}
		p, err := New(h, 0, 1, 4)
		if err != nil {
			t.Fatal(err)
		}
		region := h.MustAlloc(k * pmem.WordsPerLine)
		entries := make([]Entry, k)
		for i := 0; i < k; i++ {
			entries[i] = Entry{
				Addr: region + pmem.Addr(i*pmem.WordsPerLine),
				Old:  0,
				New:  uint64(100 + i),
				// At most the last entry may be private (the CASWithEffect
				// pattern: shared structure plus one private X word).
				Private: private && i == k-1 && k > 1,
			}
		}
		h.ArmCrash(uint64(crashStep))
		pmem.RunToCrash(func() {
			_, _ = p.Apply(0, entries)
		})
		if h.Crashed() {
			h.Crash(pmem.NewRandomFates(seed))
			p.Recover()
		} else {
			h.ArmCrash(0) // finished early; keep the audit below crash-free
		}
		// All-or-nothing: every word at Old, or every word at New.
		allOld, allNew := true, true
		for i := 0; i < k; i++ {
			switch p.Read(0, entries[i].Addr) {
			case entries[i].Old:
				allNew = false
			case entries[i].New:
				allOld = false
			default:
				t.Fatalf("word %d holds foreign value %#x", i, p.Read(0, entries[i].Addr))
			}
		}
		if !allOld && !allNew {
			vals := make([]uint64, k)
			for i := range vals {
				vals[i] = p.Read(0, entries[i].Addr)
			}
			t.Fatalf("torn PMwCAS after crash: %v", vals)
		}
	})
}
