// Package pmwcas implements Wang, Levandoski and Larson's Persistent
// Multi-Word Compare-And-Swap (ICDE 2018), the substrate of the paper's
// General and Fast CASWithEffect queues (Figure 5b).
//
// A PMwCAS atomically compares-and-swaps up to MaxEntries words of the
// simulated persistent heap. The protocol is the standard two-phase
// descriptor scheme:
//
//  1. Install: for each target word (in address order), an RDCSS —
//     conditioned on the descriptor still being Undecided — replaces the
//     expected value with a flagged pointer to the descriptor. Readers who
//     encounter the flag help complete the operation.
//  2. Decide and finalize: once every word is installed and flushed, the
//     status word flips to Succeeded (or Failed on a mismatch) and is
//     flushed; then each word is replaced by its final value and flushed.
//
// Persistence uses the dirty-bit convention of the original paper: any
// value written by the protocol carries a dirty bit until it has been
// flushed; a reader that sees the bit flushes the word and clears it
// before using the value, so no thread ever depends on an unpersisted
// value.
//
// Entries may be marked Private: a private word is logically owned by the
// calling thread (e.g. the detectability state X[i] of the CASWithEffect
// queues), so it skips RDCSS installation entirely and is simply written
// after the decision — the optimization that distinguishes the paper's
// "Fast" from its "General" CASWithEffect queue. Crash atomicity for
// private words is preserved by recovery, which replays the private
// writes of descriptors that were still in flight (active) at the crash.
package pmwcas

import (
	"fmt"
	"runtime"
	"sort"

	"repro/internal/ebr"
	"repro/internal/pmem"
)

// Word flag bits (the top bits of every word managed by PMwCAS).
const (
	// DirtyFlag marks a value that may not have been flushed yet.
	DirtyFlag = uint64(1) << 63
	// descFlag marks a pointer to a PMwCAS descriptor.
	descFlag = uint64(1) << 62
	// rdcssFlag marks a pointer to an in-flight RDCSS (a descriptor entry).
	rdcssFlag = uint64(1) << 61
	// flagMask covers all protocol bits.
	flagMask = DirtyFlag | descFlag | rdcssFlag
)

// Descriptor statuses. A zero status marks a block whose fields are not
// (durably) initialized; recovery skips such blocks.
const (
	stUndecided uint64 = iota + 1
	stSucceeded
	stFailed
)

// Descriptor layout (word offsets into a descriptor block).
const (
	dStatus = 0
	dActive = 1 // 1 while in flight; gates private-entry replay in recovery
	dCount  = 2
	// dEntries starts the entry array on the block's second line so the
	// status line can be persisted independently of the entries.
	dEntries = 8
	entWords = 4 // addr, old, new, parent<<1|privateBit
	// MaxEntries is the largest number of words one PMwCAS can cover.
	MaxEntries = 6
	descWords  = dEntries + MaxEntries*entWords
)

// Entry describes one word of a PMwCAS.
type Entry struct {
	// Addr is the target word.
	Addr pmem.Addr
	// Old is the expected value. For Private entries it is the rollback
	// value rather than an atomically validated expectation.
	Old uint64
	// New is the value installed on success.
	New uint64
	// Private marks a word accessed only by the calling thread (and by
	// quiescent recovery): it is written without installation.
	Private bool
}

// PMwCAS is a persistent multi-word CAS provider over one heap. Distinct
// threads may call Apply, Read and CASWord concurrently with their own
// tids.
type PMwCAS struct {
	h       *pmem.Heap
	pool    *pmem.Pool
	rec     *ebr.Collector
	threads int
}

// New creates a PMwCAS provider with descsPerThread descriptors per
// thread, registering its descriptor region in heap root slot rootSlot.
func New(h *pmem.Heap, rootSlot, threads, descsPerThread int) (*PMwCAS, error) {
	if threads <= 0 {
		return nil, fmt.Errorf("pmwcas: need at least one thread, got %d", threads)
	}
	if descsPerThread <= 0 {
		return nil, fmt.Errorf("pmwcas: need at least one descriptor per thread")
	}
	p := &PMwCAS{h: h, threads: threads}
	var err error
	p.pool, err = pmem.NewPool(h, pmem.PoolConfig{
		Threads:         threads,
		BlocksPerThread: descsPerThread,
		ExtraBlocks:     1,
		BlockWords:      descWords,
	})
	if err != nil {
		return nil, fmt.Errorf("pmwcas: descriptor pool: %w", err)
	}
	p.rec, err = ebr.New(threads, func(tid int, a pmem.Addr) { p.pool.Free(tid, a) })
	if err != nil {
		return nil, fmt.Errorf("pmwcas: reclamation: %w", err)
	}
	h.SetRoot(rootSlot, p.pool.BlockAt(0))
	return p, nil
}

// allocDesc pops a descriptor, forcing epoch collection and yielding
// between attempts: a single collection can fail transiently while peer
// threads are mid-operation, so bounded retrying separates reclamation
// lag from genuine exhaustion.
func (p *PMwCAS) allocDesc(tid int) (pmem.Addr, bool) {
	for attempt := 0; attempt < 128; attempt++ {
		if desc, ok := p.pool.Alloc(tid); ok {
			return desc, true
		}
		p.rec.Collect(tid)
		runtime.Gosched()
	}
	return 0, false
}

// entryAddr returns the address of entry i of desc.
func entryAddr(desc pmem.Addr, i int) pmem.Addr {
	return desc + dEntries + pmem.Addr(i*entWords)
}

// payload strips the protocol flag bits.
func payload(w uint64) uint64 { return w &^ flagMask }

// isDesc reports whether w is a (possibly dirty) descriptor pointer to d.
func isDesc(w uint64, d pmem.Addr) bool {
	return w&descFlag != 0 && w&rdcssFlag == 0 && payload(w) == uint64(d)
}

// maskedStatus reads a descriptor's status ignoring the dirty bit.
func (p *PMwCAS) maskedStatus(desc pmem.Addr) uint64 {
	return payload(p.h.Load(desc + dStatus))
}

// persistClear flushes the word at a and clears its dirty bit. cur is the
// dirty value that was observed; a failed clear means someone else
// already cleared or replaced it, which is fine.
func (p *PMwCAS) persistClear(a pmem.Addr, cur uint64) {
	p.h.Persist(a)
	p.h.CompareAndSwap(a, cur, cur&^DirtyFlag)
}

// Read returns the logical value of the word at a, helping any in-flight
// protocol it encounters and flushing dirty values. The returned value is
// clean and persisted. Object-level lifetime of a (e.g. queue nodes) is
// the caller's concern; Read manages the descriptor epoch itself.
func (p *PMwCAS) Read(tid int, a pmem.Addr) uint64 {
	p.rec.Enter(tid)
	defer p.rec.Exit(tid)
	return p.read(a)
}

func (p *PMwCAS) read(a pmem.Addr) uint64 {
	for {
		w := p.h.Load(a)
		switch {
		case w&rdcssFlag != 0:
			p.completeRDCSS(pmem.Addr(payload(w)))
		case w&descFlag != 0:
			p.help(pmem.Addr(payload(w)))
		case w&DirtyFlag != 0:
			p.persistClear(a, w)
		default:
			return w
		}
	}
}

// CASWord is a persistent single-word CAS with the dirty-bit protocol:
// old must be a clean value previously obtained from Read. On success the
// new value has been persisted.
func (p *PMwCAS) CASWord(tid int, a pmem.Addr, old, new uint64) bool {
	if !p.h.CompareAndSwap(a, old, new|DirtyFlag) {
		return false
	}
	p.persistClear(a, new|DirtyFlag)
	return true
}

// Apply performs one PMwCAS over entries, reporting whether it succeeded.
// On success every target durably holds its New value; on failure every
// target is logically unchanged.
func (p *PMwCAS) Apply(tid int, entries []Entry) (bool, error) {
	if len(entries) == 0 || len(entries) > MaxEntries {
		return false, fmt.Errorf("pmwcas: entry count %d out of range [1,%d]", len(entries), MaxEntries)
	}
	sorted := make([]Entry, len(entries))
	copy(sorted, entries)
	// Address order makes concurrent PMwCASes over overlapping word sets
	// help each other in a consistent order instead of livelocking.
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Addr < sorted[j].Addr })
	for _, e := range sorted {
		if e.Old&flagMask != 0 || e.New&flagMask != 0 {
			return false, fmt.Errorf("pmwcas: value for word %#x collides with protocol flag bits", uint64(e.Addr))
		}
	}

	desc, ok := p.allocDesc(tid)
	if !ok {
		return false, fmt.Errorf("pmwcas: descriptor pool exhausted")
	}
	// Two-phase initialization: persist the entries while the status word
	// is still zero (recovery ignores zero-status blocks), then arm the
	// status line. A crash mid-initialization can therefore never make
	// recovery interpret half-written entries.
	p.h.Store(desc+dStatus, 0)
	p.h.Store(desc+dActive, 1)
	p.h.Store(desc+dCount, uint64(len(sorted)))
	for i, e := range sorted {
		ea := entryAddr(desc, i)
		p.h.Store(ea+0, uint64(e.Addr))
		p.h.Store(ea+1, e.Old)
		p.h.Store(ea+2, e.New)
		parent := uint64(desc) << 1
		if e.Private {
			parent |= 1
		}
		p.h.Store(ea+3, parent)
	}
	p.h.PersistRange(desc, dEntries+len(sorted)*entWords)
	p.h.Store(desc+dStatus, stUndecided)
	p.h.Persist(desc + dStatus)

	p.rec.Enter(tid)
	st := p.help(desc)
	p.rec.Exit(tid)
	if st == stSucceeded {
		p.finalizePrivate(desc)
	}

	// The descriptor durably leaves the in-flight set before it can be
	// recycled, so recovery never replays its private writes over newer
	// state.
	p.h.Store(desc+dActive, 0)
	p.h.Persist(desc + dActive)
	p.rec.Enter(tid)
	p.rec.Retire(tid, desc)
	p.rec.Exit(tid)
	return st == stSucceeded, nil
}

// help drives desc to completion (install, decide, finalize shared
// words). It is safe to call from any thread that discovered desc through
// a flagged word while inside the descriptor epoch.
func (p *PMwCAS) help(desc pmem.Addr) uint64 {
	count := int(p.h.Load(desc + dCount))
	if st := p.maskedStatus(desc); st == stUndecided {
		st = p.install(desc, count)
		if st == stSucceeded {
			// Persist every installed word before deciding, so a crash
			// after the status flush can always roll forward.
			for i := 0; i < count; i++ {
				ea := entryAddr(desc, i)
				if p.h.Load(ea+3)&1 != 0 {
					continue
				}
				p.h.Persist(pmem.Addr(p.h.Load(ea + 0)))
			}
		}
		p.h.CompareAndSwap(desc+dStatus, stUndecided, st|DirtyFlag)
		if cur := p.h.Load(desc + dStatus); cur&DirtyFlag != 0 {
			p.persistClear(desc+dStatus, cur)
		}
	}

	// Finalize shared words: replace descriptor pointers by final values.
	st := p.maskedStatus(desc)
	for i := 0; i < count; i++ {
		ea := entryAddr(desc, i)
		if p.h.Load(ea+3)&1 != 0 {
			continue // private words are finalized by their owner
		}
		addr := pmem.Addr(p.h.Load(ea + 0))
		final := p.h.Load(ea + 1)
		if st == stSucceeded {
			final = p.h.Load(ea + 2)
		}
		want := uint64(desc) | descFlag
		if p.h.CompareAndSwap(addr, want|DirtyFlag, final|DirtyFlag) ||
			p.h.CompareAndSwap(addr, want, final|DirtyFlag) {
			p.persistClear(addr, final|DirtyFlag)
		}
	}
	return st
}

// install runs phase 1 for desc: RDCSS a flagged descriptor pointer into
// every shared target word, helping any other protocol it encounters.
func (p *PMwCAS) install(desc pmem.Addr, count int) uint64 {
	for i := 0; i < count; i++ {
		ea := entryAddr(desc, i)
		if p.h.Load(ea+3)&1 != 0 {
			continue // private: no installation
		}
		addr := pmem.Addr(p.h.Load(ea + 0))
		old := p.h.Load(ea + 1)
	entry:
		for {
			if p.maskedStatus(desc) != stUndecided {
				return stSucceeded // another helper decided; help() rereads
			}
			if p.h.CompareAndSwap(addr, old, uint64(ea)|rdcssFlag) {
				p.completeRDCSS(ea)
				break entry
			}
			cur := p.h.Load(addr)
			switch {
			case cur&rdcssFlag != 0:
				p.completeRDCSS(pmem.Addr(payload(cur)))
			case isDesc(cur, desc):
				break entry // a helper already installed this entry
			case cur&descFlag != 0:
				p.help(pmem.Addr(payload(cur)))
			case cur&DirtyFlag != 0:
				p.persistClear(addr, cur)
			default:
				return stFailed // plain value mismatch
			}
		}
	}
	return stSucceeded
}

// finalizePrivate writes the private entries of the owner's successful
// descriptor (dirty store, flush, clear). Only the owner and quiescent
// recovery touch private words, so no CAS is needed.
func (p *PMwCAS) finalizePrivate(desc pmem.Addr) {
	count := int(p.h.Load(desc + dCount))
	for i := 0; i < count; i++ {
		ea := entryAddr(desc, i)
		if p.h.Load(ea+3)&1 == 0 {
			continue
		}
		addr := pmem.Addr(p.h.Load(ea + 0))
		v := p.h.Load(ea+2) | DirtyFlag
		p.h.Store(addr, v)
		p.persistClear(addr, v)
	}
}

// completeRDCSS resolves an installed RDCSS pointer at the entry's target:
// if the parent descriptor is still undecided, the word becomes a flagged
// pointer to the parent; otherwise it reverts to the expected old value.
// If the status read was stale and the descriptor pointer lands after the
// decision, the same thread immediately repairs the word to its final
// value and flushes it, so no pointer to the descriptor can outlive the
// epochs of the threads that saw it in flight — this closes the classic
// late-install window that would otherwise make descriptor recycling
// unsound.
func (p *PMwCAS) completeRDCSS(ea pmem.Addr) {
	addr := pmem.Addr(p.h.Load(ea + 0))
	old := p.h.Load(ea + 1)
	new := p.h.Load(ea + 2)
	parent := pmem.Addr(p.h.Load(ea+3) >> 1)
	rd := uint64(ea) | rdcssFlag
	if p.maskedStatus(parent) == stUndecided {
		if p.h.CompareAndSwap(addr, rd, uint64(parent)|descFlag|DirtyFlag) {
			if st := p.maskedStatus(parent); st != stUndecided {
				// Late install: repair immediately.
				final := old
				if st == stSucceeded {
					final = new
				}
				if p.h.CompareAndSwap(addr, uint64(parent)|descFlag|DirtyFlag, final|DirtyFlag) {
					p.persistClear(addr, final|DirtyFlag)
				}
			}
		}
		return
	}
	p.h.CompareAndSwap(addr, rd, old)
}

// Recover normalizes the heap after a crash: every descriptor block with
// durably initialized fields is rolled forward (Succeeded) or back
// (otherwise) — shared words are rewritten only if they still hold a
// pointer into that block, and private writes are replayed only for
// descriptors that were still in flight (active). Afterwards all
// descriptors are free and the volatile collector state is reset. Must
// run single-threaded before application threads resume.
func (p *PMwCAS) Recover() {
	p.pool.ForEachBlock(func(desc pmem.Addr) {
		st := p.maskedStatus(desc)
		if st != stUndecided && st != stSucceeded && st != stFailed {
			return // never durably initialized
		}
		count := int(p.h.Load(desc + dCount))
		if count < 1 || count > MaxEntries {
			return
		}
		active := p.h.Load(desc+dActive) == 1
		for i := 0; i < count; i++ {
			ea := entryAddr(desc, i)
			addr := pmem.Addr(p.h.Load(ea + 0))
			if addr == 0 || int(addr) >= p.h.Words() {
				continue
			}
			private := p.h.Load(ea+3)&1 != 0
			final := p.h.Load(ea + 1) // old
			if st == stSucceeded {
				final = p.h.Load(ea + 2) // new
			}
			if private {
				if active && st == stSucceeded {
					p.h.Store(addr, final)
					p.h.Persist(addr)
				}
				continue
			}
			w := p.h.Load(addr)
			pointsHere := (w&rdcssFlag != 0 && payload(w) >= uint64(entryAddr(desc, 0)) && payload(w) < uint64(entryAddr(desc, count))) ||
				isDesc(w, desc)
			if pointsHere {
				p.h.Store(addr, final)
				p.h.Persist(addr)
			} else if w&DirtyFlag != 0 && payload(w) == payload(final) {
				p.h.Store(addr, payload(final))
				p.h.Persist(addr)
			}
		}
		if st == stUndecided {
			// The operation is rolled back; make that durable so a crash
			// during recovery cannot flip the outcome later.
			p.h.Store(desc+dStatus, stFailed)
			p.h.Persist(desc + dStatus)
		}
		if active {
			p.h.Store(desc+dActive, 0)
			p.h.Persist(desc + dActive)
		}
	})
	p.rec.Reset()
	p.pool.Sweep(func(pmem.Addr) bool { return false })
}
