package nrl

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/pmem"
)

func newCAS(t *testing.T, threads int, init uint64) (*CAS, *pmem.Heap) {
	t.Helper()
	h, err := pmem.New(pmem.Config{Words: 1 << 14, Mode: pmem.Tracked})
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(h, 0, threads, init)
	if err != nil {
		t.Fatal(err)
	}
	return c, h
}

func TestNewValidation(t *testing.T) {
	h, _ := pmem.New(pmem.Config{Words: 1 << 12, Mode: pmem.Tracked})
	if _, err := New(h, 0, 0, 0); err == nil {
		t.Fatal("accepted zero threads")
	}
	if _, err := New(h, 0, 300, 0); err == nil {
		t.Fatal("accepted too many threads for the pid field")
	}
	if _, err := New(h, 0, 2, MaxValue+1); err == nil {
		t.Fatal("accepted oversized initial value")
	}
}

func TestValueRangeEnforced(t *testing.T) {
	c, _ := newCAS(t, 1, 0)
	if _, err := c.CompareAndSwap(0, 0, MaxValue+1); !errors.Is(err, ErrValueRange) {
		t.Fatalf("err = %v, want ErrValueRange", err)
	}
	// The packed layout costs half the word: this is the implementation
	// burden the paper attributes to sequence-number-based detection.
	if ok, err := c.CompareAndSwap(0, 0, MaxValue); err != nil || !ok {
		t.Fatalf("CAS to MaxValue = (%v,%v)", ok, err)
	}
}

func TestBasicCASSemantics(t *testing.T) {
	c, _ := newCAS(t, 2, 5)
	if c.Read(0) != 5 {
		t.Fatalf("initial read = %d", c.Read(0))
	}
	if ok, _ := c.CompareAndSwap(0, 4, 9); ok {
		t.Fatal("CAS with wrong old succeeded")
	}
	if ok, _ := c.CompareAndSwap(0, 5, 9); !ok {
		t.Fatal("CAS with right old failed")
	}
	if c.Read(1) != 9 {
		t.Fatalf("read after CAS = %d", c.Read(1))
	}
}

func TestDetectAfterSuccessStillInWord(t *testing.T) {
	c, h := newCAS(t, 2, 0)
	if ok, _ := c.CompareAndSwap(0, 0, 7); !ok {
		t.Fatal("CAS failed")
	}
	h.CrashNow()
	h.Crash(pmem.DropAll{})
	if !c.Detect(0) {
		t.Fatal("Detect missed a persisted successful CAS")
	}
}

func TestDetectAfterOverwrite(t *testing.T) {
	c, h := newCAS(t, 2, 0)
	if ok, _ := c.CompareAndSwap(0, 0, 7); !ok {
		t.Fatal("first CAS failed")
	}
	if ok, _ := c.CompareAndSwap(1, 7, 8); !ok {
		t.Fatal("second CAS failed")
	}
	h.CrashNow()
	h.Crash(pmem.DropAll{})
	// Thread 0's value is gone from the word, but the notification cell
	// proves it took effect.
	if !c.Detect(0) {
		t.Fatal("Detect missed an overwritten successful CAS")
	}
	if !c.Detect(1) {
		t.Fatal("Detect missed the overwriting CAS")
	}
}

func TestDetectNeverInvoked(t *testing.T) {
	c, _ := newCAS(t, 2, 0)
	if c.Detect(1) {
		t.Fatal("Detect invented an operation")
	}
}

func TestDetectFailedCAS(t *testing.T) {
	c, h := newCAS(t, 2, 0)
	if ok, _ := c.CompareAndSwap(0, 99, 7); ok {
		t.Fatal("CAS should have failed")
	}
	h.CrashNow()
	h.Crash(pmem.KeepAll{})
	if c.Detect(0) {
		t.Fatal("Detect reported a failed CAS as successful")
	}
}

// TestCrashSweepDetectMatchesEffect is the NRL+ analogue of the DSS crash
// sweeps: crash at every step of a CAS, under every adversary, and check
// that Detect agrees with whether the effect survived.
func TestCrashSweepDetectMatchesEffect(t *testing.T) {
	for _, adv := range pmem.Adversaries(97) {
		for step := uint64(1); ; step++ {
			c, h := newCAS(t, 2, 0)
			h.ArmCrash(step)
			crashed := pmem.RunToCrash(func() {
				_, _ = c.CompareAndSwap(0, 0, 7)
			})
			if !crashed {
				break
			}
			h.Crash(adv)
			detected := c.Detect(0)
			effect := c.Read(1) == 7
			if detected != effect {
				t.Fatalf("step %d: Detect=%v but effect=%v", step, detected, effect)
			}
		}
	}
}

// TestCrashSweepOverwriteWindow sweeps crashes across the overwrite
// protocol: thread 0's CAS succeeds, then thread 1 overwrites; at every
// crash point thread 0's detection must still be truthful.
func TestCrashSweepOverwriteWindow(t *testing.T) {
	for _, adv := range pmem.Adversaries(101) {
		for step := uint64(1); ; step++ {
			c, h := newCAS(t, 2, 0)
			if ok, _ := c.CompareAndSwap(0, 0, 7); !ok {
				t.Fatal("setup CAS failed")
			}
			h.ArmCrash(step)
			crashed := pmem.RunToCrash(func() {
				_, _ = c.CompareAndSwap(1, 7, 8)
			})
			if !crashed {
				break
			}
			h.Crash(adv)
			// Thread 0's CAS persisted before thread 1 started (its own
			// persist in CompareAndSwap), so detection must hold no
			// matter where thread 1 crashed.
			if !c.Detect(0) {
				t.Fatalf("step %d: overwrite window broke thread 0's detection (word=%d)",
					step, c.Read(0))
			}
			// Thread 1's detection must agree with its surviving effect.
			if got := c.Read(1) == 8; c.Detect(1) != got {
				t.Fatalf("step %d: thread 1 Detect=%v but effect=%v", step, c.Detect(1), got)
			}
		}
	}
}

func TestConcurrentCountingViaCAS(t *testing.T) {
	const threads = 4
	const each = 300
	c, _ := newCAS(t, threads, 0)
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for done := 0; done < each; {
				cur := c.Read(tid)
				ok, err := c.CompareAndSwap(tid, cur, cur+1)
				if err != nil {
					t.Errorf("cas: %v", err)
					return
				}
				if ok {
					done++
				}
			}
		}(tid)
	}
	wg.Wait()
	if got := c.Read(0); got != threads*each {
		t.Fatalf("counter = %d, want %d", got, threads*each)
	}
}

func TestSeqAdvancesPerInvocation(t *testing.T) {
	c, _ := newCAS(t, 1, 0)
	s0 := c.Seq(0)
	_, _ = c.CompareAndSwap(0, 0, 1)
	_, _ = c.CompareAndSwap(0, 99, 2) // fails, still announces
	if c.Seq(0) != s0+2 {
		t.Fatalf("seq advanced %d, want 2", c.Seq(0)-s0)
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		seq   uint64
		pid   int
		value uint64
	}{
		{0, 0, 0},
		{1, 7, 42},
		{seqMask, maxPid, MaxValue},
	} {
		w := pack(tc.seq, tc.pid, tc.value)
		if unpackSeq(w) != tc.seq || unpackPid(w) != tc.pid || unpackValue(w) != tc.value {
			t.Fatalf("round trip failed for %+v: got (%d,%d,%d)",
				tc, unpackSeq(w), unpackPid(w), unpackValue(w))
		}
	}
}
