// Package nrl implements a detectable Compare-And-Swap object in the
// NRL+ style of Ben-David, Blelloch, Friedman and Wei (SPAA 2019), the
// main point of comparison in the paper's Sections 1-2.
//
// The contrast with the DSS is the point of this package:
//
//   - NRL+ identifies operations by *sequence numbers embedded in the
//     object's word* — the word holds ⟨value, pid, seq⟩ — which the paper
//     criticizes: "sequence numbers are embedded in program variables,
//     which reduces the number of bits available to store other state …
//     especially problematic on current generation hardware, which
//     supports only 64-bit failure-atomic writes". Here values are
//     squeezed to 32 bits, pids to 8, sequence numbers to 24 (wrapping).
//   - Every operation is detectable (there is no prep/exec split and no
//     way to opt out), unlike the DSS's detectability on demand.
//   - Detection identifies the most recently *invoked* operation, so each
//     operation must announce itself durably before touching the object —
//     the "auxiliary state" the DSS queue's independent-recovery variant
//     avoids.
//
// The algorithm follows the recoverable-CAS scheme of their Algorithm 1:
// a successful CAS installs ⟨new, p, s⟩; any process about to overwrite a
// word written by q first durably records q's sequence number in a
// notification cell R[q], so q can still detect its success after its
// value has been replaced. Detection for p's operation s: the word still
// carries (p, s), or R[p] ≥ s.
package nrl

import (
	"errors"
	"fmt"

	"repro/internal/pmem"
)

// Field widths of the packed word: ⟨seq:24 | pid:8 | value:32⟩.
const (
	valueBits = 32
	pidBits   = 8
	seqBits   = 24

	// MaxValue is the largest storable value: embedding pid and seq in
	// the 64-bit failure-atomic word costs half the value range — the
	// implementation burden the paper attributes to NRL+.
	MaxValue = uint64(1)<<valueBits - 1
	maxPid   = 1<<pidBits - 1
	seqMask  = uint64(1)<<seqBits - 1
)

// ErrValueRange is returned for values that do not fit the packed layout.
var ErrValueRange = errors.New("nrl: value exceeds MaxValue (seq+pid bits reserved)")

// pack builds ⟨seq, pid, value⟩.
func pack(seq uint64, pid int, value uint64) uint64 {
	return seq&seqMask<<(valueBits+pidBits) | uint64(pid)<<valueBits | value
}

func unpackValue(w uint64) uint64 { return w & MaxValue }
func unpackPid(w uint64) int      { return int(w >> valueBits & maxPid) }
func unpackSeq(w uint64) uint64   { return w >> (valueBits + pidBits) & seqMask }

// CAS is an NRL+-style detectable compare-and-swap object.
type CAS struct {
	h       *pmem.Heap
	word    pmem.Addr // packed ⟨seq,pid,value⟩
	ann     pmem.Addr // announce[p]: p's current sequence number, one line each
	notify  pmem.Addr // R[p]: highest seq of p known overwritten, one line each
	threads int
}

// New allocates the object with initial value init. Process IDs must be
// below 255 (pid 255 marks the initial value's writer).
func New(h *pmem.Heap, rootSlot, threads int, init uint64) (*CAS, error) {
	if threads <= 0 || threads >= maxPid {
		return nil, fmt.Errorf("nrl: thread count %d out of range [1,%d)", threads, maxPid)
	}
	if init > MaxValue {
		return nil, fmt.Errorf("%w: %d", ErrValueRange, init)
	}
	meta, err := h.Alloc((1 + 2*threads) * pmem.WordsPerLine)
	if err != nil {
		return nil, fmt.Errorf("nrl: metadata: %w", err)
	}
	c := &CAS{
		h:       h,
		word:    meta,
		ann:     meta + pmem.WordsPerLine,
		notify:  meta + pmem.Addr((1+threads)*pmem.WordsPerLine),
		threads: threads,
	}
	c.h.Store(c.word, pack(0, maxPid, init))
	c.h.Persist(c.word)
	for i := 0; i < threads; i++ {
		c.h.Store(c.annAddr(i), 0)
		c.h.Persist(c.annAddr(i))
		c.h.Store(c.notifyAddr(i), 0)
		c.h.Persist(c.notifyAddr(i))
	}
	h.SetRoot(rootSlot, meta)
	return c, nil
}

func (c *CAS) annAddr(p int) pmem.Addr    { return c.ann + pmem.Addr(p*pmem.WordsPerLine) }
func (c *CAS) notifyAddr(p int) pmem.Addr { return c.notify + pmem.Addr(p*pmem.WordsPerLine) }

// Read returns the current value, flushing it first so callers never act
// on state a crash could roll back.
func (c *CAS) Read(int) uint64 {
	c.h.Persist(c.word)
	return unpackValue(c.h.Load(c.word))
}

// CompareAndSwap attempts to replace old with new on behalf of tid. Every
// invocation is detectable: it durably announces a fresh sequence number
// before touching the object, and Detect can classify it after a crash.
func (c *CAS) CompareAndSwap(tid int, old, new uint64) (bool, error) {
	if old > MaxValue || new > MaxValue {
		return false, fmt.Errorf("%w: cas(%d,%d)", ErrValueRange, old, new)
	}
	// Announce the operation (aux state NRL-style detection requires).
	seq := c.h.Load(c.annAddr(tid)) + 1
	c.h.Store(c.annAddr(tid), seq)
	c.h.Persist(c.annAddr(tid))

	for {
		cur := c.h.Load(c.word)
		if unpackValue(cur) != old {
			return false, nil
		}
		// Flush-on-read: the observed value must be durable before this
		// operation depends on it — otherwise a crash could roll back the
		// previous writer's effect after we have durably notified it as
		// succeeded.
		c.h.Persist(c.word)
		// Notify the previous writer before overwriting its value: its
		// operation provably took effect (we observed it), and after the
		// overwrite the word alone can no longer prove that. Persist
		// order matters: R[q] must be durable before the overwrite can be.
		if q := unpackPid(cur); q < c.threads {
			s := unpackSeq(cur)
			if c.h.Load(c.notifyAddr(q)) < s {
				c.h.Store(c.notifyAddr(q), s)
				c.h.Persist(c.notifyAddr(q))
			}
		}
		if c.h.CompareAndSwap(c.word, cur, pack(seq, tid, new)) {
			c.h.Persist(c.word)
			return true, nil
		}
	}
}

// Detect reports, after a crash, whether tid's most recent CompareAndSwap
// took effect. It is idempotent. A false result covers both "the CAS
// failed" and "the crash hit before the CAS could act" — NRL-style
// detection identifies the most recently invoked operation but cannot
// separate those two cases, which is exactly the contrast with the DSS's
// prep/exec split (Section 2's comparison, item 2).
func (c *CAS) Detect(tid int) bool {
	seq := c.h.Load(c.annAddr(tid))
	if seq == 0 {
		return false // never invoked
	}
	cur := c.h.Load(c.word)
	if unpackPid(cur) == tid && unpackSeq(cur) == seq {
		return true
	}
	return c.h.Load(c.notifyAddr(tid)) >= seq
}

// Seq exposes tid's announced sequence number (tests and diagnostics).
func (c *CAS) Seq(tid int) uint64 { return c.h.Load(c.annAddr(tid)) }
