package queue

import (
	"fmt"

	"repro/internal/ebr"
	"repro/internal/pmem"
)

// Log-entry field offsets (one cache line per entry).
const (
	entOp      = 0 // opEnq or opDeq
	entValue   = 1 // enqueue argument / dequeue result
	entStatus  = 2 // entPending, entDone, entEmpty
	entNode    = 3 // enqueue: the node carrying the value
	entOwner   = 4 // tid of the entry's owner
	entSeq     = 5 // per-owner operation sequence number
	entryWords = pmem.WordsPerLine
)

// Dequeue claims are encoded as seq<<16 | tid (0 = unclaimed), tying each
// claim to one specific logged operation: log entries are recycled, so a
// raw entry pointer in a node's claim field could be mistaken for a later
// operation's entry after reuse. The owner's log slot is persisted before
// any claim carrying its sequence number can be issued, so recovery can
// always find the matching entry through logs[owner].
const logClaimTIDBits = 16

// Log-entry op codes and statuses.
const (
	opEnq uint64 = iota + 1
	opDeq
)

const (
	entPending uint64 = iota + 1
	entDone
	entEmpty
)

// LogQueue is Friedman, Herlihy, Marathe and Petrank's detectable log
// queue (PPoPP 2018), Figure 5b's "Log queue": every operation first
// persists a log entry and installs it in the thread's persistent log
// slot; dequeues claim nodes by CAS-ing a pointer to their log entry into
// the node, and results are recorded in the entries. As the paper notes,
// the log queue "dynamically allocates log objects in addition to queue
// nodes" — the source of its overhead relative to the DSS queue.
//
// Result delivery into entries is performed by the owner and completed by
// recovery for interrupted operations (Friedman et al. let concurrent
// helpers write entries too; owner-only writes avoid ABA on recycled
// entries while preserving the algorithm's persistence structure — see
// DESIGN.md).
type LogQueue struct {
	h       *pmem.Heap
	nodes   *pmem.Pool
	entries *pmem.Pool
	rec     *ebr.Collector
	head    pmem.Addr
	tail    pmem.Addr
	logBase pmem.Addr // logs[i] at logBase + i*WordsPerLine
	threads int
}

// NewLog allocates a log queue on h, registering its metadata in heap root
// slot rootSlot. Each thread gets nodesPerThread queue nodes and an equal
// number of log entries.
func NewLog(h *pmem.Heap, rootSlot, threads, nodesPerThread, extraNodes int) (*LogQueue, error) {
	if threads <= 0 {
		return nil, fmt.Errorf("queue: need at least one thread, got %d", threads)
	}
	if extraNodes < 1 {
		return nil, fmt.Errorf("queue: need at least one extra node for the sentinel")
	}
	meta, err := h.Alloc((2 + threads) * pmem.WordsPerLine)
	if err != nil {
		return nil, fmt.Errorf("queue: metadata: %w", err)
	}
	q := &LogQueue{
		h:       h,
		head:    meta,
		tail:    meta + pmem.WordsPerLine,
		logBase: meta + 2*pmem.WordsPerLine,
		threads: threads,
	}
	q.nodes, err = pmem.NewPool(h, pmem.PoolConfig{
		Threads:         threads,
		BlocksPerThread: nodesPerThread,
		ExtraBlocks:     extraNodes,
		BlockWords:      nodeWords,
		Pinned:          q.nodePinned,
	})
	if err != nil {
		return nil, fmt.Errorf("queue: node pool: %w", err)
	}
	q.entries, err = pmem.NewPool(h, pmem.PoolConfig{
		Threads:         threads,
		BlocksPerThread: nodesPerThread,
		ExtraBlocks:     extraNodes,
		BlockWords:      entryWords,
		Pinned:          q.entryPinned,
	})
	if err != nil {
		return nil, fmt.Errorf("queue: entry pool: %w", err)
	}
	q.rec, err = ebr.New(threads, func(tid int, a pmem.Addr) {
		if q.nodes.Contains(a) {
			q.nodes.Free(tid, a)
		} else {
			q.entries.Free(tid, a)
		}
	})
	if err != nil {
		return nil, fmt.Errorf("queue: reclamation: %w", err)
	}
	q.rec.SetDrainHook(func(int) {
		q.h.PersistPair(q.head, q.tail)
	})
	sentinel, ok := q.nodes.Alloc(0)
	if !ok {
		return nil, fmt.Errorf("queue: no node for sentinel")
	}
	q.initNode(sentinel, 0)
	q.h.Store(q.head, uint64(sentinel))
	q.h.Store(q.tail, uint64(sentinel))
	q.h.PersistPair(q.head, q.tail)
	for i := 0; i < threads; i++ {
		q.h.Store(q.logAddr(i), 0)
	}
	q.h.PersistRange(q.logBase, threads*pmem.WordsPerLine)
	h.SetRoot(rootSlot, meta)
	return q, nil
}

func (q *LogQueue) logAddr(tid int) pmem.Addr {
	return q.logBase + pmem.Addr(tid*pmem.WordsPerLine)
}

func (q *LogQueue) initNode(node pmem.Addr, v uint64) {
	q.h.Store(node+offValue, v)
	q.h.Store(node+offNext, 0)
	q.h.Store(node+offClaim, 0) // unclaimed: no log-entry pointer
	q.h.Store(node+offLogEnq, 0)
	q.h.Persist(node)
}

// entryPinned vetoes recycling of a log entry while any thread's log slot
// — coherent or persisted view — still references it; resolve reads
// entries through those slots after a crash. Pin scans are simulator-side
// reclamation bookkeeping, so they read through LoadVolatile (uncharged;
// see core.Queue.pinned).
func (q *LogQueue) entryPinned(a pmem.Addr) bool {
	tracked := q.h.Mode() == pmem.Tracked
	for i := 0; i < q.threads; i++ {
		if pmem.Addr(q.h.LoadVolatile(q.logAddr(i))) == a {
			return true
		}
		if tracked && pmem.Addr(q.h.PersistedLoad(q.logAddr(i))) == a {
			return true
		}
	}
	return false
}

// nodePinned vetoes recycling of a node still referenced by a live log
// entry (recovery dereferences a pending enqueue's node).
func (q *LogQueue) nodePinned(a pmem.Addr) bool {
	tracked := q.h.Mode() == pmem.Tracked
	for i := 0; i < q.threads; i++ {
		e := pmem.Addr(q.h.LoadVolatile(q.logAddr(i)))
		if e != 0 && pmem.Addr(q.h.LoadVolatile(e+entNode)) == a {
			return true
		}
		if tracked {
			pe := pmem.Addr(q.h.PersistedLoad(q.logAddr(i)))
			if pe != 0 && pe != e && pmem.Addr(q.h.LoadVolatile(pe+entNode)) == a {
				return true
			}
		}
	}
	return false
}

// allocEntry pops a log entry, forcing collection when the pool is dry.
// Call it outside the epoch (before Enter) so Collect can advance.
func (q *LogQueue) allocEntry(tid int) (pmem.Addr, bool) {
	return allocWithCollect(q.entries, q.rec, tid)
}

// openEntry fills entry e and installs it as tid's current log entry,
// retiring the previous one. Must be called between Enter and Exit.
func (q *LogQueue) openEntry(tid int, e pmem.Addr, op, value, node uint64) {
	old := pmem.Addr(q.h.Load(q.logAddr(tid)))
	seq := uint64(1)
	if old != 0 {
		seq = q.h.Load(old+entSeq) + 1
	}
	q.h.Store(e+entOp, op)
	q.h.Store(e+entValue, value)
	q.h.Store(e+entStatus, entPending)
	q.h.Store(e+entNode, node)
	q.h.Store(e+entOwner, uint64(tid))
	q.h.Store(e+entSeq, seq)
	q.h.Persist(e)
	q.h.Store(q.logAddr(tid), uint64(e))
	q.h.Persist(q.logAddr(tid))
	if old != 0 {
		q.rec.Retire(tid, old)
	}
}

// Enqueue durably and detectably appends v.
func (q *LogQueue) Enqueue(tid int, v uint64) error {
	node, ok := allocWithCollect(q.nodes, q.rec, tid)
	if !ok {
		return ErrNoNodes
	}
	q.initNode(node, v)
	entry, ok := q.allocEntry(tid)
	if !ok {
		q.nodes.Free(tid, node)
		return ErrNoNodes
	}
	q.rec.Enter(tid)
	defer q.rec.Exit(tid)
	q.openEntry(tid, entry, opEnq, v, uint64(node))
	q.h.Store(node+offLogEnq, uint64(entry))
	q.h.Persist(node + offLogEnq)
	for {
		last := pmem.Addr(q.h.Load(q.tail))
		next := pmem.Addr(q.h.Load(last + offNext))
		if last != pmem.Addr(q.h.Load(q.tail)) {
			continue
		}
		if next == 0 {
			if q.h.CompareAndSwap(last+offNext, 0, uint64(node)) {
				q.h.Persist(last + offNext)
				q.h.Store(entry+entStatus, entDone)
				q.h.Persist(entry + entStatus)
				q.h.CompareAndSwap(q.tail, uint64(last), uint64(node))
				return nil
			}
		} else {
			q.h.Persist(last + offNext)
			q.h.CompareAndSwap(q.tail, uint64(last), uint64(next))
		}
	}
}

// Dequeue durably and detectably removes the front value.
func (q *LogQueue) Dequeue(tid int) (uint64, bool) {
	entry, ok := q.allocEntry(tid)
	if !ok {
		return 0, false
	}
	q.rec.Enter(tid)
	defer q.rec.Exit(tid)
	q.openEntry(tid, entry, opDeq, 0, 0)
	for {
		first := pmem.Addr(q.h.Load(q.head))
		last := pmem.Addr(q.h.Load(q.tail))
		next := pmem.Addr(q.h.Load(first + offNext))
		if first != pmem.Addr(q.h.Load(q.head)) {
			continue
		}
		if first == last {
			if next == 0 {
				q.h.Store(entry+entStatus, entEmpty)
				q.h.Persist(entry + entStatus)
				return 0, false
			}
			q.h.Persist(last + offNext)
			q.h.CompareAndSwap(q.tail, uint64(last), uint64(next))
			continue
		}
		claim := q.h.Load(entry+entSeq)<<logClaimTIDBits | uint64(tid)
		if q.h.CompareAndSwap(next+offClaim, 0, claim) {
			q.h.Persist(next + offClaim)
			v := q.h.Load(next + offValue)
			q.h.Store(entry+entValue, v)
			q.h.Store(entry+entStatus, entDone)
			q.h.Persist(entry)
			if q.h.CompareAndSwap(q.head, uint64(first), uint64(next)) {
				q.rec.Retire(tid, first)
			}
			return v, true
		}
		if pmem.Addr(q.h.Load(q.head)) == first {
			q.h.Persist(next + offClaim)
			if q.h.CompareAndSwap(q.head, uint64(first), uint64(next)) {
				q.rec.Retire(tid, first)
			}
		}
	}
}

// LogResolution is the decoded outcome of a thread's logged operation.
type LogResolution struct {
	// Op is opEnq/opDeq as OpKind-style booleans for simplicity.
	IsEnqueue bool
	IsDequeue bool
	// Arg is the enqueue argument.
	Arg uint64
	// Executed reports whether the operation took effect.
	Executed bool
	// Val is an executed dequeue's value; Empty its empty flag.
	Val   uint64
	Empty bool
}

// Resolve reports the status of tid's most recent logged operation. It is
// idempotent and intended for use after recovery.
func (q *LogQueue) Resolve(tid int) LogResolution {
	e := pmem.Addr(q.h.Load(q.logAddr(tid)))
	if e == 0 {
		return LogResolution{}
	}
	op := q.h.Load(e + entOp)
	status := q.h.Load(e + entStatus)
	switch op {
	case opEnq:
		return LogResolution{
			IsEnqueue: true,
			Arg:       q.h.Load(e + entValue),
			Executed:  status == entDone,
		}
	case opDeq:
		res := LogResolution{IsDequeue: true}
		switch status {
		case entDone:
			res.Executed = true
			res.Val = q.h.Load(e + entValue)
		case entEmpty:
			res.Executed = true
			res.Empty = true
		}
		return res
	default:
		return LogResolution{}
	}
}

// Recover is the log queue's single-threaded recovery: complete pending
// entries from the persisted structure, fix head and tail, and rebuild the
// volatile pools.
func (q *LogQueue) Recover() {
	oldHead := pmem.Addr(q.h.Load(q.head))
	reachable := map[pmem.Addr]bool{}
	lastNode := oldHead
	for n := oldHead; n != 0; n = pmem.Addr(q.h.Load(n + offNext)) {
		reachable[n] = true
		lastNode = n
	}
	q.h.Store(q.tail, uint64(lastNode))
	q.h.Persist(q.tail)

	// Complete claimed dequeues and advance head past them. Claims are
	// contiguous from the sentinel's successor, as in the DSS queue.
	newHead := oldHead
	for {
		next := pmem.Addr(q.h.Load(newHead + offNext))
		if next == 0 {
			break
		}
		claim := q.h.Load(next + offClaim)
		if claim == 0 {
			break
		}
		// A node's claim outlives its dequeue: only complete the owner's
		// current log entry if this claim carries its sequence number; a
		// stale claim belongs to an already-completed operation.
		owner := int(claim & (1<<logClaimTIDBits - 1))
		seq := claim >> logClaimTIDBits
		if owner < q.threads {
			e := pmem.Addr(q.h.Load(q.logAddr(owner)))
			if e != 0 && q.h.Load(e+entSeq) == seq &&
				q.h.Load(e+entOp) == opDeq && q.h.Load(e+entStatus) == entPending {
				q.h.Store(e+entValue, q.h.Load(next+offValue))
				q.h.Store(e+entStatus, entDone)
				q.h.Persist(e)
			}
		}
		newHead = next
	}
	q.h.Store(q.head, uint64(newHead))
	q.h.Persist(q.head)

	// Complete pending enqueues whose node made it into the list (still
	// reachable, or already claimed by a dequeuer).
	for i := 0; i < q.threads; i++ {
		e := pmem.Addr(q.h.Load(q.logAddr(i)))
		if e == 0 || q.h.Load(e+entOp) != opEnq || q.h.Load(e+entStatus) != entPending {
			continue
		}
		node := pmem.Addr(q.h.Load(e + entNode))
		if node == 0 {
			continue
		}
		if reachable[node] || q.h.Load(node+offClaim) != 0 {
			q.h.Store(e+entStatus, entDone)
			q.h.Persist(e + entStatus)
		}
	}

	q.rec.Reset()
	liveNodes := map[pmem.Addr]bool{}
	for n := newHead; n != 0; n = pmem.Addr(q.h.Load(n + offNext)) {
		liveNodes[n] = true
	}
	liveEntries := map[pmem.Addr]bool{}
	for i := 0; i < q.threads; i++ {
		e := pmem.Addr(q.h.Load(q.logAddr(i)))
		if e == 0 {
			continue
		}
		liveEntries[e] = true
		if node := pmem.Addr(q.h.Load(e + entNode)); node != 0 {
			liveNodes[node] = true
		}
	}
	q.nodes.Sweep(func(a pmem.Addr) bool { return liveNodes[a] })
	q.entries.Sweep(func(a pmem.Addr) bool { return liveEntries[a] })
}
