package queue

import (
	"fmt"

	"repro/internal/ebr"
	"repro/internal/pmem"
)

// Return-slot status values for the durable queue's returnedValues array.
const (
	rvNone uint64 = iota + 1
	rvValue
	rvEmpty
)

// Claim-word layout for the durable queue: seq<<16 | tid. The sequence
// number ties a claim to one specific dequeue operation of its owner, so
// recovery can tell a crashed operation's claim from a stale claim left by
// an earlier completed operation of the same thread. (Friedman et al. get
// the same effect by CAS-ing freshly allocated result objects into
// returnedValues; a persisted sequence number avoids the extra allocation
// while preserving the recovery semantics — see DESIGN.md.)
const claimTIDBits = 16

// DurableQueue is Friedman, Herlihy, Marathe and Petrank's durable queue
// (PPoPP 2018): the recoverable but non-detectable extension of the MS
// queue that the DSS queue builds on. Dequeued values are delivered
// durably through a per-thread returnedValues array, which the
// single-threaded recovery procedure completes for operations interrupted
// by a crash.
type DurableQueue struct {
	h    *pmem.Heap
	pool *pmem.Pool
	rec  *ebr.Collector
	head pmem.Addr
	tail pmem.Addr
	// rvBase: per-thread return slot, one line each:
	// [0] status, [1] value, [2] sequence number of the current dequeue.
	rvBase  pmem.Addr
	threads int
}

// NewDurable allocates a durable queue on h, registering its metadata in
// heap root slot rootSlot.
func NewDurable(h *pmem.Heap, rootSlot, threads, nodesPerThread, extraNodes int) (*DurableQueue, error) {
	if threads <= 0 {
		return nil, fmt.Errorf("queue: need at least one thread, got %d", threads)
	}
	if threads >= 1<<claimTIDBits {
		return nil, fmt.Errorf("queue: at most %d threads supported", 1<<claimTIDBits-1)
	}
	if extraNodes < 1 {
		return nil, fmt.Errorf("queue: need at least one extra node for the sentinel")
	}
	meta, err := h.Alloc((2 + threads) * pmem.WordsPerLine)
	if err != nil {
		return nil, fmt.Errorf("queue: metadata: %w", err)
	}
	q := &DurableQueue{
		h:       h,
		head:    meta,
		tail:    meta + pmem.WordsPerLine,
		rvBase:  meta + 2*pmem.WordsPerLine,
		threads: threads,
	}
	q.pool, err = pmem.NewPool(h, pmem.PoolConfig{
		Threads:         threads,
		BlocksPerThread: nodesPerThread,
		ExtraBlocks:     extraNodes,
		BlockWords:      nodeWords,
	})
	if err != nil {
		return nil, fmt.Errorf("queue: pool: %w", err)
	}
	q.rec, err = ebr.New(threads, func(tid int, a pmem.Addr) { q.pool.Free(tid, a) })
	if err != nil {
		return nil, fmt.Errorf("queue: reclamation: %w", err)
	}
	q.rec.SetDrainHook(func(int) {
		q.h.PersistPair(q.head, q.tail)
	})
	sentinel, ok := q.pool.Alloc(0)
	if !ok {
		return nil, fmt.Errorf("queue: no node for sentinel")
	}
	q.initNode(sentinel, 0)
	q.h.Store(q.head, uint64(sentinel))
	q.h.Store(q.tail, uint64(sentinel))
	q.h.PersistPair(q.head, q.tail)
	for i := 0; i < threads; i++ {
		q.h.Store(q.rvAddr(i), rvNone)
	}
	q.h.PersistRange(q.rvBase, threads*pmem.WordsPerLine)
	h.SetRoot(rootSlot, meta)
	return q, nil
}

func (q *DurableQueue) rvAddr(tid int) pmem.Addr {
	return q.rvBase + pmem.Addr(tid*pmem.WordsPerLine)
}

func (q *DurableQueue) initNode(node pmem.Addr, v uint64) {
	q.h.Store(node+offValue, v)
	q.h.Store(node+offNext, 0)
	q.h.Store(node+offClaim, tidNone)
	q.h.Persist(node)
}

// Enqueue durably appends v.
func (q *DurableQueue) Enqueue(tid int, v uint64) error {
	node, ok := allocWithCollect(q.pool, q.rec, tid)
	if !ok {
		return ErrNoNodes
	}
	q.initNode(node, v)
	q.rec.Enter(tid)
	defer q.rec.Exit(tid)
	for {
		last := pmem.Addr(q.h.Load(q.tail))
		next := pmem.Addr(q.h.Load(last + offNext))
		if last != pmem.Addr(q.h.Load(q.tail)) {
			continue
		}
		if next == 0 {
			if q.h.CompareAndSwap(last+offNext, 0, uint64(node)) {
				q.h.Persist(last + offNext)
				q.h.CompareAndSwap(q.tail, uint64(last), uint64(node))
				return nil
			}
		} else {
			q.h.Persist(last + offNext)
			q.h.CompareAndSwap(q.tail, uint64(last), uint64(next))
		}
	}
}

// Dequeue durably removes the front value. Before the operation returns,
// its result is persisted in returnedValues[tid] so a crashed caller can
// retrieve it after recovery (see ReturnedValue).
func (q *DurableQueue) Dequeue(tid int) (uint64, bool) {
	// Open a new durable operation: bump the sequence number and reset
	// the return slot in one persisted line.
	seq := q.h.Load(q.rvAddr(tid)+2) + 1
	q.h.Store(q.rvAddr(tid), rvNone)
	q.h.Store(q.rvAddr(tid)+2, seq)
	q.h.Persist(q.rvAddr(tid))
	claim := seq<<claimTIDBits | uint64(tid)

	q.rec.Enter(tid)
	defer q.rec.Exit(tid)
	for {
		first := pmem.Addr(q.h.Load(q.head))
		last := pmem.Addr(q.h.Load(q.tail))
		next := pmem.Addr(q.h.Load(first + offNext))
		if first != pmem.Addr(q.h.Load(q.head)) {
			continue
		}
		if first == last {
			if next == 0 {
				q.h.Store(q.rvAddr(tid), rvEmpty)
				q.h.Persist(q.rvAddr(tid))
				return 0, false
			}
			q.h.Persist(last + offNext)
			q.h.CompareAndSwap(q.tail, uint64(last), uint64(next))
			continue
		}
		if q.h.CompareAndSwap(next+offClaim, tidNone, claim) {
			q.h.Persist(next + offClaim)
			v := q.h.Load(next + offValue)
			// Deliver the result durably before returning. Only the owner
			// writes its slot; recovery (single-threaded) completes slots
			// for owners that crashed between claim and delivery. The
			// value is written before the status flips to rvValue so a
			// crash between the two stores can never expose a "delivered"
			// slot with a missing value.
			q.h.Store(q.rvAddr(tid)+1, v)
			q.h.Store(q.rvAddr(tid), rvValue)
			q.h.Persist(q.rvAddr(tid))
			if q.h.CompareAndSwap(q.head, uint64(first), uint64(next)) {
				q.rec.Retire(tid, first)
			}
			return v, true
		}
		if pmem.Addr(q.h.Load(q.head)) == first {
			// Help: persist the winner's claim, then advance head.
			q.h.Persist(next + offClaim)
			if q.h.CompareAndSwap(q.head, uint64(first), uint64(next)) {
				q.rec.Retire(tid, first)
			}
		}
	}
}

// ReturnedValue reads thread tid's durable return slot: the result of its
// most recent dequeue if that operation reached its persistence point,
// reported as (value, gotValue, sawEmpty). After a crash and Recover, a
// slot still reading none/none means the interrupted dequeue did not take
// effect.
func (q *DurableQueue) ReturnedValue(tid int) (v uint64, gotValue, sawEmpty bool) {
	switch q.h.Load(q.rvAddr(tid)) {
	case rvValue:
		return q.h.Load(q.rvAddr(tid) + 1), true, false
	case rvEmpty:
		return 0, false, true
	default:
		return 0, false, false
	}
}

// Recover is the durable queue's single-threaded recovery: it completes
// the return slots of dequeues that claimed a node but crashed before
// delivering the result, fixes head and tail, and rebuilds the volatile
// pool. A claim is matched to its operation through the persisted
// sequence number, so stale claims from completed operations are ignored.
func (q *DurableQueue) Recover() {
	oldHead := pmem.Addr(q.h.Load(q.head))
	lastNode := oldHead
	for n := oldHead; n != 0; n = pmem.Addr(q.h.Load(n + offNext)) {
		lastNode = n
	}
	q.h.Store(q.tail, uint64(lastNode))
	q.h.Persist(q.tail)

	newHead := oldHead
	for {
		next := pmem.Addr(q.h.Load(newHead + offNext))
		if next == 0 {
			break
		}
		claim := q.h.Load(next + offClaim)
		if claim == tidNone {
			break
		}
		owner := int(claim & (1<<claimTIDBits - 1))
		seq := claim >> claimTIDBits
		if owner < q.threads &&
			q.h.Load(q.rvAddr(owner)+2) == seq &&
			q.h.Load(q.rvAddr(owner)) == rvNone {
			q.h.Store(q.rvAddr(owner)+1, q.h.Load(next+offValue))
			q.h.Store(q.rvAddr(owner), rvValue)
			q.h.Persist(q.rvAddr(owner))
		}
		newHead = next
	}
	q.h.Store(q.head, uint64(newHead))
	q.h.Persist(q.head)

	q.rec.Reset()
	live := map[pmem.Addr]bool{}
	for n := newHead; n != 0; n = pmem.Addr(q.h.Load(n + offNext)) {
		live[n] = true
	}
	q.pool.Sweep(func(a pmem.Addr) bool { return live[a] })
}
