package queue

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/pmem"
)

func newHeap(t *testing.T, words int) *pmem.Heap {
	t.Helper()
	h, err := pmem.New(pmem.Config{Words: words, Mode: pmem.Tracked})
	if err != nil {
		t.Fatalf("pmem.New: %v", err)
	}
	return h
}

// fifoQueue abstracts the three baselines for shared tests.
type fifoQueue interface {
	Enqueue(tid int, v uint64) error
	Dequeue(tid int) (uint64, bool)
}

func makeAll(t *testing.T, threads int) map[string]fifoQueue {
	t.Helper()
	qs := map[string]fifoQueue{}
	{
		h := newHeap(t, 1<<16)
		q, err := NewMS(h, threads, 64, 8)
		if err != nil {
			t.Fatal(err)
		}
		qs["ms"] = q
	}
	{
		h := newHeap(t, 1<<16)
		q, err := NewDurable(h, 0, threads, 64, 8)
		if err != nil {
			t.Fatal(err)
		}
		qs["durable"] = q
	}
	{
		h := newHeap(t, 1<<17)
		q, err := NewLog(h, 0, threads, 64, 8)
		if err != nil {
			t.Fatal(err)
		}
		qs["log"] = q
	}
	return qs
}

func drainQ(t *testing.T, q fifoQueue, tid int) []uint64 {
	t.Helper()
	var out []uint64
	for i := 0; i < 100_000; i++ {
		v, ok := q.Dequeue(tid)
		if !ok {
			return out
		}
		out = append(out, v)
	}
	t.Fatal("drain did not terminate")
	return nil
}

func TestAllQueuesFIFO(t *testing.T) {
	for name, q := range makeAll(t, 2) {
		t.Run(name, func(t *testing.T) {
			for v := uint64(1); v <= 8; v++ {
				if err := q.Enqueue(0, v); err != nil {
					t.Fatal(err)
				}
			}
			got := drainQ(t, q, 1)
			if len(got) != 8 {
				t.Fatalf("drained %v", got)
			}
			for i, v := range got {
				if v != uint64(i+1) {
					t.Fatalf("drained %v, want 1..8 in order", got)
				}
			}
		})
	}
}

func TestAllQueuesEmptyDequeue(t *testing.T) {
	for name, q := range makeAll(t, 1) {
		t.Run(name, func(t *testing.T) {
			if v, ok := q.Dequeue(0); ok {
				t.Fatalf("empty dequeue returned (%d,true)", v)
			}
			if err := q.Enqueue(0, 5); err != nil {
				t.Fatal(err)
			}
			if v, ok := q.Dequeue(0); !ok || v != 5 {
				t.Fatalf("Dequeue = (%d,%v), want (5,true)", v, ok)
			}
			if _, ok := q.Dequeue(0); ok {
				t.Fatal("queue should be empty again")
			}
		})
	}
}

func TestAllQueuesRecycleNodes(t *testing.T) {
	threads := 1
	mk := map[string]func() fifoQueue{
		"ms": func() fifoQueue {
			q, err := NewMS(newHeap(t, 1<<14), threads, 8, 2)
			if err != nil {
				t.Fatal(err)
			}
			return q
		},
		"durable": func() fifoQueue {
			q, err := NewDurable(newHeap(t, 1<<14), 0, threads, 8, 2)
			if err != nil {
				t.Fatal(err)
			}
			return q
		},
		"log": func() fifoQueue {
			q, err := NewLog(newHeap(t, 1<<15), 0, threads, 8, 2)
			if err != nil {
				t.Fatal(err)
			}
			return q
		},
	}
	for name, make := range mk {
		t.Run(name, func(t *testing.T) {
			q := make()
			for i := 0; i < 1500; i++ {
				if err := q.Enqueue(0, uint64(i)); err != nil {
					t.Fatalf("enqueue #%d: %v", i, err)
				}
				if v, ok := q.Dequeue(0); !ok || v != uint64(i) {
					t.Fatalf("dequeue #%d = (%d,%v)", i, v, ok)
				}
			}
		})
	}
}

func TestAllQueuesConcurrentConservation(t *testing.T) {
	const threads = 4
	const pairs = 300
	for name, q := range makeAll(t, threads) {
		t.Run(name, func(t *testing.T) {
			var wg sync.WaitGroup
			var mu sync.Mutex
			seen := map[uint64]int{}
			for tid := 0; tid < threads; tid++ {
				wg.Add(1)
				go func(tid int) {
					defer wg.Done()
					for i := 0; i < pairs; i++ {
						v := uint64(tid+1)<<32 | uint64(i)
						if err := q.Enqueue(tid, v); err != nil {
							t.Errorf("enqueue: %v", err)
							return
						}
						if got, ok := q.Dequeue(tid); ok {
							mu.Lock()
							seen[got]++
							mu.Unlock()
						}
					}
				}(tid)
			}
			wg.Wait()
			for _, v := range drainQ(t, q, 0) {
				seen[v]++
			}
			if len(seen) != threads*pairs {
				t.Fatalf("saw %d distinct values, want %d", len(seen), threads*pairs)
			}
			for v, n := range seen {
				if n != 1 {
					t.Fatalf("value %d dequeued %d times", v, n)
				}
			}
		})
	}
}

func TestNewValidationAllQueues(t *testing.T) {
	h := newHeap(t, 1<<12)
	if _, err := NewMS(h, 0, 1, 1); err == nil {
		t.Error("NewMS accepted zero threads")
	}
	if _, err := NewMS(h, 1, 1, 0); err == nil {
		t.Error("NewMS accepted no sentinel room")
	}
	if _, err := NewDurable(h, 0, 0, 1, 1); err == nil {
		t.Error("NewDurable accepted zero threads")
	}
	if _, err := NewDurable(h, 0, 1<<claimTIDBits, 1, 1); err == nil {
		t.Error("NewDurable accepted too many threads")
	}
	if _, err := NewLog(h, 0, 0, 1, 1); err == nil {
		t.Error("NewLog accepted zero threads")
	}
}

func TestMSQueueExhaustion(t *testing.T) {
	h := newHeap(t, 1<<12)
	q, err := NewMS(h, 1, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	var last error
	for i := 0; i < 10; i++ {
		if err := q.Enqueue(0, uint64(i)); err != nil {
			last = err
			break
		}
	}
	if !errors.Is(last, ErrNoNodes) {
		t.Fatalf("exhaustion = %v, want ErrNoNodes", last)
	}
}

func TestDurableReturnedValueLifecycle(t *testing.T) {
	h := newHeap(t, 1<<14)
	q, err := NewDurable(h, 0, 2, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, got, empty := q.ReturnedValue(0); got || empty {
		t.Fatal("fresh return slot not none")
	}
	q.Enqueue(0, 42)
	if v, ok := q.Dequeue(0); !ok || v != 42 {
		t.Fatalf("Dequeue = (%d,%v)", v, ok)
	}
	if v, got, _ := q.ReturnedValue(0); !got || v != 42 {
		t.Fatalf("ReturnedValue = (%d,%v), want (42,true)", v, got)
	}
	q.Dequeue(0) // empty
	if _, got, empty := q.ReturnedValue(0); got || !empty {
		t.Fatal("return slot should read empty after empty dequeue")
	}
}

func TestDurableCrashSweepReturnedValues(t *testing.T) {
	// Sweep crashes over enqueue(1);enqueue(2);dequeue();dequeue() and
	// check that after recovery the return slot and queue contents are
	// mutually consistent and no value is lost or duplicated.
	for _, adv := range pmem.Adversaries(11) {
		for step := uint64(1); ; step++ {
			h := newHeap(t, 1<<14)
			q, err := NewDurable(h, 0, 1, 16, 2)
			if err != nil {
				t.Fatal(err)
			}
			h.ArmCrash(step)
			crashed := pmem.RunToCrash(func() {
				_ = q.Enqueue(0, 1)
				_ = q.Enqueue(0, 2)
				q.Dequeue(0)
				q.Dequeue(0)
			})
			if !crashed {
				break
			}
			h.Crash(adv)
			q.Recover()
			// Read the return slot before draining: drain dequeues reset it.
			rv, gotV, _ := q.ReturnedValue(0)
			rest := drainQ(t, q, 0)
			seen := map[uint64]int{}
			for _, v := range rest {
				seen[v]++
			}
			if gotV {
				seen[rv]++
			}
			for v, n := range seen {
				if n > 1 {
					t.Fatalf("step %d: value %d appears %d times (queue %v, rv %d/%v)", step, v, n, rest, rv, gotV)
				}
			}
			// FIFO prefix consistency: remaining values must be a
			// contiguous suffix of [1 2].
			switch len(rest) {
			case 0:
			case 1:
				if rest[0] != 1 && rest[0] != 2 {
					t.Fatalf("step %d: unexpected queue %v", step, rest)
				}
			case 2:
				if rest[0] != 1 || rest[1] != 2 {
					t.Fatalf("step %d: unexpected queue %v", step, rest)
				}
			default:
				t.Fatalf("step %d: unexpected queue %v", step, rest)
			}
		}
	}
}

func TestDurableRecoveryCompletesClaimedDequeue(t *testing.T) {
	// Find a crash point between the claim persist and the value delivery
	// by sweeping; whenever recovery runs, a claimed node's value must be
	// either in the return slot or still in the queue — never both, never
	// neither.
	for step := uint64(1); ; step++ {
		h := newHeap(t, 1<<14)
		q, err := NewDurable(h, 0, 1, 16, 2)
		if err != nil {
			t.Fatal(err)
		}
		_ = q.Enqueue(0, 7)
		h.ArmCrash(step)
		crashed := pmem.RunToCrash(func() { q.Dequeue(0) })
		if !crashed {
			return
		}
		h.Crash(pmem.KeepAll{})
		q.Recover()
		rv, gotV, _ := q.ReturnedValue(0)
		rest := drainQ(t, q, 0)
		inQueue := len(rest) == 1 && rest[0] == 7
		delivered := gotV && rv == 7
		if inQueue == delivered {
			t.Fatalf("step %d: inQueue=%v delivered=%v (rest=%v rv=%d/%v)", step, inQueue, delivered, rest, rv, gotV)
		}
	}
}

func TestLogQueueResolveLifecycle(t *testing.T) {
	h := newHeap(t, 1<<15)
	q, err := NewLog(h, 0, 2, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res := q.Resolve(0); res.IsEnqueue || res.IsDequeue {
		t.Fatalf("fresh resolve = %+v", res)
	}
	q.Enqueue(0, 42)
	res := q.Resolve(0)
	if !res.IsEnqueue || !res.Executed || res.Arg != 42 {
		t.Fatalf("resolve after enqueue = %+v", res)
	}
	if v, ok := q.Dequeue(0); !ok || v != 42 {
		t.Fatalf("Dequeue = (%d,%v)", v, ok)
	}
	res = q.Resolve(0)
	if !res.IsDequeue || !res.Executed || res.Val != 42 || res.Empty {
		t.Fatalf("resolve after dequeue = %+v", res)
	}
	q.Dequeue(0)
	res = q.Resolve(0)
	if !res.IsDequeue || !res.Executed || !res.Empty {
		t.Fatalf("resolve after empty dequeue = %+v", res)
	}
}

func TestLogQueueCrashSweepDetectability(t *testing.T) {
	// The log-queue analogue of the DSS queue's crash sweep: enqueue(10)
	// then dequeue() on a queue seeded with [1 2], crash at every step,
	// recover, and check that the resolution matches the surviving state.
	for _, adv := range pmem.Adversaries(23) {
		for step := uint64(1); ; step++ {
			h := newHeap(t, 1<<15)
			q, err := NewLog(h, 0, 1, 16, 4)
			if err != nil {
				t.Fatal(err)
			}
			_ = q.Enqueue(0, 1)
			_ = q.Enqueue(0, 2)
			h.ArmCrash(step)
			crashed := pmem.RunToCrash(func() {
				_ = q.Enqueue(0, 10)
				q.Dequeue(0)
			})
			if !crashed {
				break
			}
			h.Crash(adv)
			q.Recover()
			res := q.Resolve(0)
			rest := drainQ(t, q, 0)
			has10 := false
			for _, v := range rest {
				if v == 10 {
					has10 = true
				}
			}
			dequeuedOne := len(rest) == 0 || rest[0] != 1
			switch {
			case res.IsEnqueue && res.Arg == 10:
				if res.Executed != has10 {
					t.Fatalf("step %d: enqueue resolution %+v but queue %v", step, res, rest)
				}
				if dequeuedOne {
					t.Fatalf("step %d: dequeue cannot precede enqueue resolution: %v", step, rest)
				}
			case res.IsEnqueue && res.Arg == 2:
				// The crash hit before enqueue(10)'s entry was installed;
				// the resolution still describes the seeded enqueue(2).
				if !res.Executed || has10 || dequeuedOne {
					t.Fatalf("step %d: stale resolution %+v inconsistent with queue %v", step, res, rest)
				}
			case res.IsDequeue && res.Executed && !res.Empty:
				if res.Val != 1 || !dequeuedOne || !has10 {
					t.Fatalf("step %d: dequeue resolution %+v but queue %v", step, res, rest)
				}
			case res.IsDequeue && !res.Executed:
				if dequeuedOne || !has10 {
					t.Fatalf("step %d: dequeue not executed but queue %v", step, rest)
				}
			default:
				t.Fatalf("step %d: unexpected resolution %+v (queue %v)", step, res, rest)
			}
		}
	}
}

func TestLogQueueConcurrentCrashConservation(t *testing.T) {
	const threads = 3
	for trial := 0; trial < 25; trial++ {
		h := newHeap(t, 1<<17)
		q, err := NewLog(h, 0, threads, 64, 8)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			_ = q.Enqueue(0, uint64(9000+i))
		}
		h.ArmCrash(uint64(60 + trial*41))
		var wg sync.WaitGroup
		var mu sync.Mutex
		dequeued := map[uint64]int{}
		for tid := 0; tid < threads; tid++ {
			wg.Add(1)
			go func(tid int) {
				defer wg.Done()
				pmem.RunToCrash(func() {
					for i := 0; ; i++ {
						v := uint64(tid+1)<<32 | uint64(i+1)
						if err := q.Enqueue(tid, v); err != nil {
							t.Errorf("enqueue: %v", err)
							return
						}
						if got, ok := q.Dequeue(tid); ok {
							mu.Lock()
							dequeued[got]++
							mu.Unlock()
						}
					}
				})
			}(tid)
		}
		wg.Wait()
		h.Crash(pmem.NewRandomFates(int64(trial * 3)))
		q.Recover()
		inQueue := map[uint64]bool{}
		seen := map[uint64]int{}
		for v, n := range dequeued {
			seen[v] += n
		}
		for _, v := range drainQ(t, q, 0) {
			seen[v]++
			inQueue[v] = true
		}
		for v, n := range seen {
			if n > 1 {
				t.Fatalf("trial %d: value %d appears %d times", trial, v, n)
			}
		}
		// A dequeue resolved as executed consumed its value: it must not
		// still be in the queue. (It may legitimately be absent from every
		// set — consumed by an operation that crashed before returning —
		// which is precisely what detectability reports.)
		for tid := 0; tid < threads; tid++ {
			res := q.Resolve(tid)
			if res.IsDequeue && res.Executed && !res.Empty && inQueue[res.Val] {
				t.Fatalf("trial %d tid %d: resolution claims dequeue of %d but value still queued", trial, tid, res.Val)
			}
		}
	}
}
