// Package queue implements the baseline queue algorithms the paper
// evaluates against: Michael & Scott's volatile lock-free queue (Figure
// 5a's "MS queue"), Friedman et al.'s durable queue (the recoverable but
// non-detectable ancestor of the DSS queue), and Friedman et al.'s
// detectable log queue (Figure 5b's "Log queue").
//
// All three run over the same simulated persistent heap and node pools as
// the DSS queue so that benchmark comparisons isolate algorithmic cost:
// the MS queue simply issues no flushes, exactly as the paper obtains it
// "from the non-detectable DSS queue by removing flushes".
package queue

import (
	"errors"
	"fmt"
	"runtime"

	"repro/internal/ebr"
	"repro/internal/pmem"
)

// Shared node field offsets. The third word is deqThreadID for the MS and
// durable queues and the dequeuer's log-entry pointer for the log queue;
// the fourth is used by the log queue for the enqueuer's log entry.
const (
	offValue  = 0
	offNext   = 1
	offClaim  = 2
	offLogEnq = 3
	nodeWords = pmem.WordsPerLine
)

// tidNone is the unclaimed deqThreadID (the paper's −1).
const tidNone = ^uint64(0)

// ErrNoNodes is returned when a queue's pre-allocated pool is exhausted.
var ErrNoNodes = errors.New("queue: node pool exhausted")

// allocWithCollect pops a block from pool, forcing epoch collection and
// yielding between attempts when the pool runs dry: a single collection
// attempt can fail while peer threads are mid-operation, but they exit
// their epochs continuously, so bounded retrying distinguishes transient
// reclamation lag from genuine exhaustion.
func allocWithCollect(pool *pmem.Pool, rec *ebr.Collector, tid int) (pmem.Addr, bool) {
	for attempt := 0; attempt < 128; attempt++ {
		if a, ok := pool.Alloc(tid); ok {
			return a, true
		}
		rec.Collect(tid)
		runtime.Gosched()
	}
	return 0, false
}

// MSQueue is Michael & Scott's lock-free queue, the volatile baseline of
// Figure 5a. It stores nodes in the simulated persistent heap for an
// apples-to-apples comparison but issues no flush instructions, so its
// contents do not survive a crash.
type MSQueue struct {
	h    *pmem.Heap
	pool *pmem.Pool
	rec  *ebr.Collector
	head pmem.Addr
	tail pmem.Addr
}

// NewMS allocates an MS queue on h.
func NewMS(h *pmem.Heap, threads, nodesPerThread, extraNodes int) (*MSQueue, error) {
	if threads <= 0 {
		return nil, fmt.Errorf("queue: need at least one thread, got %d", threads)
	}
	if extraNodes < 1 {
		return nil, fmt.Errorf("queue: need at least one extra node for the sentinel")
	}
	meta, err := h.Alloc(2 * pmem.WordsPerLine)
	if err != nil {
		return nil, fmt.Errorf("queue: metadata: %w", err)
	}
	q := &MSQueue{h: h, head: meta, tail: meta + pmem.WordsPerLine}
	q.pool, err = pmem.NewPool(h, pmem.PoolConfig{
		Threads:         threads,
		BlocksPerThread: nodesPerThread,
		ExtraBlocks:     extraNodes,
		BlockWords:      nodeWords,
	})
	if err != nil {
		return nil, fmt.Errorf("queue: pool: %w", err)
	}
	q.rec, err = ebr.New(threads, func(tid int, a pmem.Addr) { q.pool.Free(tid, a) })
	if err != nil {
		return nil, fmt.Errorf("queue: reclamation: %w", err)
	}
	sentinel, ok := q.pool.Alloc(0)
	if !ok {
		return nil, fmt.Errorf("queue: no node for sentinel")
	}
	q.h.Store(sentinel+offValue, 0)
	q.h.Store(sentinel+offNext, 0)
	q.h.Store(sentinel+offClaim, tidNone)
	q.h.Store(q.head, uint64(sentinel))
	q.h.Store(q.tail, uint64(sentinel))
	return q, nil
}

// Enqueue appends v.
func (q *MSQueue) Enqueue(tid int, v uint64) error {
	node, ok := allocWithCollect(q.pool, q.rec, tid)
	if !ok {
		return ErrNoNodes
	}
	q.h.Store(node+offValue, v)
	q.h.Store(node+offNext, 0)
	q.h.Store(node+offClaim, tidNone)
	q.rec.Enter(tid)
	defer q.rec.Exit(tid)
	for {
		last := pmem.Addr(q.h.Load(q.tail))
		next := pmem.Addr(q.h.Load(last + offNext))
		if last != pmem.Addr(q.h.Load(q.tail)) {
			continue
		}
		if next == 0 {
			if q.h.CompareAndSwap(last+offNext, 0, uint64(node)) {
				q.h.CompareAndSwap(q.tail, uint64(last), uint64(node))
				return nil
			}
		} else {
			q.h.CompareAndSwap(q.tail, uint64(last), uint64(next))
		}
	}
}

// Dequeue removes and returns the front value; ok is false when empty.
func (q *MSQueue) Dequeue(tid int) (uint64, bool) {
	q.rec.Enter(tid)
	defer q.rec.Exit(tid)
	for {
		first := pmem.Addr(q.h.Load(q.head))
		last := pmem.Addr(q.h.Load(q.tail))
		next := pmem.Addr(q.h.Load(first + offNext))
		if first != pmem.Addr(q.h.Load(q.head)) {
			continue
		}
		if first == last {
			if next == 0 {
				return 0, false
			}
			q.h.CompareAndSwap(q.tail, uint64(last), uint64(next))
			continue
		}
		if q.h.CompareAndSwap(next+offClaim, tidNone, uint64(tid)) {
			if q.h.CompareAndSwap(q.head, uint64(first), uint64(next)) {
				q.rec.Retire(tid, first)
			}
			return q.h.Load(next + offValue), true
		}
		if pmem.Addr(q.h.Load(q.head)) == first {
			if q.h.CompareAndSwap(q.head, uint64(first), uint64(next)) {
				q.rec.Retire(tid, first)
			}
		}
	}
}
