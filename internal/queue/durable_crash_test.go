package queue

import (
	"sync"
	"testing"

	"repro/internal/pmem"
)

// TestDurableConcurrentCrashConservation crashes randomized multi-threaded
// runs of the durable queue and audits exactly-once delivery across the
// recovered return slots, the surviving queue, and the values returned
// before the crash.
func TestDurableConcurrentCrashConservation(t *testing.T) {
	const threads = 3
	for trial := 0; trial < 40; trial++ {
		h := newHeap(t, 1<<16)
		q, err := NewDurable(h, 0, threads, 64, 8)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			if err := q.Enqueue(0, uint64(9000+i)); err != nil {
				t.Fatal(err)
			}
		}
		h.ArmCrash(uint64(70 + trial*53))
		var wg sync.WaitGroup
		var mu sync.Mutex
		returned := map[uint64]int{} // values returned by dequeues pre-crash
		for tid := 0; tid < threads; tid++ {
			wg.Add(1)
			go func(tid int) {
				defer wg.Done()
				pmem.RunToCrash(func() {
					for i := 0; ; i++ {
						v := uint64(tid+1)<<32 | uint64(i+1)
						if err := q.Enqueue(tid, v); err != nil {
							t.Errorf("enqueue: %v", err)
							return
						}
						if got, ok := q.Dequeue(tid); ok {
							mu.Lock()
							returned[got]++
							mu.Unlock()
						}
					}
				})
			}(tid)
		}
		wg.Wait()
		h.Crash(pmem.NewRandomFates(int64(trial*7 + 1)))
		q.Recover()

		// The recovered return slots may duplicate a value that was also
		// returned pre-crash (the caller saw it and recovery re-delivers
		// the same slot) — that is the same operation, not a duplicate
		// dequeue. What must never happen: a slot value still in the
		// queue, or two different threads' slots naming one value, or the
		// drain overlapping pre-crash returns.
		slotVals := map[uint64]int{}
		for tid := 0; tid < threads; tid++ {
			if v, ok, _ := q.ReturnedValue(tid); ok {
				slotVals[v]++
			}
		}
		for v, n := range slotVals {
			if n > 1 {
				t.Fatalf("trial %d: value %d delivered to %d return slots", trial, v, n)
			}
		}
		seen := map[uint64]int{}
		for v, n := range returned {
			seen[v] += n
		}
		for {
			v, ok := q.Dequeue(0)
			if !ok {
				break
			}
			seen[v]++
			if slotVals[v] != 0 {
				t.Fatalf("trial %d: value %d both in a return slot and still queued", trial, v)
			}
		}
		for v, n := range seen {
			if n > 1 {
				t.Fatalf("trial %d: value %d observed %d times", trial, v, n)
			}
		}
	}
}
