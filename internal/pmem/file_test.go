//go:build linux

package pmem

import (
	"path/filepath"
	"testing"
)

func TestOpenFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "heap.pmem")
	h, closeHeap, err := OpenFile(path, 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	a, err := h.Alloc(8)
	if err != nil {
		t.Fatal(err)
	}
	h.Store(a, 12345)
	h.Persist(a)
	h.SetRoot(0, a)
	if err := h.SyncErr(); err != nil {
		t.Fatalf("sync error: %v", err)
	}
	if err := closeHeap(); err != nil {
		t.Fatal(err)
	}

	h2, closeHeap2, err := OpenFile(path, 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	defer closeHeap2()
	if got := h2.Root(0); got != a {
		t.Fatalf("root = %d after reopen, want %d", got, a)
	}
	if got := h2.Load(a); got != 12345 {
		t.Fatalf("value = %d after reopen, want 12345", got)
	}
	// The allocation cursor must have survived: a new allocation lands
	// beyond the previous one.
	b, err := h2.Alloc(8)
	if err != nil {
		t.Fatal(err)
	}
	if b <= a {
		t.Fatalf("allocation cursor regressed: old %d, new %d", a, b)
	}
}

func TestOpenFileValidation(t *testing.T) {
	if _, _, err := OpenFile(filepath.Join(t.TempDir(), "x"), 0); err == nil {
		t.Fatal("accepted zero size")
	}
	if _, _, err := OpenFile(filepath.Join(t.TempDir(), "missing-dir", "x"), 64); err == nil {
		t.Fatal("accepted unopenable path")
	}
}

func TestOpenFileAdoptsLargerExisting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "heap.pmem")
	h, closeHeap, err := OpenFile(path, 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	words := h.Words()
	if err := closeHeap(); err != nil {
		t.Fatal(err)
	}
	// Request a smaller arena: the existing file wins.
	h2, closeHeap2, err := OpenFile(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer closeHeap2()
	if h2.Words() != words {
		t.Fatalf("arena shrank across reopen: %d -> %d", words, h2.Words())
	}
}

func TestFileHeapIsDirectMode(t *testing.T) {
	path := filepath.Join(t.TempDir(), "heap.pmem")
	h, closeHeap, err := OpenFile(path, 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	defer closeHeap()
	if h.Mode() != Direct {
		t.Fatalf("mode = %v, want Direct", h.Mode())
	}
}
