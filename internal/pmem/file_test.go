//go:build linux

package pmem

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestOpenFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "heap.pmem")
	h, closeHeap, err := OpenFile(path, 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	a, err := h.Alloc(8)
	if err != nil {
		t.Fatal(err)
	}
	h.Store(a, 12345)
	h.Persist(a)
	h.SetRoot(0, a)
	if err := h.SyncErr(); err != nil {
		t.Fatalf("sync error: %v", err)
	}
	if err := closeHeap(); err != nil {
		t.Fatal(err)
	}

	h2, closeHeap2, err := OpenFile(path, 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	defer closeHeap2()
	if got := h2.Root(0); got != a {
		t.Fatalf("root = %d after reopen, want %d", got, a)
	}
	if got := h2.Load(a); got != 12345 {
		t.Fatalf("value = %d after reopen, want 12345", got)
	}
	// The allocation cursor must have survived: a new allocation lands
	// beyond the previous one.
	b, err := h2.Alloc(8)
	if err != nil {
		t.Fatal(err)
	}
	if b <= a {
		t.Fatalf("allocation cursor regressed: old %d, new %d", a, b)
	}
}

func TestOpenFileValidation(t *testing.T) {
	if _, _, err := OpenFile(filepath.Join(t.TempDir(), "x"), 0); err == nil {
		t.Fatal("accepted zero size")
	}
	if _, _, err := OpenFile(filepath.Join(t.TempDir(), "missing-dir", "x"), 64); err == nil {
		t.Fatal("accepted unopenable path")
	}
}

func TestOpenFileAdoptsLargerExisting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "heap.pmem")
	h, closeHeap, err := OpenFile(path, 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	words := h.Words()
	if err := closeHeap(); err != nil {
		t.Fatal(err)
	}
	// Request a smaller arena: the existing file wins.
	h2, closeHeap2, err := OpenFile(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer closeHeap2()
	if h2.Words() != words {
		t.Fatalf("arena shrank across reopen: %d -> %d", words, h2.Words())
	}
}

func TestFileHeapIsDirectMode(t *testing.T) {
	path := filepath.Join(t.TempDir(), "heap.pmem")
	h, closeHeap, err := OpenFile(path, 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	defer closeHeap()
	if h.Mode() != Direct {
		t.Fatalf("mode = %v, want Direct", h.Mode())
	}
}

func TestOpenFileDirtyMarker(t *testing.T) {
	path := filepath.Join(t.TempDir(), "heap.pmem")
	h, info, closeHeap, err := OpenFileInfo(path, 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Fresh || info.Dirty {
		t.Fatalf("fresh open reported %+v", info)
	}
	a, err := h.Alloc(8)
	if err != nil {
		t.Fatal(err)
	}
	h.Store(a, 7)
	h.Persist(a)
	h.SetRoot(0, a)
	if err := closeHeap(); err != nil {
		t.Fatal(err)
	}

	// A clean close cleared the marker.
	_, info2, closeHeap2, err := OpenFileInfo(path, 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	if info2.Fresh || info2.Dirty {
		t.Fatalf("reopen after clean close reported %+v, want clean non-fresh", info2)
	}
	if err := closeHeap2(); err != nil {
		t.Fatal(err)
	}

	// Simulate a kill -9'd owner: the on-disk image it leaves is exactly
	// the clean image with the dirty word still raised (the marker is set
	// on open and only a clean close lowers it). Patch it back in.
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	var one [8]byte
	one[0] = 1 // little-endian uint64(1)
	if _, err := f.WriteAt(one[:], fileDirtyWord*8); err != nil {
		t.Fatal(err)
	}
	f.Close()

	h3, info3, closeHeap3, err := OpenFileInfo(path, 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	if info3.Fresh || !info3.Dirty {
		t.Fatalf("reopen after kill reported %+v, want dirty non-fresh", info3)
	}
	if got := h3.Load(h3.Root(0)); got != 7 {
		t.Fatalf("value %d after dirty reopen, want 7", got)
	}
	if err := closeHeap3(); err != nil {
		t.Fatal(err)
	}
	_, info4, closeHeap4, err := OpenFileInfo(path, 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	defer closeHeap4()
	if info4.Dirty {
		t.Fatal("clean close after a dirty attach did not clear the marker")
	}
}

func TestOpenFileSingleWriterExclusion(t *testing.T) {
	path := filepath.Join(t.TempDir(), "heap.pmem")
	_, _, closeHeap, err := OpenFileInfo(path, 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := OpenFileInfo(path, 1<<10); err == nil {
		t.Fatal("second live open of one heap file succeeded")
	} else if !strings.Contains(err.Error(), "locked by another live process") {
		t.Fatalf("unhelpful exclusion error: %v", err)
	}
	// Releasing the first handle (clean close drops the flock) unblocks.
	if err := closeHeap(); err != nil {
		t.Fatal(err)
	}
	_, _, closeHeap2, err := OpenFileInfo(path, 1<<10)
	if err != nil {
		t.Fatalf("open after lock release: %v", err)
	}
	closeHeap2()
}

func TestOpenFileRejectsForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not-a-heap")
	if err := os.WriteFile(path, []byte("this is definitely not a heap file, padded to be long enough........"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := OpenFileInfo(path, 1<<10); err == nil {
		t.Fatal("foreign file accepted as a heap")
	}
}

func TestOpenFileAdoptsEmbryonicFile(t *testing.T) {
	// A file truncated to size but never formatted (its creator was
	// killed before the magic — stored last — landed) is adopted as
	// fresh, not rejected, so a server killed during its very first boot
	// can still be restarted.
	path := filepath.Join(t.TempDir(), "heap.pmem")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(1 << 14); err != nil {
		t.Fatal(err)
	}
	f.Close()
	_, info, closeHeap, err := OpenFileInfo(path, 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	defer closeHeap()
	if !info.Fresh {
		t.Fatalf("embryonic file reported %+v, want fresh", info)
	}
	if info.Words != 1<<11 {
		t.Fatalf("adopted %d words, want the larger existing %d", info.Words, 1<<11)
	}
}
