// Package pmem simulates byte-addressable persistent main memory with a
// volatile CPU cache on top, in the shared-cache model targeted by Li &
// Golab's DSS paper (DISC 2021).
//
// The simulated device is a word-addressed arena. Data structures refer to
// persistent state exclusively through Addr offsets, never Go pointers, so
// the garbage collector can neither move nor reclaim "persistent" memory and
// the layout is fully under library control — this is the substitution for
// real persistent memory (Optane DCPMM) that Go cannot express natively.
//
// A Heap runs in one of two modes:
//
//   - Direct: loads, stores, and CAS operate on the arena via sync/atomic;
//     Persist applies a calibrated spin delay that models the cost of
//     CLWB+SFENCE on Optane hardware. This mode is used for benchmarking.
//   - Tracked: in addition to the coherent cache view, the heap maintains a
//     shadow persisted view with per-cache-line dirty tracking, counts every
//     primitive memory step, and can inject a crash at an exact step. This
//     mode is used for crash-recovery verification.
//
// The Direct-mode hot path is built not to manufacture contention the
// modeled hardware does not have: operation counters are striped across
// cache-line-padded shards (aggregated lazily by Stats), the Heap's mutable
// words are padded apart from its read-mostly configuration, and the flush
// cost model splits CLWB issue from SFENCE drain so that batched flushes
// under one fence (PersistRange, PersistPair) coalesce instead of paying
// the full latency per line.
//
// A simulated crash is delivered as a panic carrying a *CrashError. Every
// subsequent heap access by any goroutine raises the same panic, so all
// workers unwind cooperatively; the test harness recovers the sentinel with
// RunToCrash, applies a line Adversary via Heap.Crash, and then runs the
// data structure's recovery procedure. This panic is the one deliberate
// exception to the no-panics rule: it models system-wide power loss, which
// by definition does not return.
package pmem

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"repro/internal/goid"
)

// Addr is a word-granularity offset into a Heap's arena. Addr 0 is the NULL
// address: the first cache line of every heap is reserved and never
// allocated, so a zero Addr never refers to live data. The arena is small
// enough that the upper bits of an Addr are always zero; data structures
// borrow those bits for tags, exactly as the paper borrows the unused upper
// bits of 48-bit x86-64 pointers.
type Addr uint64

const (
	// WordsPerLine is the number of 64-bit words in a simulated cache line.
	WordsPerLine = 8
	// LineBytes is the size of a simulated cache line in bytes.
	LineBytes = WordsPerLine * 8

	// reservedWords is the number of words at the bottom of the arena that
	// are never handed out by Alloc: line 0 is the NULL guard, lines 1-2
	// hold the persistent root directory.
	reservedWords = 3 * WordsPerLine

	// NumRoots is the number of slots in the persistent root directory.
	NumRoots = 16

	rootBase = WordsPerLine // roots live in words [8, 8+NumRoots)

	// allocCursorWord persists the allocation cursor for file-backed
	// heaps (word 7 of the otherwise-reserved NULL guard line).
	allocCursorWord = WordsPerLine - 1
)

// Mode selects how a Heap simulates persistence.
type Mode int

const (
	// Direct mode applies operations straight to the arena and models
	// Persist latency with a spin delay. It cannot inject crashes.
	Direct Mode = iota + 1
	// Tracked mode maintains a shadow persisted view with dirty-line
	// tracking and supports deterministic crash injection.
	Tracked
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case Direct:
		return "Direct"
	case Tracked:
		return "Tracked"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config parameterizes a Heap.
type Config struct {
	// Words is the arena capacity in 64-bit words. It is rounded up to a
	// whole number of cache lines.
	Words int
	// Mode selects Direct (benchmarking) or Tracked (verification).
	Mode Mode
	// FlushLatency is the simulated cost of one Persist (CLWB+SFENCE) in
	// Direct mode. The cost is split between the flush (CLWB issue,
	// flushIssueFrac of the latency) and the fence (SFENCE drain, the
	// rest), so n flushes retired by a single fence cost
	// (n*issue + drain) rather than n full latencies — the way CLWBs to
	// distinct lines pipeline on real hardware. Persist (one flush, one
	// fence) costs exactly FlushLatency. Zero disables the delay.
	// Ignored in Tracked mode.
	FlushLatency time.Duration
	// AccessDelay is a calibrated spin (in loop iterations, roughly
	// 0.5-1 ns each) charged to every Load/Store/CAS in Direct mode. It
	// models the base memory-operation cost of the paper's testbed
	// (atomics compiled at -O0 against a real coherence fabric), without
	// which simulated flush latency would dominate all ratios. Zero
	// disables it. Ignored in Tracked mode.
	AccessDelay int
}

// flushIssueDenom splits FlushLatency between CLWB issue (1/flushIssueDenom
// of the latency, charged by Flush) and SFENCE drain (the remainder,
// charged by Fence).
const flushIssueDenom = 4

// StepKind classifies a Tracked-mode primitive memory step for the step
// gate. Schedulers that model per-operation hardware costs (the vtime
// package's simulated multi-core clock) use the kind to charge the right
// latency; schedulers that only need interleaving control (the systematic
// model checker) ignore it.
type StepKind int

const (
	// StepLoad is an atomic read of one word.
	StepLoad StepKind = iota + 1
	// StepStore is an atomic write of one word.
	StepStore
	// StepCAS is an atomic compare-and-swap of one word.
	StepCAS
	// StepFlush is a CLWB issue (write-back of one line, unordered).
	StepFlush
	// StepFence is an SFENCE drain (wait for issued write-backs).
	StepFence
)

// String returns the step-kind name.
func (k StepKind) String() string {
	switch k {
	case StepLoad:
		return "load"
	case StepStore:
		return "store"
	case StepCAS:
		return "cas"
	case StepFlush:
		return "flush"
	case StepFence:
		return "fence"
	default:
		return fmt.Sprintf("StepKind(%d)", int(k))
	}
}

// ErrOutOfMemory is returned by Alloc when the arena is exhausted.
var ErrOutOfMemory = errors.New("pmem: arena exhausted")

// CrashError is the sentinel carried by the panic a Heap raises when a
// simulated crash fires. Only the pmem harness (RunToCrash) should recover
// it.
type CrashError struct {
	// Step is the primitive-step count at which the crash fired.
	Step uint64
}

// Error implements the error interface.
func (e *CrashError) Error() string {
	return fmt.Sprintf("pmem: simulated crash at step %d", e.Step)
}

// Stats counts primitive memory operations issued against a Heap.
//
// FencesElided counts Fence calls absorbed by an open fence batch (see
// BeginFenceBatch): ordering points the algorithm asked for that were
// retired by the batch's single closing drain instead of an SFENCE of
// their own. It is omitted from JSON when zero so reports from
// non-batching runs are byte-identical to those of earlier schemas.
type Stats struct {
	Loads        uint64 `json:"loads"`
	Stores       uint64 `json:"stores"`
	CASes        uint64 `json:"cases"`
	Flushes      uint64 `json:"flushes"`
	Fences       uint64 `json:"fences"`
	FencesElided uint64 `json:"fences_elided,omitempty"`
}

// Sub returns the per-field difference s - prev: the operations issued
// between two Stats() reads. Saturating, so a pair of lazy-aggregated
// reads taken around concurrent activity never underflows.
func (s Stats) Sub(prev Stats) Stats {
	sat := func(a, b uint64) uint64 {
		if a < b {
			return 0
		}
		return a - b
	}
	return Stats{
		Loads:        sat(s.Loads, prev.Loads),
		Stores:       sat(s.Stores, prev.Stores),
		CASes:        sat(s.CASes, prev.CASes),
		Flushes:      sat(s.Flushes, prev.Flushes),
		Fences:       sat(s.Fences, prev.Fences),
		FencesElided: sat(s.FencesElided, prev.FencesElided),
	}
}

// Stat-shard geometry: counters are striped across statShards shards, each
// padded to two cache lines so that no two shards — and no shard and any
// neighbouring Heap field — share a line even under adjacent-line
// prefetching.
const (
	statShardBits = 6
	statShards    = 1 << statShardBits
)

// paddedStats is one stripe of the operation counters.
type paddedStats struct {
	loads, stores, cases, flushes, fences, elided atomic.Uint64
	_                                             [128 - 6*8]byte
}

// syncFailure boxes the first durable write-back error of a file-backed
// heap so it can be latched with a single pointer CAS.
type syncFailure struct{ err error }

// linePad separates mutable Heap fields so independent writers never share
// a cache line.
type linePad struct{ _ [64]byte }

// Heap is a simulated persistent memory device. All methods are safe for
// concurrent use.
//
// Field layout: everything up to the first pad is read-mostly after New
// (configuration and slice headers), and the mutable atomics that follow
// are padded apart so that the Direct-mode hot path — which reads only the
// configuration section — never shares a cache line with a contended
// counter or the allocation cursor.
type Heap struct {
	mode   Mode
	access int
	// flushIssue/fenceDrain are the pre-computed spin iteration counts for
	// the CLWB-issue and SFENCE-drain halves of FlushLatency (Direct mode;
	// see Config.FlushLatency).
	flushIssue int
	fenceDrain int

	// cache is the coherent (volatile) view shared by all simulated CPUs.
	cache []uint64
	// persisted is the durable view; only maintained in Tracked mode.
	persisted []uint64
	// dirty has one flag per cache line; only maintained in Tracked mode.
	// A set flag is a conservative hint that the line's cache view may be
	// ahead of its persisted view.
	dirty []atomic.Uint32

	// gate, when set (Tracked mode), is invoked before every primitive
	// memory step with the step's kind. Systematic concurrency testing
	// uses it as a scheduling point: the gate blocks the calling
	// goroutine until a controller grants it the right to take the step,
	// which makes thread interleavings fully controllable and
	// replayable. The vtime scheduler additionally uses the kind to
	// charge the step's modeled latency to the caller's virtual clock.
	gate func(kind StepKind)

	// sync, when set (file-backed heaps), makes Flush durably write the
	// line's page back to the backing file. The first failure is latched
	// in syncErr (lock-free; see SyncErr).
	sync    func(a Addr) error
	syncErr atomic.Pointer[syncFailure]

	_ linePad

	allocNext atomic.Uint64 // next free word; line-aligned

	_ linePad

	steps   atomic.Uint64
	crashAt atomic.Uint64 // 0 = disarmed
	crashed atomic.Uint32

	_ linePad

	// fenceOpen is the number of goroutines with an open fence batch; it
	// gates Fence's deferral check so the non-batching hot path pays one
	// relaxed atomic load and nothing else.
	fenceOpen  atomic.Int64
	fenceMu    sync.Mutex
	fenceBatch map[uint64]int // goroutine id -> batch nesting depth

	_ linePad

	stats [statShards]paddedStats
}

// New creates a Heap with the given configuration.
func New(cfg Config) (*Heap, error) {
	if cfg.Mode != Direct && cfg.Mode != Tracked {
		return nil, fmt.Errorf("pmem: invalid mode %d", int(cfg.Mode))
	}
	if cfg.Words <= 0 {
		return nil, fmt.Errorf("pmem: non-positive arena size %d", cfg.Words)
	}
	words := (cfg.Words + WordsPerLine - 1) / WordsPerLine * WordsPerLine
	if words < 4*WordsPerLine {
		words = 4 * WordsPerLine
	}
	h := &Heap{
		mode:   cfg.Mode,
		access: cfg.AccessDelay,
		cache:  make([]uint64, words),
	}
	if cfg.Mode == Direct && cfg.FlushLatency > 0 {
		issueNS := cfg.FlushLatency.Nanoseconds() / flushIssueDenom
		h.flushIssue = nsToIters(issueNS)
		h.fenceDrain = nsToIters(cfg.FlushLatency.Nanoseconds() - issueNS)
	}
	if cfg.Mode == Tracked {
		h.persisted = make([]uint64, words)
		h.dirty = make([]atomic.Uint32, words/WordsPerLine)
	}
	h.allocNext.Store(reservedWords)
	return h, nil
}

// Mode reports the heap's mode.
func (h *Heap) Mode() Mode { return h.mode }

// Words reports the arena capacity in words.
func (h *Heap) Words() int { return len(h.cache) }

// Alloc reserves words (rounded up to whole cache lines, so distinct
// allocations never share a line) and returns the address of the first word.
// The memory is zeroed. Allocation metadata survives simulated crashes: a
// real persistent heap recovers its allocator state from a durable root, so
// the arena is never re-handed-out after a crash; block-level reuse is the
// job of Pool, whose free lists are rebuilt by data-structure recovery.
func (h *Heap) Alloc(words int) (Addr, error) {
	if words <= 0 {
		return 0, fmt.Errorf("pmem: non-positive allocation size %d", words)
	}
	n := uint64((words + WordsPerLine - 1) / WordsPerLine * WordsPerLine)
	for {
		cur := h.allocNext.Load()
		if cur+n > uint64(len(h.cache)) {
			return 0, fmt.Errorf("%w: need %d words, %d free", ErrOutOfMemory, n, uint64(len(h.cache))-cur)
		}
		if h.allocNext.CompareAndSwap(cur, cur+n) {
			if h.sync != nil {
				h.persistCursor()
			}
			return Addr(cur), nil
		}
	}
}

// persistCursor durably records the allocation cursor (file-backed heaps
// only), so a reopened heap resumes allocation where this one stopped.
func (h *Heap) persistCursor() {
	atomic.StoreUint64(&h.cache[allocCursorWord], h.allocNext.Load())
	h.Flush(allocCursorWord)
}

// noteSyncErr latches the first durable write-back failure. Lock-free: a
// single CAS on the failure path, nothing on the success path.
func (h *Heap) noteSyncErr(err error) {
	h.syncErr.CompareAndSwap(nil, &syncFailure{err: err})
}

// SyncErr reports the first durable write-back failure of a file-backed
// heap (nil for simulated heaps and clean runs). Like Stats, it may be
// polled concurrently with operations at no cost to the hot path.
func (h *Heap) SyncErr() error {
	if f := h.syncErr.Load(); f != nil {
		return f.err
	}
	return nil
}

// AllocUsed reports the number of words currently allocated (including the
// reserved prefix).
func (h *Heap) AllocUsed() int { return int(h.allocNext.Load()) }

// SetRoot stores a into slot i of the persistent root directory and
// persists it. Roots are how recovery code locates structures after a
// crash.
func (h *Heap) SetRoot(i int, a Addr) {
	if i < 0 || i >= NumRoots {
		panic(fmt.Sprintf("pmem: root index %d out of range", i))
	}
	h.Store(Addr(rootBase+i), uint64(a))
	h.Persist(Addr(rootBase + i))
}

// Root returns the address stored in slot i of the root directory.
func (h *Heap) Root(i int) Addr {
	if i < 0 || i >= NumRoots {
		panic(fmt.Sprintf("pmem: root index %d out of range", i))
	}
	return Addr(h.Load(Addr(rootBase + i)))
}

// SetStepGate installs (or, with nil, removes) the scheduling gate called
// before every Tracked-mode memory step. Install it only while the heap
// is quiescent (no operations in flight).
func (h *Heap) SetStepGate(gate func(kind StepKind)) {
	if h.mode != Tracked {
		panic("pmem: SetStepGate requires Tracked mode")
	}
	h.gate = gate
}

// step counts one primitive memory operation in Tracked mode and fires the
// armed crash when the step counter reaches the trigger.
func (h *Heap) step(kind StepKind) {
	if h.gate != nil {
		h.gate(kind)
	}
	if h.crashed.Load() != 0 {
		panic(&CrashError{Step: h.steps.Load()})
	}
	n := h.steps.Add(1)
	if t := h.crashAt.Load(); t != 0 && n >= t {
		h.crashed.Store(1)
		panic(&CrashError{Step: n})
	}
}

// check validates a against the arena bounds. Out-of-range addresses are
// programming errors (corrupted tagged pointers), reported loudly.
func (h *Heap) check(a Addr) {
	if a >= Addr(len(h.cache)) {
		panic(fmt.Sprintf("pmem: address %#x out of range (arena %d words); tag bits leaked into an address?", uint64(a), len(h.cache)))
	}
}

// stat picks this goroutine's counter shard. The key is derived from the
// address of a stack slot: goroutine stacks are disjoint memory regions, so
// concurrent goroutines hash to different shards with high probability and
// a tight loop in one goroutine keeps hitting the same (exclusively owned,
// cache-hot) shard. Correctness does not depend on the key — every
// operation increments exactly one shard and Stats sums them all — only
// contention does.
func (h *Heap) stat() *paddedStats {
	var slot byte
	p := uint64(uintptr(unsafe.Pointer(&slot)))
	return &h.stats[(p>>3)*0x9E3779B97F4A7C15>>(64-statShardBits)]
}

// Load atomically reads the word at a from the coherent cache view.
func (h *Heap) Load(a Addr) uint64 {
	h.check(a)
	if h.mode == Direct {
		if h.access > 0 {
			spinIters(h.access)
		}
		h.stat().loads.Add(1)
		return atomic.LoadUint64(&h.cache[a])
	}
	h.step(StepLoad)
	h.stat().loads.Add(1)
	return atomic.LoadUint64(&h.cache[a])
}

// LoadVolatile reads the word at a from the coherent cache view without
// charging the simulated access delay, without counting toward Stats, and
// without consuming a Tracked-mode step or scheduling point. It is the
// simulator's own bookkeeping read — for pool pin predicates and similar
// reclamation-side scans whose cost the paper's testbed does not pay as
// modeled memory operations. Algorithm code must keep using Load. The
// crash sentinel still fires, so in-flight workers unwind promptly.
func (h *Heap) LoadVolatile(a Addr) uint64 {
	h.check(a)
	if h.mode == Tracked && h.crashed.Load() != 0 {
		panic(&CrashError{Step: h.steps.Load()})
	}
	return atomic.LoadUint64(&h.cache[a])
}

// Store atomically writes v to the word at a in the coherent cache view.
// The update is volatile until the containing line is flushed.
func (h *Heap) Store(a Addr, v uint64) {
	h.check(a)
	if h.mode == Direct {
		if h.access > 0 {
			spinIters(h.access)
		}
		h.stat().stores.Add(1)
		atomic.StoreUint64(&h.cache[a], v)
		return
	}
	h.step(StepStore)
	// Mark dirty before the store: a concurrent Flush between the mark
	// and the store may clear the flag having written back the old
	// value, which loses this store on crash — a legal outcome for an
	// un-flushed store. The converse order could leave an un-persisted
	// store on a clean line, which would be unsound.
	h.dirty[a/WordsPerLine].Store(1)
	h.stat().stores.Add(1)
	atomic.StoreUint64(&h.cache[a], v)
}

// CompareAndSwap atomically replaces the word at a with new if it equals
// old, reporting whether the swap happened. Like Store, a successful swap
// is volatile until flushed.
func (h *Heap) CompareAndSwap(a Addr, old, new uint64) bool {
	h.check(a)
	if h.mode == Direct {
		if h.access > 0 {
			spinIters(h.access)
		}
		h.stat().cases.Add(1)
		return atomic.CompareAndSwapUint64(&h.cache[a], old, new)
	}
	h.step(StepCAS)
	h.dirty[a/WordsPerLine].Store(1)
	h.stat().cases.Add(1)
	return atomic.CompareAndSwapUint64(&h.cache[a], old, new)
}

// Flush writes the cache line containing a back to the persisted view. The
// simulated write-back is synchronous, which matches the paper's FLUSH: it
// stands for PMDK pmem_persist's CLWB half. Flush copies the line
// unconditionally — the dirty flag is only a hint for the crash adversary
// — so after Flush returns, the persisted view holds values at least as
// new as the cache view held when Flush was called.
//
// In Direct mode Flush charges only the CLWB issue slice of FlushLatency;
// the drain is charged by the following Fence. Persist (flush+fence) costs
// the full FlushLatency, while n flushes retired by one fence — see
// PersistRange and PersistPair — coalesce.
func (h *Heap) Flush(a Addr) {
	h.check(a)
	h.stat().flushes.Add(1)
	switch h.mode {
	case Direct:
		if h.sync != nil {
			if err := h.sync(a); err != nil {
				h.noteSyncErr(err)
			}
		}
		spinIters(h.flushIssue)
	case Tracked:
		h.step(StepFlush)
		line := a / WordsPerLine
		base := line * WordsPerLine
		h.dirty[line].Store(0)
		for i := Addr(0); i < WordsPerLine; i++ {
			atomic.StoreUint64(&h.persisted[base+i], atomic.LoadUint64(&h.cache[base+i]))
		}
	}
}

// FlushLine is Flush under its hardware name: it issues the write-back of
// the line containing a without ordering or draining it. Pair a batch of
// FlushLine calls with one Fence to model CLWB batching.
func (h *Heap) FlushLine(a Addr) { h.Flush(a) }

// Fence is a store fence. In Direct mode it charges the SFENCE drain slice
// of FlushLatency (the simulated wait for previously issued flushes to
// reach the medium); in Tracked mode the write-back is already synchronous,
// so Fence only counts a step.
func (h *Heap) Fence() {
	if h.fenceOpen.Load() != 0 && h.deferFence() {
		return
	}
	h.stat().fences.Add(1)
	if h.mode == Tracked {
		h.step(StepFence)
		return
	}
	spinIters(h.fenceDrain)
}

// deferFence reports whether the calling goroutine holds an open fence
// batch. If so, the fence is elided — counted in Stats.FencesElided, no
// drain charged, no Tracked-mode step consumed — and its ordering
// obligation is carried forward to the batch's closing Fence.
func (h *Heap) deferFence() bool {
	id := goid.ID()
	h.fenceMu.Lock()
	_, open := h.fenceBatch[id]
	h.fenceMu.Unlock()
	if !open {
		return false
	}
	h.stat().elided.Add(1)
	return true
}

// BeginFenceBatch opens a fence batch for the calling goroutine: until the
// matching EndFenceBatch, every Fence this goroutine issues (directly or
// via Persist, PersistPair, PersistRange) is elided and replaced by the
// single drain EndFenceBatch issues. Flushes still happen eagerly — CLWB
// issues pipeline; only the SFENCE drains coalesce — so after
// EndFenceBatch returns, everything persisted inside the batch is durable
// exactly as if each fence had been paid.
//
// What a batch changes is the *intermediate* crash states in Direct mode
// on real hardware: within the batch, issued write-backs are no longer
// ordered against each other. In this simulator Flush's write-back is
// synchronous (Tracked mode copies the line to the persisted view before
// returning), so eliding interior fences changes no crash state; callers
// that rely on a fence ordering line A's durability before line B's write
// must not hold the two under one batch unless, as in internal/combine,
// a crash anywhere inside the batch is recoverable regardless of order.
//
// Batches nest (each Begin needs an End) and are per-goroutine: other
// goroutines' fences are unaffected. A simulated crash clears all open
// batches; the unwound goroutines must not call EndFenceBatch afterwards.
func (h *Heap) BeginFenceBatch() {
	id := goid.ID()
	h.fenceMu.Lock()
	if h.fenceBatch == nil {
		h.fenceBatch = make(map[uint64]int)
	}
	if h.fenceBatch[id] == 0 {
		h.fenceOpen.Add(1)
	}
	h.fenceBatch[id]++
	h.fenceMu.Unlock()
}

// EndFenceBatch closes the calling goroutine's innermost fence batch. The
// outermost EndFenceBatch issues one real Fence, draining every flush
// issued under the batch. The batch state is torn down before that fence
// runs, so a simulated crash delivered at the drain leaves no stale entry.
func (h *Heap) EndFenceBatch() {
	id := goid.ID()
	h.fenceMu.Lock()
	d, ok := h.fenceBatch[id]
	if !ok {
		h.fenceMu.Unlock()
		panic("pmem: EndFenceBatch without matching BeginFenceBatch")
	}
	d--
	if d == 0 {
		delete(h.fenceBatch, id)
		h.fenceOpen.Add(-1)
	} else {
		h.fenceBatch[id] = d
	}
	h.fenceMu.Unlock()
	if d == 0 {
		h.Fence()
	}
}

// Persist flushes the line containing a and fences, mirroring PMDK
// pmem_persist. This is the FLUSH primitive used throughout the paper's
// pseudocode. It costs the full FlushLatency.
func (h *Heap) Persist(a Addr) {
	h.Flush(a)
	h.Fence()
}

// PersistPair persists the lines containing a and b under a single fence:
// both CLWBs are issued, then one SFENCE drains them. Use it when two
// independent lines (for example a queue's head and tail) must be durable
// but nothing orders one before the other — a crash may persist either,
// both, or neither, exactly as with two issued-but-undrained CLWBs.
func (h *Heap) PersistPair(a, b Addr) {
	h.Flush(a)
	h.Flush(b)
	h.Fence()
}

// PersistRange persists every line in [a, a+words) under a single fence,
// modelling batched CLWBs: per-line issue cost, one drain.
func (h *Heap) PersistRange(a Addr, words int) {
	if words <= 0 {
		return
	}
	first := a / WordsPerLine
	last := (a + Addr(words) - 1) / WordsPerLine
	for l := first; l <= last; l++ {
		h.Flush(l * WordsPerLine)
	}
	h.Fence()
}

// Stats aggregates the operation counters accumulated so far across all
// shards. The aggregate is exact once the heap is quiescent; under
// concurrent operations it is a consistent lower bound per counter.
func (h *Heap) Stats() Stats {
	var s Stats
	for i := range h.stats {
		sh := &h.stats[i]
		s.Loads += sh.loads.Load()
		s.Stores += sh.stores.Load()
		s.CASes += sh.cases.Load()
		s.Flushes += sh.flushes.Load()
		s.Fences += sh.fences.Load()
		s.FencesElided += sh.elided.Load()
	}
	return s
}

// Snapshot is an alias for Stats, kept for existing callers.
func (h *Heap) Snapshot() Stats { return h.Stats() }

// Steps reports the primitive-step counter (Tracked mode only).
func (h *Heap) Steps() uint64 { return h.steps.Load() }

// spinCal holds the lazily measured spin speed used to convert simulated
// nanoseconds into spinIters iterations, so delay loops never touch the
// clock on the hot path (time.Now/nanotime cost tens of nanoseconds per
// call and used to dominate flush spinning).
var spinCal struct {
	once        sync.Once
	itersPerMic uint64 // spin iterations per microsecond
}

// spinProbe is the calibration workload size. It is a variable, not a
// constant: with a constant argument the compiler can fold spinIters'
// keep-alive check away and time a gutted loop, which once made the probe
// run ~8x faster than real call sites and inflated every simulated delay
// accordingly.
var spinProbe = 1 << 16

// nsToIters converts a simulated delay to calibrated spin iterations,
// measuring the spin speed once per process.
func nsToIters(ns int64) int {
	if ns <= 0 {
		return 0
	}
	spinCal.once.Do(func() {
		best := int64(1) << 62
		for i := 0; i < 5; i++ {
			start := time.Now()
			spinIters(spinProbe)
			if d := time.Since(start).Nanoseconds(); d > 0 && d < best {
				best = d
			}
		}
		ipm := uint64(spinProbe) * 1000 / uint64(best)
		if ipm == 0 {
			ipm = 1
		}
		spinCal.itersPerMic = ipm
	})
	iters := uint64(ns) * spinCal.itersPerMic / 1000
	if iters == 0 {
		iters = 1
	}
	return int(iters)
}

// spinIters burns roughly n short loop iterations; the mixing keeps the
// compiler from eliding the loop.
func spinIters(n int) {
	acc := uint64(1)
	for i := 0; i < n; i++ {
		acc = acc*2654435761 + uint64(i)
	}
	if acc == 42 && n == -1 {
		panic("unreachable")
	}
}
