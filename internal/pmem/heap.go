// Package pmem simulates byte-addressable persistent main memory with a
// volatile CPU cache on top, in the shared-cache model targeted by Li &
// Golab's DSS paper (DISC 2021).
//
// The simulated device is a word-addressed arena. Data structures refer to
// persistent state exclusively through Addr offsets, never Go pointers, so
// the garbage collector can neither move nor reclaim "persistent" memory and
// the layout is fully under library control — this is the substitution for
// real persistent memory (Optane DCPMM) that Go cannot express natively.
//
// A Heap runs in one of two modes:
//
//   - Direct: loads, stores, and CAS operate on the arena via sync/atomic;
//     Persist applies a calibrated spin delay that models the cost of
//     CLWB+SFENCE on Optane hardware. This mode is used for benchmarking.
//   - Tracked: in addition to the coherent cache view, the heap maintains a
//     shadow persisted view with per-cache-line dirty tracking, counts every
//     primitive memory step, and can inject a crash at an exact step. This
//     mode is used for crash-recovery verification.
//
// A simulated crash is delivered as a panic carrying a *CrashError. Every
// subsequent heap access by any goroutine raises the same panic, so all
// workers unwind cooperatively; the test harness recovers the sentinel with
// RunToCrash, applies a line Adversary via Heap.Crash, and then runs the
// data structure's recovery procedure. This panic is the one deliberate
// exception to the no-panics rule: it models system-wide power loss, which
// by definition does not return.
package pmem

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Addr is a word-granularity offset into a Heap's arena. Addr 0 is the NULL
// address: the first cache line of every heap is reserved and never
// allocated, so a zero Addr never refers to live data. The arena is small
// enough that the upper bits of an Addr are always zero; data structures
// borrow those bits for tags, exactly as the paper borrows the unused upper
// bits of 48-bit x86-64 pointers.
type Addr uint64

const (
	// WordsPerLine is the number of 64-bit words in a simulated cache line.
	WordsPerLine = 8
	// LineBytes is the size of a simulated cache line in bytes.
	LineBytes = WordsPerLine * 8

	// reservedWords is the number of words at the bottom of the arena that
	// are never handed out by Alloc: line 0 is the NULL guard, lines 1-2
	// hold the persistent root directory.
	reservedWords = 3 * WordsPerLine

	// NumRoots is the number of slots in the persistent root directory.
	NumRoots = 16

	rootBase = WordsPerLine // roots live in words [8, 8+NumRoots)

	// allocCursorWord persists the allocation cursor for file-backed
	// heaps (word 7 of the otherwise-reserved NULL guard line).
	allocCursorWord = WordsPerLine - 1
)

// Mode selects how a Heap simulates persistence.
type Mode int

const (
	// Direct mode applies operations straight to the arena and models
	// Persist latency with a spin delay. It cannot inject crashes.
	Direct Mode = iota + 1
	// Tracked mode maintains a shadow persisted view with dirty-line
	// tracking and supports deterministic crash injection.
	Tracked
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case Direct:
		return "Direct"
	case Tracked:
		return "Tracked"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config parameterizes a Heap.
type Config struct {
	// Words is the arena capacity in 64-bit words. It is rounded up to a
	// whole number of cache lines.
	Words int
	// Mode selects Direct (benchmarking) or Tracked (verification).
	Mode Mode
	// FlushLatency is the simulated cost of one Persist (CLWB+SFENCE) in
	// Direct mode. Zero disables the delay. Ignored in Tracked mode.
	FlushLatency time.Duration
	// AccessDelay is a calibrated spin (in loop iterations, roughly
	// 0.5-1 ns each) charged to every Load/Store/CAS in Direct mode. It
	// models the base memory-operation cost of the paper's testbed
	// (atomics compiled at -O0 against a real coherence fabric), without
	// which simulated flush latency would dominate all ratios. Zero
	// disables it. Ignored in Tracked mode.
	AccessDelay int
}

// ErrOutOfMemory is returned by Alloc when the arena is exhausted.
var ErrOutOfMemory = errors.New("pmem: arena exhausted")

// CrashError is the sentinel carried by the panic a Heap raises when a
// simulated crash fires. Only the pmem harness (RunToCrash) should recover
// it.
type CrashError struct {
	// Step is the primitive-step count at which the crash fired.
	Step uint64
}

// Error implements the error interface.
func (e *CrashError) Error() string {
	return fmt.Sprintf("pmem: simulated crash at step %d", e.Step)
}

// Stats counts primitive memory operations issued against a Heap.
type Stats struct {
	Loads   uint64
	Stores  uint64
	CASes   uint64
	Flushes uint64
	Fences  uint64
}

// Heap is a simulated persistent memory device. All methods are safe for
// concurrent use.
type Heap struct {
	mode    Mode
	flushNS int64
	access  int

	// cache is the coherent (volatile) view shared by all simulated CPUs.
	cache []uint64
	// persisted is the durable view; only maintained in Tracked mode.
	persisted []uint64
	// dirty has one flag per cache line; only maintained in Tracked mode.
	// A set flag is a conservative hint that the line's cache view may be
	// ahead of its persisted view.
	dirty []atomic.Uint32

	steps   atomic.Uint64
	crashAt atomic.Uint64 // 0 = disarmed
	crashed atomic.Uint32

	// gate, when set (Tracked mode), is invoked before every primitive
	// memory step. Systematic concurrency testing uses it as a
	// scheduling point: the gate blocks the calling goroutine until a
	// controller grants it the right to take the step, which makes
	// thread interleavings fully controllable and replayable.
	gate func()

	// sync, when set (file-backed heaps), makes Flush durably write the
	// line's page back to the backing file. The first failure is latched
	// in syncErr.
	sync    func(a Addr) error
	syncMu  sync.Mutex
	syncErr error

	allocNext atomic.Uint64 // next free word; line-aligned

	loads   atomic.Uint64
	stores  atomic.Uint64
	cases   atomic.Uint64
	flushes atomic.Uint64
	fences  atomic.Uint64
}

// New creates a Heap with the given configuration.
func New(cfg Config) (*Heap, error) {
	if cfg.Mode != Direct && cfg.Mode != Tracked {
		return nil, fmt.Errorf("pmem: invalid mode %d", int(cfg.Mode))
	}
	if cfg.Words <= 0 {
		return nil, fmt.Errorf("pmem: non-positive arena size %d", cfg.Words)
	}
	words := (cfg.Words + WordsPerLine - 1) / WordsPerLine * WordsPerLine
	if words < 4*WordsPerLine {
		words = 4 * WordsPerLine
	}
	h := &Heap{
		mode:    cfg.Mode,
		flushNS: cfg.FlushLatency.Nanoseconds(),
		access:  cfg.AccessDelay,
		cache:   make([]uint64, words),
	}
	if cfg.Mode == Tracked {
		h.persisted = make([]uint64, words)
		h.dirty = make([]atomic.Uint32, words/WordsPerLine)
	}
	h.allocNext.Store(reservedWords)
	return h, nil
}

// Mode reports the heap's mode.
func (h *Heap) Mode() Mode { return h.mode }

// Words reports the arena capacity in words.
func (h *Heap) Words() int { return len(h.cache) }

// Alloc reserves words (rounded up to whole cache lines, so distinct
// allocations never share a line) and returns the address of the first word.
// The memory is zeroed. Allocation metadata survives simulated crashes: a
// real persistent heap recovers its allocator state from a durable root, so
// the arena is never re-handed-out after a crash; block-level reuse is the
// job of Pool, whose free lists are rebuilt by data-structure recovery.
func (h *Heap) Alloc(words int) (Addr, error) {
	if words <= 0 {
		return 0, fmt.Errorf("pmem: non-positive allocation size %d", words)
	}
	n := uint64((words + WordsPerLine - 1) / WordsPerLine * WordsPerLine)
	for {
		cur := h.allocNext.Load()
		if cur+n > uint64(len(h.cache)) {
			return 0, fmt.Errorf("%w: need %d words, %d free", ErrOutOfMemory, n, uint64(len(h.cache))-cur)
		}
		if h.allocNext.CompareAndSwap(cur, cur+n) {
			if h.sync != nil {
				h.persistCursor()
			}
			return Addr(cur), nil
		}
	}
}

// persistCursor durably records the allocation cursor (file-backed heaps
// only), so a reopened heap resumes allocation where this one stopped.
func (h *Heap) persistCursor() {
	atomic.StoreUint64(&h.cache[allocCursorWord], h.allocNext.Load())
	h.Flush(allocCursorWord)
}

// SyncErr reports the first durable write-back failure of a file-backed
// heap (nil for simulated heaps and clean runs).
func (h *Heap) SyncErr() error {
	h.syncMu.Lock()
	defer h.syncMu.Unlock()
	return h.syncErr
}

// AllocUsed reports the number of words currently allocated (including the
// reserved prefix).
func (h *Heap) AllocUsed() int { return int(h.allocNext.Load()) }

// SetRoot stores a into slot i of the persistent root directory and
// persists it. Roots are how recovery code locates structures after a
// crash.
func (h *Heap) SetRoot(i int, a Addr) {
	if i < 0 || i >= NumRoots {
		panic(fmt.Sprintf("pmem: root index %d out of range", i))
	}
	h.Store(Addr(rootBase+i), uint64(a))
	h.Persist(Addr(rootBase + i))
}

// Root returns the address stored in slot i of the root directory.
func (h *Heap) Root(i int) Addr {
	if i < 0 || i >= NumRoots {
		panic(fmt.Sprintf("pmem: root index %d out of range", i))
	}
	return Addr(h.Load(Addr(rootBase + i)))
}

// SetStepGate installs (or, with nil, removes) the scheduling gate called
// before every Tracked-mode memory step. Install it only while the heap
// is quiescent (no operations in flight).
func (h *Heap) SetStepGate(gate func()) {
	if h.mode != Tracked {
		panic("pmem: SetStepGate requires Tracked mode")
	}
	h.gate = gate
}

// step counts one primitive memory operation in Tracked mode and fires the
// armed crash when the step counter reaches the trigger.
func (h *Heap) step() {
	if h.gate != nil {
		h.gate()
	}
	if h.crashed.Load() != 0 {
		panic(&CrashError{Step: h.steps.Load()})
	}
	n := h.steps.Add(1)
	if t := h.crashAt.Load(); t != 0 && n >= t {
		h.crashed.Store(1)
		panic(&CrashError{Step: n})
	}
}

// check validates a against the arena bounds. Out-of-range addresses are
// programming errors (corrupted tagged pointers), reported loudly.
func (h *Heap) check(a Addr) {
	if a >= Addr(len(h.cache)) {
		panic(fmt.Sprintf("pmem: address %#x out of range (arena %d words); tag bits leaked into an address?", uint64(a), len(h.cache)))
	}
}

// Load atomically reads the word at a from the coherent cache view.
func (h *Heap) Load(a Addr) uint64 {
	h.check(a)
	if h.mode == Tracked {
		h.step()
	} else if h.access > 0 {
		spinIters(h.access)
	}
	h.loads.Add(1)
	return atomic.LoadUint64(&h.cache[a])
}

// Store atomically writes v to the word at a in the coherent cache view.
// The update is volatile until the containing line is flushed.
func (h *Heap) Store(a Addr, v uint64) {
	h.check(a)
	if h.mode == Tracked {
		h.step()
		// Mark dirty before the store: a concurrent Flush between the mark
		// and the store may clear the flag having written back the old
		// value, which loses this store on crash — a legal outcome for an
		// un-flushed store. The converse order could leave an un-persisted
		// store on a clean line, which would be unsound.
		h.dirty[a/WordsPerLine].Store(1)
	}
	if h.mode == Direct && h.access > 0 {
		spinIters(h.access)
	}
	h.stores.Add(1)
	atomic.StoreUint64(&h.cache[a], v)
}

// CompareAndSwap atomically replaces the word at a with new if it equals
// old, reporting whether the swap happened. Like Store, a successful swap
// is volatile until flushed.
func (h *Heap) CompareAndSwap(a Addr, old, new uint64) bool {
	h.check(a)
	if h.mode == Tracked {
		h.step()
		h.dirty[a/WordsPerLine].Store(1)
	}
	if h.mode == Direct && h.access > 0 {
		spinIters(h.access)
	}
	h.cases.Add(1)
	return atomic.CompareAndSwapUint64(&h.cache[a], old, new)
}

// Flush writes the cache line containing a back to the persisted view. The
// simulated write-back is synchronous, which matches the paper's FLUSH: it
// stands for PMDK pmem_persist, i.e. CLWB followed by a store fence. Flush
// copies the line unconditionally — the dirty flag is only a hint for the
// crash adversary — so after Flush returns, the persisted view holds values
// at least as new as the cache view held when Flush was called.
func (h *Heap) Flush(a Addr) {
	h.check(a)
	h.flushes.Add(1)
	switch h.mode {
	case Direct:
		if h.sync != nil {
			if err := h.sync(a); err != nil {
				h.syncMu.Lock()
				if h.syncErr == nil {
					h.syncErr = err
				}
				h.syncMu.Unlock()
			}
		}
		spinWait(h.flushNS)
	case Tracked:
		h.step()
		line := a / WordsPerLine
		base := line * WordsPerLine
		h.dirty[line].Store(0)
		for i := Addr(0); i < WordsPerLine; i++ {
			atomic.StoreUint64(&h.persisted[base+i], atomic.LoadUint64(&h.cache[base+i]))
		}
	}
}

// Fence is a store fence. Because Flush is already synchronous in this
// model, Fence only counts toward statistics; it is provided so algorithm
// code can mirror the paper's instruction sequences literally.
func (h *Heap) Fence() {
	h.fences.Add(1)
	if h.mode == Tracked {
		h.step()
	}
}

// Persist flushes the line containing a and fences, mirroring PMDK
// pmem_persist. This is the FLUSH primitive used throughout the paper's
// pseudocode.
func (h *Heap) Persist(a Addr) {
	h.Flush(a)
	h.Fence()
}

// PersistRange persists every line in [a, a+words).
func (h *Heap) PersistRange(a Addr, words int) {
	if words <= 0 {
		return
	}
	first := a / WordsPerLine
	last := (a + Addr(words) - 1) / WordsPerLine
	for l := first; l <= last; l++ {
		h.Flush(l * WordsPerLine)
	}
	h.Fence()
}

// Snapshot returns the operation counters accumulated so far.
func (h *Heap) Snapshot() Stats {
	return Stats{
		Loads:   h.loads.Load(),
		Stores:  h.stores.Load(),
		CASes:   h.cases.Load(),
		Flushes: h.flushes.Load(),
		Fences:  h.fences.Load(),
	}
}

// Steps reports the primitive-step counter (Tracked mode only).
func (h *Heap) Steps() uint64 { return h.steps.Load() }

// spinWait busy-waits for approximately ns nanoseconds, modelling the
// latency of a flush instruction without yielding the simulated CPU.
func spinWait(ns int64) {
	if ns <= 0 {
		return
	}
	start := time.Now()
	for time.Since(start).Nanoseconds() < ns {
	}
}

// spinIters burns roughly n short loop iterations; the mixing keeps the
// compiler from eliding the loop.
func spinIters(n int) {
	acc := uint64(1)
	for i := 0; i < n; i++ {
		acc = acc*2654435761 + uint64(i)
	}
	if acc == 42 && n == -1 {
		panic("unreachable")
	}
}
