package pmem

import (
	"fmt"
	"sync"
)

// Pool is a fixed-size block allocator over a Heap region, in the style of
// the paper's evaluation setup: "each thread pre-allocates a fixed size
// pool of queue nodes at initialization". Blocks are cache-line aligned.
//
// Free lists are volatile (they live in ordinary Go memory): after a
// simulated crash they are gone, exactly as on real hardware, and the
// owning data structure's recovery procedure rebuilds them with Sweep.
//
// A Pool optionally enforces a pin predicate: a freed block for which
// Pinned reports true is parked instead of recycled, and is retried later.
// The DSS queue uses this to guarantee that a node referenced by any
// thread's persistent detectability word X[i] (directly, or as the
// predecessor of the claimed node) is never reused while a crash could
// still make resolve read it — a reuse there would let resolve report a
// wrong argument or response.
type Pool struct {
	h          *Heap
	base       Addr
	blockWords int
	capacity   int
	threads    int
	highWater  int
	pinned     func(Addr) bool

	locals []localFree

	spareMu sync.Mutex
	spare   []Addr
}

type localFree struct {
	free   []Addr
	parked []Addr
	_      [24]byte // keep neighbouring threads' headers off one line
}

// PoolConfig parameterizes NewPool.
type PoolConfig struct {
	// Threads is the number of worker threads (free lists).
	Threads int
	// BlocksPerThread is the number of blocks initially dealt to each
	// thread's free list.
	BlocksPerThread int
	// ExtraBlocks go to the shared spare list, available to any thread.
	ExtraBlocks int
	// BlockWords is the block payload size in words; rounded up to whole
	// cache lines.
	BlockWords int
	// Pinned, if non-nil, vetoes recycling of a freed block while it
	// reports true for the block's address.
	Pinned func(Addr) bool
}

// AttachPool reconstructs a Pool over an existing block region (from a
// previous process's NewPool on a file-backed heap). All free lists start
// empty — the owning structure's recovery Sweep rebuilds them from the
// persistent state.
func AttachPool(h *Heap, base Addr, cfg PoolConfig) (*Pool, error) {
	p, err := poolLayout(h, cfg)
	if err != nil {
		return nil, err
	}
	if base == 0 || int(base)+p.capacity*p.blockWords > h.Words() {
		return nil, fmt.Errorf("pmem: pool region %d out of arena bounds", base)
	}
	p.base = base
	return p, nil
}

// poolLayout validates cfg and builds the Pool shell (no region, no
// blocks dealt).
func poolLayout(h *Heap, cfg PoolConfig) (*Pool, error) {
	if cfg.Threads <= 0 {
		return nil, fmt.Errorf("pmem: pool needs at least one thread, got %d", cfg.Threads)
	}
	if cfg.BlocksPerThread < 0 || cfg.ExtraBlocks < 0 {
		return nil, fmt.Errorf("pmem: negative pool sizing")
	}
	if cfg.BlockWords <= 0 {
		return nil, fmt.Errorf("pmem: non-positive block size %d", cfg.BlockWords)
	}
	blockWords := (cfg.BlockWords + WordsPerLine - 1) / WordsPerLine * WordsPerLine
	capacity := cfg.Threads*cfg.BlocksPerThread + cfg.ExtraBlocks
	if capacity == 0 {
		return nil, fmt.Errorf("pmem: empty pool")
	}
	return &Pool{
		h:          h,
		blockWords: blockWords,
		capacity:   capacity,
		threads:    cfg.Threads,
		highWater:  2*cfg.BlocksPerThread + 8,
		pinned:     cfg.Pinned,
		locals:     make([]localFree, cfg.Threads),
	}, nil
}

// NewPool carves a block region out of h and deals the blocks across
// per-thread free lists.
func NewPool(h *Heap, cfg PoolConfig) (*Pool, error) {
	p, err := poolLayout(h, cfg)
	if err != nil {
		return nil, err
	}
	base, err := h.Alloc(p.capacity * p.blockWords)
	if err != nil {
		return nil, fmt.Errorf("pmem: pool region: %w", err)
	}
	p.base = base
	for i := 0; i < p.capacity; i++ {
		a := p.BlockAt(i)
		if i < cfg.Threads*cfg.BlocksPerThread {
			t := i % cfg.Threads
			p.locals[t].free = append(p.locals[t].free, a)
		} else {
			p.spare = append(p.spare, a)
		}
	}
	return p, nil
}

// Base returns the address of the pool's block region (persisted by
// owning structures so a later process can AttachPool).
func (p *Pool) Base() Addr { return p.base }

// BlockAt returns the address of the i-th block.
func (p *Pool) BlockAt(i int) Addr {
	if i < 0 || i >= p.capacity {
		panic(fmt.Sprintf("pmem: block index %d out of range [0,%d)", i, p.capacity))
	}
	return p.base + Addr(i*p.blockWords)
}

// Capacity reports the total number of blocks.
func (p *Pool) Capacity() int { return p.capacity }

// BlockWords reports the (line-rounded) block size in words.
func (p *Pool) BlockWords() int { return p.blockWords }

// Contains reports whether a is the address of a block in this pool.
func (p *Pool) Contains(a Addr) bool {
	if a < p.base || a >= p.base+Addr(p.capacity*p.blockWords) {
		return false
	}
	return (a-p.base)%Addr(p.blockWords) == 0
}

// Alloc pops a block for thread tid, falling back to the thread's parked
// blocks and then the shared spare list. It reports ok=false when no block
// is available.
func (p *Pool) Alloc(tid int) (Addr, bool) {
	l := &p.locals[tid]
	if n := len(l.free); n > 0 {
		a := l.free[n-1]
		l.free = l.free[:n-1]
		return a, true
	}
	p.unpark(tid)
	if n := len(l.free); n > 0 {
		a := l.free[n-1]
		l.free = l.free[:n-1]
		return a, true
	}
	p.spareMu.Lock()
	grab := len(p.spare)
	if grab > 8 {
		grab = 8
	}
	if grab > 0 {
		l.free = append(l.free, p.spare[len(p.spare)-grab:]...)
		p.spare = p.spare[:len(p.spare)-grab]
	}
	p.spareMu.Unlock()
	if n := len(l.free); n > 0 {
		a := l.free[n-1]
		l.free = l.free[:n-1]
		return a, true
	}
	return 0, false
}

// Free returns block a to thread tid's free list (or parks it while
// pinned). Excess blocks overflow to the shared spare list so unbalanced
// producer/consumer threads do not starve each other.
func (p *Pool) Free(tid int, a Addr) {
	l := &p.locals[tid]
	p.unpark(tid)
	if p.pinned != nil && p.pinned(a) {
		l.parked = append(l.parked, a)
		return
	}
	l.free = append(l.free, a)
	if len(l.free) > p.highWater {
		half := len(l.free) / 2
		p.spareMu.Lock()
		p.spare = append(p.spare, l.free[len(l.free)-half:]...)
		p.spareMu.Unlock()
		l.free = l.free[:len(l.free)-half]
	}
}

// unpark moves any no-longer-pinned parked blocks back to tid's free list.
func (p *Pool) unpark(tid int) {
	l := &p.locals[tid]
	if len(l.parked) == 0 {
		return
	}
	kept := l.parked[:0]
	for _, a := range l.parked {
		if p.pinned != nil && p.pinned(a) {
			kept = append(kept, a)
		} else {
			l.free = append(l.free, a)
		}
	}
	l.parked = kept
}

// FreeCount reports the total number of blocks on free lists (including
// spare, excluding parked). It is not linearizable with concurrent
// Alloc/Free and is intended for tests and post-crash accounting.
func (p *Pool) FreeCount() int {
	n := 0
	for i := range p.locals {
		n += len(p.locals[i].free)
	}
	p.spareMu.Lock()
	n += len(p.spare)
	p.spareMu.Unlock()
	return n
}

// ForEachBlock calls f with every block address, in index order.
func (p *Pool) ForEachBlock(f func(a Addr)) {
	for i := 0; i < p.capacity; i++ {
		f(p.BlockAt(i))
	}
}

// Sweep rebuilds the free lists after a crash: every block for which live
// reports false is dealt round-robin to the thread free lists; live blocks
// stay allocated. Blocks for which the pin predicate holds are parked on
// thread 0. Sweep requires a quiescent heap (it runs during recovery).
func (p *Pool) Sweep(live func(a Addr) bool) {
	for i := range p.locals {
		p.locals[i].free = p.locals[i].free[:0]
		p.locals[i].parked = p.locals[i].parked[:0]
	}
	p.spareMu.Lock()
	p.spare = p.spare[:0]
	p.spareMu.Unlock()
	t := 0
	for i := 0; i < p.capacity; i++ {
		a := p.BlockAt(i)
		if live(a) {
			continue
		}
		if p.pinned != nil && p.pinned(a) {
			p.locals[0].parked = append(p.locals[0].parked, a)
			continue
		}
		p.locals[t].free = append(p.locals[t].free, a)
		t = (t + 1) % p.threads
	}
}
