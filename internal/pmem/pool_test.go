package pmem

import (
	"testing"
	"testing/quick"
)

func newPool(t *testing.T, h *Heap, cfg PoolConfig) *Pool {
	t.Helper()
	p, err := NewPool(h, cfg)
	if err != nil {
		t.Fatalf("NewPool: %v", err)
	}
	return p
}

func TestPoolValidation(t *testing.T) {
	h := newTracked(t, 4096)
	tests := []struct {
		name string
		cfg  PoolConfig
	}{
		{"zero threads", PoolConfig{BlocksPerThread: 1, BlockWords: 8}},
		{"negative blocks", PoolConfig{Threads: 1, BlocksPerThread: -1, BlockWords: 8}},
		{"negative extra", PoolConfig{Threads: 1, BlocksPerThread: 1, ExtraBlocks: -1, BlockWords: 8}},
		{"zero block size", PoolConfig{Threads: 1, BlocksPerThread: 1}},
		{"empty pool", PoolConfig{Threads: 1, BlockWords: 8}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewPool(h, tt.cfg); err == nil {
				t.Fatal("want error")
			}
		})
	}
}

func TestPoolExhaustsArena(t *testing.T) {
	h := newTracked(t, 64)
	if _, err := NewPool(h, PoolConfig{Threads: 1, BlocksPerThread: 1000, BlockWords: 8}); err == nil {
		t.Fatal("oversized pool did not fail")
	}
}

func TestPoolAllocFreeCycle(t *testing.T) {
	h := newTracked(t, 4096)
	p := newPool(t, h, PoolConfig{Threads: 2, BlocksPerThread: 4, BlockWords: 8})
	seen := map[Addr]bool{}
	var got []Addr
	for tid := 0; tid < 2; tid++ {
		for {
			a, ok := p.Alloc(tid)
			if !ok {
				break
			}
			if seen[a] {
				t.Fatalf("block %d handed out twice", a)
			}
			if !p.Contains(a) {
				t.Fatalf("allocated block %d not recognized by Contains", a)
			}
			seen[a] = true
			got = append(got, a)
		}
	}
	if len(got) != 8 {
		t.Fatalf("allocated %d blocks across both threads, want 8", len(got))
	}
	for _, a := range got {
		p.Free(0, a)
	}
	if n := p.FreeCount(); n != 8 {
		t.Fatalf("FreeCount = %d after freeing all, want 8", n)
	}
}

func TestPoolBlocksAreLineAlignedAndDisjoint(t *testing.T) {
	h := newTracked(t, 4096)
	p := newPool(t, h, PoolConfig{Threads: 1, BlocksPerThread: 6, BlockWords: 3})
	if p.BlockWords() != 8 {
		t.Fatalf("BlockWords = %d, want rounded 8", p.BlockWords())
	}
	for i := 0; i < p.Capacity(); i++ {
		a := p.BlockAt(i)
		if a%WordsPerLine != 0 {
			t.Fatalf("block %d at %d not line aligned", i, a)
		}
		if i > 0 && a != p.BlockAt(i-1)+8 {
			t.Fatalf("blocks %d and %d overlap or gap", i-1, i)
		}
	}
}

func TestPoolContainsRejectsInteriorAndForeign(t *testing.T) {
	h := newTracked(t, 4096)
	p := newPool(t, h, PoolConfig{Threads: 1, BlocksPerThread: 2, BlockWords: 8})
	a := p.BlockAt(0)
	if p.Contains(a + 1) {
		t.Fatal("Contains accepted an interior address")
	}
	if p.Contains(0) {
		t.Fatal("Contains accepted NULL")
	}
	if p.Contains(a + Addr(p.Capacity()*p.BlockWords())) {
		t.Fatal("Contains accepted past-the-end address")
	}
}

func TestPoolExtraBlocksGoToSpare(t *testing.T) {
	h := newTracked(t, 4096)
	p := newPool(t, h, PoolConfig{Threads: 2, BlocksPerThread: 1, ExtraBlocks: 5, BlockWords: 8})
	// Thread 0 can allocate its 1 local block plus spares.
	n := 0
	for {
		if _, ok := p.Alloc(0); !ok {
			break
		}
		n++
	}
	if n != 6 {
		t.Fatalf("thread 0 allocated %d blocks, want 6 (1 local + 5 spare)", n)
	}
}

func TestPoolOverflowToSpareBalancesThreads(t *testing.T) {
	h := newTracked(t, 1<<14)
	p := newPool(t, h, PoolConfig{Threads: 2, BlocksPerThread: 4, BlockWords: 8})
	// Thread 0 drains everything, then frees everything; overflow must make
	// the blocks reachable by thread 1 again.
	var blocks []Addr
	for {
		a, ok := p.Alloc(0)
		if !ok {
			break
		}
		blocks = append(blocks, a)
	}
	for _, a := range blocks {
		p.Free(0, a)
	}
	got := 0
	for {
		if _, ok := p.Alloc(1); !ok {
			break
		}
		got++
	}
	if got < len(blocks)/2 {
		t.Fatalf("thread 1 recovered only %d of %d blocks", got, len(blocks))
	}
}

func TestPoolPinnedBlocksAreParkedUntilUnpinned(t *testing.T) {
	h := newTracked(t, 4096)
	pinned := map[Addr]bool{}
	p := newPool(t, h, PoolConfig{
		Threads: 1, BlocksPerThread: 2, BlockWords: 8,
		Pinned: func(a Addr) bool { return pinned[a] },
	})
	a, _ := p.Alloc(0)
	b, _ := p.Alloc(0)
	pinned[a] = true
	p.Free(0, a)
	p.Free(0, b)
	// Only b is allocatable now.
	x, ok := p.Alloc(0)
	if !ok || x != b {
		t.Fatalf("Alloc = (%d,%v), want b=%d", x, ok, b)
	}
	if _, ok := p.Alloc(0); ok {
		t.Fatal("pinned block was recycled")
	}
	pinned[a] = false
	y, ok := p.Alloc(0)
	if !ok || y != a {
		t.Fatalf("after unpin Alloc = (%d,%v), want a=%d", y, ok, a)
	}
}

func TestPoolSweepRebuildsFreeLists(t *testing.T) {
	h := newTracked(t, 4096)
	p := newPool(t, h, PoolConfig{Threads: 2, BlocksPerThread: 3, BlockWords: 8})
	live := map[Addr]bool{}
	a, _ := p.Alloc(0)
	b, _ := p.Alloc(1)
	live[a] = true
	live[b] = true
	// Simulate crash: free lists forgotten, then swept.
	p.Sweep(func(x Addr) bool { return live[x] })
	if n := p.FreeCount(); n != 4 {
		t.Fatalf("after sweep FreeCount = %d, want 4", n)
	}
	// Live blocks must not be handed out again.
	for {
		x, ok := p.Alloc(0)
		if !ok {
			break
		}
		if live[x] {
			t.Fatalf("sweep recycled live block %d", x)
		}
	}
}

func TestPoolSweepParksPinned(t *testing.T) {
	h := newTracked(t, 4096)
	pinned := map[Addr]bool{}
	p := newPool(t, h, PoolConfig{
		Threads: 1, BlocksPerThread: 3, BlockWords: 8,
		Pinned: func(a Addr) bool { return pinned[a] },
	})
	target := p.BlockAt(1)
	pinned[target] = true
	p.Sweep(func(Addr) bool { return false })
	if n := p.FreeCount(); n != 2 {
		t.Fatalf("FreeCount = %d, want 2 (one parked)", n)
	}
	pinned[target] = false
	n := 0
	for {
		if _, ok := p.Alloc(0); !ok {
			break
		}
		n++
	}
	if n != 3 {
		t.Fatalf("allocated %d blocks after unpin, want 3", n)
	}
}

func TestPoolForEachBlockVisitsAllOnce(t *testing.T) {
	h := newTracked(t, 4096)
	p := newPool(t, h, PoolConfig{Threads: 2, BlocksPerThread: 3, ExtraBlocks: 1, BlockWords: 8})
	seen := map[Addr]int{}
	p.ForEachBlock(func(a Addr) { seen[a]++ })
	if len(seen) != p.Capacity() {
		t.Fatalf("visited %d blocks, want %d", len(seen), p.Capacity())
	}
	for a, n := range seen {
		if n != 1 {
			t.Fatalf("block %d visited %d times", a, n)
		}
	}
}

func TestPoolBlockAtOutOfRangePanics(t *testing.T) {
	h := newTracked(t, 4096)
	p := newPool(t, h, PoolConfig{Threads: 1, BlocksPerThread: 2, BlockWords: 8})
	defer func() {
		if recover() == nil {
			t.Fatal("BlockAt(99) did not panic")
		}
	}()
	p.BlockAt(99)
}

// TestQuickPoolNeverDoubleAllocates: any interleaved sequence of allocs and
// frees never hands the same block to two owners.
func TestQuickPoolNeverDoubleAllocates(t *testing.T) {
	f := func(ops []bool) bool {
		h, err := New(Config{Words: 1 << 13, Mode: Tracked})
		if err != nil {
			t.Fatal(err)
		}
		p, err := NewPool(h, PoolConfig{Threads: 2, BlocksPerThread: 8, BlockWords: 8})
		if err != nil {
			t.Fatal(err)
		}
		held := map[Addr]bool{}
		var order []Addr
		tid := 0
		for _, alloc := range ops {
			tid = 1 - tid
			if alloc {
				a, ok := p.Alloc(tid)
				if !ok {
					continue
				}
				if held[a] {
					return false // double allocation
				}
				held[a] = true
				order = append(order, a)
			} else if len(order) > 0 {
				a := order[len(order)-1]
				order = order[:len(order)-1]
				delete(held, a)
				p.Free(tid, a)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
