package pmem

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

func newTracked(t *testing.T, words int) *Heap {
	t.Helper()
	h, err := New(Config{Words: words, Mode: Tracked})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return h
}

func newDirect(t *testing.T, words int) *Heap {
	t.Helper()
	h, err := New(Config{Words: words, Mode: Direct})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return h
}

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"direct", Config{Words: 100, Mode: Direct}, true},
		{"tracked", Config{Words: 100, Mode: Tracked}, true},
		{"zero mode", Config{Words: 100}, false},
		{"bad mode", Config{Words: 100, Mode: Mode(9)}, false},
		{"zero words", Config{Mode: Direct}, false},
		{"negative words", Config{Words: -4, Mode: Direct}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := New(tt.cfg)
			if (err == nil) != tt.ok {
				t.Fatalf("New(%+v) err = %v, want ok=%v", tt.cfg, err, tt.ok)
			}
		})
	}
}

func TestModeString(t *testing.T) {
	if Direct.String() != "Direct" || Tracked.String() != "Tracked" {
		t.Fatalf("unexpected mode names %q %q", Direct, Tracked)
	}
	if Mode(7).String() != "Mode(7)" {
		t.Fatalf("unexpected name for invalid mode: %q", Mode(7))
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	for _, mode := range []Mode{Direct, Tracked} {
		t.Run(mode.String(), func(t *testing.T) {
			h, err := New(Config{Words: 256, Mode: mode})
			if err != nil {
				t.Fatal(err)
			}
			a := h.MustAlloc(8)
			h.Store(a, 42)
			h.Store(a+1, 43)
			if got := h.Load(a); got != 42 {
				t.Errorf("Load(a) = %d, want 42", got)
			}
			if got := h.Load(a + 1); got != 43 {
				t.Errorf("Load(a+1) = %d, want 43", got)
			}
		})
	}
}

func TestCompareAndSwap(t *testing.T) {
	h := newTracked(t, 256)
	a := h.MustAlloc(8)
	h.Store(a, 10)
	if h.CompareAndSwap(a, 11, 20) {
		t.Fatal("CAS with wrong expected value succeeded")
	}
	if !h.CompareAndSwap(a, 10, 20) {
		t.Fatal("CAS with right expected value failed")
	}
	if got := h.Load(a); got != 20 {
		t.Fatalf("after CAS, Load = %d, want 20", got)
	}
}

func TestAllocLineAlignedAndZeroed(t *testing.T) {
	h := newTracked(t, 1024)
	a, err := h.Alloc(3) // rounds to 8
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.Alloc(9) // rounds to 16
	if err != nil {
		t.Fatal(err)
	}
	if a%WordsPerLine != 0 || b%WordsPerLine != 0 {
		t.Fatalf("allocations not line aligned: %d %d", a, b)
	}
	if b != a+8 {
		t.Fatalf("second allocation at %d, want %d", b, a+8)
	}
	for i := Addr(0); i < 16; i++ {
		if v := h.Load(b + i); v != 0 {
			t.Fatalf("fresh allocation word %d = %d, want 0", i, v)
		}
	}
}

func TestAllocExhaustion(t *testing.T) {
	h := newTracked(t, 8*WordsPerLine)
	if _, err := h.Alloc(1 << 20); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("huge Alloc err = %v, want ErrOutOfMemory", err)
	}
	// Drain the arena line by line, then confirm exhaustion.
	for {
		_, err := h.Alloc(WordsPerLine)
		if err != nil {
			if !errors.Is(err, ErrOutOfMemory) {
				t.Fatalf("Alloc err = %v, want ErrOutOfMemory", err)
			}
			break
		}
	}
}

func TestAllocRejectsNonPositive(t *testing.T) {
	h := newTracked(t, 256)
	if _, err := h.Alloc(0); err == nil {
		t.Fatal("Alloc(0) succeeded")
	}
	if _, err := h.Alloc(-1); err == nil {
		t.Fatal("Alloc(-1) succeeded")
	}
}

func TestAddrZeroIsNeverAllocated(t *testing.T) {
	h := newTracked(t, 4096)
	for i := 0; i < 16; i++ {
		a, err := h.Alloc(8)
		if err != nil {
			t.Fatal(err)
		}
		if a == 0 {
			t.Fatal("Alloc returned the NULL address")
		}
		if a < reservedWords {
			t.Fatalf("Alloc returned reserved address %d", a)
		}
	}
}

func TestRootsPersistAcrossCrash(t *testing.T) {
	h := newTracked(t, 512)
	a := h.MustAlloc(8)
	h.SetRoot(0, a)
	h.SetRoot(NumRoots-1, a+8)
	h.Crash(DropAll{})
	if got := h.Root(0); got != a {
		t.Fatalf("Root(0) = %d after crash, want %d", got, a)
	}
	if got := h.Root(NumRoots - 1); got != a+8 {
		t.Fatalf("Root(last) = %d after crash, want %d", got, a+8)
	}
}

func TestRootIndexOutOfRangePanics(t *testing.T) {
	h := newTracked(t, 256)
	for _, i := range []int{-1, NumRoots} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Root(%d) did not panic", i)
				}
			}()
			h.Root(i)
		}()
	}
}

func TestOutOfRangeAddressPanics(t *testing.T) {
	h := newTracked(t, 256)
	defer func() {
		if recover() == nil {
			t.Fatal("Load of out-of-range address did not panic")
		}
	}()
	h.Load(Addr(1 << 40))
}

func TestUnflushedStoreLostOnCrash(t *testing.T) {
	h := newTracked(t, 512)
	a := h.MustAlloc(8)
	h.Store(a, 7)
	h.Persist(a)
	h.Store(a, 8) // not flushed
	h.Crash(DropAll{})
	if got := h.Load(a); got != 7 {
		t.Fatalf("after crash, Load = %d, want persisted 7", got)
	}
}

func TestUnflushedStoreMaySurviveEviction(t *testing.T) {
	h := newTracked(t, 512)
	a := h.MustAlloc(8)
	h.Store(a, 7)
	h.Persist(a)
	h.Store(a, 8) // not flushed, but KeepAll evicts it
	h.Crash(KeepAll{})
	if got := h.Load(a); got != 8 {
		t.Fatalf("after crash with KeepAll, Load = %d, want 8", got)
	}
}

func TestFlushIsLineGranular(t *testing.T) {
	h := newTracked(t, 512)
	a := h.MustAlloc(16) // two lines
	h.Store(a, 1)
	h.Store(a+1, 2)
	h.Store(a+8, 3) // second line
	h.Persist(a)    // flushes first line only
	h.Crash(DropAll{})
	if got := h.Load(a); got != 1 {
		t.Errorf("word 0 = %d, want 1 (same line as flushed word)", got)
	}
	if got := h.Load(a + 1); got != 2 {
		t.Errorf("word 1 = %d, want 2 (same line as flushed word)", got)
	}
	if got := h.Load(a + 8); got != 0 {
		t.Errorf("word 8 = %d, want 0 (unflushed line dropped)", got)
	}
}

func TestPersistRangeCoversAllLines(t *testing.T) {
	h := newTracked(t, 512)
	a := h.MustAlloc(24)
	for i := Addr(0); i < 24; i++ {
		h.Store(a+i, uint64(i)+100)
	}
	h.PersistRange(a, 24)
	h.Crash(DropAll{})
	for i := Addr(0); i < 24; i++ {
		if got := h.Load(a + i); got != uint64(i)+100 {
			t.Fatalf("word %d = %d, want %d", i, got, uint64(i)+100)
		}
	}
}

func TestPersistRangeNoopOnEmpty(t *testing.T) {
	h := newTracked(t, 512)
	before := h.Snapshot().Flushes
	h.PersistRange(64, 0)
	if got := h.Snapshot().Flushes; got != before {
		t.Fatalf("PersistRange(_, 0) issued %d flushes", got-before)
	}
}

func TestCrashResetsDirtyTracking(t *testing.T) {
	h := newTracked(t, 512)
	a := h.MustAlloc(8)
	h.Store(a, 1)
	if h.DirtyLines() == 0 {
		t.Fatal("store did not dirty a line")
	}
	h.Crash(DropAll{})
	if n := h.DirtyLines(); n != 0 {
		t.Fatalf("after crash, %d dirty lines, want 0", n)
	}
}

func TestArmCrashFiresAtExactStep(t *testing.T) {
	h := newTracked(t, 512)
	a := h.MustAlloc(8)
	h.ArmCrash(3)
	steps := 0
	crashed := RunToCrash(func() {
		for i := 0; i < 10; i++ {
			h.Store(a, uint64(i))
			steps++
		}
	})
	if !crashed {
		t.Fatal("armed crash never fired")
	}
	if steps != 2 { // third store panics before incrementing
		t.Fatalf("crash fired after %d completed stores, want 2", steps)
	}
	if !h.Crashed() {
		t.Fatal("heap not in crashed state")
	}
	// Every further access must also crash until recovery.
	if !RunToCrash(func() { h.Load(a) }) {
		t.Fatal("post-crash access did not raise the sentinel")
	}
	h.Crash(DropAll{})
	h.Load(a) // must not panic after reboot
}

func TestArmCrashZeroDisarms(t *testing.T) {
	h := newTracked(t, 512)
	a := h.MustAlloc(8)
	h.ArmCrash(5)
	h.ArmCrash(0)
	if RunToCrash(func() {
		for i := 0; i < 100; i++ {
			h.Store(a, 1)
		}
	}) {
		t.Fatal("disarmed crash fired")
	}
}

func TestCrashNow(t *testing.T) {
	h := newTracked(t, 512)
	a := h.MustAlloc(8)
	h.CrashNow()
	if !RunToCrash(func() { h.Store(a, 1) }) {
		t.Fatal("CrashNow did not poison the heap")
	}
}

func TestRunToCrashPropagatesOtherPanics(t *testing.T) {
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	RunToCrash(func() { panic("boom") })
}

func TestCrashErrorMessage(t *testing.T) {
	e := &CrashError{Step: 9}
	if e.Error() == "" {
		t.Fatal("empty error message")
	}
}

func TestDirectModeRejectsCrashAPIs(t *testing.T) {
	h := newDirect(t, 256)
	for name, f := range map[string]func(){
		"ArmCrash":      func() { h.ArmCrash(1) },
		"Crash":         func() { h.Crash(DropAll{}) },
		"CrashNow":      func() { h.CrashNow() },
		"PersistedLoad": func() { h.PersistedLoad(8) },
		"DirtyLines":    func() { h.DirtyLines() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic in Direct mode", name)
				}
			}()
			f()
		}()
	}
}

func TestStatsCountOperations(t *testing.T) {
	h := newTracked(t, 512)
	a := h.MustAlloc(8)
	h.Store(a, 1)
	h.Load(a)
	h.CompareAndSwap(a, 1, 2)
	h.Persist(a)
	s := h.Snapshot()
	if s.Stores < 1 || s.Loads < 1 || s.CASes != 1 || s.Flushes != 1 || s.Fences != 1 {
		t.Fatalf("unexpected stats %+v", s)
	}
}

func TestStepsAdvanceOnlyInTrackedMode(t *testing.T) {
	d := newDirect(t, 256)
	a := d.MustAlloc(8)
	d.Store(a, 1)
	d.Load(a)
	if d.Steps() != 0 {
		t.Fatalf("Direct mode counted %d steps", d.Steps())
	}
	tr := newTracked(t, 256)
	b := tr.MustAlloc(8)
	tr.Store(b, 1)
	tr.Load(b)
	if tr.Steps() != 2 {
		t.Fatalf("Tracked mode counted %d steps, want 2", tr.Steps())
	}
}

func TestPersistedLoadSeesOnlyFlushedState(t *testing.T) {
	h := newTracked(t, 512)
	a := h.MustAlloc(8)
	h.Store(a, 5)
	if got := h.PersistedLoad(a); got != 0 {
		t.Fatalf("PersistedLoad before flush = %d, want 0", got)
	}
	h.Persist(a)
	if got := h.PersistedLoad(a); got != 5 {
		t.Fatalf("PersistedLoad after flush = %d, want 5", got)
	}
}

func TestRandomFatesDeterministic(t *testing.T) {
	a1 := NewRandomFates(42)
	a2 := NewRandomFates(42)
	for i := 0; i < 100; i++ {
		if a1.Fate(i) != a2.Fate(i) {
			t.Fatal("same seed produced different fates")
		}
	}
}

func TestAdversariesSuite(t *testing.T) {
	suite := Adversaries(1)
	if len(suite) < 3 {
		t.Fatalf("suite has %d adversaries, want at least 3", len(suite))
	}
}

func TestConcurrentAccessSmoke(t *testing.T) {
	h := newTracked(t, 4096)
	a := h.MustAlloc(64)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			slot := a + Addr(w*8)
			for i := 0; i < 500; i++ {
				h.Store(slot, uint64(i))
				h.Persist(slot)
				if got := h.Load(slot); got != uint64(i) {
					t.Errorf("worker %d: read %d, want %d", w, got, i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	h.Crash(DropAll{})
	for w := 0; w < 4; w++ {
		if got := h.Load(a + Addr(w*8)); got != 499 {
			t.Fatalf("worker %d slot = %d after crash, want 499", w, got)
		}
	}
}

func TestConcurrentCrashUnwindsAllWorkers(t *testing.T) {
	h := newTracked(t, 4096)
	a := h.MustAlloc(64)
	h.ArmCrash(200)
	var wg sync.WaitGroup
	crashes := make([]bool, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			crashes[w] = RunToCrash(func() {
				for {
					h.Store(a+Addr(w*8), 1)
				}
			})
		}(w)
	}
	wg.Wait()
	for w, c := range crashes {
		if !c {
			t.Fatalf("worker %d did not observe the crash", w)
		}
	}
}

// TestQuickFlushedPrefixDurability is a property test: for any sequence of
// (store, maybe-flush) actions on a small region followed by a DropAll
// crash, each word's surviving value is exactly the value it held at its
// last flush (or zero if its line was never flushed afterward).
func TestQuickFlushedPrefixDurability(t *testing.T) {
	type action struct {
		Word  uint8
		Val   uint64
		Flush bool
	}
	f := func(actions []action) bool {
		h, err := New(Config{Words: 1024, Mode: Tracked})
		if err != nil {
			t.Fatal(err)
		}
		base := h.MustAlloc(32) // 4 lines
		expected := make([]uint64, 32)
		shadow := make([]uint64, 32)
		for _, ac := range actions {
			w := Addr(ac.Word % 32)
			h.Store(base+w, ac.Val)
			shadow[w] = ac.Val
			if ac.Flush {
				h.Persist(base + w)
				line := int(w) / WordsPerLine * WordsPerLine
				copy(expected[line:line+WordsPerLine], shadow[line:line+WordsPerLine])
			}
		}
		h.Crash(DropAll{})
		for i := Addr(0); i < 32; i++ {
			if h.Load(base+i) != expected[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickKeepAllMatchesCacheView: under the KeepAll adversary the
// post-crash state equals the pre-crash coherent view.
func TestQuickKeepAllMatchesCacheView(t *testing.T) {
	f := func(vals []uint64) bool {
		h, err := New(Config{Words: 1024, Mode: Tracked})
		if err != nil {
			t.Fatal(err)
		}
		base := h.MustAlloc(32)
		for i, v := range vals {
			h.Store(base+Addr(i%32), v)
		}
		want := make([]uint64, 32)
		for i := range want {
			want[i] = h.Load(base + Addr(i))
		}
		h.Crash(KeepAll{})
		for i := range want {
			if h.Load(base+Addr(i)) != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
