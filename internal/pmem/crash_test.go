package pmem

import "testing"

// TestBiasedFatesExtremes pins the degenerate settings: p=0 must behave
// exactly like DropAll and p=1 exactly like KeepAll, for any seed.
func TestBiasedFatesExtremes(t *testing.T) {
	drop := NewBiasedFates(1, 0)
	keep := NewBiasedFates(1, 1)
	for line := 0; line < 1000; line++ {
		if got := drop.Fate(line); got != Lost {
			t.Fatalf("p=0: line %d got %v, want Lost", line, got)
		}
		if got := keep.Fate(line); got != Survives {
			t.Fatalf("p=1: line %d got %v, want Survives", line, got)
		}
	}
}

// TestBiasedFatesDeterministic pins reproducibility: two adversaries with
// the same seed and bias draw the same fate sequence, and the empirical
// survival rate tracks p.
func TestBiasedFatesDeterministic(t *testing.T) {
	const n = 10000
	a := NewBiasedFates(42, 0.25)
	b := NewBiasedFates(42, 0.25)
	survived := 0
	for i := 0; i < n; i++ {
		fa, fb := a.Fate(i), b.Fate(i)
		if fa != fb {
			t.Fatalf("draw %d: same seed diverged (%v vs %v)", i, fa, fb)
		}
		if fa == Survives {
			survived++
		}
	}
	rate := float64(survived) / n
	if rate < 0.20 || rate > 0.30 {
		t.Fatalf("p=0.25: empirical survival rate %.3f outside [0.20, 0.30]", rate)
	}
}

// TestBiasedFatesCrashRespectsFlushes checks the adversary plugs into
// Heap.Crash correctly: flushed lines always survive regardless of bias,
// and under p=0 every dirty (un-flushed) line reverts.
func TestBiasedFatesCrashRespectsFlushes(t *testing.T) {
	h, err := New(Config{Words: 4 * WordsPerLine, Mode: Tracked})
	if err != nil {
		t.Fatal(err)
	}
	flushed := Addr(0)
	dirty := Addr(2 * WordsPerLine)
	h.Store(flushed, 7)
	h.Flush(flushed)
	h.Fence()
	h.Store(dirty, 9)

	h.CrashNow()
	h.Crash(NewBiasedFates(3, 0))

	if got := h.Load(flushed); got != 7 {
		t.Fatalf("flushed word lost under p=0: got %d, want 7", got)
	}
	if got := h.Load(dirty); got != 0 {
		t.Fatalf("dirty word survived under p=0: got %d, want 0", got)
	}
}
