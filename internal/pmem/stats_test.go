package pmem

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// TestStatsShardedAggregationExact drives a mixed workload from 20
// goroutines, each with a known per-op budget, and asserts the lazily
// aggregated sharded counters match the issued counts exactly.
func TestStatsShardedAggregationExact(t *testing.T) {
	h, err := New(Config{Words: 1 << 12, Mode: Direct})
	if err != nil {
		t.Fatal(err)
	}
	const (
		goroutines = 20
		rounds     = 500
	)
	// Per goroutine and round: 2 loads, 1 store, 1 CAS, 1 Persist
	// (1 flush + 1 fence), and every 10th round a PersistPair
	// (2 flushes + 1 fence).
	addrs := make([]Addr, goroutines)
	for i := range addrs {
		a, err := h.Alloc(2 * WordsPerLine)
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = a
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			a, b := addrs[g], addrs[g]+WordsPerLine
			for r := 0; r < rounds; r++ {
				h.Store(a, uint64(r))
				_ = h.Load(a)
				_ = h.Load(b)
				h.CompareAndSwap(a, uint64(r), uint64(r+1))
				h.Persist(a)
				if r%10 == 0 {
					h.PersistPair(a, b)
				}
			}
		}(g)
	}
	wg.Wait()

	got := h.Stats()
	pairs := uint64(goroutines * (rounds/10 + rounds%10/10)) // rounds 0,10,...,490
	want := Stats{
		Loads:   2 * goroutines * rounds,
		Stores:  goroutines * rounds,
		CASes:   goroutines * rounds,
		Flushes: goroutines*rounds + 2*pairs,
		Fences:  goroutines*rounds + pairs,
	}
	if got != want {
		t.Fatalf("aggregated stats = %+v, want %+v", got, want)
	}
	if snap := h.Snapshot(); snap != got {
		t.Fatalf("Snapshot() = %+v diverges from Stats() = %+v", snap, got)
	}
}

// TestDirectHotPathZeroAllocs pins the Direct-mode hot path at zero
// allocations per operation: the simulator must never perturb a benchmark
// with GC pressure of its own.
func TestDirectHotPathZeroAllocs(t *testing.T) {
	h, err := New(Config{Words: 1 << 10, Mode: Direct, FlushLatency: time.Nanosecond, AccessDelay: 1})
	if err != nil {
		t.Fatal(err)
	}
	a := h.MustAlloc(2 * WordsPerLine)
	b := a + WordsPerLine
	cases := []struct {
		name string
		op   func()
	}{
		{"Load", func() { _ = h.Load(a) }},
		{"LoadVolatile", func() { _ = h.LoadVolatile(a) }},
		{"Store", func() { h.Store(a, 7) }},
		{"CAS", func() { h.CompareAndSwap(a, 7, 8); h.Store(a, 7) }},
		{"Persist", func() { h.Persist(a) }},
		{"PersistPair", func() { h.PersistPair(a, b) }},
		{"PersistRange", func() { h.PersistRange(a, 2*WordsPerLine) }},
		{"Stats", func() { _ = h.Stats() }},
	}
	for _, tc := range cases {
		if n := testing.AllocsPerRun(100, tc.op); n != 0 {
			t.Errorf("%s: %v allocs/op, want 0", tc.name, n)
		}
	}
}

// TestSyncErrLatchesFirstError verifies that the first durable write-back
// failure is latched and surfaced by SyncErr, and later failures do not
// overwrite it.
func TestSyncErrLatchesFirstError(t *testing.T) {
	h, err := New(Config{Words: 1 << 8, Mode: Direct})
	if err != nil {
		t.Fatal(err)
	}
	if h.SyncErr() != nil {
		t.Fatalf("fresh heap reports sync error %v", h.SyncErr())
	}
	first := errors.New("first msync failure")
	second := errors.New("second msync failure")
	a := h.MustAlloc(WordsPerLine)
	calls := 0
	h.sync = func(Addr) error {
		calls++
		switch calls {
		case 1:
			return nil
		case 2:
			return first
		default:
			return second
		}
	}
	h.Persist(a) // clean
	if h.SyncErr() != nil {
		t.Fatalf("clean flush latched %v", h.SyncErr())
	}
	h.Persist(a) // first failure
	h.Persist(a) // second failure must not displace the first
	if got := h.SyncErr(); !errors.Is(got, first) {
		t.Fatalf("SyncErr() = %v, want the first failure %v", got, first)
	}
}

// TestLoadVolatileUnchargedButCrashes verifies LoadVolatile reads the
// coherent view without consuming stats or Tracked-mode steps, yet still
// observes the crash sentinel.
func TestLoadVolatileUnchargedButCrashes(t *testing.T) {
	h, err := New(Config{Words: 1 << 8, Mode: Tracked})
	if err != nil {
		t.Fatal(err)
	}
	a := h.MustAlloc(WordsPerLine)
	h.Store(a, 99)
	before, steps := h.Stats(), h.Steps()
	if got := h.LoadVolatile(a); got != 99 {
		t.Fatalf("LoadVolatile = %d, want 99", got)
	}
	if after := h.Stats(); after != before {
		t.Fatalf("LoadVolatile changed stats: %+v -> %+v", before, after)
	}
	if h.Steps() != steps {
		t.Fatalf("LoadVolatile consumed a step")
	}
	h.CrashNow()
	crashed := RunToCrash(func() { h.LoadVolatile(a) })
	if !crashed {
		t.Fatal("LoadVolatile did not observe the crash sentinel")
	}
}

// TestPersistPairCounts verifies the coalesced two-line persist issues two
// flushes under a single fence.
func TestPersistPairCounts(t *testing.T) {
	h, err := New(Config{Words: 1 << 8, Mode: Direct})
	if err != nil {
		t.Fatal(err)
	}
	a := h.MustAlloc(2 * WordsPerLine)
	before := h.Stats()
	h.PersistPair(a, a+WordsPerLine)
	after := h.Stats()
	if d := after.Flushes - before.Flushes; d != 2 {
		t.Fatalf("PersistPair issued %d flushes, want 2", d)
	}
	if d := after.Fences - before.Fences; d != 1 {
		t.Fatalf("PersistPair issued %d fences, want 1", d)
	}
}

// TestPersistPairTrackedDurability verifies PersistPair actually persists
// both lines in Tracked mode.
func TestPersistPairTrackedDurability(t *testing.T) {
	h, err := New(Config{Words: 1 << 8, Mode: Tracked})
	if err != nil {
		t.Fatal(err)
	}
	a := h.MustAlloc(2 * WordsPerLine)
	b := a + WordsPerLine
	h.Store(a, 11)
	h.Store(b, 22)
	h.PersistPair(a, b)
	h.CrashNow()
	h.Crash(DropAll{})
	if got := h.Load(a); got != 11 {
		t.Fatalf("line a = %d after crash, want 11", got)
	}
	if got := h.Load(b); got != 22 {
		t.Fatalf("line b = %d after crash, want 22", got)
	}
}

// TestRandomFatesConcurrent exercises one RandomFates adversary from many
// goroutines; under -race this pins the satellite fix for the rand.Rand
// data race.
func TestRandomFatesConcurrent(t *testing.T) {
	adv := NewRandomFates(42)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if f := adv.Fate(i); f != Lost && f != Survives {
					t.Errorf("invalid fate %v", f)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestStatsSub pins the delta helper the harness reports ride on: exact
// per-field subtraction, saturating rather than underflowing.
func TestStatsSub(t *testing.T) {
	h, err := New(Config{Words: 1 << 8, Mode: Direct})
	if err != nil {
		t.Fatal(err)
	}
	a := h.MustAlloc(WordsPerLine)
	before := h.Stats()
	h.Store(a, 1)
	h.Load(a)
	h.Load(a)
	h.Persist(a)
	d := h.Stats().Sub(before)
	if d.Stores != 1 || d.Loads != 2 || d.Flushes != 1 || d.Fences != 1 || d.CASes != 0 {
		t.Fatalf("delta = %+v", d)
	}
	// Saturation: subtracting a later snapshot from an earlier one yields
	// zeros, never wrapped values.
	if z := before.Sub(h.Stats()); z != (Stats{}) {
		t.Fatalf("reverse delta = %+v, want zeros", z)
	}
}
