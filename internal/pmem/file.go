//go:build linux

package pmem

import (
	"fmt"
	"os"
	"syscall"
	"unsafe"
)

// OpenFile opens (creating if necessary) a file-backed heap: the arena is
// a memory-mapped file and Persist issues a synchronous msync of the
// affected page, so the heap's contents survive real process restarts and
// kills — the closest a portable user-space program gets to persistent
// main memory. The semantics mirror real hardware the same way the
// simulator does: unsynced writes live in the page cache (the "volatile
// cache") and may or may not reach the file if the machine dies, while
// Persist-ed lines are durable.
//
// File-backed heaps run in Direct mode (crash injection needs the Tracked
// simulator); reopening an existing file yields the persisted state, with
// the root directory and allocation cursor intact. Close unmaps the file;
// using the heap afterwards is invalid.
//
// The allocation cursor is kept in the reserved word just below the root
// directory so that reopening resumes allocation where the previous
// process stopped.
func OpenFile(path string, words int) (h *Heap, close func() error, err error) {
	if words <= 0 {
		return nil, nil, fmt.Errorf("pmem: non-positive arena size %d", words)
	}
	words = (words + WordsPerLine - 1) / WordsPerLine * WordsPerLine
	if words < 4*WordsPerLine {
		words = 4 * WordsPerLine
	}
	size := int64(words * 8)

	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("pmem: open %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("pmem: stat: %w", err)
	}
	fresh := st.Size() == 0
	if st.Size() < size {
		if err := f.Truncate(size); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("pmem: truncate: %w", err)
		}
	} else if st.Size() > size {
		// Adopt the larger existing arena.
		size = st.Size()
		words = int(size / 8)
	}
	raw, err := syscall.Mmap(int(f.Fd()), 0, int(size),
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("pmem: mmap: %w", err)
	}
	arena := unsafe.Slice((*uint64)(unsafe.Pointer(&raw[0])), words)

	h = &Heap{
		mode:  Direct,
		cache: arena,
		sync: func(a Addr) error {
			// msync must start on a page boundary; sync the page(s)
			// containing the line.
			const page = 4096
			byteOff := uintptr(a) * 8
			start := byteOff &^ (page - 1)
			length := uintptr(LineBytes) + (byteOff - start)
			addr := uintptr(unsafe.Pointer(&raw[0])) + start
			_, _, errno := syscall.Syscall(syscall.SYS_MSYNC, addr, length, syscall.MS_SYNC)
			if errno != 0 {
				return fmt.Errorf("pmem: msync: %v", errno)
			}
			return nil
		},
	}
	if fresh {
		h.allocNext.Store(reservedWords)
		h.persistCursor()
	} else {
		cur := arena[allocCursorWord]
		if cur < reservedWords || cur > uint64(words) {
			cur = reservedWords
		}
		h.allocNext.Store(cur)
	}

	closeFn := func() error {
		if err := syscall.Munmap(raw); err != nil {
			f.Close()
			return fmt.Errorf("pmem: munmap: %w", err)
		}
		return f.Close()
	}
	return h, closeFn, nil
}
