//go:build linux

package pmem

import (
	"fmt"
	"os"
	"sync/atomic"
	"syscall"
	"unsafe"
)

// The file-backed heap's on-disk header lives in the NULL-guard line
// (line 0, never handed out by Alloc): a magic, a format version, the
// arena size, and a dirty-shutdown marker, with the allocation cursor in
// the line's last word as before. The header is what makes reopening a
// heap file after a kill -9 safe: a foreign or truncated file is
// rejected instead of being adopted as a heap, and the dirty marker —
// set on open, cleared only by a clean close — tells the next owner that
// the previous one died mid-flight, so recovery (Attach + Recover) is
// mandatory rather than optional.
const (
	// fileMagic spells "DSSPMEM1".
	fileMagic   = 0x4453_5350_4d45_4d31
	fileVersion = 1

	fileMagicWord   = 0
	fileVersionWord = 1
	fileWordsWord   = 2
	fileDirtyWord   = 3
)

// FileInfo reports what OpenFileInfo found.
type FileInfo struct {
	// Fresh is true when this open created (or first formatted) the heap:
	// there is no prior state, so the caller builds objects with New
	// rather than Attach.
	Fresh bool
	// Dirty is true when the previous owner never cleanly closed the
	// heap — it was killed, or the machine died. Attach callers must run
	// the object's recovery procedure before serving; a false Dirty after
	// a clean shutdown proves the close path ran.
	Dirty bool
	// Words is the adopted arena size.
	Words int
}

// OpenFile opens (creating if necessary) a file-backed heap; see
// OpenFileInfo, which it wraps discarding the FileInfo.
func OpenFile(path string, words int) (h *Heap, close func() error, err error) {
	h, _, close, err = OpenFileInfo(path, words)
	return h, close, err
}

// OpenFileInfo opens (creating if necessary) a file-backed heap: the
// arena is a memory-mapped file and Persist issues a synchronous msync
// of the affected page, so the heap's contents survive real process
// restarts and kills — the closest a portable user-space program gets to
// persistent main memory. The semantics mirror real hardware the same
// way the simulator does: unsynced writes live in the page cache (the
// "volatile cache") and may or may not reach the file if the machine
// dies, while Persist-ed lines are durable.
//
// Single-writer exclusion: the file is flock'd exclusively for the life
// of the handle, so two live processes can never mutate one heap — the
// second open fails with a clear error. The lock dies with the process
// (kernel-released on the last close of the fd), so a kill -9 never
// leaves a stale lock behind.
//
// File-backed heaps run in Direct mode (crash injection needs the
// Tracked simulator); reopening an existing file validates the header
// and yields the persisted state, with the root directory and allocation
// cursor intact. Close durably syncs the arena, clears the dirty marker,
// unmaps, and releases the lock; using the heap afterwards is invalid.
func OpenFileInfo(path string, words int) (h *Heap, info FileInfo, close func() error, err error) {
	if words <= 0 {
		return nil, FileInfo{}, nil, fmt.Errorf("pmem: non-positive arena size %d", words)
	}
	words = (words + WordsPerLine - 1) / WordsPerLine * WordsPerLine
	if words < 4*WordsPerLine {
		words = 4 * WordsPerLine
	}
	size := int64(words * 8)

	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, FileInfo{}, nil, fmt.Errorf("pmem: open %s: %w", path, err)
	}
	fail := func(err error) (*Heap, FileInfo, func() error, error) {
		f.Close()
		return nil, FileInfo{}, nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		return fail(fmt.Errorf("pmem: heap file %s is locked by another live process (single-writer exclusion): %w", path, err))
	}
	st, err := f.Stat()
	if err != nil {
		return fail(fmt.Errorf("pmem: stat: %w", err))
	}
	fresh := st.Size() == 0
	if st.Size() < size {
		if err := f.Truncate(size); err != nil {
			return fail(fmt.Errorf("pmem: truncate: %w", err))
		}
	} else if st.Size() > size {
		// Adopt the larger existing arena.
		size = st.Size()
		words = int(size / 8)
	}
	raw, err := syscall.Mmap(int(f.Fd()), 0, int(size),
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		return fail(fmt.Errorf("pmem: mmap: %w", err))
	}
	arena := unsafe.Slice((*uint64)(unsafe.Pointer(&raw[0])), words)

	if !fresh {
		switch magic := atomic.LoadUint64(&arena[fileMagicWord]); magic {
		case fileMagic:
			if v := arena[fileVersionWord]; v != fileVersion {
				syscall.Munmap(raw)
				return fail(fmt.Errorf("pmem: %s: heap format version %d (want %d)", path, v, fileVersion))
			}
			if hw := arena[fileWordsWord]; hw > uint64(words) {
				syscall.Munmap(raw)
				return fail(fmt.Errorf("pmem: %s: header names a %d-word arena but the file holds %d — truncated externally", path, hw, words))
			}
		case 0:
			// An embryonic file: created (or truncated to size) but killed
			// before the magic — stored last during formatting — landed.
			// Nothing can have been written to it, so format it as fresh.
			fresh = true
		default:
			syscall.Munmap(raw)
			return fail(fmt.Errorf("pmem: %s is not a pmem heap file (magic %#x)", path, magic))
		}
	}
	info = FileInfo{
		Fresh: fresh,
		Dirty: !fresh && atomic.LoadUint64(&arena[fileDirtyWord]) != 0,
		Words: words,
	}

	h = &Heap{
		mode:  Direct,
		cache: arena,
		sync: func(a Addr) error {
			// msync must start on a page boundary; sync the page(s)
			// containing the line.
			const page = 4096
			byteOff := uintptr(a) * 8
			start := byteOff &^ (page - 1)
			length := uintptr(LineBytes) + (byteOff - start)
			addr := uintptr(unsafe.Pointer(&raw[0])) + start
			_, _, errno := syscall.Syscall(syscall.SYS_MSYNC, addr, length, syscall.MS_SYNC)
			if errno != 0 {
				return fmt.Errorf("pmem: msync: %v", errno)
			}
			return nil
		},
	}
	if fresh {
		h.allocNext.Store(reservedWords)
		h.persistCursor()
	} else {
		cur := arena[allocCursorWord]
		if cur < reservedWords || cur > uint64(words) {
			cur = reservedWords
		}
		h.allocNext.Store(cur)
	}
	// Install (or refresh, after adopting a grown arena) the header and
	// raise the dirty marker before any caller mutation. The magic is
	// stored last so a kill during formatting leaves an embryonic file,
	// not a valid-looking header over garbage.
	atomic.StoreUint64(&arena[fileVersionWord], fileVersion)
	atomic.StoreUint64(&arena[fileWordsWord], uint64(words))
	atomic.StoreUint64(&arena[fileDirtyWord], 1)
	atomic.StoreUint64(&arena[fileMagicWord], fileMagic)
	if err := h.sync(0); err != nil {
		syscall.Munmap(raw)
		return fail(err)
	}

	closeFn := func() error {
		// Durably sync the whole arena, then clear the dirty marker and
		// sync it out: after a clean close the next open sees Dirty false.
		addr := uintptr(unsafe.Pointer(&raw[0]))
		if _, _, errno := syscall.Syscall(syscall.SYS_MSYNC, addr, uintptr(len(raw)), syscall.MS_SYNC); errno != 0 {
			f.Close()
			return fmt.Errorf("pmem: msync on close: %v", errno)
		}
		atomic.StoreUint64(&arena[fileDirtyWord], 0)
		if err := h.sync(0); err != nil {
			f.Close()
			return err
		}
		if err := syscall.Munmap(raw); err != nil {
			f.Close()
			return fmt.Errorf("pmem: munmap: %w", err)
		}
		return f.Close() // releases the flock
	}
	return h, info, closeFn, nil
}
