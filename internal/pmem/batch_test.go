package pmem

import (
	"sync"
	"testing"
)

func newTestHeap(t *testing.T, mode Mode) *Heap {
	t.Helper()
	h, err := New(Config{Words: 1 << 12, Mode: mode})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// TestPersistRangeZeroLength asserts the documented early return: a range
// of zero (or negative) words issues no flush and no fence.
func TestPersistRangeZeroLength(t *testing.T) {
	h := newTestHeap(t, Direct)
	a := h.MustAlloc(WordsPerLine)
	before := h.Stats()
	h.PersistRange(a, 0)
	h.PersistRange(a, -3)
	d := h.Stats().Sub(before)
	if d.Flushes != 0 || d.Fences != 0 {
		t.Fatalf("zero-length PersistRange issued %d flushes, %d fences; want 0, 0", d.Flushes, d.Fences)
	}
}

// TestPersistRangeSingleLine covers ranges confined to exactly one cache
// line: line-aligned full-line, one word, and the last word of a line all
// cost exactly one flush and one fence — the same as Persist.
func TestPersistRangeSingleLine(t *testing.T) {
	h := newTestHeap(t, Direct)
	a := h.MustAlloc(2 * WordsPerLine)
	cases := []struct {
		name  string
		start Addr
		words int
	}{
		{"aligned full line", a, WordsPerLine},
		{"aligned single word", a, 1},
		{"last word of line", a + WordsPerLine - 1, 1},
		{"interior span", a + 2, WordsPerLine - 4},
	}
	for _, tc := range cases {
		before := h.Stats()
		h.PersistRange(tc.start, tc.words)
		d := h.Stats().Sub(before)
		if d.Flushes != 1 || d.Fences != 1 {
			t.Errorf("%s: %d flushes, %d fences; want 1, 1", tc.name, d.Flushes, d.Fences)
		}
	}
}

// TestPersistRangeUnaligned covers unaligned starts and ends: the flush
// count is the number of distinct lines the byte range touches, never the
// word count, and exactly one fence drains them all.
func TestPersistRangeUnaligned(t *testing.T) {
	h := newTestHeap(t, Direct)
	a := h.MustAlloc(4 * WordsPerLine)
	cases := []struct {
		name    string
		start   Addr
		words   int
		flushes uint64
	}{
		{"unaligned start spilling one line", a + WordsPerLine - 1, 2, 2},
		{"unaligned start and end, three lines", a + 3, 2*WordsPerLine - 1, 3},
		{"aligned start unaligned end", a, WordsPerLine + 1, 2},
		{"whole allocation", a, 4 * WordsPerLine, 4},
	}
	for _, tc := range cases {
		before := h.Stats()
		h.PersistRange(tc.start, tc.words)
		d := h.Stats().Sub(before)
		if d.Flushes != tc.flushes || d.Fences != 1 {
			t.Errorf("%s: %d flushes, %d fences; want %d, 1", tc.name, d.Flushes, d.Fences, tc.flushes)
		}
	}
}

// TestBatchedPersistStatAccounting pins the amortization identity the
// figures rely on: PersistPair and PersistRange issue exactly the same
// flushes as the equivalent N individual FlushLine calls, but exactly one
// fence instead of N.
func TestBatchedPersistStatAccounting(t *testing.T) {
	h := newTestHeap(t, Direct)
	a := h.MustAlloc(8 * WordsPerLine)
	b := h.MustAlloc(WordsPerLine)

	before := h.Stats()
	h.PersistPair(a, b)
	d := h.Stats().Sub(before)
	if d.Flushes != 2 || d.Fences != 1 {
		t.Fatalf("PersistPair: %d flushes, %d fences; want 2, 1", d.Flushes, d.Fences)
	}

	const lines = 8
	before = h.Stats()
	h.PersistRange(a, lines*WordsPerLine)
	ranged := h.Stats().Sub(before)

	before = h.Stats()
	for l := Addr(0); l < lines; l++ {
		h.FlushLine(a + l*WordsPerLine)
	}
	h.Fence()
	manual := h.Stats().Sub(before)

	if ranged.Flushes != manual.Flushes || ranged.Flushes != lines {
		t.Fatalf("PersistRange flushed %d lines, manual FlushLine loop %d; want %d both", ranged.Flushes, manual.Flushes, lines)
	}
	if ranged.Fences != 1 || manual.Fences != 1 {
		t.Fatalf("fences: range %d, manual %d; want 1 both", ranged.Fences, manual.Fences)
	}
}

// TestFenceBatchElidesInteriorFences opens a batch around K Persists and
// asserts: flushes unchanged, exactly one real fence (the closing drain),
// and K elided fences accounted.
func TestFenceBatchElidesInteriorFences(t *testing.T) {
	for _, mode := range []Mode{Direct, Tracked} {
		h := newTestHeap(t, mode)
		a := h.MustAlloc(8 * WordsPerLine)
		const k = 5
		before := h.Stats()
		h.BeginFenceBatch()
		for i := Addr(0); i < k; i++ {
			h.Store(a+i*WordsPerLine, uint64(i)+1)
			h.Persist(a + i*WordsPerLine)
		}
		h.EndFenceBatch()
		d := h.Stats().Sub(before)
		if d.Flushes != k {
			t.Errorf("%v: %d flushes; want %d (flushes are not deferred)", mode, d.Flushes, k)
		}
		if d.Fences != 1 {
			t.Errorf("%v: %d real fences; want 1 (the closing drain)", mode, d.Fences)
		}
		if d.FencesElided != k {
			t.Errorf("%v: %d elided fences; want %d", mode, d.FencesElided, k)
		}
		if mode == Tracked {
			for i := Addr(0); i < k; i++ {
				if got := h.PersistedLoad(a + i*WordsPerLine); got != uint64(i)+1 {
					t.Errorf("word %d not durable after EndFenceBatch: %d", i, got)
				}
			}
		}
	}
}

// TestFenceBatchNesting asserts batches nest: only the outermost
// EndFenceBatch issues the real fence.
func TestFenceBatchNesting(t *testing.T) {
	h := newTestHeap(t, Direct)
	a := h.MustAlloc(WordsPerLine)
	before := h.Stats()
	h.BeginFenceBatch()
	h.Persist(a)
	h.BeginFenceBatch()
	h.Persist(a)
	h.EndFenceBatch() // inner: no fence
	h.Persist(a)
	h.EndFenceBatch() // outer: one fence
	d := h.Stats().Sub(before)
	if d.Fences != 1 || d.FencesElided != 3 {
		t.Fatalf("nested batch: %d real, %d elided; want 1, 3", d.Fences, d.FencesElided)
	}
}

// TestFenceBatchPerGoroutine asserts a batch is private to its goroutine:
// a concurrent goroutine's fences are never elided.
func TestFenceBatchPerGoroutine(t *testing.T) {
	h := newTestHeap(t, Direct)
	a := h.MustAlloc(2 * WordsPerLine)
	h.BeginFenceBatch()
	defer h.EndFenceBatch()
	before := h.Stats()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		h.Persist(a + WordsPerLine)
	}()
	wg.Wait()
	d := h.Stats().Sub(before)
	if d.Fences != 1 || d.FencesElided != 0 {
		t.Fatalf("other goroutine under foreign batch: %d real, %d elided; want 1, 0", d.Fences, d.FencesElided)
	}
}

// TestEndFenceBatchUnmatched asserts the misuse panic.
func TestEndFenceBatchUnmatched(t *testing.T) {
	h := newTestHeap(t, Direct)
	defer func() {
		if recover() == nil {
			t.Fatal("EndFenceBatch without Begin did not panic")
		}
	}()
	h.EndFenceBatch()
}

// TestCrashClearsFenceBatches asserts a simulated crash resets all open
// batches: post-recovery fences are real again even though the crashed
// goroutine never reached its EndFenceBatch.
func TestCrashClearsFenceBatches(t *testing.T) {
	h := newTestHeap(t, Tracked)
	a := h.MustAlloc(WordsPerLine)
	crashed := RunToCrash(func() {
		h.BeginFenceBatch()
		h.Store(a, 1)
		h.ArmCrash(1)
		h.Persist(a) // flush step fires the crash inside the batch
	})
	if !crashed {
		t.Fatal("expected a simulated crash")
	}
	h.Crash(DropAll{})
	before := h.Stats()
	h.Store(a, 2)
	h.Persist(a)
	d := h.Stats().Sub(before)
	if d.Fences != 1 || d.FencesElided != 0 {
		t.Fatalf("post-crash persist: %d real, %d elided fences; want 1, 0 (batch must not survive the crash)", d.Fences, d.FencesElided)
	}
}
