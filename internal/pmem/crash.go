package pmem

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
)

// LineFate is an Adversary's decision about one dirty cache line at crash
// time.
type LineFate int

const (
	// Lost means the line's un-flushed contents are discarded; the
	// persisted view wins.
	Lost LineFate = iota + 1
	// Survives means the line happened to be evicted (written back) before
	// power was cut; the cache view wins.
	Survives
)

// Adversary decides, per dirty cache line, whether its un-flushed contents
// survive a crash. Real hardware may write back any cache line at any time,
// so both fates are legal for every dirty line; a correct recoverable
// structure must tolerate every Adversary.
type Adversary interface {
	// Fate is called once per dirty line, identified by line index.
	Fate(line int) LineFate
}

// DropAll is the adversary under which no un-flushed write survives. This
// is the harshest schedule for durability bugs (missing flushes).
type DropAll struct{}

// Fate implements Adversary.
func (DropAll) Fate(int) LineFate { return Lost }

// KeepAll is the adversary under which every dirty line happens to be
// evicted before the crash. This is the harshest schedule for ordering
// bugs (state persisted that should not have been).
type KeepAll struct{}

// Fate implements Adversary.
func (KeepAll) Fate(int) LineFate { return Survives }

// RandomFates flips an independent coin per dirty line, seeded
// deterministically so failures are reproducible. The underlying rand.Rand
// is not safe for concurrent use, so Fate serializes on a mutex: crash
// sweeps share one adversary across many sequential Crash calls today, but
// nothing in the Adversary contract forbids concurrent callers.
type RandomFates struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// NewRandomFates returns a RandomFates adversary with the given seed.
func NewRandomFates(seed int64) *RandomFates {
	return &RandomFates{rng: rand.New(rand.NewSource(seed))}
}

// Fate implements Adversary.
func (r *RandomFates) Fate(int) LineFate {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.rng.Intn(2) == 0 {
		return Lost
	}
	return Survives
}

// BiasedFates draws an independent biased coin per dirty line: with
// probability p the line survives (was evicted in time), otherwise its
// un-flushed contents are lost. p = 0 degenerates to DropAll, p = 1 to
// KeepAll, p = 0.5 to RandomFates; the interesting settings are in
// between, where most lines share one fate but a few defect — the
// schedule that catches code relying on "either everything made it or
// nothing did". Like RandomFates it is seeded for reproducibility and
// serializes Fate on a mutex.
type BiasedFates struct {
	mu  sync.Mutex
	rng *rand.Rand
	p   float64
}

// NewBiasedFates returns a BiasedFates adversary where each dirty line
// survives with probability p, drawn from the given seed.
func NewBiasedFates(seed int64, p float64) *BiasedFates {
	return &BiasedFates{rng: rand.New(rand.NewSource(seed)), p: p}
}

// SurviveP returns the adversary's per-line survival probability.
func (b *BiasedFates) SurviveP() float64 { return b.p }

// Fate implements Adversary.
func (b *BiasedFates) Fate(int) LineFate {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.rng.Float64() < b.p {
		return Survives
	}
	return Lost
}

// Adversaries returns the canonical adversary suite used by crash-point
// sweeps: both extremes plus a few random schedules.
func Adversaries(seed int64) []Adversary {
	return []Adversary{
		DropAll{},
		KeepAll{},
		NewRandomFates(seed),
		NewRandomFates(seed + 1),
		NewRandomFates(seed + 2),
	}
}

var (
	_ Adversary = DropAll{}
	_ Adversary = KeepAll{}
	_ Adversary = (*RandomFates)(nil)
	_ Adversary = (*BiasedFates)(nil)
)

// ArmCrash schedules a simulated crash: the heap will panic with a
// *CrashError on the step-th primitive memory operation counted from now.
// Tracked mode only. A step of 0 disarms.
func (h *Heap) ArmCrash(step uint64) {
	if h.mode != Tracked {
		panic("pmem: ArmCrash requires Tracked mode")
	}
	if step == 0 {
		h.crashAt.Store(0)
		return
	}
	h.crashAt.Store(h.steps.Load() + step)
}

// CrashNow forces the heap into the crashed state immediately: every
// subsequent access panics with *CrashError until Crash is called. Tracked
// mode only.
func (h *Heap) CrashNow() {
	if h.mode != Tracked {
		panic("pmem: CrashNow requires Tracked mode")
	}
	h.crashed.Store(1)
}

// Crashed reports whether the heap is currently in the crashed state.
func (h *Heap) Crashed() bool { return h.crashed.Load() != 0 }

// Crash completes a simulated system-wide crash and reboot. It must be
// called only after every goroutine using the heap has unwound (see
// RunToCrash). For each dirty line the adversary decides whether the
// un-flushed cache contents survived (were evicted in time) or are lost;
// the surviving image then becomes both the persisted and the coherent
// view, all dirty flags are cleared, and the heap is reopened for use by
// recovery code. Tracked mode only.
func (h *Heap) Crash(adv Adversary) {
	if h.mode != Tracked {
		panic("pmem: Crash requires Tracked mode")
	}
	lines := len(h.cache) / WordsPerLine
	for line := 0; line < lines; line++ {
		base := line * WordsPerLine
		if h.dirty[line].Load() != 0 && adv.Fate(line) == Survives {
			for i := 0; i < WordsPerLine; i++ {
				h.persisted[base+i] = h.cache[base+i]
			}
		}
		h.dirty[line].Store(0)
		copy(h.cache[base:base+WordsPerLine], h.persisted[base:base+WordsPerLine])
	}
	// Any fence batches that were open when the crash unwound their
	// goroutines die with the power: an SFENCE that was never issued
	// orders nothing. Clear them so recovery starts with batching off.
	h.fenceMu.Lock()
	h.fenceBatch = nil
	h.fenceOpen.Store(0)
	h.fenceMu.Unlock()
	h.crashAt.Store(0)
	h.crashed.Store(0)
}

// PersistedLoad reads the word at a from the persisted view, bypassing the
// cache. It is used by recycling pin predicates and verification code and
// may run concurrently with flushes (Tracked mode).
func (h *Heap) PersistedLoad(a Addr) uint64 {
	if h.mode != Tracked {
		panic("pmem: PersistedLoad requires Tracked mode")
	}
	h.check(a)
	return atomic.LoadUint64(&h.persisted[a])
}

// DirtyLines returns the number of lines currently flagged dirty (Tracked
// mode). The flag is conservative: a flagged line may in fact match the
// persisted view.
func (h *Heap) DirtyLines() int {
	if h.mode != Tracked {
		panic("pmem: DirtyLines requires Tracked mode")
	}
	n := 0
	for i := range h.dirty {
		if h.dirty[i].Load() != 0 {
			n++
		}
	}
	return n
}

// RunToCrash invokes f and recovers the heap's crash sentinel if f (or any
// code it calls) hits a simulated crash. It reports whether a crash
// occurred. Panics other than *CrashError propagate unchanged: only the
// simulated power loss is absorbed.
func RunToCrash(f func()) (crashed bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(*CrashError); ok {
				crashed = true
				return
			}
			panic(r)
		}
	}()
	f()
	return false
}

// MustAlloc is Alloc for construction-time code paths where exhaustion is a
// configuration bug rather than a runtime condition.
func (h *Heap) MustAlloc(words int) Addr {
	a, err := h.Alloc(words)
	if err != nil {
		panic(fmt.Sprintf("pmem: %v", err))
	}
	return a
}
