// Package dss is the runtime counterpart of spec.DState: a single typed
// contract for the repository's detectable recoverable objects, so that
// the layers above the object implementations — the sharded front-end,
// the crash sweeps, the crash-storm soak, the virtual-time benchmarks and
// the message-passing engine — can be written once, against the paper's
// four axioms, instead of once per concrete structure.
//
// The paper states the DSS transformation T → D⟨T⟩ generically over any
// sequential type (Figure 1); Object is the executable face of D⟨T⟩ for
// the types implemented here: the container types (FIFO queue, LIFO
// stack, the CASWithEffect queues), each offering one value-carrying
// insert and one value-returning remove, and the keyed two-word types
// (the swap/CAS register, the keyed hash map) whose operations address a
// sub-object through Op.Key and answer in up to two words:
//
//	Axiom 1 (prep-op)  → Prep(tid, op)
//	Axiom 2 (exec-op)  → Exec(tid)
//	Axiom 3 (resolve)  → Resolve(tid)
//	Axiom 4 (base op)  → Invoke(tid, op)
//
// plus the recovery surface every implementation shares: Recover (the
// centralized post-crash procedure), ResetVolatile (rebuild volatile
// companions without touching persistent state), and Abandon (withdraw a
// prepared-but-unexecuted operation — the entry point a multi-shard
// front-end needs when a process re-prepares elsewhere).
//
// Adapter non-goals: the adapters in this package are deliberately thin.
// They add no allocations and no heap accesses on the hot path — generic
// Exec dispatch rides on a volatile per-process hint maintained by Prep
// (and re-derived from the persistent image during Recover/ResetVolatile),
// never on an extra read of X[p] — so under the vtime/flushcount cost
// model, which charges only primitive heap operations, a workload driven
// through Object is step-for-step identical to one driven through the
// concrete methods. core.Queue, stack.Stack and cwe.Queue keep their
// concrete fast-path methods; the adapters merely re-expose them.
package dss

import (
	"repro/internal/pmem"
	"repro/internal/spec"
)

// Kind classifies an operation. The container kinds (Insert, Remove)
// keep their original numeric values — they are persisted in announce
// headers and crossed over wire frames, so renumbering them would break
// attachment to old heaps and the committed byte-identical benchmarks.
type Kind int

const (
	// None means no operation (the A[p] = ⊥ case of a resolution).
	None Kind = iota
	// Insert is the value-carrying container operation: enqueue for
	// queues, push for stacks.
	Insert
	// Remove is the value-returning container operation: dequeue for
	// queues, pop for stacks.
	Remove
	// Read returns the register's current value (Arg and Key unused).
	Read
	// Write sets the register to Arg.
	Write
	// Swap sets the register to Arg and returns the previous value.
	Swap
	// CAS is the register compare-and-swap: Key holds the expected
	// value, Arg the replacement. The response is two words: success in
	// Val, witnessed value in Val2.
	CAS
	// Put upserts Key → Arg in a keyed map.
	Put
	// Get looks Key up in a keyed map (Arg unused).
	Get
	// Delete removes Key from a keyed map, returning the removed value
	// or Empty (Arg unused).
	Delete
	// MapCAS is the keyed compare-and-swap: replace Key's value with
	// the low half of Arg iff it equals the high half (spec.PackCAS).
	MapCAS
)

// String names the kind for diagnostics.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Insert:
		return "insert"
	case Remove:
		return "remove"
	case Read:
		return "read"
	case Write:
		return "write"
	case Swap:
		return "swap"
	case CAS:
		return "cas"
	case Put:
		return "put"
	case Get:
		return "get"
	case Delete:
		return "delete"
	case MapCAS:
		return "mapcas"
	default:
		return "Kind(?)"
	}
}

// Op is one operation under the keyed two-word contract {Kind, Key, Arg}.
// The container kinds use only Arg (Insert carries its value there,
// Remove carries nothing); keyed kinds address a sub-object through Key
// (the map key; the register cas rides its expected value there) and
// carry their payload in Arg. Layers that persist or transmit operations
// carry Key only for types that declare it (Type.Keyed), which is what
// keeps the one-word types' step sequences bit-identical to the
// pre-widening contract.
type Op struct {
	Kind Kind
	Key  uint64
	Arg  uint64
}

// RespKind classifies an operation response.
type RespKind int

const (
	// NoResp is ⊥: the operation has not (or not yet) taken effect.
	NoResp RespKind = iota
	// Ack is the response of an executed insert.
	Ack
	// Val carries the value returned by an executed remove.
	Val
	// Empty is the distinguished empty response of an executed remove.
	Empty
)

// Resp is an operation response; Val is meaningful only when Kind == Val.
// Val2 is the response's second word, used by the two-word kinds (CAS and
// MapCAS answer success in Val and the witnessed value in Val2); one-word
// operations leave it zero.
type Resp struct {
	Kind RespKind
	Val  uint64
	Val2 uint64
}

// Object is a detectable recoverable container object: the runtime
// contract every concrete implementation (and the sharded composition of
// implementations) satisfies.
//
// All methods except Recover, ResetVolatile and Abandon are safe for
// concurrent use by distinct processes, each passing its own tid. Recover
// and ResetVolatile are single-threaded: they must run after a crash and
// before any process resumes. Abandon(tid) must not run concurrently with
// tid's own operations (it withdraws tid's state, so it is either called
// by tid itself or during single-threaded recovery).
type Object interface {
	// Prep declares the detectable intent to perform op (Axiom 1).
	Prep(tid int, op Op) error
	// Exec applies the operation prepared by tid's last Prep (Axiom 2)
	// and returns its response. Calling it with no prepared operation,
	// or twice for one Prep, violates Axiom 2's precondition; the
	// implementations make such calls no-ops or idempotent.
	Exec(tid int) (Resp, error)
	// Resolve reports tid's most recently prepared operation and its
	// response (Axiom 3): ok is false when A[p] = ⊥, and resp.Kind is
	// NoResp when the operation has not taken effect (R[p] = ⊥). Total
	// and idempotent.
	Resolve(tid int) (Op, Resp, bool)
	// Invoke performs op non-detectably (Axiom 4).
	Invoke(tid int, op Op) (Resp, error)
	// Abandon withdraws tid's prepared-but-unexecuted operation: after
	// it returns, Resolve(tid) reports no operation and no crash can
	// resurrect the withdrawn intent.
	Abandon(tid int)
	// Recover is the centralized recovery procedure: it must run
	// single-threaded after Heap.Crash and before processes resume, and
	// it is idempotent — a second run (e.g. after a crash during
	// recovery itself) leaves the same state.
	Recover()
	// ResetVolatile rebuilds the object's volatile companions (free
	// lists, reclamation domains, dispatch hints) from the persistent
	// image without modifying it. Single-threaded.
	ResetVolatile()
}

// Config sizes an object built through a Type factory. The fields are the
// common pool parameters of the concrete constructors; Descriptors is
// consumed only by types that need auxiliary descriptor pools (the
// CASWithEffect queues) and ignored elsewhere.
type Config struct {
	// Threads is the number of processes (tids 0..Threads-1).
	Threads int
	// NodesPerThread sizes each process's pre-allocated node pool.
	NodesPerThread int
	// ExtraNodes adds shared spare nodes (sentinels come from here).
	ExtraNodes int
	// Descriptors sizes the per-thread PMwCAS descriptor pool of the
	// CASWithEffect types (0 selects their default).
	Descriptors int
	// Buckets sizes the fixed bucket array of the hash-map type (0
	// selects its default).
	Buckets int
}

// Type describes one detectable object type: how to build (or re-attach)
// an instance, its sequential model for conformance checking, and the
// spec vocabulary its operations translate to.
type Type struct {
	// Name identifies the type ("queue", "stack", "cwe-fast", ...).
	Name string
	// Code is a small persisted type code, stored by compositions in
	// their metadata so that Attach can reject a root built for a
	// different type.
	Code uint64
	// New builds a fresh instance on h, registering it in rootSlot. A
	// type may claim more than one consecutive root slot (the
	// CASWithEffect queues also claim rootSlot+1); RootSlots reports
	// how many.
	New func(h *pmem.Heap, rootSlot int, cfg Config) (Object, error)
	// Attach reconstructs the handle of an instance built by New in a
	// previous process, or is nil when the type does not support
	// re-attachment. The caller must run Recover on the result.
	Attach func(h *pmem.Heap, rootSlot int, cfg Config) (Object, error)
	// RootSlots is the number of consecutive heap root slots New claims
	// (at least 1).
	RootSlots int
	// Model returns the initial state of the type's sequential
	// specification (the T of D⟨T⟩).
	Model func() spec.State
	// Keyed declares that the type's operations use the contract's
	// second word (Op.Key and Resp.Val2). Layers that persist or
	// transmit operations — the combining front's announce/result slots,
	// the shm ring frames — carry the extra words only for keyed types,
	// so unkeyed types keep their original step sequences.
	Keyed bool
	// KeyRouted declares that Op.Key names a disjoint sub-object (a map
	// key), so a sharded front may route by key hash instead of the
	// round-robin cursor: each key then lives on exactly one shard and
	// the composition is the exact sequential type, not a relaxation.
	KeyRouted bool

	// insert and remove build the spec base operations of the container
	// types; toSpec/fromSpec generalize them for wider vocabularies
	// (register, map). A type sets either the pair or the general hooks.
	insert   func(arg uint64) spec.Op
	remove   func() spec.Op
	toSpec   func(op Op) spec.Op
	fromSpec func(op spec.Op) (Op, bool)
}

// Derive returns a copy of t re-skinned for a wrapper type: the same
// sequential model and spec vocabulary (a wrapper implements the same
// D⟨T⟩, only through a different mechanism), with the wrapper's own
// name, persisted type code, root-slot footprint and factories. It is
// the only way for a package outside dss to mint a Type, because the
// spec-translation hooks are unexported; a wrapper that changed the
// sequential specification would not be a wrapper.
func (t Type) Derive(name string, code uint64, rootSlots int, newFn, attach func(h *pmem.Heap, rootSlot int, cfg Config) (Object, error)) Type {
	d := t
	d.Name = name
	d.Code = code
	d.RootSlots = rootSlots
	d.New = newFn
	d.Attach = attach
	return d
}

// SpecOp translates an operation into the type's spec base operation,
// for recording histories checked against D⟨T⟩.
func (t Type) SpecOp(op Op) spec.Op {
	if t.toSpec != nil {
		return t.toSpec(op)
	}
	if op.Kind == Remove {
		return t.remove()
	}
	return t.insert(op.Arg)
}

// FromSpec translates a spec base operation back into the runtime
// vocabulary; ok is false when op is not one of the type's operations.
func (t Type) FromSpec(op spec.Op) (Op, bool) {
	if t.fromSpec != nil {
		return t.fromSpec(op)
	}
	switch op.Sym {
	case t.insert(0).Sym:
		return Op{Kind: Insert, Arg: op.Arg}, true
	case t.remove().Sym:
		return Op{Kind: Remove}, true
	default:
		return Op{}, false
	}
}

// ResolveResp renders a Resolve result as the spec resolve response
// (A[p], R[p]), for conformance checking against D⟨T⟩.
func (t Type) ResolveResp(op Op, resp Resp, ok bool) spec.Resp {
	if !ok {
		return spec.PairResp(false, spec.Op{}, spec.BottomResp())
	}
	return spec.PairResp(true, t.SpecOp(op), SpecResp(resp))
}

// SpecResp renders a runtime response in the spec vocabulary.
func SpecResp(r Resp) spec.Resp {
	switch r.Kind {
	case Ack:
		return spec.AckResp()
	case Val:
		return spec.ValResp2(r.Val, r.Val2)
	case Empty:
		return spec.EmptyResp()
	default:
		return spec.BottomResp()
	}
}
