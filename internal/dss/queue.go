package dss

import (
	"repro/internal/core"
	"repro/internal/pmem"
	"repro/internal/spec"
)

// QueueType is the DSS queue of the paper's Section 3 (core.Queue) seen
// through the Object contract.
var QueueType = Type{
	Name:      "queue",
	Code:      1,
	RootSlots: 1,
	New: func(h *pmem.Heap, rootSlot int, cfg Config) (Object, error) {
		q, err := core.New(h, rootSlot, core.Config{
			Threads:        cfg.Threads,
			NodesPerThread: cfg.NodesPerThread,
			ExtraNodes:     cfg.ExtraNodes,
		})
		if err != nil {
			return nil, err
		}
		return newQueueObj(q, cfg.Threads), nil
	},
	Attach: func(h *pmem.Heap, rootSlot int, cfg Config) (Object, error) {
		q, err := core.Attach(h, rootSlot)
		if err != nil {
			return nil, err
		}
		o := newQueueObj(q, q.Threads())
		// The adapter's dispatch hints are volatile; a re-attached handle
		// derives them from the persistent image, exactly as Recover does.
		o.refreshHints()
		return o, nil
	},
	Model:  func() spec.State { return spec.NewQueue() },
	insert: spec.Enqueue,
	remove: spec.Dequeue,
}

// queueObj adapts core.Queue to Object. last[tid] caches the kind of
// tid's most recent Prep so Exec can dispatch without re-reading X[tid]:
// a volatile, single-owner hint, rebuilt from the persistent image by
// Recover/ResetVolatile, that keeps the adapter's heap-access sequence
// identical to the concrete methods'.
type queueObj struct {
	q    *core.Queue
	last []Kind
}

func newQueueObj(q *core.Queue, threads int) *queueObj {
	return &queueObj{q: q, last: make([]Kind, threads)}
}

// Queue returns the adapted concrete queue (test and tooling access).
func (o *queueObj) Queue() *core.Queue { return o.q }

func (o *queueObj) Prep(tid int, op Op) error {
	if op.Kind == Remove {
		o.q.PrepDequeue(tid)
	} else if err := o.q.PrepEnqueue(tid, op.Arg); err != nil {
		return err
	}
	o.last[tid] = op.Kind
	return nil
}

func (o *queueObj) Exec(tid int) (Resp, error) {
	switch o.last[tid] {
	case Insert:
		o.q.ExecEnqueue(tid)
		return Resp{Kind: Ack}, nil
	case Remove:
		if v, ok := o.q.ExecDequeue(tid); ok {
			return Resp{Kind: Val, Val: v}, nil
		}
		return Resp{Kind: Empty}, nil
	default:
		return Resp{}, nil
	}
}

func (o *queueObj) Resolve(tid int) (Op, Resp, bool) {
	return fromResolution(o.q.Resolve(tid))
}

// fromResolution translates the queue's concrete resolution.
func fromResolution(r core.Resolution) (Op, Resp, bool) {
	switch r.Op {
	case core.OpEnqueue:
		resp := Resp{}
		if r.Executed {
			resp = Resp{Kind: Ack}
		}
		return Op{Kind: Insert, Arg: r.Arg}, resp, true
	case core.OpDequeue:
		resp := Resp{}
		if r.Executed {
			if r.Empty {
				resp = Resp{Kind: Empty}
			} else {
				resp = Resp{Kind: Val, Val: r.Val}
			}
		}
		return Op{Kind: Remove}, resp, true
	default:
		return Op{}, Resp{}, false
	}
}

func (o *queueObj) Invoke(tid int, op Op) (Resp, error) {
	if op.Kind == Remove {
		if v, ok := o.q.Dequeue(tid); ok {
			return Resp{Kind: Val, Val: v}, nil
		}
		return Resp{Kind: Empty}, nil
	}
	if err := o.q.Enqueue(tid, op.Arg); err != nil {
		return Resp{}, err
	}
	return Resp{Kind: Ack}, nil
}

func (o *queueObj) Abandon(tid int) {
	o.q.AbandonPrep(tid)
	o.last[tid] = None
}

func (o *queueObj) Recover() {
	o.q.Recover()
	o.refreshHints()
}

func (o *queueObj) ResetVolatile() {
	o.q.ResetVolatile()
	o.refreshHints()
}

// refreshHints re-derives the volatile dispatch hints from the persistent
// image (recovery-time only; never on the measured hot path).
func (o *queueObj) refreshHints() {
	for tid := range o.last {
		op, _, ok := o.Resolve(tid)
		if ok {
			o.last[tid] = op.Kind
		} else {
			o.last[tid] = None
		}
	}
}
