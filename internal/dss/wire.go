package dss

import (
	"fmt"

	"repro/internal/spec"
)

// Wire adapts an Object to the spec-vocabulary service surface the
// message-passing engine (internal/mp) hosts: prep/exec/resolve/invoke
// over spec.Op and spec.Resp, plus Recover. With it, mp.Engine serves
// any detectable object — a core queue, a stack, a CASWithEffect queue,
// or a sharded front — behind the exactly-once wire protocol.
//
// Tag caveat: spec.Op.Tag (Section 2.1's auxiliary prep argument) is
// recorded here in volatile per-process memory, because the concrete
// container objects persist only the operation itself, not its tag. A
// resolve therefore reports the tag only within the generation that
// prepared the operation; after a crash it reports Tag 0. Clients whose
// exactly-once discipline keys on tags across crashes (mp.RetryClient)
// need a tag-persisting object — the universal construction — while
// Wire-served objects suit direct Engine/Client use, where the caller
// settles crash ambiguity from the resolved operation and response
// themselves.
type Wire struct {
	typ  Type
	obj  Object
	tags []uint64
}

// NewWire binds obj (built for threads processes) to the wire vocabulary
// of typ.
func NewWire(typ Type, obj Object, threads int) *Wire {
	return &Wire{typ: typ, obj: obj, tags: make([]uint64, threads)}
}

// Object returns the adapted object.
func (w *Wire) Object() Object { return w.obj }

// Prep translates and declares a detectable operation (Axiom 1).
func (w *Wire) Prep(tid int, op spec.Op) error {
	dop, ok := w.typ.FromSpec(op)
	if !ok {
		return fmt.Errorf("dss: %s is not a %s operation", op, w.typ.Name)
	}
	if err := w.obj.Prep(tid, dop); err != nil {
		return err
	}
	if tid >= 0 && tid < len(w.tags) {
		w.tags[tid] = op.Tag
	}
	return nil
}

// Exec applies tid's prepared operation (Axiom 2).
func (w *Wire) Exec(tid int) (spec.Resp, error) {
	resp, err := w.obj.Exec(tid)
	if err != nil {
		return spec.Resp{}, err
	}
	return SpecResp(resp), nil
}

// Resolve reports (A[p], R[p]) (Axiom 3).
func (w *Wire) Resolve(tid int) spec.Resp {
	op, resp, ok := w.obj.Resolve(tid)
	if !ok {
		return spec.PairResp(false, spec.Op{}, spec.BottomResp())
	}
	sop := w.typ.SpecOp(op)
	if tid >= 0 && tid < len(w.tags) {
		sop.Tag = w.tags[tid]
	}
	return spec.PairResp(true, sop, SpecResp(resp))
}

// Invoke applies op non-detectably (Axiom 4).
func (w *Wire) Invoke(tid int, op spec.Op) (spec.Resp, error) {
	dop, ok := w.typ.FromSpec(op)
	if !ok {
		return spec.Resp{}, fmt.Errorf("dss: %s is not a %s operation", op, w.typ.Name)
	}
	resp, err := w.obj.Invoke(tid, dop)
	if err != nil {
		return spec.Resp{}, err
	}
	return SpecResp(resp), nil
}

// Recover runs the object's recovery procedure and drops the volatile
// tags (a new generation re-tags from scratch).
func (w *Wire) Recover() {
	w.obj.Recover()
	for i := range w.tags {
		w.tags[i] = 0
	}
}
