package dss

import (
	"testing"

	"repro/internal/pmem"
	"repro/internal/spec"
)

// allTypes lists every concrete detectable type the package adapts.
func allTypes() []Type {
	return []Type{QueueType, StackType, CWEFastType, CWEGeneralType}
}

func newObj(t *testing.T, typ Type, threads int) (Object, *pmem.Heap) {
	t.Helper()
	h, err := pmem.New(pmem.Config{Words: 1 << 16, Mode: pmem.Tracked})
	if err != nil {
		t.Fatalf("pmem.New: %v", err)
	}
	obj, err := typ.New(h, 0, Config{
		Threads: threads, NodesPerThread: 32, ExtraNodes: 8, Descriptors: 8,
	})
	if err != nil {
		t.Fatalf("%s.New: %v", typ.Name, err)
	}
	return obj, h
}

// drainObj removes until Empty and returns the values, in removal order.
func drainObj(t *testing.T, obj Object, tid int) []uint64 {
	t.Helper()
	var out []uint64
	for i := 0; i < 10_000; i++ {
		resp, err := obj.Invoke(tid, Op{Kind: Remove})
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
		if resp.Kind != Val {
			return out
		}
		out = append(out, resp.Val)
	}
	t.Fatal("drain did not terminate")
	return nil
}

// TestContractConformance runs a scripted detectable workload on every
// type with its D⟨T⟩ model in lockstep: each Prep/Exec/Resolve must
// produce exactly the response the specification produces.
func TestContractConformance(t *testing.T) {
	for _, typ := range allTypes() {
		typ := typ
		t.Run(typ.Name, func(t *testing.T) {
			obj, _ := newObj(t, typ, 1)
			var d spec.State = spec.Detectable(typ.Model(), 1)

			apply := func(op spec.Op) spec.Resp {
				t.Helper()
				next, want, enabled := d.Apply(op, 0)
				if !enabled {
					t.Fatalf("%s not enabled in the model", op)
				}
				d = next
				return want
			}
			checkResolve := func() {
				t.Helper()
				op, resp, ok := obj.Resolve(0)
				_, want, _ := d.Apply(spec.ResolveOp(), 0)
				if got := typ.ResolveResp(op, resp, ok); got != want {
					t.Fatalf("Resolve = %s, model says %s", got, want)
				}
			}

			script := []Op{
				{Kind: Insert, Arg: 10},
				{Kind: Insert, Arg: 20},
				{Kind: Remove},
				{Kind: Remove},
				{Kind: Remove}, // empty
			}
			for _, dop := range script {
				if err := obj.Prep(0, dop); err != nil {
					t.Fatalf("Prep(%v): %v", dop, err)
				}
				apply(spec.PrepOp(typ.SpecOp(dop)))
				checkResolve()
				resp, err := obj.Exec(0)
				if err != nil {
					t.Fatalf("Exec(%v): %v", dop, err)
				}
				if got, want := SpecResp(resp), apply(spec.ExecOp(typ.SpecOp(dop))); got != want {
					t.Fatalf("Exec(%v) = %s, model says %s", dop, got, want)
				}
				checkResolve()
			}
		})
	}
}

// TestContractAbandon: a withdrawn prepared operation must vanish from
// Resolve and its value must never reach the object.
func TestContractAbandon(t *testing.T) {
	for _, typ := range allTypes() {
		typ := typ
		t.Run(typ.Name, func(t *testing.T) {
			obj, _ := newObj(t, typ, 1)
			if err := obj.Prep(0, Op{Kind: Insert, Arg: 99}); err != nil {
				t.Fatalf("Prep: %v", err)
			}
			obj.Abandon(0)
			if op, _, ok := obj.Resolve(0); ok {
				t.Fatalf("Resolve after Abandon = %v, want none", op)
			}
			if _, err := obj.Invoke(0, Op{Kind: Insert, Arg: 7}); err != nil {
				t.Fatalf("Invoke: %v", err)
			}
			if got := drainObj(t, obj, 0); len(got) != 1 || got[0] != 7 {
				t.Fatalf("drained %v, want [7] (abandoned 99 must not appear)", got)
			}
		})
	}
}

// TestSpecOpRoundTrip checks the Type translation layer: SpecOp/FromSpec
// round-trip, foreign operations are rejected, and ResolveResp renders
// the ⊥ resolution.
func TestSpecOpRoundTrip(t *testing.T) {
	for _, typ := range allTypes() {
		for _, dop := range []Op{{Kind: Insert, Arg: 42}, {Kind: Remove}} {
			back, ok := typ.FromSpec(typ.SpecOp(dop))
			if !ok || back != dop {
				t.Fatalf("%s: FromSpec(SpecOp(%v)) = %v, %v", typ.Name, dop, back, ok)
			}
		}
	}
	// Queue and stack vocabularies are disjoint.
	if _, ok := QueueType.FromSpec(spec.Push(1)); ok {
		t.Fatal("queue accepted a push")
	}
	if _, ok := StackType.FromSpec(spec.Enqueue(1)); ok {
		t.Fatal("stack accepted an enqueue")
	}
	for _, typ := range allTypes() {
		if got, want := typ.ResolveResp(Op{}, Resp{}, false),
			spec.PairResp(false, spec.Op{}, spec.BottomResp()); got != want {
			t.Fatalf("%s: ResolveResp(⊥) = %s, want %s", typ.Name, got, want)
		}
	}
}

// TestDoubleRecoverIdempotent is the satellite check on the unified
// recovery contract: Recover must be idempotent, so a crash during
// recovery itself (modeled as running Recover twice) changes nothing.
// For several crash points of a detectable workload, under the harshest
// adversary, the resolution of every process must be identical after one
// and after two recoveries, and the object must still drain and operate.
func TestDoubleRecoverIdempotent(t *testing.T) {
	for _, typ := range allTypes() {
		typ := typ
		t.Run(typ.Name, func(t *testing.T) {
			for _, step := range []uint64{3, 9, 17, 41, 97, 211} {
				obj, h := newObj(t, typ, 2)
				h.ArmCrash(step)
				pmem.RunToCrash(func() {
					for p := 0; p < 2; p++ {
						if err := obj.Prep(0, Op{Kind: Insert, Arg: uint64(100 + p)}); err != nil {
							return
						}
						if _, err := obj.Exec(0); err != nil {
							return
						}
					}
					if err := obj.Prep(1, Op{Kind: Remove}); err != nil {
						return
					}
					if _, err := obj.Exec(1); err != nil {
						return
					}
				})
				if !h.Crashed() {
					continue // workload shorter than this crash point
				}
				h.Crash(pmem.DropAll{})
				obj.Recover()
				type res struct {
					op   Op
					resp Resp
					ok   bool
				}
				first := make([]res, 2)
				for tid := range first {
					op, resp, ok := obj.Resolve(tid)
					first[tid] = res{op, resp, ok}
				}
				obj.Recover() // crash-during-recovery: must be a no-op
				for tid := range first {
					op, resp, ok := obj.Resolve(tid)
					if got := (res{op, resp, ok}); got != first[tid] {
						t.Fatalf("step %d: tid %d resolution changed across double Recover: %+v vs %+v",
							step, tid, first[tid], got)
					}
				}
				// The doubly-recovered object must still be coherent: the
				// drain yields a subset of the inserted values, and a fresh
				// detectable pair runs end to end.
				for _, v := range drainObj(t, obj, 0) {
					if v != 100 && v != 101 {
						t.Fatalf("step %d: drained alien value %d", step, v)
					}
				}
				if err := obj.Prep(0, Op{Kind: Insert, Arg: 500}); err != nil {
					t.Fatalf("step %d: post-recovery Prep: %v", step, err)
				}
				if _, err := obj.Exec(0); err != nil {
					t.Fatalf("step %d: post-recovery Exec: %v", step, err)
				}
				if got := drainObj(t, obj, 1); len(got) != 1 || got[0] != 500 {
					t.Fatalf("step %d: post-recovery drain = %v, want [500]", step, got)
				}
			}
		})
	}
}

// TestResetVolatileKeepsResolution: rebuilding volatile companions must
// not disturb the persistent (A, R) state the resolution reads.
func TestResetVolatileKeepsResolution(t *testing.T) {
	for _, typ := range allTypes() {
		typ := typ
		t.Run(typ.Name, func(t *testing.T) {
			obj, _ := newObj(t, typ, 1)
			if err := obj.Prep(0, Op{Kind: Insert, Arg: 11}); err != nil {
				t.Fatalf("Prep: %v", err)
			}
			if _, err := obj.Exec(0); err != nil {
				t.Fatalf("Exec: %v", err)
			}
			op1, r1, ok1 := obj.Resolve(0)
			obj.ResetVolatile()
			op2, r2, ok2 := obj.Resolve(0)
			if op1 != op2 || r1 != r2 || ok1 != ok2 {
				t.Fatalf("ResetVolatile changed the resolution: (%v,%v,%v) vs (%v,%v,%v)",
					op1, r1, ok1, op2, r2, ok2)
			}
			// Exec dispatch still works after the hint rebuild.
			if err := obj.Prep(0, Op{Kind: Remove}); err != nil {
				t.Fatalf("Prep remove: %v", err)
			}
			resp, err := obj.Exec(0)
			if err != nil || resp.Kind != Val || resp.Val != 11 {
				t.Fatalf("Exec remove after ResetVolatile = %+v, %v", resp, err)
			}
		})
	}
}
