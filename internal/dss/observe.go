package dss

import "repro/internal/obs"

// observed decorates an Object with per-phase latency observation and
// lifecycle trace events. It follows the adapter discipline of this
// package: no allocations and no heap accesses on the hot path — the op
// kind fed to the sink rides on a volatile per-process hint maintained by
// Prep and re-derived via Resolve during Recover/ResetVolatile, exactly
// like the adapters' own dispatch hints.
type observed struct {
	obj  Object
	sink *obs.Sink
	// last[tid] is the kind of tid's outstanding prepared operation
	// (volatile; rebuilt after a crash).
	last []obs.OpKind
}

// Observe wraps obj so every Prep/Exec/Resolve/Abandon/Recover is timed
// into s's per-phase histograms and traced into its event ring. A nil
// sink returns obj unchanged, so a disabled pipeline pays nothing — not
// even an interface indirection.
func Observe(obj Object, s *obs.Sink, threads int) Object {
	if s == nil {
		return obj
	}
	if threads < 1 {
		threads = 1
	}
	return &observed{obj: obj, sink: s, last: make([]obs.OpKind, threads)}
}

// KindOf translates the runtime operation vocabulary into the sink's
// op-kind labels (obs.KindNone for unknown kinds). Exported for
// transports and engines that attribute per-request latency without
// wrapping the object — the multi-process deployment's telemetry path.
func KindOf(k Kind) obs.OpKind { return kindOf(k) }

// kindOf translates the runtime vocabulary into the sink's.
func kindOf(k Kind) obs.OpKind {
	switch k {
	case Insert:
		return obs.KindInsert
	case Remove:
		return obs.KindRemove
	case Read:
		return obs.KindRead
	case Write:
		return obs.KindWrite
	case Swap:
		return obs.KindSwap
	case CAS, MapCAS:
		return obs.KindCAS
	case Put:
		return obs.KindPut
	case Get:
		return obs.KindGet
	case Delete:
		return obs.KindDelete
	default:
		return obs.KindNone
	}
}

func (o *observed) hint(tid int) obs.OpKind {
	if tid >= 0 && tid < len(o.last) {
		return o.last[tid]
	}
	return obs.KindNone
}

func (o *observed) setHint(tid int, k obs.OpKind) {
	if tid >= 0 && tid < len(o.last) {
		o.last[tid] = k
	}
}

func (o *observed) Prep(tid int, op Op) error {
	k := kindOf(op.Kind)
	start := o.sink.Now()
	err := o.obj.Prep(tid, op)
	o.sink.ObserveSince(obs.PhasePrep, k, start)
	o.sink.Event(obs.EvOpStart, tid, uint64(k))
	if err == nil {
		o.setHint(tid, k)
	}
	return err
}

func (o *observed) Exec(tid int) (Resp, error) {
	k := o.hint(tid)
	start := o.sink.Now()
	resp, err := o.obj.Exec(tid)
	o.sink.ObserveSince(obs.PhaseExec, k, start)
	o.sink.Event(obs.EvOpExec, tid, uint64(k))
	return resp, err
}

func (o *observed) Resolve(tid int) (Op, Resp, bool) {
	start := o.sink.Now()
	op, resp, ok := o.obj.Resolve(tid)
	o.sink.ObserveSince(obs.PhaseResolve, kindOf(op.Kind), start)
	var found uint64
	if ok {
		found = 1
	}
	o.sink.Event(obs.EvOpResolve, tid, found)
	return op, resp, ok
}

func (o *observed) Invoke(tid int, op Op) (Resp, error) {
	// Axiom 4 runs outside the detectable lifecycle; it is timed as an
	// exec (it applies immediately) but leaves tid's hint alone.
	start := o.sink.Now()
	resp, err := o.obj.Invoke(tid, op)
	o.sink.ObserveSince(obs.PhaseExec, kindOf(op.Kind), start)
	return resp, err
}

func (o *observed) Abandon(tid int) {
	k := o.hint(tid)
	start := o.sink.Now()
	o.obj.Abandon(tid)
	o.sink.ObserveSince(obs.PhaseAbandon, k, start)
	o.sink.Event(obs.EvOpAbandon, tid, uint64(k))
	o.setHint(tid, obs.KindNone)
}

func (o *observed) Recover() {
	start := o.sink.Now()
	o.sink.Event(obs.EvRecoverBegin, -1, 0)
	o.obj.Recover()
	o.rebuildHints()
	o.sink.ObserveSince(obs.PhaseRecover, obs.KindNone, start)
	o.sink.Event(obs.EvRecoverEnd, -1, 0)
}

func (o *observed) ResetVolatile() {
	o.obj.ResetVolatile()
	o.rebuildHints()
}

// rebuildHints re-derives the volatile kind hints from the persistent
// image via Resolve, mirroring how the adapters rebuild their dispatch
// hints.
func (o *observed) rebuildHints() {
	for tid := range o.last {
		if op, _, ok := o.obj.Resolve(tid); ok {
			o.last[tid] = kindOf(op.Kind)
		} else {
			o.last[tid] = obs.KindNone
		}
	}
}
