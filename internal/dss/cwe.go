package dss

import (
	"repro/internal/cwe"
	"repro/internal/pmem"
	"repro/internal/spec"
)

// CWEFastType and CWEGeneralType are the paper's CASWithEffect queues
// (cwe.Queue) seen through the Object contract. They claim two
// consecutive root slots (queue metadata + PMwCAS descriptors).
var (
	CWEFastType    = cweType("cwe-fast", 3, true)
	CWEGeneralType = cweType("cwe-general", 4, false)
)

func cweType(name string, code uint64, fast bool) Type {
	return Type{
		Name:      name,
		Code:      code,
		RootSlots: 2,
		New: func(h *pmem.Heap, rootSlot int, cfg Config) (Object, error) {
			q, err := cwe.New(h, rootSlot, cwe.Config{
				Threads:              cfg.Threads,
				NodesPerThread:       cfg.NodesPerThread,
				ExtraNodes:           cfg.ExtraNodes,
				DescriptorsPerThread: cfg.Descriptors,
				Fast:                 fast,
			})
			if err != nil {
				return nil, err
			}
			return newCWEObj(q, cfg.Threads), nil
		},
		Model:  func() spec.State { return spec.NewQueue() },
		insert: spec.Enqueue,
		remove: spec.Dequeue,
	}
}

// cweObj adapts cwe.Queue to Object, with the same volatile dispatch
// hint as queueObj (see its comment).
type cweObj struct {
	q    *cwe.Queue
	last []Kind
}

func newCWEObj(q *cwe.Queue, threads int) *cweObj {
	return &cweObj{q: q, last: make([]Kind, threads)}
}

// CWE returns the adapted concrete queue (test and tooling access).
func (o *cweObj) CWE() *cwe.Queue { return o.q }

func (o *cweObj) Prep(tid int, op Op) error {
	if op.Kind == Remove {
		o.q.PrepDequeue(tid)
	} else if err := o.q.PrepEnqueue(tid, op.Arg); err != nil {
		return err
	}
	o.last[tid] = op.Kind
	return nil
}

func (o *cweObj) Exec(tid int) (Resp, error) {
	switch o.last[tid] {
	case Insert:
		if err := o.q.ExecEnqueue(tid); err != nil {
			return Resp{}, err
		}
		return Resp{Kind: Ack}, nil
	case Remove:
		v, ok, err := o.q.ExecDequeue(tid)
		if err != nil {
			return Resp{}, err
		}
		if ok {
			return Resp{Kind: Val, Val: v}, nil
		}
		return Resp{Kind: Empty}, nil
	default:
		return Resp{}, nil
	}
}

func (o *cweObj) Resolve(tid int) (Op, Resp, bool) {
	r := o.q.Resolve(tid)
	switch {
	case r.IsEnqueue:
		resp := Resp{}
		if r.Executed {
			resp = Resp{Kind: Ack}
		}
		return Op{Kind: Insert, Arg: r.Arg}, resp, true
	case r.IsDequeue:
		resp := Resp{}
		if r.Executed {
			if r.Empty {
				resp = Resp{Kind: Empty}
			} else {
				resp = Resp{Kind: Val, Val: r.Val}
			}
		}
		return Op{Kind: Remove}, resp, true
	default:
		return Op{}, Resp{}, false
	}
}

func (o *cweObj) Invoke(tid int, op Op) (Resp, error) {
	if op.Kind == Remove {
		if v, ok := o.q.Dequeue(tid); ok {
			return Resp{Kind: Val, Val: v}, nil
		}
		return Resp{Kind: Empty}, nil
	}
	if err := o.q.Enqueue(tid, op.Arg); err != nil {
		return Resp{}, err
	}
	return Resp{Kind: Ack}, nil
}

func (o *cweObj) Abandon(tid int) {
	o.q.AbandonPrep(tid)
	o.last[tid] = None
}

func (o *cweObj) Recover() {
	o.q.Recover()
	o.refreshHints()
}

func (o *cweObj) ResetVolatile() {
	o.q.ResetVolatile()
	o.refreshHints()
}

func (o *cweObj) refreshHints() {
	for tid := range o.last {
		op, _, ok := o.Resolve(tid)
		if ok {
			o.last[tid] = op.Kind
		} else {
			o.last[tid] = None
		}
	}
}
