package dss

import (
	"fmt"

	"repro/internal/hmap"
	"repro/internal/pmem"
	"repro/internal/spec"
)

// defaultBuckets sizes the hash-map bucket array when Config.Buckets is
// zero.
const defaultBuckets = 8

// MapType is the detectable fixed-bucket hash map (hmap.Map) seen
// through the Object contract. It is both Keyed — put rides its value in
// Op.Arg with the key in Op.Key, and MapCAS answers in two words — and
// KeyRouted: distinct keys name disjoint sub-objects (independent bucket
// chains), so a sharded front may scatter the key space by hash and the
// composition is the exact sequential map, not a relaxation.
var MapType = Type{
	Name:      "hmap",
	Code:      6,
	RootSlots: 1,
	New: func(h *pmem.Heap, rootSlot int, cfg Config) (Object, error) {
		buckets := cfg.Buckets
		if buckets == 0 {
			buckets = defaultBuckets
		}
		m, err := hmap.New(h, rootSlot, hmap.Config{
			Threads:        cfg.Threads,
			Buckets:        buckets,
			NodesPerThread: cfg.NodesPerThread,
			ExtraNodes:     cfg.ExtraNodes,
		})
		if err != nil {
			return nil, err
		}
		return newMapObj(m, cfg.Threads), nil
	},
	Attach: func(h *pmem.Heap, rootSlot int, cfg Config) (Object, error) {
		m, err := hmap.Attach(h, rootSlot)
		if err != nil {
			return nil, err
		}
		o := newMapObj(m, m.Threads())
		o.refreshHints()
		return o, nil
	},
	Model:     func() spec.State { return spec.NewMap() },
	Keyed:     true,
	KeyRouted: true,
	toSpec: func(op Op) spec.Op {
		switch op.Kind {
		case Put:
			return spec.Put(op.Key, op.Arg)
		case Get:
			return spec.Get(op.Key)
		case Delete:
			return spec.Del(op.Key)
		default: // MapCAS
			exp, newV := spec.UnpackCAS(op.Arg)
			return spec.MCAS(op.Key, exp, newV)
		}
	},
	fromSpec: func(op spec.Op) (Op, bool) {
		switch op.Sym {
		case "put":
			return Op{Kind: Put, Key: op.Arg, Arg: op.Arg2}, true
		case "get":
			return Op{Kind: Get, Key: op.Arg}, true
		case "del":
			return Op{Kind: Delete, Key: op.Arg}, true
		case "mcas":
			return Op{Kind: MapCAS, Key: op.Arg, Arg: op.Arg2}, true
		default:
			return Op{}, false
		}
	},
}

// mapObj adapts hmap.Map to Object (see regObj for the hint scheme).
type mapObj struct {
	m    *hmap.Map
	last []Kind
}

func newMapObj(m *hmap.Map, threads int) *mapObj {
	return &mapObj{m: m, last: make([]Kind, threads)}
}

// Map returns the adapted concrete hash map (test and tooling access).
func (o *mapObj) Map() *hmap.Map { return o.m }

func (o *mapObj) Prep(tid int, op Op) error {
	var err error
	switch op.Kind {
	case Put:
		err = o.m.PrepPut(tid, op.Key, op.Arg)
	case Get:
		o.m.PrepGet(tid, op.Key)
	case Delete:
		err = o.m.PrepDelete(tid, op.Key)
	case MapCAS:
		err = o.m.PrepCAS(tid, op.Key, op.Arg)
	default:
		return fmt.Errorf("hmap: cannot prepare %v", op.Kind)
	}
	if err != nil {
		return err
	}
	o.last[tid] = op.Kind
	return nil
}

func (o *mapObj) Exec(tid int) (Resp, error) {
	switch o.last[tid] {
	case Put:
		if err := o.m.ExecPut(tid); err != nil {
			return Resp{}, err
		}
		return Resp{Kind: Ack}, nil
	case Get:
		v, present := o.m.ExecGet(tid)
		if !present {
			return Resp{Kind: Empty}, nil
		}
		return Resp{Kind: Val, Val: v}, nil
	case Delete:
		v, present, err := o.m.ExecDelete(tid)
		if err != nil {
			return Resp{}, err
		}
		if !present {
			return Resp{Kind: Empty}, nil
		}
		return Resp{Kind: Val, Val: v}, nil
	case MapCAS:
		ok, witness, err := o.m.ExecCAS(tid)
		if err != nil {
			return Resp{}, err
		}
		if ok {
			return Resp{Kind: Val, Val: 1, Val2: witness}, nil
		}
		return Resp{Kind: Val, Val: 0, Val2: witness}, nil
	default:
		return Resp{}, nil
	}
}

func (o *mapObj) Resolve(tid int) (Op, Resp, bool) {
	r := o.m.Resolve(tid)
	switch r.Op {
	case hmap.OpPut:
		resp := Resp{}
		if r.Executed {
			resp = Resp{Kind: Ack}
		}
		return Op{Kind: Put, Key: r.Key, Arg: r.Arg}, resp, true
	case hmap.OpGet:
		resp := Resp{}
		if r.Executed {
			if r.Present {
				resp = Resp{Kind: Val, Val: r.Val}
			} else {
				resp = Resp{Kind: Empty}
			}
		}
		return Op{Kind: Get, Key: r.Key}, resp, true
	case hmap.OpDelete:
		resp := Resp{}
		if r.Executed {
			if r.Present {
				resp = Resp{Kind: Val, Val: r.Val}
			} else {
				resp = Resp{Kind: Empty}
			}
		}
		return Op{Kind: Delete, Key: r.Key}, resp, true
	case hmap.OpCAS:
		resp := Resp{}
		if r.Executed {
			resp = Resp{Kind: Val, Val: r.Val, Val2: r.Val2}
		}
		return Op{Kind: MapCAS, Key: r.Key, Arg: r.Arg}, resp, true
	default:
		return Op{}, Resp{}, false
	}
}

func (o *mapObj) Invoke(tid int, op Op) (Resp, error) {
	switch op.Kind {
	case Put:
		if err := o.m.Put(tid, op.Key, op.Arg); err != nil {
			return Resp{}, err
		}
		return Resp{Kind: Ack}, nil
	case Get:
		v, present := o.m.Get(tid, op.Key)
		if !present {
			return Resp{Kind: Empty}, nil
		}
		return Resp{Kind: Val, Val: v}, nil
	case Delete:
		v, present, err := o.m.Delete(tid, op.Key)
		if err != nil {
			return Resp{}, err
		}
		if !present {
			return Resp{Kind: Empty}, nil
		}
		return Resp{Kind: Val, Val: v}, nil
	case MapCAS:
		ok, witness, err := o.m.CAS(tid, op.Key, op.Arg)
		if err != nil {
			return Resp{}, err
		}
		if ok {
			return Resp{Kind: Val, Val: 1, Val2: witness}, nil
		}
		return Resp{Kind: Val, Val: 0, Val2: witness}, nil
	default:
		return Resp{}, fmt.Errorf("hmap: cannot invoke %v", op.Kind)
	}
}

func (o *mapObj) Abandon(tid int) {
	o.m.AbandonPrep(tid)
	o.last[tid] = None
}

func (o *mapObj) Recover() {
	o.m.Recover()
	o.refreshHints()
}

func (o *mapObj) ResetVolatile() {
	o.m.ResetVolatile()
	o.refreshHints()
}

func (o *mapObj) refreshHints() {
	for tid := range o.last {
		op, _, ok := o.Resolve(tid)
		if ok {
			o.last[tid] = op.Kind
		} else {
			o.last[tid] = None
		}
	}
}
