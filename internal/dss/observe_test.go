package dss

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/pmem"
)

// TestObserveNilSinkIsIdentity checks the disabled path: no sink means
// the object comes back unwrapped, so a disabled pipeline pays nothing.
func TestObserveNilSinkIsIdentity(t *testing.T) {
	obj, _ := newObj(t, QueueType, 2)
	if got := Observe(obj, nil, 2); got != obj {
		t.Fatal("Observe with nil sink did not return the object unchanged")
	}
}

// TestObservePhaseAttribution drives the detectable lifecycle through the
// decorator and checks every phase and kind lands in the right histogram
// and the trace ring records the lifecycle in order.
func TestObservePhaseAttribution(t *testing.T) {
	raw, _ := newObj(t, QueueType, 2)
	sink := obs.NewSink(obs.Config{RingSize: 64})
	obj := Observe(raw, sink, 2)

	mustPrep := func(tid int, op Op) {
		t.Helper()
		if err := obj.Prep(tid, op); err != nil {
			t.Fatalf("Prep: %v", err)
		}
	}
	mustExec := func(tid int) Resp {
		t.Helper()
		resp, err := obj.Exec(tid)
		if err != nil {
			t.Fatalf("Exec: %v", err)
		}
		return resp
	}

	mustPrep(0, Op{Kind: Insert, Arg: 7})
	mustExec(0)
	mustPrep(0, Op{Kind: Remove})
	if resp := mustExec(0); resp.Kind != Val || resp.Val != 7 {
		t.Fatalf("remove = %+v", resp)
	}
	obj.Resolve(0)
	mustPrep(1, Op{Kind: Insert, Arg: 9})
	obj.Abandon(1)
	if _, _, ok := obj.Resolve(1); ok {
		t.Fatal("abandoned op still resolvable")
	}

	snap := sink.Snapshot()
	check := func(p obs.Phase, k obs.OpKind, want uint64) {
		t.Helper()
		if got := snap.Phases[p][k].Count; got != want {
			t.Errorf("%s/%s count = %d, want %d", p, k, got, want)
		}
	}
	check(obs.PhasePrep, obs.KindInsert, 2)
	check(obs.PhasePrep, obs.KindRemove, 1)
	check(obs.PhaseExec, obs.KindInsert, 1)
	check(obs.PhaseExec, obs.KindRemove, 1)
	check(obs.PhaseAbandon, obs.KindInsert, 1)
	if got := snap.Phases[obs.PhaseResolve][obs.KindRemove].Count +
		snap.Phases[obs.PhaseResolve][obs.KindNone].Count; got != 2 {
		t.Errorf("resolve count = %d, want 2", got)
	}

	wantKinds := []obs.EventKind{
		obs.EvOpStart, obs.EvOpExec, obs.EvOpStart, obs.EvOpExec,
		obs.EvOpResolve, obs.EvOpStart, obs.EvOpAbandon, obs.EvOpResolve,
	}
	evs := sink.Events()
	if len(evs) != len(wantKinds) {
		t.Fatalf("events = %d, want %d", len(evs), len(wantKinds))
	}
	for i, ev := range evs {
		if ev.Kind != wantKinds[i] {
			t.Fatalf("event %d = %s, want %s", i, ev.Kind, wantKinds[i])
		}
	}
}

// TestObserveRecoverRebuildsHints crashes mid-operation and checks that
// recovery through the decorator re-derives the volatile kind hint, so
// the post-crash Exec is still attributed to the right op kind — and that
// the crash/recovery trace events appear.
func TestObserveRecoverRebuildsHints(t *testing.T) {
	raw, h := newObj(t, QueueType, 1)
	sink := obs.NewSink(obs.Config{RingSize: 64})
	obj := Observe(raw, sink, 1)

	if _, err := obj.Invoke(0, Op{Kind: Insert, Arg: 41}); err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if err := obj.Prep(0, Op{Kind: Remove}); err != nil {
		t.Fatalf("Prep: %v", err)
	}

	h.Crash(pmem.DropAll{})
	sink.Event(obs.EvCrash, -1, 0)
	obj.Recover()

	if op, _, ok := obj.Resolve(0); !ok || op.Kind != Remove {
		t.Fatalf("post-crash Resolve = %+v ok=%v", op, ok)
	}
	resp, err := obj.Exec(0)
	if err != nil {
		t.Fatalf("post-crash Exec: %v", err)
	}
	if resp.Kind != Val || resp.Val != 41 {
		t.Fatalf("post-crash Exec = %+v", resp)
	}

	snap := sink.Snapshot()
	if got := snap.Phases[obs.PhaseRecover][obs.KindNone].Count; got != 1 {
		t.Errorf("recover count = %d, want 1", got)
	}
	// The hint was rebuilt from the persistent image: the post-crash exec
	// must be attributed to the remove, not to KindNone.
	if got := snap.Phases[obs.PhaseExec][obs.KindRemove].Count; got != 1 {
		t.Errorf("post-crash exec attribution = %d, want 1 remove", got)
	}
	var crash, rbegin, rend bool
	for _, ev := range sink.Events() {
		switch ev.Kind {
		case obs.EvCrash:
			crash = true
		case obs.EvRecoverBegin:
			rbegin = true
		case obs.EvRecoverEnd:
			rend = true
		}
	}
	if !crash || !rbegin || !rend {
		t.Fatalf("missing recovery trace events: crash=%v begin=%v end=%v", crash, rbegin, rend)
	}
}
