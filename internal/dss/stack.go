package dss

import (
	"repro/internal/pmem"
	"repro/internal/spec"
	"repro/internal/stack"
)

// StackType is the DSS stack (stack.Stack) — the repository's second
// application of the paper's transformation — seen through the Object
// contract.
var StackType = Type{
	Name:      "stack",
	Code:      2,
	RootSlots: 1,
	New: func(h *pmem.Heap, rootSlot int, cfg Config) (Object, error) {
		s, err := stack.New(h, rootSlot, stack.Config{
			Threads:        cfg.Threads,
			NodesPerThread: cfg.NodesPerThread,
			ExtraNodes:     cfg.ExtraNodes,
		})
		if err != nil {
			return nil, err
		}
		return newStackObj(s, cfg.Threads), nil
	},
	Model:  func() spec.State { return spec.NewStack() },
	insert: spec.Push,
	remove: spec.Pop,
}

// stackObj adapts stack.Stack to Object, with the same volatile dispatch
// hint as queueObj (see its comment).
type stackObj struct {
	s    *stack.Stack
	last []Kind
}

func newStackObj(s *stack.Stack, threads int) *stackObj {
	return &stackObj{s: s, last: make([]Kind, threads)}
}

// Stack returns the adapted concrete stack (test and tooling access).
func (o *stackObj) Stack() *stack.Stack { return o.s }

func (o *stackObj) Prep(tid int, op Op) error {
	if op.Kind == Remove {
		o.s.PrepPop(tid)
	} else if err := o.s.PrepPush(tid, op.Arg); err != nil {
		return err
	}
	o.last[tid] = op.Kind
	return nil
}

func (o *stackObj) Exec(tid int) (Resp, error) {
	switch o.last[tid] {
	case Insert:
		o.s.ExecPush(tid)
		return Resp{Kind: Ack}, nil
	case Remove:
		if v, ok := o.s.ExecPop(tid); ok {
			return Resp{Kind: Val, Val: v}, nil
		}
		return Resp{Kind: Empty}, nil
	default:
		return Resp{}, nil
	}
}

func (o *stackObj) Resolve(tid int) (Op, Resp, bool) {
	r := o.s.Resolve(tid)
	switch r.Op {
	case stack.OpPush:
		resp := Resp{}
		if r.Executed {
			resp = Resp{Kind: Ack}
		}
		return Op{Kind: Insert, Arg: r.Arg}, resp, true
	case stack.OpPop:
		resp := Resp{}
		if r.Executed {
			if r.Empty {
				resp = Resp{Kind: Empty}
			} else {
				resp = Resp{Kind: Val, Val: r.Val}
			}
		}
		return Op{Kind: Remove}, resp, true
	default:
		return Op{}, Resp{}, false
	}
}

func (o *stackObj) Invoke(tid int, op Op) (Resp, error) {
	if op.Kind == Remove {
		if v, ok := o.s.Pop(tid); ok {
			return Resp{Kind: Val, Val: v}, nil
		}
		return Resp{Kind: Empty}, nil
	}
	if err := o.s.Push(tid, op.Arg); err != nil {
		return Resp{}, err
	}
	return Resp{Kind: Ack}, nil
}

func (o *stackObj) Abandon(tid int) {
	o.s.AbandonPrep(tid)
	o.last[tid] = None
}

func (o *stackObj) Recover() {
	o.s.Recover()
	o.refreshHints()
}

func (o *stackObj) ResetVolatile() {
	o.s.ResetVolatile()
	o.refreshHints()
}

func (o *stackObj) refreshHints() {
	for tid := range o.last {
		op, _, ok := o.Resolve(tid)
		if ok {
			o.last[tid] = op.Kind
		} else {
			o.last[tid] = None
		}
	}
}
