package dss

import (
	"fmt"

	"repro/internal/pmem"
	"repro/internal/reg"
	"repro/internal/spec"
)

// RegisterType is the detectable swap/CAS register (reg.Reg) seen
// through the Object contract. It is the first Keyed type: cas rides its
// expected value in Op.Key and answers in two words (success, witnessed
// value). It is not KeyRouted — the key is a comparison operand, not the
// name of a disjoint sub-object — so a sharded front must not scatter it.
var RegisterType = Type{
	Name:      "register",
	Code:      5,
	RootSlots: 1,
	New: func(h *pmem.Heap, rootSlot int, cfg Config) (Object, error) {
		g, err := reg.New(h, rootSlot, reg.Config{
			Threads:        cfg.Threads,
			NodesPerThread: cfg.NodesPerThread,
			ExtraNodes:     cfg.ExtraNodes,
		})
		if err != nil {
			return nil, err
		}
		return newRegObj(g, cfg.Threads), nil
	},
	Attach: func(h *pmem.Heap, rootSlot int, cfg Config) (Object, error) {
		g, err := reg.Attach(h, rootSlot)
		if err != nil {
			return nil, err
		}
		o := newRegObj(g, g.Threads())
		o.refreshHints()
		return o, nil
	},
	Model: func() spec.State { return spec.NewSwap(0) },
	Keyed: true,
	toSpec: func(op Op) spec.Op {
		switch op.Kind {
		case Read:
			return spec.Read()
		case Write:
			return spec.Write(op.Arg)
		case Swap:
			return spec.Swap(op.Arg)
		default: // CAS
			return spec.CAS(op.Key, op.Arg)
		}
	},
	fromSpec: func(op spec.Op) (Op, bool) {
		switch op.Sym {
		case "read":
			return Op{Kind: Read}, true
		case "write":
			return Op{Kind: Write, Arg: op.Arg}, true
		case "swap":
			return Op{Kind: Swap, Arg: op.Arg}, true
		case "cas":
			return Op{Kind: CAS, Key: op.Arg, Arg: op.Arg2}, true
		default:
			return Op{}, false
		}
	},
}

// regObj adapts reg.Reg to Object (see queueObj for the hint scheme).
type regObj struct {
	g    *reg.Reg
	last []Kind
}

func newRegObj(g *reg.Reg, threads int) *regObj {
	return &regObj{g: g, last: make([]Kind, threads)}
}

// Register returns the adapted concrete register (test and tooling
// access).
func (o *regObj) Register() *reg.Reg { return o.g }

func (o *regObj) Prep(tid int, op Op) error {
	var err error
	switch op.Kind {
	case Read:
		o.g.PrepRead(tid)
	case Write:
		err = o.g.PrepWrite(tid, op.Arg)
	case Swap:
		err = o.g.PrepSwap(tid, op.Arg)
	case CAS:
		err = o.g.PrepCAS(tid, op.Key, op.Arg)
	default:
		return fmt.Errorf("register: cannot prepare %v", op.Kind)
	}
	if err != nil {
		return err
	}
	o.last[tid] = op.Kind
	return nil
}

func (o *regObj) Exec(tid int) (Resp, error) {
	switch o.last[tid] {
	case Read:
		return Resp{Kind: Val, Val: o.g.ExecRead(tid)}, nil
	case Write:
		o.g.ExecWrite(tid)
		return Resp{Kind: Ack}, nil
	case Swap:
		return Resp{Kind: Val, Val: o.g.ExecSwap(tid)}, nil
	case CAS:
		ok, witness := o.g.ExecCAS(tid)
		if ok {
			return Resp{Kind: Val, Val: 1, Val2: witness}, nil
		}
		return Resp{Kind: Val, Val: 0, Val2: witness}, nil
	default:
		return Resp{}, nil
	}
}

func (o *regObj) Resolve(tid int) (Op, Resp, bool) {
	r := o.g.Resolve(tid)
	switch r.Op {
	case reg.OpRead:
		resp := Resp{}
		if r.Executed {
			resp = Resp{Kind: Val, Val: r.Val}
		}
		return Op{Kind: Read}, resp, true
	case reg.OpWrite:
		resp := Resp{}
		if r.Executed {
			resp = Resp{Kind: Ack}
		}
		return Op{Kind: Write, Arg: r.Arg}, resp, true
	case reg.OpSwap:
		resp := Resp{}
		if r.Executed {
			resp = Resp{Kind: Val, Val: r.Val}
		}
		return Op{Kind: Swap, Arg: r.Arg}, resp, true
	case reg.OpCAS:
		resp := Resp{}
		if r.Executed {
			resp = Resp{Kind: Val, Val: r.Val, Val2: r.Val2}
		}
		return Op{Kind: CAS, Key: r.Expect, Arg: r.Arg}, resp, true
	default:
		return Op{}, Resp{}, false
	}
}

func (o *regObj) Invoke(tid int, op Op) (Resp, error) {
	switch op.Kind {
	case Read:
		return Resp{Kind: Val, Val: o.g.Read(tid)}, nil
	case Write:
		if err := o.g.Write(tid, op.Arg); err != nil {
			return Resp{}, err
		}
		return Resp{Kind: Ack}, nil
	case Swap:
		prev, err := o.g.Swap(tid, op.Arg)
		if err != nil {
			return Resp{}, err
		}
		return Resp{Kind: Val, Val: prev}, nil
	case CAS:
		ok, witness, err := o.g.CAS(tid, op.Key, op.Arg)
		if err != nil {
			return Resp{}, err
		}
		if ok {
			return Resp{Kind: Val, Val: 1, Val2: witness}, nil
		}
		return Resp{Kind: Val, Val: 0, Val2: witness}, nil
	default:
		return Resp{}, fmt.Errorf("register: cannot invoke %v", op.Kind)
	}
}

func (o *regObj) Abandon(tid int) {
	o.g.AbandonPrep(tid)
	o.last[tid] = None
}

func (o *regObj) Recover() {
	o.g.Recover()
	o.refreshHints()
}

func (o *regObj) ResetVolatile() {
	o.g.ResetVolatile()
	o.refreshHints()
}

func (o *regObj) refreshHints() {
	for tid := range o.last {
		op, _, ok := o.Resolve(tid)
		if ok {
			o.last[tid] = op.Kind
		} else {
			o.last[tid] = None
		}
	}
}
