// Package check verifies concurrent histories against sequential
// specifications. It implements a Wing-Gong/Lowe-style linearizability
// search with state memoization, extended with the crash semantics of
// strict linearizability (Aguilera & Frølund), the correctness condition
// Theorem 1 claims for the DSS queue: an operation interrupted by a crash
// either takes effect before the crash or not at all.
//
// Combined with the spec package's D⟨T⟩ transformation, this yields a
// conformance checker for detectable objects: record a history of
// prep/exec/resolve calls (with crashes), and ask whether it is strictly
// linearizable with respect to D⟨queue⟩.
package check

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/spec"
)

// Call is one operation instance in a concurrent history.
type Call struct {
	// Proc is the calling process.
	Proc int
	// Op is the invoked operation.
	Op spec.Op
	// Ret is the response, meaningful only when HasRet.
	Ret spec.Resp
	// HasRet is false for operations that never returned (interrupted by
	// a crash): any response is acceptable if the operation linearizes.
	HasRet bool
	// Invoke and Return bound the operation's linearization window.
	// For an interrupted operation, Return is the crash time.
	Invoke int64
	Return int64
	// Optional marks a crash-interrupted operation: it may linearize
	// within its window or never take effect at all.
	Optional bool
}

// String renders the call for diagnostics.
func (c Call) String() string {
	ret := "?"
	if c.HasRet {
		ret = c.Ret.String()
	}
	opt := ""
	if c.Optional {
		opt = " (interrupted)"
	}
	return fmt.Sprintf("p%d: %s -> %s [%d,%d]%s", c.Proc, c.Op, ret, c.Invoke, c.Return, opt)
}

// Result reports a check outcome with a witness or counter-explanation.
type Result struct {
	// OK is true when the history is (strictly) linearizable.
	OK bool
	// Explored is the number of distinct search states visited.
	Explored int
}

// Linearizable reports whether hist is linearizable with respect to the
// sequential specification whose initial state is init. All calls must
// have HasRet set and Optional clear (use StrictlyLinearizable for crash
// histories).
func Linearizable(init spec.State, hist []Call) Result {
	return StrictlyLinearizable(init, hist)
}

// StrictlyLinearizable reports whether hist is strictly linearizable with
// respect to init: a total order of a subset of the calls (all mandatory
// calls, any subset of Optional calls) that extends the real-time order,
// is legal for the specification, and matches every recorded response.
func StrictlyLinearizable(init spec.State, hist []Call) Result {
	n := len(hist)
	if n > 64 {
		// One uint64 bitmask keeps the memo key compact; histories meant
		// for this checker are small by construction.
		panic(fmt.Sprintf("check: history too long (%d > 64 calls)", n))
	}
	ops := make([]Call, n)
	copy(ops, hist)
	sort.SliceStable(ops, func(i, j int) bool { return ops[i].Invoke < ops[j].Invoke })

	memo := map[string]bool{}
	explored := 0
	full := uint64(1)<<uint(n) - 1

	var search func(handled uint64, st spec.State) bool
	search = func(handled uint64, st spec.State) bool {
		if handled == full {
			return true
		}
		// Done when every mandatory call is handled.
		allMandatoryDone := true
		for i := 0; i < n; i++ {
			if handled&(1<<uint(i)) == 0 && !ops[i].Optional {
				allMandatoryDone = false
				break
			}
		}
		if allMandatoryDone {
			return true
		}
		key := fmt.Sprintf("%x|%s", handled, st.Key())
		if v, seen := memo[key]; seen {
			return v
		}
		explored++

		// minRet over unhandled mandatory calls bounds which calls may
		// linearize next without violating real-time order.
		minRet := int64(1) << 62
		for i := 0; i < n; i++ {
			if handled&(1<<uint(i)) == 0 && !ops[i].Optional && ops[i].Return < minRet {
				minRet = ops[i].Return
			}
		}
		ok := false
		for i := 0; i < n && !ok; i++ {
			bit := uint64(1) << uint(i)
			if handled&bit != 0 {
				continue
			}
			c := ops[i]
			if c.Invoke > minRet {
				break // sorted by Invoke: no later call can be a candidate
			}
			next, resp, enabled := st.Apply(c.Op, c.Proc)
			if !enabled {
				continue
			}
			if c.HasRet && resp != c.Ret {
				continue
			}
			// Linearizing c forces skipping every unhandled optional call
			// that ended before c began.
			nh := handled | bit
			for j := 0; j < n; j++ {
				jb := uint64(1) << uint(j)
				if nh&jb == 0 && ops[j].Optional && ops[j].Return < c.Invoke {
					nh |= jb
				}
			}
			ok = search(nh, next)
		}
		memo[key] = ok
		return ok
	}

	okAll := search(0, init)
	return Result{OK: okAll, Explored: explored}
}

// Recorder builds a history from concurrent workers. Begin/End are called
// by the workers themselves; CrashAll is called by the harness after all
// workers have unwound from a simulated crash.
type Recorder struct {
	mu    sync.Mutex
	clock int64
	done  []Call
	open  map[int]Call
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{open: map[int]Call{}}
}

// Begin records the invocation of op by proc. A proc has at most one open
// call.
func (r *Recorder) Begin(proc int, op spec.Op) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.open[proc]; dup {
		panic(fmt.Sprintf("check: proc %d began a call with one still open", proc))
	}
	r.clock++
	r.open[proc] = Call{Proc: proc, Op: op, Invoke: r.clock}
}

// End records proc's response for its open call.
func (r *Recorder) End(proc int, ret spec.Resp) {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.open[proc]
	if !ok {
		panic(fmt.Sprintf("check: proc %d ended a call it never began", proc))
	}
	delete(r.open, proc)
	r.clock++
	c.Return = r.clock
	c.Ret = ret
	c.HasRet = true
	r.done = append(r.done, c)
}

// CrashAll closes every open call as interrupted at the crash instant.
func (r *Recorder) CrashAll() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.clock++
	for proc, c := range r.open {
		c.Return = r.clock
		c.Optional = true
		r.done = append(r.done, c)
		delete(r.open, proc)
	}
}

// History returns the recorded calls. Open calls (if any) are excluded;
// call CrashAll or let workers finish first.
func (r *Recorder) History() []Call {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Call, len(r.done))
	copy(out, r.done)
	return out
}

// Len reports the number of completed (closed) calls.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.done)
}

// FormatHistory renders a history for failure messages.
func FormatHistory(hist []Call) string {
	var b strings.Builder
	for _, c := range hist {
		fmt.Fprintf(&b, "  %s\n", c)
	}
	return b.String()
}
