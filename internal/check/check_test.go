package check

import (
	"testing"

	"repro/internal/spec"
)

// h builds a completed call.
func h(proc int, op spec.Op, ret spec.Resp, inv, ret2 int64) Call {
	return Call{Proc: proc, Op: op, Ret: ret, HasRet: true, Invoke: inv, Return: ret2}
}

// hi builds an interrupted (optional, unknown-response) call.
func hi(proc int, op spec.Op, inv, crash int64) Call {
	return Call{Proc: proc, Op: op, Invoke: inv, Return: crash, Optional: true}
}

func TestSequentialRegisterHistory(t *testing.T) {
	hist := []Call{
		h(0, spec.Write(1), spec.AckResp(), 1, 2),
		h(0, spec.Read(), spec.ValResp(1), 3, 4),
	}
	if r := Linearizable(spec.NewRegister(0), hist); !r.OK {
		t.Fatalf("legal sequential history rejected:\n%s", FormatHistory(hist))
	}
}

func TestStaleReadRejected(t *testing.T) {
	hist := []Call{
		h(0, spec.Write(1), spec.AckResp(), 1, 2),
		h(0, spec.Read(), spec.ValResp(0), 3, 4), // stale: write already returned
	}
	if r := Linearizable(spec.NewRegister(0), hist); r.OK {
		t.Fatal("stale read accepted")
	}
}

func TestConcurrentReadMayGoEitherWay(t *testing.T) {
	// Read overlaps the write: both 0 and 1 are legal.
	for _, v := range []uint64{0, 1} {
		hist := []Call{
			h(0, spec.Write(1), spec.AckResp(), 1, 4),
			h(1, spec.Read(), spec.ValResp(v), 2, 3),
		}
		if r := Linearizable(spec.NewRegister(0), hist); !r.OK {
			t.Fatalf("concurrent read of %d rejected", v)
		}
	}
}

func TestQueueFIFOHistory(t *testing.T) {
	hist := []Call{
		h(0, spec.Enqueue(1), spec.AckResp(), 1, 2),
		h(0, spec.Enqueue(2), spec.AckResp(), 3, 4),
		h(1, spec.Dequeue(), spec.ValResp(1), 5, 6),
		h(1, spec.Dequeue(), spec.ValResp(2), 7, 8),
		h(1, spec.Dequeue(), spec.EmptyResp(), 9, 10),
	}
	if r := Linearizable(spec.NewQueue(), hist); !r.OK {
		t.Fatal("legal FIFO history rejected")
	}
}

func TestQueueReorderRejected(t *testing.T) {
	hist := []Call{
		h(0, spec.Enqueue(1), spec.AckResp(), 1, 2),
		h(0, spec.Enqueue(2), spec.AckResp(), 3, 4),
		h(1, spec.Dequeue(), spec.ValResp(2), 5, 6), // skips 1
	}
	if r := Linearizable(spec.NewQueue(), hist); r.OK {
		t.Fatal("FIFO violation accepted")
	}
}

func TestConcurrentEnqueuesEitherOrder(t *testing.T) {
	for _, firstOut := range []uint64{1, 2} {
		second := uint64(3) - firstOut
		hist := []Call{
			h(0, spec.Enqueue(1), spec.AckResp(), 1, 10),
			h(1, spec.Enqueue(2), spec.AckResp(), 2, 9),
			h(2, spec.Dequeue(), spec.ValResp(firstOut), 11, 12),
			h(2, spec.Dequeue(), spec.ValResp(second), 13, 14),
		}
		if r := Linearizable(spec.NewQueue(), hist); !r.OK {
			t.Fatalf("concurrent enqueue order %d-first rejected", firstOut)
		}
	}
}

func TestDuplicateDequeueRejected(t *testing.T) {
	hist := []Call{
		h(0, spec.Enqueue(1), spec.AckResp(), 1, 2),
		h(1, spec.Dequeue(), spec.ValResp(1), 3, 4),
		h(2, spec.Dequeue(), spec.ValResp(1), 3, 5),
	}
	if r := Linearizable(spec.NewQueue(), hist); r.OK {
		t.Fatal("duplicated value accepted")
	}
}

func TestInterruptedOpMayVanish(t *testing.T) {
	// Enqueue interrupted by a crash; later the queue reads empty.
	hist := []Call{
		hi(0, spec.Enqueue(1), 1, 2),
		h(1, spec.Dequeue(), spec.EmptyResp(), 3, 4),
	}
	if r := StrictlyLinearizable(spec.NewQueue(), hist); !r.OK {
		t.Fatal("vanishing interrupted enqueue rejected")
	}
}

func TestInterruptedOpMayTakeEffect(t *testing.T) {
	hist := []Call{
		hi(0, spec.Enqueue(1), 1, 2),
		h(1, spec.Dequeue(), spec.ValResp(1), 3, 4),
	}
	if r := StrictlyLinearizable(spec.NewQueue(), hist); !r.OK {
		t.Fatal("effective interrupted enqueue rejected")
	}
}

func TestInterruptedOpCannotLinearizeAfterCrash(t *testing.T) {
	// Strict linearizability: the interrupted enqueue may not take effect
	// after the crash, so a dequeue sequence EMPTY-then-value is illegal.
	hist := []Call{
		hi(0, spec.Enqueue(1), 1, 2),
		h(1, spec.Dequeue(), spec.EmptyResp(), 3, 4),
		h(1, spec.Dequeue(), spec.ValResp(1), 5, 6),
	}
	if r := StrictlyLinearizable(spec.NewQueue(), hist); r.OK {
		t.Fatal("late effect of interrupted op accepted (violates strict linearizability)")
	}
}

func TestDetectableHistoryFigure2a(t *testing.T) {
	// prep-write(1); exec-write(1); crash; resolve -> (write(1), OK).
	d := spec.Detectable(spec.NewRegister(0), 1)
	hist := []Call{
		h(0, spec.PrepOp(spec.Write(1)), spec.BottomResp(), 1, 2),
		h(0, spec.ExecOp(spec.Write(1)), spec.AckResp(), 3, 4),
		h(0, spec.ResolveOp(), spec.PairResp(true, spec.Write(1), spec.AckResp()), 6, 7),
	}
	if r := StrictlyLinearizable(d, hist); !r.OK {
		t.Fatal("Figure 2(a) rejected")
	}
}

func TestDetectableHistoryFigure2b(t *testing.T) {
	// Crash during exec: resolve may report ⊥ or OK, nothing else.
	d := spec.Detectable(spec.NewRegister(0), 1)
	for _, inner := range []spec.Resp{spec.BottomResp(), spec.AckResp()} {
		hist := []Call{
			h(0, spec.PrepOp(spec.Write(1)), spec.BottomResp(), 1, 2),
			hi(0, spec.ExecOp(spec.Write(1)), 3, 4),
			h(0, spec.ResolveOp(), spec.PairResp(true, spec.Write(1), inner), 5, 6),
		}
		if r := StrictlyLinearizable(d, hist); !r.OK {
			t.Fatalf("Figure 2(b) with %v rejected", inner)
		}
	}
	// A wrong value is rejected.
	hist := []Call{
		h(0, spec.PrepOp(spec.Write(1)), spec.BottomResp(), 1, 2),
		hi(0, spec.ExecOp(spec.Write(1)), 3, 4),
		h(0, spec.ResolveOp(), spec.PairResp(true, spec.Write(2), spec.BottomResp()), 5, 6),
	}
	if r := StrictlyLinearizable(d, hist); r.OK {
		t.Fatal("resolve reporting the wrong op accepted")
	}
}

func TestDetectableHistoryFigure2c(t *testing.T) {
	// Crash before exec: resolve must report (write(1), ⊥).
	d := spec.Detectable(spec.NewRegister(0), 1)
	hist := []Call{
		h(0, spec.PrepOp(spec.Write(1)), spec.BottomResp(), 1, 2),
		h(0, spec.ResolveOp(), spec.PairResp(true, spec.Write(1), spec.BottomResp()), 4, 5),
	}
	if r := StrictlyLinearizable(d, hist); !r.OK {
		t.Fatal("Figure 2(c) rejected")
	}
	bad := []Call{
		h(0, spec.PrepOp(spec.Write(1)), spec.BottomResp(), 1, 2),
		h(0, spec.ResolveOp(), spec.PairResp(true, spec.Write(1), spec.AckResp()), 4, 5),
	}
	if r := StrictlyLinearizable(d, bad); r.OK {
		t.Fatal("resolve claiming execution without exec accepted")
	}
}

func TestDetectableHistoryFigure2d(t *testing.T) {
	// Crash during prep: resolve returns (⊥, ⊥) or (write(1), ⊥).
	d := spec.Detectable(spec.NewRegister(0), 1)
	for _, pair := range []spec.Resp{
		spec.PairResp(false, spec.Op{}, spec.BottomResp()),
		spec.PairResp(true, spec.Write(1), spec.BottomResp()),
	} {
		hist := []Call{
			hi(0, spec.PrepOp(spec.Write(1)), 1, 2),
			h(0, spec.ResolveOp(), pair, 3, 4),
		}
		if r := StrictlyLinearizable(d, hist); !r.OK {
			t.Fatalf("Figure 2(d) with %v rejected", pair)
		}
	}
	bad := []Call{
		hi(0, spec.PrepOp(spec.Write(1)), 1, 2),
		h(0, spec.ResolveOp(), spec.PairResp(true, spec.Write(1), spec.AckResp()), 3, 4),
	}
	if r := StrictlyLinearizable(d, bad); r.OK {
		t.Fatal("crashed prep resolved as executed accepted")
	}
}

func TestResolveExecOrderingOnSameObject(t *testing.T) {
	// Section 2.2: a resolve cannot be reordered before an exec on the
	// same object when the exec returned first.
	d := spec.Detectable(spec.NewCounter(), 1)
	hist := []Call{
		h(0, spec.PrepOp(spec.Inc()), spec.BottomResp(), 1, 2),
		h(0, spec.ExecOp(spec.Inc()), spec.ValResp(0), 3, 4),
		h(0, spec.ResolveOp(), spec.PairResp(true, spec.Inc(), spec.BottomResp()), 5, 6),
	}
	if r := StrictlyLinearizable(d, hist); r.OK {
		t.Fatal("resolve reordered before completed exec accepted")
	}
}

func TestHistoryTooLongPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for oversized history")
		}
	}()
	long := make([]Call, 65)
	for i := range long {
		long[i] = h(0, spec.Read(), spec.ValResp(0), int64(2*i), int64(2*i+1))
	}
	StrictlyLinearizable(spec.NewRegister(0), long)
}

func TestRecorderBasics(t *testing.T) {
	r := NewRecorder()
	r.Begin(0, spec.Enqueue(1))
	r.End(0, spec.AckResp())
	r.Begin(1, spec.Dequeue())
	r.CrashAll()
	hist := r.History()
	if len(hist) != 2 {
		t.Fatalf("history has %d calls, want 2", len(hist))
	}
	var interrupted *Call
	for i := range hist {
		if hist[i].Optional {
			interrupted = &hist[i]
		}
	}
	if interrupted == nil || interrupted.Proc != 1 || interrupted.HasRet {
		t.Fatalf("crash interruption not recorded: %+v", hist)
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d", r.Len())
	}
}

func TestRecorderPanicsOnMisuse(t *testing.T) {
	r := NewRecorder()
	r.Begin(0, spec.Read())
	func() {
		defer func() {
			if recover() == nil {
				t.Error("double Begin did not panic")
			}
		}()
		r.Begin(0, spec.Read())
	}()
	r.End(0, spec.ValResp(0))
	defer func() {
		if recover() == nil {
			t.Error("End without Begin did not panic")
		}
	}()
	r.End(0, spec.ValResp(0))
}

func TestRealTimeOrderAcrossProcs(t *testing.T) {
	// p0's enqueue(1) completes before p1's enqueue(2) begins; a dequeue
	// returning 2 then 1 violates real-time order.
	hist := []Call{
		h(0, spec.Enqueue(1), spec.AckResp(), 1, 2),
		h(1, spec.Enqueue(2), spec.AckResp(), 3, 4),
		h(0, spec.Dequeue(), spec.ValResp(2), 5, 6),
		h(1, spec.Dequeue(), spec.ValResp(1), 7, 8),
	}
	if r := Linearizable(spec.NewQueue(), hist); r.OK {
		t.Fatal("real-time order violation accepted")
	}
}

func TestExploredCounter(t *testing.T) {
	hist := []Call{
		h(0, spec.Enqueue(1), spec.AckResp(), 1, 4),
		h(1, spec.Enqueue(2), spec.AckResp(), 2, 5),
		h(2, spec.Enqueue(3), spec.AckResp(), 3, 6),
	}
	r := Linearizable(spec.NewQueue(), hist)
	if !r.OK || r.Explored == 0 {
		t.Fatalf("unexpected result %+v", r)
	}
}
