package check

import (
	"fmt"
	"sort"
)

// Full LIFO linearizability checking is NP-hard in general, so — exactly
// as queuecheck.go does for FIFO histories — this file provides a
// polynomial-time *violation detector* for stack histories with distinct
// values: invented or duplicated values, pop-before-push, LIFO-order
// inversions over happens-before-ordered operations, and impossible
// EMPTYs. It never reports a false violation; it is the verifier behind
// the stack variant of the crash-storm soak, where conservation (every
// pushed value popped exactly once after the drain) closes the remaining
// gap.

// SOpKind classifies a stack-history operation.
type SOpKind int

const (
	// SPush is a completed (or resolved-as-effective) push.
	SPush SOpKind = iota + 1
	// SPop is a completed pop that returned a value.
	SPop
	// SPopEmpty is a completed pop that returned EMPTY.
	SPopEmpty
)

// SOp is one operation in a closed stack history (crash-interrupted
// operations must first be resolved, as with QOp).
type SOp struct {
	Kind SOpKind
	// Key is the routing key of the widened op contract (always zero in
	// container histories; see QOp.Key).
	Key uint64
	// V is the pushed or popped value (distinct across pushes).
	V uint64
	// Inv and Ret bound the operation's interval.
	Inv, Ret int64
}

// String renders the operation.
func (o SOp) String() string {
	switch o.Kind {
	case SPush:
		return fmt.Sprintf("push(%d)[%d,%d]", o.V, o.Inv, o.Ret)
	case SPop:
		return fmt.Sprintf("pop->%d[%d,%d]", o.V, o.Inv, o.Ret)
	case SPopEmpty:
		return fmt.Sprintf("pop->EMPTY[%d,%d]", o.Inv, o.Ret)
	default:
		return fmt.Sprintf("SOp(%d)", int(o.Kind))
	}
}

// shb reports whether a happens-before b (a returns before b is invoked).
func shb(a, b SOp) bool { return a.Ret < b.Inv }

// CheckStackHistory scans a closed stack history for violations and
// returns a description of each one found (nil means none of the checked
// patterns occurs).
func CheckStackHistory(ops []SOp) []string {
	var bad []string
	report := func(format string, args ...any) {
		bad = append(bad, fmt.Sprintf(format, args...))
	}

	pushes := map[uint64]SOp{}
	pops := map[uint64]SOp{}
	var empties []SOp
	for _, o := range ops {
		switch o.Kind {
		case SPush:
			if prev, dup := pushes[o.V]; dup {
				report("value %d pushed twice: %s and %s", o.V, prev, o)
				continue
			}
			pushes[o.V] = o
		case SPop:
			if prev, dup := pops[o.V]; dup {
				report("value %d popped twice: %s and %s", o.V, prev, o)
				continue
			}
			pops[o.V] = o
		case SPopEmpty:
			empties = append(empties, o)
		}
	}

	// Pattern 1: pops of values never pushed, or that certainly left the
	// stack before entering it.
	for v, p := range pops {
		e, ok := pushes[v]
		if !ok {
			report("value %d popped but never pushed: %s", v, p)
			continue
		}
		if shb(p, e) {
			report("pop returns before push begins for %d: %s vs %s", v, p, e)
		}
	}

	// Pattern 2: LIFO inversions. If push(a) <hb push(b) <hb pop->a, then
	// when the pop of a runs, b was certainly pushed above a — so the pop
	// may return a only if b was already popped by then. A history where
	// b is never popped, or popped only after pop->a returns, reached
	// below a newer resident value: a LIFO violation.
	values := make([]uint64, 0, len(pushes))
	for v := range pushes {
		values = append(values, v)
	}
	sort.Slice(values, func(i, j int) bool { return pushes[values[i]].Inv < pushes[values[j]].Inv })
	for _, a := range values {
		pa, aPopped := pops[a]
		if !aPopped {
			continue
		}
		for _, b := range values {
			if a == b {
				continue
			}
			if !shb(pushes[a], pushes[b]) || !shb(pushes[b], pa) {
				continue
			}
			pb, bPopped := pops[b]
			if !bPopped || shb(pa, pb) {
				report("LIFO violation: push(%d) then push(%d) both precede pop->%d, but %d was certainly still on top",
					a, b, a, b)
			}
		}
	}

	// Pattern 3: impossible EMPTYs. An EMPTY pop is a violation if some
	// value was certainly present throughout its interval: pushed before
	// the EMPTY began and not popped until after it returned.
	for _, em := range empties {
		for v, e := range pushes {
			if !shb(e, em) {
				continue
			}
			p, popped := pops[v]
			if !popped || shb(em, p) {
				report("EMPTY at %s while value %d was certainly present (push %s)", em, v, e)
				break
			}
		}
	}

	return bad
}
