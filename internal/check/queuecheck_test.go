package check

import (
	"math/rand"
	"testing"

	"repro/internal/spec"
)

func qe(v uint64, inv, ret int64) QOp { return QOp{Kind: QEnq, V: v, Inv: inv, Ret: ret} }
func qd(v uint64, inv, ret int64) QOp { return QOp{Kind: QDeq, V: v, Inv: inv, Ret: ret} }
func qem(inv, ret int64) QOp          { return QOp{Kind: QDeqEmpty, Inv: inv, Ret: ret} }

func TestQueueCheckAcceptsLegalSequential(t *testing.T) {
	ops := []QOp{
		qe(1, 1, 2), qe(2, 3, 4),
		qd(1, 5, 6), qd(2, 7, 8),
		qem(9, 10),
	}
	if bad := CheckQueueHistory(ops); len(bad) != 0 {
		t.Fatalf("legal history flagged: %v", bad)
	}
}

func TestQueueCheckDetectsInventedValue(t *testing.T) {
	ops := []QOp{qe(1, 1, 2), qd(2, 3, 4)}
	if bad := CheckQueueHistory(ops); len(bad) == 0 {
		t.Fatal("invented value not detected")
	}
}

func TestQueueCheckDetectsDoubleDequeue(t *testing.T) {
	ops := []QOp{qe(1, 1, 2), qd(1, 3, 4), qd(1, 5, 6)}
	if bad := CheckQueueHistory(ops); len(bad) == 0 {
		t.Fatal("double dequeue not detected")
	}
}

func TestQueueCheckDetectsDoubleEnqueue(t *testing.T) {
	ops := []QOp{qe(1, 1, 2), qe(1, 3, 4)}
	if bad := CheckQueueHistory(ops); len(bad) == 0 {
		t.Fatal("duplicate enqueue not detected")
	}
}

func TestQueueCheckDetectsDequeueBeforeEnqueue(t *testing.T) {
	ops := []QOp{qd(1, 1, 2), qe(1, 3, 4)}
	if bad := CheckQueueHistory(ops); len(bad) == 0 {
		t.Fatal("dequeue-before-enqueue not detected")
	}
}

func TestQueueCheckDetectsFIFOInversion(t *testing.T) {
	ops := []QOp{
		qe(1, 1, 2), qe(2, 3, 4),
		qd(2, 5, 6), qd(1, 7, 8),
	}
	if bad := CheckQueueHistory(ops); len(bad) == 0 {
		t.Fatal("FIFO inversion not detected")
	}
}

func TestQueueCheckDetectsOvertakenLostValue(t *testing.T) {
	ops := []QOp{
		qe(1, 1, 2), qe(2, 3, 4),
		qd(2, 5, 6), // 2 leaves while 1, enqueued strictly earlier, never does
	}
	if bad := CheckQueueHistory(ops); len(bad) == 0 {
		t.Fatal("overtaken value not detected")
	}
}

func TestQueueCheckDetectsImpossibleEmpty(t *testing.T) {
	ops := []QOp{
		qe(1, 1, 2),
		qem(3, 4), // 1 is certainly inside
		qd(1, 5, 6),
	}
	if bad := CheckQueueHistory(ops); len(bad) == 0 {
		t.Fatal("impossible EMPTY not detected")
	}
}

func TestQueueCheckAcceptsConcurrentAmbiguity(t *testing.T) {
	// Overlapping operations legitimately allow orders that would be
	// violations if sequential.
	ops := []QOp{
		qe(1, 1, 10), qe(2, 2, 9), // concurrent enqueues
		qd(2, 11, 12), qd(1, 13, 14), // either order fine
		qem(3, 15), // overlaps everything: the queue may have been empty early on
	}
	if bad := CheckQueueHistory(ops); len(bad) != 0 {
		t.Fatalf("legal concurrent history flagged: %v", bad)
	}
}

func TestHistoryToQueueOps(t *testing.T) {
	hist := []Call{
		h(0, spec.Enqueue(5), spec.AckResp(), 1, 2),
		h(1, spec.Dequeue(), spec.ValResp(5), 3, 4),
		h(1, spec.Dequeue(), spec.EmptyResp(), 5, 6),
	}
	ops, err := HistoryToQueueOps(hist)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 3 || ops[0].Kind != QEnq || ops[1].Kind != QDeq || ops[2].Kind != QDeqEmpty {
		t.Fatalf("conversion wrong: %+v", ops)
	}
	if _, err := HistoryToQueueOps([]Call{hi(0, spec.Enqueue(1), 1, 2)}); err == nil {
		t.Fatal("accepted unresolved interrupted call")
	}
	if _, err := HistoryToQueueOps([]Call{h(0, spec.ResolveOp(), spec.BottomResp(), 1, 2)}); err == nil {
		t.Fatal("accepted non-base operation")
	}
}

// genLegalHistory builds a random legal concurrent queue history: a
// random legal sequential execution is computed against the spec, then
// each operation's interval is stretched randomly around its
// linearization point without crossing another point of the same proc.
func genLegalHistory(rng *rand.Rand, nOps int) []QOp {
	var st spec.State = spec.NewQueue()
	type lin struct {
		op    QOp
		point int64
	}
	var lins []lin
	next := uint64(1)
	var point int64
	for i := 0; i < nOps; i++ {
		point += 10
		if rng.Intn(2) == 0 {
			v := next
			next++
			st2, _, _ := st.Apply(spec.Enqueue(v), 0)
			st = st2
			lins = append(lins, lin{qe(v, point, point), point})
		} else {
			st2, r, _ := st.Apply(spec.Dequeue(), 0)
			st = st2
			if r.Kind == spec.Empty {
				lins = append(lins, lin{qem(point, point), point})
			} else {
				lins = append(lins, lin{qd(r.V, point, point), point})
			}
		}
	}
	// Stretch intervals: invocation up to 9 before, return up to 9 after
	// the linearization point (points are 10 apart, so intervals may
	// overlap neighbours arbitrarily but always contain their point).
	out := make([]QOp, len(lins))
	for i, l := range lins {
		o := l.op
		o.Inv = l.point - int64(rng.Intn(10))
		o.Ret = l.point + int64(rng.Intn(10))
		out[i] = o
	}
	return out
}

// toCalls converts QOps to checker Calls for the WGL ground truth.
func toCalls(ops []QOp) []Call {
	out := make([]Call, 0, len(ops))
	for i, o := range ops {
		proc := i % 8 // procs are irrelevant for base queue ops
		switch o.Kind {
		case QEnq:
			out = append(out, Call{Proc: proc, Op: spec.Enqueue(o.V), Ret: spec.AckResp(), HasRet: true, Invoke: o.Inv, Return: o.Ret})
		case QDeq:
			out = append(out, Call{Proc: proc, Op: spec.Dequeue(), Ret: spec.ValResp(o.V), HasRet: true, Invoke: o.Inv, Return: o.Ret})
		case QDeqEmpty:
			out = append(out, Call{Proc: proc, Op: spec.Dequeue(), Ret: spec.EmptyResp(), HasRet: true, Invoke: o.Inv, Return: o.Ret})
		}
	}
	return out
}

// TestQueueCheckNoFalseAlarms: the detector must accept every generated
// legal history.
func TestQueueCheckNoFalseAlarms(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ops := genLegalHistory(rng, 4+rng.Intn(20))
		if bad := CheckQueueHistory(ops); len(bad) != 0 {
			t.Fatalf("seed %d: legal history flagged: %v\nops: %v", seed, bad, ops)
		}
	}
}

// TestQueueCheckDifferentialAgainstWGL mutates legal histories and
// compares the polynomial detector against the exact WGL checker in both
// directions: a flagged history must be WGL-rejected (soundness), and a
// WGL-rejected history must be flagged (empirical completeness over this
// distribution).
func TestQueueCheckDifferentialAgainstWGL(t *testing.T) {
	misses, total := 0, 0
	for seed := int64(0); seed < 400; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		ops := genLegalHistory(rng, 4+rng.Intn(10))
		if len(ops) == 0 {
			continue
		}
		// Mutate.
		switch rng.Intn(4) {
		case 0: // swap two dequeue values
			var dq []int
			for i, o := range ops {
				if o.Kind == QDeq {
					dq = append(dq, i)
				}
			}
			if len(dq) >= 2 {
				i, j := dq[rng.Intn(len(dq))], dq[rng.Intn(len(dq))]
				ops[i].V, ops[j].V = ops[j].V, ops[i].V
			}
		case 1: // retarget a dequeue to a random (often wrong) value
			for i, o := range ops {
				if o.Kind == QDeq {
					ops[i].V = o.V%3 + 1
					break
				}
			}
		case 2: // turn a value dequeue into EMPTY
			for i, o := range ops {
				if o.Kind == QDeq {
					ops[i] = qem(o.Inv, o.Ret)
					break
				}
			}
		case 3: // shrink an interval to sequentialize an inversion
			i := rng.Intn(len(ops))
			ops[i].Ret = ops[i].Inv
		}
		total++
		wgl := StrictlyLinearizable(spec.NewQueue(), toCalls(ops)).OK
		flagged := len(CheckQueueHistory(ops)) != 0
		if flagged && wgl {
			t.Fatalf("seed %d: detector flagged a WGL-legal history: %v\n%v",
				seed, CheckQueueHistory(ops), ops)
		}
		if !flagged && !wgl {
			misses++
			t.Logf("seed %d: WGL rejects but detector silent:\n%v", seed, ops)
		}
	}
	// The detector is a violation detector, not a decision procedure, but
	// over this mutation distribution it should catch essentially all
	// violations; a high miss rate means a pattern is missing.
	if misses > total/20 {
		t.Fatalf("detector missed %d/%d WGL-rejected histories", misses, total)
	}
}
