package check

import (
	"math/rand"
	"testing"

	"repro/internal/spec"
)

func mp(k, v uint64, inv, ret int64) MOp { return MOp{Kind: MPut, Key: k, V: v, Inv: inv, Ret: ret} }
func mg(k, v uint64, inv, ret int64) MOp { return MOp{Kind: MGet, Key: k, V: v, Inv: inv, Ret: ret} }
func mge(k uint64, inv, ret int64) MOp   { return MOp{Kind: MGetEmpty, Key: k, Inv: inv, Ret: ret} }
func md(k, v uint64, inv, ret int64) MOp { return MOp{Kind: MDel, Key: k, V: v, Inv: inv, Ret: ret} }
func mde(k uint64, inv, ret int64) MOp   { return MOp{Kind: MDelEmpty, Key: k, Inv: inv, Ret: ret} }
func mch(k, x, v uint64, inv, ret int64) MOp {
	return MOp{Kind: MCasHit, Key: k, X: x, W: x, V: v, Inv: inv, Ret: ret}
}
func mcm(k, x, v, w uint64, inv, ret int64) MOp {
	return MOp{Kind: MCasMissVal, Key: k, X: x, V: v, W: w, Inv: inv, Ret: ret}
}
func mce(k, x, v uint64, inv, ret int64) MOp {
	return MOp{Kind: MCasMissEmpty, Key: k, X: x, V: v, Inv: inv, Ret: ret}
}

func TestMapCheckAcceptsLegalSequential(t *testing.T) {
	ops := []MOp{
		mge(1, 1, 2),
		mp(1, 10, 3, 4),
		mp(2, 20, 5, 6),
		mg(1, 10, 7, 8),
		mch(1, 10, 11, 9, 10),
		mcm(1, 99, 12, 11, 11, 12),
		md(1, 11, 13, 14),
		mde(1, 15, 16),
		mce(1, 5, 13, 17, 18),
		mg(2, 20, 19, 20),
	}
	if bad := CheckMapHistory(ops); len(bad) != 0 {
		t.Fatalf("legal history flagged: %v", bad)
	}
}

func TestMapCheckDetectsInventedValue(t *testing.T) {
	ops := []MOp{mp(1, 10, 1, 2), mg(1, 11, 3, 4)}
	if bad := CheckMapHistory(ops); len(bad) == 0 {
		t.Fatal("invented value not detected")
	}
}

func TestMapCheckDetectsCrossKeyLeak(t *testing.T) {
	// Value 10 lives at key 1; observing it at key 2 is a violation even
	// though it exists somewhere.
	ops := []MOp{mp(1, 10, 1, 2), mg(2, 10, 3, 4)}
	if bad := CheckMapHistory(ops); len(bad) == 0 {
		t.Fatal("cross-key leak not detected")
	}
}

func TestMapCheckDetectsDoubleDelete(t *testing.T) {
	ops := []MOp{mp(1, 10, 1, 2), md(1, 10, 3, 4), md(1, 10, 5, 6)}
	if bad := CheckMapHistory(ops); len(bad) == 0 {
		t.Fatal("exactly-once delete violation not detected")
	}
}

func TestMapCheckDetectsObservationAfterDelete(t *testing.T) {
	ops := []MOp{mp(1, 10, 1, 2), md(1, 10, 3, 4), mg(1, 10, 5, 6)}
	if bad := CheckMapHistory(ops); len(bad) == 0 {
		t.Fatal("observation after delete not detected")
	}
}

func TestMapCheckDetectsStaleObservation(t *testing.T) {
	ops := []MOp{mp(1, 10, 1, 2), mp(1, 11, 3, 4), mg(1, 10, 5, 6)}
	if bad := CheckMapHistory(ops); len(bad) == 0 {
		t.Fatal("stale observation after overwrite not detected")
	}
}

func TestMapCheckDetectsImpossibleEmpty(t *testing.T) {
	ops := []MOp{mp(1, 10, 1, 2), mge(1, 3, 4), md(1, 10, 5, 6)}
	if bad := CheckMapHistory(ops); len(bad) == 0 {
		t.Fatal("impossible EMPTY not detected")
	}
}

func TestMapCheckAcceptsEmptyAfterPossibleDelete(t *testing.T) {
	// The delete overlaps the EMPTY get, so the key may have been absent.
	ops := []MOp{mp(1, 10, 1, 2), md(1, 10, 3, 8), mge(1, 4, 7)}
	if bad := CheckMapHistory(ops); len(bad) != 0 {
		t.Fatalf("legal overlapping history flagged: %v", bad)
	}
}

func TestMapCheckDetectsInconsistentMcas(t *testing.T) {
	if bad := CheckMapHistory([]MOp{{Kind: MCasMissVal, Key: 1, X: 5, W: 5, Inv: 1, Ret: 2}}); len(bad) == 0 {
		t.Fatal("mcas-miss witnessing its expected value not detected")
	}
	if bad := CheckMapHistory([]MOp{mp(1, 7, 1, 2), {Kind: MCasHit, Key: 1, X: 7, W: 3, V: 8, Inv: 3, Ret: 4}}); len(bad) == 0 {
		t.Fatal("mcas-hit witnessing a foreign value not detected")
	}
}

func TestMapCheckKeysAreIndependent(t *testing.T) {
	// Interleaved operations on independent keys must not interfere:
	// key 2's overwrites do not stale key 1's reads.
	ops := []MOp{
		mp(1, 10, 1, 2),
		mp(2, 20, 3, 4),
		mp(2, 21, 5, 6),
		mg(1, 10, 7, 8),
		md(2, 21, 9, 10),
		mg(1, 10, 11, 12),
	}
	if bad := CheckMapHistory(ops); len(bad) != 0 {
		t.Fatalf("independent keys flagged: %v", bad)
	}
}

func TestHistoryToMapOps(t *testing.T) {
	hist := []Call{
		h(0, spec.Put(1, 10), spec.AckResp(), 1, 2),
		h(1, spec.Get(1), spec.ValResp(10), 3, 4),
		h(1, spec.MCAS(1, 10, 11), spec.ValResp2(1, 10), 5, 6),
		h(0, spec.MCAS(1, 99, 12), spec.ValResp2(0, 11), 7, 8),
		h(0, spec.MCAS(2, 5, 13), spec.ValResp2(0, 0), 9, 10),
		h(0, spec.Del(1), spec.ValResp(11), 11, 12),
		h(0, spec.Get(1), spec.EmptyResp(), 13, 14),
	}
	ops, err := HistoryToMapOps(hist)
	if err != nil {
		t.Fatal(err)
	}
	wantKinds := []MOpKind{MPut, MGet, MCasHit, MCasMissVal, MCasMissEmpty, MDel, MGetEmpty}
	if len(ops) != len(wantKinds) {
		t.Fatalf("conversion wrong: %+v", ops)
	}
	for i, k := range wantKinds {
		if ops[i].Kind != k {
			t.Fatalf("op %d: kind %d, want %d (%+v)", i, ops[i].Kind, k, ops[i])
		}
	}
	if bad := CheckMapHistory(ops); len(bad) != 0 {
		t.Fatalf("legal converted history flagged: %v", bad)
	}
	if _, err := HistoryToMapOps([]Call{hi(0, spec.Put(1, 1), 1, 2)}); err == nil {
		t.Fatal("accepted unresolved interrupted call")
	}
	if _, err := HistoryToMapOps([]Call{h(0, spec.Enqueue(1), spec.AckResp(), 1, 2)}); err == nil {
		t.Fatal("accepted a queue operation")
	}
}

// genLegalMapHistory builds a random legal concurrent map history over a
// small key universe, exactly as genLegalHistory does for queues.
func genLegalMapHistory(rng *rand.Rand, nOps int) []MOp {
	var st spec.State = spec.NewMap()
	cur := map[uint64]uint64{}
	type lin struct {
		op    MOp
		point int64
	}
	var lins []lin
	next := uint64(1)
	var point int64
	for i := 0; i < nOps; i++ {
		point += 10
		k := uint64(rng.Intn(3) + 1)
		switch rng.Intn(4) {
		case 0:
			v := next
			next++
			st2, _, _ := st.Apply(spec.Put(k, v), 0)
			st = st2
			cur[k] = v
			lins = append(lins, lin{mp(k, v, point, point), point})
		case 1:
			st2, r, _ := st.Apply(spec.Get(k), 0)
			st = st2
			if r.Kind == spec.Empty {
				lins = append(lins, lin{mge(k, point, point), point})
			} else {
				lins = append(lins, lin{mg(k, r.V, point, point), point})
			}
		case 2:
			st2, r, _ := st.Apply(spec.Del(k), 0)
			st = st2
			if r.Kind == spec.Empty {
				lins = append(lins, lin{mde(k, point, point), point})
			} else {
				delete(cur, k)
				lins = append(lins, lin{md(k, r.V, point, point), point})
			}
		default:
			v := next
			next++
			exp := cur[k]
			if rng.Intn(2) == 0 {
				exp = next + 1_000_000 // certain miss
			}
			st2, r, _ := st.Apply(spec.MCAS(k, exp, v), 0)
			st = st2
			switch {
			case r.V == 1:
				cur[k] = v
				lins = append(lins, lin{mch(k, exp, v, point, point), point})
			case r.V2 == 0:
				lins = append(lins, lin{mce(k, exp, v, point, point), point})
			default:
				lins = append(lins, lin{mcm(k, exp, v, r.V2, point, point), point})
			}
		}
	}
	out := make([]MOp, len(lins))
	for i, l := range lins {
		o := l.op
		o.Inv = l.point - int64(rng.Intn(10))
		o.Ret = l.point + int64(rng.Intn(10))
		out[i] = o
	}
	return out
}

// toMapCalls converts MOps to checker Calls for the WGL ground truth.
func toMapCalls(ops []MOp) []Call {
	out := make([]Call, 0, len(ops))
	for i, o := range ops {
		proc := i % 8
		c := Call{Proc: proc, HasRet: true, Invoke: o.Inv, Return: o.Ret}
		switch o.Kind {
		case MPut:
			c.Op, c.Ret = spec.Put(o.Key, o.V), spec.AckResp()
		case MGet:
			c.Op, c.Ret = spec.Get(o.Key), spec.ValResp(o.V)
		case MGetEmpty:
			c.Op, c.Ret = spec.Get(o.Key), spec.EmptyResp()
		case MDel:
			c.Op, c.Ret = spec.Del(o.Key), spec.ValResp(o.V)
		case MDelEmpty:
			c.Op, c.Ret = spec.Del(o.Key), spec.EmptyResp()
		case MCasHit:
			c.Op, c.Ret = spec.MCAS(o.Key, o.X, o.V), spec.ValResp2(1, o.W)
		case MCasMissVal:
			c.Op, c.Ret = spec.MCAS(o.Key, o.X, o.V), spec.ValResp2(0, o.W)
		case MCasMissEmpty:
			c.Op, c.Ret = spec.MCAS(o.Key, o.X, o.V), spec.ValResp2(0, 0)
		}
		out = append(out, c)
	}
	return out
}

// TestMapCheckNoFalseAlarms: the detector must accept every generated
// legal history.
func TestMapCheckNoFalseAlarms(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ops := genLegalMapHistory(rng, 4+rng.Intn(20))
		if bad := CheckMapHistory(ops); len(bad) != 0 {
			t.Fatalf("seed %d: legal history flagged: %v\nops: %v", seed, bad, ops)
		}
	}
}

// TestMapCheckDifferentialAgainstWGL mutates legal histories and
// compares the polynomial detector against the exact WGL checker in
// both directions, exactly as the queue and stack differentials do.
func TestMapCheckDifferentialAgainstWGL(t *testing.T) {
	misses, total := 0, 0
	for seed := int64(0); seed < 400; seed++ {
		rng := rand.New(rand.NewSource(3000 + seed))
		ops := genLegalMapHistory(rng, 4+rng.Intn(10))
		if len(ops) == 0 {
			continue
		}
		switch rng.Intn(5) {
		case 0: // swap two get values
			var gd []int
			for i, o := range ops {
				if o.Kind == MGet {
					gd = append(gd, i)
				}
			}
			if len(gd) >= 2 {
				i, j := gd[rng.Intn(len(gd))], gd[rng.Intn(len(gd))]
				ops[i].V, ops[j].V = ops[j].V, ops[i].V
			}
		case 1: // move an observation to a different key
			for i, o := range ops {
				if o.Kind == MGet || o.Kind == MDel {
					ops[i].Key = o.Key%3 + 1
					break
				}
			}
		case 2: // turn a value answer into EMPTY
			for i, o := range ops {
				if o.Kind == MGet {
					ops[i] = mge(o.Key, o.Inv, o.Ret)
					break
				} else if o.Kind == MDel {
					ops[i] = mde(o.Key, o.Inv, o.Ret)
					break
				}
			}
		case 3: // duplicate a delete (exactly-once violation)
			for _, o := range ops {
				if o.Kind == MDel {
					dup := o
					dup.Inv, dup.Ret = o.Ret+1, o.Ret+2
					ops = append(ops, dup)
					break
				}
			}
		case 4: // shrink an interval to sequentialize an inversion
			i := rng.Intn(len(ops))
			ops[i].Ret = ops[i].Inv
		}
		total++
		wgl := StrictlyLinearizable(spec.NewMap(), toMapCalls(ops)).OK
		flagged := len(CheckMapHistory(ops)) != 0
		if flagged && wgl {
			t.Fatalf("seed %d: detector flagged a WGL-legal history: %v\n%v",
				seed, CheckMapHistory(ops), ops)
		}
		if !flagged && !wgl {
			misses++
			t.Logf("seed %d: WGL rejects but detector silent:\n%v", seed, ops)
		}
	}
	if misses > total/20 {
		t.Fatalf("detector missed %d/%d WGL-rejected histories", misses, total)
	}
}
