package check

import (
	"fmt"

	"repro/internal/spec"
)

// Polynomial-time violation detector for hash-map histories with
// globally distinct stored values, companion to regcheck.go. A map
// history factors by key — distinct keys name disjoint sub-objects —
// and each key's sub-history is a register-like cell with an ABSENT
// state: put installs (overwriting silently, like write), successful
// delete and mcas witness the value they consume, get and failed mcas
// observe. Per key the detector checks last-writer-wins integrity
// (duplicate installs, duplicate consumptions, stale or premature
// observations, chain order against real time) and key presence
// (EMPTY answers while the key was certainly present, value answers
// while it was certainly absent). Exactly-once deletion is the
// duplicate-consumption pattern: with distinct values, no value may be
// witnessed leaving the map twice. It never reports a false violation;
// completeness is established differentially against the WGL checker
// in mapcheck_test.go.

// MOpKind classifies a map-history operation.
type MOpKind int

const (
	// MPut is a completed put(k, v): installs v at k (insert or silent
	// overwrite), making k present.
	MPut MOpKind = iota + 1
	// MGet is a completed get(k) that returned a value.
	MGet
	// MGetEmpty is a completed get(k) that found k absent.
	MGetEmpty
	// MDel is a completed delete(k) → v: witnesses (and removes) v,
	// making k absent.
	MDel
	// MDelEmpty is a completed delete(k) that found k absent.
	MDelEmpty
	// MCasHit is a completed mcas(k, x, v) → (1, x): installs v,
	// witnessing (and displacing) the expected x; k stays present.
	MCasHit
	// MCasMissVal is a completed mcas(k, x, v) → (0, w): observes the
	// current value w ≠ x.
	MCasMissVal
	// MCasMissEmpty is a completed mcas(k, x, v) → (0, 0) on an absent
	// key.
	MCasMissEmpty
)

// MOp is one operation in a closed map history (crash-interrupted
// operations must first be resolved). Stored values are distinct and
// nonzero across the whole history; keys start absent.
type MOp struct {
	Kind MOpKind
	// Key is the key operated on.
	Key uint64
	// V is the installed value (put/mcas-hit), the value returned
	// (get/del), or the value the mcas attempted to install (miss).
	V uint64
	// W is the witnessed value (mcas-hit: the displaced expected;
	// mcas-miss: the observed current).
	W uint64
	// X is the mcas's expected value.
	X uint64
	// Inv and Ret bound the operation's interval.
	Inv, Ret int64
}

// String renders the operation.
func (o MOp) String() string {
	switch o.Kind {
	case MPut:
		return fmt.Sprintf("put(%d,%d)[%d,%d]", o.Key, o.V, o.Inv, o.Ret)
	case MGet:
		return fmt.Sprintf("get(%d)->%d[%d,%d]", o.Key, o.V, o.Inv, o.Ret)
	case MGetEmpty:
		return fmt.Sprintf("get(%d)->EMPTY[%d,%d]", o.Key, o.Inv, o.Ret)
	case MDel:
		return fmt.Sprintf("del(%d)->%d[%d,%d]", o.Key, o.V, o.Inv, o.Ret)
	case MDelEmpty:
		return fmt.Sprintf("del(%d)->EMPTY[%d,%d]", o.Key, o.Inv, o.Ret)
	case MCasHit:
		return fmt.Sprintf("mcas(%d,%d,%d)->ok[%d,%d]", o.Key, o.X, o.V, o.Inv, o.Ret)
	case MCasMissVal:
		return fmt.Sprintf("mcas(%d,%d,%d)->%d[%d,%d]", o.Key, o.X, o.V, o.W, o.Inv, o.Ret)
	case MCasMissEmpty:
		return fmt.Sprintf("mcas(%d,%d,%d)->EMPTY[%d,%d]", o.Key, o.X, o.V, o.Inv, o.Ret)
	default:
		return fmt.Sprintf("MOp(%d)", int(o.Kind))
	}
}

// installs reports the value o installs at its key, if any.
func (o MOp) installs() (uint64, bool) {
	switch o.Kind {
	case MPut, MCasHit:
		return o.V, true
	}
	return 0, false
}

// witnesses reports the value o witnessed as consumed, if any.
func (o MOp) witnesses() (uint64, bool) {
	switch o.Kind {
	case MDel:
		return o.V, true
	case MCasHit:
		return o.W, true
	}
	return 0, false
}

// observes reports the present-value observation o makes, if any.
func (o MOp) observes() (uint64, bool) {
	switch o.Kind {
	case MGet, MDel:
		return o.V, true
	case MCasHit, MCasMissVal:
		return o.W, true
	}
	return 0, false
}

// absent reports whether o observed its key as absent.
func (o MOp) absent() bool {
	switch o.Kind {
	case MGetEmpty, MDelEmpty, MCasMissEmpty:
		return true
	}
	return false
}

// mhb reports whether a happens-before b.
func mhb(a, b MOp) bool { return a.Ret < b.Inv }

// CheckMapHistory scans a closed map history for violations and returns
// a description of each one found (nil means none of the checked
// patterns occurs).
func CheckMapHistory(ops []MOp) []string {
	var bad []string
	report := func(format string, args ...any) {
		bad = append(bad, fmt.Sprintf(format, args...))
	}

	// Factor by key; values are globally distinct, so the install and
	// consumption indexes are global (a value observed under the wrong
	// key is then caught as never-installed-at-that-key).
	byKey := map[uint64][]int{}
	installs := map[uint64]map[uint64]int{} // key → value → op index
	consumes := map[uint64]map[uint64]int{}
	for i, o := range ops {
		byKey[o.Key] = append(byKey[o.Key], i)
		if o.Kind == MCasMissVal && o.W == o.X {
			report("mcas-miss witnessing its own expected value: %s", o)
		}
		if o.Kind == MCasHit && o.W != o.X {
			report("mcas-hit witnessing %d instead of its expected value: %s", o.W, o)
		}
		if v, ok := o.installs(); ok {
			if v == 0 {
				report("install of the reserved value 0: %s", o)
				continue
			}
			if installs[o.Key] == nil {
				installs[o.Key] = map[uint64]int{}
			}
			if j, dup := installs[o.Key][v]; dup {
				report("value %d installed twice at key %d: %s and %s", v, o.Key, ops[j], o)
				continue
			}
			installs[o.Key][v] = i
		}
		if w, ok := o.witnesses(); ok {
			if v, inst := o.installs(); inst && w == v {
				report("self-displacement: %s witnesses the value it installs", o)
				continue
			}
			if consumes[o.Key] == nil {
				consumes[o.Key] = map[uint64]int{}
			}
			if j, dup := consumes[o.Key][w]; dup {
				report("value %d consumed twice at key %d (exactly-once violation): %s and %s",
					w, o.Key, ops[j], o)
				continue
			}
			consumes[o.Key][w] = i
		}
	}

	for key, idxs := range byKey {
		kInst := installs[key]
		kCons := consumes[key]

		// Successful deletes make the key absent; they bound the
		// absent-observation pattern below.
		var dels []MOp
		for _, i := range idxs {
			if ops[i].Kind == MDel {
				dels = append(dels, ops[i])
			}
		}

		for _, i := range idxs {
			o := ops[i]

			if v, ok := o.observes(); ok {
				j, installed := kInst[v]
				if !installed {
					report("value %d observed at key %d but never installed there: %s", v, key, o)
					continue
				}
				inst := ops[j]
				if mhb(o, inst) {
					report("observation returns before install begins for %d at key %d: %s vs %s",
						v, key, o, inst)
					continue
				}
				if j, consumed := kCons[v]; consumed && j != i && mhb(ops[j], o) {
					report("value %d observed at key %d after its consumption: %s then %s",
						v, key, ops[j], o)
					continue
				}
				stale := false
				for _, j := range kInst {
					b := ops[j]
					if bv, _ := b.installs(); bv == v {
						continue
					}
					if mhb(inst, b) && mhb(b, o) {
						report("stale observation at key %d: %s certainly overwrote %d before %s",
							key, b, v, o)
						stale = true
						break
					}
				}
				if stale {
					continue
				}
			}

			// Absent answers: a violation if some install certainly
			// preceded this observation and no successful delete can
			// linearize between them.
			if o.absent() {
				for _, j := range kInst {
					inst := ops[j]
					if !mhb(inst, o) {
						continue
					}
					possible := false
					for _, d := range dels {
						if !mhb(d, inst) && !mhb(o, d) {
							possible = true
							break
						}
					}
					if !possible {
						report("EMPTY at %s while key %d was certainly present (install %s)",
							o, key, inst)
						break
					}
				}
			}
		}

		// Chain-order consistency along witness edges, per key (the
		// analogue of the register's displacement chain; put breaks the
		// chain, so segments are followed independently).
		succ := map[uint64]uint64{}
		for _, i := range idxs {
			o := ops[i]
			if o.Kind == MCasHit {
				succ[o.W] = o.V
			}
		}
		for u := range succ {
			iu, okU := kInst[u]
			if !okU {
				continue
			}
			for v, steps := succ[u], 0; steps < len(succ); steps++ {
				iv, okV := kInst[v]
				if !okV {
					break
				}
				if mhb(ops[iv], ops[iu]) {
					report("chain order at key %d contradicts real time: %d reaches %d but %s precedes %s",
						key, u, v, ops[iv], ops[iu])
				}
				v2, more := succ[v]
				if !more {
					break
				}
				v = v2
			}
		}
	}

	return bad
}

// HistoryToMapOps converts a recorded (closed) history of base map
// operations into MOps for the polynomial detector.
func HistoryToMapOps(hist []Call) ([]MOp, error) {
	out := make([]MOp, 0, len(hist))
	for _, c := range hist {
		if c.Optional || !c.HasRet {
			return nil, fmt.Errorf("check: history not closed: %s", c)
		}
		if c.Op.Kind != spec.Base {
			return nil, fmt.Errorf("check: non-base operation in map history: %s", c)
		}
		switch c.Op.Sym {
		case "put":
			out = append(out, MOp{Kind: MPut, Key: c.Op.Arg, V: c.Op.Arg2, Inv: c.Invoke, Ret: c.Return})
		case "get":
			if c.Ret.Kind == spec.Empty {
				out = append(out, MOp{Kind: MGetEmpty, Key: c.Op.Arg, Inv: c.Invoke, Ret: c.Return})
			} else {
				out = append(out, MOp{Kind: MGet, Key: c.Op.Arg, V: c.Ret.V, Inv: c.Invoke, Ret: c.Return})
			}
		case "del":
			if c.Ret.Kind == spec.Empty {
				out = append(out, MOp{Kind: MDelEmpty, Key: c.Op.Arg, Inv: c.Invoke, Ret: c.Return})
			} else {
				out = append(out, MOp{Kind: MDel, Key: c.Op.Arg, V: c.Ret.V, Inv: c.Invoke, Ret: c.Return})
			}
		case "mcas":
			exp, newV := spec.UnpackCAS(c.Op.Arg2)
			m := MOp{Kind: MCasMissVal, Key: c.Op.Arg, V: newV, W: c.Ret.V2, X: exp, Inv: c.Invoke, Ret: c.Return}
			switch {
			case c.Ret.V == 1:
				m.Kind = MCasHit
			case c.Ret.V2 == 0:
				m.Kind = MCasMissEmpty
				m.W = 0
			}
			out = append(out, m)
		default:
			return nil, fmt.Errorf("check: unknown map operation %q", c.Op.Sym)
		}
	}
	return out, nil
}
