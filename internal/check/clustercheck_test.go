package check

import (
	"strings"
	"testing"
)

func pq(kind QOpKind, v uint64, inv, ret int64, srv, shard int) PlacedQOp {
	return PlacedQOp{QOp: QOp{Kind: kind, V: v, Inv: inv, Ret: ret}, At: Placement{srv, shard}}
}

func pqEmpty(inv, ret int64) PlacedQOp {
	return PlacedQOp{QOp: QOp{Kind: QDeqEmpty, Inv: inv, Ret: ret}, At: NoPlacement}
}

// TestClusterQueueCleanRelaxedHistory: cross-shard overtaking is legal
// (no violation), but it is measured.
func TestClusterQueueCleanRelaxedHistory(t *testing.T) {
	ops := []PlacedQOp{
		pq(QEnq, 1, 0, 1, 0, 0),
		pq(QEnq, 2, 2, 3, 1, 0), // inserted after 1, on another server
		pq(QDeq, 2, 4, 5, 1, 0), // removed before 1: overtaking, k-relaxed OK
		pq(QDeq, 1, 6, 7, 0, 0),
	}
	rep := CheckClusterQueueHistory(ops)
	if len(rep.Violations) != 0 {
		t.Fatalf("clean relaxed history reported: %v", rep.Violations)
	}
	if rep.MaxOvertake != 1 {
		t.Fatalf("MaxOvertake = %d, want 1", rep.MaxOvertake)
	}
	if rep.Shards != 2 {
		t.Fatalf("Shards = %d, want 2", rep.Shards)
	}
}

// TestClusterQueueViolations: every global pattern and the per-shard
// projection must fire (the checker is not vacuous).
func TestClusterQueueViolations(t *testing.T) {
	cases := []struct {
		name string
		ops  []PlacedQOp
		want string
	}{
		{
			"duplicate insert",
			[]PlacedQOp{pq(QEnq, 1, 0, 1, 0, 0), pq(QEnq, 1, 2, 3, 1, 0)},
			"inserted twice",
		},
		{
			"duplicate remove",
			[]PlacedQOp{
				pq(QEnq, 1, 0, 1, 0, 0),
				pq(QDeq, 1, 2, 3, 0, 0), pq(QDeq, 1, 4, 5, 0, 0),
			},
			"removed twice",
		},
		{
			"invented value",
			[]PlacedQOp{pq(QDeq, 9, 0, 1, 0, 0)},
			"never inserted",
		},
		{
			"remove before insert",
			[]PlacedQOp{pq(QDeq, 1, 0, 1, 0, 0), pq(QEnq, 1, 2, 3, 0, 0)},
			"remove returns before insert begins",
		},
		{
			"migrated value",
			[]PlacedQOp{pq(QEnq, 1, 0, 1, 0, 0), pq(QDeq, 1, 2, 3, 1, 1)},
			"migrated",
		},
		{
			"impossible cluster EMPTY",
			[]PlacedQOp{pq(QEnq, 1, 0, 1, 0, 0), pqEmpty(2, 3), pq(QDeq, 1, 4, 5, 0, 0)},
			"certainly present",
		},
		{
			"per-shard FIFO inversion",
			[]PlacedQOp{
				pq(QEnq, 1, 0, 1, 0, 0), pq(QEnq, 2, 2, 3, 0, 0),
				pq(QDeq, 2, 4, 5, 0, 0), pq(QDeq, 1, 6, 7, 0, 0),
			},
			"FIFO violation",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep := CheckClusterQueueHistory(tc.ops)
			if len(rep.Violations) == 0 {
				t.Fatalf("no violation reported, want %q", tc.want)
			}
			if !strings.Contains(strings.Join(rep.Violations, "\n"), tc.want) {
				t.Fatalf("violations %v do not mention %q", rep.Violations, tc.want)
			}
		})
	}
}

func ps(kind SOpKind, v uint64, inv, ret int64, srv, shard int) PlacedSOp {
	return PlacedSOp{SOp: SOp{Kind: kind, V: v, Inv: inv, Ret: ret}, At: Placement{srv, shard}}
}

// TestClusterStackViolations mirrors the queue non-vacuity cases for the
// stack checker, including the per-shard LIFO projection.
func TestClusterStackViolations(t *testing.T) {
	cases := []struct {
		name string
		ops  []PlacedSOp
		want string
	}{
		{
			"duplicate push",
			[]PlacedSOp{ps(SPush, 1, 0, 1, 0, 0), ps(SPush, 1, 2, 3, 1, 0)},
			"pushed twice",
		},
		{
			"invented value",
			[]PlacedSOp{ps(SPop, 9, 0, 1, 0, 0)},
			"never pushed",
		},
		{
			"migrated value",
			[]PlacedSOp{ps(SPush, 1, 0, 1, 0, 0), ps(SPop, 1, 2, 3, 0, 1)},
			"migrated",
		},
		{
			"impossible cluster EMPTY",
			[]PlacedSOp{
				ps(SPush, 1, 0, 1, 0, 0),
				{SOp: SOp{Kind: SPopEmpty, Inv: 2, Ret: 3}, At: NoPlacement},
			},
			"certainly present",
		},
		{
			"per-shard LIFO violation",
			// push 1, push 2, then pop -> 1 while 2 is certainly on top.
			[]PlacedSOp{
				ps(SPush, 1, 0, 1, 0, 0), ps(SPush, 2, 2, 3, 0, 0),
				ps(SPop, 1, 4, 5, 0, 0), ps(SPop, 2, 6, 7, 0, 0),
			},
			"LIFO",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep := CheckClusterStackHistory(tc.ops)
			if len(rep.Violations) == 0 {
				t.Fatalf("no violation reported, want %q", tc.want)
			}
			if !strings.Contains(strings.Join(rep.Violations, "\n"), tc.want) {
				t.Fatalf("violations %v do not mention %q", rep.Violations, tc.want)
			}
		})
	}

	// A clean LIFO-per-shard history with cross-server inversion measured.
	clean := []PlacedSOp{
		ps(SPush, 1, 0, 1, 0, 0),
		ps(SPush, 2, 2, 3, 1, 0),
		ps(SPop, 2, 4, 5, 1, 0),
		ps(SPop, 1, 6, 7, 0, 0),
	}
	rep := CheckClusterStackHistory(clean)
	if len(rep.Violations) != 0 {
		t.Fatalf("clean stack history reported: %v", rep.Violations)
	}
	if rep.MaxOvertake != 1 {
		t.Fatalf("stack MaxOvertake = %d, want 1", rep.MaxOvertake)
	}
}
