package check_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/pmem"
)

// TestLargeScaleCrashStress runs tens of thousands of detectable
// operations across many crash/recovery cycles and verifies the entire
// closed history with the polynomial queue checker — the scale the exact
// WGL checker cannot reach. Interrupted operations are closed using their
// resolutions: an operation resolved as executed enters the history with
// its return bounded by the crash instant; one resolved as ineffective is
// dropped. Any loss, duplication, FIFO inversion, or impossible EMPTY
// across the whole run is a failure.
func TestLargeScaleCrashStress(t *testing.T) {
	const (
		threads = 3
		epochs  = 20
	)
	h, err := pmem.New(pmem.Config{Words: 1 << 18, Mode: pmem.Tracked})
	if err != nil {
		t.Fatal(err)
	}
	q, err := core.New(h, 0, core.Config{Threads: threads, NodesPerThread: 128, ExtraNodes: 16})
	if err != nil {
		t.Fatal(err)
	}

	var clock atomic.Int64
	var mu sync.Mutex
	var history []check.QOp
	record := func(op check.QOp) {
		mu.Lock()
		history = append(history, op)
		mu.Unlock()
	}

	// inflight[tid] tracks the operation a thread was executing when a
	// crash hit, so its resolution can be matched and closed.
	type inflight struct {
		active bool
		isEnq  bool
		v      uint64
		inv    int64
	}
	pending := make([]inflight, threads)
	nextVal := make([]uint64, threads)

	for epoch := 0; epoch < epochs; epoch++ {
		h.ArmCrash(uint64(4000 + epoch*977))
		var wg sync.WaitGroup
		for tid := 0; tid < threads; tid++ {
			wg.Add(1)
			go func(tid int) {
				defer wg.Done()
				pmem.RunToCrash(func() {
					for {
						// Detectable enqueue.
						nextVal[tid]++
						v := uint64(tid+1)<<40 | nextVal[tid]
						inv := clock.Add(1)
						pending[tid] = inflight{active: true, isEnq: true, v: v, inv: inv}
						if err := q.PrepEnqueue(tid, v); err != nil {
							t.Errorf("prep: %v", err)
							return
						}
						q.ExecEnqueue(tid)
						ret := clock.Add(1)
						pending[tid].active = false
						record(check.QOp{Kind: check.QEnq, V: v, Inv: inv, Ret: ret})

						// Detectable dequeue.
						inv = clock.Add(1)
						pending[tid] = inflight{active: true, inv: inv}
						q.PrepDequeue(tid)
						got, ok := q.ExecDequeue(tid)
						ret = clock.Add(1)
						pending[tid].active = false
						if ok {
							record(check.QOp{Kind: check.QDeq, V: got, Inv: inv, Ret: ret})
						} else {
							record(check.QOp{Kind: check.QDeqEmpty, Inv: inv, Ret: ret})
						}
					}
				})
			}(tid)
		}
		wg.Wait()
		if !h.Crashed() {
			t.Fatal("epoch ended without a crash?")
		}
		crashAt := clock.Add(1)
		h.Crash(pmem.NewRandomFates(int64(epoch * 31)))
		q.Recover()

		// Close the interrupted operations from their resolutions.
		for tid := 0; tid < threads; tid++ {
			p := pending[tid]
			if !p.active {
				continue
			}
			pending[tid].active = false
			res := q.Resolve(tid)
			// A resolution that does not name the interrupted operation
			// (Figure 2(d): the crash hit before its prep persisted, so
			// resolve reports ⊥ or the thread's previous, already-recorded
			// operation) means the interrupted operation had no effect.
			switch {
			case p.isEnq:
				if res.Op == core.OpEnqueue && res.Arg == p.v && res.Executed {
					record(check.QOp{Kind: check.QEnq, V: p.v, Inv: p.inv, Ret: crashAt})
				}
			default:
				// The enq/deq alternation makes an OpDequeue resolution
				// unambiguous for the current operation: X reverts at most
				// one persisted write, and the previous operation was an
				// enqueue.
				if res.Op == core.OpDequeue && res.Executed {
					if res.Empty {
						record(check.QOp{Kind: check.QDeqEmpty, Inv: p.inv, Ret: crashAt})
					} else {
						record(check.QOp{Kind: check.QDeq, V: res.Val, Inv: p.inv, Ret: crashAt})
					}
				}
			}
		}
	}

	// Drain the survivor values, recorded as ordinary dequeues.
	for {
		inv := clock.Add(1)
		v, ok := q.Dequeue(0)
		ret := clock.Add(1)
		if !ok {
			record(check.QOp{Kind: check.QDeqEmpty, Inv: inv, Ret: ret})
			break
		}
		record(check.QOp{Kind: check.QDeq, V: v, Inv: inv, Ret: ret})
	}

	if len(history) < 1000 {
		t.Fatalf("stress produced only %d operations; expected thousands", len(history))
	}
	if bad := check.CheckQueueHistory(history); len(bad) != 0 {
		max := len(bad)
		if max > 5 {
			max = 5
		}
		t.Fatalf("found %d violations over %d operations; first %d:\n%v",
			len(bad), len(history), max, bad[:max])
	}
	t.Logf("verified %d operations across %d crash/recovery cycles", len(history), epochs)
}
