package check

import (
	"math/rand"
	"testing"

	"repro/internal/spec"
)

func sp(v uint64, inv, ret int64) SOp  { return SOp{Kind: SPush, V: v, Inv: inv, Ret: ret} }
func spo(v uint64, inv, ret int64) SOp { return SOp{Kind: SPop, V: v, Inv: inv, Ret: ret} }
func sem(inv, ret int64) SOp           { return SOp{Kind: SPopEmpty, Inv: inv, Ret: ret} }

func TestStackCheckAcceptsLegalSequential(t *testing.T) {
	ops := []SOp{
		sp(1, 1, 2), sp(2, 3, 4),
		spo(2, 5, 6), spo(1, 7, 8),
		sem(9, 10),
	}
	if bad := CheckStackHistory(ops); len(bad) != 0 {
		t.Fatalf("legal history flagged: %v", bad)
	}
}

func TestStackCheckDetectsInventedValue(t *testing.T) {
	ops := []SOp{sp(1, 1, 2), spo(2, 3, 4)}
	if bad := CheckStackHistory(ops); len(bad) == 0 {
		t.Fatal("invented value not detected")
	}
}

func TestStackCheckDetectsDoublePop(t *testing.T) {
	ops := []SOp{sp(1, 1, 2), spo(1, 3, 4), spo(1, 5, 6)}
	if bad := CheckStackHistory(ops); len(bad) == 0 {
		t.Fatal("double pop not detected")
	}
}

func TestStackCheckDetectsDoublePush(t *testing.T) {
	ops := []SOp{sp(1, 1, 2), sp(1, 3, 4)}
	if bad := CheckStackHistory(ops); len(bad) == 0 {
		t.Fatal("duplicate push not detected")
	}
}

func TestStackCheckDetectsPopBeforePush(t *testing.T) {
	ops := []SOp{spo(1, 1, 2), sp(1, 3, 4)}
	if bad := CheckStackHistory(ops); len(bad) == 0 {
		t.Fatal("pop-before-push not detected")
	}
}

func TestStackCheckDetectsLIFOInversion(t *testing.T) {
	// push(1) then push(2), then pop returns 1 while 2 is still inside.
	ops := []SOp{
		sp(1, 1, 2), sp(2, 3, 4),
		spo(1, 5, 6), spo(2, 7, 8),
	}
	if bad := CheckStackHistory(ops); len(bad) == 0 {
		t.Fatal("LIFO inversion not detected")
	}
	// Same inversion with 2 never popped at all.
	ops = []SOp{sp(1, 1, 2), sp(2, 3, 4), spo(1, 5, 6)}
	if bad := CheckStackHistory(ops); len(bad) == 0 {
		t.Fatal("LIFO inversion over a resident value not detected")
	}
}

func TestStackCheckDetectsImpossibleEmpty(t *testing.T) {
	ops := []SOp{
		sp(1, 1, 2),
		sem(3, 4), // 1 is certainly inside
		spo(1, 5, 6),
	}
	if bad := CheckStackHistory(ops); len(bad) == 0 {
		t.Fatal("impossible EMPTY not detected")
	}
}

func TestStackCheckAcceptsConcurrentAmbiguity(t *testing.T) {
	// Overlapping operations legitimately allow orders that would be
	// violations if sequential.
	ops := []SOp{
		sp(1, 1, 10), sp(2, 2, 9), // concurrent pushes: either is on top
		spo(1, 11, 12), spo(2, 13, 14),
		sem(3, 15), // overlaps everything: the stack may have been empty early on
	}
	if bad := CheckStackHistory(ops); len(bad) != 0 {
		t.Fatalf("legal concurrent history flagged: %v", bad)
	}
}

// genLegalStackHistory builds a random legal concurrent stack history: a
// random legal sequential execution is computed against the spec, then
// each operation's interval is stretched randomly around its
// linearization point (the queue generator's construction).
func genLegalStackHistory(rng *rand.Rand, nOps int) []SOp {
	var st spec.State = spec.NewStack()
	type lin struct {
		op    SOp
		point int64
	}
	var lins []lin
	next := uint64(1)
	var point int64
	for i := 0; i < nOps; i++ {
		point += 10
		if rng.Intn(2) == 0 {
			v := next
			next++
			st2, _, _ := st.Apply(spec.Push(v), 0)
			st = st2
			lins = append(lins, lin{sp(v, point, point), point})
		} else {
			st2, r, _ := st.Apply(spec.Pop(), 0)
			st = st2
			if r.Kind == spec.Empty {
				lins = append(lins, lin{sem(point, point), point})
			} else {
				lins = append(lins, lin{spo(r.V, point, point), point})
			}
		}
	}
	out := make([]SOp, len(lins))
	for i, l := range lins {
		o := l.op
		o.Inv = l.point - int64(rng.Intn(10))
		o.Ret = l.point + int64(rng.Intn(10))
		out[i] = o
	}
	return out
}

// toStackCalls converts SOps to checker Calls for the WGL ground truth.
func toStackCalls(ops []SOp) []Call {
	out := make([]Call, 0, len(ops))
	for i, o := range ops {
		proc := i % 8 // procs are irrelevant for base stack ops
		switch o.Kind {
		case SPush:
			out = append(out, Call{Proc: proc, Op: spec.Push(o.V), Ret: spec.AckResp(), HasRet: true, Invoke: o.Inv, Return: o.Ret})
		case SPop:
			out = append(out, Call{Proc: proc, Op: spec.Pop(), Ret: spec.ValResp(o.V), HasRet: true, Invoke: o.Inv, Return: o.Ret})
		case SPopEmpty:
			out = append(out, Call{Proc: proc, Op: spec.Pop(), Ret: spec.EmptyResp(), HasRet: true, Invoke: o.Inv, Return: o.Ret})
		}
	}
	return out
}

// TestStackCheckNoFalseAlarms: the detector must accept every generated
// legal history.
func TestStackCheckNoFalseAlarms(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ops := genLegalStackHistory(rng, 4+rng.Intn(20))
		if bad := CheckStackHistory(ops); len(bad) != 0 {
			t.Fatalf("seed %d: legal history flagged: %v\nops: %v", seed, bad, ops)
		}
	}
}

// TestStackCheckDifferentialAgainstWGL mutates legal histories and
// compares the polynomial detector against the exact WGL checker: a
// flagged history must be WGL-rejected (soundness — the detector never
// lies), and over this mutation distribution most WGL-rejected histories
// must be flagged (empirical completeness).
func TestStackCheckDifferentialAgainstWGL(t *testing.T) {
	misses, total := 0, 0
	for seed := int64(0); seed < 400; seed++ {
		rng := rand.New(rand.NewSource(2000 + seed))
		ops := genLegalStackHistory(rng, 4+rng.Intn(10))
		if len(ops) == 0 {
			continue
		}
		// Mutate.
		switch rng.Intn(4) {
		case 0: // swap two pop values
			var po []int
			for i, o := range ops {
				if o.Kind == SPop {
					po = append(po, i)
				}
			}
			if len(po) >= 2 {
				i, j := po[rng.Intn(len(po))], po[rng.Intn(len(po))]
				ops[i].V, ops[j].V = ops[j].V, ops[i].V
			}
		case 1: // retarget a pop to a random (often wrong) value
			for i, o := range ops {
				if o.Kind == SPop {
					ops[i].V = o.V%3 + 1
					break
				}
			}
		case 2: // turn a value pop into EMPTY
			for i, o := range ops {
				if o.Kind == SPop {
					ops[i] = sem(o.Inv, o.Ret)
					break
				}
			}
		case 3: // shrink an interval to sequentialize an inversion
			i := rng.Intn(len(ops))
			ops[i].Ret = ops[i].Inv
		}
		total++
		wgl := StrictlyLinearizable(spec.NewStack(), toStackCalls(ops)).OK
		flagged := len(CheckStackHistory(ops)) != 0
		if flagged && wgl {
			t.Fatalf("seed %d: detector flagged a WGL-legal history: %v\n%v",
				seed, CheckStackHistory(ops), ops)
		}
		if !flagged && !wgl {
			misses++
			t.Logf("seed %d: WGL rejects but detector silent:\n%v", seed, ops)
		}
	}
	// The detector is a violation detector, not a decision procedure; LIFO
	// order leaves it more ambiguity than FIFO, but over this distribution
	// it should still catch the large majority of violations.
	if misses > total/10 {
		t.Fatalf("detector missed %d/%d WGL-rejected histories", misses, total)
	}
}
