package check_test

import (
	"testing"

	"repro/internal/check"
	"repro/internal/cwe"
	"repro/internal/pmem"
	"repro/internal/queue"
	"repro/internal/spec"
)

// Checker-based crash-sweep verification for the other detectable queues,
// mirroring the DSS queue's conformance tests: the CASWithEffect queues
// and the log queue must also produce histories that are strictly
// linearizable with respect to D⟨queue⟩.

func cweResolutionResp(r cwe.Resolution) spec.Resp {
	switch {
	case r.IsEnqueue:
		inner := spec.BottomResp()
		if r.Executed {
			inner = spec.AckResp()
		}
		return spec.PairResp(true, spec.Enqueue(r.Arg), inner)
	case r.IsDequeue:
		inner := spec.BottomResp()
		if r.Executed {
			if r.Empty {
				inner = spec.EmptyResp()
			} else {
				inner = spec.ValResp(r.Val)
			}
		}
		return spec.PairResp(true, spec.Dequeue(), inner)
	default:
		return spec.PairResp(false, spec.Op{}, spec.BottomResp())
	}
}

func logResolutionResp(r queue.LogResolution) spec.Resp {
	switch {
	case r.IsEnqueue:
		inner := spec.BottomResp()
		if r.Executed {
			inner = spec.AckResp()
		}
		return spec.PairResp(true, spec.Enqueue(r.Arg), inner)
	case r.IsDequeue:
		inner := spec.BottomResp()
		if r.Executed {
			if r.Empty {
				inner = spec.EmptyResp()
			} else {
				inner = spec.ValResp(r.Val)
			}
		}
		return spec.PairResp(true, spec.Dequeue(), inner)
	default:
		return spec.PairResp(false, spec.Op{}, spec.BottomResp())
	}
}

func TestCrashSweepCWEConformance(t *testing.T) {
	for _, fast := range []bool{false, true} {
		for _, adv := range []pmem.Adversary{pmem.DropAll{}, pmem.KeepAll{}, pmem.NewRandomFates(61)} {
			for step := uint64(1); ; step++ {
				h, err := pmem.New(pmem.Config{Words: 1 << 17, Mode: pmem.Tracked})
				if err != nil {
					t.Fatal(err)
				}
				q, err := cwe.New(h, 0, cwe.Config{
					Threads: 1, NodesPerThread: 16, ExtraNodes: 4,
					DescriptorsPerThread: 8, Fast: fast,
				})
				if err != nil {
					t.Fatal(err)
				}
				rec := check.NewRecorder()
				h.ArmCrash(step)
				pmem.RunToCrash(func() {
					v := uint64(11)
					rec.Begin(0, spec.PrepOp(spec.Enqueue(v)))
					if err := q.PrepEnqueue(0, v); err != nil {
						return
					}
					rec.End(0, spec.BottomResp())
					rec.Begin(0, spec.ExecOp(spec.Enqueue(v)))
					if err := q.ExecEnqueue(0); err != nil {
						return
					}
					rec.End(0, spec.AckResp())
					rec.Begin(0, spec.PrepOp(spec.Dequeue()))
					q.PrepDequeue(0)
					rec.End(0, spec.BottomResp())
					rec.Begin(0, spec.ExecOp(spec.Dequeue()))
					got, ok, err := q.ExecDequeue(0)
					if err != nil {
						return
					}
					if ok {
						rec.End(0, spec.ValResp(got))
					} else {
						rec.End(0, spec.EmptyResp())
					}
				})
				if !h.Crashed() {
					break
				}
				rec.CrashAll()
				h.Crash(adv)
				q.Recover()
				rec.Begin(0, spec.ResolveOp())
				rec.End(0, cweResolutionResp(q.Resolve(0)))
				for {
					rec.Begin(0, spec.Dequeue())
					v, ok := q.Dequeue(0)
					if ok {
						rec.End(0, spec.ValResp(v))
					} else {
						rec.End(0, spec.EmptyResp())
						break
					}
				}
				hist := rec.History()
				d := spec.Detectable(spec.NewQueue(), 1)
				if r := check.StrictlyLinearizable(d, hist); !r.OK {
					t.Fatalf("fast=%v step %d: CWE history not strictly linearizable:\n%s",
						fast, step, check.FormatHistory(hist))
				}
			}
		}
	}
}

func TestCrashSweepLogQueueConformance(t *testing.T) {
	// The log queue is detectable without separate prep/exec calls: each
	// operation implicitly prepares when its entry is installed. For
	// conformance we model each operation as prep immediately followed by
	// exec inside one interval; an interrupted operation becomes an
	// interrupted prep+exec pair.
	for _, adv := range []pmem.Adversary{pmem.DropAll{}, pmem.KeepAll{}, pmem.NewRandomFates(67)} {
		for step := uint64(1); ; step++ {
			h, err := pmem.New(pmem.Config{Words: 1 << 17, Mode: pmem.Tracked})
			if err != nil {
				t.Fatal(err)
			}
			q, err := queue.NewLog(h, 0, 1, 16, 4)
			if err != nil {
				t.Fatal(err)
			}
			h.ArmCrash(step)

			// The log queue prepares implicitly inside each operation, so
			// the history is built by hand: a completed operation
			// contributes a completed prep and exec; the interrupted one
			// contributes an *interrupted* prep and exec sharing the same
			// window — the entry install (prep) and the structural effect
			// (exec) may each independently have happened.
			var hist []check.Call
			clock := int64(0)
			tick := func() int64 { clock++; return clock }
			completed := func(op spec.Op, resp spec.Resp) {
				s1, e1 := tick(), tick()
				hist = append(hist,
					check.Call{Proc: 0, Op: spec.PrepOp(op), Ret: spec.BottomResp(), HasRet: true, Invoke: s1, Return: e1})
				s2, e2 := tick(), tick()
				hist = append(hist,
					check.Call{Proc: 0, Op: spec.ExecOp(op), Ret: resp, HasRet: true, Invoke: s2, Return: e2})
			}
			interrupted := func(op spec.Op) {
				s, e := tick(), tick()
				hist = append(hist,
					check.Call{Proc: 0, Op: spec.PrepOp(op), Invoke: s, Return: e, Optional: true},
					check.Call{Proc: 0, Op: spec.ExecOp(op), Invoke: s, Return: e, Optional: true})
			}

			pmem.RunToCrash(func() {
				v := uint64(11)
				var cur spec.Op
				cur = spec.Enqueue(v)
				defer func() {
					if h.Crashed() {
						interrupted(cur)
					}
				}()
				if err := q.Enqueue(0, v); err != nil {
					return // pool exhaustion is not expected at this scale
				}
				completed(cur, spec.AckResp())
				cur = spec.Dequeue()
				if got, ok := q.Dequeue(0); ok {
					completed(cur, spec.ValResp(got))
				} else {
					completed(cur, spec.EmptyResp())
				}
			})
			if !h.Crashed() {
				break
			}
			h.Crash(adv)
			q.Recover()
			s, e := tick(), tick()
			hist = append(hist, check.Call{
				Proc: 0, Op: spec.ResolveOp(),
				Ret: logResolutionResp(q.Resolve(0)), HasRet: true,
				Invoke: s, Return: e,
			})
			for {
				v, ok := q.Dequeue(0)
				s, e := tick(), tick()
				if ok {
					hist = append(hist, check.Call{Proc: 0, Op: spec.Dequeue(), Ret: spec.ValResp(v), HasRet: true, Invoke: s, Return: e})
				} else {
					hist = append(hist, check.Call{Proc: 0, Op: spec.Dequeue(), Ret: spec.EmptyResp(), HasRet: true, Invoke: s, Return: e})
					break
				}
			}
			d := spec.Detectable(spec.NewQueue(), 1)
			if r := check.StrictlyLinearizable(d, hist); !r.OK {
				t.Fatalf("step %d: log-queue history not strictly linearizable:\n%s",
					step, check.FormatHistory(hist))
			}
		}
	}
}
