package check

import (
	"fmt"
	"sort"

	"repro/internal/spec"
)

// The WGL search in check.go is exact but exponential, so it is limited
// to histories of at most 64 calls. This file provides the complement: a
// polynomial-time *violation detector* for FIFO-queue histories with
// distinct values, in the spirit of Bouajjani, Emmi, Enea and Hamza's
// bad-pattern characterizations. It checks the standard violation classes
// (invented or duplicated values, dequeue-before-enqueue, FIFO-order
// inversions, lost values, and impossible EMPTYs) over histories of any
// length, which lets crash-stress tests validate hundreds of thousands of
// operations. It never reports a false violation; completeness is
// established empirically by differential testing against the WGL checker
// on random small histories (see queuecheck_test.go).

// QOpKind classifies a queue-history operation.
type QOpKind int

const (
	// QEnq is a completed (or resolved-as-effective) enqueue.
	QEnq QOpKind = iota + 1
	// QDeq is a completed dequeue that returned a value.
	QDeq
	// QDeqEmpty is a completed dequeue that returned EMPTY.
	QDeqEmpty
)

// QOp is one operation in a closed queue history: an operation whose
// effect is known (crash-interrupted operations must first be resolved —
// effective ones get their value and a Return no later than the crash
// time; ineffective ones are dropped).
type QOp struct {
	Kind QOpKind
	// Key is the routing key of the widened op contract. Container
	// histories leave it zero; it exists so placed-op records survive
	// the keyed contract unchanged (keyed types have their own
	// checkers, CheckRegisterHistory and CheckMapHistory).
	Key uint64
	// V is the enqueued or dequeued value (distinct across enqueues).
	V uint64
	// Inv and Ret bound the operation's interval.
	Inv, Ret int64
}

// String renders the operation.
func (o QOp) String() string {
	switch o.Kind {
	case QEnq:
		return fmt.Sprintf("enq(%d)[%d,%d]", o.V, o.Inv, o.Ret)
	case QDeq:
		return fmt.Sprintf("deq->%d[%d,%d]", o.V, o.Inv, o.Ret)
	case QDeqEmpty:
		return fmt.Sprintf("deq->EMPTY[%d,%d]", o.Inv, o.Ret)
	default:
		return fmt.Sprintf("QOp(%d)", int(o.Kind))
	}
}

// hb reports whether a happens-before b (a returns before b is invoked).
func hb(a, b QOp) bool { return a.Ret < b.Inv }

// CheckQueueHistory scans a closed queue history for violations and
// returns a description of each one found (nil means none of the checked
// patterns occurs).
func CheckQueueHistory(ops []QOp) []string {
	var bad []string
	report := func(format string, args ...any) {
		bad = append(bad, fmt.Sprintf(format, args...))
	}

	enqs := map[uint64]QOp{}
	deqs := map[uint64]QOp{}
	var empties []QOp
	for _, o := range ops {
		switch o.Kind {
		case QEnq:
			if prev, dup := enqs[o.V]; dup {
				report("value %d enqueued twice: %s and %s", o.V, prev, o)
				continue
			}
			enqs[o.V] = o
		case QDeq:
			if prev, dup := deqs[o.V]; dup {
				report("value %d dequeued twice: %s and %s", o.V, prev, o)
				continue
			}
			deqs[o.V] = o
		case QDeqEmpty:
			empties = append(empties, o)
		}
	}

	// Pattern 1: dequeues of values never enqueued, or that certainly
	// left the queue before entering it.
	for v, d := range deqs {
		e, ok := enqs[v]
		if !ok {
			report("value %d dequeued but never enqueued: %s", v, d)
			continue
		}
		if hb(d, e) {
			report("dequeue returns before enqueue begins for %d: %s vs %s", v, d, e)
		}
	}

	// Pattern 2: FIFO inversions. For enq(a) <hb enq(b):
	//   (i) if b was dequeued and a was not, a was overtaken forever;
	//  (ii) if both were dequeued, deq(b) must not precede deq(a).
	values := make([]uint64, 0, len(enqs))
	for v := range enqs {
		values = append(values, v)
	}
	sort.Slice(values, func(i, j int) bool { return enqs[values[i]].Inv < enqs[values[j]].Inv })
	for i := 0; i < len(values); i++ {
		for j := 0; j < len(values); j++ {
			if i == j {
				continue
			}
			a, b := values[i], values[j]
			if !hb(enqs[a], enqs[b]) {
				continue
			}
			db, bDeq := deqs[b]
			if !bDeq {
				continue
			}
			da, aDeq := deqs[a]
			if !aDeq {
				report("FIFO violation: enq(%d) precedes enq(%d), %d dequeued but %d never was",
					a, b, b, a)
				continue
			}
			if hb(db, da) {
				report("FIFO violation: enq(%d) precedes enq(%d) but deq(%d) precedes deq(%d)",
					a, b, b, a)
			}
		}
	}

	// Pattern 3: impossible EMPTYs. An EMPTY dequeue is a violation if
	// some value was certainly present throughout its interval: enqueued
	// before the EMPTY began and not dequeued until after it returned.
	for _, em := range empties {
		for v, e := range enqs {
			if !hb(e, em) {
				continue
			}
			d, dequeued := deqs[v]
			if !dequeued || hb(em, d) {
				report("EMPTY at %s while value %d was certainly present (enq %s)", em, v, e)
				break
			}
		}
	}

	return bad
}

// HistoryToQueueOps converts a recorded (closed) history of base queue
// operations into QOps for the polynomial detector. Calls other than
// plain enqueue/dequeue (prep/exec/resolve, interrupted calls) are
// rejected — resolve and close the history first.
func HistoryToQueueOps(hist []Call) ([]QOp, error) {
	out := make([]QOp, 0, len(hist))
	for _, c := range hist {
		if c.Optional || !c.HasRet {
			return nil, fmt.Errorf("check: history not closed: %s", c)
		}
		if c.Op.Kind != spec.Base {
			return nil, fmt.Errorf("check: non-base operation in queue history: %s", c)
		}
		switch c.Op.Sym {
		case "enqueue":
			out = append(out, QOp{Kind: QEnq, V: c.Op.Arg, Inv: c.Invoke, Ret: c.Return})
		case "dequeue":
			if c.Ret.Kind == spec.Empty {
				out = append(out, QOp{Kind: QDeqEmpty, Inv: c.Invoke, Ret: c.Return})
			} else {
				out = append(out, QOp{Kind: QDeq, V: c.Ret.V, Inv: c.Invoke, Ret: c.Return})
			}
		default:
			return nil, fmt.Errorf("check: unknown queue operation %q", c.Op.Sym)
		}
	}
	return out, nil
}
