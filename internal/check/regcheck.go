package check

import (
	"fmt"

	"repro/internal/spec"
)

// Polynomial-time violation detector for swap/CAS register histories
// with distinct written values, companion to queuecheck.go and
// stackcheck.go. The register's mutators witness the value they
// displace (swap returns the old value, cas returns the witnessed
// current), so a history with distinct installed values carries its own
// linearization skeleton: a displacement CHAIN in which every value has
// at most one installer and at most one witnessed consumer. The
// detector checks the chain's integrity (duplicate installs, duplicate
// consumptions, observations of never-installed or certainly-displaced
// values) and its consistency with real time (a value observed before
// its install began, a chain order contradicting happens-before). It
// never reports a false violation; completeness over random histories
// is established differentially against the WGL checker in
// regcheck_test.go.

// ROpKind classifies a register-history operation.
type ROpKind int

const (
	// RWrite is a completed write(v): installs v, displacing the
	// previous value silently.
	RWrite ROpKind = iota + 1
	// RRead is a completed read that returned a value.
	RRead
	// RSwap is a completed swap(v) → w: installs v, witnessing the
	// displaced w.
	RSwap
	// RCasHit is a completed cas(x, v) → (1, x): installs v, witnessing
	// (and displacing) the expected x.
	RCasHit
	// RCasMiss is a completed cas(x, v) → (0, w): installs nothing,
	// observing the current value w ≠ x.
	RCasMiss
)

// ROp is one operation in a closed register history (crash-interrupted
// operations must first be resolved, as with QOp). The initial register
// value is 0 and installed values are distinct and nonzero.
type ROp struct {
	Kind ROpKind
	// V is the installed value (write/swap/cas-hit), the value read
	// (read), or the value the cas attempted to install (cas-miss).
	V uint64
	// W is the witnessed displaced value (swap/cas-hit) or the
	// witnessed current value (cas-miss).
	W uint64
	// X is the cas's expected value (cas-hit: X == W by construction).
	X uint64
	// Inv and Ret bound the operation's interval.
	Inv, Ret int64
}

// String renders the operation.
func (o ROp) String() string {
	switch o.Kind {
	case RWrite:
		return fmt.Sprintf("write(%d)[%d,%d]", o.V, o.Inv, o.Ret)
	case RRead:
		return fmt.Sprintf("read->%d[%d,%d]", o.V, o.Inv, o.Ret)
	case RSwap:
		return fmt.Sprintf("swap(%d)->%d[%d,%d]", o.V, o.W, o.Inv, o.Ret)
	case RCasHit:
		return fmt.Sprintf("cas(%d,%d)->ok[%d,%d]", o.X, o.V, o.Inv, o.Ret)
	case RCasMiss:
		return fmt.Sprintf("cas(%d,%d)->%d[%d,%d]", o.X, o.V, o.W, o.Inv, o.Ret)
	default:
		return fmt.Sprintf("ROp(%d)", int(o.Kind))
	}
}

// installs reports the value o installs, if any.
func (o ROp) installs() (uint64, bool) {
	switch o.Kind {
	case RWrite, RSwap, RCasHit:
		return o.V, true
	}
	return 0, false
}

// witnesses reports the value o witnessed as displaced, if any
// (cas-miss observes but does not displace).
func (o ROp) witnesses() (uint64, bool) {
	switch o.Kind {
	case RSwap, RCasHit:
		return o.W, true
	}
	return 0, false
}

// observes reports the current-value observation o makes, if any.
func (o ROp) observes() (uint64, bool) {
	switch o.Kind {
	case RRead:
		return o.V, true
	case RSwap, RCasHit, RCasMiss:
		return o.W, true
	}
	return 0, false
}

// rhb reports whether a happens-before b.
func rhb(a, b ROp) bool { return a.Ret < b.Inv }

// CheckRegisterHistory scans a closed register history for violations
// and returns a description of each one found (nil means none of the
// checked patterns occurs).
func CheckRegisterHistory(ops []ROp) []string {
	var bad []string
	report := func(format string, args ...any) {
		bad = append(bad, fmt.Sprintf(format, args...))
	}

	// Index installers and witnessed consumers; value 0 has a virtual
	// install before time (the initial value).
	installs := map[uint64]int{}
	consumes := map[uint64]int{}
	for i, o := range ops {
		if o.Kind == RCasMiss && o.W == o.X {
			report("cas-miss witnessing its own expected value: %s", o)
		}
		if o.Kind == RCasHit && o.W != o.X {
			report("cas-hit witnessing %d instead of its expected value: %s", o.W, o)
		}
		if v, ok := o.installs(); ok {
			if v == 0 {
				report("install of the reserved initial value 0: %s", o)
				continue
			}
			if j, dup := installs[v]; dup {
				report("value %d installed twice: %s and %s", v, ops[j], o)
				continue
			}
			installs[v] = i
		}
		if w, ok := o.witnesses(); ok {
			if v, inst := o.installs(); inst && w == v {
				// Witnessing the value being installed would mean v was
				// already present — a second install under distinct values.
				report("self-displacement: %s witnesses the value it installs", o)
				continue
			}
			if j, dup := consumes[w]; dup {
				report("value %d displaced twice: %s and %s", w, ops[j], o)
				continue
			}
			consumes[w] = i
		}
	}

	// Observation patterns. An observation of v is a violation if v was
	// never installed (and is not the initial 0), if it returned before
	// v's install began, if v's witnessed displacement certainly
	// preceded it, or if some OTHER value was certainly installed
	// between v's install and the observation (install(v) hb install(b)
	// hb obs(v) — with distinct values v cannot come back).
	for i, o := range ops {
		v, ok := o.observes()
		if !ok {
			continue
		}
		var inst ROp
		haveInst := false
		if v != 0 {
			j, installed := installs[v]
			if !installed {
				report("value %d observed but never installed: %s", v, o)
				continue
			}
			inst = ops[j]
			haveInst = true
			if rhb(o, inst) {
				report("observation returns before install begins for %d: %s vs %s", v, o, inst)
				continue
			}
		}
		if j, consumed := consumes[v]; consumed && j != i && rhb(ops[j], o) {
			report("value %d observed after its displacement: %s then %s", v, ops[j], o)
			continue
		}
		for _, j := range installs {
			b := ops[j]
			if bv, _ := b.installs(); bv == v {
				continue
			}
			// For v == 0 the virtual install precedes everything, so any
			// completed install certainly buried 0.
			if (!haveInst || rhb(inst, b)) && rhb(b, o) {
				report("stale observation: %s certainly overwrote %d before %s", b, v, o)
				break
			}
		}
	}

	// Chain-order consistency: witness edges w → v (the op consuming w
	// installs v) order installs; following edges transitively, an
	// earlier chain value's install may not begin after a later one's
	// returned.
	succ := map[uint64]uint64{}
	for _, o := range ops {
		if w, ok := o.witnesses(); ok {
			if v, inst := o.installs(); inst {
				succ[w] = v
			}
		}
	}
	for u := range succ {
		iu, okU := installs[u]
		if !okU {
			continue // u == 0 (virtual) or already reported
		}
		for v, steps := succ[u], 0; steps < len(succ); steps++ {
			iv, okV := installs[v]
			if !okV {
				break
			}
			if rhb(ops[iv], ops[iu]) {
				report("chain order contradicts real time: %d reaches %d along the displacement chain but %s precedes %s",
					u, v, ops[iv], ops[iu])
			}
			v2, more := succ[v]
			if !more {
				break
			}
			v = v2
		}
	}

	return bad
}

// HistoryToRegisterOps converts a recorded (closed) history of base
// register operations into ROps for the polynomial detector.
func HistoryToRegisterOps(hist []Call) ([]ROp, error) {
	out := make([]ROp, 0, len(hist))
	for _, c := range hist {
		if c.Optional || !c.HasRet {
			return nil, fmt.Errorf("check: history not closed: %s", c)
		}
		if c.Op.Kind != spec.Base {
			return nil, fmt.Errorf("check: non-base operation in register history: %s", c)
		}
		switch c.Op.Sym {
		case "write":
			out = append(out, ROp{Kind: RWrite, V: c.Op.Arg, Inv: c.Invoke, Ret: c.Return})
		case "read":
			out = append(out, ROp{Kind: RRead, V: c.Ret.V, Inv: c.Invoke, Ret: c.Return})
		case "swap":
			out = append(out, ROp{Kind: RSwap, V: c.Op.Arg, W: c.Ret.V, Inv: c.Invoke, Ret: c.Return})
		case "cas":
			if c.Ret.V == 1 {
				out = append(out, ROp{Kind: RCasHit, V: c.Op.Arg2, W: c.Ret.V2, X: c.Op.Arg, Inv: c.Invoke, Ret: c.Return})
			} else {
				out = append(out, ROp{Kind: RCasMiss, V: c.Op.Arg2, W: c.Ret.V2, X: c.Op.Arg, Inv: c.Invoke, Ret: c.Return})
			}
		default:
			return nil, fmt.Errorf("check: unknown register operation %q", c.Op.Sym)
		}
	}
	return out, nil
}
