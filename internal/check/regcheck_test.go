package check

import (
	"math/rand"
	"testing"

	"repro/internal/spec"
)

func rw(v uint64, inv, ret int64) ROp { return ROp{Kind: RWrite, V: v, Inv: inv, Ret: ret} }
func rr(v uint64, inv, ret int64) ROp { return ROp{Kind: RRead, V: v, Inv: inv, Ret: ret} }
func rsw(v, w uint64, inv, ret int64) ROp {
	return ROp{Kind: RSwap, V: v, W: w, Inv: inv, Ret: ret}
}
func rch(x, v uint64, inv, ret int64) ROp {
	return ROp{Kind: RCasHit, V: v, W: x, X: x, Inv: inv, Ret: ret}
}
func rcm(x, v, w uint64, inv, ret int64) ROp {
	return ROp{Kind: RCasMiss, V: v, W: w, X: x, Inv: inv, Ret: ret}
}

func TestRegisterCheckAcceptsLegalSequential(t *testing.T) {
	ops := []ROp{
		rw(1, 1, 2),
		rr(1, 3, 4),
		rsw(2, 1, 5, 6),
		rch(2, 3, 7, 8),
		rcm(9, 4, 3, 9, 10),
		rr(3, 11, 12),
	}
	if bad := CheckRegisterHistory(ops); len(bad) != 0 {
		t.Fatalf("legal history flagged: %v", bad)
	}
}

func TestRegisterCheckDetectsInventedValue(t *testing.T) {
	ops := []ROp{rw(1, 1, 2), rr(2, 3, 4)}
	if bad := CheckRegisterHistory(ops); len(bad) == 0 {
		t.Fatal("invented value not detected")
	}
}

func TestRegisterCheckDetectsDoubleInstall(t *testing.T) {
	ops := []ROp{rw(1, 1, 2), rsw(1, 0, 3, 4)}
	if bad := CheckRegisterHistory(ops); len(bad) == 0 {
		t.Fatal("double install not detected")
	}
}

func TestRegisterCheckDetectsDoubleDisplace(t *testing.T) {
	ops := []ROp{rw(1, 1, 2), rsw(2, 1, 3, 4), rsw(3, 1, 5, 6)}
	if bad := CheckRegisterHistory(ops); len(bad) == 0 {
		t.Fatal("double displacement not detected")
	}
}

func TestRegisterCheckDetectsObservationBeforeInstall(t *testing.T) {
	ops := []ROp{rr(1, 1, 2), rw(1, 3, 4)}
	if bad := CheckRegisterHistory(ops); len(bad) == 0 {
		t.Fatal("observation before install not detected")
	}
}

func TestRegisterCheckDetectsObservationAfterDisplacement(t *testing.T) {
	ops := []ROp{rw(1, 1, 2), rsw(2, 1, 3, 4), rr(1, 5, 6)}
	if bad := CheckRegisterHistory(ops); len(bad) == 0 {
		t.Fatal("observation after displacement not detected")
	}
}

func TestRegisterCheckDetectsStaleObservation(t *testing.T) {
	// 1 then 2 installed sequentially by silent writes; a later read of 1
	// is stale even though no witness names 1's displacement.
	ops := []ROp{rw(1, 1, 2), rw(2, 3, 4), rr(1, 5, 6)}
	if bad := CheckRegisterHistory(ops); len(bad) == 0 {
		t.Fatal("stale observation not detected")
	}
}

func TestRegisterCheckDetectsStaleInitialRead(t *testing.T) {
	ops := []ROp{rw(1, 1, 2), rr(0, 3, 4)}
	if bad := CheckRegisterHistory(ops); len(bad) == 0 {
		t.Fatal("read of buried initial value not detected")
	}
}

func TestRegisterCheckDetectsInconsistentCas(t *testing.T) {
	if bad := CheckRegisterHistory([]ROp{ROp{Kind: RCasMiss, X: 5, W: 5, Inv: 1, Ret: 2}}); len(bad) == 0 {
		t.Fatal("cas-miss witnessing its expected value not detected")
	}
	if bad := CheckRegisterHistory([]ROp{rw(7, 1, 2), {Kind: RCasHit, X: 7, W: 3, V: 8, Inv: 3, Ret: 4}}); len(bad) == 0 {
		t.Fatal("cas-hit witnessing a foreign value not detected")
	}
}

func TestRegisterCheckDetectsChainOrderInversion(t *testing.T) {
	// The witness chain says 1 → 2 → 3 (each swap names its
	// predecessor), forcing 3's install to linearize after 1's — but the
	// swap installing 3 returned before 1's install began. Every
	// pairwise pattern is masked by overlap; only the transitive chain
	// walk sees it.
	ops := []ROp{
		rw(1, 10, 11),
		rsw(2, 1, 5, 20), // witnesses 1; overlaps 1's install
		rsw(3, 2, 6, 7),  // witnesses 2; returns before 1 was installed
	}
	if bad := CheckRegisterHistory(ops); len(bad) == 0 {
		t.Fatal("chain-order inversion not detected")
	}
}

func TestRegisterCheckAcceptsConcurrentAmbiguity(t *testing.T) {
	// Concurrent writes of 1 and 2: a read of either is fine, and a
	// read of 1 after both intervals closed is fine only if 2 could have
	// come first — here the writes overlap, so it could.
	ops := []ROp{
		rw(1, 1, 10), rw(2, 2, 9),
		rr(1, 11, 12),
	}
	if bad := CheckRegisterHistory(ops); len(bad) != 0 {
		t.Fatalf("legal concurrent history flagged: %v", bad)
	}
}

func TestHistoryToRegisterOps(t *testing.T) {
	hist := []Call{
		h(0, spec.Write(5), spec.AckResp(), 1, 2),
		h(1, spec.Swap(6), spec.ValResp(5), 3, 4),
		h(1, spec.CAS(6, 7), spec.ValResp2(1, 6), 5, 6),
		h(0, spec.CAS(9, 8), spec.ValResp2(0, 7), 7, 8),
		h(0, spec.Read(), spec.ValResp(7), 9, 10),
	}
	ops, err := HistoryToRegisterOps(hist)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 5 || ops[0].Kind != RWrite || ops[1].Kind != RSwap ||
		ops[2].Kind != RCasHit || ops[3].Kind != RCasMiss || ops[4].Kind != RRead {
		t.Fatalf("conversion wrong: %+v", ops)
	}
	if bad := CheckRegisterHistory(ops); len(bad) != 0 {
		t.Fatalf("legal converted history flagged: %v", bad)
	}
	if _, err := HistoryToRegisterOps([]Call{hi(0, spec.Write(1), 1, 2)}); err == nil {
		t.Fatal("accepted unresolved interrupted call")
	}
	if _, err := HistoryToRegisterOps([]Call{h(0, spec.Enqueue(1), spec.AckResp(), 1, 2)}); err == nil {
		t.Fatal("accepted a queue operation")
	}
}

// genLegalRegisterHistory builds a random legal concurrent register
// history exactly as genLegalHistory does for queues: a legal
// sequential execution against the swap/CAS spec, then intervals
// stretched around the linearization points.
func genLegalRegisterHistory(rng *rand.Rand, nOps int) []ROp {
	var st spec.State = spec.NewSwap(0)
	cur := uint64(0)
	type lin struct {
		op    ROp
		point int64
	}
	var lins []lin
	next := uint64(1)
	var point int64
	for i := 0; i < nOps; i++ {
		point += 10
		switch rng.Intn(4) {
		case 0:
			v := next
			next++
			st2, _, _ := st.Apply(spec.Write(v), 0)
			st = st2
			cur = v
			lins = append(lins, lin{rw(v, point, point), point})
		case 1:
			st2, r, _ := st.Apply(spec.Read(), 0)
			st = st2
			lins = append(lins, lin{rr(r.V, point, point), point})
		case 2:
			v := next
			next++
			st2, r, _ := st.Apply(spec.Swap(v), 0)
			st = st2
			cur = v
			lins = append(lins, lin{rsw(v, r.V, point, point), point})
		default:
			v := next
			next++
			exp := cur
			if rng.Intn(2) == 0 {
				exp = next + 1_000_000 // certain miss
			}
			st2, r, _ := st.Apply(spec.CAS(exp, v), 0)
			st = st2
			if r.V == 1 {
				cur = v
				lins = append(lins, lin{rch(exp, v, point, point), point})
			} else {
				lins = append(lins, lin{rcm(exp, v, r.V2, point, point), point})
			}
		}
	}
	out := make([]ROp, len(lins))
	for i, l := range lins {
		o := l.op
		o.Inv = l.point - int64(rng.Intn(10))
		o.Ret = l.point + int64(rng.Intn(10))
		out[i] = o
	}
	return out
}

// toRegCalls converts ROps to checker Calls for the WGL ground truth.
func toRegCalls(ops []ROp) []Call {
	out := make([]Call, 0, len(ops))
	for i, o := range ops {
		proc := i % 8
		switch o.Kind {
		case RWrite:
			out = append(out, Call{Proc: proc, Op: spec.Write(o.V), Ret: spec.AckResp(), HasRet: true, Invoke: o.Inv, Return: o.Ret})
		case RRead:
			out = append(out, Call{Proc: proc, Op: spec.Read(), Ret: spec.ValResp(o.V), HasRet: true, Invoke: o.Inv, Return: o.Ret})
		case RSwap:
			out = append(out, Call{Proc: proc, Op: spec.Swap(o.V), Ret: spec.ValResp(o.W), HasRet: true, Invoke: o.Inv, Return: o.Ret})
		case RCasHit:
			out = append(out, Call{Proc: proc, Op: spec.CAS(o.X, o.V), Ret: spec.ValResp2(1, o.W), HasRet: true, Invoke: o.Inv, Return: o.Ret})
		case RCasMiss:
			out = append(out, Call{Proc: proc, Op: spec.CAS(o.X, o.V), Ret: spec.ValResp2(0, o.W), HasRet: true, Invoke: o.Inv, Return: o.Ret})
		}
	}
	return out
}

// TestRegisterCheckNoFalseAlarms: the detector must accept every
// generated legal history.
func TestRegisterCheckNoFalseAlarms(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ops := genLegalRegisterHistory(rng, 4+rng.Intn(20))
		if bad := CheckRegisterHistory(ops); len(bad) != 0 {
			t.Fatalf("seed %d: legal history flagged: %v\nops: %v", seed, bad, ops)
		}
	}
}

// TestRegisterCheckDifferentialAgainstWGL mutates legal histories and
// compares the polynomial detector against the exact WGL checker in
// both directions, exactly as the queue and stack differentials do.
func TestRegisterCheckDifferentialAgainstWGL(t *testing.T) {
	misses, total := 0, 0
	for seed := int64(0); seed < 400; seed++ {
		rng := rand.New(rand.NewSource(2000 + seed))
		ops := genLegalRegisterHistory(rng, 4+rng.Intn(10))
		if len(ops) == 0 {
			continue
		}
		switch rng.Intn(5) {
		case 0: // swap two read values
			var rd []int
			for i, o := range ops {
				if o.Kind == RRead {
					rd = append(rd, i)
				}
			}
			if len(rd) >= 2 {
				i, j := rd[rng.Intn(len(rd))], rd[rng.Intn(len(rd))]
				ops[i].V, ops[j].V = ops[j].V, ops[i].V
			}
		case 1: // retarget a read to a random (often wrong) value
			for i, o := range ops {
				if o.Kind == RRead {
					ops[i].V = o.V%3 + 1
					break
				}
			}
		case 2: // corrupt a swap's witness
			for i, o := range ops {
				if o.Kind == RSwap {
					ops[i].W = o.W + 1
					break
				}
			}
		case 3: // flip a cas miss into a hit
			for i, o := range ops {
				if o.Kind == RCasMiss {
					ops[i].Kind = RCasHit
					ops[i].W = o.X
					break
				}
			}
		case 4: // shrink an interval to sequentialize an inversion
			i := rng.Intn(len(ops))
			ops[i].Ret = ops[i].Inv
		}
		total++
		wgl := StrictlyLinearizable(spec.NewSwap(0), toRegCalls(ops)).OK
		flagged := len(CheckRegisterHistory(ops)) != 0
		if flagged && wgl {
			t.Fatalf("seed %d: detector flagged a WGL-legal history: %v\n%v",
				seed, CheckRegisterHistory(ops), ops)
		}
		if !flagged && !wgl {
			misses++
			t.Logf("seed %d: WGL rejects but detector silent:\n%v", seed, ops)
		}
	}
	if misses > total/20 {
		t.Fatalf("detector missed %d/%d WGL-rejected histories", misses, total)
	}
}
