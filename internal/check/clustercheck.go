package check

import "fmt"

// A cluster of shard-servers is k-relaxed as one global object: values
// may legally overtake each other across shards and servers, so the
// whole-history FIFO/LIFO detectors would report false violations. But
// the composition still promises, globally, exactly-once conservation
// (no value invented, duplicated, or removed before insertion), honest
// emptiness (a cluster-level EMPTY scans every server, so a value
// certainly present throughout the scan refutes it), and, within each
// (server, shard), the full strict order of the hosted type. This file
// checks exactly that split: order-independent patterns on the global
// history, the polynomial FIFO/LIFO detectors on each (server, shard)
// projection, and a quantitative relaxation report — the maximum
// certain overtaking — instead of a cross-shard order verdict.

// Placement names the (server, shard) a value lived on. Cluster-level
// EMPTY removes have no single placement (the scan visited everything):
// they carry {-1, -1} and are checked globally only.
type Placement struct {
	Server, Shard int
}

// NoPlacement marks an operation without a single home (EMPTY scans).
var NoPlacement = Placement{Server: -1, Shard: -1}

// PlacedQOp is a closed queue-history operation with its placement.
type PlacedQOp struct {
	QOp
	At Placement
}

// PlacedSOp is a closed stack-history operation with its placement.
type PlacedSOp struct {
	SOp
	At Placement
}

// ClusterReport is the outcome of a cluster history check.
type ClusterReport struct {
	// Violations lists every detected violation (global patterns first,
	// then per-(server,shard) order violations, prefixed with their
	// placement).
	Violations []string
	// MaxOvertake is the largest number of values that CERTAINLY overtook
	// one value: for the reported value a, the count of values b with
	// insert(a) happening-before insert(b) and remove(b) happening-before
	// remove(a). It measures the cluster's observed order relaxation; 0
	// means the merged history happens to be globally order-consistent.
	MaxOvertake int
	// Shards counts the distinct placements that carried operations.
	Shards int
}

// CheckClusterQueueHistory checks a merged, closed, cluster-wide queue
// history (distinct values) as described in the file comment.
func CheckClusterQueueHistory(ops []PlacedQOp) ClusterReport {
	var rep ClusterReport
	report := func(format string, args ...any) {
		rep.Violations = append(rep.Violations, fmt.Sprintf(format, args...))
	}

	ins := map[uint64]PlacedQOp{}
	rem := map[uint64]PlacedQOp{}
	var empties []PlacedQOp
	for _, o := range ops {
		switch o.Kind {
		case QEnq:
			if prev, dup := ins[o.V]; dup {
				report("value %d inserted twice: %s@%v and %s@%v", o.V, prev.QOp, prev.At, o.QOp, o.At)
				continue
			}
			ins[o.V] = o
		case QDeq:
			if prev, dup := rem[o.V]; dup {
				report("value %d removed twice: %s@%v and %s@%v", o.V, prev.QOp, prev.At, o.QOp, o.At)
				continue
			}
			rem[o.V] = o
		case QDeqEmpty:
			empties = append(empties, o)
		}
	}

	// Global pattern: removes of values never inserted, or that certainly
	// left the cluster before entering it, or that hopped placements.
	for v, d := range rem {
		e, ok := ins[v]
		if !ok {
			report("value %d removed but never inserted: %s@%v", v, d.QOp, d.At)
			continue
		}
		if hb(d.QOp, e.QOp) {
			report("remove returns before insert begins for %d: %s vs %s", v, d.QOp, e.QOp)
		}
		if d.At != e.At {
			report("value %d migrated: inserted at %v, removed at %v", v, e.At, d.At)
		}
	}

	// Global pattern: impossible EMPTYs. A cluster-level EMPTY scanned
	// every server and shard within its interval; a value inserted before
	// it began and not removed until after it returned was present at the
	// scan's visit of its shard.
	for _, em := range empties {
		for v, e := range ins {
			if !hb(e.QOp, em.QOp) {
				continue
			}
			d, removed := rem[v]
			if !removed || hb(em.QOp, d.QOp) {
				report("cluster EMPTY at %s while value %d was certainly present (ins %s@%v)",
					em.QOp, v, e.QOp, e.At)
				break
			}
		}
	}

	// Per-(server,shard) strict FIFO on the projected histories.
	proj := map[Placement][]QOp{}
	for _, o := range ops {
		if o.At == NoPlacement {
			continue
		}
		proj[o.At] = append(proj[o.At], o.QOp)
	}
	rep.Shards = len(proj)
	for at, sub := range proj {
		for _, v := range CheckQueueHistory(sub) {
			report("server %d shard %d: %s", at.Server, at.Shard, v)
		}
	}

	rep.MaxOvertake = maxOvertake(ins, rem)
	return rep
}

// maxOvertake computes the certain-overtaking metric over the (already
// deduplicated) insert and remove maps.
func maxOvertake(ins, rem map[uint64]PlacedQOp) int {
	vals := make([]uint64, 0, len(ins))
	for v := range ins {
		vals = append(vals, v)
	}
	max := 0
	for _, a := range vals {
		da, ok := rem[a]
		if !ok {
			continue
		}
		n := 0
		for _, b := range vals {
			if a == b {
				continue
			}
			db, ok := rem[b]
			if !ok {
				continue
			}
			if hb(ins[a].QOp, ins[b].QOp) && hb(db.QOp, da.QOp) {
				n++
			}
		}
		if n > max {
			max = n
		}
	}
	return max
}

// CheckClusterStackHistory is the stack analogue: the same global
// conservation, migration, and emptiness patterns, strict LIFO per
// (server, shard), and the certain-overtaking metric (for a stack,
// a overtaken by b means push(a) before push(b) yet pop(b) AFTER pop(a)
// would be LIFO-legal — so the metric instead counts certain FIFO-style
// inversions, which for a stack measure how far the merged history is
// from a queue-like drain and are reported for symmetry, not checked).
func CheckClusterStackHistory(ops []PlacedSOp) ClusterReport {
	var rep ClusterReport
	report := func(format string, args ...any) {
		rep.Violations = append(rep.Violations, fmt.Sprintf(format, args...))
	}

	ins := map[uint64]PlacedSOp{}
	rem := map[uint64]PlacedSOp{}
	var empties []PlacedSOp
	for _, o := range ops {
		switch o.Kind {
		case SPush:
			if prev, dup := ins[o.V]; dup {
				report("value %d pushed twice: %s@%v and %s@%v", o.V, prev.SOp, prev.At, o.SOp, o.At)
				continue
			}
			ins[o.V] = o
		case SPop:
			if prev, dup := rem[o.V]; dup {
				report("value %d popped twice: %s@%v and %s@%v", o.V, prev.SOp, prev.At, o.SOp, o.At)
				continue
			}
			rem[o.V] = o
		case SPopEmpty:
			empties = append(empties, o)
		}
	}

	for v, d := range rem {
		e, ok := ins[v]
		if !ok {
			report("value %d popped but never pushed: %s@%v", v, d.SOp, d.At)
			continue
		}
		if shb(d.SOp, e.SOp) {
			report("pop returns before push begins for %d: %s vs %s", v, d.SOp, e.SOp)
		}
		if d.At != e.At {
			report("value %d migrated: pushed at %v, popped at %v", v, e.At, d.At)
		}
	}

	for _, em := range empties {
		for v, e := range ins {
			if !shb(e.SOp, em.SOp) {
				continue
			}
			d, removed := rem[v]
			if !removed || shb(em.SOp, d.SOp) {
				report("cluster EMPTY at %s while value %d was certainly present (push %s@%v)",
					em.SOp, v, e.SOp, e.At)
				break
			}
		}
	}

	proj := map[Placement][]SOp{}
	for _, o := range ops {
		if o.At == NoPlacement {
			continue
		}
		proj[o.At] = append(proj[o.At], o.SOp)
	}
	rep.Shards = len(proj)
	for at, sub := range proj {
		for _, v := range CheckStackHistory(sub) {
			report("server %d shard %d: %s", at.Server, at.Shard, v)
		}
	}

	// Certain inversions w.r.t. insertion order (see the doc comment).
	for _, a := range keysOf(ins) {
		da, ok := rem[a]
		if !ok {
			continue
		}
		n := 0
		for _, b := range keysOf(ins) {
			if a == b {
				continue
			}
			db, ok := rem[b]
			if !ok {
				continue
			}
			if shb(ins[a].SOp, ins[b].SOp) && shb(db.SOp, da.SOp) {
				n++
			}
		}
		if n > rep.MaxOvertake {
			rep.MaxOvertake = n
		}
	}
	return rep
}

func keysOf(m map[uint64]PlacedSOp) []uint64 {
	out := make([]uint64, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	return out
}
