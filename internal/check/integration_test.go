package check_test

import (
	"sync"
	"testing"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/pmem"
	"repro/internal/spec"
)

// These tests are the executable form of Theorem 1: they drive the real
// DSS queue implementation, record the concurrent history (including
// crashes), and verify it against the formal D⟨queue⟩ specification under
// strict linearizability with the generic checker.

func newDSS(t *testing.T, threads int) (*core.Queue, *pmem.Heap) {
	t.Helper()
	h, err := pmem.New(pmem.Config{Words: 1 << 16, Mode: pmem.Tracked})
	if err != nil {
		t.Fatal(err)
	}
	q, err := core.New(h, 0, core.Config{Threads: threads, NodesPerThread: 32, ExtraNodes: 8})
	if err != nil {
		t.Fatal(err)
	}
	return q, h
}

// runDetectablePairs has each thread run `pairs` detectable
// enqueue/dequeue pairs, recording every call. It stops early on a crash.
func runDetectablePairs(t *testing.T, q *core.Queue, rec *check.Recorder, threads, pairs int) {
	t.Helper()
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			pmem.RunToCrash(func() {
				for i := 0; i < pairs; i++ {
					v := uint64(tid+1)*100 + uint64(i)
					rec.Begin(tid, spec.PrepOp(spec.Enqueue(v)))
					if err := q.PrepEnqueue(tid, v); err != nil {
						t.Errorf("prep: %v", err)
						return
					}
					rec.End(tid, spec.BottomResp())
					rec.Begin(tid, spec.ExecOp(spec.Enqueue(v)))
					q.ExecEnqueue(tid)
					rec.End(tid, spec.AckResp())
					rec.Begin(tid, spec.PrepOp(spec.Dequeue()))
					q.PrepDequeue(tid)
					rec.End(tid, spec.BottomResp())
					rec.Begin(tid, spec.ExecOp(spec.Dequeue()))
					got, ok := q.ExecDequeue(tid)
					if ok {
						rec.End(tid, spec.ValResp(got))
					} else {
						rec.End(tid, spec.EmptyResp())
					}
				}
			})
		}(tid)
	}
	wg.Wait()
}

func TestFailureFreeDetectableHistoriesLinearizable(t *testing.T) {
	const threads = 3
	const pairs = 2
	for trial := 0; trial < 10; trial++ {
		q, _ := newDSS(t, threads)
		rec := check.NewRecorder()
		runDetectablePairs(t, q, rec, threads, pairs)
		hist := rec.History()
		d := spec.Detectable(spec.NewQueue(), threads)
		if r := check.StrictlyLinearizable(d, hist); !r.OK {
			t.Fatalf("trial %d: history not linearizable w.r.t. D<queue>:\n%s",
				trial, check.FormatHistory(hist))
		}
	}
}

func TestCrashedDetectableHistoriesStrictlyLinearizable(t *testing.T) {
	const threads = 2
	const pairs = 2
	for trial := 0; trial < 60; trial++ {
		q, h := newDSS(t, threads)
		rec := check.NewRecorder()
		h.ArmCrash(uint64(10 + trial*7))
		runDetectablePairs(t, q, rec, threads, pairs)
		crashed := h.Crashed()
		if crashed {
			rec.CrashAll()
			h.Crash(pmem.NewRandomFates(int64(trial)))
			q.Recover()
			// Every thread resolves after recovery; the resolution is part
			// of the checked history.
			for tid := 0; tid < threads; tid++ {
				rec.Begin(tid, spec.ResolveOp())
				rec.End(tid, q.Resolve(tid).Resp())
			}
		}
		hist := rec.History()
		d := spec.Detectable(spec.NewQueue(), threads)
		if r := check.StrictlyLinearizable(d, hist); !r.OK {
			t.Fatalf("trial %d (crashed=%v): history not strictly linearizable:\n%s",
				trial, crashed, check.FormatHistory(hist))
		}
	}
}

// TestCrashSweepSingleThreadConformance exhaustively sweeps crash points
// for a single thread and feeds the complete history (with the post-crash
// resolve and a drain) to the checker — deterministic full conformance.
func TestCrashSweepSingleThreadConformance(t *testing.T) {
	for _, adv := range pmem.Adversaries(41) {
		for step := uint64(1); ; step++ {
			q, h := newDSS(t, 1)
			rec := check.NewRecorder()
			h.ArmCrash(step)
			runDetectablePairs(t, q, rec, 1, 2)
			if !h.Crashed() {
				break
			}
			rec.CrashAll()
			h.Crash(adv)
			q.Recover()
			rec.Begin(0, spec.ResolveOp())
			rec.End(0, q.Resolve(0).Resp())
			// Drain with non-detectable dequeues, also recorded.
			for {
				rec.Begin(0, spec.Dequeue())
				v, ok := q.Dequeue(0)
				if ok {
					rec.End(0, spec.ValResp(v))
				} else {
					rec.End(0, spec.EmptyResp())
					break
				}
			}
			hist := rec.History()
			d := spec.Detectable(spec.NewQueue(), 1)
			if r := check.StrictlyLinearizable(d, hist); !r.OK {
				t.Fatalf("step %d: history not strictly linearizable:\n%s",
					step, check.FormatHistory(hist))
			}
		}
	}
}

// TestExactlyOnceRetryAfterCrash exercises the paper's motivating use
// case: after a crash, a thread resolves its pending enqueue and re-
// executes it only if it did not take effect; the checker validates that
// the combined history is exactly-once.
func TestExactlyOnceRetryAfterCrash(t *testing.T) {
	for step := uint64(1); ; step++ {
		q, h := newDSS(t, 1)
		rec := check.NewRecorder()
		h.ArmCrash(step)
		crashed := pmem.RunToCrash(func() {
			v := uint64(42)
			rec.Begin(0, spec.PrepOp(spec.Enqueue(v)))
			if err := q.PrepEnqueue(0, v); err != nil {
				t.Fatal(err)
			}
			rec.End(0, spec.BottomResp())
			rec.Begin(0, spec.ExecOp(spec.Enqueue(v)))
			q.ExecEnqueue(0)
			rec.End(0, spec.AckResp())
		})
		if !crashed {
			break
		}
		rec.CrashAll()
		h.Crash(pmem.DropAll{})
		q.Recover()
		rec.Begin(0, spec.ResolveOp())
		res := q.Resolve(0)
		rec.End(0, res.Resp())
		if res.Op == core.OpEnqueue && !res.Executed {
			// Exactly-once retry: the prepared operation is still enabled.
			rec.Begin(0, spec.ExecOp(spec.Enqueue(42)))
			q.ExecEnqueue(0)
			rec.End(0, spec.AckResp())
		}
		// Regardless of where the crash hit, the queue must now contain
		// exactly one 42 — unless the prep itself was lost, in which case
		// resolve said (⊥,⊥) and no retry happened.
		var drained []uint64
		for {
			rec.Begin(0, spec.Dequeue())
			v, ok := q.Dequeue(0)
			if ok {
				rec.End(0, spec.ValResp(v))
				drained = append(drained, v)
			} else {
				rec.End(0, spec.EmptyResp())
				break
			}
		}
		wantOne := res.Op == core.OpEnqueue
		if wantOne && (len(drained) != 1 || drained[0] != 42) {
			t.Fatalf("step %d: retry semantics broken: drained %v (res %+v)", step, drained, res)
		}
		if !wantOne && len(drained) != 0 {
			t.Fatalf("step %d: value appeared without a resolvable prep: %v", step, drained)
		}
		hist := rec.History()
		d := spec.Detectable(spec.NewQueue(), 1)
		if r := check.StrictlyLinearizable(d, hist); !r.OK {
			t.Fatalf("step %d: retry history not strictly linearizable:\n%s",
				step, check.FormatHistory(hist))
		}
	}
}

// TestMixedDetectableAndPlainOps drives both API levels concurrently and
// checks the combined history.
func TestMixedDetectableAndPlainOps(t *testing.T) {
	const threads = 2
	for trial := 0; trial < 10; trial++ {
		q, _ := newDSS(t, threads)
		rec := check.NewRecorder()
		var wg sync.WaitGroup
		// Thread 0: detectable pairs. Thread 1: plain pairs.
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				v := uint64(100 + i)
				rec.Begin(0, spec.PrepOp(spec.Enqueue(v)))
				if err := q.PrepEnqueue(0, v); err != nil {
					t.Error(err)
					return
				}
				rec.End(0, spec.BottomResp())
				rec.Begin(0, spec.ExecOp(spec.Enqueue(v)))
				q.ExecEnqueue(0)
				rec.End(0, spec.AckResp())
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				v := uint64(200 + i)
				rec.Begin(1, spec.Enqueue(v))
				if err := q.Enqueue(1, v); err != nil {
					t.Error(err)
					return
				}
				rec.End(1, spec.AckResp())
				rec.Begin(1, spec.Dequeue())
				if got, ok := q.Dequeue(1); ok {
					rec.End(1, spec.ValResp(got))
				} else {
					rec.End(1, spec.EmptyResp())
				}
			}
		}()
		wg.Wait()
		hist := rec.History()
		d := spec.Detectable(spec.NewQueue(), threads)
		if r := check.StrictlyLinearizable(d, hist); !r.OK {
			t.Fatalf("trial %d: mixed history not linearizable:\n%s", trial, check.FormatHistory(hist))
		}
	}
}
