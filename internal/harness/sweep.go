package harness

import (
	"fmt"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/cwe"
	"repro/internal/pmem"
	"repro/internal/sharded"
	"repro/internal/spec"
)

// CrashSweepConfig parameterizes an exhaustive crash-point verification of
// the DSS queue (the executable check behind Theorem 1).
type CrashSweepConfig struct {
	// Pairs is the number of detectable enqueue/dequeue pairs the worker
	// runs before the sweep's horizon ends.
	Pairs int
	// Seed varies the random adversaries.
	Seed int64
	// Biases appends a BiasedFates adversary per entry to the canonical
	// suite: each value is the per-dirty-line survival probability. The
	// extremes 0 and 1 are already in the suite (DropAll / KeepAll);
	// interesting values are in between, e.g. 0.1 and 0.9, where most
	// lines share one fate but a few defect.
	Biases []float64
}

// CrashSweepReport summarizes a sweep.
type CrashSweepReport struct {
	// Steps is the number of crash points swept (per adversary).
	Steps int
	// Adversaries is the number of dirty-line schedules tried per step.
	Adversaries int
	// Histories is the number of complete histories checked.
	Histories int
	// Failures holds human-readable descriptions of any conformance
	// violations (empty on success).
	Failures []string
}

// OK reports whether the sweep found no violations.
func (r CrashSweepReport) OK() bool { return len(r.Failures) == 0 }

// String renders the report.
func (r CrashSweepReport) String() string {
	if r.OK() {
		return fmt.Sprintf("crash sweep: %d crash points x %d adversaries, %d histories, all strictly linearizable w.r.t. D<queue>",
			r.Steps, r.Adversaries, r.Histories)
	}
	return fmt.Sprintf("crash sweep: %d FAILURES out of %d histories (first: %s)",
		len(r.Failures), r.Histories, r.Failures[0])
}

// detectableQueue abstracts the prep/exec-shaped detectable queues for
// the generic sweep driver.
type detectableQueue interface {
	PrepEnq(tid int, v uint64) error
	ExecEnq(tid int) error
	PrepDeq(tid int)
	ExecDeq(tid int) (uint64, bool, error)
	ResolveResp(tid int) spec.Resp
	Recover()
	DrainOne(tid int) (uint64, bool)
}

type dssTarget struct{ q *core.Queue }

func (t dssTarget) PrepEnq(tid int, v uint64) error { return t.q.PrepEnqueue(tid, v) }
func (t dssTarget) ExecEnq(tid int) error           { t.q.ExecEnqueue(tid); return nil }
func (t dssTarget) PrepDeq(tid int)                 { t.q.PrepDequeue(tid) }
func (t dssTarget) ExecDeq(tid int) (uint64, bool, error) {
	v, ok := t.q.ExecDequeue(tid)
	return v, ok, nil
}
func (t dssTarget) ResolveResp(tid int) spec.Resp   { return t.q.Resolve(tid).Resp() }
func (t dssTarget) Recover()                        { t.q.Recover() }
func (t dssTarget) DrainOne(tid int) (uint64, bool) { return t.q.Dequeue(tid) }

type shardedTarget struct{ q *sharded.Queue }

func (t shardedTarget) PrepEnq(tid int, v uint64) error { return t.q.PrepEnqueue(tid, v) }
func (t shardedTarget) ExecEnq(tid int) error           { t.q.ExecEnqueue(tid); return nil }
func (t shardedTarget) PrepDeq(tid int)                 { t.q.PrepDequeue(tid) }
func (t shardedTarget) ExecDeq(tid int) (uint64, bool, error) {
	v, ok := t.q.ExecDequeue(tid)
	return v, ok, nil
}
func (t shardedTarget) ResolveResp(tid int) spec.Resp   { return t.q.Resolve(tid).Resp() }
func (t shardedTarget) Recover()                        { t.q.Recover() }
func (t shardedTarget) DrainOne(tid int) (uint64, bool) { return t.q.Dequeue(tid) }

type cweTarget struct{ q *cwe.Queue }

func (t cweTarget) PrepEnq(tid int, v uint64) error { return t.q.PrepEnqueue(tid, v) }
func (t cweTarget) ExecEnq(tid int) error           { return t.q.ExecEnqueue(tid) }
func (t cweTarget) PrepDeq(tid int)                 { t.q.PrepDequeue(tid) }
func (t cweTarget) ExecDeq(tid int) (uint64, bool, error) {
	return t.q.ExecDequeue(tid)
}
func (t cweTarget) ResolveResp(tid int) spec.Resp {
	r := t.q.Resolve(tid)
	switch {
	case r.IsEnqueue:
		inner := spec.BottomResp()
		if r.Executed {
			inner = spec.AckResp()
		}
		return spec.PairResp(true, spec.Enqueue(r.Arg), inner)
	case r.IsDequeue:
		inner := spec.BottomResp()
		if r.Executed {
			if r.Empty {
				inner = spec.EmptyResp()
			} else {
				inner = spec.ValResp(r.Val)
			}
		}
		return spec.PairResp(true, spec.Dequeue(), inner)
	default:
		return spec.PairResp(false, spec.Op{}, spec.BottomResp())
	}
}
func (t cweTarget) Recover()                        { t.q.Recover() }
func (t cweTarget) DrainOne(tid int) (uint64, bool) { return t.q.Dequeue(tid) }

// buildSweepTarget constructs a fresh detectable queue of the given kind.
func buildSweepTarget(impl Impl) (detectableQueue, *pmem.Heap, error) {
	h, err := pmem.New(pmem.Config{Words: 1 << 17, Mode: pmem.Tracked})
	if err != nil {
		return nil, nil, err
	}
	switch impl {
	case DSSDetectable:
		q, err := core.New(h, 0, core.Config{Threads: 1, NodesPerThread: 32, ExtraNodes: 8})
		if err != nil {
			return nil, nil, err
		}
		return dssTarget{q}, h, nil
	case ShardedDSS:
		// Two shards keep the step horizon short while still exercising
		// every cross-shard path (route movement, scan, abandonment).
		q, err := sharded.New(h, 0, sharded.Config{
			Shards: 2, Threads: 1, NodesPerThread: 32, ExtraNodes: 8,
		})
		if err != nil {
			return nil, nil, err
		}
		return shardedTarget{q}, h, nil
	case FastCASWithEffect, GeneralCASWith:
		q, err := cwe.New(h, 0, cwe.Config{
			Threads: 1, NodesPerThread: 32, ExtraNodes: 8,
			DescriptorsPerThread: 8, Fast: impl == FastCASWithEffect,
		})
		if err != nil {
			return nil, nil, err
		}
		return cweTarget{q}, h, nil
	default:
		return nil, nil, fmt.Errorf("harness: crash sweep does not support %q", impl)
	}
}

// CrashSweepDSSQueue sweeps the DSS queue (see CrashSweepImpl).
func CrashSweepDSSQueue(cfg CrashSweepConfig) CrashSweepReport {
	return CrashSweepImpl(DSSDetectable, cfg)
}

// CrashSweepImpl injects a crash at every primitive memory step of a
// single-threaded detectable workload on the given queue implementation,
// under every adversary in the canonical suite; after each crash it runs
// recovery, resolves, drains, and verifies the complete history against
// D⟨queue⟩ under strict linearizability.
func CrashSweepImpl(impl Impl, cfg CrashSweepConfig) CrashSweepReport {
	if cfg.Pairs <= 0 {
		cfg.Pairs = 2
	}
	advs := pmem.Adversaries(cfg.Seed)
	for i, p := range cfg.Biases {
		advs = append(advs, pmem.NewBiasedFates(cfg.Seed+100+int64(i), p))
	}
	report := CrashSweepReport{Adversaries: len(advs)}
	for ai, adv := range advs {
		steps := 0
		for step := uint64(1); ; step++ {
			q, h, err := buildSweepTarget(impl)
			if err != nil {
				report.Failures = append(report.Failures, err.Error())
				return report
			}
			rec := check.NewRecorder()
			h.ArmCrash(step)
			pmem.RunToCrash(func() {
				for i := 0; i < cfg.Pairs; i++ {
					v := uint64(100 + i)
					rec.Begin(0, spec.PrepOp(spec.Enqueue(v)))
					if err := q.PrepEnq(0, v); err != nil {
						return
					}
					rec.End(0, spec.BottomResp())
					rec.Begin(0, spec.ExecOp(spec.Enqueue(v)))
					if err := q.ExecEnq(0); err != nil {
						return
					}
					rec.End(0, spec.AckResp())
					rec.Begin(0, spec.PrepOp(spec.Dequeue()))
					q.PrepDeq(0)
					rec.End(0, spec.BottomResp())
					rec.Begin(0, spec.ExecOp(spec.Dequeue()))
					got, ok, err := q.ExecDeq(0)
					if err != nil {
						return
					}
					if ok {
						rec.End(0, spec.ValResp(got))
					} else {
						rec.End(0, spec.EmptyResp())
					}
				}
			})
			if !h.Crashed() {
				break // swept past the workload's end
			}
			steps++
			rec.CrashAll()
			h.Crash(adv)
			q.Recover()
			rec.Begin(0, spec.ResolveOp())
			rec.End(0, q.ResolveResp(0))
			for {
				rec.Begin(0, spec.Dequeue())
				v, ok := q.DrainOne(0)
				if ok {
					rec.End(0, spec.ValResp(v))
				} else {
					rec.End(0, spec.EmptyResp())
					break
				}
			}
			hist := rec.History()
			report.Histories++
			d := spec.Detectable(spec.NewQueue(), 1)
			if res := check.StrictlyLinearizable(d, hist); !res.OK {
				report.Failures = append(report.Failures,
					fmt.Sprintf("adversary %d, step %d:\n%s", ai, step, check.FormatHistory(hist)))
			}
		}
		if steps > report.Steps {
			report.Steps = steps
		}
	}
	return report
}
