package harness

import (
	"fmt"

	"repro/internal/check"
	"repro/internal/combine"
	"repro/internal/dss"
	"repro/internal/pmem"
	"repro/internal/sharded"
	"repro/internal/spec"
)

// CrashSweepConfig parameterizes an exhaustive crash-point verification of
// a detectable object (the executable check behind Theorem 1).
type CrashSweepConfig struct {
	// Pairs is the number of detectable insert/remove pairs the worker
	// runs before the sweep's horizon ends.
	Pairs int
	// Seed varies the random adversaries.
	Seed int64
	// Biases appends a BiasedFates adversary per entry to the canonical
	// suite: each value is the per-dirty-line survival probability. The
	// extremes 0 and 1 are already in the suite (DropAll / KeepAll);
	// interesting values are in between, e.g. 0.1 and 0.9, where most
	// lines share one fate but a few defect.
	Biases []float64
}

// CrashSweepReport summarizes a sweep.
type CrashSweepReport struct {
	// Object names the swept type ("queue", "stack", ...).
	Object string
	// Steps is the number of crash points swept (per adversary).
	Steps int
	// Adversaries is the number of dirty-line schedules tried per step.
	Adversaries int
	// Histories is the number of complete histories checked.
	Histories int
	// Failures holds human-readable descriptions of any conformance
	// violations (empty on success).
	Failures []string
}

// OK reports whether the sweep found no violations.
func (r CrashSweepReport) OK() bool { return len(r.Failures) == 0 }

// String renders the report.
func (r CrashSweepReport) String() string {
	if r.OK() {
		return fmt.Sprintf("crash sweep: %d crash points x %d adversaries, %d histories, all strictly linearizable w.r.t. D<%s>",
			r.Steps, r.Adversaries, r.Histories, r.Object)
	}
	return fmt.Sprintf("crash sweep: %d FAILURES out of %d histories (first: %s)",
		len(r.Failures), r.Histories, r.Failures[0])
}

// buildSweepTarget constructs a fresh detectable object of the given
// kind, paired with the dss.Type that supplies its spec vocabulary and
// reference model.
func buildSweepTarget(impl Impl) (dss.Object, dss.Type, *pmem.Heap, error) {
	h, err := pmem.New(pmem.Config{Words: 1 << 17, Mode: pmem.Tracked})
	if err != nil {
		return nil, dss.Type{}, nil, err
	}
	small := dss.Config{Threads: 1, NodesPerThread: 32, ExtraNodes: 8, Descriptors: 8}
	build := func(typ dss.Type) (dss.Object, dss.Type, *pmem.Heap, error) {
		obj, err := typ.New(h, 0, small)
		return obj, typ, h, err
	}
	buildSharded := func(typ dss.Type) (dss.Object, dss.Type, *pmem.Heap, error) {
		// Two shards keep the step horizon short while still exercising
		// every cross-shard path (route movement, scan, abandonment).
		q, err := sharded.New(h, 0, typ, sharded.Config{
			Shards: 2, Threads: 1, NodesPerThread: 32, ExtraNodes: 8,
		})
		return q, typ, h, err
	}
	switch impl {
	case DSSDetectable:
		return build(dss.QueueType)
	case DSSStack:
		return build(dss.StackType)
	case FastCASWithEffect:
		return build(dss.CWEFastType)
	case GeneralCASWith:
		return build(dss.CWEGeneralType)
	case ShardedDSS:
		return buildSharded(dss.QueueType)
	case ShardedStack:
		return buildSharded(dss.StackType)
	case CombinedDSS:
		// The combined type builds through the same generic path: its
		// Type claims the front's meta slot plus the inner queue's.
		return build(combine.TypeOver(dss.QueueType))
	case ShardedCombined:
		return buildSharded(combine.TypeOver(dss.QueueType))
	default:
		return nil, dss.Type{}, nil, fmt.Errorf("harness: crash sweep does not support %q", impl)
	}
}

// CrashSweepDSSQueue sweeps the DSS queue (see CrashSweepImpl).
func CrashSweepDSSQueue(cfg CrashSweepConfig) CrashSweepReport {
	return CrashSweepImpl(DSSDetectable, cfg)
}

// CrashSweepImpl injects a crash at every primitive memory step of a
// single-threaded detectable workload on the given object implementation,
// under every adversary in the canonical suite; after each crash it runs
// recovery, resolves, drains, and verifies the complete history against
// the type's detectable specification D⟨T⟩ under strict linearizability.
// The driver never names a concrete structure: everything flows through
// the dss.Object contract, so every implementation — flat or sharded,
// queue or stack — is swept by the same code.
func CrashSweepImpl(impl Impl, cfg CrashSweepConfig) CrashSweepReport {
	if cfg.Pairs <= 0 {
		cfg.Pairs = 2
	}
	advs := pmem.Adversaries(cfg.Seed)
	for i, p := range cfg.Biases {
		advs = append(advs, pmem.NewBiasedFates(cfg.Seed+100+int64(i), p))
	}
	report := CrashSweepReport{Adversaries: len(advs)}
	for ai, adv := range advs {
		steps := 0
		for step := uint64(1); ; step++ {
			q, typ, h, err := buildSweepTarget(impl)
			if err != nil {
				report.Failures = append(report.Failures, err.Error())
				return report
			}
			report.Object = typ.Name
			insert := func(v uint64) spec.Op { return typ.SpecOp(dss.Op{Kind: dss.Insert, Arg: v}) }
			remove := typ.SpecOp(dss.Op{Kind: dss.Remove})
			rec := check.NewRecorder()
			h.ArmCrash(step)
			pmem.RunToCrash(func() {
				for i := 0; i < cfg.Pairs; i++ {
					v := uint64(100 + i)
					rec.Begin(0, spec.PrepOp(insert(v)))
					if err := q.Prep(0, dss.Op{Kind: dss.Insert, Arg: v}); err != nil {
						return
					}
					rec.End(0, spec.BottomResp())
					rec.Begin(0, spec.ExecOp(insert(v)))
					if _, err := q.Exec(0); err != nil {
						return
					}
					rec.End(0, spec.AckResp())
					rec.Begin(0, spec.PrepOp(remove))
					if err := q.Prep(0, dss.Op{Kind: dss.Remove}); err != nil {
						return
					}
					rec.End(0, spec.BottomResp())
					rec.Begin(0, spec.ExecOp(remove))
					resp, err := q.Exec(0)
					if err != nil {
						return
					}
					if resp.Kind == dss.Val {
						rec.End(0, spec.ValResp(resp.Val))
					} else {
						rec.End(0, spec.EmptyResp())
					}
				}
			})
			if !h.Crashed() {
				break // swept past the workload's end
			}
			steps++
			rec.CrashAll()
			h.Crash(adv)
			q.Recover()
			rec.Begin(0, spec.ResolveOp())
			op, resp, ok := q.Resolve(0)
			rec.End(0, typ.ResolveResp(op, resp, ok))
			for {
				rec.Begin(0, remove)
				r, err := q.Invoke(0, dss.Op{Kind: dss.Remove})
				if err != nil {
					report.Failures = append(report.Failures,
						fmt.Sprintf("adversary %d, step %d: drain: %v", ai, step, err))
					break
				}
				if r.Kind == dss.Val {
					rec.End(0, spec.ValResp(r.Val))
				} else {
					rec.End(0, spec.EmptyResp())
					break
				}
			}
			hist := rec.History()
			report.Histories++
			d := spec.Detectable(typ.Model(), 1)
			if res := check.StrictlyLinearizable(d, hist); !res.OK {
				report.Failures = append(report.Failures,
					fmt.Sprintf("adversary %d, step %d:\n%s", ai, step, check.FormatHistory(hist)))
			}
		}
		if steps > report.Steps {
			report.Steps = steps
		}
	}
	return report
}
