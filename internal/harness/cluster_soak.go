package harness

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/check"
	"repro/internal/dss"
	"repro/internal/mp"
	"repro/internal/obs"
	"repro/internal/pmem"
	"repro/internal/spec"
)

// This file is the CLUSTER crash-storm soak: the deterministic DES of
// soak.go scaled to a multi-server sharded cluster. N shard-servers each
// run their own engine, generation fence, and sharded front; every
// client is a real mp.ClusterClient routing operations through its
// persisted cursor over a lossy simulated network; and every server has
// its own independent, seeded crash schedule, so storms OVERLAP: two
// servers can be down at once, a server can crash while another is
// inside its recovery window, and scheduled blackouts force every server
// down simultaneously. Recovery itself takes virtual time (image
// adoption at recover-begin, generation installation at recover-end), so
// the crash-during-recovery interleaving is reachable — a blackout
// landing inside a recovery window cancels it and crashes the machine
// again.
//
// Verification is the cluster split of internal/check: the merged
// client-observed history — every operation attributed to the (server,
// shard) that executed it via the fronts' tracers — is checked globally
// for exactly-once conservation and honest emptiness, per (server,
// shard) for strict FIFO/LIFO, and the certain-overtaking metric
// quantifies the k-relaxation the composition permits. The same seed
// produces a bit-identical report on every machine (single-baton
// cooperative schedule, exactly as in soak.go).

// ClusterSoakConfig parameterizes a cluster crash-storm soak run.
type ClusterSoakConfig struct {
	// Object selects the shard type: "queue" (default) or "stack".
	Object string
	// Seed determines everything, as in SoakConfig.
	Seed int64
	// Servers and ShardsPerServer shape the cluster.
	Servers         int
	ShardsPerServer int
	// Clients is the number of concurrent ClusterClients; OpsPerClient
	// the operations each performs.
	Clients      int
	OpsPerClient int
	// CrashesPerServer is each server's independent crash budget; crash
	// points are armed per server by heap step counts.
	CrashesPerServer int
	// Blackouts is the number of scheduled cluster-wide power losses:
	// at each, every machine still up (or mid-recovery) crashes at the
	// same virtual instant.
	Blackouts int
	// BlackoutEvery spaces the scheduled blackouts in virtual time.
	BlackoutEvery time.Duration
	// MinCrashStep/MaxCrashStep bound the heap steps between a server's
	// restart and its next armed crash.
	MinCrashStep, MaxCrashStep uint64
	// MinDown/MaxDown bound the dark interval between crash and
	// recover-begin; MinRecover/MaxRecover the recovery window between
	// image adoption and the new generation serving.
	MinDown, MaxDown       time.Duration
	MinRecover, MaxRecover time.Duration
	// Net is the message adversary (shared by every client-server path);
	// RTO and Policy as in SoakConfig.
	Net    mp.FaultConfig
	RTO    time.Duration
	Policy mp.RetryPolicy
}

func (c *ClusterSoakConfig) defaults() {
	if c.Object == "" {
		c.Object = "queue"
	}
	if c.Servers <= 0 {
		c.Servers = 4
	}
	if c.ShardsPerServer <= 0 {
		c.ShardsPerServer = 2
	}
	if c.Clients <= 0 {
		c.Clients = 8
	}
	if c.OpsPerClient <= 0 {
		c.OpsPerClient = 40
	}
	if c.CrashesPerServer <= 0 {
		c.CrashesPerServer = 10
	}
	if c.Blackouts < 0 {
		c.Blackouts = 0
	} else if c.Blackouts == 0 {
		c.Blackouts = 2
	}
	if c.BlackoutEvery <= 0 {
		c.BlackoutEvery = 20 * time.Millisecond
	}
	if c.MinCrashStep == 0 {
		// Each server sees only ~1/Servers of the traffic, so its crash
		// points are spaced tighter than the single-server soak's.
		c.MinCrashStep = 80
	}
	if c.MaxCrashStep <= c.MinCrashStep {
		c.MaxCrashStep = c.MinCrashStep + 420
	}
	if c.MinDown <= 0 {
		c.MinDown = 200 * time.Microsecond
	}
	if c.MaxDown <= c.MinDown {
		c.MaxDown = c.MinDown + 800*time.Microsecond
	}
	if c.MinRecover <= 0 {
		// Recovery windows are deliberately wide relative to downtimes:
		// the crash-during-another-server's-recovery interleaving needs
		// neighbors' windows to actually overlap.
		c.MinRecover = 100 * time.Microsecond
	}
	if c.MaxRecover <= c.MinRecover {
		c.MaxRecover = c.MinRecover + 500*time.Microsecond
	}
	if c.Net == (mp.FaultConfig{}) {
		c.Net = mp.FaultConfig{
			DropRequest: 0.05,
			DropReply:   0.05,
			Duplicate:   0.05,
			Delay:       0.25,
			MaxDelay:    300 * time.Microsecond,
		}
	}
	if c.RTO <= 0 {
		c.RTO = 2 * time.Millisecond
	}
	if c.Policy.MaxAttempts <= 0 {
		c.Policy.MaxAttempts = 2048
	}
	if c.Policy.BackoffBase <= 0 {
		c.Policy.BackoffBase = 100 * time.Microsecond
	}
	if c.Policy.BackoffMax <= 0 {
		c.Policy.BackoffMax = 2 * time.Millisecond
	}
}

// ClusterSoakReport is the machine-readable result of one cluster soak.
// For a fixed config it is bit-identical across runs and machines.
type ClusterSoakReport struct {
	// Object names the shard type; empty means "queue".
	Object string `json:"object,omitempty"`

	Seed            int64 `json:"seed"`
	Servers         int   `json:"servers"`
	ShardsPerServer int   `json:"shards_per_server"`
	Clients         int   `json:"clients"`
	OpsPerClient    int   `json:"ops_per_client"`

	// Crashes totals the fired crash/restart cycles across servers
	// (blackout-forced crashes included); CrashesByServer breaks them
	// down per lane; TargetCrashes is Servers x CrashesPerServer (the
	// independent arming budget, blackouts extra).
	Crashes         int   `json:"crashes"`
	TargetCrashes   int   `json:"target_crashes"`
	CrashesByServer []int `json:"crashes_by_server"`
	// Blackouts counts the scheduled cluster-wide power losses that
	// fired before the workload ended.
	Blackouts       int `json:"blackouts"`
	TargetBlackouts int `json:"target_blackouts"`

	// Cross-server storm overlap, tracked by the simulator itself (the
	// observed timeline reconstructs the same numbers from the traces).
	MaxConcurrentDown     int    `json:"max_concurrent_down"`
	AllDownWindows        int    `json:"all_down_windows"`
	CrashesDuringRecovery uint64 `json:"crashes_during_recovery"`

	// Client-observed outcomes (queue vocabulary; for the stack object
	// they count pushes, pops, and EMPTY pops).
	Ops           uint64 `json:"ops"`
	Enqueues      uint64 `json:"enqueues"`
	Dequeues      uint64 `json:"dequeues"`
	EmptyDequeues uint64 `json:"empty_dequeues"`
	Drained       uint64 `json:"drained"`

	// Retry-discipline counters, summed over all clients and servers.
	Attempts   uint64 `json:"attempts"`
	Retries    uint64 `json:"retries"`
	Resolves   uint64 `json:"resolves"`
	Timeouts   uint64 `json:"timeouts"`
	Downs      uint64 `json:"downs"`
	GenChanges uint64 `json:"gen_changes"`

	// Network fault counters.
	NetRequests        uint64 `json:"net_requests"`
	NetDroppedRequests uint64 `json:"net_dropped_requests"`
	NetDroppedReplies  uint64 `json:"net_dropped_replies"`
	NetDuplicates      uint64 `json:"net_duplicates"`
	NetDelays          uint64 `json:"net_delays"`

	// MaxOvertake is the certain-overtaking metric of the merged history
	// (the observed k-relaxation); ShardsTouched counts the (server,
	// shard) placements that carried operations.
	MaxOvertake   int `json:"max_overtake"`
	ShardsTouched int `json:"shards_touched"`

	// VirtualUS is the simulated duration in microseconds.
	VirtualUS int64 `json:"virtual_us"`

	// Violations lists every exactly-once, conservation, emptiness, or
	// per-shard order violation (sorted; empty on success).
	Violations []string `json:"violations"`
}

// OK reports whether the cluster soak found no violations.
func (r ClusterSoakReport) OK() bool { return len(r.Violations) == 0 }

// String renders the report for humans.
func (r ClusterSoakReport) String() string {
	if r.OK() {
		return fmt.Sprintf(
			"cluster soak: %d servers x %d shards, %d clients x %d ops, %d crashes (%d blackouts, max %d down, %d during recovery), %d ops ok (%d ins, %d rem, %d empty, %d drained), overtake %d, 0 violations",
			r.Servers, r.ShardsPerServer, r.Clients, r.OpsPerClient, r.Crashes,
			r.Blackouts, r.MaxConcurrentDown, r.CrashesDuringRecovery,
			r.Ops, r.Enqueues, r.Dequeues, r.EmptyDequeues, r.Drained, r.MaxOvertake)
	}
	return fmt.Sprintf("cluster soak: %d VIOLATIONS (first: %s)", len(r.Violations), r.Violations[0])
}

// csEvent and csQueue are the cluster sim's scheduled actions: a
// separate event type from soak.go's, so the single-server soak's
// deterministic schedule is untouched by this file.
type csEvent struct {
	at  int64
	seq uint64
	fn  func() *csClient
}

type csQueue []*csEvent

func (q csQueue) Len() int { return len(q) }
func (q csQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q csQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *csQueue) Push(x any)   { *q = append(*q, x.(*csEvent)) }
func (q *csQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// csClient is one simulated cluster client: the real ClusterClient plus
// the park/resume machinery and in-flight round-trip state.
type csClient struct {
	tid    int
	cc     *mp.ClusterClient
	resume chan struct{}

	token    uint64
	gotReply bool
	rep      mp.Reply
}

// csConn is the per-(client, server) Transport over the simulated
// network.
type csConn struct {
	s   *clusterSim
	c   *csClient
	srv int
}

func (cn *csConn) RoundTrip(m mp.Msg) mp.Reply { return cn.s.roundTrip(cn.c, cn.srv, m) }

// csServer is one shard-server's simulation state.
type csServer struct {
	eng *mp.Engine
	// up: serving. recovering: image adopted, generation not yet
	// installed (the recovery window). Neither: dark.
	up         bool
	recovering bool
	// epoch increments at every crash; scheduled recovery steps carry
	// the epoch they belong to and die if a blackout superseded them.
	epoch   uint64
	crashes int
	advs    []pmem.Adversary
	rng     *rand.Rand
	sink    *obs.Sink
}

// clusterSim is the whole simulation.
type clusterSim struct {
	cfg ClusterSoakConfig
	cl  *mp.Cluster
	srv []*csServer

	isStack  bool
	insertOp func(v uint64) spec.Op
	removeOp func() spec.Op

	now   int64
	evSeq uint64
	pq    csQueue

	netRng *rand.Rand

	clients []*csClient
	parked  chan bool
	live    int

	// Overlap bookkeeping (mirrored independently by the timeline).
	downCount       int
	allDown         bool
	recoveringCount int

	logical  int64
	hist     []check.PlacedQOp
	shist    []check.PlacedSOp
	insertAt map[uint64]check.Placement
	errs     []string

	clientSinks [][]*obs.Sink // [tid][server]

	rep ClusterSoakReport
}

func (s *clusterSim) schedule(at int64, fn func() *csClient) {
	if at < s.now {
		at = s.now
	}
	s.evSeq++
	heap.Push(&s.pq, &csEvent{at: at, seq: s.evSeq, fn: fn})
}

func (s *clusterSim) park(c *csClient) {
	s.parked <- false
	<-c.resume
}

// leg draws one network leg's latency (identical shape to soak.go).
func (s *clusterSim) leg() int64 {
	const base = int64(5 * time.Microsecond)
	delayed := s.netRng.Float64() < s.cfg.Net.Delay
	extra := int64(0)
	if s.cfg.Net.MaxDelay > 0 {
		extra = s.netRng.Int63n(int64(s.cfg.Net.MaxDelay))
	}
	if !delayed {
		return base
	}
	s.rep.NetDelays++
	return base + extra
}

// roundTrip carries one message to server srv through the simulated
// network (the fault machinery is soak.go's, per destination server).
func (s *clusterSim) roundTrip(c *csClient, srv int, m mp.Msg) mp.Reply {
	s.rep.NetRequests++
	c.token++
	tok := c.token
	c.gotReply = false

	reqDelay := s.leg()
	repDelay := s.leg()
	dupDelay := s.leg()
	dropReq := s.netRng.Float64() < s.cfg.Net.DropRequest
	dup := s.netRng.Float64() < s.cfg.Net.Duplicate
	dropRep := s.netRng.Float64() < s.cfg.Net.DropReply

	resumeWith := func(rep mp.Reply) func() *csClient {
		return func() *csClient {
			if c.token != tok || c.gotReply {
				return nil
			}
			c.gotReply = true
			c.rep = rep
			return c
		}
	}
	deliver := func(dropReply bool) func() *csClient {
		return func() *csClient {
			rep := s.serverApply(srv, m)
			if dropReply {
				return nil
			}
			s.schedule(s.now+repDelay, resumeWith(rep))
			return nil
		}
	}

	if dropReq {
		s.rep.NetDroppedRequests++
	} else {
		if dropRep {
			s.rep.NetDroppedReplies++
		}
		s.schedule(s.now+reqDelay, deliver(dropRep))
	}
	if dup {
		s.rep.NetDuplicates++
		s.schedule(s.now+reqDelay+dupDelay, deliver(false))
	}
	s.schedule(s.now+int64(s.cfg.RTO), resumeWith(mp.Reply{Err: mp.ErrTimeout}))

	s.park(c)
	return c.rep
}

// serverApply executes one delivered message at server srv.
func (s *clusterSim) serverApply(srv int, m mp.Msg) mp.Reply {
	sv := s.srv[srv]
	if !sv.up {
		return mp.Reply{Gen: sv.eng.Gen(), Err: &mp.DownError{Gen: sv.eng.Gen()}}
	}
	var rep mp.Reply
	crashed := pmem.RunToCrash(func() { rep = sv.eng.Apply(m) })
	if crashed {
		s.onCrash(srv)
		return mp.Reply{Gen: sv.eng.Gen(), Err: &mp.DownError{Gen: sv.eng.Gen()}}
	}
	return rep
}

// noteDown/noteServing maintain the cross-server overlap metrics. A
// server counts as down from its crash until its recover-END (the
// recovery window is still downtime), matching obs.ReconstructCluster.
func (s *clusterSim) noteDown() {
	s.downCount++
	if s.downCount > s.rep.MaxConcurrentDown {
		s.rep.MaxConcurrentDown = s.downCount
	}
	if s.downCount == s.cfg.Servers && !s.allDown {
		s.allDown = true
		s.rep.AllDownWindows++
	}
}

func (s *clusterSim) noteServing() {
	s.downCount--
	if s.downCount < s.cfg.Servers {
		s.allDown = false
	}
}

// onCrash records server srv's crash and schedules its two-step
// recovery: image adoption (recover-begin) after the dark interval,
// generation installation (recover-end) after the recovery window. A
// crash while ANY server is inside a recovery window counts toward the
// crashes-during-recovery interleaving metric.
func (s *clusterSim) onCrash(srv int) {
	sv := s.srv[srv]
	adv := sv.advs[sv.crashes%len(sv.advs)]
	sv.crashes++
	s.rep.Crashes++
	sv.sink.Event(obs.EvCrash, -1, sv.eng.Gen())

	others := s.recoveringCount
	if sv.recovering {
		others--
	}
	if others > 0 {
		s.rep.CrashesDuringRecovery++
	}
	if sv.recovering {
		// A recovering server is already counted down; its interrupted
		// recovery is cancelled (the epoch bump below kills the pending
		// recover-end event).
		sv.recovering = false
		s.recoveringCount--
	} else {
		sv.up = false
		s.noteDown()
	}

	sv.epoch++
	epoch := sv.epoch
	down := int64(s.cfg.MinDown) + sv.rng.Int63n(int64(s.cfg.MaxDown-s.cfg.MinDown))
	recover := int64(s.cfg.MinRecover) + sv.rng.Int63n(int64(s.cfg.MaxRecover-s.cfg.MinRecover))
	s.schedule(s.now+down, func() *csClient {
		if sv.epoch != epoch {
			return nil // a blackout superseded this recovery
		}
		sv.eng.RecoverImage(adv)
		sv.recovering = true
		s.recoveringCount++
		s.schedule(s.now+recover, func() *csClient {
			if sv.epoch != epoch {
				return nil
			}
			sv.eng.NewGeneration()
			sv.recovering = false
			s.recoveringCount--
			sv.up = true
			s.noteServing()
			s.armNextCrash(srv)
			return nil
		})
		return nil
	})
}

// blackout forces every machine not already dark to crash at this
// virtual instant: servers still serving die mid-air, and servers inside
// a recovery window have that recovery cancelled and die again.
func (s *clusterSim) blackout() {
	s.rep.Blackouts++
	for srv, sv := range s.srv {
		if !sv.up && !sv.recovering {
			continue // already dark; stays dark
		}
		sv.eng.Heap().CrashNow()
		s.onCrash(srv)
	}
}

// armNextCrash arms server srv's next crash point until its budget is
// spent.
func (s *clusterSim) armNextCrash(srv int) {
	sv := s.srv[srv]
	if sv.crashes >= s.cfg.CrashesPerServer {
		sv.eng.Heap().ArmCrash(0)
		return
	}
	span := int64(s.cfg.MaxCrashStep - s.cfg.MinCrashStep)
	step := s.cfg.MinCrashStep + uint64(sv.rng.Int63n(span))
	sv.eng.Heap().ArmCrash(step)
}

func (s *clusterSim) tick() int64 {
	s.logical++
	return s.logical
}

// placeOf attributes a removed value to the (server, shard) it was
// inserted at — values never migrate, so the insert-side attribution
// (recorded by the fronts' tracers at exec time) covers removes too.
func (s *clusterSim) placeOf(v uint64) check.Placement {
	if at, ok := s.insertAt[v]; ok {
		return at
	}
	// An unattributed value: surfaced by the checker as invented.
	return check.NoPlacement
}

// record appends one client-observed cluster operation to the history.
func (s *clusterSim) record(isInsert bool, op spec.Op, resp spec.Resp, inv, ret int64) bool {
	switch {
	case isInsert && resp.Kind == spec.Ack:
		s.rep.Enqueues++
		at := s.placeOf(op.Arg)
		if s.isStack {
			s.shist = append(s.shist, check.PlacedSOp{SOp: check.SOp{Kind: check.SPush, V: op.Arg, Inv: inv, Ret: ret}, At: at})
		} else {
			s.hist = append(s.hist, check.PlacedQOp{QOp: check.QOp{Kind: check.QEnq, V: op.Arg, Inv: inv, Ret: ret}, At: at})
		}
	case !isInsert && resp.Kind == spec.Val:
		s.rep.Dequeues++
		at := s.placeOf(resp.V)
		if s.isStack {
			s.shist = append(s.shist, check.PlacedSOp{SOp: check.SOp{Kind: check.SPop, V: resp.V, Inv: inv, Ret: ret}, At: at})
		} else {
			s.hist = append(s.hist, check.PlacedQOp{QOp: check.QOp{Kind: check.QDeq, V: resp.V, Inv: inv, Ret: ret}, At: at})
		}
	case !isInsert && resp.Kind == spec.Empty:
		s.rep.EmptyDequeues++
		if s.isStack {
			s.shist = append(s.shist, check.PlacedSOp{SOp: check.SOp{Kind: check.SPopEmpty, Inv: inv, Ret: ret}, At: check.NoPlacement})
		} else {
			s.hist = append(s.hist, check.PlacedQOp{QOp: check.QOp{Kind: check.QDeqEmpty, Inv: inv, Ret: ret}, At: check.NoPlacement})
		}
	default:
		return false
	}
	return true
}

// clientMain is one cluster client's workload (the soak shape: every
// third operation a remove, values globally unique).
func (s *clusterSim) clientMain(c *csClient) {
	<-c.resume
	for i := 0; i < s.cfg.OpsPerClient; i++ {
		var op spec.Op
		isInsert := i%3 != 0
		if !isInsert {
			op = s.removeOp()
		} else {
			op = s.insertOp(uint64(c.tid)*1_000_000 + uint64(i) + 1)
		}
		inv := s.tick()
		resp, err := c.cc.Do(op)
		ret := s.tick()
		if err != nil {
			s.errs = append(s.errs, fmt.Sprintf("client %d op %d (%s): %v", c.tid, i, op, err))
			break
		}
		s.rep.Ops++
		if !s.record(isInsert, op, resp, inv, ret) {
			s.errs = append(s.errs, fmt.Sprintf("client %d op %d (%s): unexpected response %s", c.tid, i, op, resp))
		}
	}
	s.parked <- true
}

// attribTracer records, per server, which (server, shard) executed each
// insert. Attribution keys on the Exec-begin event, not the Ack: an exec
// whose lines survive a mid-exec crash is acknowledged later through
// resolve without ever re-executing (so no completion event fires),
// while an exec whose lines are dropped is re-executed — possibly on
// another shard — and the newer begin overwrites. Either way the LAST
// Exec-begin for a value is the execution that survived, because a
// survived exec settles as executed and is never re-prepped.
type attribTracer struct {
	s      *clusterSim
	srv    int
	insSym string
}

func (t *attribTracer) OpBegin(shard, tid int, op spec.Op) {
	if op.Kind == spec.Exec && op.Sym == t.insSym {
		t.s.insertAt[op.Arg] = check.Placement{Server: t.srv, Shard: shard}
	}
}

func (t *attribTracer) OpEnd(shard, tid int, resp spec.Resp) {}

// drain finishes every dark server's pending recovery synchronously
// (the crash itself was already counted by onCrash), then empties every
// shard of every server directly, recording each value with its exact
// placement. The drain bypasses the network and the clients: it is the
// post-mortem audit of what the cluster still holds.
func (s *clusterSim) drain() {
	for _, sv := range s.srv {
		sv.epoch++ // cancel any still-scheduled recovery steps
		if !sv.up {
			if sv.recovering {
				sv.recovering = false
				s.recoveringCount--
			} else {
				// Dark before recover-begin: adopt an image with the
				// adversary the pending recovery captured (onCrash drew
				// it before incrementing the crash count).
				n := len(sv.advs)
				sv.eng.RecoverImage(sv.advs[(sv.crashes+n-1)%n])
			}
			sv.eng.NewGeneration()
			sv.up = true
			s.noteServing()
		}
		sv.eng.Heap().ArmCrash(0)
	}
	for srv := range s.srv {
		f := s.cl.Front(srv)
		for j := 0; j < s.cfg.ShardsPerServer; j++ {
			for tid := 0; ; tid = (tid + 1) % s.cfg.Clients {
				resp, err := f.Shard(j).Invoke(tid, dss.Op{Kind: dss.Remove})
				if err != nil {
					s.errs = append(s.errs, fmt.Sprintf("drain (server %d shard %d tid %d): %v", srv, j, tid, err))
					return
				}
				if resp.Kind != dss.Val {
					break
				}
				inv := s.tick()
				at := check.Placement{Server: srv, Shard: j}
				if s.isStack {
					s.shist = append(s.shist, check.PlacedSOp{SOp: check.SOp{Kind: check.SPop, V: resp.Val, Inv: inv, Ret: s.tick()}, At: at})
				} else {
					s.hist = append(s.hist, check.PlacedQOp{QOp: check.QOp{Kind: check.QDeq, V: resp.Val, Inv: inv, Ret: s.tick()}, At: at})
				}
				s.rep.Drained++
			}
		}
	}
}

// verify runs the cluster checker plus exact conservation.
func (s *clusterSim) verify() {
	violations := append([]string{}, s.errs...)
	inserted := map[uint64]bool{}
	removed := map[uint64]int{}
	if s.isStack {
		crep := check.CheckClusterStackHistory(s.shist)
		violations = append(violations, crep.Violations...)
		s.rep.MaxOvertake = crep.MaxOvertake
		s.rep.ShardsTouched = crep.Shards
		for _, o := range s.shist {
			switch o.Kind {
			case check.SPush:
				inserted[o.V] = true
			case check.SPop:
				removed[o.V]++
			}
		}
	} else {
		crep := check.CheckClusterQueueHistory(s.hist)
		violations = append(violations, crep.Violations...)
		s.rep.MaxOvertake = crep.MaxOvertake
		s.rep.ShardsTouched = crep.Shards
		for _, o := range s.hist {
			switch o.Kind {
			case check.QEnq:
				inserted[o.V] = true
			case check.QDeq:
				removed[o.V]++
			}
		}
	}

	var lost []uint64
	for v := range inserted {
		if removed[v] == 0 {
			lost = append(lost, v)
		}
	}
	sort.Slice(lost, func(i, j int) bool { return lost[i] < lost[j] })
	for _, v := range lost {
		violations = append(violations, fmt.Sprintf("conservation: value %d inserted but never removed (drain included)", v))
	}

	sort.Strings(violations)
	s.rep.Violations = violations
}

// ClusterSoakObservation is the observability side of a cluster soak:
// per-side snapshots and the per-server-lane cluster timeline.
type ClusterSoakObservation struct {
	// Servers aggregates every server sink; Clients every per-(client,
	// server) sink; Merged their sum.
	Servers obs.Snapshot
	Clients obs.Snapshot
	Merged  obs.Snapshot
	// Timeline is the lane-attributed crash/recovery reconstruction.
	Timeline obs.ClusterTimeline
}

// RunClusterSoak executes one deterministic cluster crash-storm soak.
func RunClusterSoak(cfg ClusterSoakConfig) (ClusterSoakReport, error) {
	rep, _, err := RunClusterSoakObserved(cfg)
	return rep, err
}

// RunClusterSoakObserved is RunClusterSoak plus the observability layer.
// The report is byte-for-byte the one an unobserved run would produce
// (recording draws no rng and no heap steps), and the observation is
// deterministic for a fixed config.
func RunClusterSoakObserved(cfg ClusterSoakConfig) (ClusterSoakReport, ClusterSoakObservation, error) {
	cfg.defaults()
	var typ dss.Type
	var insertOp func(uint64) spec.Op
	var removeOp func() spec.Op
	switch cfg.Object {
	case "queue":
		typ, insertOp, removeOp = dss.QueueType, spec.Enqueue, spec.Dequeue
	case "stack":
		typ, insertOp, removeOp = dss.StackType, spec.Push, spec.Pop
	default:
		return ClusterSoakReport{}, ClusterSoakObservation{}, fmt.Errorf("harness: unknown cluster soak object %q", cfg.Object)
	}

	cl, err := mp.NewCluster(mp.ClusterConfig{
		Servers:         cfg.Servers,
		ShardsPerServer: cfg.ShardsPerServer,
		Clients:         cfg.Clients,
		Type:            typ,
		// Every insert a client performs may live until the drain, and
		// could in principle all land on one shard of one server.
		NodesPerThread: cfg.OpsPerClient + 8,
		ExtraNodes:     2*cfg.Clients + 8,
	})
	if err != nil {
		return ClusterSoakReport{}, ClusterSoakObservation{}, err
	}

	s := &clusterSim{
		cfg:      cfg,
		cl:       cl,
		isStack:  cfg.Object == "stack",
		insertOp: insertOp,
		removeOp: removeOp,
		netRng:   rand.New(rand.NewSource(cfg.Seed + 1)),
		insertAt: map[uint64]check.Placement{},
		parked:   make(chan bool),
		rep: ClusterSoakReport{
			Seed:            cfg.Seed,
			Servers:         cfg.Servers,
			ShardsPerServer: cfg.ShardsPerServer,
			Clients:         cfg.Clients,
			OpsPerClient:    cfg.OpsPerClient,
			TargetCrashes:   cfg.Servers * cfg.CrashesPerServer,
			TargetBlackouts: cfg.Blackouts,
			Violations:      []string{},
		},
	}
	if cfg.Object != "queue" {
		s.rep.Object = cfg.Object
	}
	vclock := func() uint64 { return uint64(s.now) }

	insSym := insertOp(0).Sym
	for srv := 0; srv < cfg.Servers; srv++ {
		sv := &csServer{
			eng: cl.Server(srv).Engine(),
			up:  true,
			rng: rand.New(rand.NewSource(cfg.Seed + 2 + int64(srv))),
			advs: []pmem.Adversary{
				pmem.NewRandomFates(cfg.Seed + 3 + 10*int64(srv)),
				pmem.DropAll{},
				pmem.NewBiasedFates(cfg.Seed+4+10*int64(srv), 0.25),
				pmem.KeepAll{},
				pmem.NewBiasedFates(cfg.Seed+5+10*int64(srv), 0.75),
			},
			sink: obs.NewSink(obs.Config{Clock: vclock}),
		}
		sv.eng.SetObs(sv.sink)
		cl.Front(srv).SetTracer(&attribTracer{s: s, srv: srv, insSym: insSym})
		sv.eng.NewGeneration()
		s.srv = append(s.srv, sv)
	}
	for srv := range s.srv {
		s.armNextCrash(srv)
	}

	for tid := 0; tid < cfg.Clients; tid++ {
		c := &csClient{tid: tid, resume: make(chan struct{}, 1)}
		ts := make([]mp.Transport, cfg.Servers)
		for srv := 0; srv < cfg.Servers; srv++ {
			ts[srv] = &csConn{s: s, c: c, srv: srv}
		}
		pol := cfg.Policy
		pol.Seed = cfg.Seed + 100 + 1000*int64(tid)
		c.cc = mp.NewClusterClientOver(cl, tid, pol, ts)
		var sinks []*obs.Sink
		for srv := 0; srv < cfg.Servers; srv++ {
			sink := obs.NewSink(obs.Config{Clock: vclock})
			c.cc.Inner(srv).SetObs(sink)
			sinks = append(sinks, sink)
		}
		s.clientSinks = append(s.clientSinks, sinks)
		cc := c
		c.cc.SetSleep(func(d time.Duration) {
			if d < 0 {
				d = 0
			}
			s.schedule(s.now+int64(d), func() *csClient { return cc })
			s.park(cc)
		})
		s.clients = append(s.clients, c)
		go s.clientMain(c)
		s.schedule(int64(tid)*int64(10*time.Microsecond), func() *csClient { return cc })
	}

	for i := 0; i < cfg.Blackouts; i++ {
		at := int64(cfg.BlackoutEvery) * int64(i+1)
		s.schedule(at, func() *csClient {
			s.blackout()
			return nil
		})
	}

	s.live = cfg.Clients
	for s.live > 0 {
		if s.pq.Len() == 0 {
			return ClusterSoakReport{}, ClusterSoakObservation{}, fmt.Errorf("harness: cluster soak deadlocked with %d clients live", s.live)
		}
		ev := heap.Pop(&s.pq).(*csEvent)
		if ev.at > s.now {
			s.now = ev.at
		}
		if c := ev.fn(); c != nil {
			c.resume <- struct{}{}
			if finished := <-s.parked; finished {
				s.live--
			}
		}
	}

	s.drain()
	s.verify()

	s.rep.VirtualUS = s.now / int64(time.Microsecond)
	for _, sv := range s.srv {
		s.rep.CrashesByServer = append(s.rep.CrashesByServer, sv.crashes)
	}
	for _, c := range s.clients {
		st := c.cc.Stats()
		s.rep.Attempts += st.Attempts
		s.rep.Retries += st.Retries
		s.rep.Resolves += st.Resolves
		s.rep.Timeouts += st.Timeouts
		s.rep.Downs += st.Downs
		s.rep.GenChanges += st.GenChanges
	}

	var ob ClusterSoakObservation
	var sources []obs.LaneSource
	for srv, sv := range s.srv {
		ob.Servers = ob.Servers.Add(sv.sink.Snapshot())
		sources = append(sources, obs.LaneSource{
			Server:      srv,
			TraceSource: obs.TraceSource{Name: fmt.Sprintf("server-%d", srv), Events: sv.sink.Events()},
		})
	}
	for tid, sinks := range s.clientSinks {
		for srv, sink := range sinks {
			ob.Clients = ob.Clients.Add(sink.Snapshot())
			sources = append(sources, obs.LaneSource{
				Server:      srv,
				TraceSource: obs.TraceSource{Name: fmt.Sprintf("client-%d/server-%d", tid, srv), Events: sink.Events()},
			})
		}
	}
	ob.Merged = ob.Servers.Add(ob.Clients)
	ob.Timeline = obs.ReconstructCluster("virtual_ns", cfg.Servers, sources...)
	return s.rep, ob, nil
}
