package harness

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// loadCombineBaseline reads the committed BENCH_combine.json from the
// repository root (two levels up from this package).
func loadCombineBaseline(t *testing.T) Report {
	t.Helper()
	path := filepath.Join("..", "..", "BENCH_combine.json")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read committed baseline: %v", err)
	}
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	return r
}

func fencesPerOpAt(t *testing.T, r Report, impl string, threads int) float64 {
	t.Helper()
	for _, s := range r.Series {
		if s.Impl != impl {
			continue
		}
		for _, p := range s.Points {
			if p.Threads == threads {
				if p.Ops == 0 {
					t.Fatalf("%s @%d threads: zero ops", impl, threads)
				}
				return float64(p.Fences) / float64(p.Ops)
			}
		}
	}
	t.Fatalf("%s @%d threads: no such point in BENCH_combine.json", impl, threads)
	return 0
}

// TestCombineBaselineReduction guards the tentpole's headline number in
// the committed report: at 20 threads, the combined front must spend at
// least 3x fewer fences per operation than the detectable baseline. A
// change that silently starts draining per-op instead of per-batch
// fails here before it ships a regressed BENCH_combine.json.
func TestCombineBaselineReduction(t *testing.T) {
	r := loadCombineBaseline(t)
	if r.Figure != "combine" {
		t.Fatalf("baseline figure = %q, want combine", r.Figure)
	}
	base := fencesPerOpAt(t, r, string(DSSDetectable), 20)
	comb := fencesPerOpAt(t, r, string(CombinedDSS), 20)
	if comb <= 0 {
		t.Fatalf("combined fences/op = %v", comb)
	}
	if ratio := base / comb; ratio < 3 {
		t.Fatalf("fences/op reduction at 20 threads = %.2fx (baseline %.2f, combined %.2f); want >= 3x",
			ratio, base, comb)
	}
}

// TestCombineBaselineCurrent verifies the committed report matches what
// this build measures — the determinism contract that makes
// BENCH_combine.json committable. It re-measures only the endpoints of
// the thread axis to keep the test fast; `make combine-smoke`
// regenerates and byte-compares the full file.
func TestCombineBaselineCurrent(t *testing.T) {
	r := loadCombineBaseline(t)
	for _, threads := range []int{1, 20} {
		p, err := RunVirtual(VirtualRunConfig{
			Impl: CombinedDSS, Threads: threads,
			PairsPerThread: r.Config.PairsPerThread,
		})
		if err != nil {
			t.Fatal(err)
		}
		want := fencesPerOpAt(t, r, string(CombinedDSS), threads)
		if got := float64(p.Fences) / float64(p.Ops); got != want {
			t.Fatalf("combined-dss @%d threads: measured %.4f fences/op, baseline has %.4f — regenerate BENCH_combine.json",
				threads, got, want)
		}
	}
}
