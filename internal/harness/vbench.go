package harness

import (
	"fmt"

	"repro/internal/vtime"
)

// VirtualRunConfig parameterizes one virtual-time throughput measurement
// (see internal/vtime: a deterministic simulated-multi-core measurement,
// the mode behind BENCH_sharded.json).
type VirtualRunConfig struct {
	Impl    Impl
	Threads int
	// Shards is the shard count for ShardedDSS (ignored otherwise).
	Shards int
	// PairsPerThread is the fixed per-thread workload: each thread runs
	// this many alternating enqueue/dequeue pairs (a fixed-work run, not
	// a fixed-duration one — virtual time has no wall clock to expire).
	PairsPerThread int
	// InitialItems seeds the queue; the paper uses 16.
	InitialItems int
	// AccessNS and FlushNS are the vtime cost model (defaults mirror the
	// Direct-mode calibration: 100 ns accesses, 300 ns persists).
	AccessNS int64
	FlushNS  int64
	// NodesPerThread sizes the node pools (whole-queue budget; sharded
	// builds divide it per shard as in Build).
	NodesPerThread int
}

func (c *VirtualRunConfig) defaults() {
	if c.PairsPerThread == 0 {
		c.PairsPerThread = 200
	}
	if c.InitialItems == 0 {
		c.InitialItems = 16
	}
	if c.AccessNS == 0 {
		c.AccessNS = 100
	}
	if c.FlushNS == 0 {
		c.FlushNS = 300
	}
	if c.NodesPerThread == 0 {
		c.NodesPerThread = 128
	}
}

// RunVirtual measures one configuration at one thread count in virtual
// time: the workload of Section 4 (alternating enqueue/dequeue pairs on a
// seeded queue), but with each thread's memory steps charged to a
// per-thread virtual clock under the min-clock scheduler, so per-thread
// stalls overlap as they would across real cores while contention
// (CAS retries, helping) emerges from the algorithm. The result is
// deterministic for a given build and configuration.
func RunVirtual(cfg VirtualRunConfig) (Point, error) {
	cfg.defaults()
	q, h, err := Build(cfg.Impl, BuildConfig{
		Threads:        cfg.Threads,
		NodesPerThread: cfg.NodesPerThread,
		Tracked:        true,
		Shards:         cfg.Shards,
	})
	if err != nil {
		return Point{}, err
	}
	for i := 0; i < cfg.InitialItems; i++ {
		if err := q.Enqueue(0, uint64(1000+i)); err != nil {
			return Point{}, fmt.Errorf("harness: seeding: %w", err)
		}
	}
	stats0 := h.Stats()

	workers := make([]func(), cfg.Threads)
	for tid := 0; tid < cfg.Threads; tid++ {
		tid := tid
		workers[tid] = func() {
			v := uint64(tid + 1)
			for p := 0; p < cfg.PairsPerThread; p++ {
				_ = q.Enqueue(tid, v)
				q.Dequeue(tid)
				v++
			}
		}
	}
	elapsed := vtime.Run(h, vtime.Costs{AccessNS: cfg.AccessNS, FlushNS: cfg.FlushNS}, workers)
	if elapsed <= 0 {
		return Point{}, fmt.Errorf("harness: virtual run measured no time")
	}
	stats := h.Stats().Sub(stats0)
	ops := uint64(cfg.Threads) * uint64(cfg.PairsPerThread) * 2
	return Point{
		Threads:      cfg.Threads,
		Mops:         float64(ops) / elapsed.Seconds() / 1e6,
		Ops:          ops,
		Flushes:      stats.Flushes,
		Fences:       stats.Fences,
		FencesElided: stats.FencesElided,
	}, nil
}

// ShardedSweepConfig parameterizes the shard-count sweep behind
// BENCH_sharded.json (and, with Object "stack", BENCH_sharded_stack.json).
type ShardedSweepConfig struct {
	// Object selects the detectable type the front is sharded over:
	// "queue" (default) or "stack".
	Object string
	// Threads lists the x-axis values.
	Threads []int
	// ShardCounts lists the sharded series; each becomes
	// "sharded-dss/N" ("sharded-stack/N" for the stack).
	ShardCounts []int
	// PairsPerThread, AccessNS, FlushNS, NodesPerThread as in
	// VirtualRunConfig.
	PairsPerThread int
	AccessNS       int64
	FlushNS        int64
	NodesPerThread int
}

func (c *ShardedSweepConfig) defaults() {
	if c.Object == "" {
		c.Object = "queue"
	}
	if len(c.Threads) == 0 {
		c.Threads = []int{1, 2, 4, 8, 12, 16, 20}
	}
	if len(c.ShardCounts) == 0 {
		c.ShardCounts = []int{2, 4, 8}
	}
	if c.PairsPerThread == 0 {
		c.PairsPerThread = 200
	}
	if c.AccessNS == 0 {
		c.AccessNS = 100
	}
	if c.FlushNS == 0 {
		c.FlushNS = 300
	}
	if c.NodesPerThread == 0 {
		c.NodesPerThread = 128
	}
}

// shardedImpls maps a ShardedSweepConfig.Object to its unsharded
// baseline and its sharded composition.
func shardedImpls(object string) (base, composed Impl, err error) {
	switch object {
	case "queue":
		return DSSDetectable, ShardedDSS, nil
	case "stack":
		return DSSStack, ShardedStack, nil
	default:
		return "", "", fmt.Errorf("harness: unknown sharded object %q (queue or stack)", object)
	}
}

// FigureSharded measures the object's detectable baseline and each
// sharded configuration over the thread range, all in virtual time (so
// the baseline and the sharded series are apples-to-apples).
func FigureSharded(cfg ShardedSweepConfig) ([]Series, error) {
	cfg.defaults()
	baseImpl, shardedImpl, err := shardedImpls(cfg.Object)
	if err != nil {
		return nil, err
	}
	runSeries := func(name string, impl Impl, shards int) (Series, error) {
		s := Series{Name: name}
		for _, th := range cfg.Threads {
			p, err := RunVirtual(VirtualRunConfig{
				Impl: impl, Threads: th, Shards: shards,
				PairsPerThread: cfg.PairsPerThread,
				AccessNS:       cfg.AccessNS,
				FlushNS:        cfg.FlushNS,
				NodesPerThread: cfg.NodesPerThread,
			})
			if err != nil {
				return Series{}, fmt.Errorf("harness: %s @%d threads: %w", name, th, err)
			}
			s.Points = append(s.Points, p)
		}
		return s, nil
	}
	out := make([]Series, 0, 1+len(cfg.ShardCounts))
	base, err := runSeries(string(baseImpl), baseImpl, 0)
	if err != nil {
		return nil, err
	}
	out = append(out, base)
	for _, n := range cfg.ShardCounts {
		s, err := runSeries(fmt.Sprintf("%s/%d", shardedImpl, n), shardedImpl, n)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// BuildShardedReport assembles the BENCH_sharded.json report. The flat
// schema of Report is reused: flush_latency_ns and access_delay carry the
// virtual cost model (they mean the same nanoseconds the Direct-mode
// figures calibrate), and the virtual-time provenance is recorded in the
// note and the sharded-only fields.
func BuildShardedReport(cfg ShardedSweepConfig, series []Series) Report {
	cfg.defaults()
	figure := "sharded"
	workload := "alternating enqueue/dequeue pairs, queue seeded with 16 items, fixed pairs per thread"
	if cfg.Object == "stack" {
		figure = "sharded-stack"
		workload = "alternating push/pop pairs, stack seeded with 16 items, fixed pairs per thread"
	}
	r := Report{
		Figure:   figure,
		Workload: workload,
		Config: ReportConfig{
			Threads:        cfg.Threads,
			Repeats:        1,
			FlushLatencyNS: cfg.FlushNS,
			AccessDelay:    int(cfg.AccessNS),
			ShardCounts:    cfg.ShardCounts,
			PairsPerThread: cfg.PairsPerThread,
			Note: "virtual-time mode (internal/vtime): deterministic min-clock scheduling, " +
				"throughput = ops / simulated makespan; baseline and sharded series measured identically",
		},
	}
	for _, s := range series {
		rs := ReportSeries{Impl: s.Name}
		for _, p := range s.Points {
			rs.Points = append(rs.Points, ReportPoint{
				Threads: p.Threads, Mops: p.Mops, Ops: p.Ops,
				Flushes: p.Flushes, Fences: p.Fences,
			})
		}
		r.Series = append(r.Series, rs)
	}
	return r
}

// CombineSweepConfig parameterizes the flat-combining comparison behind
// BENCH_combine.json: the detectable baseline against the combined front
// (and its sharded composition), measured identically in virtual time.
type CombineSweepConfig struct {
	// Threads lists the x-axis values.
	Threads []int
	// Shards is the shard count of the sharded+combined series (each
	// shard gets its own combiner; default 4, the root-slot budget's
	// ceiling for two-slot shard types).
	Shards int
	// PairsPerThread, AccessNS, FlushNS, NodesPerThread as in
	// VirtualRunConfig.
	PairsPerThread int
	AccessNS       int64
	FlushNS        int64
	NodesPerThread int
}

func (c *CombineSweepConfig) defaults() {
	if len(c.Threads) == 0 {
		c.Threads = []int{1, 2, 4, 8, 12, 16, 20}
	}
	if c.Shards == 0 {
		c.Shards = 4
	}
	if c.PairsPerThread == 0 {
		c.PairsPerThread = 200
	}
	if c.AccessNS == 0 {
		c.AccessNS = 100
	}
	if c.FlushNS == 0 {
		c.FlushNS = 300
	}
	if c.NodesPerThread == 0 {
		c.NodesPerThread = 128
	}
}

// FigureCombine measures the detectable queue baseline, the combined
// front over it, and the sharded composition of combined shards, over
// the thread range — the figure whose payload is the fences column:
// combining trades extra announcement flushes for one drain per batch,
// so fences/op falls as batches widen with the thread count.
func FigureCombine(cfg CombineSweepConfig) ([]Series, error) {
	cfg.defaults()
	runSeries := func(name string, impl Impl, shards int) (Series, error) {
		s := Series{Name: name}
		for _, th := range cfg.Threads {
			p, err := RunVirtual(VirtualRunConfig{
				Impl: impl, Threads: th, Shards: shards,
				PairsPerThread: cfg.PairsPerThread,
				AccessNS:       cfg.AccessNS,
				FlushNS:        cfg.FlushNS,
				NodesPerThread: cfg.NodesPerThread,
			})
			if err != nil {
				return Series{}, fmt.Errorf("harness: %s @%d threads: %w", name, th, err)
			}
			s.Points = append(s.Points, p)
		}
		return s, nil
	}
	out := make([]Series, 0, 3)
	for _, row := range []struct {
		name   string
		impl   Impl
		shards int
	}{
		{string(DSSDetectable), DSSDetectable, 0},
		{string(CombinedDSS), CombinedDSS, 0},
		{fmt.Sprintf("%s/%d", ShardedCombined, cfg.Shards), ShardedCombined, cfg.Shards},
	} {
		s, err := runSeries(row.name, row.impl, row.shards)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// BuildCombineReport assembles the BENCH_combine.json report in the
// standard flat schema; fences_elided appears on combined points only.
func BuildCombineReport(cfg CombineSweepConfig, series []Series) Report {
	cfg.defaults()
	r := Report{
		Figure: "combine",
		Workload: "alternating enqueue/dequeue pairs, queue seeded with 16 items, " +
			"fixed pairs per thread; combined series publish ops through per-client " +
			"announcement slots and batch-persist under one drain per combiner pass",
		Config: ReportConfig{
			Threads:        cfg.Threads,
			Repeats:        1,
			FlushLatencyNS: cfg.FlushNS,
			AccessDelay:    int(cfg.AccessNS),
			ShardCounts:    []int{cfg.Shards},
			PairsPerThread: cfg.PairsPerThread,
			Note: "virtual-time mode (internal/vtime): deterministic min-clock scheduling; " +
				"compare fences/op across series — combining amortizes one SFENCE drain " +
				"over every operation a combiner pass batches",
		},
	}
	for _, s := range series {
		rs := ReportSeries{Impl: s.Name}
		for _, p := range s.Points {
			rs.Points = append(rs.Points, ReportPoint{
				Threads: p.Threads, Mops: p.Mops, Ops: p.Ops,
				Flushes: p.Flushes, Fences: p.Fences,
				FencesElided: p.FencesElided,
			})
		}
		r.Series = append(r.Series, rs)
	}
	return r
}
