package harness

import (
	"strings"
	"testing"
	"time"
)

func TestBuildAllImpls(t *testing.T) {
	for _, impl := range AllImpls() {
		t.Run(string(impl), func(t *testing.T) {
			q, h, err := Build(impl, BuildConfig{Threads: 2, NodesPerThread: 32, Tracked: true})
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			if h == nil {
				t.Fatal("nil heap")
			}
			// Smoke: pairs through the adapter. The sharded compositions
			// are globally relaxed, so for them only the multiset is
			// checked; the flat queue configurations must be strict FIFO
			// and the flat stack strict LIFO.
			for v := uint64(1); v <= 4; v++ {
				if err := q.Enqueue(0, v); err != nil {
					t.Fatalf("enqueue: %v", err)
				}
			}
			seen := map[uint64]bool{}
			for i := uint64(0); i < 4; i++ {
				got, ok := q.Dequeue(1)
				if !ok {
					t.Fatalf("dequeue %d = empty", i+1)
				}
				switch impl {
				case ShardedDSS, ShardedStack, ShardedCombined:
					if seen[got] || got < 1 || got > 4 {
						t.Fatalf("dequeue returned %d (seen %v)", got, seen)
					}
					seen[got] = true
				case DSSStack:
					if want := 4 - i; got != want {
						t.Fatalf("pop = %d, want %d", got, want)
					}
				default:
					if want := i + 1; got != want {
						t.Fatalf("dequeue = %d, want %d", got, want)
					}
				}
			}
			if _, ok := q.Dequeue(0); ok {
				t.Fatal("queue should be empty")
			}
		})
	}
}

func TestBuildUnknownImpl(t *testing.T) {
	if _, _, err := Build(Impl("nope"), BuildConfig{Threads: 1}); err == nil {
		t.Fatal("unknown impl accepted")
	}
	if _, _, err := Build(MSQueue, BuildConfig{Threads: 0}); err == nil {
		t.Fatal("zero threads accepted")
	}
}

func TestRunThroughputProducesOps(t *testing.T) {
	for _, impl := range []Impl{MSQueue, DSSDetectable, LogQueue, FastCASWithEffect} {
		t.Run(string(impl), func(t *testing.T) {
			p, err := RunThroughput(RunConfig{
				Impl: impl, Threads: 2, Duration: 30 * time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			if p.Ops == 0 || p.Mops <= 0 {
				t.Fatalf("no throughput measured: %+v", p)
			}
			if impl != MSQueue && p.Flushes == 0 {
				t.Fatalf("%s issued no flushes", impl)
			}
			if impl == MSQueue && p.Flushes != 0 {
				t.Fatalf("MS queue issued %d flushes", p.Flushes)
			}
		})
	}
}

func TestFlushCountOrdering(t *testing.T) {
	// The detectable DSS path must issue strictly more flushes per op
	// than the non-detectable path — the mechanism behind Figure 5a.
	det, err := RunThroughput(RunConfig{Impl: DSSDetectable, Threads: 1, Duration: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	non, err := RunThroughput(RunConfig{Impl: DSSNonDetectable, Threads: 1, Duration: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	perOpDet := float64(det.Flushes) / float64(det.Ops)
	perOpNon := float64(non.Flushes) / float64(non.Ops)
	if perOpDet <= perOpNon {
		t.Fatalf("flushes/op: detectable %.2f <= non-detectable %.2f", perOpDet, perOpNon)
	}
}

func TestSweepAndFormatting(t *testing.T) {
	series, err := Sweep([]Impl{MSQueue, DSSDetectable}, SweepConfig{
		Threads:  []int{1, 2},
		Duration: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 || len(series[0].Points) != 2 {
		t.Fatalf("unexpected series shape: %+v", series)
	}
	table := FormatTable(series)
	if !strings.Contains(table, "ms-queue") || !strings.Contains(table, "threads") {
		t.Fatalf("table missing headers:\n%s", table)
	}
	csv := FormatCSV(series)
	if !strings.HasPrefix(csv, "threads,ms-queue,dss-detectable") {
		t.Fatalf("csv header wrong:\n%s", csv)
	}
	if len(strings.Split(strings.TrimSpace(csv), "\n")) != 3 {
		t.Fatalf("csv row count wrong:\n%s", csv)
	}
}

func TestFormatTableEmpty(t *testing.T) {
	if FormatTable(nil) != "" {
		t.Fatal("non-empty table for no series")
	}
}

func TestCrashSweepDSSQueueClean(t *testing.T) {
	report := CrashSweepDSSQueue(CrashSweepConfig{Pairs: 1, Seed: 7})
	if !report.OK() {
		t.Fatalf("sweep found violations: %s", report)
	}
	if report.Steps == 0 || report.Histories == 0 {
		t.Fatalf("sweep did nothing: %+v", report)
	}
	if !strings.Contains(report.String(), "strictly linearizable") {
		t.Fatalf("unexpected report: %s", report)
	}
}

// TestCrashSweepShardedClean is the satellite crash-point expansion: a
// crash is injected at every primitive memory step of a detectable
// workload on the 2-shard composition, under every adversary in the
// canonical suite (DropAll and KeepAll included); after recovery each
// complete history — resolve through the persisted route, then a full
// drain — must be strictly linearizable w.r.t. D⟨queue⟩, which is
// exactly the exactly-once claim of Theorem 1 lifted to the composition.
func TestCrashSweepShardedClean(t *testing.T) {
	// Two pairs make the round-robin cursors wrap across both shards, so
	// the sweep crosses the route-movement and abandonment code at every
	// possible crash point.
	report := CrashSweepImpl(ShardedDSS, CrashSweepConfig{Pairs: 2, Seed: 11})
	if !report.OK() {
		t.Fatalf("sharded sweep found violations: %s", report)
	}
	if report.Steps == 0 || report.Histories == 0 {
		t.Fatalf("sweep did nothing: %+v", report)
	}
	if report.Adversaries < 2 {
		t.Fatalf("expected the full adversary suite, got %d", report.Adversaries)
	}
}

// TestCrashSweepStackClean runs the exhaustive crash sweep over the flat
// DSS stack: every crash point, every adversary, every history checked
// against D⟨stack⟩ — Theorem 1's argument replayed on the second type.
func TestCrashSweepStackClean(t *testing.T) {
	report := CrashSweepImpl(DSSStack, CrashSweepConfig{Pairs: 2, Seed: 5})
	if !report.OK() {
		t.Fatalf("stack sweep found violations: %s", report)
	}
	if report.Steps == 0 || report.Histories == 0 {
		t.Fatalf("sweep did nothing: %+v", report)
	}
	if report.Object != "stack" {
		t.Fatalf("report names object %q", report.Object)
	}
}

// TestCrashSweepShardedStackClean is the payoff of the object-generic
// front: the identical sweep, on the 2-shard LIFO composition.
func TestCrashSweepShardedStackClean(t *testing.T) {
	report := CrashSweepImpl(ShardedStack, CrashSweepConfig{Pairs: 2, Seed: 13})
	if !report.OK() {
		t.Fatalf("sharded stack sweep found violations: %s", report)
	}
	if report.Steps == 0 || report.Histories == 0 {
		t.Fatalf("sweep did nothing: %+v", report)
	}
	if report.Adversaries < 2 {
		t.Fatalf("expected the full adversary suite, got %d", report.Adversaries)
	}
}

func TestFigureFunctions(t *testing.T) {
	cfg := SweepConfig{Threads: []int{1}, Duration: 10 * time.Millisecond}
	a, err := Figure5a(cfg)
	if err != nil || len(a) != 3 {
		t.Fatalf("Figure5a = (%d series, %v)", len(a), err)
	}
	b, err := Figure5b(cfg)
	if err != nil || len(b) != 4 {
		t.Fatalf("Figure5b = (%d series, %v)", len(b), err)
	}
	if a[0].Name != string(MSQueue) || b[0].Name != string(DSSDetectable) {
		t.Fatalf("series order wrong: %s / %s", a[0].Name, b[0].Name)
	}
}

func TestSweepUnknownImplFails(t *testing.T) {
	if _, err := Sweep([]Impl{"nope"}, SweepConfig{Threads: []int{1}, Duration: 5 * time.Millisecond}); err == nil {
		t.Fatal("unknown impl accepted by Sweep")
	}
}

// TestCrashSweepCombinedClean injects a crash at every primitive memory
// step of the announce→combine→publish persist chain of the combining
// front, under every adversary in the canonical suite, and checks every
// recovered history against D⟨queue⟩ under strict linearizability — the
// tentpole's claim that one drain per batch loses no detectability.
func TestCrashSweepCombinedClean(t *testing.T) {
	report := CrashSweepImpl(CombinedDSS, CrashSweepConfig{Pairs: 2, Seed: 17})
	if !report.OK() {
		t.Fatalf("combined sweep found violations: %s", report)
	}
	if report.Steps == 0 || report.Histories == 0 {
		t.Fatalf("sweep did nothing: %+v", report)
	}
	if report.Object != "combined-queue" {
		t.Fatalf("report names object %q", report.Object)
	}
}

// TestCrashSweepShardedCombinedClean sweeps the full composition: a
// 2-shard front whose shards each run their own combiner.
func TestCrashSweepShardedCombinedClean(t *testing.T) {
	report := CrashSweepImpl(ShardedCombined, CrashSweepConfig{Pairs: 2, Seed: 19})
	if !report.OK() {
		t.Fatalf("sharded+combined sweep found violations: %s", report)
	}
	if report.Steps == 0 || report.Histories == 0 {
		t.Fatalf("sweep did nothing: %+v", report)
	}
}
