package harness

import "testing"

// TestRunVirtualMetricsDeterministic pins the property that makes
// BENCH_metrics.json committable: an instrumented virtual run is
// byte-for-byte reproducible, and its export passes its own validator.
func TestRunVirtualMetricsDeterministic(t *testing.T) {
	cfg := VirtualRunConfig{Impl: ShardedDSS, Threads: 4, Shards: 2, PairsPerThread: 20}
	a, err := RunVirtualMetrics(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunVirtualMetrics(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ja, err := a.FormatJSON()
	if err != nil {
		t.Fatal(err)
	}
	jb, err := b.FormatJSON()
	if err != nil {
		t.Fatal(err)
	}
	if ja != jb {
		t.Fatalf("instrumented virtual runs diverged:\n%s\nvs\n%s", ja, jb)
	}
	if probs := a.Obs.Validate(); len(probs) > 0 {
		t.Fatalf("export invalid: %v", probs)
	}
	if want := uint64(4 * 20 * 2); a.Ops != want {
		t.Fatalf("ops = %d, want %d", a.Ops, want)
	}
	if a.Obs.Unit != "steps" {
		t.Fatalf("unit = %q, want steps", a.Obs.Unit)
	}
	if len(a.Obs.Shards) != 2 {
		t.Fatalf("exported %d shard counter sets, want 2", len(a.Obs.Shards))
	}
	// The workload is 4 threads x 20 pairs; every insert preps exactly
	// once, so the per-shard prep counters must sum to 2x that (insert
	// and remove preps both route through the front).
	var preps uint64
	for _, m := range a.Obs.Shards {
		preps += m["preps"]
	}
	if want := uint64(4 * 20 * 2); preps != want {
		t.Fatalf("shard preps sum to %d, want %d", preps, want)
	}
}

// TestMetricsFlushCountExact pins the seeding-withdrawal fix: a
// single-threaded detectable run costs a fixed number of persists per
// pair, so doubling the pair count must exactly double the flush and
// fence deltas. Before the fix, the seeder's lingering prep record made
// the first measured Prep pay one extra withdrawal persist, leaving a +1
// residue that broke this linearity (40001 flushes for a 40000-persist
// workload).
func TestMetricsFlushCountExact(t *testing.T) {
	run := func(pairs int) MetricsReport {
		r, err := RunVirtualMetrics(VirtualRunConfig{
			Impl: DSSDetectable, Threads: 1, PairsPerThread: pairs,
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(20), run(40)
	if 2*a.Heap.Flushes != b.Heap.Flushes {
		t.Fatalf("flushes not linear in pairs: %d at 20, %d at 40 (residual %+d)",
			a.Heap.Flushes, b.Heap.Flushes, int64(b.Heap.Flushes)-2*int64(a.Heap.Flushes))
	}
	if 2*a.Heap.Fences != b.Heap.Fences {
		t.Fatalf("fences not linear in pairs: %d at 20, %d at 40", a.Heap.Fences, b.Heap.Fences)
	}
	if want := float64(a.Heap.Flushes) / float64(a.Ops); a.FlushesPerOp != want {
		t.Fatalf("flushes_per_op = %v, want %v", a.FlushesPerOp, want)
	}
	if want := float64(a.Heap.Fences) / float64(a.Ops); a.FencesPerOp != want {
		t.Fatalf("fences_per_op = %v, want %v", a.FencesPerOp, want)
	}
}

// TestMetricsCombinedFencesPerOp pins the combining layer's fence
// economics end to end through the metrics path: single-threaded, every
// combined operation pays exactly one announcement drain and one batch
// drain — fences_per_op is exactly 2, with the inner object's fences
// elided rather than issued.
func TestMetricsCombinedFencesPerOp(t *testing.T) {
	r, err := RunVirtualMetrics(VirtualRunConfig{
		Impl: CombinedDSS, Threads: 1, PairsPerThread: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.FencesPerOp != 2 {
		t.Fatalf("fences_per_op = %v, want exactly 2", r.FencesPerOp)
	}
	if r.Heap.FencesElided == 0 {
		t.Fatal("no fences elided: inner persists were not batched")
	}
}

// TestSoakObservedTimelineMatchesReport pins the acceptance criterion
// that the merged recovery timeline accounts for exactly the crashes the
// soak report counts, cycle for cycle.
func TestSoakObservedTimelineMatchesReport(t *testing.T) {
	rep, ob, err := RunSoakObserved(SoakConfig{Seed: 7, Clients: 4, OpsPerClient: 12, Crashes: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("soak violations: %v", rep.Violations)
	}
	tl := ob.Timeline
	if tl.Crashes != uint64(rep.Crashes) {
		t.Fatalf("timeline has %d crashes, report %d", tl.Crashes, rep.Crashes)
	}
	if tl.Recoveries != tl.Crashes {
		t.Fatalf("timeline has %d recoveries for %d crashes", tl.Recoveries, tl.Crashes)
	}
	if got := uint64(len(tl.Cycles)); got != tl.Crashes {
		t.Fatalf("%d cycles for %d crashes", got, tl.Crashes)
	}
	for i, c := range tl.Cycles {
		if c.RecoverEnd < c.Crash {
			t.Fatalf("cycle %d: recovery ended at %d before crash at %d", i, c.RecoverEnd, c.Crash)
		}
		// NewGeneration installs gen 2 after the first crash and counts up
		// gaplessly from there.
		if want := uint64(i + 2); c.Gen != want {
			t.Fatalf("cycle %d installed gen %d, want %d", i, c.Gen, want)
		}
	}
	// The merged sink counters must agree with the report's client-side
	// tallies — two independent accounting paths for the same run.
	exp := ob.Merged.Export("virtual_ns")
	if got, want := exp.Counters["retries"], uint64(rep.Retries); got != want {
		t.Fatalf("sink counted %d retries, report %d", got, want)
	}
	if got, want := exp.Counters["gen_changes"], uint64(rep.GenChanges); got != want {
		t.Fatalf("sink counted %d gen changes, report %d", got, want)
	}
}
