package harness

import (
	"bytes"
	"encoding/json"
	"testing"
)

func marshalReport(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return append(b, '\n')
}

// TestClusterSoakDefaultsCleanAndOverlapping runs the committed cluster
// configuration (4 servers x 2 shards, 8 clients, overlapping per-server
// storms plus two scheduled blackouts) and requires both a clean verdict
// and a non-vacuous storm: the crash budget substantially spent, every
// server simultaneously dark at least once, and at least one crash
// landing inside another server's recovery window — the interleavings
// the single-server soak can never produce.
func TestClusterSoakDefaultsCleanAndOverlapping(t *testing.T) {
	rep, ob, err := RunClusterSoakObserved(ClusterSoakConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	if rep.Ops != uint64(rep.Clients*rep.OpsPerClient) {
		t.Fatalf("ops = %d, want %d", rep.Ops, rep.Clients*rep.OpsPerClient)
	}
	// Exactly-once conservation in the counters themselves: every value
	// inserted was removed by a client or by the drain.
	if rep.Enqueues != rep.Dequeues+rep.Drained {
		t.Fatalf("conservation: %d inserted, %d removed + %d drained",
			rep.Enqueues, rep.Dequeues, rep.Drained)
	}
	if rep.Crashes < rep.TargetCrashes/2 {
		t.Fatalf("storm too quiet: %d crashes of %d targeted", rep.Crashes, rep.TargetCrashes)
	}
	if rep.Blackouts != rep.TargetBlackouts {
		t.Fatalf("blackouts fired = %d, want %d", rep.Blackouts, rep.TargetBlackouts)
	}
	if rep.MaxConcurrentDown != rep.Servers {
		t.Fatalf("MaxConcurrentDown = %d, want %d (blackouts force all down)",
			rep.MaxConcurrentDown, rep.Servers)
	}
	if rep.AllDownWindows < 1 {
		t.Fatalf("AllDownWindows = %d, want >= 1", rep.AllDownWindows)
	}
	if rep.CrashesDuringRecovery < 1 {
		t.Fatalf("CrashesDuringRecovery = %d, want >= 1", rep.CrashesDuringRecovery)
	}
	if rep.ShardsTouched != rep.Servers*rep.ShardsPerServer {
		t.Fatalf("ShardsTouched = %d, want %d", rep.ShardsTouched, rep.Servers*rep.ShardsPerServer)
	}

	// The timeline is reconstructed from the traces alone; it must agree
	// with the simulator's own bookkeeping exactly.
	tl := ob.Timeline
	if int(tl.Crashes) != rep.Crashes {
		t.Fatalf("timeline crashes = %d, report %d", tl.Crashes, rep.Crashes)
	}
	if tl.Crashes != tl.Recoveries {
		t.Fatalf("timeline crashes %d != recoveries %d (drain finishes every recovery)",
			tl.Crashes, tl.Recoveries)
	}
	if tl.MaxConcurrentDown != rep.MaxConcurrentDown {
		t.Fatalf("timeline MaxConcurrentDown = %d, report %d", tl.MaxConcurrentDown, rep.MaxConcurrentDown)
	}
	if tl.AllDownWindows != rep.AllDownWindows {
		t.Fatalf("timeline AllDownWindows = %d, report %d", tl.AllDownWindows, rep.AllDownWindows)
	}
	if tl.CrashesDuringRecovery != rep.CrashesDuringRecovery {
		t.Fatalf("timeline CrashesDuringRecovery = %d, report %d",
			tl.CrashesDuringRecovery, rep.CrashesDuringRecovery)
	}
	if len(tl.Lanes) != rep.Servers {
		t.Fatalf("timeline lanes = %d, want %d", len(tl.Lanes), rep.Servers)
	}
	for s, lane := range tl.Lanes {
		if int(lane.Crashes) != rep.CrashesByServer[s] {
			t.Fatalf("lane %d crashes = %d, report %d", s, lane.Crashes, rep.CrashesByServer[s])
		}
	}
}

// TestClusterSoakDeterministic pins the determinism contract the
// committed BENCH_cluster_soak.json artifact rests on: same config, same
// bytes — for the report, for the timeline, and with or without the
// observability layer attached.
func TestClusterSoakDeterministic(t *testing.T) {
	cfg := ClusterSoakConfig{Seed: 1}
	r1, ob1, err := RunClusterSoakObserved(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, ob2, err := RunClusterSoakObserved(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(marshalReport(t, r1), marshalReport(t, r2)) {
		t.Fatal("cluster soak report is not deterministic")
	}
	t1, t2 := ob1.Timeline, ob2.Timeline
	t1.Events, t2.Events = nil, nil
	if !bytes.Equal(marshalReport(t, t1), marshalReport(t, t2)) {
		t.Fatal("cluster timeline is not deterministic")
	}

	// Observation is free: the unobserved run produces the same report.
	r3, err := RunClusterSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(marshalReport(t, r1), marshalReport(t, r3)) {
		t.Fatal("observed and unobserved cluster reports differ")
	}

	// And the seed actually matters.
	r4, err := RunClusterSoak(ClusterSoakConfig{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(marshalReport(t, r1), marshalReport(t, r4)) {
		t.Fatal("different seeds produced identical cluster reports")
	}
}

// TestClusterSoakStack runs the storm over a cluster of sharded stacks:
// the per-(server,shard) projection checks LIFO instead of FIFO, and
// conservation is object-independent.
func TestClusterSoakStack(t *testing.T) {
	rep, err := RunClusterSoak(ClusterSoakConfig{
		Object:           "stack",
		Seed:             3,
		Servers:          3,
		ShardsPerServer:  2,
		Clients:          6,
		OpsPerClient:     24,
		CrashesPerServer: 6,
		Blackouts:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	if rep.Object != "stack" {
		t.Fatalf("object = %q", rep.Object)
	}
	if rep.Enqueues != rep.Dequeues+rep.Drained {
		t.Fatalf("conservation: %d pushed, %d popped + %d drained",
			rep.Enqueues, rep.Dequeues, rep.Drained)
	}
	if rep.Crashes == 0 || rep.Blackouts == 0 {
		t.Fatalf("storm too quiet: %d crashes, %d blackouts", rep.Crashes, rep.Blackouts)
	}
}

// TestClusterSoakRejectsUnknownObject covers the config error path.
func TestClusterSoakRejectsUnknownObject(t *testing.T) {
	if _, err := RunClusterSoak(ClusterSoakConfig{Object: "deque"}); err == nil {
		t.Fatal("unknown object accepted")
	}
}
