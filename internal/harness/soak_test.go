package harness

import (
	"reflect"
	"testing"

	"repro/internal/check"
)

// TestSoakDeterministic pins the soak's core promise: the same config
// yields a bit-identical report, counters and all.
func TestSoakDeterministic(t *testing.T) {
	cfg := SoakConfig{Seed: 1}
	a, err := RunSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n%+v\nvs\n%+v", a, b)
	}
	if !a.OK() {
		t.Fatalf("violations: %v", a.Violations)
	}
}

// TestSoakStormTargets checks the default soak actually is a storm: the
// crash budget fires, faults of every kind are injected, clients observe
// generation changes, and both the EMPTY and the drain paths of the
// verifier are exercised.
func TestSoakStormTargets(t *testing.T) {
	rep, err := RunSoak(SoakConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("violations: %v", rep.Violations)
	}
	if rep.Crashes < 25 {
		t.Errorf("only %d crash cycles fired, want >= 25", rep.Crashes)
	}
	if rep.Clients < 8 {
		t.Errorf("only %d clients, want >= 8", rep.Clients)
	}
	if want := uint64(rep.Clients * rep.OpsPerClient); rep.Ops != want {
		t.Errorf("ops = %d, want %d (every client op must settle)", rep.Ops, want)
	}
	if rep.NetDroppedRequests == 0 || rep.NetDroppedReplies == 0 || rep.NetDuplicates == 0 || rep.NetDelays == 0 {
		t.Errorf("fault mix incomplete: %+v", rep)
	}
	if rep.GenChanges == 0 || rep.Resolves == 0 || rep.Retries == 0 {
		t.Errorf("retry discipline never exercised: %+v", rep)
	}
	if rep.Drained == 0 {
		t.Errorf("drain path never exercised")
	}
	if rep.EmptyDequeues == 0 {
		t.Errorf("EMPTY path never exercised")
	}
	if rep.Enqueues != rep.Dequeues+rep.Drained {
		t.Errorf("conservation mismatch in counters: %d enqueued, %d+%d dequeued",
			rep.Enqueues, rep.Dequeues, rep.Drained)
	}
}

// TestSoakSeedSweep runs a smaller storm under many seeds; every one must
// be violation-free.
func TestSoakSeedSweep(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		rep, err := RunSoak(SoakConfig{
			Seed: seed, Clients: 6, OpsPerClient: 24, Crashes: 15,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !rep.OK() {
			t.Fatalf("seed %d: violations: %v", seed, rep.Violations)
		}
		if rep.Ops != uint64(rep.Clients*rep.OpsPerClient) {
			t.Fatalf("seed %d: %d of %d ops settled", seed, rep.Ops, rep.Clients*rep.OpsPerClient)
		}
	}
}

// TestSoakStackStorm runs the crash storm with the server hosting the
// DSS stack: same network faults, same crash cadence, histories checked
// by the LIFO violation detector plus conservation. Determinism must
// hold for the stack path exactly as for the queue path.
func TestSoakStackStorm(t *testing.T) {
	cfg := SoakConfig{Seed: 1, Object: "stack"}
	a, err := RunSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !a.OK() {
		t.Fatalf("violations: %v", a.Violations)
	}
	if a.Object != "stack" {
		t.Fatalf("report names object %q", a.Object)
	}
	if want := uint64(a.Clients * a.OpsPerClient); a.Ops != want {
		t.Errorf("ops = %d, want %d (every client op must settle)", a.Ops, want)
	}
	if a.Crashes < 25 {
		t.Errorf("only %d crash cycles fired, want >= 25", a.Crashes)
	}
	if a.Enqueues != a.Dequeues+a.Drained {
		t.Errorf("conservation mismatch in counters: %d pushed, %d+%d popped",
			a.Enqueues, a.Dequeues, a.Drained)
	}
	b, err := RunSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n%+v\nvs\n%+v", a, b)
	}
}

// TestSoakStackSeedSweep: smaller stack storms under many seeds must all
// be violation-free.
func TestSoakStackSeedSweep(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		rep, err := RunSoak(SoakConfig{
			Seed: seed, Clients: 6, OpsPerClient: 24, Crashes: 15, Object: "stack",
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !rep.OK() {
			t.Fatalf("seed %d: violations: %v", seed, rep.Violations)
		}
	}
}

// TestSoakUnknownObject: the soak rejects types it has no verifier for.
func TestSoakUnknownObject(t *testing.T) {
	if _, err := RunSoak(SoakConfig{Seed: 1, Object: "tree"}); err == nil {
		t.Fatal("unknown object accepted")
	}
}

// TestSoakStackVerifierNotVacuous plants LIFO violations in a synthetic
// stack history and checks the stack verifier flags them.
func TestSoakStackVerifierNotVacuous(t *testing.T) {
	s := &soakSim{isStack: true, shist: []check.SOp{
		{Kind: check.SPush, V: 1, Inv: 1, Ret: 2},
		{Kind: check.SPush, V: 2, Inv: 3, Ret: 4},
		{Kind: check.SPop, V: 1, Inv: 5, Ret: 6}, // LIFO inversion: 2 still on top
		{Kind: check.SPop, V: 2, Inv: 7, Ret: 8},
		{Kind: check.SPush, V: 3, Inv: 9, Ret: 10}, // never popped: lost
	}}
	s.verify()
	if len(s.rep.Violations) < 2 {
		t.Fatalf("stack verifier missed planted violations, got %v", s.rep.Violations)
	}
}

// TestSoakVerifierNotVacuous plants exactly-once violations in a
// synthetic history and checks the soak's verifier flags them — a
// double-executed enqueue (duplicate value), a double-executed dequeue
// (duplicate dequeue), and a lost value.
func TestSoakVerifierNotVacuous(t *testing.T) {
	s := &soakSim{hist: []check.QOp{
		{Kind: check.QEnq, V: 1, Inv: 1, Ret: 2},
		{Kind: check.QEnq, V: 1, Inv: 3, Ret: 4}, // retry executed twice
		{Kind: check.QEnq, V: 2, Inv: 5, Ret: 6},
		{Kind: check.QDeq, V: 2, Inv: 7, Ret: 8},
		{Kind: check.QDeq, V: 2, Inv: 9, Ret: 10},  // dequeue executed twice
		{Kind: check.QEnq, V: 3, Inv: 11, Ret: 12}, // never dequeued: lost
	}}
	s.verify()
	if len(s.rep.Violations) < 3 {
		t.Fatalf("verifier missed planted violations, got %v", s.rep.Violations)
	}
}

// TestSoakCombinedStorm runs the crash storm with the server hosting the
// object behind the flat-combining front: the combine.Wire's persisted
// tags must carry the RetryClients' exactly-once discipline through
// every crash, for both hosted types.
func TestSoakCombinedStorm(t *testing.T) {
	for _, object := range []string{"queue", "stack"} {
		rep, err := RunSoak(SoakConfig{Seed: 1, Object: object, Combined: true})
		if err != nil {
			t.Fatalf("%s: %v", object, err)
		}
		if !rep.OK() {
			t.Fatalf("%s: violations: %v", object, rep.Violations)
		}
		if !rep.Combined {
			t.Fatalf("%s: report does not record combining", object)
		}
		if rep.Crashes < 20 {
			t.Errorf("%s: only %d crash cycles fired, want >= 20", object, rep.Crashes)
		}
		if rep.GenChanges == 0 || rep.Resolves == 0 || rep.Retries == 0 {
			t.Errorf("%s: retry discipline never exercised: %+v", object, rep)
		}
		if want := uint64(rep.Clients * rep.OpsPerClient); rep.Ops != want {
			t.Errorf("%s: ops = %d, want %d (every client op must settle)", object, rep.Ops, want)
		}
	}
}

// TestSoakCombinedSeedSweep runs smaller combined storms under many
// seeds; every one must be violation-free and deterministic is already
// covered by the fixed-seed storm above.
func TestSoakCombinedSeedSweep(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rep, err := RunSoak(SoakConfig{
			Seed: seed, Combined: true, Clients: 4, OpsPerClient: 20, Crashes: 12,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !rep.OK() {
			t.Fatalf("seed %d: violations: %v", seed, rep.Violations)
		}
	}
}

// TestSoakCombinedObserved checks the combine-phase attribution reaches
// the server sink: combiner passes and batch sizes are recorded on the
// soak's virtual clock.
func TestSoakCombinedObserved(t *testing.T) {
	rep, ob, err := RunSoakObserved(SoakConfig{
		Seed: 3, Combined: true, Clients: 4, OpsPerClient: 20, Crashes: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("violations: %v", rep.Violations)
	}
	exp := ob.Server.Export("virtual_ns")
	if exp.Counters["combines"] == 0 || exp.Counters["combined_ops"] == 0 {
		t.Fatalf("no combiner activity recorded: %v", exp.Counters)
	}
	found := false
	for _, p := range exp.Phases {
		if p.Phase == "batch" && p.Count > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("batch-size histogram empty")
	}
}
