package harness

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/check"
	"repro/internal/combine"
	"repro/internal/dss"
	"repro/internal/mp"
	"repro/internal/obs"
	"repro/internal/pmem"
	"repro/internal/spec"
)

// This file is the crash-storm soak: many concurrent RetryClients drive a
// message-passing DSS queue server through a lossy, duplicating, delaying
// network while the server crashes and recovers dozens of times under a
// rotating dirty-line adversary. The run records every client-observed
// operation and afterwards verifies the whole history — exactly-once
// execution and the queue invariants — with the polynomial detector of
// internal/check.
//
// The soak is a discrete-event simulation, not a wall-clock stress test,
// so a given seed produces a bit-identical report on every machine and
// every run. Determinism comes from a single-runnable-at-a-time
// cooperative schedule: client goroutines execute the real RetryClient
// code, but their only blocking points are the simulated transport and
// the injected backoff sleeper, both of which schedule a wake-up event
// and park the goroutine. The event loop pops events in (virtual time,
// sequence) order and hands the baton to at most one client at a time, so
// every rng draw, history append, and engine step happens in one
// deterministic global order. Wall-clock concurrency (and the race
// detector's view of it) is covered separately by the real-goroutine
// tests in internal/mp.

// SoakConfig parameterizes a crash-storm soak run.
type SoakConfig struct {
	// Object selects the detectable type the server hosts: "queue"
	// (default), "stack", "register", or "hmap". All run through the
	// universal construction, whose persisted log carries the operation
	// tags the RetryClient's cross-crash exactly-once discipline keys on.
	// Queue and stack share the alternating insert/remove workload;
	// register and hmap run a keyed generator (each client draws its op
	// class — and, for the map, a Zipf-distributed key — from a private
	// rng) and are verified with the register/map violation detectors.
	Object string
	// Keys sizes the key space of the "hmap" workload (Zipf-skewed;
	// default 16). Ignored by the other objects.
	Keys int
	// Combined hosts the object behind the flat-combining front
	// (internal/combine) instead of the universal construction: the
	// server serves a combine.Wire over a combined concrete queue or
	// stack, whose announcement slots persist the operation tags the
	// RetryClients' cross-crash exactly-once discipline keys on. Default
	// false keeps the committed BENCH_soak.json bytes on the historical
	// universal-construction path.
	Combined bool
	// Seed determines everything: the network fault schedule, the crash
	// points, the downtimes, the adversaries' dirty-line fates, and every
	// client's backoff jitter.
	Seed int64
	// Clients is the number of concurrent RetryClients (identities
	// 0..Clients-1); OpsPerClient the operations each performs
	// (alternating enqueue/dequeue, enqueue first).
	Clients      int
	OpsPerClient int
	// Crashes is the target number of crash/restart cycles. Crash points
	// are armed by heap step counts until the target is reached; the
	// report records how many actually fired before the workload ended.
	Crashes int
	// MinCrashStep/MaxCrashStep bound the heap steps between a restart
	// and the next armed crash.
	MinCrashStep, MaxCrashStep uint64
	// MinDown/MaxDown bound the virtual downtime between crash and
	// restart.
	MinDown, MaxDown time.Duration
	// Net is the message adversary: drop/duplicate/delay probabilities,
	// per request. Net.Seed is ignored — the soak derives its network rng
	// from Seed.
	Net mp.FaultConfig
	// RTO is the virtual per-request timeout after which a client stops
	// waiting for a reply and treats the outcome as ambiguous.
	RTO time.Duration
	// Policy is the clients' retry policy. Policy.Seed is ignored; each
	// client's jitter rng is derived from Seed and its id.
	Policy mp.RetryPolicy
}

func (c *SoakConfig) defaults() {
	if c.Object == "" {
		c.Object = "queue"
	}
	if c.Keys <= 0 {
		c.Keys = 16
	}
	if c.Clients <= 0 {
		c.Clients = 8
	}
	if c.OpsPerClient <= 0 {
		c.OpsPerClient = 50
	}
	if c.Crashes <= 0 {
		c.Crashes = 40
	}
	if c.MinCrashStep == 0 {
		c.MinCrashStep = 200
	}
	if c.MaxCrashStep <= c.MinCrashStep {
		c.MaxCrashStep = c.MinCrashStep + 1300
	}
	if c.MinDown <= 0 {
		c.MinDown = 200 * time.Microsecond
	}
	if c.MaxDown <= c.MinDown {
		c.MaxDown = c.MinDown + 800*time.Microsecond
	}
	if c.Net == (mp.FaultConfig{}) {
		c.Net = mp.FaultConfig{
			DropRequest: 0.05,
			DropReply:   0.05,
			Duplicate:   0.05,
			Delay:       0.25,
			MaxDelay:    300 * time.Microsecond,
		}
	}
	if c.RTO <= 0 {
		c.RTO = 2 * time.Millisecond
	}
	if c.Policy.MaxAttempts <= 0 {
		c.Policy.MaxAttempts = 2048
	}
	if c.Policy.BackoffBase <= 0 {
		c.Policy.BackoffBase = 100 * time.Microsecond
	}
	if c.Policy.BackoffMax <= 0 {
		c.Policy.BackoffMax = 2 * time.Millisecond
	}
}

// SoakReport is the machine-readable result of one soak run. For a fixed
// config it is bit-identical across runs and machines (the violations
// slice is sorted); BENCH_soak.json commits one such report so CI can
// verify both correctness and reproducibility.
type SoakReport struct {
	// Object names the hosted type; empty means "queue" (the field is
	// omitted there so the committed queue report's bytes are stable
	// across revisions).
	Object string `json:"object,omitempty"`
	// Combined records that the server hosted the object behind the
	// flat-combining front (omitted on the default universal path, so
	// the committed reports' bytes are stable).
	Combined bool `json:"combined,omitempty"`
	// Keys is the key-space size of a keyed ("hmap") run (omitted
	// otherwise, keeping the queue/stack reports' bytes stable).
	Keys int `json:"keys,omitempty"`

	Seed         int64 `json:"seed"`
	Clients      int   `json:"clients"`
	OpsPerClient int   `json:"ops_per_client"`

	// Crashes is the number of crash/restart cycles that actually fired
	// (TargetCrashes was the arming budget).
	Crashes       int `json:"crashes"`
	TargetCrashes int `json:"target_crashes"`

	// Client-observed outcomes. The field names keep the queue
	// vocabulary; for the stack object they count pushes, pops, and
	// EMPTY pops, and for the keyed objects they count installs
	// (write/swap/cas-hit, put/mcas-hit), value observations
	// (read/cas-miss, get/del/mcas-miss), and EMPTY answers.
	Ops           uint64 `json:"ops"`
	Enqueues      uint64 `json:"enqueues"`
	Dequeues      uint64 `json:"dequeues"`
	EmptyDequeues uint64 `json:"empty_dequeues"`
	Drained       uint64 `json:"drained"`

	// Retry-discipline counters, summed over all clients.
	Attempts   uint64 `json:"attempts"`
	Retries    uint64 `json:"retries"`
	Resolves   uint64 `json:"resolves"`
	Timeouts   uint64 `json:"timeouts"`
	Downs      uint64 `json:"downs"`
	GenChanges uint64 `json:"gen_changes"`

	// Network fault counters.
	NetRequests        uint64 `json:"net_requests"`
	NetDroppedRequests uint64 `json:"net_dropped_requests"`
	NetDroppedReplies  uint64 `json:"net_dropped_replies"`
	NetDuplicates      uint64 `json:"net_duplicates"`
	NetDelays          uint64 `json:"net_delays"`

	// VirtualUS is the simulated duration of the run in microseconds.
	VirtualUS int64 `json:"virtual_us"`

	// Violations lists every exactly-once or queue-invariant violation
	// found in the recorded history (sorted; empty on success).
	Violations []string `json:"violations"`
}

// OK reports whether the soak found no violations.
func (r SoakReport) OK() bool { return len(r.Violations) == 0 }

// String renders the report for humans.
func (r SoakReport) String() string {
	if r.OK() {
		return fmt.Sprintf(
			"soak: %d clients x %d ops, %d crashes, %d ops ok (%d enq, %d deq, %d empty, %d drained), %d attempts (%d retries, %d resolves), 0 violations",
			r.Clients, r.OpsPerClient, r.Crashes, r.Ops,
			r.Enqueues, r.Dequeues, r.EmptyDequeues, r.Drained,
			r.Attempts, r.Retries, r.Resolves)
	}
	return fmt.Sprintf("soak: %d VIOLATIONS (first: %s)", len(r.Violations), r.Violations[0])
}

// soakEvent is one scheduled action. fn runs in the event loop and
// returns the client to hand the baton to, or nil.
type soakEvent struct {
	at  int64
	seq uint64
	fn  func() *soakClient
}

// eventQueue is a min-heap over (at, seq).
type eventQueue []*soakEvent

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*soakEvent)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// soakClient is one simulated client: the real RetryClient plus the
// park/resume machinery and the in-flight round-trip state.
type soakClient struct {
	tid    int
	rc     *mp.RetryClient
	resume chan struct{}

	// token identifies the current RoundTrip; events from earlier round
	// trips (stale replies, stale timeouts) see a mismatch and die.
	token    uint64
	gotReply bool
	rep      mp.Reply

	// Keyed-workload state (register/hmap only; nil otherwise). opRng is
	// the client's private op generator — private so that the draw order
	// is a function of (seed, tid, op index) alone, independent of how
	// the storm interleaves clients. zipf skews the map's key choice.
	// last tracks the client's latest observed value per key (the
	// register uses key 0) and feeds cas/mcas expectations, so a useful
	// fraction of the cas traffic hits.
	opRng *rand.Rand
	zipf  *rand.Zipf
	last  map[uint64]uint64
}

// soakConn is the per-client Transport over the simulated network.
type soakConn struct {
	s *soakSim
	c *soakClient
}

func (cn *soakConn) RoundTrip(m mp.Msg) mp.Reply { return cn.s.roundTrip(cn.c, m) }

// soakSim is the whole simulation: virtual clock, event queue, engine,
// crash schedule, and history.
type soakSim struct {
	cfg SoakConfig
	eng *mp.Engine

	// isStack selects the operation vocabulary and the history verifier
	// (cfg.Object == "stack"). The queue path is byte-for-byte the
	// historical one: same rng draw order, same engine step sequence,
	// same report, so committed queue reports stay bit-identical.
	isStack bool
	// keyed marks the register/hmap objects (isMap distinguishes the
	// map): the workload comes from per-client keyed generators, the
	// history is recorded as ROps/MOps, and there is no drain or value
	// conservation (keyed values are overwritten, not conserved).
	keyed bool
	isMap bool
	// insertOp and removeOp build the object's base operations
	// (queue/stack only).
	insertOp func(v uint64) spec.Op
	removeOp func() spec.Op

	now   int64
	evSeq uint64
	pq    eventQueue

	up      bool
	crashes int
	advs    []pmem.Adversary

	netRng   *rand.Rand
	crashRng *rand.Rand

	clients []*soakClient
	parked  chan bool // true = the running client finished its workload
	live    int

	logical int64
	hist    []check.QOp
	shist   []check.SOp
	rhist   []check.ROp
	mhist   []check.MOp
	errs    []string

	// serverSink and clientSinks observe the run on the DES virtual clock.
	// Recording draws no rng and touches no heap, so an observed run's
	// SoakReport is byte-for-byte the unobserved one.
	serverSink  *obs.Sink
	clientSinks []*obs.Sink

	rep SoakReport
}

// schedule queues fn at virtual time `at` (clamped to now).
func (s *soakSim) schedule(at int64, fn func() *soakClient) {
	if at < s.now {
		at = s.now
	}
	s.evSeq++
	heap.Push(&s.pq, &soakEvent{at: at, seq: s.evSeq, fn: fn})
}

// park hands the baton back to the event loop until an event returns c.
// Called only from c's goroutine.
func (s *soakSim) park(c *soakClient) {
	s.parked <- false
	<-c.resume
}

// leg draws one network leg's latency: a small base plus, with
// probability Net.Delay, a congestion delay up to Net.MaxDelay. All draws
// happen unconditionally so the rng sequence depends only on call order.
func (s *soakSim) leg() int64 {
	const base = int64(5 * time.Microsecond)
	delayed := s.netRng.Float64() < s.cfg.Net.Delay
	extra := int64(0)
	if s.cfg.Net.MaxDelay > 0 {
		extra = s.netRng.Int63n(int64(s.cfg.Net.MaxDelay))
	}
	if !delayed {
		return base
	}
	s.rep.NetDelays++
	return base + extra
}

// roundTrip carries one message through the simulated network: the
// request leg may be dropped, duplicated, or delayed; the server applies
// whatever arrives (crashing if the armed step falls inside); the reply
// leg may be dropped or delayed; and a timeout resumes the client if
// nothing comes back in time. Late replies and late duplicates are
// discarded by the token guard — exactly the ambiguity the retry
// discipline must absorb.
func (s *soakSim) roundTrip(c *soakClient, m mp.Msg) mp.Reply {
	s.rep.NetRequests++
	c.token++
	tok := c.token
	c.gotReply = false

	// Draw the whole fate up front, in a fixed order.
	reqDelay := s.leg()
	repDelay := s.leg()
	dupDelay := s.leg()
	dropReq := s.netRng.Float64() < s.cfg.Net.DropRequest
	dup := s.netRng.Float64() < s.cfg.Net.Duplicate
	dropRep := s.netRng.Float64() < s.cfg.Net.DropReply

	resumeWith := func(rep mp.Reply) func() *soakClient {
		return func() *soakClient {
			if c.token != tok || c.gotReply {
				return nil // stale: the client has moved on
			}
			c.gotReply = true
			c.rep = rep
			return c
		}
	}

	// deliver applies the message at the server and, unless the reply is
	// dropped, sends the reply back.
	deliver := func(dropReply bool) func() *soakClient {
		return func() *soakClient {
			rep := s.serverApply(m)
			if dropReply {
				return nil
			}
			s.schedule(s.now+repDelay, resumeWith(rep))
			return nil
		}
	}

	if dropReq {
		s.rep.NetDroppedRequests++
	} else {
		if dropRep {
			s.rep.NetDroppedReplies++
		}
		s.schedule(s.now+reqDelay, deliver(dropRep))
	}
	if dup {
		// A second copy arrives later; its reply is delivered normally.
		// The engine's at-most-once cache answers it without re-executing.
		s.rep.NetDuplicates++
		s.schedule(s.now+reqDelay+dupDelay, deliver(false))
	}
	s.schedule(s.now+int64(s.cfg.RTO), resumeWith(mp.Reply{Err: mp.ErrTimeout}))

	s.park(c)
	return c.rep
}

// serverApply executes one delivered message. A down server answers
// DownError without touching the (crashed) heap; an armed crash firing
// mid-apply takes the server down and schedules its restart.
func (s *soakSim) serverApply(m mp.Msg) mp.Reply {
	if !s.up {
		return mp.Reply{Gen: s.eng.Gen(), Err: &mp.DownError{Gen: s.eng.Gen()}}
	}
	var rep mp.Reply
	crashed := pmem.RunToCrash(func() { rep = s.eng.Apply(m) })
	if crashed {
		s.onCrash()
		return mp.Reply{Gen: s.eng.Gen(), Err: &mp.DownError{Gen: s.eng.Gen()}}
	}
	return rep
}

// onCrash records a crash and schedules the restart: after a drawn
// downtime the heap's image is settled by the next adversary in the
// rotation, the object recovers, and a new generation begins serving.
func (s *soakSim) onCrash() {
	s.up = false
	adv := s.advs[s.crashes%len(s.advs)]
	s.crashes++
	s.serverSink.Event(obs.EvCrash, -1, s.eng.Gen())
	down := int64(s.cfg.MinDown) + s.crashRng.Int63n(int64(s.cfg.MaxDown-s.cfg.MinDown))
	s.schedule(s.now+down, func() *soakClient {
		s.eng.RecoverImage(adv)
		s.eng.NewGeneration()
		s.up = true
		s.armNextCrash()
		return nil
	})
}

// armNextCrash arms the next crash point (a heap step count drawn from
// the configured range) until the crash budget is spent.
func (s *soakSim) armNextCrash() {
	if s.crashes >= s.cfg.Crashes {
		s.eng.Heap().ArmCrash(0)
		return
	}
	span := int64(s.cfg.MaxCrashStep - s.cfg.MinCrashStep)
	step := s.cfg.MinCrashStep + uint64(s.crashRng.Int63n(span))
	s.eng.Heap().ArmCrash(step)
}

// tick advances the logical history clock (used for QOp intervals; the
// baton serializes all calls).
func (s *soakSim) tick() int64 {
	s.logical++
	return s.logical
}

// record appends one client-observed operation to the object's history
// (isInsert distinguishes the two base operations; the baton serializes
// all calls).
func (s *soakSim) record(isInsert bool, op spec.Op, resp spec.Resp, inv, ret int64) bool {
	switch {
	case isInsert && resp.Kind == spec.Ack:
		s.rep.Enqueues++
		if s.isStack {
			s.shist = append(s.shist, check.SOp{Kind: check.SPush, V: op.Arg, Inv: inv, Ret: ret})
		} else {
			s.hist = append(s.hist, check.QOp{Kind: check.QEnq, V: op.Arg, Inv: inv, Ret: ret})
		}
	case !isInsert && resp.Kind == spec.Val:
		s.rep.Dequeues++
		if s.isStack {
			s.shist = append(s.shist, check.SOp{Kind: check.SPop, V: resp.V, Inv: inv, Ret: ret})
		} else {
			s.hist = append(s.hist, check.QOp{Kind: check.QDeq, V: resp.V, Inv: inv, Ret: ret})
		}
	case !isInsert && resp.Kind == spec.Empty:
		s.rep.EmptyDequeues++
		if s.isStack {
			s.shist = append(s.shist, check.SOp{Kind: check.SPopEmpty, Inv: inv, Ret: ret})
		} else {
			s.hist = append(s.hist, check.QOp{Kind: check.QDeqEmpty, Inv: inv, Ret: ret})
		}
	default:
		return false
	}
	return true
}

// genKeyedOp draws one keyed operation from c's private generator. The
// draw order is fixed — map key first, then the op class — so the op
// sequence depends only on (seed, tid, i). Installed values are globally
// unique ((tid, op index) packed, as in the queue workload), which is
// what the register/map detectors' displacement-chain reasoning needs.
func (s *soakSim) genKeyedOp(c *soakClient, i int) spec.Op {
	v := uint64(c.tid)*1_000_000 + uint64(i) + 1
	if s.isMap {
		key := c.zipf.Uint64() + 1
		switch c.opRng.Intn(8) {
		case 0, 1, 2:
			return spec.Put(key, v)
		case 3, 4:
			return spec.Get(key)
		case 5:
			return spec.Del(key)
		default:
			// Expect the latest value this client saw at the key (zero if
			// it believes the key absent — a certain miss that exercises
			// the EMPTY answer).
			return spec.MCAS(key, c.last[key], v)
		}
	}
	switch c.opRng.Intn(8) {
	case 0, 1:
		return spec.Write(v)
	case 2, 3:
		return spec.Swap(v)
	case 4, 5:
		return spec.CAS(c.last[0], v)
	default:
		return spec.Read()
	}
}

// recordKeyed appends one keyed client-observed operation to the
// register/map history, updates the report counters, and folds the
// observed value into c's expectation table.
func (s *soakSim) recordKeyed(c *soakClient, op spec.Op, resp spec.Resp, inv, ret int64) bool {
	if s.isMap {
		key := op.Arg
		switch {
		case op.Sym == "put" && resp.Kind == spec.Ack:
			s.rep.Enqueues++
			s.mhist = append(s.mhist, check.MOp{Kind: check.MPut, Key: key, V: op.Arg2, Inv: inv, Ret: ret})
			c.last[key] = op.Arg2
		case op.Sym == "get" && resp.Kind == spec.Val:
			s.rep.Dequeues++
			s.mhist = append(s.mhist, check.MOp{Kind: check.MGet, Key: key, V: resp.V, Inv: inv, Ret: ret})
			c.last[key] = resp.V
		case op.Sym == "get" && resp.Kind == spec.Empty:
			s.rep.EmptyDequeues++
			s.mhist = append(s.mhist, check.MOp{Kind: check.MGetEmpty, Key: key, Inv: inv, Ret: ret})
			delete(c.last, key)
		case op.Sym == "del" && resp.Kind == spec.Val:
			s.rep.Dequeues++
			s.mhist = append(s.mhist, check.MOp{Kind: check.MDel, Key: key, V: resp.V, Inv: inv, Ret: ret})
			delete(c.last, key)
		case op.Sym == "del" && resp.Kind == spec.Empty:
			s.rep.EmptyDequeues++
			s.mhist = append(s.mhist, check.MOp{Kind: check.MDelEmpty, Key: key, Inv: inv, Ret: ret})
			delete(c.last, key)
		case op.Sym == "mcas" && resp.Kind == spec.Val:
			exp, newV := spec.UnpackCAS(op.Arg2)
			m := check.MOp{Kind: check.MCasMissVal, Key: key, V: newV, W: resp.V2, X: exp, Inv: inv, Ret: ret}
			switch {
			case resp.V == 1:
				m.Kind = check.MCasHit
				s.rep.Enqueues++
				c.last[key] = newV
			case resp.V2 == 0:
				m.Kind = check.MCasMissEmpty
				m.W = 0
				s.rep.EmptyDequeues++
				delete(c.last, key)
			default:
				s.rep.Dequeues++
				c.last[key] = resp.V2
			}
			s.mhist = append(s.mhist, m)
		default:
			return false
		}
		return true
	}
	switch {
	case op.Sym == "write" && resp.Kind == spec.Ack:
		s.rep.Enqueues++
		s.rhist = append(s.rhist, check.ROp{Kind: check.RWrite, V: op.Arg, Inv: inv, Ret: ret})
		c.last[0] = op.Arg
	case op.Sym == "read" && resp.Kind == spec.Val:
		s.rep.Dequeues++
		s.rhist = append(s.rhist, check.ROp{Kind: check.RRead, V: resp.V, Inv: inv, Ret: ret})
		c.last[0] = resp.V
	case op.Sym == "swap" && resp.Kind == spec.Val:
		s.rep.Enqueues++
		s.rhist = append(s.rhist, check.ROp{Kind: check.RSwap, V: op.Arg, W: resp.V, Inv: inv, Ret: ret})
		c.last[0] = op.Arg
	case op.Sym == "cas" && resp.Kind == spec.Val:
		r := check.ROp{Kind: check.RCasMiss, V: op.Arg2, W: resp.V2, X: op.Arg, Inv: inv, Ret: ret}
		if resp.V == 1 {
			r.Kind = check.RCasHit
			s.rep.Enqueues++
			c.last[0] = op.Arg2
		} else {
			s.rep.Dequeues++
			c.last[0] = resp.V2
		}
		s.rhist = append(s.rhist, r)
	default:
		return false
	}
	return true
}

// clientMain is one client's workload: alternating detectable
// insert/remove pairs (keyed generator draws for register/hmap) via the
// real RetryClient, recorded as an object history. Runs on its own
// goroutine under the baton discipline.
func (s *soakSim) clientMain(c *soakClient) {
	<-c.resume
	for i := 0; i < s.cfg.OpsPerClient; i++ {
		var op spec.Op
		isInsert := i%3 != 0
		switch {
		case s.keyed:
			op = s.genKeyedOp(c, i)
		case !isInsert:
			// Remove first (the opening round hits an empty object, so
			// EMPTY responses are exercised) and only every third op, so
			// the storm ends with a backlog for the drain to account for.
			op = s.removeOp()
		default:
			// Values are globally unique: (tid, op index) packed.
			op = s.insertOp(uint64(c.tid)*1_000_000 + uint64(i) + 1)
		}
		inv := s.tick()
		resp, err := c.rc.Do(op)
		ret := s.tick()
		if err != nil {
			s.errs = append(s.errs, fmt.Sprintf("client %d op %d (%s): %v", c.tid, i, op, err))
			break
		}
		s.rep.Ops++
		recorded := false
		if s.keyed {
			recorded = s.recordKeyed(c, op, resp, inv, ret)
		} else {
			recorded = s.record(isInsert, op, resp, inv, ret)
		}
		if !recorded {
			s.errs = append(s.errs, fmt.Sprintf("client %d op %d (%s): unexpected response %s", c.tid, i, op, resp))
		}
	}
	s.parked <- true
}

// drain empties the object after the storm via direct (non-detectable)
// invocations, rotating through client identities so no single thread's
// record pool is exhausted. Every value still held becomes a trailing
// remove in the history.
func (s *soakSim) drain() {
	if s.eng.Heap().Crashed() {
		adv := s.advs[s.crashes%len(s.advs)]
		s.crashes++
		s.serverSink.Event(obs.EvCrash, -1, s.eng.Gen())
		s.eng.RecoverImage(adv)
		s.eng.NewGeneration()
		s.up = true
	}
	s.eng.Heap().ArmCrash(0)
	if s.keyed {
		// Keyed objects hold no backlog to account for — installs
		// overwrite rather than accumulate — so the drain is only the
		// final recovery above.
		return
	}
	for tid := 0; ; tid = (tid + 1) % s.cfg.Clients {
		rep := s.eng.Apply(mp.Msg{Kind: mp.ReqInvoke, Client: tid, Op: s.removeOp()})
		if rep.Err != nil {
			s.errs = append(s.errs, fmt.Sprintf("drain (tid %d): %v", tid, rep.Err))
			return
		}
		if rep.Resp.Kind == spec.Empty {
			return
		}
		inv := s.tick()
		if s.isStack {
			s.shist = append(s.shist, check.SOp{Kind: check.SPop, V: rep.Resp.V, Inv: inv, Ret: s.tick()})
		} else {
			s.hist = append(s.hist, check.QOp{Kind: check.QDeq, V: rep.Resp.V, Inv: inv, Ret: s.tick()})
		}
		s.rep.Drained++
	}
}

// verify checks the recorded history: the object's polynomial violation
// detector (duplicate inserts/removes, remove-before-insert, order
// inversions — FIFO or LIFO — and impossible EMPTYs) plus value
// conservation — after the drain, every acknowledged insert must have
// been removed exactly once. A retry bug that executed an operation
// twice or zero times cannot pass both. The keyed objects run their
// displacement-chain detectors instead: with globally unique installed
// values, a double-executed install surfaces as a duplicate-install or
// stale-observation pattern, and a lost one as a never-installed
// observation, so exactly-once is still covered without conservation.
func (s *soakSim) verify() {
	violations := append([]string{}, s.errs...)
	if s.keyed {
		if s.isMap {
			violations = append(violations, check.CheckMapHistory(s.mhist)...)
		} else {
			violations = append(violations, check.CheckRegisterHistory(s.rhist)...)
		}
		sort.Strings(violations)
		s.rep.Violations = violations
		return
	}
	inserted := map[uint64]bool{}
	removed := map[uint64]int{}
	if s.isStack {
		violations = append(violations, check.CheckStackHistory(s.shist)...)
		for _, o := range s.shist {
			switch o.Kind {
			case check.SPush:
				inserted[o.V] = true
			case check.SPop:
				removed[o.V]++
			}
		}
	} else {
		violations = append(violations, check.CheckQueueHistory(s.hist)...)
		for _, o := range s.hist {
			switch o.Kind {
			case check.QEnq:
				inserted[o.V] = true
			case check.QDeq:
				removed[o.V]++
			}
		}
	}

	var lost []uint64
	for v := range inserted {
		if removed[v] == 0 {
			lost = append(lost, v)
		}
	}
	sort.Slice(lost, func(i, j int) bool { return lost[i] < lost[j] })
	for _, v := range lost {
		violations = append(violations, fmt.Sprintf("conservation: value %d enqueued but never dequeued (drain included)", v))
	}

	sort.Strings(violations)
	s.rep.Violations = violations
}

// SoakObservation is the observability side of a soak run: per-side
// metric snapshots (the DES virtual clock is the unit, so they are
// deterministic) and the reconstructed cross-process recovery timeline.
type SoakObservation struct {
	// Server aggregates the engine-side sink (fence/cache counters,
	// recovery latencies); Clients the per-client sinks (round-trip
	// latencies per phase, retry/timeout/down counters); Merged their sum.
	Server  obs.Snapshot
	Clients obs.Snapshot
	Merged  obs.Snapshot
	// Timeline is the merged crash/recovery reconstruction over the
	// server trace and every client trace.
	Timeline obs.RecoveryTimeline
}

// RunSoak executes one deterministic crash-storm soak and returns its
// report. The same config yields a bit-identical report on every run.
func RunSoak(cfg SoakConfig) (SoakReport, error) {
	rep, _, err := RunSoakObserved(cfg)
	return rep, err
}

// RunSoakObserved is RunSoak plus the observability layer: the engine and
// every RetryClient record into sinks sharing the DES virtual clock, and
// the result carries their snapshots and the recovery timeline. The
// SoakReport is byte-for-byte the one an unobserved run produces
// (recording draws no rng and no heap steps), and the observation itself
// is deterministic for a fixed config.
func RunSoakObserved(cfg SoakConfig) (SoakReport, SoakObservation, error) {
	cfg.defaults()
	var init spec.State
	var insertOp func(uint64) spec.Op
	var removeOp func() spec.Op
	var vocab []spec.Op
	switch cfg.Object {
	case "queue":
		init, insertOp, removeOp = spec.NewQueue(), spec.Enqueue, spec.Dequeue
		vocab = []spec.Op{insertOp(0), removeOp()}
	case "stack":
		init, insertOp, removeOp = spec.NewStack(), spec.Push, spec.Pop
		vocab = []spec.Op{insertOp(0), removeOp()}
	case "register":
		init = spec.NewSwap(0)
		vocab = []spec.Op{spec.Write(0), spec.Read(), spec.Swap(0), spec.CAS(0, 0)}
	case "hmap":
		init = spec.NewMap()
		vocab = []spec.Op{spec.Put(0, 0), spec.Get(0), spec.Del(0), spec.MCAS(0, 0, 0)}
	default:
		return SoakReport{}, SoakObservation{}, fmt.Errorf(
			"harness: unknown soak object %q (queue, stack, register, or hmap)", cfg.Object)
	}
	ecfg := mp.EngineConfig{
		Clients:  cfg.Clients,
		Capacity: 2*cfg.Clients*cfg.OpsPerClient + 256,
		Init:     init,
		Ops:      vocab,
	}
	var front *combine.Front
	if cfg.Combined {
		// Host the object behind the flat-combining front instead of the
		// universal construction. The front's announcement slots persist
		// the operation tags, which is what the RetryClients' cross-crash
		// settle path keys on (a plain dss.Wire keeps tags volatile and
		// would double-execute after a crash).
		typ := dss.QueueType
		switch cfg.Object {
		case "stack":
			typ = dss.StackType
		case "register":
			typ = dss.RegisterType
		case "hmap":
			typ = dss.MapType
		}
		ecfg.NewObject = func(h *pmem.Heap, clients int) (mp.Object, error) {
			f, err := combine.New(h, 0, typ, dss.Config{
				Threads: clients,
				// Every insert a client performs may hold a node until the
				// drain, so pools are sized for the whole workload.
				NodesPerThread: cfg.OpsPerClient + 8,
				ExtraNodes:     2*clients + 8,
			})
			if err != nil {
				return nil, err
			}
			front = f
			return combine.NewWire(typ, f), nil
		}
	}
	eng, err := mp.NewEngine(ecfg)
	if err != nil {
		return SoakReport{}, SoakObservation{}, err
	}
	s := &soakSim{
		cfg:      cfg,
		eng:      eng,
		isStack:  cfg.Object == "stack",
		keyed:    cfg.Object == "register" || cfg.Object == "hmap",
		isMap:    cfg.Object == "hmap",
		insertOp: insertOp,
		removeOp: removeOp,
		up:       true,
		netRng:   rand.New(rand.NewSource(cfg.Seed + 1)),
		crashRng: rand.New(rand.NewSource(cfg.Seed + 2)),
		advs: []pmem.Adversary{
			pmem.NewRandomFates(cfg.Seed + 3),
			pmem.DropAll{},
			pmem.NewBiasedFates(cfg.Seed+4, 0.25),
			pmem.KeepAll{},
			pmem.NewBiasedFates(cfg.Seed+5, 0.75),
		},
		parked: make(chan bool),
		rep: SoakReport{
			Seed:          cfg.Seed,
			Clients:       cfg.Clients,
			OpsPerClient:  cfg.OpsPerClient,
			TargetCrashes: cfg.Crashes,
			Violations:    []string{},
		},
	}
	if cfg.Object != "queue" {
		s.rep.Object = cfg.Object
	}
	if s.isMap {
		s.rep.Keys = cfg.Keys
	}
	s.rep.Combined = cfg.Combined
	// All sinks share the DES virtual clock, so latencies are virtual
	// nanoseconds and the traces of every process merge on one time axis.
	vclock := func() uint64 { return uint64(s.now) }
	s.serverSink = obs.NewSink(obs.Config{Clock: vclock})
	eng.SetObs(s.serverSink)
	if front != nil {
		// Combine-phase attribution (batch sizes, combine-wait) joins the
		// server sink; recording draws no rng and no heap steps, so the
		// SoakReport stays byte-identical to an unobserved run.
		front.SetObs(s.serverSink)
	}
	eng.NewGeneration()
	s.armNextCrash()

	for tid := 0; tid < cfg.Clients; tid++ {
		c := &soakClient{tid: tid, resume: make(chan struct{}, 1)}
		if s.keyed {
			// Private generator per client (seed + tid derived, like the
			// backoff jitter) so the keyed op sequence is independent of
			// storm interleaving. The queue/stack paths build none of
			// this and keep their historical rng draw order.
			c.opRng = rand.New(rand.NewSource(cfg.Seed + 500 + int64(tid)))
			if s.isMap {
				c.zipf = rand.NewZipf(c.opRng, 1.4, 4, uint64(cfg.Keys-1))
			}
			c.last = map[uint64]uint64{}
		}
		pol := cfg.Policy
		pol.Seed = cfg.Seed + 100 + int64(tid)
		c.rc = mp.NewRetryClient(&soakConn{s: s, c: c}, tid, pol)
		sink := obs.NewSink(obs.Config{Clock: vclock})
		c.rc.SetObs(sink)
		s.clientSinks = append(s.clientSinks, sink)
		cc := c
		c.rc.SetSleep(func(d time.Duration) {
			if d < 0 {
				d = 0
			}
			s.schedule(s.now+int64(d), func() *soakClient { return cc })
			s.park(cc)
		})
		s.clients = append(s.clients, c)
		go s.clientMain(c)
		// Staggered starts keep the opening round trips from being
		// perfectly in phase.
		s.schedule(int64(tid)*int64(10*time.Microsecond), func() *soakClient { return cc })
	}

	s.live = cfg.Clients
	for s.live > 0 {
		if s.pq.Len() == 0 {
			return SoakReport{}, SoakObservation{}, fmt.Errorf("harness: soak deadlocked with %d clients live", s.live)
		}
		ev := heap.Pop(&s.pq).(*soakEvent)
		if ev.at > s.now {
			s.now = ev.at
		}
		if c := ev.fn(); c != nil {
			c.resume <- struct{}{}
			if finished := <-s.parked; finished {
				s.live--
			}
		}
	}

	s.drain()
	s.verify()

	s.rep.Crashes = s.crashes
	s.rep.VirtualUS = s.now / int64(time.Microsecond)
	for _, c := range s.clients {
		st := c.rc.Stats()
		s.rep.Attempts += st.Attempts
		s.rep.Retries += st.Retries
		s.rep.Resolves += st.Resolves
		s.rep.Timeouts += st.Timeouts
		s.rep.Downs += st.Downs
		s.rep.GenChanges += st.GenChanges
	}

	var ob SoakObservation
	ob.Server = s.serverSink.Snapshot()
	for _, sk := range s.clientSinks {
		ob.Clients = ob.Clients.Add(sk.Snapshot())
	}
	ob.Merged = ob.Server.Add(ob.Clients)
	sources := make([]obs.TraceSource, 0, 1+len(s.clientSinks))
	sources = append(sources, obs.TraceSource{Name: "server", Events: s.serverSink.Events()})
	for i, sk := range s.clientSinks {
		sources = append(sources, obs.TraceSource{Name: fmt.Sprintf("client-%d", i), Events: sk.Events()})
	}
	ob.Timeline = obs.Reconstruct("virtual_ns", sources...)
	return s.rep, ob, nil
}
