package harness

import (
	"encoding/json"
	"fmt"
)

// Report is the machine-readable form of one figure reproduction, written
// as BENCH_fig5a.json / BENCH_fig5b.json so that successive revisions have
// a benchmark trajectory to regress against. The schema is intentionally
// flat and stable: tooling that diffs two reports should only ever need
// figure/series/threads/mops.
type Report struct {
	// Figure identifies the reproduced figure ("fig5a", "fig5b", ...).
	Figure string `json:"figure"`
	// Workload restates the measured workload for the reader.
	Workload string `json:"workload"`
	// Config echoes the sweep parameters the numbers were taken under.
	Config ReportConfig `json:"config"`
	// Series holds one entry per implementation, in legend order.
	Series []ReportSeries `json:"series"`
}

// ReportConfig echoes the SweepConfig a report was measured under.
type ReportConfig struct {
	Threads        []int  `json:"threads"`
	DurationMS     int64  `json:"duration_ms"`
	Repeats        int    `json:"repeats"`
	FlushLatencyNS int64  `json:"flush_latency_ns"`
	AccessDelay    int    `json:"access_delay"`
	GoMaxProcs     int    `json:"gomaxprocs,omitempty"`
	Note           string `json:"note,omitempty"`
	// ShardCounts and PairsPerThread appear only in the sharded
	// (virtual-time) report.
	ShardCounts    []int `json:"shard_counts,omitempty"`
	PairsPerThread int   `json:"pairs_per_thread,omitempty"`
}

// ReportSeries is one implementation's curve.
type ReportSeries struct {
	Impl   string        `json:"impl"`
	Points []ReportPoint `json:"points"`
}

// ReportPoint is one (threads, throughput) measurement with its operation
// counts, including the flush/fence split introduced by coalescing.
type ReportPoint struct {
	Threads int     `json:"threads"`
	Mops    float64 `json:"mops"`
	Ops     uint64  `json:"ops"`
	Flushes uint64  `json:"flushes"`
	Fences  uint64  `json:"fences"`
	// FencesElided counts fences absorbed by fence batching; it is
	// omitted when zero so reports predating the combining layer keep
	// their bytes.
	FencesElided uint64 `json:"fences_elided,omitempty"`
}

// BuildReport assembles a Report from measured series.
func BuildReport(figure string, cfg SweepConfig, series []Series) Report {
	cfg.defaults()
	r := Report{
		Figure:   figure,
		Workload: "alternating enqueue/dequeue pairs, queue seeded with 16 items",
		Config: ReportConfig{
			Threads:        cfg.Threads,
			DurationMS:     cfg.Duration.Milliseconds(),
			Repeats:        cfg.Repeats,
			FlushLatencyNS: cfg.FlushLatency.Nanoseconds(),
			AccessDelay:    cfg.AccessDelay,
		},
	}
	for _, s := range series {
		rs := ReportSeries{Impl: s.Name}
		for _, p := range s.Points {
			rs.Points = append(rs.Points, ReportPoint{
				Threads: p.Threads,
				Mops:    p.Mops,
				Ops:     p.Ops,
				Flushes: p.Flushes,
				Fences:  p.Fences,
			})
		}
		r.Series = append(r.Series, rs)
	}
	return r
}

// FormatJSON renders series as an indented JSON Report.
func FormatJSON(figure string, cfg SweepConfig, series []Series) (string, error) {
	b, err := json.MarshalIndent(BuildReport(figure, cfg, series), "", "  ")
	if err != nil {
		return "", fmt.Errorf("harness: marshal report: %w", err)
	}
	return string(b) + "\n", nil
}
