package harness

import (
	"strings"
	"testing"
)

// TestRunVirtualDeterministic: the virtual-time measurement must be
// bit-identical across runs — that is what makes the committed
// BENCH_sharded.json regressable on any host.
func TestRunVirtualDeterministic(t *testing.T) {
	cfg := VirtualRunConfig{Impl: DSSDetectable, Threads: 4, PairsPerThread: 40}
	a, err := RunVirtual(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunVirtual(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("virtual runs differ: %+v vs %+v", a, b)
	}
	if a.Ops != 4*40*2 || a.Mops <= 0 {
		t.Fatalf("implausible point: %+v", a)
	}
}

// TestVirtualShardingRelievesContention is the mechanism check behind the
// trajectory file: at a contended thread count, the sharded composition
// must beat the single DSS queue in virtual time, and the single-thread
// baseline must not (there is no contention for sharding to relieve, and
// the sharded prep pays one extra cursor persist per operation).
func TestVirtualShardingRelievesContention(t *testing.T) {
	const pairs = 60
	base, err := RunVirtual(VirtualRunConfig{Impl: DSSDetectable, Threads: 12, PairsPerThread: pairs})
	if err != nil {
		t.Fatal(err)
	}
	shard, err := RunVirtual(VirtualRunConfig{Impl: ShardedDSS, Threads: 12, Shards: 4, PairsPerThread: pairs})
	if err != nil {
		t.Fatal(err)
	}
	if shard.Mops <= base.Mops {
		t.Fatalf("4-shard composition (%.3f Mops/s) not faster than baseline (%.3f Mops/s) at 12 threads",
			shard.Mops, base.Mops)
	}

	base1, err := RunVirtual(VirtualRunConfig{Impl: DSSDetectable, Threads: 1, PairsPerThread: pairs})
	if err != nil {
		t.Fatal(err)
	}
	shard1, err := RunVirtual(VirtualRunConfig{Impl: ShardedDSS, Threads: 1, Shards: 4, PairsPerThread: pairs})
	if err != nil {
		t.Fatal(err)
	}
	if shard1.Mops > base1.Mops {
		t.Fatalf("sharding sped up the uncontended single thread (%.3f vs %.3f Mops/s); the cost model lost the cursor persist",
			shard1.Mops, base1.Mops)
	}
}

// TestFigureShardedAndReport runs a miniature shard sweep end to end and
// checks the series shape and report schema.
func TestFigureShardedAndReport(t *testing.T) {
	cfg := ShardedSweepConfig{
		Threads:        []int{1, 4},
		ShardCounts:    []int{2},
		PairsPerThread: 20,
	}
	series, err := FigureSharded(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 || series[0].Name != "dss-detectable" || series[1].Name != "sharded-dss/2" {
		t.Fatalf("unexpected series: %+v", series)
	}
	for _, s := range series {
		if len(s.Points) != 2 {
			t.Fatalf("series %s has %d points, want 2", s.Name, len(s.Points))
		}
	}
	r := BuildShardedReport(cfg, series)
	if r.Figure != "sharded" || len(r.Config.ShardCounts) != 1 || r.Config.PairsPerThread != 20 {
		t.Fatalf("report config wrong: %+v", r.Config)
	}
	if !strings.Contains(r.Config.Note, "virtual-time") {
		t.Fatalf("report must disclose virtual-time provenance: %q", r.Config.Note)
	}
}
