package harness

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/obs"
)

// SLOSchema is the schema tag of the streaming-percentile figure
// document (dssbench -slo, committed as BENCH_slo.json).
const SLOSchema = "dss-slo/1"

// SLORecovery is the figure's recovery-SLO accounting, derived from the
// reconstructed crash/recovery timeline of the run. Outage is measured
// crash-to-recovery-end on the shared virtual clock — the window the
// live SLO trackers bound with RecoveryMaxNS.
type SLORecovery struct {
	// Crashes/Recoveries repeat the timeline header (they match exactly
	// when no crash interrupted a recovery).
	Crashes    uint64 `json:"crashes"`
	Recoveries uint64 `json:"recoveries"`
	// MeanOutageNS/MaxOutageNS/TotalDownNS summarize the completed
	// crash→recover_end windows; OutageP50/P99/P999 are their
	// interpolated percentiles (the same obs.Hist.Quantile the phase
	// rows use, over a histogram of the outage durations).
	MeanOutageNS float64 `json:"mean_outage_ns"`
	MaxOutageNS  uint64  `json:"max_outage_ns"`
	TotalDownNS  uint64  `json:"total_down_ns"`
	OutageP50    float64 `json:"outage_p50"`
	OutageP99    float64 `json:"outage_p99"`
	OutageP999   float64 `json:"outage_p999"`
	// ClientDowns/GenChanges total the client-side fallout the timeline
	// attributed to those windows.
	ClientDowns uint64 `json:"client_downs"`
	GenChanges  uint64 `json:"gen_changes"`
}

// SLOReport is the dss-slo/1 figure: per-phase interpolated latency
// percentiles (obs.Hist.Quantile, so p50/p99/p999 stay distinct inside
// one log₂ bucket) plus recovery accounting, all measured under the
// deterministic crash-storm soak on the DES virtual clock. For a fixed
// config the document is byte-identical on every machine, so
// BENCH_slo.json is committed and CI regenerates and byte-compares it.
type SLOReport struct {
	Schema string `json:"schema"`
	// Unit names the clock unit of every duration: "virtual_ns".
	Unit         string `json:"unit"`
	Object       string `json:"object,omitempty"`
	Seed         int64  `json:"seed"`
	Clients      int    `json:"clients"`
	OpsPerClient int    `json:"ops_per_client"`
	VirtualUS    int64  `json:"virtual_us"`
	// Phases summarizes the merged (server + every client) histograms;
	// ServerPhases and ClientPhases split the two sides. Client rows are
	// round-trip latencies (prep/exec/resolve through the faulty
	// network); server rows are its recovery windows.
	Phases       []obs.PhaseSLO `json:"phases"`
	ServerPhases []obs.PhaseSLO `json:"server_phases,omitempty"`
	ClientPhases []obs.PhaseSLO `json:"client_phases,omitempty"`
	Recovery     SLORecovery    `json:"recovery"`
}

// latencyPhases summarizes a snapshot's histograms, dropping rows whose
// durations are all zero (e.g. the server's recovery procedure, which
// runs between virtual-clock ticks — its real cost is the outage window
// the Recovery section accounts). Every surviving row therefore carries
// distinct interpolated percentiles.
func latencyPhases(s obs.Snapshot) []obs.PhaseSLO {
	var out []obs.PhaseSLO
	for _, p := range obs.WindowSLO(s) {
		if p.Mean > 0 {
			out = append(out, p)
		}
	}
	return out
}

// RunSLO executes one observed crash-storm soak and distills the
// dss-slo/1 figure from its snapshots and timeline. The soak must be
// violation-free — a figure measured over a broken run would pin
// meaningless numbers.
func RunSLO(cfg SoakConfig) (SLOReport, error) {
	rep, ob, err := RunSoakObserved(cfg)
	if err != nil {
		return SLOReport{}, err
	}
	if !rep.OK() {
		return SLOReport{}, fmt.Errorf("harness: slo soak found %d violations (first: %s)",
			len(rep.Violations), rep.Violations[0])
	}
	out := SLOReport{
		Schema:       SLOSchema,
		Unit:         "virtual_ns",
		Object:       rep.Object,
		Seed:         rep.Seed,
		Clients:      rep.Clients,
		OpsPerClient: rep.OpsPerClient,
		VirtualUS:    rep.VirtualUS,
		Phases:       latencyPhases(ob.Merged),
		ServerPhases: latencyPhases(ob.Server),
		ClientPhases: latencyPhases(ob.Clients),
	}
	rec := SLORecovery{Crashes: ob.Timeline.Crashes, Recoveries: ob.Timeline.Recoveries}
	var outages obs.Hist
	for _, c := range ob.Timeline.Cycles {
		rec.ClientDowns += c.ClientDowns
		rec.GenChanges += c.ClientGenChanges
		if c.RecoverEnd == 0 || c.RecoverEnd < c.Crash {
			continue
		}
		d := c.RecoverEnd - c.Crash
		outages.Record(d)
		rec.TotalDownNS += d
		if d > rec.MaxOutageNS {
			rec.MaxOutageNS = d
		}
	}
	if outages.Count > 0 {
		rec.MeanOutageNS = float64(rec.TotalDownNS) / float64(outages.Count)
		rec.OutageP50 = outages.Quantile(0.50)
		rec.OutageP99 = outages.Quantile(0.99)
		rec.OutageP999 = outages.Quantile(0.999)
	}
	out.Recovery = rec
	return out, nil
}

// FormatJSON renders the report for committing (trailing newline, stable
// key order).
func (r SLOReport) FormatJSON() (string, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	return string(b) + "\n", nil
}

// FormatTable renders the report for humans: the percentile table, then
// the recovery accounting line.
func (r SLOReport) FormatTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-8s %10s %14s %12s %12s %12s\n",
		"phase", "kind", "count", "mean("+r.Unit+")", "p50", "p99", "p999")
	for _, p := range r.Phases {
		fmt.Fprintf(&b, "%-10s %-8s %10d %14.1f %12.1f %12.1f %12.1f\n",
			p.Phase, p.Kind, p.Count, p.Mean, p.P50, p.P99, p.P999)
	}
	fmt.Fprintf(&b, "recovery: %d crashes, %d recoveries; outage mean %.1f p50 %.1f p99 %.1f p999 %.1f max %d total %d (%s)\n",
		r.Recovery.Crashes, r.Recovery.Recoveries, r.Recovery.MeanOutageNS,
		r.Recovery.OutageP50, r.Recovery.OutageP99, r.Recovery.OutageP999,
		r.Recovery.MaxOutageNS, r.Recovery.TotalDownNS, r.Unit)
	fmt.Fprintf(&b, "client fallout: %d downs, %d gen changes\n",
		r.Recovery.ClientDowns, r.Recovery.GenChanges)
	return b.String()
}
