package harness

import (
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/pmem"
	"repro/internal/vtime"
)

// MetricsSchema tags a MetricsReport document.
const MetricsSchema = "dss-metrics/1"

// MetricsReport is the machine-readable form of one instrumented
// measurement: the workload shape, the heap's primitive-operation deltas,
// and the obs export (per-phase latency histograms, counters, per-shard
// counters). Mode "virtual" reports are deterministic — same build, same
// bytes — and committable; mode "wall" reports carry real nanoseconds.
type MetricsReport struct {
	Schema  string `json:"schema"`
	Impl    string `json:"impl"`
	Threads int    `json:"threads"`
	Shards  int    `json:"shards,omitempty"`
	// Pairs is the per-thread pair count of a virtual run; DurationMS the
	// wall duration of a wall run.
	Pairs      int   `json:"pairs_per_thread,omitempty"`
	DurationMS int64 `json:"duration_ms,omitempty"`
	// Mode is "virtual" (deterministic, unit steps) or "wall" (unit ns).
	Mode string  `json:"mode"`
	Mops float64 `json:"mops"`
	Ops  uint64  `json:"ops"`
	// Heap is the primitive-operation delta over the measured window.
	Heap pmem.Stats `json:"heap"`
	// FlushesPerOp and FencesPerOp are Heap.Flushes/Ops and
	// Heap.Fences/Ops, precomputed so that dashboards and regression
	// guards compare per-operation persistence cost directly instead of
	// re-deriving it from two counters.
	FlushesPerOp float64 `json:"flushes_per_op"`
	FencesPerOp  float64 `json:"fences_per_op"`
	// Obs is the observability export for the same window.
	Obs obs.Export `json:"obs"`
}

// perOp divides a primitive count by the operation count, tolerating an
// empty window.
func perOp(n, ops uint64) float64 {
	if ops == 0 {
		return 0
	}
	return float64(n) / float64(ops)
}

// withdrawSeed withdraws the seeding thread's lingering prep record
// before the measured window opens. Seeding drives thread 0 through the
// detectable prep/exec path, which leaves its last executed prep
// announced; without this, the first measured Prep(0) pays one extra
// withdrawal persist, and a run that should cost exactly k persists per
// operation reports k*ops+1 flushes and fences.
func withdrawSeed(q Queue) {
	if a, ok := q.(objDetectable); ok {
		a.obj.Abandon(0)
	}
}

// FormatJSON renders the report as indented JSON with a trailing newline.
func (r MetricsReport) FormatJSON() (string, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", fmt.Errorf("harness: marshal metrics: %w", err)
	}
	return string(b) + "\n", nil
}

// RunVirtualMetrics is RunVirtual with the observability layer attached:
// the same fixed-work virtual-time measurement, with a sink clocked by
// the heap's step counter (unit "steps"). Observation draws no heap
// steps and no randomness, so the run — schedule, step counts, and the
// exported histograms alike — is deterministic for a given configuration,
// which is what makes BENCH_metrics.json committable.
func RunVirtualMetrics(cfg VirtualRunConfig) (MetricsReport, error) {
	cfg.defaults()
	sink := obs.NewSink(obs.Config{})
	q, h, err := Build(cfg.Impl, BuildConfig{
		Threads:        cfg.Threads,
		NodesPerThread: cfg.NodesPerThread,
		Tracked:        true,
		Shards:         cfg.Shards,
		Obs:            sink,
	})
	if err != nil {
		return MetricsReport{}, err
	}
	sink.SetClock(h.Steps)
	for i := 0; i < cfg.InitialItems; i++ {
		if err := q.Enqueue(0, uint64(1000+i)); err != nil {
			return MetricsReport{}, fmt.Errorf("harness: seeding: %w", err)
		}
	}
	withdrawSeed(q)
	stats0 := h.Stats()
	snap0 := sink.Snapshot()

	workers := make([]func(), cfg.Threads)
	for tid := 0; tid < cfg.Threads; tid++ {
		tid := tid
		workers[tid] = func() {
			v := uint64(tid + 1)
			for p := 0; p < cfg.PairsPerThread; p++ {
				_ = q.Enqueue(tid, v)
				q.Dequeue(tid)
				v++
			}
		}
	}
	elapsed := vtime.Run(h, vtime.Costs{AccessNS: cfg.AccessNS, FlushNS: cfg.FlushNS}, workers)
	if elapsed <= 0 {
		return MetricsReport{}, fmt.Errorf("harness: virtual run measured no time")
	}
	ops := uint64(cfg.Threads) * uint64(cfg.PairsPerThread) * 2
	shards := 0
	switch cfg.Impl {
	case ShardedDSS, ShardedStack:
		shards = cfg.Shards
		if shards == 0 {
			shards = 8
		}
	case ShardedCombined:
		shards = cfg.Shards
		if shards == 0 {
			shards = 4
		}
	}
	heap := h.Stats().Sub(stats0)
	return MetricsReport{
		Schema:       MetricsSchema,
		Impl:         string(cfg.Impl),
		Threads:      cfg.Threads,
		Shards:       shards,
		Pairs:        cfg.PairsPerThread,
		Mode:         "virtual",
		Mops:         float64(ops) / elapsed.Seconds() / 1e6,
		Ops:          ops,
		Heap:         heap,
		FlushesPerOp: perOp(heap.Flushes, ops),
		FencesPerOp:  perOp(heap.Fences, ops),
		Obs:          sink.Snapshot().Sub(snap0).Export("steps"),
	}, nil
}

// RunWallMetrics is RunThroughput with the observability layer attached:
// a Direct-mode wall-clock measurement whose sink records real
// nanoseconds (unit "ns"). Numbers vary run to run; the shape of the
// phase split is the signal.
func RunWallMetrics(cfg RunConfig) (MetricsReport, error) {
	if cfg.Duration <= 0 {
		cfg.Duration = 100 * time.Millisecond
	}
	if cfg.InitialItems == 0 {
		cfg.InitialItems = 16
	}
	sink := obs.NewSink(obs.Config{})
	q, h, err := Build(cfg.Impl, BuildConfig{
		Threads:        cfg.Threads,
		NodesPerThread: cfg.NodesPerThread,
		FlushLatency:   cfg.FlushLatency,
		AccessDelay:    cfg.AccessDelay,
		Obs:            sink,
	})
	if err != nil {
		return MetricsReport{}, err
	}
	for i := 0; i < cfg.InitialItems; i++ {
		if err := q.Enqueue(0, uint64(1000+i)); err != nil {
			return MetricsReport{}, fmt.Errorf("harness: seeding: %w", err)
		}
	}
	withdrawSeed(q)
	stats0 := h.Stats()
	snap0 := sink.Snapshot()

	var stop atomic.Bool
	counts := make([]uint64, cfg.Threads*8)
	var wg sync.WaitGroup
	start := time.Now()
	for tid := 0; tid < cfg.Threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			var local uint64
			v := uint64(tid + 1)
			for !stop.Load() {
				if err := q.Enqueue(tid, v); err == nil {
					local++
				}
				q.Dequeue(tid)
				local++
				v++
				if v >= 1<<50 {
					v = uint64(tid + 1)
				}
			}
			atomic.StoreUint64(&counts[tid*8], local)
		}(tid)
	}
	time.Sleep(cfg.Duration)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)

	var total uint64
	for tid := 0; tid < cfg.Threads; tid++ {
		total += atomic.LoadUint64(&counts[tid*8])
	}
	heap := h.Stats().Sub(stats0)
	return MetricsReport{
		Schema:       MetricsSchema,
		Impl:         string(cfg.Impl),
		Threads:      cfg.Threads,
		DurationMS:   cfg.Duration.Milliseconds(),
		Mode:         "wall",
		Mops:         float64(total) / elapsed.Seconds() / 1e6,
		Ops:          total,
		Heap:         heap,
		FlushesPerOp: perOp(heap.Flushes, total),
		FencesPerOp:  perOp(heap.Fences, total),
		Obs:          sink.Snapshot().Sub(snap0).Export("ns"),
	}, nil
}
