package harness

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// This file is the step-neutrality regression guard: the committed BENCH
// artifacts are deterministic functions of the code, so ANY change to the
// heap-step sequence of the single-server soak, the sharded front, or the
// combining front silently invalidates them. The cluster layer rides on
// the same fronts (persisted routing-cursor tags share the cursor cache
// line), so these tests pin the committed bytes/points against fresh
// in-process runs — a cluster-motivated edit that perturbs the
// single-server step sequence fails here, not in a later `make
// soak-smoke`.

func readRepoFile(t *testing.T, name string) []byte {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("..", "..", name))
	if err != nil {
		t.Fatalf("read committed %s: %v", name, err)
	}
	return b
}

// TestSoakBaselineRegeneratesBitIdentical re-runs the exact committed
// configuration of BENCH_soak.json and BENCH_soak_timeline.json (dsssoak
// -seed 1) in-process and requires byte equality with the files.
func TestSoakBaselineRegeneratesBitIdentical(t *testing.T) {
	rep, ob, err := RunSoakObserved(SoakConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := marshalReport(t, rep), readRepoFile(t, "BENCH_soak.json"); !bytes.Equal(got, want) {
		t.Fatalf("BENCH_soak.json drifted from a fresh run: the heap-step sequence changed; regenerate with `make soak` and justify the diff\nfresh:\n%s", got)
	}
	tl := ob.Timeline
	tl.Events = nil
	if got, want := marshalReport(t, tl), readRepoFile(t, "BENCH_soak_timeline.json"); !bytes.Equal(got, want) {
		t.Fatalf("BENCH_soak_timeline.json drifted from a fresh run\nfresh:\n%s", got)
	}
}

func committedPoint(t *testing.T, file, impl string, threads int) ReportPoint {
	t.Helper()
	var r Report
	if err := json.Unmarshal(readRepoFile(t, file), &r); err != nil {
		t.Fatalf("parse %s: %v", file, err)
	}
	for _, s := range r.Series {
		if s.Impl != impl {
			continue
		}
		for _, p := range s.Points {
			if p.Threads == threads {
				return p
			}
		}
	}
	t.Fatalf("%s: no %s point at %d threads", file, impl, threads)
	return ReportPoint{}
}

func requirePointIdentical(t *testing.T, file, series string, impl Impl, threads, shards int) {
	t.Helper()
	want := committedPoint(t, file, series, threads)
	got, err := RunVirtual(VirtualRunConfig{Impl: impl, Threads: threads, Shards: shards})
	if err != nil {
		t.Fatalf("%s @%d: %v", series, threads, err)
	}
	if got.Ops != want.Ops || got.Flushes != want.Flushes ||
		got.Fences != want.Fences || got.FencesElided != want.FencesElided ||
		got.Mops != want.Mops {
		t.Fatalf("%s: %s @%d threads drifted:\ncommitted: %+v\nfresh:     ops=%d flushes=%d fences=%d elided=%d mops=%v",
			file, series, threads, want, got.Ops, got.Flushes, got.Fences, got.FencesElided, got.Mops)
	}
}

// TestShardedBaselinePointsRegenerate pins the committed virtual-time
// points the cluster work is most likely to disturb: the detectable
// baseline and the widest sharded front at the largest thread count.
func TestShardedBaselinePointsRegenerate(t *testing.T) {
	requirePointIdentical(t, "BENCH_sharded.json", string(DSSDetectable), DSSDetectable, 20, 0)
	requirePointIdentical(t, "BENCH_sharded.json", string(ShardedDSS)+"/8", ShardedDSS, 20, 8)
}

// TestCombineBaselinePointsRegenerate does the same for the combining
// front's report (its fence-amortization headline lives in these points).
func TestCombineBaselinePointsRegenerate(t *testing.T) {
	requirePointIdentical(t, "BENCH_combine.json", string(CombinedDSS), CombinedDSS, 20, 0)
	requirePointIdentical(t, "BENCH_combine.json", string(ShardedCombined)+"/4", ShardedCombined, 20, 4)
}
