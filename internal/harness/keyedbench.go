package harness

import (
	"fmt"

	"repro/internal/combine"
	"repro/internal/dss"
	"repro/internal/pmem"
	"repro/internal/sharded"
	"repro/internal/spec"
	"repro/internal/vtime"
)

// This file is the keyed-object benchmark behind BENCH_register.json and
// BENCH_hmap.json: the detectable swap/CAS register and the detectable
// hash map measured in deterministic virtual time, through the same
// Prep/Exec detectable path the queue figures charge.
//
// The register figure compares the bare register against the
// flat-combining front over it — a single cell cannot shard (RegisterType
// is Keyed but not KeyRouted: cas's key is a comparison operand, not a
// sub-object name), so its scaling story is fence amortization. The hmap
// figure compares the bare map against sharded fronts of increasing shard
// count: MapType is KeyRouted, every operation names a disjoint
// sub-object by key, and the sharded composition scatters the key space
// by the same hash the cluster uses, so throughput scales with shards.

// KeyedSweepConfig parameterizes a keyed-object virtual-time sweep.
type KeyedSweepConfig struct {
	// Object selects the keyed type: "register" or "hmap".
	Object string
	// Threads lists the x-axis values.
	Threads []int
	// ShardCounts lists the sharded series of the hmap figure (ignored
	// by the register, which cannot shard).
	ShardCounts []int
	// OpsPerThread is the fixed per-thread workload: a rotation through
	// the type's four operations (write/swap/cas/read, or a put-heavy
	// put/get/mcas/del mix over a fixed scattered key set).
	OpsPerThread int
	// Keys sizes the hmap workload's key space (default 64; spread
	// across shards by KeyShard, so every shard sees traffic).
	Keys int
	// AccessNS and FlushNS are the vtime cost model, as in
	// VirtualRunConfig.
	AccessNS int64
	FlushNS  int64
	// NodesPerThread sizes the map's per-shard entry pools (the
	// register needs only a small constant pool).
	NodesPerThread int
}

func (c *KeyedSweepConfig) defaults() {
	if len(c.Threads) == 0 {
		// The keyed axis runs past the paper's 20 hardware threads: the
		// virtual machine has a core per worker, and the single-map
		// saturation the sharded series escapes is clearest at 32.
		c.Threads = []int{1, 2, 4, 8, 16, 24, 32}
	}
	if len(c.ShardCounts) == 0 {
		// Include the degenerate single shard so the committed figure
		// carries its own 1 -> 8 shard scaling comparison at equal
		// routing overhead.
		c.ShardCounts = []int{1, 2, 4, 8}
	}
	if c.OpsPerThread == 0 {
		c.OpsPerThread = 200
	}
	if c.Keys == 0 {
		c.Keys = 64
	}
	if c.AccessNS == 0 {
		c.AccessNS = 100
	}
	if c.FlushNS == 0 {
		c.FlushNS = 300
	}
	if c.NodesPerThread == 0 {
		c.NodesPerThread = 128
	}
}

// buildKeyed constructs the measured object: the bare type, the combined
// front over it (shards == -1), or a sharded front of `shards` shards.
func buildKeyed(typ dss.Type, threads, shards, nodesPerThread int, accessNS, flushNS int64) (dss.Object, *pmem.Heap, error) {
	per := shards
	if per < 1 {
		per = 1
	}
	words := 1<<15 + per*threads*(nodesPerThread*6+32)*pmem.WordsPerLine
	h, err := pmem.New(pmem.Config{
		Words: words, Mode: pmem.Tracked,
		FlushLatency: 0, AccessDelay: 0,
	})
	if err != nil {
		return nil, nil, err
	}
	cfg := dss.Config{
		Threads:        threads,
		NodesPerThread: nodesPerThread,
		ExtraNodes:     threads + 4,
	}
	switch {
	case shards > 0:
		f, err := sharded.New(h, 0, typ, sharded.Config{
			Shards:         shards,
			Threads:        threads,
			NodesPerThread: nodesPerThread,
			ExtraNodes:     threads + 4,
		})
		return f, h, err
	case shards == -1:
		f, err := combine.New(h, 0, typ, cfg)
		return f, h, err
	default:
		obj, err := typ.New(h, 0, cfg)
		return obj, h, err
	}
}

// keyedWorker returns thread tid's fixed workload against obj: ops are
// performed through the detectable Prep/Exec path, values are globally
// unique, and cas expectations track the thread's last observation so a
// useful fraction of the cas traffic hits.
func keyedWorker(obj dss.Object, isMap bool, tid, ops, keys int, errp *error) func() {
	return func() {
		var last uint64
		lastK := map[uint64]uint64{}
		for i := 0; i < ops; i++ {
			v := uint64(tid)*1_000_000 + uint64(i) + 1
			var op dss.Op
			if isMap {
				// Scatter the key walk: coprime stride per thread keeps
				// the threads out of phase, so concurrent ops usually
				// route to different shards. The rotation is put-heavy
				// over a fixed key set — a put of a present key replaces
				// in place, so bucket occupancy converges to the key
				// set's deterministic hash spread (<= EntriesPerBucket by
				// construction for the default 64 keys) and every put
				// pays the full snapshot-install protocol. That is the
				// regime the figure charges: under one 8-bucket map the
				// install CASes collide and the colliding rebuilds grow
				// with occupancy; the key-hash-routed shards split both.
				key := uint64((i*7+tid*13)%keys) + 1
				switch i % 8 {
				case 1:
					op = dss.Op{Kind: dss.Get, Key: key}
				case 3:
					op = dss.Op{Kind: dss.MapCAS, Key: key, Arg: spec.PackCAS(lastK[key], v)}
				case 5:
					op = dss.Op{Kind: dss.Delete, Key: key}
				default:
					op = dss.Op{Kind: dss.Put, Key: key, Arg: v}
				}
			} else {
				switch i % 4 {
				case 0:
					op = dss.Op{Kind: dss.Write, Arg: v}
				case 1:
					op = dss.Op{Kind: dss.Swap, Arg: v}
				case 2:
					op = dss.Op{Kind: dss.CAS, Key: last, Arg: v}
				default:
					op = dss.Op{Kind: dss.Read}
				}
			}
			if err := obj.Prep(tid, op); err != nil {
				*errp = fmt.Errorf("prep tid %d op %d: %w", tid, i, err)
				return
			}
			resp, err := obj.Exec(tid)
			if err != nil {
				*errp = fmt.Errorf("exec tid %d op %d: %w", tid, i, err)
				return
			}
			// Fold the observation into the expectation state.
			if isMap {
				key := op.Key
				switch op.Kind {
				case dss.Put:
					lastK[key] = op.Arg
				case dss.Get:
					if resp.Kind == dss.Val {
						lastK[key] = resp.Val
					} else {
						delete(lastK, key)
					}
				case dss.MapCAS:
					if resp.Val == 1 {
						lastK[key] = v
					} else if resp.Val2 != 0 {
						lastK[key] = resp.Val2
					} else {
						delete(lastK, key)
					}
				case dss.Delete:
					delete(lastK, key)
				}
			} else {
				switch op.Kind {
				case dss.Write, dss.Swap:
					last = op.Arg
				case dss.Read:
					last = resp.Val
				case dss.CAS:
					if resp.Val == 1 {
						last = op.Arg
					} else {
						last = resp.Val2
					}
				}
			}
		}
	}
}

// RunKeyedVirtual measures one keyed configuration at one thread count in
// virtual time. shards: 0 = the bare type, -1 = the combined front,
// N > 0 = a sharded front of N shards. Deterministic for a given build.
func RunKeyedVirtual(cfg KeyedSweepConfig, threads, shards int) (Point, error) {
	cfg.defaults()
	typ := dss.RegisterType
	isMap := cfg.Object == "hmap"
	if isMap {
		typ = dss.MapType
	} else if cfg.Object != "register" {
		return Point{}, fmt.Errorf("harness: unknown keyed object %q (register or hmap)", cfg.Object)
	}
	obj, h, err := buildKeyed(typ, threads, shards, cfg.NodesPerThread, cfg.AccessNS, cfg.FlushNS)
	if err != nil {
		return Point{}, err
	}
	stats0 := h.Stats()
	errs := make([]error, threads)
	workers := make([]func(), threads)
	for tid := 0; tid < threads; tid++ {
		workers[tid] = keyedWorker(obj, isMap, tid, cfg.OpsPerThread, cfg.Keys, &errs[tid])
	}
	elapsed := vtime.Run(h, vtime.Costs{AccessNS: cfg.AccessNS, FlushNS: cfg.FlushNS}, workers)
	for _, err := range errs {
		if err != nil {
			return Point{}, fmt.Errorf("harness: keyed %s: %w", cfg.Object, err)
		}
	}
	if elapsed <= 0 {
		return Point{}, fmt.Errorf("harness: keyed virtual run measured no time")
	}
	stats := h.Stats().Sub(stats0)
	ops := uint64(threads) * uint64(cfg.OpsPerThread)
	return Point{
		Threads:      threads,
		Mops:         float64(ops) / elapsed.Seconds() / 1e6,
		Ops:          ops,
		Flushes:      stats.Flushes,
		Fences:       stats.Fences,
		FencesElided: stats.FencesElided,
	}, nil
}

// FigureKeyed measures the keyed object's figure: for the register, the
// bare type against the combined front over it; for the hmap, the bare
// type against its sharded compositions.
func FigureKeyed(cfg KeyedSweepConfig) ([]Series, error) {
	cfg.defaults()
	runSeries := func(name string, shards int) (Series, error) {
		s := Series{Name: name}
		for _, th := range cfg.Threads {
			p, err := RunKeyedVirtual(cfg, th, shards)
			if err != nil {
				return Series{}, fmt.Errorf("harness: %s @%d threads: %w", name, th, err)
			}
			s.Points = append(s.Points, p)
		}
		return s, nil
	}
	switch cfg.Object {
	case "register":
		out := make([]Series, 0, 2)
		for _, row := range []struct {
			name   string
			shards int
		}{
			{"dss-register", 0},
			{"combined-register", -1},
		} {
			s, err := runSeries(row.name, row.shards)
			if err != nil {
				return nil, err
			}
			out = append(out, s)
		}
		return out, nil
	case "hmap":
		out := make([]Series, 0, 1+len(cfg.ShardCounts))
		s, err := runSeries("dss-hmap", 0)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
		for _, n := range cfg.ShardCounts {
			s, err := runSeries(fmt.Sprintf("sharded-hmap/%d", n), n)
			if err != nil {
				return nil, err
			}
			out = append(out, s)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("harness: unknown keyed object %q (register or hmap)", cfg.Object)
	}
}

// BuildKeyedReport assembles the BENCH_register.json / BENCH_hmap.json
// report in the standard flat schema.
func BuildKeyedReport(cfg KeyedSweepConfig, series []Series) Report {
	cfg.defaults()
	r := Report{
		Figure: cfg.Object,
		Config: ReportConfig{
			Threads:        cfg.Threads,
			Repeats:        1,
			FlushLatencyNS: cfg.FlushNS,
			AccessDelay:    int(cfg.AccessNS),
			PairsPerThread: cfg.OpsPerThread,
		},
	}
	if cfg.Object == "register" {
		r.Workload = "rotating write/swap/cas/read, globally unique values, cas expecting the " +
			"thread's last observation; fixed ops per thread"
		r.Config.Note = "virtual-time mode (internal/vtime): deterministic min-clock scheduling; " +
			"the register cannot shard (its key is a cas operand, not a sub-object name), so " +
			"the combined series' fence amortization is the scaling story"
	} else {
		r.Workload = fmt.Sprintf("put-heavy rotation (5/8 put, 1/8 each get/mcas/del) over a "+
			"fixed set of %d keys (coprime per-thread stride), globally unique values; "+
			"fixed ops per thread", cfg.Keys)
		r.Config.ShardCounts = cfg.ShardCounts
		r.Config.Note = "virtual-time mode (internal/vtime): deterministic min-clock scheduling; " +
			"MapType is KeyRouted — the sharded front scatters keys by KeyShard hash and the " +
			"composition is the exact sequential map, so throughput scales with shard count"
	}
	for _, s := range series {
		rs := ReportSeries{Impl: s.Name}
		for _, p := range s.Points {
			rs.Points = append(rs.Points, ReportPoint{
				Threads: p.Threads, Mops: p.Mops, Ops: p.Ops,
				Flushes: p.Flushes, Fences: p.Fences,
				FencesElided: p.FencesElided,
			})
		}
		r.Series = append(r.Series, rs)
	}
	return r
}
