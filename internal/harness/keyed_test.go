package harness

import (
	"reflect"
	"testing"
)

// TestKeyedSoakDeterministicAndClean runs the register and hash-map
// crash-storm soaks — bare and behind the combining front — and requires
// the core soak promises: a bit-identical report for the same seed and
// zero history-checker violations under the full fault schedule.
func TestKeyedSoakDeterministicAndClean(t *testing.T) {
	for _, tc := range []struct {
		name     string
		object   string
		combined bool
	}{
		{"register", "register", false},
		{"register-combined", "register", true},
		{"hmap", "hmap", false},
		{"hmap-combined", "hmap", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := SoakConfig{Seed: 1, Object: tc.object, Combined: tc.combined}
			a, err := RunSoak(cfg)
			if err != nil {
				t.Fatal(err)
			}
			b, err := RunSoak(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("same seed diverged:\n%+v\nvs\n%+v", a, b)
			}
			if !a.OK() {
				t.Fatalf("violations: %v", a.Violations)
			}
			if a.Crashes == 0 {
				t.Fatal("keyed soak injected no crashes — the storm never ran")
			}
			if a.Ops == 0 {
				t.Fatal("keyed soak completed no operations")
			}
		})
	}
}

// TestKeyedSoakRejectsUnknownObject pins the error path of the vocabulary
// switch.
func TestKeyedSoakRejectsUnknownObject(t *testing.T) {
	if _, err := RunSoak(SoakConfig{Seed: 1, Object: "deque"}); err == nil {
		t.Fatal("unknown object accepted")
	}
}

// TestKeyedBenchDeterministic pins the virtual-time keyed figures'
// committability: the same configuration measures identical points.
func TestKeyedBenchDeterministic(t *testing.T) {
	cfg := KeyedSweepConfig{Object: "hmap", Threads: []int{4}, OpsPerThread: 60}
	a, err := RunKeyedVirtual(cfg, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunKeyedVirtual(cfg, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("virtual keyed runs diverged: %+v vs %+v", a, b)
	}
	if a.Mops <= 0 || a.Ops != 4*60 {
		t.Fatalf("implausible point: %+v", a)
	}
}

// TestKeyedBenchShardScaling asserts the hmap figure's headline at test
// scale: with the put-heavy fixed-key workload at a high thread count,
// eight key-hash-routed shards must more than double the single shard's
// throughput (the committed BENCH_hmap.json pins >2x at 32 threads; the
// smaller in-test sweep must already clear 1.5x or the figure's claim is
// at risk).
func TestKeyedBenchShardScaling(t *testing.T) {
	cfg := KeyedSweepConfig{Object: "hmap", Threads: []int{24}, OpsPerThread: 150}
	one, err := RunKeyedVirtual(cfg, 24, 1)
	if err != nil {
		t.Fatal(err)
	}
	eight, err := RunKeyedVirtual(cfg, 24, 8)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := eight.Mops / one.Mops; ratio < 1.5 {
		t.Fatalf("sharded-hmap/8 only %.2fx sharded-hmap/1 at 24 threads (%.3f vs %.3f Mops)",
			ratio, eight.Mops, one.Mops)
	}
}

// TestKeyedBenchRegisterFenceAmortization asserts the register figure's
// headline at test scale: the combining front must cut the bare
// register's fences per operation by at least 3x at a high thread count.
func TestKeyedBenchRegisterFenceAmortization(t *testing.T) {
	cfg := KeyedSweepConfig{Object: "register", Threads: []int{16}, OpsPerThread: 100}
	bare, err := RunKeyedVirtual(cfg, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	combined, err := RunKeyedVirtual(cfg, 16, -1)
	if err != nil {
		t.Fatal(err)
	}
	bf := float64(bare.Fences) / float64(bare.Ops)
	cf := float64(combined.Fences) / float64(combined.Ops)
	if cf*3 > bf {
		t.Fatalf("combined register spends %.2f fences/op vs bare's %.2f — less than the 3x amortization the figure claims", cf, bf)
	}
}

// TestKeyedBenchRejectsUnknownObject pins the keyed sweep's error path.
func TestKeyedBenchRejectsUnknownObject(t *testing.T) {
	if _, err := RunKeyedVirtual(KeyedSweepConfig{Object: "deque"}, 2, 0); err == nil {
		t.Fatal("unknown keyed object accepted")
	}
	if _, err := FigureKeyed(KeyedSweepConfig{Object: "deque"}); err == nil {
		t.Fatal("unknown keyed figure accepted")
	}
}

// TestKeyedBaselinePointsRegenerate pins the committed keyed BENCH
// points most likely to drift: the widest sharded hmap and the combined
// register at the largest thread count, plus their scaling baselines.
func TestKeyedBaselinePointsRegenerate(t *testing.T) {
	requireKeyedPointIdentical(t, "BENCH_hmap.json", "sharded-hmap/1", "hmap", 32, 1)
	requireKeyedPointIdentical(t, "BENCH_hmap.json", "sharded-hmap/8", "hmap", 32, 8)
	requireKeyedPointIdentical(t, "BENCH_register.json", "dss-register", "register", 32, 0)
	requireKeyedPointIdentical(t, "BENCH_register.json", "combined-register", "register", 32, -1)
}

func requireKeyedPointIdentical(t *testing.T, file, series, object string, threads, shards int) {
	t.Helper()
	want := committedPoint(t, file, series, threads)
	got, err := RunKeyedVirtual(KeyedSweepConfig{Object: object}, threads, shards)
	if err != nil {
		t.Fatalf("%s @%d: %v", series, threads, err)
	}
	if got.Ops != want.Ops || got.Flushes != want.Flushes ||
		got.Fences != want.Fences || got.FencesElided != want.FencesElided ||
		got.Mops != want.Mops {
		t.Fatalf("%s: %s @%d threads drifted:\ncommitted: %+v\nfresh:     ops=%d flushes=%d fences=%d elided=%d mops=%v",
			file, series, threads, want, got.Ops, got.Flushes, got.Fences, got.FencesElided, got.Mops)
	}
}
