package harness

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"

	"repro/internal/procharness"
	"repro/internal/shm"
)

// TestMain makes this package's test binary role-hosting: the
// multi-process storm supervisor re-execs the running binary with
// DSSPROC_ROLE set for its server and client processes, and MaybeRole
// takes those invocations over before any test runs (the same pattern
// as internal/procharness's own tests).
func TestMain(m *testing.M) {
	procharness.MaybeRole()
	os.Exit(m.Run())
}

// TestProcsBaselineRegeneratesBitIdentical re-runs the exact committed
// configuration of BENCH_procs.json (dssproc -seed 1) in-process and
// requires byte equality with the file. The storm's report counts are
// seed-deterministic even though its processes race in wall time, so
// any change to the wire frames, the retry protocol, or the fault
// schedule that perturbs the committed counts fails here — the
// in-process arm of the step-neutrality guard for the multi-process
// deployment, alongside `make procs-smoke`.
func TestProcsBaselineRegeneratesBitIdentical(t *testing.T) {
	if !shm.Supported() {
		t.Skip("shared-memory segments unsupported on this platform")
	}
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	committed := readRepoFile(t, "BENCH_procs.json")
	rep, _, err := procharness.RunStorm(procharness.StormConfig{
		Seed:                   1,
		Object:                 "queue",
		Servers:                2,
		ClientsPerServer:       4,
		OpsPerClient:           150,
		KillsPerServer:         10,
		RecoveryKillsPerServer: 2,
		Blackouts:              1,
		Wedges:                 2,
		RingSlots:              128,
		RecoveryHoldMS:         400,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("storm reported violations:\n%v", rep.Violations)
	}
	got, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	if !bytes.Equal(got, committed) {
		t.Fatalf("BENCH_procs.json drifted from a fresh run of its committed configuration:\ncommitted:\n%s\nfresh:\n%s",
			committed, got)
	}
}
