// Package harness drives the evaluation of Section 4: it builds each of
// the paper's seven queue configurations over the simulated persistent
// heap, runs the paper's workload (threads executing alternating
// enqueue/dequeue pairs on a queue seeded with 16 nodes), and produces the
// data series behind Figure 5a and Figure 5b. It also packages the
// exhaustive crash-point sweep used to validate Theorem 1.
package harness

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/combine"
	"repro/internal/core"
	"repro/internal/cwe"
	"repro/internal/dss"
	"repro/internal/obs"
	"repro/internal/pmem"
	"repro/internal/queue"
	"repro/internal/sharded"
)

// shardNodes divides a whole-queue per-thread node budget across shards,
// keeping a floor so small budgets still leave each shard operable.
func shardNodes(nodesPerThread, shards int) int {
	if nodesPerThread == 0 {
		nodesPerThread = 256
	}
	n := nodesPerThread/shards + 16
	if n < 32 {
		n = 32
	}
	return n
}

// Impl names one queue configuration from the paper's evaluation.
type Impl string

// The seven configurations of Figure 5.
const (
	// Figure 5a.
	MSQueue          Impl = "ms-queue"
	DSSNonDetectable Impl = "dss-non-detectable"
	DSSDetectable    Impl = "dss-detectable"
	// Figure 5b (DSSDetectable also appears there).
	LogQueue          Impl = "log-queue"
	FastCASWithEffect Impl = "fast-caswitheffect"
	GeneralCASWith    Impl = "general-caswitheffect"
	// DurableQueue is the non-detectable recoverable ancestor (not in
	// Figure 5, provided for ablations).
	DurableQueue Impl = "durable-queue"
	// ShardedDSS is the N-way sharded detectable composition of
	// internal/sharded (not in the paper; the scaling extension).
	ShardedDSS Impl = "sharded-dss"
	// DSSStack is the DSS stack's detectable path — the transformation
	// applied to a second sequential type.
	DSSStack Impl = "dss-stack"
	// ShardedStack is the sharded composition over the DSS stack: the
	// same generic front-end as ShardedDSS, instantiated with a LIFO
	// object.
	ShardedStack Impl = "sharded-stack"
	// CombinedDSS is the flat-combining detectable front of
	// internal/combine over the DSS queue: announcement slots plus a
	// combiner that drains a whole batch of persists under one fence.
	CombinedDSS Impl = "combined-dss"
	// ShardedCombined composes both extensions: a sharded front whose
	// shards are each a combining front — one combiner (lock) per shard.
	ShardedCombined Impl = "sharded+combined"
)

// Impls5a lists Figure 5a's series in the paper's legend order.
func Impls5a() []Impl { return []Impl{MSQueue, DSSNonDetectable, DSSDetectable} }

// Impls5b lists Figure 5b's series in the paper's legend order.
func Impls5b() []Impl {
	return []Impl{DSSDetectable, LogQueue, FastCASWithEffect, GeneralCASWith}
}

// AllImpls lists every configuration.
func AllImpls() []Impl {
	return []Impl{MSQueue, DSSNonDetectable, DSSDetectable, DurableQueue,
		LogQueue, FastCASWithEffect, GeneralCASWith, ShardedDSS,
		DSSStack, ShardedStack, CombinedDSS, ShardedCombined}
}

// Queue is the driver interface all configurations are adapted to.
type Queue interface {
	Enqueue(tid int, v uint64) error
	Dequeue(tid int) (uint64, bool)
}

// dssDetectable adapts the DSS queue's detectable path: every operation is
// a prep/exec pair, as in Figure 5a's "DSS queue detectable".
type dssDetectable struct{ q *core.Queue }

func (a dssDetectable) Enqueue(tid int, v uint64) error {
	if err := a.q.PrepEnqueue(tid, v); err != nil {
		return err
	}
	a.q.ExecEnqueue(tid)
	return nil
}

func (a dssDetectable) Dequeue(tid int) (uint64, bool) {
	a.q.PrepDequeue(tid)
	return a.q.ExecDequeue(tid)
}

// dssPlain adapts the DSS queue's non-detectable path.
type dssPlain struct{ q *core.Queue }

func (a dssPlain) Enqueue(tid int, v uint64) error { return a.q.Enqueue(tid, v) }
func (a dssPlain) Dequeue(tid int) (uint64, bool)  { return a.q.Dequeue(tid) }

// objDetectable adapts any dss.Object's detectable path: every driver
// operation is a prep/exec pair. Insert maps to the driver's Enqueue and
// Remove to its Dequeue regardless of the object's own vocabulary (for a
// stack they are push and pop).
type objDetectable struct{ obj dss.Object }

func (a objDetectable) Enqueue(tid int, v uint64) error {
	if err := a.obj.Prep(tid, dss.Op{Kind: dss.Insert, Arg: v}); err != nil {
		return err
	}
	_, err := a.obj.Exec(tid)
	return err
}

func (a objDetectable) Dequeue(tid int) (uint64, bool) {
	if err := a.obj.Prep(tid, dss.Op{Kind: dss.Remove}); err != nil {
		return 0, false
	}
	resp, err := a.obj.Exec(tid)
	if err != nil || resp.Kind != dss.Val {
		return 0, false
	}
	return resp.Val, true
}

// cweDetectable adapts a CASWithEffect queue's detectable path.
type cweDetectable struct{ q *cwe.Queue }

func (a cweDetectable) Enqueue(tid int, v uint64) error {
	if err := a.q.PrepEnqueue(tid, v); err != nil {
		return err
	}
	return a.q.ExecEnqueue(tid)
}

func (a cweDetectable) Dequeue(tid int) (uint64, bool) {
	a.q.PrepDequeue(tid)
	v, ok, err := a.q.ExecDequeue(tid)
	if err != nil {
		return 0, false
	}
	return v, ok
}

var (
	_ Queue = dssDetectable{}
	_ Queue = dssPlain{}
	_ Queue = cweDetectable{}
	_ Queue = objDetectable{}
)

// BuildConfig sizes a queue build.
type BuildConfig struct {
	Threads        int
	NodesPerThread int
	// FlushLatency is the simulated CLWB+SFENCE cost (Direct mode).
	FlushLatency time.Duration
	// AccessDelay is the per-memory-operation spin (pmem.Config.AccessDelay).
	AccessDelay int
	// Tracked builds the heap in Tracked (verification) mode instead of
	// Direct (benchmark) mode.
	Tracked bool
	// Shards is the shard count for ShardedDSS (default 8; ignored by
	// the unsharded configurations).
	Shards int
	// Obs, when non-nil, instruments the build: detectable configurations
	// are routed through their dss.Object adapters and wrapped with
	// dss.Observe (per-phase latencies, lifecycle events), and a sharded
	// front additionally feeds per-shard counters. Non-DSS configurations
	// (ms-queue, the recoverable ancestors, the non-detectable path) have
	// no phase vocabulary and are built unobserved. Nil costs nothing.
	Obs *obs.Sink
}

// Build constructs the named configuration on a fresh heap.
func Build(impl Impl, cfg BuildConfig) (Queue, *pmem.Heap, error) {
	if cfg.Threads <= 0 {
		return nil, nil, fmt.Errorf("harness: need at least one thread")
	}
	if cfg.NodesPerThread == 0 {
		cfg.NodesPerThread = 256
	}
	if cfg.Shards == 0 {
		cfg.Shards = 8
		if impl == ShardedCombined {
			// Each combined shard claims two root slots (combine meta +
			// its inner queue's), so the default 8 shards would overflow
			// the 16-slot root directory.
			cfg.Shards = 4
		}
	}
	mode := pmem.Direct
	if cfg.Tracked {
		mode = pmem.Tracked
	}
	words := 1<<14 + cfg.Threads*cfg.NodesPerThread*4*pmem.WordsPerLine +
		cfg.Threads*16*pmem.WordsPerLine
	if impl == ShardedDSS || impl == ShardedStack || impl == ShardedCombined {
		// Every shard builds a full per-thread pool of the per-shard node
		// budget; size the heap for the sum.
		words = 1<<14 + cfg.Shards*(cfg.Threads*(shardNodes(cfg.NodesPerThread, cfg.Shards)*4+16)*pmem.WordsPerLine)
	}
	h, err := pmem.New(pmem.Config{
		Words: words, Mode: mode,
		FlushLatency: cfg.FlushLatency, AccessDelay: cfg.AccessDelay,
	})
	if err != nil {
		return nil, nil, err
	}
	extra := cfg.Threads + 4
	switch impl {
	case MSQueue:
		q, err := queue.NewMS(h, cfg.Threads, cfg.NodesPerThread, extra)
		return q, h, err
	case DurableQueue:
		q, err := queue.NewDurable(h, 0, cfg.Threads, cfg.NodesPerThread, extra)
		return q, h, err
	case LogQueue:
		q, err := queue.NewLog(h, 0, cfg.Threads, cfg.NodesPerThread, extra)
		return q, h, err
	case DSSDetectable:
		if cfg.Obs != nil {
			// The dss adapter is step-for-step identical to the concrete
			// methods (see the dss package doc), so observing through it
			// measures the same execution the unobserved path runs.
			obj, err := dss.QueueType.New(h, 0, dss.Config{
				Threads: cfg.Threads, NodesPerThread: cfg.NodesPerThread, ExtraNodes: extra,
			})
			if err != nil {
				return nil, nil, err
			}
			return objDetectable{dss.Observe(obj, cfg.Obs, cfg.Threads)}, h, nil
		}
		q, err := core.New(h, 0, core.Config{Threads: cfg.Threads, NodesPerThread: cfg.NodesPerThread, ExtraNodes: extra})
		if err != nil {
			return nil, nil, err
		}
		return dssDetectable{q}, h, nil
	case DSSNonDetectable:
		q, err := core.New(h, 0, core.Config{Threads: cfg.Threads, NodesPerThread: cfg.NodesPerThread, ExtraNodes: extra})
		if err != nil {
			return nil, nil, err
		}
		return dssPlain{q}, h, nil
	case ShardedDSS, ShardedStack:
		typ := dss.QueueType
		if impl == ShardedStack {
			typ = dss.StackType
		}
		q, err := sharded.New(h, 0, typ, sharded.Config{
			Shards:         cfg.Shards,
			Threads:        cfg.Threads,
			NodesPerThread: shardNodes(cfg.NodesPerThread, cfg.Shards),
			ExtraNodes:     extra,
		})
		if err != nil {
			return nil, nil, err
		}
		if cfg.Obs != nil {
			q.SetObs(cfg.Obs)
			return objDetectable{dss.Observe(q, cfg.Obs, cfg.Threads)}, h, nil
		}
		return objDetectable{q}, h, nil
	case CombinedDSS:
		f, err := combine.New(h, 0, dss.QueueType, dss.Config{
			Threads: cfg.Threads, NodesPerThread: cfg.NodesPerThread, ExtraNodes: extra,
		})
		if err != nil {
			return nil, nil, err
		}
		if cfg.Obs != nil {
			f.SetObs(cfg.Obs)
			return objDetectable{dss.Observe(f, cfg.Obs, cfg.Threads)}, h, nil
		}
		return objDetectable{f}, h, nil
	case ShardedCombined:
		q, err := sharded.New(h, 0, combine.TypeOver(dss.QueueType), sharded.Config{
			Shards:         cfg.Shards,
			Threads:        cfg.Threads,
			NodesPerThread: shardNodes(cfg.NodesPerThread, cfg.Shards),
			ExtraNodes:     extra,
		})
		if err != nil {
			return nil, nil, err
		}
		if cfg.Obs != nil {
			q.SetObs(cfg.Obs)
			for i := 0; i < q.Shards(); i++ {
				if cf, ok := q.Shard(i).(*combine.Front); ok {
					cf.SetObs(cfg.Obs)
				}
			}
			return objDetectable{dss.Observe(q, cfg.Obs, cfg.Threads)}, h, nil
		}
		return objDetectable{q}, h, nil
	case DSSStack:
		s, err := dss.StackType.New(h, 0, dss.Config{
			Threads: cfg.Threads, NodesPerThread: cfg.NodesPerThread, ExtraNodes: extra,
		})
		if err != nil {
			return nil, nil, err
		}
		return objDetectable{dss.Observe(s, cfg.Obs, cfg.Threads)}, h, nil
	case FastCASWithEffect, GeneralCASWith:
		if cfg.Obs != nil {
			typ := dss.CWEFastType
			if impl == GeneralCASWith {
				typ = dss.CWEGeneralType
			}
			obj, err := typ.New(h, 0, dss.Config{
				Threads: cfg.Threads, NodesPerThread: cfg.NodesPerThread,
				ExtraNodes: extra, Descriptors: 16,
			})
			if err != nil {
				return nil, nil, err
			}
			return objDetectable{dss.Observe(obj, cfg.Obs, cfg.Threads)}, h, nil
		}
		q, err := cwe.New(h, 0, cwe.Config{
			Threads: cfg.Threads, NodesPerThread: cfg.NodesPerThread,
			ExtraNodes: extra, DescriptorsPerThread: 16,
			Fast: impl == FastCASWithEffect,
		})
		if err != nil {
			return nil, nil, err
		}
		return cweDetectable{q}, h, nil
	default:
		return nil, nil, fmt.Errorf("harness: unknown implementation %q", impl)
	}
}

// Point is one measurement: a thread count and its throughput.
type Point struct {
	Threads int
	// Mops is millions of operations (enqueues + dequeues) per second.
	Mops float64
	// Ops is the raw operation count.
	Ops uint64
	// Flushes counts simulated write-back (CLWB) instructions issued.
	Flushes uint64
	// Fences counts simulated drain (SFENCE) instructions issued; with
	// flush coalescing it can be lower than Flushes.
	Fences uint64
	// FencesElided counts fences absorbed by an open fence batch (the
	// flat-combining layer's amortization); zero outside combined runs.
	FencesElided uint64
}

// RunConfig parameterizes one throughput measurement.
type RunConfig struct {
	Impl     Impl
	Threads  int
	Duration time.Duration
	// InitialItems seeds the queue; the paper uses 16.
	InitialItems   int
	FlushLatency   time.Duration
	AccessDelay    int
	NodesPerThread int
}

// RunThroughput measures one configuration at one thread count, following
// Section 4: the queue is seeded with InitialItems nodes and every thread
// executes alternating enqueue/dequeue pairs for the duration.
func RunThroughput(cfg RunConfig) (Point, error) {
	if cfg.Duration <= 0 {
		cfg.Duration = 100 * time.Millisecond
	}
	if cfg.InitialItems == 0 {
		cfg.InitialItems = 16
	}
	q, h, err := Build(cfg.Impl, BuildConfig{
		Threads:        cfg.Threads,
		NodesPerThread: cfg.NodesPerThread,
		FlushLatency:   cfg.FlushLatency,
		AccessDelay:    cfg.AccessDelay,
	})
	if err != nil {
		return Point{}, err
	}
	for i := 0; i < cfg.InitialItems; i++ {
		if err := q.Enqueue(0, uint64(1000+i)); err != nil {
			return Point{}, fmt.Errorf("harness: seeding: %w", err)
		}
	}
	stats0 := h.Stats()

	var stop atomic.Bool
	counts := make([]uint64, cfg.Threads*8) // padded: one slot per thread, stride 8
	var wg sync.WaitGroup
	start := time.Now()
	for tid := 0; tid < cfg.Threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			var local uint64
			v := uint64(tid + 1)
			for !stop.Load() {
				if err := q.Enqueue(tid, v); err == nil {
					local++
				}
				q.Dequeue(tid)
				local++ // a dequeue (even EMPTY) is one operation
				v++
				if v >= 1<<50 {
					v = uint64(tid + 1)
				}
			}
			atomic.StoreUint64(&counts[tid*8], local)
		}(tid)
	}
	time.Sleep(cfg.Duration)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)

	var total uint64
	for tid := 0; tid < cfg.Threads; tid++ {
		total += atomic.LoadUint64(&counts[tid*8])
	}
	stats := h.Stats().Sub(stats0)
	return Point{
		Threads: cfg.Threads,
		Mops:    float64(total) / elapsed.Seconds() / 1e6,
		Ops:     total,
		Flushes: stats.Flushes,
		Fences:  stats.Fences,
	}, nil
}

// Series is one labeled curve of a figure.
type Series struct {
	Name   string
	Points []Point
}

// SweepConfig parameterizes a figure reproduction.
type SweepConfig struct {
	// Threads lists the x-axis values (the paper sweeps 1..20).
	Threads []int
	// Duration per measurement (the paper runs 30 s; scale down for CI).
	Duration time.Duration
	// Repeats averages several runs per point (the paper uses 10).
	Repeats int
	// FlushLatency models the Optane persistence cost.
	FlushLatency time.Duration
	// AccessDelay models the testbed's base memory-operation cost.
	AccessDelay int
}

func (c *SweepConfig) defaults() {
	if len(c.Threads) == 0 {
		c.Threads = []int{1, 2, 4, 8, 12, 16, 20}
	}
	if c.Duration <= 0 {
		c.Duration = 100 * time.Millisecond
	}
	if c.Repeats <= 0 {
		c.Repeats = 1
	}
	if c.FlushLatency == 0 {
		c.FlushLatency = 300 * time.Nanosecond
	}
	if c.AccessDelay == 0 {
		c.AccessDelay = 100
	}
}

// Sweep measures the given configurations over the thread range.
func Sweep(impls []Impl, cfg SweepConfig) ([]Series, error) {
	cfg.defaults()
	out := make([]Series, 0, len(impls))
	for _, impl := range impls {
		s := Series{Name: string(impl)}
		for _, th := range cfg.Threads {
			var acc Point
			for r := 0; r < cfg.Repeats; r++ {
				// Earlier points leave multi-megabyte dead heaps behind;
				// collect them now so GC pauses do not perturb this
				// measurement (significant on single-CPU hosts).
				runtime.GC()
				p, err := RunThroughput(RunConfig{
					Impl: impl, Threads: th,
					Duration:     cfg.Duration,
					FlushLatency: cfg.FlushLatency,
					AccessDelay:  cfg.AccessDelay,
				})
				if err != nil {
					return nil, fmt.Errorf("harness: %s @%d threads: %w", impl, th, err)
				}
				acc.Threads = p.Threads
				acc.Mops += p.Mops
				acc.Ops += p.Ops
				acc.Flushes += p.Flushes
				acc.Fences += p.Fences
			}
			acc.Mops /= float64(cfg.Repeats)
			s.Points = append(s.Points, acc)
		}
		out = append(out, s)
	}
	return out, nil
}

// Figure5a reproduces the paper's Figure 5a series (different levels of
// detectability and persistence).
func Figure5a(cfg SweepConfig) ([]Series, error) { return Sweep(Impls5a(), cfg) }

// Figure5b reproduces the paper's Figure 5b series (different detectable
// queue implementations).
func Figure5b(cfg SweepConfig) ([]Series, error) { return Sweep(Impls5b(), cfg) }

// FormatTable renders series as an aligned text table, threads down the
// rows and one Mops column per series — the textual form of a figure.
func FormatTable(series []Series) string {
	if len(series) == 0 {
		return ""
	}
	threadSet := map[int]bool{}
	for _, s := range series {
		for _, p := range s.Points {
			threadSet[p.Threads] = true
		}
	}
	threads := make([]int, 0, len(threadSet))
	for t := range threadSet {
		threads = append(threads, t)
	}
	sort.Ints(threads)

	var b strings.Builder
	fmt.Fprintf(&b, "%-8s", "threads")
	for _, s := range series {
		fmt.Fprintf(&b, "%22s", s.Name)
	}
	b.WriteString("\n")
	for _, t := range threads {
		fmt.Fprintf(&b, "%-8d", t)
		for _, s := range series {
			val := "-"
			for _, p := range s.Points {
				if p.Threads == t {
					val = fmt.Sprintf("%.3f", p.Mops)
				}
			}
			fmt.Fprintf(&b, "%22s", val)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// FormatCSV renders series as CSV (threads, series..., Mops each).
func FormatCSV(series []Series) string {
	var b strings.Builder
	b.WriteString("threads")
	for _, s := range series {
		fmt.Fprintf(&b, ",%s", s.Name)
	}
	b.WriteString("\n")
	if len(series) == 0 {
		return b.String()
	}
	for i, p := range series[0].Points {
		fmt.Fprintf(&b, "%d", p.Threads)
		for _, s := range series {
			if i < len(s.Points) {
				fmt.Fprintf(&b, ",%.4f", s.Points[i].Mops)
			} else {
				b.WriteString(",")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}
