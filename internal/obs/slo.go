package obs

import "fmt"

// Streaming SLO monitor: percentile windows over published snapshot
// deltas, rolling recovery-duration and time-down accounting per
// server, and threshold-based health verdicts. The tracker is fed
// abstract samples (state booleans + the latest decoded snapshot), so
// it has no dependency on the shared-memory layer — internal/livemon
// and the procharness supervisor adapt their segment reads into
// ServerSample and consume the verdicts.

// PhaseSLO is the percentile summary of one non-empty (phase, kind)
// histogram, computed with interpolated quantiles (Hist.Quantile).
type PhaseSLO struct {
	Phase string  `json:"phase"`
	Kind  string  `json:"kind"`
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
}

// WindowSLO summarizes every non-empty (phase, kind) histogram of a
// snapshot — typically a windowed delta from Snapshot.Sub, whose
// elementwise exactness makes the window percentiles exact for the
// interval. Order is enum order, so output is deterministic.
func WindowSLO(s Snapshot) []PhaseSLO {
	var out []PhaseSLO
	for p := Phase(0); p < NumPhases; p++ {
		for k := OpKind(0); k < NumOpKinds; k++ {
			h := s.Phases[p][k]
			if h.Count == 0 {
				continue
			}
			out = append(out, PhaseSLO{
				Phase: p.String(),
				Kind:  k.String(),
				Count: h.Count,
				Mean:  h.Mean(),
				P50:   h.Quantile(0.50),
				P99:   h.Quantile(0.99),
				P999:  h.Quantile(0.999),
			})
		}
	}
	return out
}

// Health is the per-server verdict of the SLO tracker.
type Health uint8

const (
	// HealthUnknown: no sample observed yet.
	HealthUnknown Health = iota
	// HealthHealthy: serving, heartbeat advancing, inside every SLO.
	HealthHealthy
	// HealthRecovering: in a recovery window still inside its SLO.
	HealthRecovering
	// HealthViolating: alive but outside an SLO — a recovery window
	// running past RecoveryMaxNS, or the windowed exec p99 past
	// ExecP99MaxNS. Distinguishable from a stall: the process is making
	// progress, just not fast enough.
	HealthViolating
	// HealthStalled: nominally serving but the heartbeat has been
	// frozen for longer than StallNS (the wedge-injection signature).
	HealthStalled
	// HealthDown: not serving and not in a recovery window (killed and
	// not yet respawned, or blacked out).
	HealthDown
	// HealthStopped: clean shutdown.
	HealthStopped
)

// String names the verdict for events and rendering.
func (h Health) String() string {
	switch h {
	case HealthHealthy:
		return "healthy"
	case HealthRecovering:
		return "recovering"
	case HealthViolating:
		return "violating"
	case HealthStalled:
		return "stalled"
	case HealthDown:
		return "down"
	case HealthStopped:
		return "stopped"
	default:
		return "unknown"
	}
}

// SLOConfig holds the verdict thresholds. Zero values disable the
// corresponding rule.
type SLOConfig struct {
	// RecoveryMaxNS: a recovery window running longer than this makes
	// the verdict HealthViolating instead of HealthRecovering.
	RecoveryMaxNS uint64
	// StallNS: a serving heartbeat frozen this long is HealthStalled.
	StallNS uint64
	// ExecP99MaxNS: a windowed exec-phase p99 above this (any op kind)
	// is HealthViolating even while serving.
	ExecP99MaxNS float64
}

// ServerSample is one observation of a server's shared status, taken by
// whatever clock the caller samples with (wall nanoseconds for live
// processes).
type ServerSample struct {
	// NowNS is the sampling clock.
	NowNS uint64
	// Serving/Recovering/Stopped decode the server's state word; all
	// false means init/attaching/killed (treated as down once seen
	// serving).
	Serving    bool
	Recovering bool
	Stopped    bool
	// StateSinceNS is the timestamp the server stored at its last state
	// transition (0 when unknown); it refines window edges between
	// samples.
	StateSinceNS uint64
	// Heartbeat and Ops are the server's progress words; Gen its
	// recovery generation.
	Heartbeat uint64
	Gen       uint64
	Ops       uint64
	// Snap is the latest published telemetry snapshot (nil when the
	// slot is empty or unchanged readers may pass the previous one).
	Snap *Snapshot
}

// HealthReport is the tracker's rolling verdict after one sample.
type HealthReport struct {
	Verdict Health
	// Reason is a short human-readable justification for non-healthy
	// verdicts ("" when healthy).
	Reason string
	// Gen/GenBumps track recovery generations observed.
	Gen      uint64
	GenBumps uint64
	// OpsPerSec is the serving rate over the last sampling interval.
	OpsPerSec float64
	// Window summarizes the most recent completed snapshot window.
	Window []PhaseSLO
	// Recovery accounting: completed windows, last/max durations, count
	// of windows that overran RecoveryMaxNS, and total non-serving time.
	Recoveries       uint64
	LastRecoveryNS   uint64
	MaxRecoveryNS    uint64
	RecoveryOverruns uint64
	TotalDownNS      uint64
}

// SLOTracker folds a stream of samples for one server into verdicts and
// rolling accounting. Not safe for concurrent use; one tracker per
// server per sampling loop.
type SLOTracker struct {
	cfg  SLOConfig
	init bool
	last ServerSample

	lastHB   uint64
	lastHBNS uint64

	prevSnap Snapshot
	havePrev bool
	window   []PhaseSLO

	downSince      uint64 // sampling-clock start of the current non-serving span (0 = serving)
	recoverStart   uint64 // sampling-clock start of the current recovery window (0 = none)
	overrunCounted bool   // current recovery window already counted as an overrun

	report HealthReport
}

// NewSLOTracker builds a tracker with the given thresholds.
func NewSLOTracker(cfg SLOConfig) *SLOTracker {
	return &SLOTracker{cfg: cfg}
}

// Report returns the last computed report (zero before any Observe).
func (t *SLOTracker) Report() HealthReport { return t.report }

// Observe folds one sample and returns the updated report.
func (t *SLOTracker) Observe(s ServerSample) HealthReport {
	if !t.init {
		t.init = true
		t.last = s
		t.lastHB, t.lastHBNS = s.Heartbeat, s.NowNS
		if !s.Serving && !s.Stopped {
			t.downSince = t.edge(s, s.NowNS)
		}
		if s.Recovering {
			t.recoverStart = t.edge(s, s.NowNS)
		}
		t.report.Gen = s.Gen
	}

	if s.Gen > t.last.Gen {
		t.report.GenBumps += s.Gen - t.last.Gen
	}
	if s.Heartbeat != t.lastHB {
		t.lastHB, t.lastHBNS = s.Heartbeat, s.NowNS
	}

	// Down-span accounting: a span opens when serving stops and closes
	// when it resumes (or the tracker observes a clean stop).
	wasUp := t.last.Serving || t.last.Stopped
	isUp := s.Serving || s.Stopped
	if wasUp && !isUp && t.downSince == 0 {
		t.downSince = t.edge(s, s.NowNS)
	}
	if !wasUp && isUp && t.downSince != 0 {
		end := t.edge(s, s.NowNS)
		t.report.TotalDownNS += satSub(end, t.downSince)
		t.downSince = 0
	}

	// Recovery-window accounting.
	if s.Recovering && t.recoverStart == 0 {
		t.recoverStart = t.edge(s, s.NowNS)
		t.overrunCounted = false
	}
	if !s.Recovering && t.recoverStart != 0 {
		end := t.edge(s, s.NowNS)
		dur := satSub(end, t.recoverStart)
		t.report.Recoveries++
		t.report.LastRecoveryNS = dur
		if dur > t.report.MaxRecoveryNS {
			t.report.MaxRecoveryNS = dur
		}
		if t.cfg.RecoveryMaxNS != 0 && dur > t.cfg.RecoveryMaxNS && !t.overrunCounted {
			t.report.RecoveryOverruns++
		}
		t.recoverStart = 0
		t.overrunCounted = false
	}

	// Serving rate over the sampling interval.
	if dt := satSub(s.NowNS, t.last.NowNS); dt > 0 && s.Ops >= t.last.Ops {
		t.report.OpsPerSec = float64(s.Ops-t.last.Ops) / (float64(dt) / 1e9)
	}

	// Percentile window from the newest published snapshot.
	if s.Snap != nil {
		if t.havePrev && s.Snap.Captured != t.prevSnap.Captured {
			t.window = WindowSLO(s.Snap.Sub(t.prevSnap))
		} else if !t.havePrev {
			t.window = WindowSLO(*s.Snap)
		}
		t.prevSnap, t.havePrev = *s.Snap, true
	}
	t.report.Window = t.window
	t.report.Gen = s.Gen

	t.report.Verdict, t.report.Reason = t.verdict(s)
	t.last = s
	return t.report
}

// edge picks the best estimate of when the state change behind sample s
// happened: the server's own transition timestamp when it falls inside
// the last sampling interval, else the sampling clock.
func (t *SLOTracker) edge(s ServerSample, now uint64) uint64 {
	if s.StateSinceNS != 0 && s.StateSinceNS <= now && s.StateSinceNS >= t.last.NowNS {
		return s.StateSinceNS
	}
	if now == 0 {
		return 1 // keep "no span open" (0) distinguishable
	}
	return now
}

func (t *SLOTracker) verdict(s ServerSample) (Health, string) {
	if s.Stopped {
		return HealthStopped, ""
	}
	if s.Recovering {
		if t.cfg.RecoveryMaxNS != 0 && t.recoverStart != 0 {
			if run := satSub(s.NowNS, t.recoverStart); run > t.cfg.RecoveryMaxNS {
				if !t.overrunCounted {
					t.report.RecoveryOverruns++
					t.overrunCounted = true
				}
				return HealthViolating, sprintNS("recovery running", run, "past SLO", t.cfg.RecoveryMaxNS)
			}
		}
		return HealthRecovering, ""
	}
	if !s.Serving {
		return HealthDown, "not serving"
	}
	if t.cfg.StallNS != 0 {
		if frozen := satSub(s.NowNS, t.lastHBNS); frozen > t.cfg.StallNS {
			return HealthStalled, sprintNS("heartbeat frozen", frozen, "past stall limit", t.cfg.StallNS)
		}
	}
	if t.cfg.ExecP99MaxNS > 0 {
		for _, w := range t.window {
			if w.Phase == "exec" && w.P99 > t.cfg.ExecP99MaxNS {
				return HealthViolating, sprintF("exec/"+w.Kind+" p99", w.P99, "past SLO", t.cfg.ExecP99MaxNS)
			}
		}
	}
	return HealthHealthy, ""
}

func sprintNS(what string, v uint64, rel string, lim uint64) string {
	return fmt.Sprintf("%s %.1fms %s %.1fms", what, float64(v)/1e6, rel, float64(lim)/1e6)
}

func sprintF(what string, v float64, rel string, lim float64) string {
	return fmt.Sprintf("%s %.1fms %s %.1fms", what, v/1e6, rel, lim/1e6)
}
