package obs

import "sort"

// TimelineSchema is the schema tag of a recovery-timeline document.
const TimelineSchema = "dss-timeline/1"

// TraceSource is one process's named event stream, usually a quiescent
// ring read (Sink.Events).
type TraceSource struct {
	// Name identifies the process ("server", "client-3", ...).
	Name string
	// Events is its trace, in that process's sequence order.
	Events []Event
}

// TimelineEvent is one merged, source-attributed event.
type TimelineEvent struct {
	// Time is the (shared) clock value the source stamped.
	Time uint64 `json:"time"`
	// Source names the contributing process.
	Source string `json:"source"`
	// Kind names the event kind.
	Kind string `json:"kind"`
	// TID is the source-local thread identity (-1 when none).
	TID int32 `json:"tid"`
	// Arg is the kind-specific argument.
	Arg uint64 `json:"arg"`
}

// RecoveryCycle is one crash-to-recovery episode of the serving process,
// with the client-side fallout attributed to it.
type RecoveryCycle struct {
	// Crash is the clock value of the crash event that opened the cycle.
	Crash uint64 `json:"crash"`
	// RecoverBegin/RecoverEnd bracket the centralized recovery procedure
	// (0 when the trace ends mid-cycle).
	RecoverBegin uint64 `json:"recover_begin"`
	RecoverEnd   uint64 `json:"recover_end"`
	// Gen is the serving generation installed by this recovery (0 when
	// unknown).
	Gen uint64 `json:"gen,omitempty"`
	// ClientDowns counts client round trips answered "down" while this
	// cycle was the open one.
	ClientDowns uint64 `json:"client_downs"`
	// ClientGenChanges counts clients that adopted this cycle's new
	// generation.
	ClientGenChanges uint64 `json:"client_gen_changes"`
}

// RecoveryTimeline is the merged cross-process reconstruction of a run's
// crash/recovery history.
type RecoveryTimeline struct {
	Schema string `json:"schema"`
	// Unit names the shared clock unit (see Export.Unit).
	Unit string `json:"unit"`
	// Crashes counts crash events; Recoveries counts completed
	// recoveries. They match exactly when no crash interrupted a
	// recovery and the trace is complete.
	Crashes    uint64 `json:"crashes"`
	Recoveries uint64 `json:"recoveries"`
	// Sources names the contributing processes, in merge order.
	Sources []string `json:"sources"`
	// EventCounts tallies the merged trace per event kind, so a trimmed
	// document still accounts for every event.
	EventCounts map[string]uint64 `json:"event_counts"`
	// Cycles lists the crash-to-recovery episodes in time order.
	Cycles []RecoveryCycle `json:"cycles"`
	// Events is the full merged trace in time order. Writers may nil it
	// before marshaling a compact document (EventCounts and Cycles carry
	// the accounting).
	Events []TimelineEvent `json:"events,omitempty"`
}

// Reconstruct merges the sources' traces into one recovery timeline. All
// sources must share one clock (the DES virtual clock in the soak); ties
// break by source order then per-source sequence, so the result is
// deterministic for deterministic inputs.
//
// Crash events open a cycle; recover begin/end events fill it (the end
// event's Arg, when nonzero, is recorded as the installed generation).
// Client EvDown events are attributed to the cycle open at their time,
// and EvGenChange events to the most recent cycle.
func Reconstruct(unit string, sources ...TraceSource) RecoveryTimeline {
	tl := RecoveryTimeline{
		Schema:      TimelineSchema,
		Unit:        unit,
		EventCounts: map[string]uint64{},
	}

	type tagged struct {
		ev  Event
		src int
	}
	var all []tagged
	for i, s := range sources {
		tl.Sources = append(tl.Sources, s.Name)
		for _, ev := range s.Events {
			all = append(all, tagged{ev: ev, src: i})
		}
	}
	sort.SliceStable(all, func(a, b int) bool {
		if all[a].ev.Time != all[b].ev.Time {
			return all[a].ev.Time < all[b].ev.Time
		}
		if all[a].src != all[b].src {
			return all[a].src < all[b].src
		}
		return all[a].ev.Seq < all[b].ev.Seq
	})

	open := -1 // index into tl.Cycles of the crash awaiting recovery
	for _, t := range all {
		ev := t.ev
		tl.EventCounts[ev.Kind.String()]++
		tl.Events = append(tl.Events, TimelineEvent{
			Time:   ev.Time,
			Source: sources[t.src].Name,
			Kind:   ev.Kind.String(),
			TID:    ev.TID,
			Arg:    ev.Arg,
		})
		switch ev.Kind {
		case EvCrash:
			tl.Crashes++
			tl.Cycles = append(tl.Cycles, RecoveryCycle{Crash: ev.Time})
			open = len(tl.Cycles) - 1
		case EvRecoverBegin:
			if open >= 0 {
				tl.Cycles[open].RecoverBegin = ev.Time
			}
		case EvRecoverEnd:
			if open >= 0 {
				tl.Cycles[open].RecoverEnd = ev.Time
				tl.Cycles[open].Gen = ev.Arg
				open = -1
			}
			tl.Recoveries++
		case EvDown:
			if open >= 0 {
				tl.Cycles[open].ClientDowns++
			}
		case EvGenChange:
			if n := len(tl.Cycles); n > 0 {
				tl.Cycles[n-1].ClientGenChanges++
			}
		}
	}
	return tl
}
