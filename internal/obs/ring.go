package obs

import "sync/atomic"

// EventKind classifies one lifecycle trace event.
type EventKind uint8

const (
	// EvOpStart marks a detectable operation's prep (op start). Arg is
	// the operation kind (OpKind).
	EvOpStart EventKind = iota + 1
	// EvOpExec marks the exec that applied (linearized) the operation.
	// Arg is the operation kind.
	EvOpExec
	// EvOpResolve marks a resolve. Arg is 1 when an operation was found.
	EvOpResolve
	// EvOpAbandon marks the withdrawal of a prepared operation.
	EvOpAbandon
	// EvCrash marks a (simulated) crash of the serving process.
	EvCrash
	// EvRecoverBegin marks the start of the centralized recovery
	// procedure.
	EvRecoverBegin
	// EvRecoverEnd marks its completion. Arg is the new serving
	// generation when the recorder knows it.
	EvRecoverEnd
	// EvRetry marks one backoff-then-retry round of a retry client.
	EvRetry
	// EvDown marks a round trip answered by a down server.
	EvDown
	// EvGenChange marks a client adopting a new server generation. Arg
	// is the adopted generation.
	EvGenChange
)

// String names the event kind for export.
func (k EventKind) String() string {
	switch k {
	case EvOpStart:
		return "op_start"
	case EvOpExec:
		return "op_exec"
	case EvOpResolve:
		return "op_resolve"
	case EvOpAbandon:
		return "op_abandon"
	case EvCrash:
		return "crash"
	case EvRecoverBegin:
		return "recover_begin"
	case EvRecoverEnd:
		return "recover_end"
	case EvRetry:
		return "retry"
	case EvDown:
		return "down"
	case EvGenChange:
		return "gen_change"
	default:
		return "event(?)"
	}
}

// Event is one decoded trace-ring entry.
type Event struct {
	// Seq is the event's global sequence number within its ring (1-based,
	// gap-free at append time; wraparound drops the oldest).
	Seq uint64
	// Time is the sink clock's value at append time.
	Time uint64
	// Kind classifies the event.
	Kind EventKind
	// TID is the recording process/thread identity (-1 when none).
	TID int32
	// Arg is the kind-specific argument.
	Arg uint64
}

// slotWords is the ring stride: seq, time, kind|tid, arg.
const slotWords = 4

// Ring is a fixed-size multi-producer lifecycle trace ring. Appends are
// wait-free: a producer claims a sequence number with one atomic add and
// writes its slot's words with atomic stores, so concurrent producers
// never race (each claimed slot is touched by one producer per lap).
//
// Reads are best-effort while producers run — a slot being overwritten on
// a later lap may decode torn — and exact once the ring is quiescent,
// which is when every consumer in this repository reads it (post-run
// snapshots, post-crash timelines).
type Ring struct {
	mask  uint64
	next  atomic.Uint64
	slots []uint64
}

// DefaultRingSize is the ring capacity used when Config.RingSize is 0.
const DefaultRingSize = 4096

// NewRing builds a ring holding size events (rounded up to a power of
// two, minimum 8).
func NewRing(size int) *Ring {
	if size <= 0 {
		size = DefaultRingSize
	}
	n := 8
	for n < size {
		n <<= 1
	}
	return &Ring{mask: uint64(n - 1), slots: make([]uint64, n*slotWords)}
}

// Cap reports the ring capacity in events.
func (r *Ring) Cap() int { return int(r.mask) + 1 }

// Append records one event. Safe for concurrent use.
func (r *Ring) Append(time uint64, k EventKind, tid int, arg uint64) {
	seq := r.next.Add(1)
	base := ((seq - 1) & r.mask) * slotWords
	atomic.StoreUint64(&r.slots[base+1], time)
	atomic.StoreUint64(&r.slots[base+2], uint64(k)<<32|uint64(uint32(int32(tid))))
	atomic.StoreUint64(&r.slots[base+3], arg)
	// The sequence word is written last so a quiescent reader never sees
	// a claimed-but-unwritten slot under this sequence number.
	atomic.StoreUint64(&r.slots[base], seq)
}

// Logged reports the total number of events ever appended.
func (r *Ring) Logged() uint64 { return r.next.Load() }

// Dropped reports how many appended events have been overwritten.
func (r *Ring) Dropped() uint64 {
	n := r.next.Load()
	if c := r.mask + 1; n > c {
		return n - c
	}
	return 0
}

// Events decodes the surviving events in ascending sequence order. Exact
// when the ring is quiescent; concurrent appends may tear the oldest
// entries (they are filtered by their stale sequence numbers where
// detectable).
func (r *Ring) Events() []Event {
	total := r.next.Load()
	if total == 0 {
		return nil
	}
	first := uint64(1)
	if c := r.mask + 1; total > c {
		first = total - c + 1
	}
	out := make([]Event, 0, total-first+1)
	for seq := first; seq <= total; seq++ {
		base := ((seq - 1) & r.mask) * slotWords
		if atomic.LoadUint64(&r.slots[base]) != seq {
			continue // still being written, or already lapped
		}
		mt := atomic.LoadUint64(&r.slots[base+2])
		out = append(out, Event{
			Seq:  seq,
			Time: atomic.LoadUint64(&r.slots[base+1]),
			Kind: EventKind(mt >> 32),
			TID:  int32(uint32(mt)),
			Arg:  atomic.LoadUint64(&r.slots[base+3]),
		})
	}
	return out
}
