package obs

import "testing"

func snapAt(captured uint64, execCount int) *Snapshot {
	var s Snapshot
	s.Captured = captured
	for i := 0; i < execCount; i++ {
		d := uint64(100 + i*10)
		s.Phases[PhaseExec][KindInsert].Count++
		s.Phases[PhaseExec][KindInsert].Sum += d
		s.Phases[PhaseExec][KindInsert].Buckets[bucketOf(d)]++
	}
	return &s
}

func TestWindowSLO(t *testing.T) {
	w := WindowSLO(*snapAt(1, 50))
	if len(w) != 1 {
		t.Fatalf("windows = %+v, want one exec/insert entry", w)
	}
	e := w[0]
	if e.Phase != "exec" || e.Kind != "insert" || e.Count != 50 {
		t.Fatalf("entry = %+v", e)
	}
	if !(e.P50 <= e.P99 && e.P99 <= e.P999) {
		t.Fatalf("quantiles not monotone: %+v", e)
	}
}

func TestSLOTrackerVerdicts(t *testing.T) {
	const ms = uint64(1e6)
	tr := NewSLOTracker(SLOConfig{RecoveryMaxNS: 10 * ms, StallNS: 50 * ms})

	serving := func(now, hb, gen, ops uint64, snap *Snapshot) ServerSample {
		return ServerSample{NowNS: now, Serving: true, Heartbeat: hb, Gen: gen, Ops: ops, Snap: snap}
	}

	r := tr.Observe(serving(0, 1, 1, 0, snapAt(0, 10)))
	if r.Verdict != HealthHealthy {
		t.Fatalf("initial verdict %v (%s)", r.Verdict, r.Reason)
	}

	// Heartbeat advancing: healthy; ops/s from the interval delta.
	r = tr.Observe(serving(1000*ms, 2, 1, 500, snapAt(1000*ms, 20)))
	if r.Verdict != HealthHealthy || r.OpsPerSec != 500 {
		t.Fatalf("steady state: %+v", r)
	}
	if len(r.Window) != 1 || r.Window[0].Count != 10 {
		t.Fatalf("window delta = %+v, want 10 new exec observations", r.Window)
	}

	// Heartbeat frozen past StallNS while still serving: stalled.
	r = tr.Observe(serving(1100*ms, 2, 1, 500, nil))
	if r.Verdict != HealthStalled {
		t.Fatalf("stall verdict %v (%s)", r.Verdict, r.Reason)
	}

	// Killed: down, and the down span accumulates.
	r = tr.Observe(ServerSample{NowNS: 1200 * ms, Gen: 1})
	if r.Verdict != HealthDown {
		t.Fatalf("down verdict %v", r.Verdict)
	}

	// Recovery inside SLO, then overrunning it.
	r = tr.Observe(ServerSample{NowNS: 1205 * ms, Recovering: true, Gen: 1})
	if r.Verdict != HealthRecovering {
		t.Fatalf("recovering verdict %v (%s)", r.Verdict, r.Reason)
	}
	r = tr.Observe(ServerSample{NowNS: 1230 * ms, Recovering: true, Gen: 1})
	if r.Verdict != HealthViolating || r.RecoveryOverruns != 1 {
		t.Fatalf("overrun verdict %v overruns=%d (%s)", r.Verdict, r.RecoveryOverruns, r.Reason)
	}

	// Back to serving with a bumped generation: recovery window closed,
	// duration recorded once, down time covers the whole dead span.
	r = tr.Observe(serving(1240*ms, 3, 2, 600, nil))
	if r.Verdict != HealthHealthy {
		t.Fatalf("post-recovery verdict %v (%s)", r.Verdict, r.Reason)
	}
	if r.Recoveries != 1 || r.RecoveryOverruns != 1 {
		t.Fatalf("recovery accounting: %+v", r)
	}
	if r.LastRecoveryNS != 35*ms || r.MaxRecoveryNS != 35*ms {
		t.Fatalf("recovery duration = %d, want %d", r.LastRecoveryNS, 35*ms)
	}
	if r.GenBumps != 1 || r.Gen != 2 {
		t.Fatalf("gen accounting: %+v", r)
	}
	if r.TotalDownNS != 40*ms {
		t.Fatalf("down time = %d, want %d", r.TotalDownNS, 40*ms)
	}

	// Clean stop.
	r = tr.Observe(ServerSample{NowNS: 1300 * ms, Stopped: true, Gen: 2})
	if r.Verdict != HealthStopped {
		t.Fatalf("stopped verdict %v", r.Verdict)
	}
}
