package obs

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestEventsNonQuiescentRing reads the trace ring while producers are
// mid-storm — the live monitor's situation, not the post-run one the
// Events contract is exact for. Every decoded event must still be
// internally consistent (a kind the producers wrote, a seq within the
// logged range, in strictly ascending order): torn slots may be
// skipped, never surfaced as garbage.
func TestEventsNonQuiescentRing(t *testing.T) {
	r := NewRing(64)
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := uint64(1); i <= 200 || !stop.Load(); i++ {
				r.Append(i, EvCrash, tid, i)
				r.Append(i, EvRecoverBegin, tid, i)
				r.Append(i, EvRecoverEnd, tid, i)
			}
		}(w)
	}
	for reads := 0; reads < 200; reads++ {
		evs := r.Events()
		logged := r.Logged()
		var prev uint64
		for _, ev := range evs {
			if ev.Seq <= prev || ev.Seq > logged+64 {
				t.Fatalf("seq order violated: %d after %d (logged %d)", ev.Seq, prev, logged)
			}
			prev = ev.Seq
			switch ev.Kind {
			case EvCrash, EvRecoverBegin, EvRecoverEnd:
			default:
				t.Fatalf("torn event surfaced: %+v", ev)
			}
			if ev.TID < 0 || ev.TID > 3 || ev.Arg == 0 {
				t.Fatalf("torn payload surfaced: %+v", ev)
			}
		}
	}
	stop.Store(true)
	wg.Wait()

	// Quiescent again: reconstruction over the surviving tail must
	// produce a well-formed timeline (crash/recover cycles from partial,
	// mid-storm traces — the head of each cycle may be lapped away).
	tl := Reconstruct("ns", TraceSource{Name: "server", Events: r.Events()})
	if tl.Schema != TimelineSchema {
		t.Fatalf("timeline schema %q", tl.Schema)
	}
	if tl.Crashes == 0 {
		t.Fatal("no crashes survived a full ring")
	}
	for _, c := range tl.Cycles {
		if c.RecoverEnd != 0 && c.RecoverBegin != 0 && c.RecoverEnd < c.RecoverBegin {
			t.Fatalf("cycle out of order: %+v", c)
		}
	}
}
