package obs

import "testing"

// ev builds a synthetic trace event (Seq is per-source order).
func ev(seq, time uint64, kind EventKind, arg uint64) Event {
	return Event{Seq: seq, Time: time, Kind: kind, TID: -1, Arg: arg}
}

// TestReconstructClusterLanesAndOverlap drives a hand-built two-server
// storm through the reconstruction: overlapping downtimes, a blackout
// window, a crash inside the other server's recovery window, and
// client fallout attributed per lane.
func TestReconstructClusterLanesAndOverlap(t *testing.T) {
	// Server 0: crash@10, recover 20..30; crash@50 (during server 1's
	// recovery), recover 55..60.
	srv0 := LaneSource{Server: 0, TraceSource: TraceSource{Name: "server-0", Events: []Event{
		ev(1, 10, EvCrash, 0),
		ev(2, 20, EvRecoverBegin, 0),
		ev(3, 30, EvRecoverEnd, 2),
		ev(4, 50, EvCrash, 0),
		ev(5, 55, EvRecoverBegin, 0),
		ev(6, 60, EvRecoverEnd, 3),
	}}}
	// Server 1: crash@15 (both down: blackout), recover 45..52.
	srv1 := LaneSource{Server: 1, TraceSource: TraceSource{Name: "server-1", Events: []Event{
		ev(1, 15, EvCrash, 0),
		ev(2, 45, EvRecoverBegin, 0),
		ev(3, 52, EvRecoverEnd, 2),
	}}}
	// One client, per-server streams: a down observed against each open
	// cycle and a generation adoption after each recovery.
	cli0 := LaneSource{Server: 0, TraceSource: TraceSource{Name: "client-0/server-0", Events: []Event{
		ev(1, 12, EvDown, 0),
		ev(2, 32, EvGenChange, 2),
	}}}
	cli1 := LaneSource{Server: 1, TraceSource: TraceSource{Name: "client-0/server-1", Events: []Event{
		ev(1, 16, EvDown, 0),
		ev(2, 17, EvDown, 0),
		ev(3, 53, EvGenChange, 2),
	}}}

	tl := ReconstructCluster("step", 2, srv0, srv1, cli0, cli1)

	if tl.Schema != ClusterTimelineSchema {
		t.Fatalf("schema %q", tl.Schema)
	}
	if tl.Servers != 2 || len(tl.Lanes) != 2 {
		t.Fatalf("servers %d lanes %d", tl.Servers, len(tl.Lanes))
	}
	if tl.Crashes != 3 || tl.Recoveries != 3 {
		t.Fatalf("crashes %d recoveries %d, want 3 and 3", tl.Crashes, tl.Recoveries)
	}
	// 10..30 server 0 down, 15..52 server 1 down: both down in 15..30.
	if tl.MaxConcurrentDown != 2 {
		t.Fatalf("MaxConcurrentDown = %d, want 2", tl.MaxConcurrentDown)
	}
	// ... and again in 50..52: server 0's second crash lands while
	// server 1 is still mid-recovery (down until its recover-end).
	if tl.AllDownWindows != 2 {
		t.Fatalf("AllDownWindows = %d, want 2", tl.AllDownWindows)
	}
	// Server 0's crash@50 lands inside server 1's recovery window 45..52.
	if tl.CrashesDuringRecovery != 1 {
		t.Fatalf("CrashesDuringRecovery = %d, want 1", tl.CrashesDuringRecovery)
	}

	l0, l1 := tl.Lanes[0], tl.Lanes[1]
	if l0.Crashes != 2 || l0.Recoveries != 2 || len(l0.Cycles) != 2 {
		t.Fatalf("lane 0: %+v", l0)
	}
	if l1.Crashes != 1 || l1.Recoveries != 1 || len(l1.Cycles) != 1 {
		t.Fatalf("lane 1: %+v", l1)
	}
	if c := l0.Cycles[0]; c.Crash != 10 || c.RecoverBegin != 20 || c.RecoverEnd != 30 || c.Gen != 2 {
		t.Fatalf("lane 0 cycle 0: %+v", c)
	}
	if c := l0.Cycles[0]; c.ClientDowns != 1 || c.ClientGenChanges != 1 {
		t.Fatalf("lane 0 cycle 0 client fallout: %+v", c)
	}
	if c := l1.Cycles[0]; c.ClientDowns != 2 || c.ClientGenChanges != 1 {
		t.Fatalf("lane 1 cycle 0 client fallout: %+v", c)
	}

	// The merged event order is deterministic and fully accounted.
	var n uint64
	for _, c := range tl.EventCounts {
		n += c
	}
	if int(n) != len(tl.Events) {
		t.Fatalf("event counts %d != merged events %d", n, len(tl.Events))
	}
	for i := 1; i < len(tl.Events); i++ {
		if tl.Events[i].Time < tl.Events[i-1].Time {
			t.Fatalf("merged events out of order at %d", i)
		}
	}
}

// TestReconstructClusterDeterministic: same inputs, byte-identical
// reconstruction (the soak pins its timeline artifact on this).
func TestReconstructClusterDeterministic(t *testing.T) {
	mk := func() ClusterTimeline {
		a := LaneSource{Server: 0, TraceSource: TraceSource{Name: "server-0", Events: []Event{
			ev(1, 5, EvCrash, 0), ev(2, 7, EvRecoverBegin, 0), ev(3, 9, EvRecoverEnd, 2),
		}}}
		b := LaneSource{Server: 1, TraceSource: TraceSource{Name: "server-1", Events: []Event{
			ev(1, 5, EvCrash, 0), ev(2, 6, EvRecoverBegin, 0), ev(3, 8, EvRecoverEnd, 2),
		}}}
		return ReconstructCluster("step", 2, a, b)
	}
	x, y := mk(), mk()
	if len(x.Events) != len(y.Events) {
		t.Fatalf("event counts differ")
	}
	for i := range x.Events {
		if x.Events[i] != y.Events[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, x.Events[i], y.Events[i])
		}
	}
	// Simultaneous crashes at t=5 on both lanes still count one blackout.
	if x.MaxConcurrentDown != 2 || x.AllDownWindows != 1 {
		t.Fatalf("overlap: %+v", x)
	}
}
