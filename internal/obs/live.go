package obs

// Live-snapshot wire form: a Snapshot flattened into a fixed number of
// uint64 words so it can be published through a shared-memory telemetry
// slot (internal/shm) with a single seqlock-guarded copy. The layout is
// positional and versioned only by EncodedSnapshotWords — the word
// count is part of the segment geometry, so a reader attached to a
// segment of a different build simply fails the length check instead of
// misdecoding.
//
// Word layout:
//
//	0                      Captured (sink clock at aggregation time)
//	1                      EventsLogged
//	2                      EventsDropped
//	3 .. 3+NumCounters-1   Counters, enum order
//	then, for each phase p (enum order), for each kind k (enum order):
//	  Count, Sum, Buckets[0..NumBuckets-1]
//
// PerShard counters are deliberately excluded: they are sized at attach
// time, and the live plane wants a fixed frame so a SIGKILLed publisher
// can be re-adopted without renegotiating geometry.

// EncodedSnapshotWords is the exact length of an encoded snapshot.
const EncodedSnapshotWords = 3 + int(NumCounters) + int(NumPhases)*int(NumOpKinds)*(2+NumBuckets)

// EncodeWords flattens the snapshot into dst, which must be at least
// EncodedSnapshotWords long, and returns the number of words written.
// The encoding allocates nothing and reads no clock — callers can use
// it on a hot publish path.
func (s *Snapshot) EncodeWords(dst []uint64) int {
	_ = dst[EncodedSnapshotWords-1]
	dst[0] = s.Captured
	dst[1] = s.EventsLogged
	dst[2] = s.EventsDropped
	w := 3
	for c := 0; c < int(NumCounters); c++ {
		dst[w] = s.Counters[c]
		w++
	}
	for p := 0; p < int(NumPhases); p++ {
		for k := 0; k < int(NumOpKinds); k++ {
			h := &s.Phases[p][k]
			dst[w] = h.Count
			dst[w+1] = h.Sum
			w += 2
			for b := 0; b < NumBuckets; b++ {
				dst[w] = h.Buckets[b]
				w++
			}
		}
	}
	return w
}

// DecodeSnapshotWords rebuilds a snapshot from its encoded form. It
// reports ok=false when src is shorter than EncodedSnapshotWords (a
// geometry mismatch between publisher and reader builds).
func DecodeSnapshotWords(src []uint64) (Snapshot, bool) {
	var s Snapshot
	if len(src) < EncodedSnapshotWords {
		return s, false
	}
	s.Captured = src[0]
	s.EventsLogged = src[1]
	s.EventsDropped = src[2]
	w := 3
	for c := 0; c < int(NumCounters); c++ {
		s.Counters[c] = src[w]
		w++
	}
	for p := 0; p < int(NumPhases); p++ {
		for k := 0; k < int(NumOpKinds); k++ {
			h := &s.Phases[p][k]
			h.Count = src[w]
			h.Sum = src[w+1]
			w += 2
			for b := 0; b < NumBuckets; b++ {
				h.Buckets[b] = src[w]
				w++
			}
		}
	}
	return s, true
}
