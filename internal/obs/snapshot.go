package obs

import (
	"fmt"
	"sort"
	"strings"
)

// Hist is one aggregated (phase, kind) latency histogram.
type Hist struct {
	// Count is the number of observations; Sum their total duration in
	// clock units.
	Count uint64
	Sum   uint64
	// Buckets[i] counts observations in log₂ bucket i (see BucketBound).
	Buckets [NumBuckets]uint64
}

// Mean is the average duration (0 when empty).
func (h Hist) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Quantile reports the q-quantile (q in [0, 1]) of the recorded
// durations, log-linearly interpolated inside the log₂ bucket that
// contains the target rank: bucket i spans (BucketBound(i-1),
// BucketBound(i)], and the rank's fractional position within the
// bucket's population interpolates between those bounds. The estimate
// is exact on bucket boundaries and monotone in q, so tail quantiles
// that share a bucket stay distinct (the raw bucket upper bound would
// collapse p99 and p999 to the same power of two).
func (h Hist) Quantile(q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	target := q * float64(h.Count)
	var cum float64
	for i, n := range h.Buckets {
		if n == 0 {
			continue
		}
		prev := cum
		cum += float64(n)
		if cum < target {
			continue
		}
		lo := float64(BucketBound(i - 1))
		hi := float64(BucketBound(i))
		if hi <= lo {
			return hi // bucket 0: the single value 0
		}
		frac := (target - prev) / float64(n)
		if frac < 0 {
			frac = 0
		}
		return lo + frac*(hi-lo)
	}
	return float64(BucketBound(NumBuckets - 1))
}

// Record adds one duration to the histogram — the aggregation-side
// counterpart of Sink.Observe, for histograms built outside a sink
// (e.g. percentiles over reconstructed recovery-outage windows).
func (h *Hist) Record(d uint64) {
	h.Count++
	h.Sum += d
	h.Buckets[bucketOf(d)]++
}

// sub subtracts elementwise (saturating at 0, so a snapshot pair taken
// around concurrent recording never underflows).
func (h Hist) sub(prev Hist) Hist {
	out := Hist{Count: satSub(h.Count, prev.Count), Sum: satSub(h.Sum, prev.Sum)}
	for i := range h.Buckets {
		out.Buckets[i] = satSub(h.Buckets[i], prev.Buckets[i])
	}
	return out
}

// add merges elementwise.
func (h Hist) add(o Hist) Hist {
	out := Hist{Count: h.Count + o.Count, Sum: h.Sum + o.Sum}
	for i := range h.Buckets {
		out.Buckets[i] = h.Buckets[i] + o.Buckets[i]
	}
	return out
}

func satSub(a, b uint64) uint64 {
	if a < b {
		return 0
	}
	return a - b
}

// Snapshot is a point-in-time aggregate of a Sink: plain arrays so delta
// (Sub) and merge (Add) are elementwise and the snapshot-vs-delta
// invariant — the sum of successive deltas equals the final snapshot —
// holds exactly.
type Snapshot struct {
	// Captured is the sink clock at aggregation time.
	Captured uint64
	// Counters holds the named counters, indexed by Counter.
	Counters [NumCounters]uint64
	// Phases holds the latency histograms, indexed by Phase and OpKind.
	Phases [NumPhases][NumOpKinds]Hist
	// PerShard holds the per-object-shard counters (nil when no sharded
	// front attached), indexed by shard and ShardCounter.
	PerShard [][NumShardCounters]uint64
	// EventsLogged and EventsDropped describe the trace ring.
	EventsLogged  uint64
	EventsDropped uint64
}

// Sub returns the delta accumulated between prev and s.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	out := Snapshot{
		Captured:      s.Captured,
		EventsLogged:  satSub(s.EventsLogged, prev.EventsLogged),
		EventsDropped: satSub(s.EventsDropped, prev.EventsDropped),
	}
	for c := range s.Counters {
		out.Counters[c] = satSub(s.Counters[c], prev.Counters[c])
	}
	for p := range s.Phases {
		for k := range s.Phases[p] {
			out.Phases[p][k] = s.Phases[p][k].sub(prev.Phases[p][k])
		}
	}
	if len(s.PerShard) > 0 {
		out.PerShard = make([][NumShardCounters]uint64, len(s.PerShard))
		for i := range s.PerShard {
			for c := 0; c < int(NumShardCounters); c++ {
				v := s.PerShard[i][c]
				if i < len(prev.PerShard) {
					v = satSub(v, prev.PerShard[i][c])
				}
				out.PerShard[i][c] = v
			}
		}
	}
	return out
}

// Add merges two snapshots (or deltas) elementwise — the cross-process
// aggregation used when several sinks observe one run.
func (s Snapshot) Add(o Snapshot) Snapshot {
	out := Snapshot{
		Captured:      s.Captured,
		EventsLogged:  s.EventsLogged + o.EventsLogged,
		EventsDropped: s.EventsDropped + o.EventsDropped,
	}
	if o.Captured > out.Captured {
		out.Captured = o.Captured
	}
	for c := range s.Counters {
		out.Counters[c] = s.Counters[c] + o.Counters[c]
	}
	for p := range s.Phases {
		for k := range s.Phases[p] {
			out.Phases[p][k] = s.Phases[p][k].add(o.Phases[p][k])
		}
	}
	n := len(s.PerShard)
	if len(o.PerShard) > n {
		n = len(o.PerShard)
	}
	if n > 0 {
		out.PerShard = make([][NumShardCounters]uint64, n)
		for i := 0; i < n; i++ {
			for c := 0; c < int(NumShardCounters); c++ {
				var v uint64
				if i < len(s.PerShard) {
					v += s.PerShard[i][c]
				}
				if i < len(o.PerShard) {
					v += o.PerShard[i][c]
				}
				out.PerShard[i][c] = v
			}
		}
	}
	return out
}

// ExportSchema is the schema tag of an exported snapshot document.
const ExportSchema = "dss-obs/1"

// Export is the stable JSON form of a Snapshot: names instead of enum
// indices, zero-count histograms omitted, bucket tails trimmed. Marshaled
// output is deterministic for a given snapshot (maps marshal with sorted
// keys; phase order is enum order).
type Export struct {
	Schema string `json:"schema"`
	// Unit names the clock unit of every duration and timestamp:
	// "ns" (wall), "steps" (Tracked-mode heap steps), or
	// "virtual_ns" (DES clock).
	Unit     string            `json:"unit"`
	Captured uint64            `json:"captured"`
	Counters map[string]uint64 `json:"counters"`
	Phases   []PhaseExport     `json:"phases"`
	// Shards holds the per-object-shard counters of a sharded front.
	Shards []map[string]uint64 `json:"shards,omitempty"`
	Events EventStats          `json:"events"`
}

// PhaseExport is one non-empty (phase, kind) histogram.
type PhaseExport struct {
	Phase string  `json:"phase"`
	Kind  string  `json:"kind"`
	Count uint64  `json:"count"`
	Sum   uint64  `json:"sum"`
	Mean  float64 `json:"mean"`
	// P50/P99/P999 are log-linearly interpolated within their log₂
	// bucket (see Hist.Quantile), so they are monotone and distinct
	// even when two quantiles land in the same bucket.
	P50  float64 `json:"p50"`
	P99  float64 `json:"p99"`
	P999 float64 `json:"p999"`
	// Buckets is the log₂ histogram with trailing zero buckets trimmed;
	// bucket i counts durations in (BucketBound(i-1), BucketBound(i)].
	Buckets []uint64 `json:"buckets"`
}

// EventStats describes the trace ring at export time.
type EventStats struct {
	Logged  uint64 `json:"logged"`
	Dropped uint64 `json:"dropped"`
}

// Export renders the snapshot in its stable JSON form; unit names the
// clock unit (see Export.Unit).
func (s Snapshot) Export(unit string) Export {
	e := Export{
		Schema:   ExportSchema,
		Unit:     unit,
		Captured: s.Captured,
		Counters: make(map[string]uint64, NumCounters),
		Events:   EventStats{Logged: s.EventsLogged, Dropped: s.EventsDropped},
	}
	for c := Counter(0); c < NumCounters; c++ {
		e.Counters[c.String()] = s.Counters[c]
	}
	for p := Phase(0); p < NumPhases; p++ {
		for k := OpKind(0); k < NumOpKinds; k++ {
			h := s.Phases[p][k]
			if h.Count == 0 {
				continue
			}
			last := 0
			for i, n := range h.Buckets {
				if n != 0 {
					last = i
				}
			}
			e.Phases = append(e.Phases, PhaseExport{
				Phase:   p.String(),
				Kind:    k.String(),
				Count:   h.Count,
				Sum:     h.Sum,
				Mean:    h.Mean(),
				P50:     h.Quantile(0.50),
				P99:     h.Quantile(0.99),
				P999:    h.Quantile(0.999),
				Buckets: append([]uint64(nil), h.Buckets[:last+1]...),
			})
		}
	}
	for i := range s.PerShard {
		m := make(map[string]uint64, NumShardCounters)
		for c := ShardCounter(0); c < NumShardCounters; c++ {
			m[c.String()] = s.PerShard[i][c]
		}
		e.Shards = append(e.Shards, m)
	}
	return e
}

// Validate checks an exported document's internal consistency: the
// schema tag, a known unit, bucket sums matching histogram counts, and
// bucket slices within resolution. It returns every problem found.
func (e Export) Validate() []string {
	var probs []string
	if e.Schema != ExportSchema {
		probs = append(probs, fmt.Sprintf("schema %q, want %q", e.Schema, ExportSchema))
	}
	switch e.Unit {
	case "ns", "steps", "virtual_ns":
	default:
		probs = append(probs, fmt.Sprintf("unknown unit %q", e.Unit))
	}
	if e.Counters == nil {
		probs = append(probs, "counters missing")
	}
	for _, ph := range e.Phases {
		if len(ph.Buckets) > NumBuckets {
			probs = append(probs, fmt.Sprintf("phase %s/%s: %d buckets exceed resolution %d", ph.Phase, ph.Kind, len(ph.Buckets), NumBuckets))
		}
		var sum uint64
		for _, n := range ph.Buckets {
			sum += n
		}
		if sum != ph.Count {
			probs = append(probs, fmt.Sprintf("phase %s/%s: bucket sum %d != count %d", ph.Phase, ph.Kind, sum, ph.Count))
		}
		if ph.Count == 0 {
			probs = append(probs, fmt.Sprintf("phase %s/%s: empty histogram exported", ph.Phase, ph.Kind))
		}
		if ph.P50 > ph.P99 || ph.P99 > ph.P999 {
			probs = append(probs, fmt.Sprintf("phase %s/%s: quantiles not monotone (p50 %.1f, p99 %.1f, p999 %.1f)", ph.Phase, ph.Kind, ph.P50, ph.P99, ph.P999))
		}
	}
	if e.Events.Dropped > e.Events.Logged {
		probs = append(probs, fmt.Sprintf("events: dropped %d > logged %d", e.Events.Dropped, e.Events.Logged))
	}
	return probs
}

// FormatTable renders the export as an aligned human-readable summary:
// the phase-latency table first, then non-zero counters and per-shard
// counters.
func (e Export) FormatTable() string {
	var b strings.Builder
	if len(e.Phases) > 0 {
		fmt.Fprintf(&b, "%-10s %-8s %12s %14s %12s %12s %12s\n", "phase", "kind", "count", "mean("+e.Unit+")", "p50", "p99", "p999")
		for _, ph := range e.Phases {
			fmt.Fprintf(&b, "%-10s %-8s %12d %14.1f %12.1f %12.1f %12.1f\n",
				ph.Phase, ph.Kind, ph.Count, ph.Mean, ph.P50, ph.P99, ph.P999)
		}
	}
	names := make([]string, 0, len(e.Counters))
	for name, v := range e.Counters {
		if v != 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) > 0 {
		b.WriteString("counters:\n")
		for _, name := range names {
			fmt.Fprintf(&b, "  %-20s %12d\n", name, e.Counters[name])
		}
	}
	for i, m := range e.Shards {
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(&b, "shard %d:", i)
		for _, k := range keys {
			fmt.Fprintf(&b, " %s=%d", k, m[k])
		}
		b.WriteString("\n")
	}
	if e.Events.Logged > 0 {
		fmt.Fprintf(&b, "events: %d logged, %d dropped by ring wraparound\n", e.Events.Logged, e.Events.Dropped)
	}
	return b.String()
}
