package obs

import "sort"

// ClusterTimelineSchema is the schema tag of a cluster recovery-timeline
// document: the per-server generalization of dss-timeline/1, with one
// crash→recover lane per shard-server and the cross-lane overlap metrics
// (how many servers were down at once, whether the whole cluster was
// ever dark, crashes landing inside another server's recovery window)
// that a single-server timeline cannot express.
const ClusterTimelineSchema = "dss-cluster-timeline/1"

// LaneSource is a TraceSource attributed to one server's lane: the
// server's own event stream, or a client's per-server stream (a cluster
// client talks to every server through a separate retry client, so its
// downs and generation adoptions are attributable to exactly one lane).
type LaneSource struct {
	// Server indexes the lane the source's events belong to.
	Server int
	TraceSource
}

// ClusterTimelineEvent is one merged, lane-attributed event.
type ClusterTimelineEvent struct {
	TimelineEvent
	// Server is the lane of the contributing source.
	Server int `json:"server"`
}

// ServerLane is one server's crash→recover history within the cluster.
type ServerLane struct {
	// Server is the lane index.
	Server int `json:"server"`
	// Crashes and Recoveries count this lane's events.
	Crashes    uint64 `json:"crashes"`
	Recoveries uint64 `json:"recoveries"`
	// Cycles lists the lane's crash-to-recovery episodes in time order,
	// with client downs and generation adoptions attributed per lane.
	Cycles []RecoveryCycle `json:"cycles"`
}

// ClusterTimeline is the merged cross-process reconstruction of a
// cluster run's per-server crash/recovery history.
type ClusterTimeline struct {
	Schema string `json:"schema"`
	// Unit names the shared clock unit.
	Unit string `json:"unit"`
	// Servers is the number of lanes.
	Servers int `json:"servers"`
	// Crashes and Recoveries total the lanes'.
	Crashes    uint64 `json:"crashes"`
	Recoveries uint64 `json:"recoveries"`
	// MaxConcurrentDown is the largest number of servers simultaneously
	// down (crashed and not yet recovered).
	MaxConcurrentDown int `json:"max_concurrent_down"`
	// AllDownWindows counts the windows during which EVERY server was
	// down at once — the cluster-wide blackouts.
	AllDownWindows int `json:"all_down_windows"`
	// CrashesDuringRecovery counts crashes that landed while another
	// server was inside its recovery window — the interleaving a
	// single-server storm can never produce.
	CrashesDuringRecovery uint64 `json:"crashes_during_recovery"`
	// Sources names the contributing processes, in merge order.
	Sources []string `json:"sources"`
	// EventCounts tallies the merged trace per event kind.
	EventCounts map[string]uint64 `json:"event_counts"`
	// Lanes holds the per-server reconstructions, indexed by server.
	Lanes []ServerLane `json:"lanes"`
	// Events is the full merged trace in time order. Writers may nil it
	// before marshaling a compact document.
	Events []ClusterTimelineEvent `json:"events,omitempty"`
}

// ReconstructCluster merges lane-attributed traces into one cluster
// timeline. All sources must share one clock; ties break by source order
// then per-source sequence, so the result is deterministic for
// deterministic inputs.
//
// Per lane, the cycle logic is Reconstruct's: a crash opens a cycle,
// recover begin/end fill it, client downs and generation adoptions are
// attributed to the lane's open (respectively most recent) cycle. Across
// lanes, a server counts as down from its crash event to its recover-end
// event, and as recovering between recover-begin and recover-end; the
// overlap metrics are computed over the merged order.
func ReconstructCluster(unit string, servers int, sources ...LaneSource) ClusterTimeline {
	tl := ClusterTimeline{
		Schema:      ClusterTimelineSchema,
		Unit:        unit,
		Servers:     servers,
		EventCounts: map[string]uint64{},
	}
	for s := 0; s < servers; s++ {
		tl.Lanes = append(tl.Lanes, ServerLane{Server: s})
	}

	type tagged struct {
		ev   Event
		src  int
		lane int
	}
	var all []tagged
	for i, s := range sources {
		tl.Sources = append(tl.Sources, s.Name)
		if s.Server < 0 || s.Server >= servers {
			continue
		}
		for _, ev := range s.Events {
			all = append(all, tagged{ev: ev, src: i, lane: s.Server})
		}
	}
	sort.SliceStable(all, func(a, b int) bool {
		if all[a].ev.Time != all[b].ev.Time {
			return all[a].ev.Time < all[b].ev.Time
		}
		if all[a].src != all[b].src {
			return all[a].src < all[b].src
		}
		return all[a].ev.Seq < all[b].ev.Seq
	})

	open := make([]int, servers) // per lane: index into its Cycles, -1 when none
	down := make([]bool, servers)
	recovering := make([]bool, servers)
	for s := range open {
		open[s] = -1
	}
	downCount, allDown := 0, false
	recoveringCount := 0

	for _, t := range all {
		ev := t.ev
		lane := &tl.Lanes[t.lane]
		tl.EventCounts[ev.Kind.String()]++
		tl.Events = append(tl.Events, ClusterTimelineEvent{
			TimelineEvent: TimelineEvent{
				Time:   ev.Time,
				Source: sources[t.src].Name,
				Kind:   ev.Kind.String(),
				TID:    ev.TID,
				Arg:    ev.Arg,
			},
			Server: t.lane,
		})
		switch ev.Kind {
		case EvCrash:
			lane.Crashes++
			tl.Crashes++
			lane.Cycles = append(lane.Cycles, RecoveryCycle{Crash: ev.Time})
			open[t.lane] = len(lane.Cycles) - 1
			if recoveringCount > 0 && !recovering[t.lane] ||
				recoveringCount > 1 && recovering[t.lane] {
				tl.CrashesDuringRecovery++
			}
			if recovering[t.lane] {
				// The lane's own interrupted recovery is over.
				recovering[t.lane] = false
				recoveringCount--
			}
			if !down[t.lane] {
				down[t.lane] = true
				downCount++
				if downCount > tl.MaxConcurrentDown {
					tl.MaxConcurrentDown = downCount
				}
				if downCount == servers && !allDown {
					allDown = true
					tl.AllDownWindows++
				}
			}
		case EvRecoverBegin:
			if i := open[t.lane]; i >= 0 {
				lane.Cycles[i].RecoverBegin = ev.Time
			}
			if !recovering[t.lane] {
				recovering[t.lane] = true
				recoveringCount++
			}
		case EvRecoverEnd:
			if i := open[t.lane]; i >= 0 {
				lane.Cycles[i].RecoverEnd = ev.Time
				lane.Cycles[i].Gen = ev.Arg
				open[t.lane] = -1
			}
			lane.Recoveries++
			tl.Recoveries++
			if recovering[t.lane] {
				recovering[t.lane] = false
				recoveringCount--
			}
			if down[t.lane] {
				down[t.lane] = false
				downCount--
				if downCount < servers {
					allDown = false
				}
			}
		case EvDown:
			if i := open[t.lane]; i >= 0 {
				lane.Cycles[i].ClientDowns++
			}
		case EvGenChange:
			if n := len(lane.Cycles); n > 0 {
				lane.Cycles[n-1].ClientGenChanges++
			}
		}
	}
	return tl
}
