package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"sync/atomic"
	"testing"
)

func TestBucketOf(t *testing.T) {
	cases := []struct {
		d    uint64
		want int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1023, 10}, {1024, 11},
		{1 << 62, NumBuckets - 1}, {^uint64(0), NumBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.d); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.d, got, c.want)
		}
	}
	// Every duration below the saturation point lands in the bucket whose
	// bound covers it and whose predecessor's doesn't.
	for d := uint64(0); d < 1<<16; d += 37 {
		b := bucketOf(d)
		if d > BucketBound(b) {
			t.Fatalf("d=%d above bound of its bucket %d (%d)", d, b, BucketBound(b))
		}
		if b > 0 && d <= BucketBound(b-1) {
			t.Fatalf("d=%d fits bucket %d already", d, b-1)
		}
	}
}

func TestNilSinkIsFree(t *testing.T) {
	var s *Sink
	if s.Enabled() {
		t.Fatal("nil sink reports enabled")
	}
	s.Observe(PhasePrep, KindInsert, 5)
	s.ObserveSince(PhaseExec, KindRemove, s.Now())
	s.Add(CtrRetries, 3)
	s.SetShards(4)
	s.ShardAdd(0, ShardPreps)
	s.Event(EvCrash, -1, 0)
	s.SetClock(func() uint64 { return 1 })
	if got := s.Events(); got != nil {
		t.Fatalf("nil sink Events = %v", got)
	}
	snap := s.Snapshot()
	if snap.Counters[CtrRetries] != 0 || snap.EventsLogged != 0 {
		t.Fatalf("nil sink snapshot not empty: %+v", snap)
	}
}

func TestRingWraparound(t *testing.T) {
	r := NewRing(8)
	if r.Cap() != 8 {
		t.Fatalf("cap = %d, want 8", r.Cap())
	}
	for i := 1; i <= 20; i++ {
		r.Append(uint64(100+i), EvRetry, i, uint64(i))
	}
	if r.Logged() != 20 {
		t.Fatalf("logged = %d, want 20", r.Logged())
	}
	if r.Dropped() != 12 {
		t.Fatalf("dropped = %d, want 12", r.Dropped())
	}
	evs := r.Events()
	if len(evs) != 8 {
		t.Fatalf("survivors = %d, want 8", len(evs))
	}
	for i, ev := range evs {
		wantSeq := uint64(13 + i)
		if ev.Seq != wantSeq || ev.Time != 100+wantSeq || ev.Arg != wantSeq || ev.TID != int32(wantSeq) {
			t.Fatalf("event %d = %+v, want seq %d", i, ev, wantSeq)
		}
		if ev.Kind != EvRetry {
			t.Fatalf("event %d kind = %v", i, ev.Kind)
		}
	}
}

func TestRingSizeRounding(t *testing.T) {
	if got := NewRing(0).Cap(); got != DefaultRingSize {
		t.Fatalf("default cap = %d", got)
	}
	if got := NewRing(3).Cap(); got != 8 {
		t.Fatalf("min cap = %d", got)
	}
	if got := NewRing(100).Cap(); got != 128 {
		t.Fatalf("rounded cap = %d", got)
	}
}

// TestConcurrentWriters exercises every recording path from many
// goroutines under -race, then checks the aggregate counts exactly.
func TestConcurrentWriters(t *testing.T) {
	var clock atomic.Uint64
	s := NewSink(Config{RingSize: 64, Clock: func() uint64 { return clock.Add(1) }})
	s.SetShards(4)

	const (
		writers = 8
		perW    = 1000
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				s.Observe(PhasePrep, KindInsert, uint64(i%7))
				s.ObserveSince(PhaseExec, KindRemove, s.Now())
				s.Add(CtrRetries, 1)
				s.ShardAdd(i%4, ShardPreps)
				s.Event(EvRetry, w, uint64(i))
			}
		}(w)
	}
	wg.Wait()

	snap := s.Snapshot()
	const total = writers * perW
	if got := snap.Phases[PhasePrep][KindInsert].Count; got != total {
		t.Errorf("prep count = %d, want %d", got, total)
	}
	if got := snap.Phases[PhaseExec][KindRemove].Count; got != total {
		t.Errorf("exec count = %d, want %d", got, total)
	}
	var bsum uint64
	for _, n := range snap.Phases[PhasePrep][KindInsert].Buckets {
		bsum += n
	}
	if bsum != total {
		t.Errorf("prep bucket sum = %d, want %d", bsum, total)
	}
	if got := snap.Counters[CtrRetries]; got != total {
		t.Errorf("retries = %d, want %d", got, total)
	}
	var shardSum uint64
	for _, sh := range snap.PerShard {
		shardSum += sh[ShardPreps]
	}
	if shardSum != total {
		t.Errorf("shard preps = %d, want %d", shardSum, total)
	}
	if snap.EventsLogged != total {
		t.Errorf("events logged = %d, want %d", snap.EventsLogged, total)
	}
	if want := uint64(total - 64); snap.EventsDropped != want {
		t.Errorf("events dropped = %d, want %d", snap.EventsDropped, want)
	}
	if got := len(s.Events()); got != 64 {
		t.Errorf("surviving events = %d, want 64", got)
	}
}

// TestSnapshotDeltaConsistency checks the property the harness relies on:
// the sum of successive deltas equals the final snapshot.
func TestSnapshotDeltaConsistency(t *testing.T) {
	var clock atomic.Uint64
	s := NewSink(Config{RingSize: 16, Clock: func() uint64 { return clock.Add(1) }})
	s.SetShards(2)

	record := func(n int) {
		for i := 0; i < n; i++ {
			s.Observe(Phase(i%int(NumPhases)), OpKind(i%int(NumOpKinds)), uint64(i))
			s.Add(Counter(i%int(NumCounters)), uint64(i))
			s.ShardAdd(i%2, ShardCounter(i%int(NumShardCounters)))
			s.Event(EvOpStart, i, 0)
		}
	}

	var prev Snapshot
	sum := Snapshot{}
	for round, n := range []int{17, 0, 63, 5} {
		record(n)
		cur := s.Snapshot()
		delta := cur.Sub(prev)
		sum = sum.Add(delta)
		prev = cur
		_ = round
	}
	final := s.Snapshot()
	sum = sum.Add(final.Sub(prev))

	sum.Captured = final.Captured // clocks aren't additive; everything else is
	a, err := json.Marshal(sum)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(final)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("sum of deltas != final snapshot\nsum:   %s\nfinal: %s", a, b)
	}
}

func TestExportDeterministicAndValid(t *testing.T) {
	s := NewSink(Config{RingSize: 8, Clock: func() uint64 { return 42 }})
	s.SetShards(2)
	s.Observe(PhasePrep, KindInsert, 3)
	s.Observe(PhasePrep, KindInsert, 100)
	s.Observe(PhaseRecover, KindNone, 1<<20)
	s.Add(CtrReplyCacheHits, 7)
	s.ShardAdd(1, ShardAbandons)
	s.Event(EvCrash, -1, 0)

	e := s.Snapshot().Export("steps")
	if probs := e.Validate(); len(probs) != 0 {
		t.Fatalf("export invalid: %v", probs)
	}
	a, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(s.Snapshot().Export("steps"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("export not deterministic:\n%s\n%s", a, b)
	}
	// Round-trips through JSON and still validates.
	var back Export
	if err := json.Unmarshal(a, &back); err != nil {
		t.Fatal(err)
	}
	if probs := back.Validate(); len(probs) != 0 {
		t.Fatalf("round-tripped export invalid: %v", probs)
	}
	if back.Counters["reply_cache_hits"] != 7 {
		t.Fatalf("counter lost in export: %v", back.Counters)
	}
	if len(back.Phases) != 2 {
		t.Fatalf("phases = %d, want 2 (zero histograms must be omitted)", len(back.Phases))
	}
	if back.Shards[1]["abandons"] != 1 {
		t.Fatalf("shard counter lost: %v", back.Shards)
	}
	if tbl := e.FormatTable(); tbl == "" {
		t.Fatal("empty table")
	}

	bad := e
	bad.Schema = "nope"
	bad.Unit = "furlongs"
	if probs := bad.Validate(); len(probs) < 2 {
		t.Fatalf("validator missed problems: %v", probs)
	}
}

func TestHistQuantile(t *testing.T) {
	var h Hist
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatal("empty hist not zero")
	}
	// 90 fast observations (bucket 1: d=1), 10 slow (bucket 11: d=1024).
	h.Count = 100
	h.Sum = 90*1 + 10*1024
	h.Buckets[bucketOf(1)] = 90
	h.Buckets[bucketOf(1024)] = 10
	// p50's rank (50) sits 5/9 of the way through the 90-observation
	// bucket (0, 1]: interpolated within the bucket, never above its
	// bound.
	if got := h.Quantile(0.50); got <= 0 || got > float64(BucketBound(bucketOf(1))) {
		t.Errorf("p50 = %v, want within bucket (0, %d]", got, BucketBound(bucketOf(1)))
	}
	// p99 and p999 both land in the slow bucket (511, 1023]; the
	// interpolation must keep them inside it, distinct, and ordered —
	// the raw bucket bound collapsed both to 1023.
	lo, hi := float64(BucketBound(bucketOf(1024)-1)), float64(BucketBound(bucketOf(1024)))
	p99, p999 := h.Quantile(0.99), h.Quantile(0.999)
	if p99 <= lo || p99 > hi || p999 <= lo || p999 > hi {
		t.Errorf("tail quantiles out of bucket: p99=%v p999=%v, want in (%v, %v]", p99, p999, lo, hi)
	}
	if !(p99 < p999) {
		t.Errorf("p99=%v not below p999=%v", p99, p999)
	}
	// Exact on a bucket boundary: rank q*Count equal to the cumulative
	// count through a bucket returns that bucket's upper bound.
	if got := h.Quantile(0.90); got != float64(BucketBound(bucketOf(1))) {
		t.Errorf("boundary quantile = %v, want %d", got, BucketBound(bucketOf(1)))
	}
	// Monotone in q across the whole range.
	prev := -1.0
	for q := 0.0; q <= 1.0; q += 0.01 {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantile not monotone at q=%v: %v < %v", q, v, prev)
		}
		prev = v
	}
	// q=1 is the max recorded bucket's bound.
	if got := h.Quantile(1.0); got != hi {
		t.Errorf("p100 = %v, want %v", got, hi)
	}
}

func TestSnapshotEncodeDecodeRoundTrip(t *testing.T) {
	s := NewSink(Config{RingSize: 16})
	s.Observe(PhasePrep, KindInsert, 3)
	s.Observe(PhaseExec, KindRemove, 700)
	s.Add(CtrRetries, 5)
	s.Event(EvCrash, -1, 0)
	snap := s.Snapshot()

	buf := make([]uint64, EncodedSnapshotWords)
	if n := snap.EncodeWords(buf); n != EncodedSnapshotWords {
		t.Fatalf("encoded %d words, want %d", n, EncodedSnapshotWords)
	}
	back, ok := DecodeSnapshotWords(buf)
	if !ok {
		t.Fatal("decode failed")
	}
	// PerShard is deliberately not carried by the live encoding.
	snap.PerShard = nil
	if back.Captured != snap.Captured || back.EventsLogged != snap.EventsLogged ||
		back.Counters != snap.Counters || back.Phases != snap.Phases {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", back, snap)
	}
	if _, ok := DecodeSnapshotWords(buf[:EncodedSnapshotWords-1]); ok {
		t.Fatal("short decode accepted")
	}
}

func TestReconstructTimeline(t *testing.T) {
	server := TraceSource{Name: "server", Events: []Event{
		{Seq: 1, Time: 10, Kind: EvCrash, TID: -1},
		{Seq: 2, Time: 14, Kind: EvRecoverBegin, TID: -1},
		{Seq: 3, Time: 18, Kind: EvRecoverEnd, TID: -1, Arg: 2},
		{Seq: 4, Time: 30, Kind: EvCrash, TID: -1},
		{Seq: 5, Time: 33, Kind: EvRecoverBegin, TID: -1},
		{Seq: 6, Time: 36, Kind: EvRecoverEnd, TID: -1, Arg: 3},
	}}
	client := TraceSource{Name: "client-0", Events: []Event{
		{Seq: 1, Time: 11, Kind: EvDown, TID: 0},
		{Seq: 2, Time: 16, Kind: EvDown, TID: 0},
		{Seq: 3, Time: 20, Kind: EvGenChange, TID: 0, Arg: 2},
		{Seq: 4, Time: 31, Kind: EvDown, TID: 0},
		{Seq: 5, Time: 40, Kind: EvGenChange, TID: 0, Arg: 3},
	}}

	tl := Reconstruct("virtual_ns", server, client)
	if tl.Schema != TimelineSchema || tl.Unit != "virtual_ns" {
		t.Fatalf("header: %+v", tl)
	}
	if tl.Crashes != 2 || tl.Recoveries != 2 {
		t.Fatalf("crashes=%d recoveries=%d, want 2/2", tl.Crashes, tl.Recoveries)
	}
	if len(tl.Cycles) != 2 {
		t.Fatalf("cycles = %d", len(tl.Cycles))
	}
	c0, c1 := tl.Cycles[0], tl.Cycles[1]
	if c0.Crash != 10 || c0.RecoverBegin != 14 || c0.RecoverEnd != 18 || c0.Gen != 2 {
		t.Fatalf("cycle 0 = %+v", c0)
	}
	if c0.ClientDowns != 2 || c0.ClientGenChanges != 1 {
		t.Fatalf("cycle 0 attribution = %+v", c0)
	}
	if c1.Crash != 30 || c1.Gen != 3 || c1.ClientDowns != 1 || c1.ClientGenChanges != 1 {
		t.Fatalf("cycle 1 = %+v", c1)
	}
	if len(tl.Events) != 11 {
		t.Fatalf("merged events = %d, want 11", len(tl.Events))
	}
	if tl.EventCounts["crash"] != 2 || tl.EventCounts["down"] != 3 || tl.EventCounts["gen_change"] != 2 {
		t.Fatalf("event counts = %v", tl.EventCounts)
	}
	for i := 1; i < len(tl.Events); i++ {
		if tl.Events[i].Time < tl.Events[i-1].Time {
			t.Fatalf("merged trace out of order at %d", i)
		}
	}
	// Deterministic for identical inputs.
	a, _ := json.Marshal(tl)
	b, _ := json.Marshal(Reconstruct("virtual_ns", server, client))
	if !bytes.Equal(a, b) {
		t.Fatal("timeline not deterministic")
	}
}

func TestEnumStrings(t *testing.T) {
	for p := Phase(0); p < NumPhases; p++ {
		if s := p.String(); s == "" || s == "phase(?)" {
			t.Errorf("phase %d unnamed", p)
		}
	}
	for k := OpKind(0); k < NumOpKinds; k++ {
		if s := k.String(); s == "" || s == "kind(?)" {
			t.Errorf("kind %d unnamed", k)
		}
	}
	for c := Counter(0); c < NumCounters; c++ {
		if s := c.String(); s == "" || s == "counter(?)" {
			t.Errorf("counter %d unnamed", c)
		}
	}
	for c := ShardCounter(0); c < NumShardCounters; c++ {
		if s := c.String(); s == "" || s == "shard_counter(?)" {
			t.Errorf("shard counter %d unnamed", c)
		}
	}
	for k := EvOpStart; k <= EvGenChange; k++ {
		if s := k.String(); s == "" || s == "event(?)" {
			t.Errorf("event kind %d unnamed", k)
		}
	}
}
