// Package obs is the repository's always-on observability substrate: it
// attributes detectability cost per DSS phase instead of reporting only
// end-to-end throughput, the attribution the paper's evaluation (Section
// 4, Figure 5) lacks and every later performance PR reports against.
//
// The package mirrors the decontention discipline of internal/pmem: all
// hot-path state is striped across cache-line-padded shards that each
// writer picks by a stack-address hash, and nothing is aggregated until a
// reader asks for a Snapshot. A Sink records three kinds of signal:
//
//   - log₂-bucketed latency histograms per DSS phase
//     (Prep/Exec/Resolve/Abandon/Recover) and per operation kind
//     (insert/remove), fed by Observe;
//   - named counters (reply-cache hits, generation-fence trips, retries,
//     ...) and per-object-shard counters (routed preps, scan retries,
//     abandons), fed by Add and ShardAdd;
//   - a fixed-size lifecycle trace ring of DSS events (op start, exec,
//     resolve, crash, recovery begin/end, retry, ...) with sequence
//     numbers and virtual-or-wall timestamps, fed by Event.
//
// Every recording method is safe on a nil *Sink and returns immediately,
// so instrumented code needs no branches of its own: a disabled layer
// simply carries a nil sink. The clock is pluggable — wall nanoseconds by
// default, a heap step counter under the virtual-time scheduler, the DES
// virtual clock in the soak — so the same histograms and rings work in
// every execution mode the repository has.
//
// Nothing in this package touches a pmem.Heap: recording draws no
// simulated memory steps, so instrumenting a Tracked-mode run perturbs
// neither its schedule nor its committed deterministic reports.
package obs

import (
	"sync/atomic"
	"time"
	"unsafe"
)

// Phase names one phase of a detectable operation's lifecycle, matching
// the dss.Object contract (the paper's Axioms 1-3 plus withdrawal and the
// centralized recovery procedure).
type Phase uint8

const (
	// PhasePrep is Axiom 1: declaring the detectable intent.
	PhasePrep Phase = iota
	// PhaseExec is Axiom 2: applying the prepared operation.
	PhaseExec
	// PhaseResolve is Axiom 3: reading (A[p], R[p]).
	PhaseResolve
	// PhaseAbandon is the withdrawal of a prepared-but-unexecuted op.
	PhaseAbandon
	// PhaseRecover is the centralized post-crash recovery procedure.
	PhaseRecover
	// PhaseCombine is the client-side wait of a flat-combined Exec: from
	// requesting combination of an announced op to observing its published
	// result (internal/combine).
	PhaseCombine
	// PhaseBatch records one combiner pass; its histogram value is the
	// batch size (ops combined under one drain), not a latency.
	PhaseBatch
	// NumPhases bounds the phase enum.
	NumPhases
)

// String names the phase for export and tables.
func (p Phase) String() string {
	switch p {
	case PhasePrep:
		return "prep"
	case PhaseExec:
		return "exec"
	case PhaseResolve:
		return "resolve"
	case PhaseAbandon:
		return "abandon"
	case PhaseRecover:
		return "recover"
	case PhaseCombine:
		return "combine"
	case PhaseBatch:
		return "batch"
	default:
		return "phase(?)"
	}
}

// OpKind classifies the operation a phase belongs to, in the container
// vocabulary of dss.Op (None covers phases with no operation attached:
// recovery, wire-level round trips).
type OpKind uint8

const (
	// KindNone is a phase not attributed to a specific operation.
	KindNone OpKind = iota
	// KindInsert is the value-carrying operation (enqueue, push).
	KindInsert
	// KindRemove is the value-returning operation (dequeue, pop).
	KindRemove
	// KindRead is the register read.
	KindRead
	// KindWrite is the register write.
	KindWrite
	// KindSwap is the register swap.
	KindSwap
	// KindCAS covers the compare-and-swap of both keyed types.
	KindCAS
	// KindPut is the map upsert.
	KindPut
	// KindGet is the map lookup.
	KindGet
	// KindDelete is the map removal.
	KindDelete
	// NumOpKinds bounds the kind enum.
	NumOpKinds
)

// String names the kind for export and tables.
func (k OpKind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindInsert:
		return "insert"
	case KindRemove:
		return "remove"
	case KindRead:
		return "read"
	case KindWrite:
		return "write"
	case KindSwap:
		return "swap"
	case KindCAS:
		return "cas"
	case KindPut:
		return "put"
	case KindGet:
		return "get"
	case KindDelete:
		return "delete"
	default:
		return "kind(?)"
	}
}

// Counter names one process-wide counter. The set is fixed so snapshots
// are plain arrays (delta and merge are elementwise) and the export names
// are stable.
type Counter uint8

const (
	// CtrReplyCacheHits counts duplicate requests answered from the
	// engine's at-most-once reply cache without re-execution.
	CtrReplyCacheHits Counter = iota
	// CtrReplyCacheMisses counts requests actually applied to the object
	// (first delivery of a sequenced request).
	CtrReplyCacheMisses
	// CtrGenFenceTrips counts requests rejected by the generation fence
	// (a message from before a crash arriving after it).
	CtrGenFenceTrips
	// CtrSuperseded counts delayed stragglers discarded because a newer
	// request from the same client was already applied.
	CtrSuperseded
	// CtrRetries counts backoff-then-retry rounds of retry clients.
	CtrRetries
	// CtrTimeouts counts round trips that ended in ErrTimeout.
	CtrTimeouts
	// CtrDowns counts round trips answered by a down server.
	CtrDowns
	// CtrGenChanges counts server generation changes clients observed
	// and survived.
	CtrGenChanges
	// CtrResolves counts resolve round trips sent to settle ambiguity.
	CtrResolves
	// CtrCombines counts combiner passes (batches drained under one
	// fence by internal/combine).
	CtrCombines
	// CtrCombinedOps counts operations executed inside combiner passes.
	CtrCombinedOps
	// NumCounters bounds the counter enum.
	NumCounters
)

// String names the counter for export.
func (c Counter) String() string {
	switch c {
	case CtrReplyCacheHits:
		return "reply_cache_hits"
	case CtrReplyCacheMisses:
		return "reply_cache_misses"
	case CtrGenFenceTrips:
		return "gen_fence_trips"
	case CtrSuperseded:
		return "superseded"
	case CtrRetries:
		return "retries"
	case CtrTimeouts:
		return "timeouts"
	case CtrDowns:
		return "downs"
	case CtrGenChanges:
		return "gen_changes"
	case CtrResolves:
		return "resolves"
	case CtrCombines:
		return "combines"
	case CtrCombinedOps:
		return "combined_ops"
	default:
		return "counter(?)"
	}
}

// ShardCounter names one per-object-shard counter of a sharded front.
type ShardCounter uint8

const (
	// ShardPreps counts detectable preps routed to the shard.
	ShardPreps ShardCounter = iota
	// ShardScanRetries counts remove-scan re-preps that moved an
	// operation onto the shard after a neighbour reported empty.
	ShardScanRetries
	// ShardAbandons counts stale preps withdrawn from the shard (eager
	// route moves and recovery-time cleanup alike).
	ShardAbandons
	// NumShardCounters bounds the shard-counter enum.
	NumShardCounters
)

// String names the shard counter for export.
func (c ShardCounter) String() string {
	switch c {
	case ShardPreps:
		return "preps"
	case ShardScanRetries:
		return "scan_retries"
	case ShardAbandons:
		return "abandons"
	default:
		return "shard_counter(?)"
	}
}

// NumBuckets is the histogram resolution: bucket i counts durations d
// with log₂(d) = i-1 (bucket 0 holds d = 0, the last bucket absorbs
// everything larger than 2^(NumBuckets-2)).
const NumBuckets = 32

// bucketOf maps a duration (in clock units) to its log₂ bucket.
func bucketOf(d uint64) int {
	b := 0
	for d != 0 {
		b++
		d >>= 1
	}
	if b >= NumBuckets {
		b = NumBuckets - 1
	}
	return b
}

// BucketBound reports the inclusive upper bound of bucket i in clock
// units (the last bucket is unbounded; its nominal bound is returned).
func BucketBound(i int) uint64 {
	if i <= 0 {
		return 0
	}
	return 1<<uint(i) - 1
}

// Stat-shard geometry, mirroring pmem's: recorders are striped across
// statShards shards so concurrent writers on distinct goroutines rarely
// share a counter cache line.
const (
	statShardBits = 4
	statShards    = 1 << statShardBits
)

// histShard is one stripe of one (phase, kind) histogram.
type histShard struct {
	count, sum atomic.Uint64
	buckets    [NumBuckets]atomic.Uint64
}

// statShard is one stripe of the counters and histograms, padded so
// adjacent shards never share a line even under adjacent-line prefetch.
type statShard struct {
	ctrs [NumCounters]atomic.Uint64
	hist [NumPhases][NumOpKinds]histShard
	_    [128]byte
}

// paddedShardCtrs holds one object shard's counters on its own line pair.
type paddedShardCtrs struct {
	ctrs [NumShardCounters]atomic.Uint64
	_    [128 - 8*NumShardCounters]byte
}

// Config parameterizes a Sink.
type Config struct {
	// RingSize is the lifecycle trace ring capacity in events, rounded up
	// to a power of two (default 4096).
	RingSize int
	// Clock supplies timestamps and latency endpoints. Nil selects wall
	// time: nanoseconds since the sink was created (monotonic).
	Clock func() uint64
}

// Sink is one process's observability sink. All recording methods are
// safe for concurrent use and safe (and free) on a nil receiver.
type Sink struct {
	clock  func() uint64
	ring   *Ring
	shards [statShards]statShard
	// perShard is sized by SetShards; nil until a sharded front attaches.
	perShard []paddedShardCtrs
}

// NewSink builds a sink with the given configuration.
func NewSink(cfg Config) *Sink {
	s := &Sink{ring: NewRing(cfg.RingSize)}
	if cfg.Clock != nil {
		s.clock = cfg.Clock
	} else {
		start := time.Now()
		s.clock = func() uint64 { return uint64(time.Since(start)) }
	}
	return s
}

// SetClock replaces the sink's clock (virtual-time harnesses). Install it
// only while the sink is quiescent.
func (s *Sink) SetClock(clock func() uint64) {
	if s == nil || clock == nil {
		return
	}
	s.clock = clock
}

// Enabled reports whether the sink records anything (false on nil).
func (s *Sink) Enabled() bool { return s != nil }

// Now reads the sink's clock (0 on a nil sink: the subtraction in
// ObserveSince then still lands in bucket 0 without branching).
func (s *Sink) Now() uint64 {
	if s == nil {
		return 0
	}
	return s.clock()
}

// stat picks this goroutine's stripe by hashing a stack slot address,
// exactly as pmem.Heap does: goroutine stacks are disjoint, so concurrent
// writers spread across stripes while a loop in one goroutine stays on
// its cache-hot stripe. Correctness never depends on the pick.
func (s *Sink) stat() *statShard {
	var slot byte
	p := uint64(uintptr(unsafe.Pointer(&slot)))
	return &s.shards[(p>>3)*0x9E3779B97F4A7C15>>(64-statShardBits)]
}

// Observe records one completed phase of duration d clock units.
func (s *Sink) Observe(p Phase, k OpKind, d uint64) {
	if s == nil {
		return
	}
	h := &s.stat().hist[p][k]
	h.count.Add(1)
	h.sum.Add(d)
	h.buckets[bucketOf(d)].Add(1)
}

// ObserveSince records one completed phase that began at start (a value
// previously read from Now).
func (s *Sink) ObserveSince(p Phase, k OpKind, start uint64) {
	if s == nil {
		return
	}
	now := s.clock()
	if now < start {
		now = start
	}
	s.Observe(p, k, now-start)
}

// Add increments a named counter by n.
func (s *Sink) Add(c Counter, n uint64) {
	if s == nil {
		return
	}
	s.stat().ctrs[c].Add(n)
}

// SetShards sizes the per-object-shard counter vectors. Call once at
// attach time, before operations; it is not synchronized with recording.
func (s *Sink) SetShards(n int) {
	if s == nil || n <= 0 || len(s.perShard) >= n {
		return
	}
	s.perShard = make([]paddedShardCtrs, n)
}

// ShardAdd increments counter c of object shard i. Out-of-range shards
// (no SetShards, or a foreign front) are ignored.
func (s *Sink) ShardAdd(i int, c ShardCounter) {
	if s == nil || i < 0 || i >= len(s.perShard) {
		return
	}
	s.perShard[i].ctrs[c].Add(1)
}

// Event appends one lifecycle event to the trace ring, stamped with the
// sink's clock.
func (s *Sink) Event(k EventKind, tid int, arg uint64) {
	if s == nil {
		return
	}
	s.ring.Append(s.clock(), k, tid, arg)
}

// Events returns the ring's surviving events in sequence order (see
// Ring.Events for the quiescence contract).
func (s *Sink) Events() []Event {
	if s == nil {
		return nil
	}
	return s.ring.Events()
}

// Snapshot aggregates the sink's counters and histograms across all
// stripes. Exact once the sink is quiescent; under concurrent recording
// it is a consistent lower bound per cell, like pmem.Heap.Stats.
func (s *Sink) Snapshot() Snapshot {
	var out Snapshot
	if s == nil {
		return out
	}
	out.Captured = s.clock()
	for i := range s.shards {
		sh := &s.shards[i]
		for c := 0; c < int(NumCounters); c++ {
			out.Counters[c] += sh.ctrs[c].Load()
		}
		for p := 0; p < int(NumPhases); p++ {
			for k := 0; k < int(NumOpKinds); k++ {
				h := &sh.hist[p][k]
				out.Phases[p][k].Count += h.count.Load()
				out.Phases[p][k].Sum += h.sum.Load()
				for b := 0; b < NumBuckets; b++ {
					out.Phases[p][k].Buckets[b] += h.buckets[b].Load()
				}
			}
		}
	}
	if len(s.perShard) > 0 {
		out.PerShard = make([][NumShardCounters]uint64, len(s.perShard))
		for i := range s.perShard {
			for c := 0; c < int(NumShardCounters); c++ {
				out.PerShard[i][c] = s.perShard[i].ctrs[c].Load()
			}
		}
	}
	out.EventsLogged = s.ring.Logged()
	out.EventsDropped = s.ring.Dropped()
	return out
}
