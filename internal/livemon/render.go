package livemon

import (
	"fmt"
	"strings"

	"repro/internal/obs"
)

// RenderTable renders one sampled Status as the refreshing top-like
// view `dssmon live` prints: servers, cumulative phase percentiles, a
// client progress summary, and the transition timeline tail.
func RenderTable(st Status) string {
	var b strings.Builder
	fmt.Fprintf(&b, "dss live · %d server(s) · %d client line(s)\n", len(st.Servers), len(st.Clients))

	fmt.Fprintf(&b, "%-8s %-11s %-11s %4s %6s %10s %9s %6s %10s %9s %9s\n",
		"server", "state", "verdict", "gen", "bumps", "ops", "ops/s", "recov", "last(ms)", "down(ms)", "hb")
	for _, sv := range st.Servers {
		fmt.Fprintf(&b, "%-8s %-11s %-11s %4d %6d %10d %9.0f %6d %10.1f %9.1f %9d\n",
			sv.Name, sv.State, sv.Verdict, sv.Gen, sv.GenBumps, sv.Ops, sv.OpsPerSec,
			sv.Recoveries, sv.LastRecoveryMS, sv.TotalDownMS, sv.Heartbeat)
		if sv.Reason != "" {
			fmt.Fprintf(&b, "         └ %s\n", sv.Reason)
		}
	}

	if len(st.Cumulative) > 0 {
		fmt.Fprintf(&b, "\n%-10s %-8s %10s %12s %12s %12s\n", "phase", "kind", "count", "p50(ns)", "p99(ns)", "p999(ns)")
		for _, p := range st.Cumulative {
			fmt.Fprintf(&b, "%-10s %-8s %10d %12.1f %12.1f %12.1f\n",
				p.Phase, p.Kind, p.Count, p.P50, p.P99, p.P999)
		}
	}

	var done, total int
	var ops uint64
	for _, c := range st.Clients {
		total++
		if c.Done {
			done++
		}
		ops += c.Ops
	}
	fmt.Fprintf(&b, "\nclients: %d/%d done, %d ops completed\n", done, total, ops)

	if n := len(st.Timeline); n > 0 {
		b.WriteString("timeline (tail):\n")
		first := 0
		if n > 12 {
			first = n - 12
		}
		for _, tr := range st.Timeline[first:] {
			from := tr.From
			if from == "" {
				from = "·"
			}
			fmt.Fprintf(&b, "  %-8s %s -> %s (gen %d)\n", tr.Server, from, tr.To, tr.Gen)
		}
	}
	return b.String()
}

// promEscape escapes a label value per the Prometheus text format.
func promEscape(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// RenderProm renders one sampled Status as Prometheus text exposition
// (version 0.0.4): per-server gauges and counters, and one native
// histogram family per (phase, kind) built from the merged telemetry's
// log₂ buckets.
func RenderProm(st Status) string {
	var b strings.Builder

	b.WriteString("# HELP dss_up Server state: 1 when serving, 0 otherwise.\n# TYPE dss_up gauge\n")
	for _, sv := range st.Servers {
		up := 0
		if sv.State == "serving" {
			up = 1
		}
		fmt.Fprintf(&b, "dss_up{server=%q,state=%q,verdict=%q} %d\n",
			promEscape(sv.Name), promEscape(sv.State), promEscape(sv.Verdict), up)
	}

	gauge := func(name, help string, get func(ServerStatus) float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
		for _, sv := range st.Servers {
			fmt.Fprintf(&b, "%s{server=%q} %g\n", name, promEscape(sv.Name), get(sv))
		}
	}
	counter := func(name, help string, get func(ServerStatus) float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		for _, sv := range st.Servers {
			fmt.Fprintf(&b, "%s{server=%q} %g\n", name, promEscape(sv.Name), get(sv))
		}
	}

	gauge("dss_generation", "Current serving generation.", func(s ServerStatus) float64 { return float64(s.Gen) })
	gauge("dss_ops_per_second", "Applied requests per second over the last sampling interval.", func(s ServerStatus) float64 { return s.OpsPerSec })
	counter("dss_ops_total", "Requests applied since segment creation.", func(s ServerStatus) float64 { return float64(s.Ops) })
	counter("dss_recoveries_total", "Completed recovery windows observed.", func(s ServerStatus) float64 { return float64(s.Recoveries) })
	counter("dss_recovery_overruns_total", "Recovery windows that overran the SLO.", func(s ServerStatus) float64 { return float64(s.RecoveryOverruns) })
	gauge("dss_last_recovery_seconds", "Duration of the last completed recovery window.", func(s ServerStatus) float64 { return s.LastRecoveryMS / 1e3 })
	counter("dss_down_seconds_total", "Total observed non-serving time.", func(s ServerStatus) float64 { return s.TotalDownMS / 1e3 })
	counter("dss_dirty_attaches_total", "Heap reopens that found the dirty-shutdown marker.", func(s ServerStatus) float64 { return float64(s.Dirty) })

	// Phase latency histograms from the merged telemetry: cumulative
	// `le` buckets per the exposition format, plus _sum and _count.
	if len(st.Cumulative) > 0 {
		const name = "dss_phase_duration"
		fmt.Fprintf(&b, "# HELP %s Phase latency histogram (clock units) from merged telemetry.\n# TYPE %s histogram\n", name, name)
		for p := obs.Phase(0); p < obs.NumPhases; p++ {
			for k := obs.OpKind(0); k < obs.NumOpKinds; k++ {
				h := st.Merged.Phases[p][k]
				if h.Count == 0 {
					continue
				}
				labels := fmt.Sprintf("phase=%q,kind=%q", p.String(), k.String())
				var cum uint64
				last := 0
				for i, n := range h.Buckets {
					if n != 0 {
						last = i
					}
				}
				for i := 0; i <= last; i++ {
					cum += h.Buckets[i]
					fmt.Fprintf(&b, "%s_bucket{%s,le=\"%d\"} %d\n", name, labels, obs.BucketBound(i), cum)
				}
				fmt.Fprintf(&b, "%s_bucket{%s,le=\"+Inf\"} %d\n", name, labels, h.Count)
				fmt.Fprintf(&b, "%s_sum{%s} %d\n", name, labels, h.Sum)
				fmt.Fprintf(&b, "%s_count{%s} %d\n", name, labels, h.Count)
			}
		}

		const qname = "dss_phase_latency_quantile"
		fmt.Fprintf(&b, "# HELP %s Interpolated phase latency quantiles (clock units).\n# TYPE %s gauge\n", qname, qname)
		for _, ph := range st.Cumulative {
			labels := fmt.Sprintf("phase=%q,kind=%q", ph.Phase, ph.Kind)
			fmt.Fprintf(&b, "%s{%s,quantile=\"0.5\"} %g\n", qname, labels, ph.P50)
			fmt.Fprintf(&b, "%s{%s,quantile=\"0.99\"} %g\n", qname, labels, ph.P99)
			fmt.Fprintf(&b, "%s{%s,quantile=\"0.999\"} %g\n", qname, labels, ph.P999)
		}
	}
	return b.String()
}
