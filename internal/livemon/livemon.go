// Package livemon is the read side of the live telemetry plane: it
// attaches to the shared-memory segments of a running (and crashing)
// multi-process deployment, samples status lines and seqlock-published
// telemetry slots, folds each server's stream through an obs.SLOTracker,
// and renders the result as a top-like table, Prometheus text
// exposition, or JSON.
//
// The monitor is strictly passive. It opens segments read-only
// (shm.OpenSegRO), so it can never perturb the deployment it watches:
// no status word is written, no ring is consumed, and a monitor killed
// mid-sample leaves nothing behind. Torn reads are impossible by the
// telemetry slots' seqlock discipline — a racing publish makes the
// sample fall back to the previous frame, never a mix.
package livemon

import (
	"fmt"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/obs"
	"repro/internal/shm"
)

// Schema tags the JSON form of a Status document.
const Schema = "dss-live/1"

// Config parameterizes a Monitor.
type Config struct {
	// SLO holds the per-server verdict thresholds (see obs.SLOConfig).
	// Zero values disable the corresponding rules.
	SLO obs.SLOConfig
	// TimelineCap bounds the retained transition tail (default 64).
	TimelineCap int
	// Now overrides the sampling clock (wall nanoseconds by default);
	// tests inject a deterministic clock here.
	Now func() uint64
}

// NamedSeg pairs a segment view with its display name.
type NamedSeg struct {
	Name string
	Seg  *shm.Seg
}

// server is the monitor's per-segment state.
type server struct {
	name    string
	seg     *shm.Seg
	owned   bool // close the segment on Monitor.Close
	tracker *obs.SLOTracker

	buf       []uint64
	snap      *obs.Snapshot // latest decoded server telemetry
	snapSeq   uint64
	clSnaps   []obs.Snapshot // latest decoded client telemetry
	clHave    []bool
	lastState uint64
	haveState bool
}

// Transition is one observed server state change.
type Transition struct {
	// NS is the sampling clock at observation (the server's own
	// SetStateAt edge is carried in the per-server status; this is when
	// the monitor saw it).
	NS     uint64 `json:"ns"`
	Server string `json:"server"`
	From   string `json:"from"`
	To     string `json:"to"`
	Gen    uint64 `json:"gen,omitempty"`
}

// Monitor samples one deployment. Not safe for concurrent use.
type Monitor struct {
	cfg      Config
	servers  []*server
	timeline []Transition
}

// Attach builds a monitor over already-opened segments (the in-process
// harness and tests; the segments stay owned by the caller).
func Attach(cfg Config, segs ...NamedSeg) *Monitor {
	m := newMonitor(cfg)
	for _, ns := range segs {
		m.addSeg(ns.Name, ns.Seg, false)
	}
	return m
}

// Open attaches read-only to every segment file (seg0, seg1, ...) in a
// storm's working directory — the `dssmon live` path against a running
// dssproc run.
func Open(dir string, cfg Config) (*Monitor, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "seg*"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	m := newMonitor(cfg)
	for _, p := range paths {
		seg, err := shm.OpenSegRO(p)
		if err != nil {
			m.Close()
			return nil, fmt.Errorf("livemon: attach %s: %w", p, err)
		}
		m.addSeg(filepath.Base(p), seg, true)
	}
	if len(m.servers) == 0 {
		return nil, fmt.Errorf("livemon: no segment files under %s", dir)
	}
	return m, nil
}

func newMonitor(cfg Config) *Monitor {
	if cfg.TimelineCap <= 0 {
		cfg.TimelineCap = 64
	}
	if cfg.Now == nil {
		cfg.Now = func() uint64 { return uint64(time.Now().UnixNano()) }
	}
	return &Monitor{cfg: cfg}
}

func (m *Monitor) addSeg(name string, seg *shm.Seg, owned bool) {
	sv := &server{
		name:    name,
		seg:     seg,
		owned:   owned,
		tracker: obs.NewSLOTracker(m.cfg.SLO),
		clSnaps: make([]obs.Snapshot, seg.Layout().Clients),
		clHave:  make([]bool, seg.Layout().Clients),
	}
	if seg.HasTelemetry() {
		sv.buf = make([]uint64, seg.TelemWords())
	}
	m.servers = append(m.servers, sv)
}

// Close releases the segments the monitor opened itself.
func (m *Monitor) Close() error {
	var first error
	for _, sv := range m.servers {
		if sv.owned {
			if err := sv.seg.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// ServerStatus is one server's sampled state.
type ServerStatus struct {
	Name    string `json:"name"`
	State   string `json:"state"`
	Verdict string `json:"verdict"`
	Reason  string `json:"reason,omitempty"`

	Gen       uint64  `json:"gen"`
	GenBumps  uint64  `json:"gen_bumps"`
	Heartbeat uint64  `json:"heartbeat"`
	Ops       uint64  `json:"ops"`
	OpsPerSec float64 `json:"ops_per_sec"`
	PID       int     `json:"pid"`
	Dirty     uint64  `json:"dirty_attaches"`

	Recoveries       uint64  `json:"recoveries"`
	RecoveryOverruns uint64  `json:"recovery_overruns"`
	LastRecoveryMS   float64 `json:"last_recovery_ms"`
	MaxRecoveryMS    float64 `json:"max_recovery_ms"`
	TotalDownMS      float64 `json:"total_down_ms"`

	// Window is the latest completed telemetry window's percentiles.
	Window []obs.PhaseSLO `json:"window,omitempty"`
	// TelemetryFrames is the latest adopted telemetry frame ordinal (0
	// when the segment has no telemetry or nothing published yet).
	TelemetryFrames uint64 `json:"telemetry_frames"`
}

// ClientStatus is one client line's sampled state.
type ClientStatus struct {
	Server string `json:"server"`
	ID     int    `json:"id"`
	Ops    uint64 `json:"ops"`
	Done   bool   `json:"done"`
	PID    int    `json:"pid"`
}

// Status is one sampling pass over the whole deployment.
type Status struct {
	Schema  string         `json:"schema"`
	NowNS   uint64         `json:"now_ns"`
	Servers []ServerStatus `json:"servers"`
	Clients []ClientStatus `json:"clients"`
	// Cumulative is the percentile summary of the merged telemetry of
	// every process slot (servers + clients), since process start.
	Cumulative []obs.PhaseSLO `json:"cumulative,omitempty"`
	// Timeline is the retained tail of observed state transitions.
	Timeline []Transition `json:"timeline,omitempty"`

	// Merged is the raw merged snapshot behind Cumulative, retained for
	// renderers that need full histograms (Prometheus buckets); omitted
	// from JSON.
	Merged obs.Snapshot `json:"-"`
}

// stateName decodes a shm server state word.
func stateName(v uint64) string {
	switch v {
	case shm.StateInit:
		return "init"
	case shm.StateAttaching:
		return "attaching"
	case shm.StateRecovering:
		return "recovering"
	case shm.StateServing:
		return "serving"
	case shm.StateStopped:
		return "stopped"
	default:
		return fmt.Sprintf("state(%d)", v)
	}
}

// Sample performs one sampling pass: status lines, telemetry slots, SLO
// trackers, and the transition timeline.
func (m *Monitor) Sample() Status {
	now := m.cfg.Now()
	st := Status{Schema: Schema, NowNS: now}
	var merged obs.Snapshot
	var any bool

	for _, sv := range m.servers {
		line := sv.seg.Server()
		state := line.State()
		gen := line.Gen()

		if sv.haveState && state != sv.lastState {
			m.pushTransition(Transition{
				NS: now, Server: sv.name,
				From: stateName(sv.lastState), To: stateName(state), Gen: gen,
			})
		} else if !sv.haveState {
			m.pushTransition(Transition{NS: now, Server: sv.name, From: "", To: stateName(state), Gen: gen})
		}
		sv.lastState, sv.haveState = state, true

		if sv.buf != nil {
			if seq, ok := sv.seg.ServerTelemetry().Read(sv.buf); ok && seq != sv.snapSeq {
				if snap, ok := obs.DecodeSnapshotWords(sv.buf); ok {
					sv.snap = &snap
					sv.snapSeq = seq
				}
			}
			for i := 0; i < sv.seg.Layout().Clients; i++ {
				if _, ok := sv.seg.ClientTelemetry(i).Read(sv.buf); ok {
					if snap, ok := obs.DecodeSnapshotWords(sv.buf); ok {
						sv.clSnaps[i] = snap
						sv.clHave[i] = true
					}
				}
			}
		}

		rep := sv.tracker.Observe(obs.ServerSample{
			NowNS:        now,
			Serving:      state == shm.StateServing,
			Recovering:   state == shm.StateRecovering,
			Stopped:      state == shm.StateStopped,
			StateSinceNS: line.StateChangedNS(),
			Heartbeat:    line.Heartbeat(),
			Gen:          gen,
			Ops:          line.Ops(),
			Snap:         sv.snap,
		})

		st.Servers = append(st.Servers, ServerStatus{
			Name:             sv.name,
			State:            stateName(state),
			Verdict:          rep.Verdict.String(),
			Reason:           rep.Reason,
			Gen:              gen,
			GenBumps:         rep.GenBumps,
			Heartbeat:        line.Heartbeat(),
			Ops:              line.Ops(),
			OpsPerSec:        rep.OpsPerSec,
			PID:              line.PID(),
			Dirty:            line.Dirty(),
			Recoveries:       rep.Recoveries,
			RecoveryOverruns: rep.RecoveryOverruns,
			LastRecoveryMS:   float64(rep.LastRecoveryNS) / 1e6,
			MaxRecoveryMS:    float64(rep.MaxRecoveryNS) / 1e6,
			TotalDownMS:      float64(rep.TotalDownNS) / 1e6,
			Window:           rep.Window,
			TelemetryFrames:  sv.snapSeq,
		})

		for i := 0; i < sv.seg.Layout().Clients; i++ {
			cl := sv.seg.Client(i)
			st.Clients = append(st.Clients, ClientStatus{
				Server: sv.name, ID: i,
				Ops: cl.Ops(), Done: cl.Done(), PID: cl.PID(),
			})
		}

		if sv.snap != nil {
			merged = merged.Add(*sv.snap)
			any = true
		}
		for i, have := range sv.clHave {
			if have {
				merged = merged.Add(sv.clSnaps[i])
				any = true
			}
		}
	}

	if any {
		st.Merged = merged
		st.Cumulative = obs.WindowSLO(merged)
	}
	st.Timeline = append([]Transition(nil), m.timeline...)
	return st
}

func (m *Monitor) pushTransition(tr Transition) {
	m.timeline = append(m.timeline, tr)
	if n := len(m.timeline); n > m.cfg.TimelineCap {
		m.timeline = m.timeline[n-m.cfg.TimelineCap:]
	}
}
