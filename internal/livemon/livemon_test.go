package livemon

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/shm"
)

// fakeDeployment drives a MemSeg the way a server process would, so the
// monitor can be tested deterministically in-process.
type fakeDeployment struct {
	seg   *shm.Seg
	sink  *obs.Sink
	pub   *shm.TelemetryPublisher
	buf   []uint64
	nowNS uint64
}

func newFakeDeployment() *fakeDeployment {
	seg := shm.NewMemSeg(shm.Layout{
		Clients: 2, Slots: 4, SlotWords: shm.FrameSlotWords,
		TelemWords: obs.EncodedSnapshotWords,
	})
	return &fakeDeployment{
		seg:  seg,
		sink: obs.NewSink(obs.Config{RingSize: 64}),
		pub:  seg.ServerTelemetry().Publisher(),
		buf:  make([]uint64, obs.EncodedSnapshotWords),
	}
}

func (f *fakeDeployment) publish() {
	snap := f.sink.Snapshot()
	snap.Captured = f.nowNS
	snap.EncodeWords(f.buf)
	f.pub.Publish(f.buf)
}

func TestMonitorSampleLifecycle(t *testing.T) {
	f := newFakeDeployment()
	mon := Attach(Config{
		SLO: obs.SLOConfig{RecoveryMaxNS: 50e6, StallNS: 400e6},
		Now: func() uint64 { return f.nowNS },
	}, NamedSeg{Name: "seg0", Seg: f.seg})
	defer mon.Close()

	sv := f.seg.Server()
	sv.SetPID(4242)
	sv.SetStateAt(shm.StateServing, 1)
	sv.SetGen(1)
	sv.Beat()
	f.sink.Observe(obs.PhaseExec, obs.KindInsert, 300)
	f.sink.Observe(obs.PhasePrep, obs.KindInsert, 40)
	f.publish()
	f.seg.Client(0).SetOps(7)
	f.seg.Client(1).SetDone()

	f.nowNS = 10e6
	st := mon.Sample()
	if len(st.Servers) != 1 || len(st.Clients) != 2 {
		t.Fatalf("shape: %d servers %d clients", len(st.Servers), len(st.Clients))
	}
	s0 := st.Servers[0]
	if s0.State != "serving" || s0.Verdict != "healthy" || s0.Gen != 1 || s0.PID != 4242 {
		t.Fatalf("server status: %+v", s0)
	}
	if s0.TelemetryFrames != 1 {
		t.Fatalf("telemetry frames = %d", s0.TelemetryFrames)
	}
	if len(st.Cumulative) != 2 {
		t.Fatalf("cumulative phases: %+v", st.Cumulative)
	}
	if st.Clients[0].Ops != 7 || !st.Clients[1].Done {
		t.Fatalf("clients: %+v", st.Clients)
	}

	// Crash: state goes back to init (killed), then recovering past the
	// SLO, then serving at gen 2. The monitor must see the transitions,
	// the verdict walk, and the recovery accounting.
	f.nowNS = 20e6
	sv.SetStateAt(shm.StateInit, f.nowNS)
	if st = mon.Sample(); st.Servers[0].Verdict != "down" {
		t.Fatalf("killed verdict: %+v", st.Servers[0])
	}

	f.nowNS = 30e6
	sv.SetStateAt(shm.StateRecovering, f.nowNS)
	if st = mon.Sample(); st.Servers[0].Verdict != "recovering" {
		t.Fatalf("recovering verdict: %+v", st.Servers[0])
	}

	f.nowNS = 100e6 // 70ms into a 50ms-SLO recovery window
	if st = mon.Sample(); st.Servers[0].Verdict != "violating" {
		t.Fatalf("overrun verdict: %+v", st.Servers[0])
	}

	f.nowNS = 110e6
	sv.SetStateAt(shm.StateServing, f.nowNS)
	sv.SetGen(2)
	sv.Beat()
	f.sink.Observe(obs.PhaseExec, obs.KindInsert, 900)
	f.publish()
	st = mon.Sample()
	s0 = st.Servers[0]
	if s0.Verdict != "healthy" || s0.Gen != 2 || s0.GenBumps != 1 {
		t.Fatalf("post-recovery: %+v", s0)
	}
	if s0.Recoveries != 1 || s0.RecoveryOverruns != 1 || s0.LastRecoveryMS != 80 {
		t.Fatalf("recovery accounting: %+v", s0)
	}
	if s0.TotalDownMS != 90 {
		t.Fatalf("down accounting: %+v", s0)
	}
	if s0.TelemetryFrames != 2 {
		t.Fatalf("telemetry frames = %d", s0.TelemetryFrames)
	}
	// The window delta carries exactly the one new exec observation.
	var execW *obs.PhaseSLO
	for i := range s0.Window {
		if s0.Window[i].Phase == "exec" {
			execW = &s0.Window[i]
		}
	}
	if execW == nil || execW.Count != 1 {
		t.Fatalf("window: %+v", s0.Window)
	}

	// Timeline captured the full walk.
	var kinds []string
	for _, tr := range st.Timeline {
		kinds = append(kinds, tr.To)
	}
	want := []string{"serving", "init", "recovering", "serving"}
	if strings.Join(kinds, ",") != strings.Join(want, ",") {
		t.Fatalf("timeline: %v, want %v", kinds, want)
	}

	// Renderers: the table mentions the verdict walk; the exposition
	// validates and carries the histogram family; the JSON round-trips.
	tbl := RenderTable(st)
	for _, needle := range []string{"serving", "healthy", "exec", "timeline"} {
		if !strings.Contains(tbl, needle) {
			t.Fatalf("table missing %q:\n%s", needle, tbl)
		}
	}
	prom := RenderProm(st)
	if probs := ValidateProm(prom); len(probs) > 0 {
		t.Fatalf("exposition invalid: %v\n%s", probs, prom)
	}
	for _, needle := range []string{"dss_up{", "dss_phase_duration_bucket{", "le=\"+Inf\"", "quantile=\"0.999\""} {
		if !strings.Contains(prom, needle) {
			t.Fatalf("exposition missing %q:\n%s", needle, prom)
		}
	}
	raw, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var back Status
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != Schema || len(back.Servers) != 1 {
		t.Fatalf("json round trip: %+v", back)
	}
}

func TestValidatePromCatchesGarbage(t *testing.T) {
	bad := "# HELP x ok\n# TYPE x wat\nx{le=} nope\n1bad_name 3\n"
	probs := ValidateProm(bad)
	if len(probs) < 3 {
		t.Fatalf("validator too lenient: %v", probs)
	}
	if probs := ValidateProm("# HELP a ok\n# TYPE a gauge\na{x=\"y\"} 1\n"); len(probs) != 0 {
		t.Fatalf("valid document rejected: %v", probs)
	}
}
