package livemon

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
)

// A lightweight validator for the Prometheus text exposition format
// (version 0.0.4), strict enough to catch a malformed renderer: every
// line must be blank, a well-formed # HELP / # TYPE comment, or a
// sample whose name matches the metric-name grammar, whose labels parse
// and whose value is a float. TYPE comments must precede their first
// sample, and histogram families must carry consistent _bucket/_sum/
// _count series.

var (
	promNameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promLabelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
	// sampleRe splits `name{labels} value [timestamp]`.
	promSampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})?\s+(\S+)(?:\s+(-?\d+))?$`)
	promTypes    = map[string]bool{"counter": true, "gauge": true, "histogram": true, "summary": true, "untyped": true}
)

// ValidateProm checks one exposition document and returns every
// problem found (nil for a valid document).
func ValidateProm(text string) []string {
	var probs []string
	typed := map[string]string{}
	seen := map[string]bool{}
	for i, line := range strings.Split(text, "\n") {
		no := i + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				probs = append(probs, fmt.Sprintf("line %d: malformed comment %q", no, line))
				continue
			}
			name := fields[2]
			if !promNameRe.MatchString(name) {
				probs = append(probs, fmt.Sprintf("line %d: bad metric name %q", no, name))
				continue
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 || !promTypes[fields[3]] {
					probs = append(probs, fmt.Sprintf("line %d: bad TYPE %q", no, line))
					continue
				}
				if seen[name] {
					probs = append(probs, fmt.Sprintf("line %d: TYPE %s after its samples", no, name))
				}
				typed[name] = fields[3]
			}
			continue
		}
		mm := promSampleRe.FindStringSubmatch(line)
		if mm == nil {
			probs = append(probs, fmt.Sprintf("line %d: malformed sample %q", no, line))
			continue
		}
		name, labels, value := mm[1], mm[2], mm[3]
		if _, err := strconv.ParseFloat(value, 64); err != nil && value != "+Inf" && value != "-Inf" && value != "NaN" {
			probs = append(probs, fmt.Sprintf("line %d: bad value %q", no, value))
		}
		if labels != "" {
			for _, p := range splitPromLabels(labels) {
				eq := strings.Index(p, "=")
				if eq < 0 {
					probs = append(probs, fmt.Sprintf("line %d: malformed label %q", no, p))
					continue
				}
				lname, lval := p[:eq], p[eq+1:]
				if !promLabelRe.MatchString(lname) {
					probs = append(probs, fmt.Sprintf("line %d: bad label name %q", no, lname))
				}
				if len(lval) < 2 || lval[0] != '"' || lval[len(lval)-1] != '"' {
					probs = append(probs, fmt.Sprintf("line %d: unquoted label value %q", no, lval))
				}
			}
		}
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if t, ok := typed[strings.TrimSuffix(name, suf)]; ok && t == "histogram" && strings.HasSuffix(name, suf) {
				base = strings.TrimSuffix(name, suf)
			}
		}
		seen[base] = true
		if t, ok := typed[base]; ok && t == "histogram" && base == name {
			probs = append(probs, fmt.Sprintf("line %d: histogram %s exposed without _bucket/_sum/_count suffix", no, name))
		}
	}
	for name, t := range typed {
		if !seen[name] {
			probs = append(probs, fmt.Sprintf("metric %s declared TYPE %s but never sampled", name, t))
		}
	}
	return probs
}

// splitPromLabels splits a label body on commas outside quotes.
func splitPromLabels(s string) []string {
	var out []string
	var cur strings.Builder
	inQuote := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '\\' && inQuote && i+1 < len(s):
			cur.WriteByte(c)
			i++
			cur.WriteByte(s[i])
		case c == '"':
			inQuote = !inQuote
			cur.WriteByte(c)
		case c == ',' && !inQuote:
			out = append(out, cur.String())
			cur.Reset()
		default:
			cur.WriteByte(c)
		}
	}
	if cur.Len() > 0 {
		out = append(out, cur.String())
	}
	return out
}
