package nested

import (
	"errors"
	"testing"

	"repro/internal/check"
	"repro/internal/pmem"
	"repro/internal/spec"
)

func newHeap(t *testing.T, words int) *pmem.Heap {
	t.Helper()
	h, err := pmem.New(pmem.Config{Words: words, Mode: pmem.Tracked})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// factories returns both instantiations of the nested queue over a fresh
// heap each.
func factories(t *testing.T, threads, nodes int) map[string]*Queue {
	t.Helper()
	out := map[string]*Queue{}
	{
		h := newHeap(t, 1<<14)
		q, err := New(RawWords(h), Config{Threads: threads, Nodes: nodes})
		if err != nil {
			t.Fatal(err)
		}
		out["raw"] = q
	}
	{
		h := newHeap(t, 1<<20)
		q, err := New(DetectableWords(h, threads, 512), Config{Threads: threads, Nodes: nodes})
		if err != nil {
			t.Fatal(err)
		}
		out["detectable-base"] = q
	}
	return out
}

func TestNewValidation(t *testing.T) {
	h := newHeap(t, 1<<12)
	if _, err := New(RawWords(h), Config{Threads: 0, Nodes: 4}); err == nil {
		t.Fatal("accepted zero threads")
	}
	if _, err := New(RawWords(h), Config{Threads: 1, Nodes: 1}); err == nil {
		t.Fatal("accepted too few nodes")
	}
}

func TestFIFOBothInstantiations(t *testing.T) {
	for name, q := range factories(t, 2, 16) {
		t.Run(name, func(t *testing.T) {
			for v := uint64(1); v <= 5; v++ {
				if err := q.Enqueue(0, v); err != nil {
					t.Fatal(err)
				}
			}
			for v := uint64(1); v <= 5; v++ {
				got, ok := q.Dequeue(1)
				if !ok || got != v {
					t.Fatalf("dequeue = (%d,%v), want (%d,true)", got, ok, v)
				}
			}
			if _, ok := q.Dequeue(0); ok {
				t.Fatal("queue should be empty")
			}
		})
	}
}

func TestDetectableLifecycleBothInstantiations(t *testing.T) {
	for name, q := range factories(t, 1, 8) {
		t.Run(name, func(t *testing.T) {
			if err := q.PrepEnqueue(0, 7); err != nil {
				t.Fatal(err)
			}
			if res := q.Resolve(0); !res.IsEnqueue || res.Executed || res.Arg != 7 {
				t.Fatalf("resolve after prep = %+v", res)
			}
			q.ExecEnqueue(0)
			if res := q.Resolve(0); !res.IsEnqueue || !res.Executed {
				t.Fatalf("resolve after exec = %+v", res)
			}
			q.PrepDequeue(0)
			if v, ok := q.ExecDequeue(0); !ok || v != 7 {
				t.Fatalf("ExecDequeue = (%d,%v)", v, ok)
			}
			if res := q.Resolve(0); !res.IsDequeue || !res.Executed || res.Val != 7 {
				t.Fatalf("resolve after dequeue = %+v", res)
			}
			q.PrepDequeue(0)
			if _, ok := q.ExecDequeue(0); ok {
				t.Fatal("dequeue on empty succeeded")
			}
			if res := q.Resolve(0); !res.IsDequeue || !res.Executed || !res.Empty {
				t.Fatalf("resolve after empty dequeue = %+v", res)
			}
		})
	}
}

func TestNodeTableExhaustion(t *testing.T) {
	h := newHeap(t, 1<<14)
	q, err := New(RawWords(h), Config{Threads: 1, Nodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	var last error
	for i := 0; i < 10; i++ {
		if err := q.Enqueue(0, uint64(i)); err != nil {
			last = err
			break
		}
	}
	if !errors.Is(last, ErrNoNodes) {
		t.Fatalf("exhaustion err = %v", last)
	}
}

// TestInstantiationsAgree runs the same operation sequence through both
// instantiations and compares every response — the substitution claim of
// Section 2.2 in executable form.
func TestInstantiationsAgree(t *testing.T) {
	qs := factories(t, 1, 32)
	raw, det := qs["raw"], qs["detectable-base"]
	type result struct {
		v  uint64
		ok bool
	}
	step := func(f func(q *Queue) result) {
		t.Helper()
		a := f(raw)
		b := f(det)
		if a != b {
			t.Fatalf("instantiations diverge: raw=%+v detectable-base=%+v", a, b)
		}
	}
	for i := 0; i < 20; i++ {
		v := uint64(100 + i)
		switch i % 4 {
		case 0:
			step(func(q *Queue) result {
				return result{0, q.PrepEnqueue(0, v) == nil}
			})
			step(func(q *Queue) result {
				q.ExecEnqueue(0)
				r := q.Resolve(0)
				return result{r.Arg, r.Executed}
			})
		case 1:
			step(func(q *Queue) result {
				err := q.Enqueue(0, v)
				return result{0, err == nil}
			})
		case 2:
			step(func(q *Queue) result {
				q.PrepDequeue(0)
				got, ok := q.ExecDequeue(0)
				return result{got, ok}
			})
		case 3:
			step(func(q *Queue) result {
				got, ok := q.Dequeue(0)
				return result{got, ok}
			})
		}
	}
}

// conformanceSweep crashes at every step of a detectable workload over
// the given queue builder and checks the history against D⟨queue⟩.
func conformanceSweep(t *testing.T, build func() (*Queue, *pmem.Heap), advs []pmem.Adversary, maxSteps uint64) {
	t.Helper()
	for _, adv := range advs {
		for step := uint64(1); step < maxSteps; step++ {
			q, h := build()
			if err := q.Enqueue(0, 1); err != nil {
				t.Fatal(err)
			}
			rec := check.NewRecorder()
			rec.Begin(0, spec.Enqueue(1))
			rec.End(0, spec.AckResp())
			h.ArmCrash(step)
			pmem.RunToCrash(func() {
				rec.Begin(0, spec.PrepOp(spec.Enqueue(10)))
				if err := q.PrepEnqueue(0, 10); err != nil {
					return
				}
				rec.End(0, spec.BottomResp())
				rec.Begin(0, spec.ExecOp(spec.Enqueue(10)))
				q.ExecEnqueue(0)
				rec.End(0, spec.AckResp())
				rec.Begin(0, spec.PrepOp(spec.Dequeue()))
				q.PrepDequeue(0)
				rec.End(0, spec.BottomResp())
				rec.Begin(0, spec.ExecOp(spec.Dequeue()))
				if got, ok := q.ExecDequeue(0); ok {
					rec.End(0, spec.ValResp(got))
				} else {
					rec.End(0, spec.EmptyResp())
				}
			})
			if !h.Crashed() {
				return
			}
			rec.CrashAll()
			h.Crash(adv)
			q.Recover()
			rec.Begin(0, spec.ResolveOp())
			rec.End(0, q.Resolve(0).Resp())
			for {
				rec.Begin(0, spec.Dequeue())
				v, ok := q.Dequeue(0)
				if ok {
					rec.End(0, spec.ValResp(v))
				} else {
					rec.End(0, spec.EmptyResp())
					break
				}
			}
			hist := rec.History()
			d := spec.Detectable(spec.NewQueue(), 1)
			if r := check.StrictlyLinearizable(d, hist); !r.OK {
				t.Fatalf("step %d: nested history not strictly linearizable:\n%s",
					step, check.FormatHistory(hist))
			}
		}
	}
	t.Fatalf("workload did not complete within %d steps", maxSteps)
}

func TestCrashSweepRawWords(t *testing.T) {
	conformanceSweep(t, func() (*Queue, *pmem.Heap) {
		h := newHeap(t, 1<<14)
		q, err := New(RawWords(h), Config{Threads: 1, Nodes: 8})
		if err != nil {
			t.Fatal(err)
		}
		return q, h
	}, pmem.Adversaries(83), 10_000)
}

// TestCrashSweepDetectableWords is the flagship nesting test: crashes land
// *inside the inner D⟨CAS⟩ objects' own operations*, inner recovery and
// queue-level recovery compose, and the combined behavior still conforms
// to D⟨queue⟩.
func TestCrashSweepDetectableWords(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive inner-object crash sweep is expensive; skipped with -short")
	}
	advs := []pmem.Adversary{pmem.DropAll{}, pmem.KeepAll{}, pmem.NewRandomFates(89)}
	conformanceSweep(t, func() (*Queue, *pmem.Heap) {
		h := newHeap(t, 1<<20)
		q, err := New(DetectableWords(h, 1, 512), Config{Threads: 1, Nodes: 8})
		if err != nil {
			t.Fatal(err)
		}
		return q, h
	}, advs, 1_000_000)
}

func TestConcurrentPairsRawWords(t *testing.T) {
	h := newHeap(t, 1<<16)
	q, err := New(RawWords(h), Config{Threads: 3, Nodes: 512})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan map[uint64]int, 3)
	for tid := 0; tid < 3; tid++ {
		go func(tid int) {
			seen := map[uint64]int{}
			for i := 0; i < 50; i++ {
				v := uint64(tid+1)<<32 | uint64(i)
				if err := q.Enqueue(tid, v); err != nil {
					break
				}
				if got, ok := q.Dequeue(tid); ok {
					seen[got]++
				}
			}
			done <- seen
		}(tid)
	}
	seen := map[uint64]int{}
	for i := 0; i < 3; i++ {
		for v, n := range <-done {
			seen[v] += n
		}
	}
	for {
		v, ok := q.Dequeue(0)
		if !ok {
			break
		}
		seen[v]++
	}
	if len(seen) != 150 {
		t.Fatalf("saw %d distinct values, want 150", len(seen))
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("value %d dequeued %d times", v, n)
		}
	}
}
