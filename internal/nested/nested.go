// Package nested demonstrates the application-managed nesting claim of
// Section 2.2: "D⟨queue⟩ can be constructed using implementations of
// D⟨read/write register⟩ and D⟨CAS⟩".
//
// The DSS queue algorithm of Section 3 is restated here against an
// abstract base-object interface (Word) instead of raw heap words. Two
// factories instantiate it:
//
//   - RawWords: each base object is one heap word — operationally the
//     same object as internal/core's queue.
//   - DetectableWords: each base object is a strictly linearizable
//     recoverable D⟨CAS⟩ built by the universal construction. The queue
//     invokes only the non-detectable operations of these inner objects
//     ("D⟨T⟩ provides all the non-detectable operations of T"), and the
//     application — this package — takes "full responsibility for nesting":
//     queue-level recovery first recovers every inner object, then runs
//     the Figure 6 repair over them.
//
// Node "pointers" are indices into a node table, and nodes are never
// recycled (allocation happens through a durable allocation counter that
// is itself a base object), which keeps the demonstration free of the
// reclamation machinery — this is a feasibility construction, like the
// universal construction it builds on, not a performance substrate.
package nested

import (
	"errors"
	"fmt"

	"repro/internal/pmem"
	"repro/internal/spec"
	"repro/internal/universal"
)

// Word is the strictly linearizable recoverable base object the DSS queue
// algorithm is written against: a 64-bit cell with read, write, and CAS.
type Word interface {
	// Read returns the current value.
	Read(tid int) uint64
	// Write stores v unconditionally.
	Write(tid int, v uint64)
	// CAS stores new if the value equals old.
	CAS(tid int, old, new uint64) bool
	// Persist makes the last update durable (no-op for base objects whose
	// operations are individually durable).
	Persist()
	// Recover repairs the base object itself after a crash (no-op for
	// raw words; inner-object recovery for nested ones).
	Recover()
}

// Factory creates the queue's base objects. init is the word's initial
// value; name describes its role (diagnostics only).
type Factory func(name string, init uint64) (Word, error)

// rawWord is a single heap word: the flat instantiation.
type rawWord struct {
	h *pmem.Heap
	a pmem.Addr
}

func (w rawWord) Read(int) uint64                 { return w.h.Load(w.a) }
func (w rawWord) Write(_ int, v uint64)           { w.h.Store(w.a, v) }
func (w rawWord) CAS(_ int, old, new uint64) bool { return w.h.CompareAndSwap(w.a, old, new) }
func (w rawWord) Persist()                        { w.h.Persist(w.a) }
func (w rawWord) Recover()                        {}

// RawWords returns a factory of plain heap words on h.
func RawWords(h *pmem.Heap) Factory {
	return func(_ string, init uint64) (Word, error) {
		a, err := h.Alloc(1)
		if err != nil {
			return nil, err
		}
		h.Store(a, init)
		h.Persist(a)
		return rawWord{h: h, a: a}, nil
	}
}

// uWord adapts a universal-construction D⟨CAS⟩ object to the Word
// interface through its non-detectable operations.
type uWord struct {
	o *universal.Object
}

func (w uWord) Read(tid int) uint64 {
	r, err := w.o.Invoke(tid, spec.Read())
	if err != nil {
		panic(fmt.Sprintf("nested: inner read: %v", err))
	}
	return r.V
}

func (w uWord) Write(tid int, v uint64) {
	if _, err := w.o.Invoke(tid, spec.Write(v)); err != nil {
		panic(fmt.Sprintf("nested: inner write: %v", err))
	}
}

func (w uWord) CAS(tid int, old, new uint64) bool {
	r, err := w.o.Invoke(tid, spec.CAS(old, new))
	if err != nil {
		panic(fmt.Sprintf("nested: inner cas: %v", err))
	}
	return r.V == 1
}

func (w uWord) Persist() { /* inner operations are individually durable */ }
func (w uWord) Recover() { w.o.Recover() }

// DetectableWords returns a factory of D⟨CAS⟩ base objects built by the
// universal construction, each supporting opsPerWord total operations.
// The panics in the adapters fire only on capacity exhaustion, which is a
// sizing bug of the feasibility demo, not a runtime condition.
func DetectableWords(h *pmem.Heap, threads, opsPerWord int) Factory {
	return func(_ string, init uint64) (Word, error) {
		o, err := universal.New(h, -1, threads, opsPerWord, spec.NewCAS(init),
			[]spec.Op{spec.Read(), spec.Write(0), spec.CAS(0, 0)})
		if err != nil {
			return nil, err
		}
		return uWord{o: o}, nil
	}
}

// X-word tags and claim encoding, exactly as in internal/core.
const (
	enqPrepTag  = uint64(1) << 63
	enqComplTag = uint64(1) << 62
	deqPrepTag  = uint64(1) << 61
	emptyTag    = uint64(1) << 60
	tagMask     = enqPrepTag | enqComplTag | deqPrepTag | emptyTag

	tidNone = ^uint64(0)
	ndMark  = uint64(1) << 58
)

// ErrNoNodes is returned when the node table is exhausted (nodes are not
// recycled in this construction).
var ErrNoNodes = errors.New("nested: node table exhausted")

// Queue is the DSS queue over abstract base objects. Node index 0 is
// NULL; the sentinel starts at index 1.
type Queue struct {
	threads int
	cap     int

	value, next, deq []Word // node fields, indexed by node index
	head, tail       Word
	allocCtr         Word // durable bump allocator over the node table
	x                []Word
}

// Config parameterizes a nested queue.
type Config struct {
	// Threads is the worker count.
	Threads int
	// Nodes is the node-table capacity (total enqueues over the queue's
	// lifetime, including the sentinel).
	Nodes int
}

// New builds the queue's base objects through factory f.
func New(f Factory, cfg Config) (*Queue, error) {
	if cfg.Threads <= 0 {
		return nil, fmt.Errorf("nested: need at least one thread, got %d", cfg.Threads)
	}
	if cfg.Nodes < 2 {
		return nil, fmt.Errorf("nested: need at least two nodes, got %d", cfg.Nodes)
	}
	q := &Queue{threads: cfg.Threads, cap: cfg.Nodes + 1}
	mk := func(name string, init uint64) (Word, error) {
		w, err := f(name, init)
		if err != nil {
			return nil, fmt.Errorf("nested: %s: %w", name, err)
		}
		return w, nil
	}
	var err error
	q.value = make([]Word, q.cap)
	q.next = make([]Word, q.cap)
	q.deq = make([]Word, q.cap)
	for i := 1; i < q.cap; i++ {
		if q.value[i], err = mk(fmt.Sprintf("node%d.value", i), 0); err != nil {
			return nil, err
		}
		if q.next[i], err = mk(fmt.Sprintf("node%d.next", i), 0); err != nil {
			return nil, err
		}
		if q.deq[i], err = mk(fmt.Sprintf("node%d.deqTID", i), tidNone); err != nil {
			return nil, err
		}
	}
	if q.head, err = mk("head", 1); err != nil { // sentinel is node 1
		return nil, err
	}
	if q.tail, err = mk("tail", 1); err != nil {
		return nil, err
	}
	if q.allocCtr, err = mk("alloc", 2); err != nil { // next free index
		return nil, err
	}
	q.x = make([]Word, cfg.Threads)
	for i := range q.x {
		if q.x[i], err = mk(fmt.Sprintf("X%d", i), 0); err != nil {
			return nil, err
		}
	}
	return q, nil
}

// allocNode durably claims a fresh node index via CAS on the allocation
// counter.
func (q *Queue) allocNode(tid int) (uint64, bool) {
	for {
		cur := q.allocCtr.Read(tid)
		if cur >= uint64(q.cap) {
			return 0, false
		}
		if q.allocCtr.CAS(tid, cur, cur+1) {
			q.allocCtr.Persist()
			return cur, true
		}
	}
}

// PrepEnqueue, ExecEnqueue, PrepDequeue, ExecDequeue, Enqueue, Dequeue and
// Resolve restate Figures 3-4 verbatim over the base objects.

// PrepEnqueue declares the detectable intent to enqueue v.
func (q *Queue) PrepEnqueue(tid int, v uint64) error {
	node, ok := q.allocNode(tid)
	if !ok {
		return ErrNoNodes
	}
	q.value[node].Write(tid, v)
	q.value[node].Persist()
	q.x[tid].Write(tid, node|enqPrepTag)
	q.x[tid].Persist()
	return nil
}

// ExecEnqueue links the prepared node at the tail.
func (q *Queue) ExecEnqueue(tid int) {
	x := q.x[tid].Read(tid)
	if x&enqPrepTag == 0 || x&enqComplTag != 0 {
		return
	}
	q.enqueue(tid, x&^tagMask, true)
}

// Enqueue is the non-detectable enqueue.
func (q *Queue) Enqueue(tid int, v uint64) error {
	node, ok := q.allocNode(tid)
	if !ok {
		return ErrNoNodes
	}
	q.value[node].Write(tid, v)
	q.value[node].Persist()
	q.enqueue(tid, node, false)
	return nil
}

func (q *Queue) enqueue(tid int, node uint64, detect bool) {
	for {
		last := q.tail.Read(tid)
		next := q.next[last].Read(tid)
		if last != q.tail.Read(tid) {
			continue
		}
		if next == 0 {
			if q.next[last].CAS(tid, 0, node) {
				q.next[last].Persist()
				if detect {
					q.x[tid].Write(tid, q.x[tid].Read(tid)|enqComplTag)
					q.x[tid].Persist()
				}
				q.tail.CAS(tid, last, node)
				return
			}
		} else {
			q.next[last].Persist()
			q.tail.CAS(tid, last, next)
		}
	}
}

// PrepDequeue declares the detectable intent to dequeue.
func (q *Queue) PrepDequeue(tid int) {
	q.x[tid].Write(tid, deqPrepTag)
	q.x[tid].Persist()
}

// ExecDequeue removes the front value; ok is false when empty.
func (q *Queue) ExecDequeue(tid int) (uint64, bool) {
	return q.dequeue(tid, true)
}

// Dequeue is the non-detectable dequeue.
func (q *Queue) Dequeue(tid int) (uint64, bool) {
	return q.dequeue(tid, false)
}

func (q *Queue) dequeue(tid int, detect bool) (uint64, bool) {
	claim := uint64(tid)
	if !detect {
		claim |= ndMark
	}
	for {
		first := q.head.Read(tid)
		last := q.tail.Read(tid)
		next := q.next[first].Read(tid)
		if first != q.head.Read(tid) {
			continue
		}
		if first == last {
			if next == 0 {
				if detect {
					q.x[tid].Write(tid, q.x[tid].Read(tid)|emptyTag)
					q.x[tid].Persist()
				}
				return 0, false
			}
			q.next[last].Persist()
			q.tail.CAS(tid, last, next)
			continue
		}
		if detect {
			q.x[tid].Write(tid, first|deqPrepTag)
			q.x[tid].Persist()
		}
		if q.deq[next].CAS(tid, tidNone, claim) {
			q.deq[next].Persist()
			q.head.CAS(tid, first, next)
			return q.value[next].Read(tid), true
		}
		if q.head.Read(tid) == first {
			q.deq[next].Persist()
			q.head.CAS(tid, first, next)
		}
	}
}

// Resolution mirrors internal/core's.
type Resolution struct {
	IsEnqueue bool
	IsDequeue bool
	Arg       uint64
	Executed  bool
	Val       uint64
	Empty     bool
}

// Resolve reports the most recently prepared operation and its outcome.
func (q *Queue) Resolve(tid int) Resolution {
	x := q.x[tid].Read(tid)
	switch {
	case x&enqPrepTag != 0:
		node := x &^ tagMask
		return Resolution{
			IsEnqueue: true,
			Arg:       q.value[node].Read(tid),
			Executed:  x&enqComplTag != 0,
		}
	case x&deqPrepTag != 0:
		switch {
		case x == deqPrepTag:
			return Resolution{IsDequeue: true}
		case x == deqPrepTag|emptyTag:
			return Resolution{IsDequeue: true, Executed: true, Empty: true}
		default:
			first := x &^ tagMask
			next := q.next[first].Read(tid)
			if next != 0 && q.deq[next].Read(tid) == uint64(tid) {
				return Resolution{IsDequeue: true, Executed: true, Val: q.value[next].Read(tid)}
			}
			return Resolution{IsDequeue: true}
		}
	default:
		return Resolution{}
	}
}

// Resp converts the resolution for conformance checking.
func (r Resolution) Resp() spec.Resp {
	switch {
	case r.IsEnqueue:
		inner := spec.BottomResp()
		if r.Executed {
			inner = spec.AckResp()
		}
		return spec.PairResp(true, spec.Enqueue(r.Arg), inner)
	case r.IsDequeue:
		inner := spec.BottomResp()
		if r.Executed {
			if r.Empty {
				inner = spec.EmptyResp()
			} else {
				inner = spec.ValResp(r.Val)
			}
		}
		return spec.PairResp(true, spec.Dequeue(), inner)
	default:
		return spec.PairResp(false, spec.Op{}, spec.BottomResp())
	}
}

// Recover is the nested recovery orchestration Section 2.2 assigns to the
// application: first every inner base object recovers itself, then the
// queue-level Figure 6 repair runs over the recovered objects.
// Single-threaded; tid 0 is used for base-object access.
func (q *Queue) Recover() {
	// 1. Inner recovery, in any order (the objects are independent).
	for i := 1; i < q.cap; i++ {
		q.value[i].Recover()
		q.next[i].Recover()
		q.deq[i].Recover()
	}
	q.head.Recover()
	q.tail.Recover()
	q.allocCtr.Recover()
	for i := range q.x {
		q.x[i].Recover()
	}

	// 2. Queue-level repair (Figure 6 over base objects).
	const tid = 0
	oldHead := q.head.Read(tid)
	all := map[uint64]bool{}
	lastNode := oldHead
	for n := oldHead; n != 0; n = q.next[n].Read(tid) {
		all[n] = true
		lastNode = n
	}
	q.tail.Write(tid, lastNode)
	q.tail.Persist()
	newHead := oldHead
	for {
		next := q.next[newHead].Read(tid)
		if next == 0 || q.deq[next].Read(tid) == tidNone {
			break
		}
		newHead = next
	}
	q.head.Write(tid, newHead)
	q.head.Persist()
	for i := 0; i < q.threads; i++ {
		x := q.x[i].Read(tid)
		if x&enqPrepTag == 0 || x&enqComplTag != 0 {
			continue
		}
		d := x &^ tagMask
		if d == 0 {
			continue
		}
		if all[d] || q.deq[d].Read(tid) != tidNone {
			q.x[i].Write(tid, x|enqComplTag)
			q.x[i].Persist()
		}
	}
}
