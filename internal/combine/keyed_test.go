package combine

import (
	"testing"

	"repro/internal/check"
	"repro/internal/dss"
	"repro/internal/pmem"
	"repro/internal/spec"
)

func buildKeyedFront(t *testing.T, typ dss.Type, threads int) (*Front, *pmem.Heap) {
	t.Helper()
	h, err := pmem.New(pmem.Config{Words: 1 << 17, Mode: pmem.Tracked})
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(h, 0, typ, dss.Config{
		Threads: threads, NodesPerThread: 8, ExtraNodes: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f, h
}

// TestCombinedRegisterOps drives the combined swap/CAS register
// single-threaded: the keyed announce word must carry the cas expected
// value through the slot, and the parity-buffered result line must carry
// the two-word (success, witness) response back.
func TestCombinedRegisterOps(t *testing.T) {
	f, _ := buildKeyedFront(t, dss.RegisterType, 1)
	if r := exec(t, f, 0, dss.Op{Kind: dss.Write, Arg: 5}); r.Kind != dss.Ack {
		t.Fatalf("write: %+v", r)
	}
	if r := exec(t, f, 0, dss.Op{Kind: dss.Swap, Arg: 7}); r.Kind != dss.Val || r.Val != 5 {
		t.Fatalf("swap: %+v, want displacing 5", r)
	}
	if r := exec(t, f, 0, dss.Op{Kind: dss.CAS, Key: 7, Arg: 9}); r.Val != 1 || r.Val2 != 7 {
		t.Fatalf("cas hit: %+v, want (1, 7)", r)
	}
	if r := exec(t, f, 0, dss.Op{Kind: dss.CAS, Key: 7, Arg: 11}); r.Val != 0 || r.Val2 != 9 {
		t.Fatalf("cas miss: %+v, want (0, 9)", r)
	}
	// The two-word response must survive Resolve (it reads the result
	// line, including resVal2, through the keyed path).
	op, resp, ok := f.Resolve(0)
	if !ok || op.Kind != dss.CAS || op.Key != 7 || op.Arg != 11 || resp.Val != 0 || resp.Val2 != 9 {
		t.Fatalf("cas resolve: %+v %+v %v", op, resp, ok)
	}
	if r := exec(t, f, 0, dss.Op{Kind: dss.Read}); r.Kind != dss.Val || r.Val != 9 {
		t.Fatalf("read: %+v, want 9", r)
	}
}

// TestCombinedMapOps drives the combined hash map single-threaded
// through every operation kind, including both Empty responses and the
// two-word MapCAS answers.
func TestCombinedMapOps(t *testing.T) {
	f, _ := buildKeyedFront(t, dss.MapType, 1)
	if r := exec(t, f, 0, dss.Op{Kind: dss.Get, Key: 1}); r.Kind != dss.Empty {
		t.Fatalf("get on empty map: %+v", r)
	}
	if r := exec(t, f, 0, dss.Op{Kind: dss.Put, Key: 1, Arg: 10}); r.Kind != dss.Ack {
		t.Fatalf("put: %+v", r)
	}
	if r := exec(t, f, 0, dss.Op{Kind: dss.Get, Key: 1}); r.Kind != dss.Val || r.Val != 10 {
		t.Fatalf("get: %+v, want 10", r)
	}
	if r := exec(t, f, 0, dss.Op{Kind: dss.MapCAS, Key: 1, Arg: spec.PackCAS(10, 11)}); r.Val != 1 || r.Val2 != 10 {
		t.Fatalf("mcas hit: %+v, want (1, 10)", r)
	}
	if r := exec(t, f, 0, dss.Op{Kind: dss.MapCAS, Key: 1, Arg: spec.PackCAS(10, 12)}); r.Val != 0 || r.Val2 != 11 {
		t.Fatalf("mcas miss: %+v, want (0, 11)", r)
	}
	if r := exec(t, f, 0, dss.Op{Kind: dss.Delete, Key: 1}); r.Kind != dss.Val || r.Val != 11 {
		t.Fatalf("del: %+v, want removing 11", r)
	}
	if r := exec(t, f, 0, dss.Op{Kind: dss.Delete, Key: 1}); r.Kind != dss.Empty {
		t.Fatalf("del of absent key: %+v", r)
	}
}

// keyedWorkload is one deterministic detectable workload per keyed type,
// recorded against D⟨T⟩ (ops chosen to cover two-word responses, Empty
// responses and upserts).
func keyedWorkload(typ dss.Type) []dss.Op {
	if typ.Name == dss.RegisterType.Name {
		return []dss.Op{
			{Kind: dss.Write, Arg: 10},
			{Kind: dss.Swap, Arg: 20},
			{Kind: dss.CAS, Key: 20, Arg: 30},
			{Kind: dss.CAS, Key: 99, Arg: 40},
			{Kind: dss.Read},
		}
	}
	return []dss.Op{
		{Kind: dss.Put, Key: 1, Arg: 10},
		{Kind: dss.Put, Key: 2, Arg: 20},
		{Kind: dss.Delete, Key: 1},
		{Kind: dss.MapCAS, Key: 2, Arg: spec.PackCAS(20, 30)},
		{Kind: dss.Get, Key: 2},
	}
}

// TestCombinedKeyedCrashSweep crashes at every primitive step of a
// detectable keyed workload through the combining front, under both
// extreme adversaries, recovers, resolves — and checks the recorded
// history against D⟨T⟩ under strict linearizability. This is the
// crash-safety proof for the widened announce/result slots: a torn
// announce line or an unpublished two-word result must never resolve to
// a response the sequential model cannot produce.
func TestCombinedKeyedCrashSweep(t *testing.T) {
	for _, typ := range []dss.Type{dss.RegisterType, dss.MapType} {
		typ := typ
		t.Run(typ.Name, func(t *testing.T) {
			ops := keyedWorkload(typ)
			for _, adv := range []pmem.Adversary{pmem.DropAll{}, pmem.KeepAll{}} {
				swept := 0
				for step := uint64(1); ; step++ {
					f, h := buildKeyedFront(t, typ, 1)
					rec := check.NewRecorder()
					h.ArmCrash(step)
					pmem.RunToCrash(func() {
						for _, op := range ops {
							sop := typ.SpecOp(op)
							rec.Begin(0, spec.PrepOp(sop))
							if err := f.Prep(0, op); err != nil {
								return
							}
							rec.End(0, spec.BottomResp())
							rec.Begin(0, spec.ExecOp(sop))
							resp, err := f.Exec(0)
							if err != nil {
								return
							}
							rec.End(0, dss.SpecResp(resp))
						}
					})
					if !h.Crashed() {
						if swept == 0 {
							t.Fatal("workload completed before the first crash point")
						}
						break
					}
					swept++
					rec.CrashAll()
					h.Crash(adv)
					f.Recover()
					rec.Begin(0, spec.ResolveOp())
					op, resp, ok := f.Resolve(0)
					rec.End(0, typ.ResolveResp(op, resp, ok))

					// Audit the final state non-detectably.
					if typ.Name == dss.RegisterType.Name {
						rec.Begin(0, spec.Read())
						r, err := f.Invoke(0, dss.Op{Kind: dss.Read})
						if err != nil {
							t.Fatal(err)
						}
						rec.End(0, dss.SpecResp(r))
					} else {
						for _, k := range []uint64{1, 2} {
							rec.Begin(0, spec.Get(k))
							r, err := f.Invoke(0, dss.Op{Kind: dss.Get, Key: k})
							if err != nil {
								t.Fatal(err)
							}
							rec.End(0, dss.SpecResp(r))
						}
					}

					hist := rec.History()
					d := spec.Detectable(typ.Model(), 1)
					if r := check.StrictlyLinearizable(d, hist); !r.OK {
						t.Fatalf("%T step %d: combined %s history not strictly linearizable:\n%s",
							adv, step, typ.Name, check.FormatHistory(hist))
					}
				}
			}
		})
	}
}
